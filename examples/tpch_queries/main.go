// tpch_queries: multi-table analytics over the TPC-H-style chain
// CUSTOMER ⋈ ORDERS ⋈ LINEITEM — the "analytical queries" of the paper's
// future work. Each query is an operator tree whose keyed stages each
// shuffle through one co-optimized coflow; the example runs three queries
// under Hash and CCF placement and verifies results against a single-node
// reference.
//
//	go run ./examples/tpch_queries
package main

import (
	"fmt"
	"log"
	"reflect"

	"ccf/internal/placement"
	"ccf/internal/query"
	"ccf/internal/tpch"
)

func main() {
	const n = 12
	tables, err := tpch.Generate(tpch.Config{Nodes: n, Customers: 5_000, PayloadBytes: 500, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tables over %d nodes: CUSTOMER %d, ORDERS %d, LINEITEM %d rows\n\n",
		n, tables.Customer.Rows(), tables.Orders.Rows(), tables.Lineitem.Rows())

	queries := []struct {
		name string
		plan query.Node
	}{
		{"revenue per customer (O ⋈ L, group by custkey)", tpch.RevenuePerCustomer()},
		{"revenue per nation   (C ⋈ (O ⋈ L), rollup)", tpch.RevenuePerNation()},
		{"orders per customer  (count group-by)", tpch.OrdersPerCustomer()},
	}

	for _, q := range queries {
		want, err := tables.Reference(q.plan)
		if err != nil {
			log.Fatal(err)
		}
		reference := query.SortRows(want)
		fmt.Println(q.name + ":")
		for _, s := range []placement.Scheduler{placement.Hash{}, placement.CCF{}} {
			exec, err := tables.NewExecutor(query.Config{Nodes: n, Scheduler: s})
			if err != nil {
				log.Fatal(err)
			}
			res, err := exec.Execute(q.plan)
			if err != nil {
				log.Fatal(err)
			}
			status := "verified"
			if !reflect.DeepEqual(res.Output.Gather(), reference) {
				status = "RESULT MISMATCH"
			}
			var maxBottleneck int64
			for _, st := range res.Stages {
				if st.BottleneckBytes > maxBottleneck {
					maxBottleneck = st.BottleneckBytes
				}
			}
			fmt.Printf("  %-5s %d stages, net time %7.3f s, traffic %7.1f MB, worst bottleneck %6.1f MB — %s\n",
				s.Name(), len(res.Stages), res.TotalTimeSec,
				float64(res.TotalTrafficBytes)/1e6, float64(maxBottleneck)/1e6, status)
		}
		fmt.Println()
	}
	fmt.Println("Chain joins carry (custkey, price) through the shuffles via radix-encoded")
	fmt.Println("values; every keyed stage is one coflow that CCF places against the")
	fmt.Println("bottleneck-port objective of the paper's model (3).")
}
