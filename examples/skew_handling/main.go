// skew_handling: partial duplication end to end (paper §III.C). A heavily
// skewed join — 40% of ORDERS hitting one customer — is executed twice with
// the CCF placer: once shuffling everything, once with skew detection and
// partial duplication. The example prints the detected heavy hitters, the
// traffic and bottleneck savings, and verifies both runs produce the exact
// reference cardinality.
//
//	go run ./examples/skew_handling
package main

import (
	"fmt"
	"log"

	"ccf/internal/join"
	"ccf/internal/partition"
	"ccf/internal/placement"
	"ccf/internal/skew"
)

func main() {
	const (
		nodes    = 12
		skewFrac = 0.40
	)

	customer, orders := join.GenerateRelations(join.GenConfig{
		Customers: 5000, OrdersPerCust: 20, PayloadBytes: 1000,
		SkewFrac: skewFrac, Seed: 7,
	})
	want := join.Reference(customer, orders)
	fmt.Printf("%d customers × %d orders, %.0f%% of orders on custkey 1\n",
		len(customer.Tuples), len(orders.Tuples), skewFrac*100)
	fmt.Printf("reference join cardinality: %d\n\n", want)

	// First: what does a sampling detector see? (The join engine uses exact
	// counts internally; this shows the cheap pre-pass a real system runs.)
	sampler := skew.NewSampler(100) // 1-in-100 systematic sample
	for _, t := range orders.Tuples {
		sampler.Observe(t.Key)
	}
	for _, h := range sampler.Heavy(0.05) {
		fmt.Printf("sampled heavy hitter: key %d, ≈%.1f%% of ORDERS (estimated %d tuples)\n",
			h.Key, h.Frac*100, h.Count)
	}
	fmt.Println()

	build := func() *join.Cluster {
		cl := join.NewCluster(nodes, partition.ModPartitioner{NumPartitions: 15 * nodes})
		cl.LoadByPlacement(true, customer, join.ZipfPlacer(nodes, 0.8, 8))
		cl.LoadByPlacement(false, orders, join.ZipfPlacer(nodes, 0.8, 9))
		return cl
	}

	run := func(label string, threshold float64) *join.Result {
		res, err := join.Execute(build(), join.Options{Scheduler: placement.CCF{}, SkewThreshold: threshold})
		if err != nil {
			log.Fatal(err)
		}
		ok := "cardinality OK"
		if res.OutputTuples != want {
			ok = fmt.Sprintf("cardinality WRONG: %d != %d", res.OutputTuples, want)
		}
		fmt.Printf("%-28s traffic %7.1f MB   bottleneck %7.1f MB   time %6.3f s   %s\n",
			label, float64(res.TrafficBytes)/1e6, float64(res.BottleneckBytes)/1e6, res.CommTime, ok)
		return res
	}

	plain := run("CCF, no skew handling:", 0)
	handled := run("CCF + partial duplication:", 0.05)

	fmt.Printf("\nskewed keys kept local: %v\n", handled.SkewedKeys)
	fmt.Printf("traffic saved:    %.1f MB (%.0f%%)\n",
		float64(plain.TrafficBytes-handled.TrafficBytes)/1e6,
		100*float64(plain.TrafficBytes-handled.TrafficBytes)/float64(plain.TrafficBytes))
	fmt.Printf("bottleneck saved: %.1f MB (%.0f%%)\n",
		float64(plain.BottleneckBytes-handled.BottleneckBytes)/1e6,
		100*float64(plain.BottleneckBytes-handled.BottleneckBytes)/float64(plain.BottleneckBytes))
	fmt.Println("\nThe hot key's orders never cross the network; only the single matching")
	fmt.Println("customer tuple is broadcast — the v⁰ flows CCF folds into its model.")
}
