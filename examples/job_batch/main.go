// job_batch: a batch of analytical jobs sharing the fabric. Each job is a
// multi-stage plan; within a job, stage coflows chain by dependency, and
// across jobs the coflow scheduler multiplexes the network. The example
// contrasts the batched DAG simulation under Varys (SEBF) and per-flow
// fair sharing: with work conservation the makespan is pinned to the shared
// bottleneck either way, but coflow-aware scheduling completes the small
// jobs far earlier — the job-level payoff of the coflow abstraction the
// paper builds on.
//
//	go run ./examples/job_batch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ccf/internal/coflow"
	"ccf/internal/placement"
	"ccf/internal/query"
)

func main() {
	const n = 16
	rng := rand.New(rand.NewSource(7))
	l := query.NewTable("L", n, 1000)
	r := query.NewTable("R", n, 1000)
	for i := 0; i < 120_000; i++ {
		node := rng.Intn(n)
		l.Frags[node] = append(l.Frags[node],
			query.Row{Key: int64(rng.Intn(1500) + 1), Value: int64(rng.Intn(40))})
	}
	for i := 0; i < 360_000; i++ {
		node := rng.Intn(n)
		r.Frags[node] = append(r.Frags[node],
			query.Row{Key: int64(rng.Intn(1500) + 1), Value: int64(rng.Intn(40))})
	}
	exec, err := query.NewExecutor(query.Config{Nodes: n, Scheduler: placement.CCF{}}, l, r)
	if err != nil {
		log.Fatal(err)
	}

	mustParse := func(src string) query.Node {
		p, err := query.ParsePlan(src)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	jobs := []query.BatchJob{
		{Name: "report", Arrival: 0, Plan: mustParse("aggregate(rekeydiv(join(L, R), 50), partial)")},
		{Name: "dedup", Arrival: 0, Plan: mustParse("distinct(rekeymod(R, 97))")},
		{Name: "rollup", Arrival: 0, Plan: mustParse("aggregate(rekeymod(L, 100), partial)")},
		{Name: "widejoin", Arrival: 0.1, Plan: mustParse("aggregate(join(L, R))")},
	}

	for _, sched := range []coflow.Scheduler{coflow.NewVarys(), coflow.PerFlowFair{}} {
		res, err := exec.ExecuteBatch(jobs, sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch under %s:\n", sched.Name())
		for ji, job := range jobs {
			fmt.Printf("  %-9s arrives %.1f s  stages %d  isolated net time %7.3f s  completes at %7.3f s\n",
				job.Name, job.Arrival, len(res.Results[ji].Stages),
				res.Results[ji].TotalTimeSec, res.JobCompletion[ji])
		}
		var avg float64
		for ji, c := range res.JobCompletion {
			avg += c - jobs[ji].Arrival
		}
		avg /= float64(len(jobs))
		fmt.Printf("  batch makespan %.3f s (sequential floor %.3f s), avg job latency %.3f s\n\n",
			res.Makespan, res.SequentialTimeSec, avg)
	}
	fmt.Println("All four shuffles are all-to-all, so they share every port and the batch")
	fmt.Println("makespan sits at the work-conserving floor either way — but the coflow-")
	fmt.Println("aware scheduler (SEBF) finishes the small jobs far earlier than per-flow")
	fmt.Println("fairness does, cutting the average job latency.")
}
