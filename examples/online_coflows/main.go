// online_coflows: the coflow substrate on its own — an online workload of
// staggered analytics shuffles competing for the fabric, compared across the
// coflow schedulers the paper builds on: Varys (SEBF+MADD), Aalo (D-CLAS),
// FIFO, and TCP-like per-flow fair sharing.
//
// This is the "data communications domain" half of the co-optimization
// story: for a fixed set of flows, scheduling at coflow granularity beats
// flow granularity on average CCT, and clairvoyant SEBF beats non-clairvoyant
// D-CLAS, which beats FIFO.
//
//	go run ./examples/online_coflows
package main

import (
	"fmt"
	"log"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
)

// mixedWorkload builds a cluster-like trace: a few wide, heavy shuffles plus
// a stream of small interactive coflows arriving while they run — the
// workload mix where coflow-aware scheduling shines.
func mixedWorkload(n int) []*coflow.Coflow {
	var out []*coflow.Coflow
	id := 0
	add := func(arrival float64, flows []coflow.Flow) {
		out = append(out, coflow.New(id, fmt.Sprintf("cf-%d", id), arrival, flows))
		id++
	}

	// Three heavy all-to-all shuffles (think: large joins), staggered.
	for s := 0; s < 3; s++ {
		var flows []coflow.Flow
		fid := 0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				flows = append(flows, coflow.Flow{ID: fid, Src: i, Dst: j, Size: 512e6 / float64(n)})
				fid++
			}
		}
		add(float64(s)*5, flows)
	}
	// Twenty small partition-to-one aggregations arriving every second.
	for s := 0; s < 20; s++ {
		dst := s % n
		var flows []coflow.Flow
		fid := 0
		for i := 0; i < n; i++ {
			if i == dst {
				continue
			}
			flows = append(flows, coflow.Flow{ID: fid, Src: i, Dst: dst, Size: 2e6})
			fid++
		}
		add(1+float64(s), flows)
	}
	return out
}

func main() {
	const n = 16
	fabric, err := netsim.NewFabric(n, 0) // 128 MB/s ports
	if err != nil {
		log.Fatal(err)
	}

	scheds := []coflow.Scheduler{
		coflow.NewVarys(),
		coflow.NewAalo(),
		coflow.NewFIFO(),
		coflow.NewSCF(),
		coflow.PerFlowFair{},
	}

	fmt.Printf("online workload: %d coflows over a %d-port fabric at 128 MB/s\n\n", len(mixedWorkload(n)), n)
	fmt.Printf("%-16s %12s %12s %12s %8s\n", "scheduler", "avg CCT (s)", "max CCT (s)", "makespan (s)", "epochs")
	for _, s := range scheds {
		rep, err := netsim.NewSimulator(fabric, s).Run(mixedWorkload(n))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %12.3f %12.3f %12.3f %8d\n", s.Name(), rep.AvgCCT, rep.MaxCCT, rep.Makespan, rep.Epochs)
	}

	fmt.Println("\nExpected on average CCT: the coflow-aware schedulers (varys-sebf, then")
	fmt.Println("aalo-dclas without prior knowledge) beat both FIFO and per-flow fair sharing.")
	fmt.Println("CCF plugs its co-optimized placements into exactly this layer (paper Fig. 3).")
}
