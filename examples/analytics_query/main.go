// analytics_query: the paper's Figure 3 at job granularity — "an analytical
// job is decomposed into a sequence of distributed data operators", each of
// which CCF co-optimizes. The plan below is
//
//	SELECT DISTINCT key, SUM(value)  FROM  L JOIN R USING (key)  GROUP BY key
//
// i.e. join → partial-aggregated group-by → duplicate elimination: all three
// operator families the paper names (§I). Each stage's shuffle is placed by
// the chosen scheduler and simulated as one coflow; the example compares
// Hash, Mini and CCF end to end and verifies all three produce the same
// answer as a single-node reference evaluation.
//
//	go run ./examples/analytics_query
package main

import (
	"fmt"
	"log"
	"math/rand"
	"reflect"

	"ccf/internal/placement"
	"ccf/internal/query"
)

func buildInputs(n int) (*query.Table, *query.Table) {
	rng := rand.New(rand.NewSource(42))
	l := query.NewTable("L", n, 1000)
	r := query.NewTable("R", n, 1000)
	// Zipf-biased loading: node 0 holds the most data, as in the paper's
	// chunk distribution.
	biased := func() int {
		node := 0
		for rng.Float64() > 0.45 && node < n-1 {
			node++
		}
		return node
	}
	for i := 0; i < 40_000; i++ {
		node := biased()
		l.Frags[node] = append(l.Frags[node],
			query.Row{Key: int64(rng.Intn(2000) + 1), Value: int64(rng.Intn(50))})
	}
	for i := 0; i < 120_000; i++ {
		node := biased()
		r.Frags[node] = append(r.Frags[node],
			query.Row{Key: int64(rng.Intn(2000) + 1), Value: int64(rng.Intn(50))})
	}
	return l, r
}

func main() {
	const n = 16
	// The map re-keys join output to a coarser grouping key (key / 20), so
	// the aggregation has to redistribute again — a second coflow.
	plan := &query.DistinctOp{Input: &query.AggOp{
		Input: &query.MapOp{
			Input: &query.JoinOp{Left: &query.Scan{Table: "L"}, Right: &query.Scan{Table: "R"}},
			F:     func(r query.Row) query.Row { return query.Row{Key: r.Key / 20, Value: r.Value} },
		},
		Partial: true,
	}}
	fmt.Println("plan: distinct(aggregate(map(join(L, R), key/20), partial=true))")
	fmt.Printf("cluster: %d nodes, 15x partitions, 128 MB/s ports\n\n", n)

	var reference []query.Row
	for _, s := range []placement.Scheduler{placement.Hash{}, placement.Mini{}, placement.CCF{}} {
		l, r := buildInputs(n)
		exec, err := query.NewExecutor(query.Config{Nodes: n, Scheduler: s}, l, r)
		if err != nil {
			log.Fatal(err)
		}
		if reference == nil {
			want, err := query.Reference(plan, map[string][]query.Row{"L": l.Gather(), "R": r.Gather()})
			if err != nil {
				log.Fatal(err)
			}
			reference = query.SortRows(want)
		}
		res, err := exec.Execute(plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", s.Name())
		for _, st := range res.Stages {
			fmt.Printf("  %-20s rows %7d -> %7d   traffic %7.1f MB   bottleneck %7.1f MB   %7.3f s\n",
				st.Operator, st.RowsIn, st.RowsOut,
				float64(st.TrafficBytes)/1e6, float64(st.BottleneckBytes)/1e6, st.TimeSec)
		}
		status := "result matches reference"
		if !reflect.DeepEqual(res.Output.Gather(), reference) {
			status = "RESULT MISMATCH"
		}
		fmt.Printf("  total network time %.3f s, total traffic %.1f MB — %s\n\n",
			res.TotalTimeSec, float64(res.TotalTrafficBytes)/1e6, status)
	}
	fmt.Println("Every operator's shuffle is a coflow; CCF places each one to minimise")
	fmt.Println("its bottleneck port, so the whole job's network time shrinks stage by stage.")
}
