// Quickstart: the minimal CCF walk-through. Generate a small TPC-H-like
// workload, run the three application-level schedulers of the paper
// (Hash, Mini, CCF) through the co-optimization pipeline, and compare the
// network traffic and communication time of the resulting shuffles.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ccf/internal/core"
	"ccf/internal/workload"
)

func main() {
	// A 100-node cluster holding ≈10 GB (1% of the paper's dataset) of
	// CUSTOMER ⋈ ORDERS input, with the paper's default zipf=0.8 chunk
	// distribution and 20% skew towards custkey 1.
	w, err := workload.Generate(workload.Config{
		Nodes:          100,
		Zipf:           workload.DefaultZipf,
		Skew:           workload.DefaultSkew,
		CustomerTuples: workload.DefaultCustomerTuples / 100,
		OrderTuples:    workload.DefaultOrderTuples / 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d nodes, %d partitions, %.2f GB input\n\n",
		w.Chunks.N, w.Chunks.P, float64(w.TotalBytes())/1e9)

	// Run all three approaches. Hash is skew-oblivious; Mini and CCF use
	// partial duplication; all are measured under optimal (MADD) coflow
	// scheduling over a non-blocking switch with 128 MB/s ports.
	results, err := core.RunAll(w, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %14s %18s %20s\n", "placer", "traffic (GB)", "bottleneck (GB)", "comm. time (s)")
	for _, a := range []core.Approach{core.ApproachHash, core.ApproachMini, core.ApproachCCF} {
		r := results[a]
		fmt.Printf("%-6s %14.2f %18.2f %20.2f\n",
			r.Approach, r.TrafficGB(), float64(r.BottleneckBytes)/1e9, r.TimeSec)
	}

	hash, ccf, mini := results[core.ApproachHash], results[core.ApproachCCF], results[core.ApproachMini]
	fmt.Printf("\nCCF is %.1fx faster than Hash and %.1fx faster than Mini.\n",
		hash.TimeSec/ccf.TimeSec, mini.TimeSec/ccf.TimeSec)
	fmt.Println("Note how Mini moves the fewest bytes yet is the slowest:")
	fmt.Println("minimal traffic is not minimal communication time — the gap CCF closes.")
}
