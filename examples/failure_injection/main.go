// failure_injection: the robustness story (paper §VI's goal of staying
// "highly efficient and robust … in different network configurations").
// A shuffle is placed and launched; mid-transfer one node's ingress link
// degrades to 1/10 bandwidth and later recovers. The example shows
//
//  1. the same coflow under the outage vs a healthy fabric (netsim's
//     CapacityEvent failure injection), and
//
//  2. what placement-time awareness buys: if the degradation is known up
//     front (a persistently slow link), the capacity-aware WeightedCCF
//     places around it while plain CCF piles onto the slow port.
//
//     go run ./examples/failure_injection
package main

import (
	"fmt"
	"log"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/partition"
	"ccf/internal/placement"
	"ccf/internal/workload"
)

func main() {
	const n = 24
	w, err := workload.Generate(workload.Config{
		Nodes:          n,
		Zipf:           0.8,
		CustomerTuples: workload.DefaultCustomerTuples / 1000,
		OrderTuples:    workload.DefaultOrderTuples / 1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d nodes, %.2f GB; port bandwidth 128 MB/s\n\n", n, float64(w.TotalBytes())/1e9)

	// --- Part 1: a transient outage hits a running shuffle. -------------
	pl, err := placement.CCF{}.Place(w.Chunks, nil)
	if err != nil {
		log.Fatal(err)
	}
	vol, err := partition.FlowVolumes(w.Chunks, pl)
	if err != nil {
		log.Fatal(err)
	}
	fabric, err := netsim.NewFabric(n, 0)
	if err != nil {
		log.Fatal(err)
	}
	runWith := func(events []netsim.CapacityEvent) float64 {
		cf, err := coflow.FromVolumes(0, "shuffle", 0, n, vol)
		if err != nil {
			log.Fatal(err)
		}
		sim := netsim.NewSimulator(fabric, coflow.NewVarys())
		sim.Events = events
		rep, err := sim.Run([]*coflow.Coflow{cf})
		if err != nil {
			log.Fatal(err)
		}
		return rep.MaxCCT
	}
	healthy := runWith(nil)
	outage := runWith([]netsim.CapacityEvent{
		{Time: healthy * 0.25, Port: 0, EgressFactor: 1, IngressFactor: 0.1},
		{Time: healthy * 0.75, Port: 0, EgressFactor: 1, IngressFactor: 1},
	})
	fmt.Println("Part 1 — transient failure during the shuffle (node 0 ingress at 10% for half the run):")
	fmt.Printf("  healthy fabric:   CCT %6.2f s\n", healthy)
	fmt.Printf("  with the outage:  CCT %6.2f s (%.2fx slower; flows re-pace via MADD each epoch)\n\n",
		outage, outage/healthy)

	// --- Part 2: a persistent slow link, known at placement time. -------
	eg := make([]float64, n)
	in := make([]float64, n)
	for i := 0; i < n; i++ {
		eg[i], in[i] = netsim.DefaultPortBandwidth, netsim.DefaultPortBandwidth
	}
	in[0] = netsim.DefaultPortBandwidth / 10
	hetero, err := netsim.NewHeterogeneousFabric(eg, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Part 2 — persistent slow link (node 0 ingress at 10%), placement-time aware vs oblivious:")
	for _, s := range []placement.Scheduler{
		placement.CCF{},
		placement.WeightedCCF{EgressCap: eg, IngressCap: in},
	} {
		pl, err := s.Place(w.Chunks, nil)
		if err != nil {
			log.Fatal(err)
		}
		v, err := partition.FlowVolumes(w.Chunks, pl)
		if err != nil {
			log.Fatal(err)
		}
		cf, err := coflow.FromVolumes(0, s.Name(), 0, n, v)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := netsim.NewSimulator(hetero, coflow.NewVarys()).Run([]*coflow.Coflow{cf})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-13s CCT %7.2f s\n", s.Name()+":", rep.MaxCCT)
	}
	fmt.Println("\nThe oblivious placer keeps feeding the degraded ingress; the capacity-aware")
	fmt.Println("variant folds per-port R_l into Algorithm 1's objective and routes around it.")
}
