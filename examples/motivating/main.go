// Motivating: reproduces the worked example of the paper's Figures 1 and 2
// — three nodes, eight chunks of four join keys — and shows step by step why
// co-optimization wins: the traffic-optimal plan SP2 moves 6 tuples but
// completes in 4 time units, while the traffic-suboptimal SP1 moves 7 tuples
// and completes in 3. CCF's Algorithm 1 recovers SP1, and the branch & bound
// solver certifies that its bottleneck T = 3 is optimal.
//
//	go run ./examples/motivating
package main

import (
	"fmt"
	"log"

	"ccf/internal/core"
)

func main() {
	res, err := core.MotivatingExample()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Input (Figure 1): key^frequency chunks on three nodes")
	fmt.Println("  node 0: 1^3 2^1 0^3")
	fmt.Println("  node 1: 1^6 2^2 5^1")
	fmt.Println("  node 2: 5^2 0^1")
	fmt.Println()
	fmt.Println("Partitions (by join key): 0, 1, 2, 5 — every tuple with the same key")
	fmt.Println("must end up on one node for the local joins.")
	fmt.Println()

	show := func(p core.MotivatingPlan, label string) {
		fmt.Printf("%s (destinations per key %v):\n", label, p.Placement.Dest)
		fmt.Printf("  tuples moved:                   %d\n", p.Traffic)
		fmt.Printf("  CCT, optimal coflow schedule:   %g time units\n", p.OptimalCCT)
		fmt.Printf("  CCT, uncoordinated (Fig. 2a):   %g time units\n\n", p.WorstCCT)
	}
	show(res.SP0, "SP0 — hash-based (key mod 3)")
	show(res.SP2, "SP2 — traffic-optimal (what Mini/track-join picks)")
	show(res.SP1, "SP1 — traffic-suboptimal but CCT-optimal")
	show(res.CCF, "CCF — Algorithm 1's output")

	fmt.Printf("Branch & bound certifies min-max port load T = %d ⇒ no plan beats CCT 3.\n", res.OptimalT)
	fmt.Println()
	fmt.Println("Takeaways (the paper's Section II.C):")
	fmt.Println(" 1. Coflow scheduling alone helps: SP2 drops from 6 to 4 time units.")
	fmt.Println(" 2. But the application-level plan bounds what the network can do:")
	fmt.Println("    moving one MORE tuple (SP1) unlocks CCT 3 < 4.")
	fmt.Println(" 3. Only a scheduler that sees both levels — CCF — finds that plan.")
}
