// tpch_join: the paper's query end to end at tuple granularity —
//
//	select * from CUSTOMER C join ORDERS O on C.CUSTKEY = O.CUSTKEY
//
// This example materialises actual relations (a scaled-down TPC-H), loads
// them onto a simulated shared-nothing cluster with zipf-biased locality,
// and executes the full distributed pipeline for each placement scheduler:
// skew detection → partial duplication → placement → simulated shuffle →
// parallel local hash joins. The join cardinality is verified against a
// single-node reference join, demonstrating that all three schedulers are
// plan-equivalent and differ only in network behaviour.
//
//	go run ./examples/tpch_join
package main

import (
	"fmt"
	"log"

	"ccf/internal/join"
	"ccf/internal/partition"
	"ccf/internal/placement"
)

func main() {
	const (
		nodes     = 20
		customers = 20_000 // scaled-down TPC-H: |ORDERS| = 10 × |CUSTOMER|
		perCust   = 10
		skewFrac  = 0.20 // 20% of ORDERS re-keyed to custkey 1, as in §IV.A.2
	)

	customer, orders := join.GenerateRelations(join.GenConfig{
		Customers: customers, OrdersPerCust: perCust,
		PayloadBytes: 1000, SkewFrac: skewFrac, Seed: 1,
	})
	want := join.Reference(customer, orders)
	fmt.Printf("CUSTOMER: %d tuples, ORDERS: %d tuples, reference |C ⋈ O| = %d\n\n",
		len(customer.Tuples), len(orders.Tuples), want)

	build := func() *join.Cluster {
		cl := join.NewCluster(nodes, partition.ModPartitioner{NumPartitions: 15 * nodes})
		// Zipf-biased loading reproduces the paper's chunk distribution:
		// node 0 accumulates the largest fragment of every partition.
		cl.LoadByPlacement(true, customer, join.ZipfPlacer(nodes, 0.8, 2))
		cl.LoadByPlacement(false, orders, join.ZipfPlacer(nodes, 0.8, 3))
		return cl
	}

	fmt.Printf("%-6s %12s %16s %16s %10s\n", "placer", "output", "traffic (MB)", "bottleneck (MB)", "time (s)")
	for _, s := range []placement.Scheduler{placement.Hash{}, placement.Mini{}, placement.CCF{}} {
		opts := join.Options{Scheduler: s}
		if s.Name() != "Hash" {
			opts.SkewThreshold = 0.05 // Mini and CCF integrate partial duplication
		}
		res, err := join.Execute(build(), opts)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if res.OutputTuples != want {
			status = fmt.Sprintf("WRONG (want %d)", want)
		}
		fmt.Printf("%-6s %12d %16.1f %16.1f %10.3f   cardinality %s\n",
			s.Name(), res.OutputTuples,
			float64(res.TrafficBytes)/1e6, float64(res.BottleneckBytes)/1e6,
			res.CommTime, status)
		if len(res.SkewedKeys) > 0 {
			fmt.Printf("       partial duplication kept keys %v local\n", res.SkewedKeys)
		}
	}
	fmt.Println("\nAll schedulers produce the same join output; CCF minimises the")
	fmt.Println("bottleneck port load, which is what bounds the shuffle's completion time.")
}
