// Package ccf's root benchmark harness: one benchmark per figure panel of
// the paper's evaluation (Figures 5-7, both panels each, plus the Figure 1/2
// motivating example) and the ablation/micro benchmarks behind DESIGN.md's
// per-experiment index.
//
// The figure benchmarks run the same sweeps as cmd/ccfbench at the paper's
// node counts; the headline speedup bands are reported as benchmark metrics
// (speedup-over-Hash / speedup-over-Mini) and the full series is logged once
// per run with -v. Byte volumes use Scale so a benchmark iteration stays in
// the hundreds of milliseconds; speedups are scale-invariant (tested in
// internal/core).
package ccf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ccf/internal/bound"
	"ccf/internal/coflow"
	"ccf/internal/core"
	"ccf/internal/fbtrace"
	"ccf/internal/join"
	"ccf/internal/milp"
	"ccf/internal/netsim"
	"ccf/internal/partition"
	"ccf/internal/placement"
	"ccf/internal/query"
	"ccf/internal/stats"
	"ccf/internal/topology"
	"ccf/internal/tpch"
	"ccf/internal/trackjoin"
	"ccf/internal/workload"
)

// benchScale keeps single iterations fast while preserving every figure's
// shape exactly (speedups are scale-invariant under the bandwidth model).
const benchScale = 0.01

func logFigure(b *testing.B, fr *core.FigureResult) {
	b.Helper()
	var sb strings.Builder
	if err := stats.RenderASCII(&sb, fr.Traffic); err != nil {
		b.Fatal(err)
	}
	if err := stats.RenderASCII(&sb, fr.Time); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + sb.String())
	loH, hiH := stats.MinMax(fr.SpeedupOverHash)
	loM, hiM := stats.MinMax(fr.SpeedupOverMini)
	b.ReportMetric(loH, "speedupHash-min")
	b.ReportMetric(hiH, "speedupHash-max")
	b.ReportMetric(loM, "speedupMini-min")
	b.ReportMetric(hiM, "speedupMini-max")
}

// BenchmarkFig5 regenerates Figure 5 (traffic and time vs number of nodes,
// 100..1000, zipf=0.8, skew=20%). Paper bands: CCF 2.1-3.7x over Hash,
// 8.1-15.2x over Mini.
func BenchmarkFig5(b *testing.B) {
	var fr *core.FigureResult
	var err error
	for i := 0; i < b.N; i++ {
		fr, err = core.Fig5(nil, core.SweepOptions{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
	}
	logFigure(b, fr)
}

// BenchmarkFig6 regenerates Figure 6 (vs zipf factor 0..1, 500 nodes,
// skew=20%). Paper bands: CCF 1.9-98.7x over Hash, 6.7-395x over Mini.
func BenchmarkFig6(b *testing.B) {
	var fr *core.FigureResult
	var err error
	for i := 0; i < b.N; i++ {
		fr, err = core.Fig6(nil, 500, core.SweepOptions{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
	}
	logFigure(b, fr)
}

// BenchmarkFig7 regenerates Figure 7 (vs skew 0..50%, 500 nodes, zipf=0.8).
// Paper bands: CCF 1.1-12.8x over Hash, 12.8x over Mini; at skew=0 CCF is
// still ≈50 s faster than Hash at full scale.
func BenchmarkFig7(b *testing.B) {
	var fr *core.FigureResult
	var err error
	for i := 0; i < b.N; i++ {
		fr, err = core.Fig7(nil, 500, core.SweepOptions{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
	}
	logFigure(b, fr)
}

// BenchmarkMotivatingExample regenerates Figures 1 and 2: traffic 8/7/6 for
// SP0/SP1/SP2 and CCTs 6 (worst), 4 (SP2 optimal), 3 (SP1/CCF).
func BenchmarkMotivatingExample(b *testing.B) {
	b.ReportAllocs()
	var res *core.MotivatingResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.MotivatingExample()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("SP0 traffic=%d, SP1 traffic=%d CCT=%g, SP2 traffic=%d CCT=%g (worst %g), CCF CCT=%g, optimal T=%d",
		res.SP0.Traffic, res.SP1.Traffic, res.SP1.OptimalCCT,
		res.SP2.Traffic, res.SP2.OptimalCCT, res.SP2.WorstCCT, res.CCF.OptimalCCT, res.OptimalT)
}

// --- Ablations (DESIGN.md per-experiment index) -----------------------------

// BenchmarkAblationRank: aligned vs shuffled zipf ranks (abl-rank). Mini's
// collapse into node 0 requires the paper's rank alignment.
func BenchmarkAblationRank(b *testing.B) {
	b.ReportAllocs()
	for _, shuffle := range []bool{false, true} {
		name := "aligned"
		if shuffle {
			name = "shuffled"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var fr *core.FigureResult
			var err error
			for i := 0; i < b.N; i++ {
				fr, err = core.Fig6([]float64{0.8}, 500, core.SweepOptions{Scale: benchScale, ShuffleRanks: shuffle})
				if err != nil {
					b.Fatal(err)
				}
			}
			mini, _ := fr.Time.Get("Mini")
			ccf, _ := fr.Time.Get("CCF")
			b.ReportMetric(mini.Values[0], "Mini-sec")
			b.ReportMetric(ccf.Values[0], "CCF-sec")
		})
	}
}

// BenchmarkAblationPmult: partition granularity p = m×n (abl-pmult).
func BenchmarkAblationPmult(b *testing.B) {
	b.ReportAllocs()
	for _, mult := range []int{5, 15, 30} {
		b.Run(fmt.Sprintf("p=%dn", mult), func(b *testing.B) {
			b.ReportAllocs()
			var fr *core.FigureResult
			var err error
			for i := 0; i < b.N; i++ {
				fr, err = core.Fig6([]float64{0.8}, 500, core.SweepOptions{Scale: benchScale, PartitionMultiplier: mult})
				if err != nil {
					b.Fatal(err)
				}
			}
			ccf, _ := fr.Time.Get("CCF")
			b.ReportMetric(ccf.Values[0], "CCF-sec")
		})
	}
}

// BenchmarkAblationSort: Algorithm 1 with and without its descending sort
// (abl-sort).
func BenchmarkAblationSort(b *testing.B) {
	b.ReportAllocs()
	w, err := workload.Generate(workload.Config{
		Nodes: 500, Zipf: 0.8, Skew: 0.2,
		CustomerTuples: int64(benchScale * workload.DefaultCustomerTuples),
		OrderTuples:    int64(benchScale * workload.DefaultOrderTuples),
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []placement.Scheduler{placement.CCF{}, placement.CCF{NoSort: true}} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var r *core.Result
			for i := 0; i < b.N; i++ {
				r, err = core.RunScheduler(w, s, true, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.TimeSec, "CCT-sec")
		})
	}
}

// BenchmarkHeuristicVsExact: the abl-exact gap measurement — CCF heuristic
// against the certified branch-and-bound optimum on small instances.
func BenchmarkHeuristicVsExact(b *testing.B) {
	b.ReportAllocs()
	w, err := workload.Generate(workload.Config{
		Nodes: 5, Partitions: 12, CustomerTuples: 500, OrderTuples: 5000,
		PayloadBytes: 100, Zipf: 0.8, Skew: 0.2, JitterFrac: 0.05, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		ev, err := placement.Evaluate(placement.CCF{}, w.Chunks, nil)
		if err != nil {
			b.Fatal(err)
		}
		res, err := milp.Solve(w.Chunks, nil, milp.Options{UpperBound: ev.BottleneckBytes, MaxExplored: 20_000_000})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Optimal {
			b.Fatal("instance not certified")
		}
		ratio = float64(ev.BottleneckBytes) / float64(res.T)
	}
	b.ReportMetric(ratio, "heuristic/optimal")
}

// BenchmarkAblationCoflowSchedulers compares the network-level schedulers on
// a fixed online workload (abl-sched): the substrate half of the eval.
func BenchmarkAblationCoflowSchedulers(b *testing.B) {
	b.ReportAllocs()
	const n = 16
	mk := func() []*coflow.Coflow {
		rng := rand.New(rand.NewSource(42))
		var out []*coflow.Coflow
		for ci := 0; ci < 30; ci++ {
			var flows []coflow.Flow
			width := 1 + rng.Intn(n-1)
			for f := 0; f < width; f++ {
				src := rng.Intn(n)
				dst := (src + 1 + rng.Intn(n-1)) % n
				flows = append(flows, coflow.Flow{ID: f, Src: src, Dst: dst, Size: float64(1+rng.Intn(100)) * 1e6})
			}
			out = append(out, coflow.New(ci, "bench", float64(ci)/2, flows))
		}
		return out
	}
	fabric, err := netsim.NewFabric(n, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []coflow.Scheduler{
		coflow.NewVarys(), coflow.NewAalo(), coflow.NewFIFO(), coflow.PerFlowFair{},
	} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var rep *netsim.Report
			for i := 0; i < b.N; i++ {
				rep, err = netsim.NewSimulator(fabric, s).Run(mk())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.AvgCCT, "avgCCT-sec")
		})
	}
}

// --- Micro-benchmarks of the hot paths ---------------------------------------

func benchWorkload(b *testing.B, n int) *workload.Workload {
	b.Helper()
	w, err := workload.Generate(workload.Config{
		Nodes: n, Zipf: 0.8, Skew: 0.2,
		CustomerTuples: int64(benchScale * workload.DefaultCustomerTuples),
		OrderTuples:    int64(benchScale * workload.DefaultOrderTuples),
	})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkPlacement measures the application-level schedulers at the
// paper's default 500-node, 7500-partition shape.
func BenchmarkPlacement(b *testing.B) {
	b.ReportAllocs()
	w := benchWorkload(b, 500)
	for _, s := range []placement.Scheduler{placement.Hash{}, placement.Mini{}, placement.CCF{}, placement.LPT{}} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Place(w.Chunks, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCCFScaling measures Algorithm 1's O(p·n) cost across cluster
// sizes (the reason the paper abandons the half-hour Gurobi solve).
func BenchmarkCCFScaling(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{100, 500, 1000} {
		w := benchWorkload(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (placement.CCF{}).Place(w.Chunks, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloadGenerate measures the synthetic TPC-H generator.
func BenchmarkWorkloadGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchWorkload(b, 500)
	}
}

// BenchmarkEventSim measures the flow-level simulator on a single all-to-all
// coflow (n² − n flows) on the steady-state path: construction is hoisted,
// the Simulator and Report are reused via RunInto, so the op is purely the
// event loop — 0 allocs/op by design (see internal/netsim/alloc_bench_test.go
// for the per-scheduler variants).
func BenchmarkEventSim(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			vol := make([]int64, n*n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j {
						vol[i*n+j] = int64(1e6 * (1 + (i+j)%7))
					}
				}
			}
			fabric, err := netsim.NewFabric(n, 0)
			if err != nil {
				b.Fatal(err)
			}
			cf, err := coflow.FromVolumes(0, "bench", 0, n, vol)
			if err != nil {
				b.Fatal(err)
			}
			cfs := []*coflow.Coflow{cf}
			sim := netsim.NewSimulator(fabric, coflow.NewVarys())
			var rep netsim.Report
			if err := sim.RunInto(cfs, &rep); err != nil { // warm the scratch
				b.Fatal(err)
			}
			epochs := rep.Epochs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sim.RunInto(cfs, &rep); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(epochs)*float64(b.N)/b.Elapsed().Seconds(), "epochs/s")
			}
		})
	}
}

// BenchmarkDistributedJoin measures the tuple-level engine end to end.
func BenchmarkDistributedJoin(b *testing.B) {
	b.ReportAllocs()
	cust, ords := join.GenerateRelations(join.GenConfig{
		Customers: 10_000, OrdersPerCust: 10, PayloadBytes: 100, SkewFrac: 0.2, Seed: 1,
	})
	for i := 0; i < b.N; i++ {
		cl := join.NewCluster(16, partition.ModPartitioner{NumPartitions: 240})
		cl.LoadByPlacement(true, cust, join.ZipfPlacer(16, 0.8, 2))
		cl.LoadByPlacement(false, ords, join.ZipfPlacer(16, 0.8, 3))
		res, err := join.Execute(cl, join.Options{Scheduler: placement.CCF{}, SkewThreshold: 0.05})
		if err != nil {
			b.Fatal(err)
		}
		if res.OutputTuples == 0 {
			b.Fatal("empty join")
		}
	}
}

// BenchmarkMILP measures the exact solver on a certifiable instance.
func BenchmarkMILP(b *testing.B) {
	b.ReportAllocs()
	w, err := workload.Generate(workload.Config{
		Nodes: 4, Partitions: 12, CustomerTuples: 400, OrderTuples: 4000,
		PayloadBytes: 100, Zipf: 0.8, Skew: 0.2, JitterFrac: 0.05, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := milp.Solve(w.Chunks, nil, milp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Optimal {
			b.Fatal("instance not certified")
		}
	}
}

// --- Extension benchmarks (paper generalizations; DESIGN.md §5) -------------

// BenchmarkAblationHetero: capacity-aware placement on a fabric with one
// degraded ingress link (the R_l generalization of constraint 1.5).
func BenchmarkAblationHetero(b *testing.B) {
	b.ReportAllocs()
	const n = 100
	w := benchWorkload(b, n)
	eg := make([]float64, n)
	in := make([]float64, n)
	for i := 0; i < n; i++ {
		eg[i], in[i] = netsim.DefaultPortBandwidth, netsim.DefaultPortBandwidth
	}
	in[0] = netsim.DefaultPortBandwidth / 8
	for _, s := range []placement.Scheduler{placement.CCF{}, placement.WeightedCCF{EgressCap: eg, IngressCap: in}} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var t float64
			for i := 0; i < b.N; i++ {
				pl, err := s.Place(w.Chunks, nil)
				if err != nil {
					b.Fatal(err)
				}
				loads, err := partition.ComputeLoads(w.Chunks, pl, nil)
				if err != nil {
					b.Fatal(err)
				}
				t, err = placement.WeightedBottleneck(loads, eg, in)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(t, "CCT-sec")
		})
	}
}

// BenchmarkAblationTopology: rack-aware CCF vs plain CCF on a 4x
// oversubscribed leaf-spine (the L_ij link-set generalization).
func BenchmarkAblationTopology(b *testing.B) {
	b.ReportAllocs()
	topo, err := topology.NewLeafSpine(8, 16, netsim.DefaultPortBandwidth, 4*netsim.DefaultPortBandwidth)
	if err != nil {
		b.Fatal(err)
	}
	w := benchWorkload(b, topo.N)
	for _, s := range []placement.Scheduler{placement.CCF{}, topology.RackAwareCCF{Topo: topo}} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var cct float64
			for i := 0; i < b.N; i++ {
				pl, err := s.Place(w.Chunks, nil)
				if err != nil {
					b.Fatal(err)
				}
				cct, err = topo.PlacementCCT(w.Chunks, pl)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cct, "CCT-sec")
		})
	}
}

// BenchmarkQueryPipeline: the three-operator analytical job (join →
// re-keyed aggregate → distinct) end to end per placement scheduler.
func BenchmarkQueryPipeline(b *testing.B) {
	b.ReportAllocs()
	const n = 16
	mkTables := func() (*query.Table, *query.Table) {
		rng := rand.New(rand.NewSource(1))
		l := query.NewTable("L", n, 100)
		r := query.NewTable("R", n, 100)
		for i := 0; i < 5_000; i++ {
			l.Frags[rng.Intn(n)] = append(l.Frags[rng.Intn(n)],
				query.Row{Key: int64(rng.Intn(500) + 1), Value: int64(rng.Intn(50))})
		}
		for i := 0; i < 15_000; i++ {
			r.Frags[rng.Intn(n)] = append(r.Frags[rng.Intn(n)],
				query.Row{Key: int64(rng.Intn(500) + 1), Value: int64(rng.Intn(50))})
		}
		return l, r
	}
	plan := &query.DistinctOp{Input: &query.AggOp{
		Input: &query.MapOp{
			Input: &query.JoinOp{Left: &query.Scan{Table: "L"}, Right: &query.Scan{Table: "R"}},
			F:     func(r query.Row) query.Row { return query.Row{Key: r.Key / 10, Value: r.Value} },
		},
		Partial: true,
	}}
	for _, s := range []placement.Scheduler{placement.Hash{}, placement.CCF{}} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var tt float64
			for i := 0; i < b.N; i++ {
				l, r := mkTables()
				e, err := query.NewExecutor(query.Config{Nodes: n, Scheduler: s}, l, r)
				if err != nil {
					b.Fatal(err)
				}
				res, err := e.Execute(plan)
				if err != nil {
					b.Fatal(err)
				}
				tt = res.TotalTimeSec
			}
			b.ReportMetric(tt, "net-sec")
		})
	}
}

// BenchmarkFBTraceOnline: the coflow schedulers on a Facebook-like online
// workload (the substrate half of the paper's pipeline at trace scale).
func BenchmarkFBTraceOnline(b *testing.B) {
	b.ReportAllocs()
	for _, s := range []coflow.Scheduler{coflow.NewVarys(), coflow.NewAalo(), coflow.PerFlowFair{}} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var avg float64
			for i := 0; i < b.N; i++ {
				cfs, err := fbtrace.Generate(fbtrace.Config{Machines: 32, Coflows: 100, Seed: 5})
				if err != nil {
					b.Fatal(err)
				}
				fab, err := netsim.NewFabric(32, 0)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := netsim.NewSimulator(fab, s).Run(cfs)
				if err != nil {
					b.Fatal(err)
				}
				avg = rep.AvgCCT
			}
			b.ReportMetric(avg, "avgCCT-sec")
		})
	}
}

// BenchmarkPerKeyPlacement: track-join-granularity placement (footnote 6):
// one micro-partition per distinct key.
func BenchmarkPerKeyPlacement(b *testing.B) {
	b.ReportAllocs()
	cust, ords := join.GenerateRelations(join.GenConfig{
		Customers: 5_000, OrdersPerCust: 10, PayloadBytes: 100, Seed: 2,
	})
	for _, s := range []placement.Scheduler{placement.Mini{}, placement.CCF{}} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cl, _, err := trackjoin.BuildCluster(16, cust, ords, join.ZipfPlacer(16, 0.8, 3))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := join.Execute(cl, join.Options{Scheduler: s}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRefinement: Algorithm 1 alone vs with local-search refinement at
// the paper's 500-node shape.
func BenchmarkRefinement(b *testing.B) {
	b.ReportAllocs()
	w := benchWorkload(b, 500)
	for _, s := range []placement.Scheduler{placement.CCF{}, placement.CCFRefined{}} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var t int64
			for i := 0; i < b.N; i++ {
				ev, err := placement.Evaluate(s, w.Chunks, nil)
				if err != nil {
					b.Fatal(err)
				}
				t = ev.BottleneckBytes
			}
			b.ReportMetric(float64(t), "T-bytes")
		})
	}
}

// BenchmarkLowerBound: the relaxation bound at the paper's full shape — the
// certification that replaces Gurobi's optimality evidence.
func BenchmarkLowerBound(b *testing.B) {
	b.ReportAllocs()
	w := benchWorkload(b, 500)
	ev, err := placement.Evaluate(placement.CCF{}, w.Chunks, nil)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, r, err := bound.Gap(w.Chunks, nil, ev.BottleneckBytes)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r
	}
	b.ReportMetric(ratio, "gap-ratio")
}

// BenchmarkOnlineCoOptimization: backlog-aware vs oblivious placement for a
// job arriving while another floods the fabric (abl-online).
func BenchmarkOnlineCoOptimization(b *testing.B) {
	b.ReportAllocs()
	mkJobs := func() []core.OnlineJob {
		first, err := workload.Generate(workload.Config{
			Nodes: 16, CustomerTuples: 20_000, OrderTuples: 200_000, PayloadBytes: 1000, Zipf: 1.0,
		})
		if err != nil {
			b.Fatal(err)
		}
		second, err := workload.Generate(workload.Config{
			Nodes: 16, CustomerTuples: 20_000, OrderTuples: 200_000, PayloadBytes: 1000, Zipf: 0,
		})
		if err != nil {
			b.Fatal(err)
		}
		return []core.OnlineJob{
			{Name: "hot", Arrival: 0, Workload: first, Scheduler: placement.Mini{}},
			{Name: "late", Arrival: 1, Workload: second},
		}
	}
	for _, coopt := range []bool{false, true} {
		name := "oblivious"
		if coopt {
			name = "co-optimized"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var avg float64
			for i := 0; i < b.N; i++ {
				rep, err := core.RunOnline(mkJobs(), core.OnlineOptions{CoOptimize: coopt})
				if err != nil {
					b.Fatal(err)
				}
				avg = rep.AvgCCT
			}
			b.ReportMetric(avg, "avgCCT-sec")
		})
	}
}

// BenchmarkTPCHQueries: the three-table chain-join analytics per placement
// scheduler (extension #27).
func BenchmarkTPCHQueries(b *testing.B) {
	b.ReportAllocs()
	tables, err := tpch.Generate(tpch.Config{Nodes: 12, Customers: 2_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []placement.Scheduler{placement.Hash{}, placement.CCF{}} {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var tt float64
			for i := 0; i < b.N; i++ {
				exec, err := tables.NewExecutor(query.Config{Nodes: 12, Scheduler: s})
				if err != nil {
					b.Fatal(err)
				}
				res, err := exec.Execute(tpch.RevenuePerNation())
				if err != nil {
					b.Fatal(err)
				}
				tt = res.TotalTimeSec
			}
			b.ReportMetric(tt, "net-sec")
		})
	}
}
