// ccfsim runs a single redistribution scenario end to end: generate (or
// load) a workload, place it with a chosen application-level scheduler,
// and measure the shuffle on the simulated fabric under a chosen coflow
// scheduler. It is the CLI equivalent of one point of the paper's figures,
// with every knob exposed.
//
// Usage:
//
//	ccfsim -nodes 100 -zipf 0.8 -skew 0.2 -placer ccf
//	ccfsim -nodes 50 -placer mini -coflow fair -eventsim
//	ccfsim -trace shuffle.txt -coflow varys     # simulate a CoflowSim trace
package main

import (
	"flag"
	"fmt"
	"os"

	"ccf/internal/coflow"
	"ccf/internal/core"
	"ccf/internal/netsim"
	"ccf/internal/placement"
	"ccf/internal/telemetry"
	"ccf/internal/trace"
	"ccf/internal/workload"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 100, "cluster size n")
		parts     = flag.Int("partitions", 0, "partition count p (0 = 15n)")
		zipf      = flag.Float64("zipf", workload.DefaultZipf, "zipf factor for chunk sizes over nodes")
		skewFrac  = flag.Float64("skew", workload.DefaultSkew, "fraction of ORDERS re-keyed to the hot key")
		scale     = flag.Float64("scale", 0.01, "dataset scale factor (1.0 = paper's ≈1 TB)")
		placer    = flag.String("placer", "ccf", "application-level scheduler: hash, mini, ccf, ccf-nosort, lpt, random")
		coflowSch = flag.String("coflow", "varys", "coflow scheduler for -eventsim/-trace: varys, aalo, fifo, scf, ncf, fair, sequential")
		bandwidth = flag.Float64("bw", 0, "port bandwidth bytes/sec (0 = 128 MB/s)")
		eventSim  = flag.Bool("eventsim", false, "run the flow-level event simulator")
		traceFile = flag.String("trace", "", "simulate a CoflowSim benchmark trace instead of a generated workload")
		seed      = flag.Uint64("seed", 0, "workload seed")
		traceOut  = flag.String("tracefile", "", "write a Chrome trace-event file of the simulated run (open in Perfetto or chrome://tracing); requires -eventsim or -trace")
		metrics   = flag.String("metrics", "", "write JSONL telemetry metrics of the simulated run; requires -eventsim or -trace")
		sample    = flag.Float64("sample", 0, "telemetry utilization sample resolution in seconds (0 = one sample per scheduling epoch, downsampled into a bounded ring)")
	)
	flag.Parse()

	if err := validateFlags(*nodes, *parts, *zipf, *skewFrac, *scale, *bandwidth); err != nil {
		fmt.Fprintln(os.Stderr, "ccfsim:", err)
		os.Exit(2)
	}
	telemetryOn := *traceOut != "" || *metrics != ""
	if *sample < 0 {
		fmt.Fprintln(os.Stderr, "ccfsim: -sample must be non-negative, got", *sample)
		os.Exit(2)
	}
	if telemetryOn && !*eventSim && *traceFile == "" {
		fmt.Fprintln(os.Stderr, "ccfsim: -tracefile/-metrics need the event simulator (-eventsim) or a -trace input")
		os.Exit(2)
	}
	var rec *telemetry.Recorder
	if telemetryOn {
		rec = telemetry.NewRecorder(telemetry.Config{Resolution: *sample})
	}
	if *traceFile != "" {
		if err := runTrace(*traceFile, *coflowSch, *bandwidth, rec); err != nil {
			fmt.Fprintln(os.Stderr, "ccfsim:", err)
			os.Exit(1)
		}
	} else if err := runWorkload(*nodes, *parts, *zipf, *skewFrac, *scale, *placer, *bandwidth, *eventSim, *seed, rec); err != nil {
		fmt.Fprintln(os.Stderr, "ccfsim:", err)
		os.Exit(1)
	}
	if rec != nil {
		if err := exportTelemetry(rec, *traceOut, *metrics); err != nil {
			fmt.Fprintln(os.Stderr, "ccfsim:", err)
			os.Exit(1)
		}
	}
}

// exportTelemetry prints the derived-metrics summary and writes the
// requested trace/metrics files.
func exportTelemetry(rec *telemetry.Recorder, traceOut, metrics string) error {
	fmt.Println()
	if err := telemetry.RenderSummary(os.Stdout, rec.Summary()); err != nil {
		return err
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("telemetry: Chrome trace written to %s (open in https://ui.perfetto.dev)\n", traceOut)
	}
	if metrics != "" {
		f, err := os.Create(metrics)
		if err != nil {
			return err
		}
		if err := rec.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("telemetry: JSONL metrics written to %s\n", metrics)
	}
	return nil
}

// validateFlags rejects nonsensical knob values up front with a one-line
// message instead of letting them surface as panics or garbage output deep
// in the pipeline.
func validateFlags(nodes, parts int, zipf, skewFrac, scale, bw float64) error {
	if nodes <= 0 {
		return fmt.Errorf("-nodes must be positive, got %d", nodes)
	}
	if parts < 0 {
		return fmt.Errorf("-partitions must be non-negative, got %d", parts)
	}
	if zipf < 0 {
		return fmt.Errorf("-zipf must be non-negative, got %g", zipf)
	}
	if skewFrac < 0 || skewFrac >= 1 {
		return fmt.Errorf("-skew must be in [0,1), got %g", skewFrac)
	}
	if scale <= 0 {
		return fmt.Errorf("-scale must be positive, got %g", scale)
	}
	if bw < 0 {
		return fmt.Errorf("-bw must be non-negative, got %g", bw)
	}
	return nil
}

func pickPlacer(name string) (placement.Scheduler, bool, error) {
	switch name {
	case "hash":
		return placement.Hash{}, false, nil
	case "mini":
		return placement.Mini{}, true, nil
	case "ccf":
		return placement.CCF{}, true, nil
	case "ccf-nosort":
		return placement.CCF{NoSort: true}, true, nil
	case "lpt":
		return placement.LPT{}, false, nil
	case "random":
		return placement.Random{Seed: 1}, false, nil
	default:
		return nil, false, fmt.Errorf("unknown placer %q", name)
	}
}

func pickCoflowScheduler(name string) (coflow.Scheduler, error) {
	switch name {
	case "varys":
		return coflow.NewVarys(), nil
	case "aalo":
		return coflow.NewAalo(), nil
	case "fifo":
		return coflow.NewFIFO(), nil
	case "scf":
		return coflow.NewSCF(), nil
	case "ncf":
		return coflow.NewNCF(), nil
	case "fair":
		return coflow.PerFlowFair{}, nil
	case "sequential":
		return coflow.SequentialByDest{}, nil
	default:
		return nil, fmt.Errorf("unknown coflow scheduler %q", name)
	}
}

func runWorkload(nodes, parts int, zipf, skewFrac, scale float64, placer string, bw float64, eventSim bool, seed uint64, rec *telemetry.Recorder) error {
	sched, handleSkew, err := pickPlacer(placer)
	if err != nil {
		return err
	}
	w, err := workload.Generate(workload.Config{
		Nodes: nodes, Partitions: parts, Zipf: zipf, Skew: skewFrac, Seed: seed,
		CustomerTuples: int64(scale * workload.DefaultCustomerTuples),
		OrderTuples:    int64(scale * workload.DefaultOrderTuples),
	})
	if err != nil {
		return err
	}
	opts := core.Options{Bandwidth: bw, UseEventSim: eventSim}
	if rec != nil {
		opts.Probe = rec
	}
	res, err := core.RunScheduler(w, sched, handleSkew, opts)
	if err != nil {
		return err
	}
	fmt.Printf("workload: n=%d p=%d zipf=%g skew=%g total=%.2f GB\n",
		nodes, w.Config.Partitions, zipf, skewFrac, float64(w.TotalBytes())/1e9)
	fmt.Printf("placer:   %s (skew handling: %v)\n", res.Approach, res.SkewHandled)
	fmt.Printf("traffic:  %.2f GB over the network\n", res.TrafficGB())
	fmt.Printf("bottleneck port load: %.2f GB\n", float64(res.BottleneckBytes)/1e9)
	fmt.Printf("communication time:   %.2f s\n", res.TimeSec)
	return nil
}

func runTrace(path, coflowSch string, bw float64, rec *telemetry.Recorder) error {
	sched, err := pickCoflowScheduler(coflowSch)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Parse(f)
	if err != nil {
		return err
	}
	fabric, err := netsim.NewFabric(tr.NumRacks, bw)
	if err != nil {
		return err
	}
	sim := netsim.NewSimulator(fabric, sched)
	if rec != nil {
		sim.Probe = rec
	}
	rep, err := sim.Run(tr.Coflows())
	if err != nil {
		return err
	}
	fmt.Printf("trace:    %s (%d racks, %d jobs)\n", path, tr.NumRacks, len(tr.Jobs))
	fmt.Printf("coflow scheduler: %s\n", sched.Name())
	fmt.Printf("makespan: %.3f s   avg CCT: %.3f s   max CCT: %.3f s\n", rep.Makespan, rep.AvgCCT, rep.MaxCCT)
	fmt.Printf("moved:    %.2f GB in %d scheduling epochs\n", rep.TotalBytes/1e9, rep.Epochs)
	return nil
}
