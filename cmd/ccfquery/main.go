// ccfquery executes an analytical plan — written in the textual plan
// language of internal/query — over a synthetic distributed cluster, once
// per placement scheduler, and reports per-stage network metrics. It is the
// multi-operator face of the framework (paper Figure 3): every keyed
// operator's shuffle is one co-optimized coflow.
//
// Tables L and R are generated with uniform keys and zipf-biased node
// locality; |R| = 3 × |L|.
//
// Usage:
//
//	ccfquery -plan 'aggregate(join(L, R), partial)' -nodes 16
//	ccfquery -plan 'distinct(aggregate(rekeydiv(join(L, R), 20), partial))' -rows 50000
//	ccfquery -plan 'rekeymod(L, 7)' -placers hash,ccf
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strings"

	"ccf/internal/placement"
	"ccf/internal/query"
)

func main() {
	var (
		planSrc = flag.String("plan", "aggregate(join(L, R), partial)", "plan in the textual plan language")
		nodes   = flag.Int("nodes", 16, "cluster width")
		rows    = flag.Int("rows", 20_000, "rows in table L (R gets 3x)")
		keys    = flag.Int("keys", 1000, "distinct key space")
		placers = flag.String("placers", "hash,mini,ccf", "comma-separated placement schedulers")
		seed    = flag.Int64("seed", 1, "data seed")
		verify  = flag.Bool("verify", true, "check the distributed result against a single-node reference")
	)
	flag.Parse()
	if err := run(*planSrc, *nodes, *rows, *keys, *placers, *seed, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "ccfquery:", err)
		os.Exit(1)
	}
}

func pick(name string) (placement.Scheduler, error) {
	switch strings.TrimSpace(strings.ToLower(name)) {
	case "hash":
		return placement.Hash{}, nil
	case "mini":
		return placement.Mini{}, nil
	case "ccf":
		return placement.CCF{}, nil
	case "ccf-refined":
		return placement.CCFRefined{}, nil
	case "lpt":
		return placement.LPT{}, nil
	default:
		return nil, fmt.Errorf("unknown placer %q", name)
	}
}

func buildTables(n, rows, keySpace int, seed int64) (*query.Table, *query.Table) {
	rng := rand.New(rand.NewSource(seed))
	biased := func() int {
		node := 0
		for rng.Float64() > 0.45 && node < n-1 {
			node++
		}
		return node
	}
	l := query.NewTable("L", n, 1000)
	r := query.NewTable("R", n, 1000)
	for i := 0; i < rows; i++ {
		node := biased()
		l.Frags[node] = append(l.Frags[node],
			query.Row{Key: int64(rng.Intn(keySpace) + 1), Value: int64(rng.Intn(100))})
	}
	for i := 0; i < 3*rows; i++ {
		node := biased()
		r.Frags[node] = append(r.Frags[node],
			query.Row{Key: int64(rng.Intn(keySpace) + 1), Value: int64(rng.Intn(100))})
	}
	return l, r
}

func run(planSrc string, nodes, rows, keySpace int, placers string, seed int64, verify bool) error {
	plan, err := query.ParsePlan(planSrc)
	if err != nil {
		return err
	}
	fmt.Printf("plan: %s\n", query.FormatPlan(plan))
	fmt.Printf("cluster: %d nodes; L has %d rows, R has %d, keys 1..%d\n\n", nodes, rows, 3*rows, keySpace)

	var reference []query.Row
	for _, name := range strings.Split(placers, ",") {
		s, err := pick(name)
		if err != nil {
			return err
		}
		l, r := buildTables(nodes, rows, keySpace, seed)
		if verify && reference == nil {
			want, err := query.Reference(plan, map[string][]query.Row{"L": l.Gather(), "R": r.Gather()})
			if err != nil {
				return err
			}
			reference = query.SortRows(want)
		}
		exec, err := query.NewExecutor(query.Config{Nodes: nodes, Scheduler: s}, l, r)
		if err != nil {
			return err
		}
		res, err := exec.Execute(plan)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", s.Name())
		for _, st := range res.Stages {
			fmt.Printf("  %-20s rows %8d -> %8d   traffic %8.1f MB   bottleneck %8.1f MB   %8.3f s\n",
				st.Operator, st.RowsIn, st.RowsOut,
				float64(st.TrafficBytes)/1e6, float64(st.BottleneckBytes)/1e6, st.TimeSec)
		}
		line := fmt.Sprintf("  total network time %.3f s, traffic %.1f MB, output %d rows",
			res.TotalTimeSec, float64(res.TotalTrafficBytes)/1e6, res.Output.Rows())
		if verify {
			if reflect.DeepEqual(res.Output.Gather(), reference) {
				line += " — verified"
			} else {
				line += " — RESULT MISMATCH"
			}
		}
		fmt.Println(line)
		fmt.Println()
	}
	return nil
}
