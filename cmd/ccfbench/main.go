// ccfbench regenerates the paper's evaluation: every figure panel of
// Figures 5-7, the Figure 1/2 motivating example, and the ablation studies
// listed in DESIGN.md. Output is an ASCII table per panel (the same rows the
// paper plots) plus optional CSV files for plotting.
//
// Usage:
//
//	ccfbench -exp all                 # everything, paper scale (~1 TB synthetic)
//	ccfbench -exp fig5 -scale 0.01    # one figure, 1% of the data
//	ccfbench -exp fig6 -csv out/      # also write out/fig6a.csv, out/fig6b.csv
//	ccfbench -exp motivating          # the Figure 1/2 walk-through
//	ccfbench -exp ablation-rank       # aligned vs shuffled zipf ranks
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"ccf/internal/bound"
	"ccf/internal/core"
	"ccf/internal/milp"
	"ccf/internal/netsim"
	"ccf/internal/partition"
	"ccf/internal/placement"
	"ccf/internal/skew"
	"ccf/internal/stats"
	"ccf/internal/topology"
	"ccf/internal/workload"
)

func main() {
	var (
		exp = flag.String("exp", "all", "experiment: all, fig5, fig6, fig7, motivating, "+
			"ablation-rank, ablation-pmult, ablation-sort, ablation-exact, "+
			"ablation-hetero, ablation-topo, ablation-bound, netsim-bench, online-bench, "+
			"chaos, recovery, telemetry, service-load, service-smoke, service-burst, trace-scale")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = paper's ≈1 TB)")
		bandwidth  = flag.Float64("bw", 0, "port bandwidth in bytes/sec (0 = CoflowSim default 128 MB/s)")
		csvDir     = flag.String("csv", "", "directory to write per-panel CSV files (empty = none)")
		eventSim   = flag.Bool("eventsim", false, "use the flow-level event simulator instead of the closed form (slow at full node counts)")
		chart      = flag.Bool("chart", false, "also render each figure panel as an ASCII chart (time panels on a log scale)")
		benchJSON  = flag.String("benchjson", "BENCH_netsim.json", "output path for the netsim-bench experiment's JSON")
		onlineJSON = flag.String("onlinejson", "BENCH_online.json", "output path for the online-bench experiment's JSON")
		onlineJobs = flag.Int("onlinejobs", 256, "largest job-stream size for the online-bench experiment")
		seeds      = flag.Int("seeds", 32, "fault schedules for the chaos experiment")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for sweep-style experiments "+
			"(1 = serial; results are identical at any value, figure sweeps may hold ~120 MB per worker at paper scale)")
		benchPorts   = flag.Int("benchports", 1024, "fabric ports for the netsim-bench sharded-run rows")
		benchCoflows = flag.Int("benchcoflows", 64, "coflows for the netsim-bench sharded-run rows (each carries ports/2 flows)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")

		serviceJSON   = flag.String("servicejson", "BENCH_service.json", "output path for the service-load experiment's JSON")
		serviceDir    = flag.String("servicedir", "", "state directory for the service-load pool (empty = fresh temp dir)")
		serviceURL    = flag.String("serviceurl", "", "base URL of a running ccfd for the service-smoke experiment")
		serviceJobs   = flag.Int("servicejobs", 100, "jobs the service-smoke driver submits")
		serviceOffset = flag.Int("serviceoffset", 0, "first job index of the service-smoke stream (resume point after a restart)")
		serviceNodes  = flag.Int("servicenodes", 100, "fabric size of the target daemon for service-smoke job specs")
		smokeOut      = flag.String("smokeout", "SMOKE_decisions.jsonl", "decision JSONL the service-smoke driver appends to")
		serviceWait   = flag.Duration("servicewait", 30*time.Second, "how long service-smoke/-burst waits for the daemon to become ready")

		burstClients = flag.Int("burstclients", 32, "concurrent submitters for the service-burst experiment")
		burstOut     = flag.String("burstout", "SMOKE_acked.jsonl", "acked {shard,seq} ledger the service-burst driver writes")

		density       = flag.String("density", "1,10,100,1000", "comma-separated density multipliers for the trace-scale experiment")
		traceJSON     = flag.String("tracejson", "BENCH_trace.json", "output path for the trace-scale experiment's JSON")
		traceMachines = flag.Int("tracemachines", 16, "fabric width for the trace-scale experiment")
		traceCoflows  = flag.Int("tracecoflows", 12, "base (×1) coflow count for the trace-scale experiment")
		traceDense    = flag.Float64("tracedense", 100, "largest density also run through the dense batch path for the speedup/equality check")
	)
	flag.Parse()
	chartPanels = *chart

	if err := validateBenchFlags(*exp, *scale, *bandwidth, *seeds, *onlineJobs, *workers, *benchPorts, *benchCoflows); err != nil {
		fmt.Fprintln(os.Stderr, "ccfbench:", err)
		os.Exit(2)
	}
	densities, err := parseDensities(*density)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccfbench:", err)
		os.Exit(2)
	}
	if err := validateTraceFlags(*traceJSON, *traceMachines, *traceCoflows, *traceDense); err != nil {
		fmt.Fprintln(os.Stderr, "ccfbench:", err)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ccfbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ccfbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	opts := core.SweepOptions{Scale: *scale, Bandwidth: *bandwidth, UseEventSim: *eventSim, Workers: *workers}
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("motivating", func() error { return motivating() })
	run("fig5", func() error {
		fr, err := core.Fig5(nil, opts)
		if err != nil {
			return err
		}
		return emit(fr, "fig5", *csvDir)
	})
	run("fig6", func() error {
		fr, err := core.Fig6(nil, 500, opts)
		if err != nil {
			return err
		}
		return emit(fr, "fig6", *csvDir)
	})
	run("fig7", func() error {
		fr, err := core.Fig7(nil, 500, opts)
		if err != nil {
			return err
		}
		return emit(fr, "fig7", *csvDir)
	})
	run("ablation-rank", func() error { return ablationRank(opts, *csvDir) })
	run("ablation-pmult", func() error { return ablationPmult(opts, *csvDir) })
	run("ablation-sort", func() error { return ablationSort(opts) })
	run("ablation-exact", func() error { return ablationExact() })
	run("ablation-hetero", func() error { return ablationHetero(opts) })
	run("ablation-topo", func() error { return ablationTopo(opts) })
	run("ablation-bound", func() error { return ablationBound(opts) })
	// netsim-bench, online-bench, chaos, and recovery are opt-in only (perf
	// meter and failure-model experiments, not paper figures).
	if *exp == "netsim-bench" {
		fmt.Println("netsim steady-state benchmarks (simulator hot path):")
		if err := netsimBench(*benchJSON, *workers, *benchPorts, *benchCoflows); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: netsim-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if *exp == "online-bench" {
		fmt.Println("online co-optimization benchmarks (probe reference vs resumable session):")
		if err := onlineBench(*onlineJSON, *onlineJobs); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: online-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if *exp == "chaos" {
		if err := chaosExp(*seeds, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: chaos: %v\n", err)
			os.Exit(1)
		}
	}
	if *exp == "recovery" {
		if err := recoveryExp(*bandwidth, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: recovery: %v\n", err)
			os.Exit(1)
		}
	}
	if *exp == "telemetry" {
		if err := telemetryExp(1, *bandwidth, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: telemetry: %v\n", err)
			os.Exit(1)
		}
	}
	if *exp == "service-load" {
		fmt.Println("service-load: daemon under steady load, overload, and kill+restart:")
		if err := serviceLoadExp(*serviceJSON, *serviceDir); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: service-load: %v\n", err)
			os.Exit(1)
		}
	}
	if *exp == "service-smoke" {
		if err := serviceSmokeExp(*serviceURL, *serviceJobs, *serviceOffset, *serviceNodes, *smokeOut, *serviceWait); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: service-smoke: %v\n", err)
			os.Exit(1)
		}
	}
	if *exp == "trace-scale" {
		if err := traceScaleExp(*traceJSON, densities, *traceMachines, *traceCoflows, *traceDense); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: trace-scale: %v\n", err)
			os.Exit(1)
		}
	}
	if *exp == "service-burst" {
		if err := serviceBurstExp(*serviceURL, *serviceJobs, *serviceNodes, *burstClients, *burstOut, *serviceWait); err != nil {
			fmt.Fprintf(os.Stderr, "ccfbench: service-burst: %v\n", err)
			os.Exit(1)
		}
	}
}

// knownExperiments lists every value -exp accepts; anything else exits
// non-zero instead of silently running nothing.
var knownExperiments = map[string]bool{
	"all": true, "fig5": true, "fig6": true, "fig7": true, "motivating": true,
	"ablation-rank": true, "ablation-pmult": true, "ablation-sort": true,
	"ablation-exact": true, "ablation-hetero": true, "ablation-topo": true,
	"ablation-bound": true, "netsim-bench": true, "online-bench": true,
	"chaos": true, "recovery": true, "telemetry": true,
	"service-load": true, "service-smoke": true, "service-burst": true,
	"trace-scale": true,
}

// validateTraceFlags rejects nonsensical trace-scale knob values.
func validateTraceFlags(traceJSON string, machines, coflows int, denseMax float64) error {
	if traceJSON == "" {
		return fmt.Errorf("-tracejson must not be empty")
	}
	if machines < 2 {
		return fmt.Errorf("-tracemachines must be at least 2, got %d", machines)
	}
	if coflows <= 0 {
		return fmt.Errorf("-tracecoflows must be positive, got %d", coflows)
	}
	if denseMax <= 0 {
		return fmt.Errorf("-tracedense must be positive, got %g", denseMax)
	}
	return nil
}

// validateBenchFlags rejects nonsensical knob values with a one-line message
// before any experiment starts.
func validateBenchFlags(exp string, scale, bw float64, seeds, onlineJobs, workers, benchPorts, benchCoflows int) error {
	if !knownExperiments[exp] {
		return fmt.Errorf("unknown experiment %q (see -exp in -help)", exp)
	}
	if scale <= 0 {
		return fmt.Errorf("-scale must be positive, got %g", scale)
	}
	if bw < 0 {
		return fmt.Errorf("-bw must be non-negative, got %g", bw)
	}
	if seeds <= 0 {
		return fmt.Errorf("-seeds must be positive, got %d", seeds)
	}
	if onlineJobs <= 0 {
		return fmt.Errorf("-onlinejobs must be positive, got %d", onlineJobs)
	}
	if workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", workers)
	}
	if benchPorts < 2 {
		return fmt.Errorf("-benchports must be at least 2, got %d", benchPorts)
	}
	if benchCoflows < 1 {
		return fmt.Errorf("-benchcoflows must be positive, got %d", benchCoflows)
	}
	return nil
}

// chartPanels toggles ASCII charts next to the numeric tables.
var chartPanels bool

func emit(fr *core.FigureResult, name, csvDir string) error {
	if err := stats.RenderASCII(os.Stdout, fr.Traffic); err != nil {
		return err
	}
	fmt.Println()
	if err := stats.RenderASCII(os.Stdout, fr.Time); err != nil {
		return err
	}
	if chartPanels {
		fmt.Println()
		if err := stats.RenderChart(os.Stdout, fr.Traffic, stats.ChartOptions{}); err != nil {
			return err
		}
		fmt.Println()
		if err := stats.RenderChart(os.Stdout, fr.Time, stats.ChartOptions{LogY: true}); err != nil {
			return err
		}
	}
	loH, hiH := stats.MinMax(fr.SpeedupOverHash)
	loM, hiM := stats.MinMax(fr.SpeedupOverMini)
	fmt.Printf("CCF speedup over Hash: %.1f-%.1fx, over Mini: %.1f-%.1fx\n\n", loH, hiH, loM, hiM)
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	for suffix, tbl := range map[string]*stats.Table{"a": fr.Traffic, "b": fr.Time} {
		f, err := os.Create(filepath.Join(csvDir, name+suffix+".csv"))
		if err != nil {
			return err
		}
		if err := stats.RenderCSV(f, tbl); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func motivating() error {
	res, err := core.MotivatingExample()
	if err != nil {
		return err
	}
	fmt.Println("Motivating example (paper Figures 1 and 2), 3 nodes, keys 0/1/2/5:")
	fmt.Println("  node 0: 1x3 2x1 0x3   node 1: 1x6 2x2 5x1   node 2: 5x2 0x1")
	for _, p := range []core.MotivatingPlan{res.SP0, res.SP1, res.SP2, res.CCF} {
		fmt.Printf("  %-4s dest=%v  traffic=%d tuples  CCT(optimal coflow)=%g  CCT(uncoordinated)=%g\n",
			p.Name, p.Placement.Dest, p.Traffic, p.OptimalCCT, p.WorstCCT)
	}
	fmt.Printf("  certified optimal bottleneck T = %d (branch & bound)\n", res.OptimalT)
	fmt.Println("  => the traffic-optimal SP2 (6 tuples) needs 4 time units; the")
	fmt.Println("     traffic-suboptimal SP1 (7 tuples) needs only 3 — the gap CCF exploits.")
	fmt.Println()
	return nil
}

func ablationRank(opts core.SweepOptions, csvDir string) error {
	fmt.Println("Ablation abl-rank: does Mini's collapse depend on zipf rank alignment?")
	fmt.Println("(500 nodes, zipf=0.8, skew=20%)")
	for _, shuffle := range []bool{false, true} {
		o := opts
		o.ShuffleRanks = shuffle
		fr, err := core.Fig6([]float64{0.8}, 500, o)
		if err != nil {
			return err
		}
		mode := "aligned ranks (paper)"
		if shuffle {
			mode = "shuffled ranks"
		}
		row := func(label string) float64 {
			s, _ := fr.Time.Get(label)
			return s.Values[0]
		}
		fmt.Printf("  %-22s Hash %8.1f s   Mini %8.1f s   CCF %8.1f s\n",
			mode, row("Hash"), row("Mini"), row("CCF"))
	}
	fmt.Println()
	return nil
}

func ablationPmult(opts core.SweepOptions, csvDir string) error {
	fmt.Println("Ablation abl-pmult: partition granularity p = m x n (500 nodes, zipf=0.8, skew=20%)")
	for _, mult := range []int{5, 15, 30} {
		o := opts
		o.PartitionMultiplier = mult
		fr, err := core.Fig6([]float64{0.8}, 500, o)
		if err != nil {
			return err
		}
		row := func(label string) float64 {
			s, _ := fr.Time.Get(label)
			return s.Values[0]
		}
		fmt.Printf("  p = %2dxn:  Hash %8.1f s   Mini %8.1f s   CCF %8.1f s\n",
			mult, row("Hash"), row("Mini"), row("CCF"))
	}
	fmt.Println()
	return nil
}

func ablationSort(opts core.SweepOptions) error {
	fmt.Println("Ablation abl-sort: Algorithm 1 with vs without the descending sort (line 1)")
	cfg := workload.Config{
		Nodes: 500, Zipf: 0.8, Skew: 0.2,
		CustomerTuples: int64(opts.Scale * workload.DefaultCustomerTuples),
		OrderTuples:    int64(opts.Scale * workload.DefaultOrderTuples),
	}
	if cfg.CustomerTuples == 0 {
		cfg.CustomerTuples = workload.DefaultCustomerTuples
		cfg.OrderTuples = workload.DefaultOrderTuples
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	for _, s := range []placement.Scheduler{placement.CCF{}, placement.CCF{NoSort: true}} {
		r, err := core.RunScheduler(w, s, true, core.Options{Bandwidth: opts.Bandwidth})
		if err != nil {
			return err
		}
		fmt.Printf("  %-11s T = %d bytes, time = %.1f s\n", s.Name()+":", r.BottleneckBytes, r.TimeSec)
	}
	fmt.Println()
	return nil
}

func ablationExact() error {
	fmt.Println("Ablation abl-exact: CCF heuristic vs certified optimum (branch & bound)")
	fmt.Println("  (small instances: the paper reports >30 min of Gurobi at n=500, p=7500)")
	seeds := []uint64{1, 2, 3, 4, 5}
	var worst float64 = 1
	for _, seed := range seeds {
		w, err := workload.Generate(workload.Config{
			Nodes: 5, Partitions: 12, CustomerTuples: 500, OrderTuples: 5000,
			PayloadBytes: 100, Zipf: 0.8, Skew: 0.2, Seed: seed, JitterFrac: 0.05,
		})
		if err != nil {
			return err
		}
		ev, err := placement.Evaluate(placement.CCF{}, w.Chunks, nil)
		if err != nil {
			return err
		}
		res, err := milp.Solve(w.Chunks, nil, milp.Options{UpperBound: ev.BottleneckBytes, MaxExplored: 20_000_000})
		if err != nil {
			return err
		}
		ratio := float64(ev.BottleneckBytes) / float64(res.T)
		if ratio > worst {
			worst = ratio
		}
		fmt.Printf("  seed %d: heuristic T=%d, optimal T=%d (certified=%v, %d nodes explored), ratio %.4f\n",
			seed, ev.BottleneckBytes, res.T, res.Optimal, res.Explored, ratio)
	}
	fmt.Printf("  worst heuristic/optimal ratio: %.4f\n\n", worst)
	return nil
}

// ablationBound certifies the heuristic's optimality gap at the paper's
// full 500-node shape, where neither Gurobi (per the paper) nor branch &
// bound can enumerate: feasible T from Algorithm 1 vs the relaxation lower
// bound of internal/bound.
func ablationBound(opts core.SweepOptions) error {
	fmt.Println("Ablation abl-bound: certified optimality gap at paper scale (500 nodes, p=7500, zipf=0.8, skew=20%)")
	scale := opts.Scale
	if scale == 0 {
		scale = 1
	}
	w, err := workload.Generate(workload.Config{
		Nodes: 500, Zipf: 0.8, Skew: 0.2,
		CustomerTuples: int64(scale * workload.DefaultCustomerTuples),
		OrderTuples:    int64(scale * workload.DefaultOrderTuples),
	})
	if err != nil {
		return err
	}
	plan := skew.PartialDuplication(w)
	for _, s := range []placement.Scheduler{placement.CCF{}, placement.CCFRefined{}} {
		ev, err := placement.Evaluate(s, plan.Adjusted, plan.Initial)
		if err != nil {
			return err
		}
		lb, ratio, err := bound.Gap(plan.Adjusted, plan.Initial, ev.BottleneckBytes)
		if err != nil {
			return err
		}
		fmt.Printf("  %-13s T = %d bytes, lower bound = %d  =>  gap <= %.4fx optimal\n",
			s.Name()+":", ev.BottleneckBytes, lb, ratio)
	}
	fmt.Println()
	return nil
}

// ablationHetero: one degraded ingress link; capacity-aware CCF vs the
// oblivious placers (the R_l generalization of constraint 1.5).
func ablationHetero(opts core.SweepOptions) error {
	fmt.Println("Ablation abl-hetero: node 0's ingress at 1/8 bandwidth (100 nodes, zipf=0.8, skew=20%)")
	n := 100
	scale := opts.Scale
	if scale == 0 {
		scale = 1
	}
	w, err := workload.Generate(workload.Config{
		Nodes: n, Zipf: 0.8, Skew: 0.2,
		CustomerTuples: int64(scale * workload.DefaultCustomerTuples),
		OrderTuples:    int64(scale * workload.DefaultOrderTuples),
	})
	if err != nil {
		return err
	}
	eg := make([]float64, n)
	in := make([]float64, n)
	for i := 0; i < n; i++ {
		eg[i], in[i] = netsim.DefaultPortBandwidth, netsim.DefaultPortBandwidth
	}
	in[0] = netsim.DefaultPortBandwidth / 8
	plan := skew.PartialDuplication(w)
	for _, s := range []placement.Scheduler{
		placement.Hash{}, placement.Mini{}, placement.CCF{},
		placement.WeightedCCF{EgressCap: eg, IngressCap: in},
	} {
		pl, err := s.Place(plan.Adjusted, plan.Initial)
		if err != nil {
			return err
		}
		loads, err := partition.ComputeLoads(plan.Adjusted, pl, plan.Initial)
		if err != nil {
			return err
		}
		t, err := placement.WeightedBottleneck(loads, eg, in)
		if err != nil {
			return err
		}
		fmt.Printf("  %-13s communication time %9.1f s\n", s.Name()+":", t)
	}
	fmt.Println()
	return nil
}

// ablationTopo: rack-aware CCF vs plain CCF on an oversubscribed leaf-spine.
func ablationTopo(opts core.SweepOptions) error {
	fmt.Println("Ablation abl-topo: 8 racks x 16 hosts, 4x oversubscribed core (zipf=0.8, skew=20%)")
	scale := opts.Scale
	if scale == 0 {
		scale = 1
	}
	topo, err := topology.NewLeafSpine(8, 16, netsim.DefaultPortBandwidth, 4*netsim.DefaultPortBandwidth)
	if err != nil {
		return err
	}
	w, err := workload.Generate(workload.Config{
		Nodes: topo.N, Zipf: 0.8, Skew: 0.2,
		CustomerTuples: int64(scale * workload.DefaultCustomerTuples),
		OrderTuples:    int64(scale * workload.DefaultOrderTuples),
	})
	if err != nil {
		return err
	}
	plan := skew.PartialDuplication(w)
	for _, s := range []placement.Scheduler{
		placement.Hash{}, placement.Mini{}, placement.CCF{}, topology.RackAwareCCF{Topo: topo},
	} {
		pl, err := s.Place(plan.Adjusted, plan.Initial)
		if err != nil {
			return err
		}
		cct, err := topo.PlacementCCT(plan.Adjusted, pl)
		if err != nil {
			return err
		}
		fmt.Printf("  %-10s link-level communication time %9.1f s\n", s.Name()+":", cct)
	}
	fmt.Println("  (oversubscription ratio:", topo.Oversubscription(), ")")
	fmt.Println()
	return nil
}
