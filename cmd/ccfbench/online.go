package main

// online-bench: machine-readable perf tracking for the online co-optimization
// path. Benchmarks the probe-per-arrival reference (re-simulates history at
// every arrival, O(J²)) against the resumable-session engine (advances one
// live simulation, O(J)) in-process via testing.Benchmark and writes
// BENCH_online.json so the speedup is comparable across PRs.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"ccf/internal/core"
	"ccf/internal/workload"
)

type onlineBenchResult struct {
	Name           string  `json:"name"`
	Jobs           int     `json:"jobs"`
	Impl           string  `json:"impl"` // "probe" or "session"
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	SpeedupVsProbe float64 `json:"speedup_vs_probe,omitempty"` // session rows only
}

// onlineBenchJobs mirrors BenchmarkOnlineArrivals in internal/core: a stream
// of small jobs with staggered arrivals so the co-optimizer sees a mix of
// in-flight backlog and completed history at every admission.
func onlineBenchJobs(n, j int) ([]core.OnlineJob, error) {
	zipfs := []float64{0, 0.5, 1.0, 1.5}
	jobs := make([]core.OnlineJob, 0, j)
	for k := 0; k < j; k++ {
		w, err := workload.Generate(workload.Config{
			Nodes: n, CustomerTuples: 200, OrderTuples: 2_000,
			PayloadBytes: 1000, Zipf: zipfs[k%len(zipfs)], Seed: uint64(k),
			JitterFrac: 0.05,
		})
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, core.OnlineJob{
			Name:     fmt.Sprintf("job%d", k),
			Arrival:  0.02 * float64(k),
			Workload: w,
		})
	}
	return jobs, nil
}

func onlineBench(path string, maxJobs int) error {
	const n = 8
	opts := core.OnlineOptions{CoOptimize: true}
	sizes := []int{}
	for _, j := range []int{16, 64, 256} {
		if j <= maxJobs {
			sizes = append(sizes, j)
		}
	}
	if len(sizes) == 0 || sizes[len(sizes)-1] != maxJobs {
		sizes = append(sizes, maxJobs)
	}
	var results []onlineBenchResult
	for _, j := range sizes {
		jobs, err := onlineBenchJobs(n, j)
		if err != nil {
			return err
		}
		var probeNs float64
		for _, impl := range []struct {
			name string
			run  func([]core.OnlineJob, core.OnlineOptions) (*core.OnlineReport, error)
		}{
			{"probe", core.RunOnlineReference},
			{"session", core.RunOnline},
		} {
			var runErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := impl.run(jobs, opts); err != nil {
						runErr = err
						b.FailNow()
					}
				}
			})
			if runErr != nil {
				return runErr
			}
			nsOp := float64(r.T.Nanoseconds()) / float64(r.N)
			res := onlineBenchResult{
				Name:        fmt.Sprintf("OnlineArrivals/%s/J=%d", impl.name, j),
				Jobs:        j,
				Impl:        impl.name,
				NsPerOp:     nsOp,
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			if impl.name == "probe" {
				probeNs = nsOp
			} else if probeNs > 0 && nsOp > 0 {
				res.SpeedupVsProbe = probeNs / nsOp
			}
			results = append(results, res)
			extra := ""
			if res.SpeedupVsProbe > 0 {
				extra = fmt.Sprintf("  %6.1fx vs probe", res.SpeedupVsProbe)
			}
			fmt.Printf("  %-32s %12.0f ns/op  %8d allocs/op%s\n",
				res.Name, res.NsPerOp, res.AllocsPerOp, extra)
		}
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return nil
}
