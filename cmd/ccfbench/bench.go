package main

// netsim-bench: machine-readable perf tracking for the simulator hot path.
// Runs the steady-state netsim benchmarks in-process via testing.Benchmark
// and writes BENCH_netsim.json (ns/op, allocs/op, epochs/s) so the perf
// trajectory is comparable across PRs without parsing `go test -bench` text.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
)

type benchResult struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EpochsPerRun int     `json:"epochs_per_run"`
	EpochsPerSec float64 `json:"epochs_per_sec"`
}

// benchCoflows mirrors the staggered-arrival workload of the netsim
// steady-state benchmarks: ncf coflows of n/2 flows each, arriving 0.25 s
// apart, so the scheduler sees admissions, completions, and re-sorts.
func benchCoflows(n, ncf int) []*coflow.Coflow {
	out := make([]*coflow.Coflow, 0, ncf)
	for ci := 0; ci < ncf; ci++ {
		var flows []coflow.Flow
		for f := 0; f < n/2; f++ {
			src := (ci + f) % n
			dst := (src + 1 + f%(n-1)) % n
			flows = append(flows, coflow.Flow{ID: f, Src: src, Dst: dst, Size: float64(1+(ci+f)%9) * 1e6})
		}
		out = append(out, coflow.New(ci, "bench", float64(ci)/4, flows))
	}
	return out
}

func netsimBench(path string) error {
	scheds := []struct {
		name string
		mk   func() coflow.Scheduler
	}{
		{"varys", coflow.NewVarys},
		{"aalo", func() coflow.Scheduler { return coflow.NewAalo() }},
		{"fifo", coflow.NewFIFO},
		{"per-flow-fair", func() coflow.Scheduler { return coflow.PerFlowFair{} }},
	}
	var results []benchResult
	for _, sc := range scheds {
		for _, n := range []int{16, 64} {
			cfs := benchCoflows(n, 24)
			fab, err := netsim.NewFabric(n, 0)
			if err != nil {
				return err
			}
			sim := netsim.NewSimulator(fab, sc.mk())
			var rep netsim.Report
			if err := sim.RunInto(cfs, &rep); err != nil { // warm the scratch
				return err
			}
			epochs := rep.Epochs
			var runErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := sim.RunInto(cfs, &rep); err != nil {
						runErr = err
						b.FailNow()
					}
				}
			})
			if runErr != nil {
				return runErr
			}
			nsOp := float64(r.T.Nanoseconds()) / float64(r.N)
			res := benchResult{
				Name:         fmt.Sprintf("SteadyStateRun/%s/n=%d", sc.name, n),
				NsPerOp:      nsOp,
				AllocsPerOp:  r.AllocsPerOp(),
				BytesPerOp:   r.AllocedBytesPerOp(),
				EpochsPerRun: epochs,
				EpochsPerSec: float64(epochs) * 1e9 / nsOp,
			}
			results = append(results, res)
			fmt.Printf("  %-32s %12.0f ns/op  %6d allocs/op  %12.0f epochs/s\n",
				res.Name, res.NsPerOp, res.AllocsPerOp, res.EpochsPerSec)
		}
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return nil
}
