package main

// netsim-bench: machine-readable perf tracking for the simulator hot path.
// Runs the steady-state netsim benchmarks in-process via testing.Benchmark
// and writes BENCH_netsim.json (ns/op, allocs/op, epochs/s) so the perf
// trajectory is comparable across PRs without parsing `go test -bench` text.
//
// Besides the per-scheduler SteadyStateRun rows, the file carries a cores
// axis: SweepThroughput/cores=C measures Tier-1 parallelism (a fixed batch
// of independent runs through the worker pool, one warm simulator per
// worker) and ShardedRun/cores=C measures Tier-2 parallelism (one large
// fabric run with the MADD/water-filling passes sharded over C goroutines).
// Both report speedup_vs_serial against their own cores=1 row, measured on
// this machine — CI validates the JSON shape, not the speedup, because
// small shared runners can't promise scaling.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/parallel"
)

type benchResult struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EpochsPerRun int     `json:"epochs_per_run"`
	EpochsPerSec float64 `json:"epochs_per_sec"`
	// Cores and SpeedupVsSerial are set only on the cores-axis rows
	// (SweepThroughput, ShardedRun); the SteadyStateRun rows keep their
	// original shape.
	Cores           int     `json:"cores,omitempty"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// benchCoflows mirrors the staggered-arrival workload of the netsim
// steady-state benchmarks: ncf coflows of n/2 flows each, arriving 0.25 s
// apart, so the scheduler sees admissions, completions, and re-sorts.
func benchCoflows(n, ncf int) []*coflow.Coflow {
	out := make([]*coflow.Coflow, 0, ncf)
	for ci := 0; ci < ncf; ci++ {
		var flows []coflow.Flow
		for f := 0; f < n/2; f++ {
			src := (ci + f) % n
			dst := (src + 1 + f%(n-1)) % n
			flows = append(flows, coflow.Flow{ID: f, Src: src, Dst: dst, Size: float64(1+(ci+f)%9) * 1e6})
		}
		out = append(out, coflow.New(ci, "bench", float64(ci)/4, flows))
	}
	return out
}

// coresAxis is the cores dimension of the parallel benchmark rows:
// {1, 2, 4, NumCPU}, deduplicated and sorted. `-workers 1` collapses it to
// {1} — the explicit all-serial escape hatch.
func coresAxis(workers int) []int {
	if workers == 1 {
		return []int{1}
	}
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	var out []int
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// benchRun times one closure via testing.Benchmark and returns the result
// plus ns/op. The closure is re-run b.N times; any error aborts the bench.
func benchRun(fn func() error) (testing.BenchmarkResult, float64, error) {
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fn(); err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return r, 0, runErr
	}
	return r, float64(r.T.Nanoseconds()) / float64(r.N), nil
}

func printBenchRow(res benchResult) {
	fmt.Printf("  %-32s %12.0f ns/op  %6d allocs/op  %12.0f epochs/s",
		res.Name, res.NsPerOp, res.AllocsPerOp, res.EpochsPerSec)
	if res.Cores > 0 {
		fmt.Printf("  %5.2fx vs serial", res.SpeedupVsSerial)
	}
	fmt.Println()
}

// steadyStateRows is the original per-scheduler hot-path benchmark: one warm
// simulator re-running the same staggered workload.
func steadyStateRows() ([]benchResult, error) {
	scheds := []struct {
		name string
		mk   func() coflow.Scheduler
	}{
		{"varys", coflow.NewVarys},
		{"aalo", func() coflow.Scheduler { return coflow.NewAalo() }},
		{"fifo", coflow.NewFIFO},
		{"per-flow-fair", func() coflow.Scheduler { return coflow.PerFlowFair{} }},
	}
	var results []benchResult
	for _, sc := range scheds {
		for _, n := range []int{16, 64} {
			cfs := benchCoflows(n, 24)
			fab, err := netsim.NewFabric(n, 0)
			if err != nil {
				return nil, err
			}
			sim := netsim.NewSimulator(fab, sc.mk())
			var rep netsim.Report
			if err := sim.RunInto(cfs, &rep); err != nil { // warm the scratch
				return nil, err
			}
			epochs := rep.Epochs
			r, nsOp, err := benchRun(func() error { return sim.RunInto(cfs, &rep) })
			if err != nil {
				return nil, err
			}
			res := benchResult{
				Name:         fmt.Sprintf("SteadyStateRun/%s/n=%d", sc.name, n),
				NsPerOp:      nsOp,
				AllocsPerOp:  r.AllocsPerOp(),
				BytesPerOp:   r.AllocedBytesPerOp(),
				EpochsPerRun: epochs,
				EpochsPerSec: float64(epochs) * 1e9 / nsOp,
			}
			results = append(results, res)
			printBenchRow(res)
		}
	}
	return results, nil
}

// sweepThroughputRows measures Tier-1 parallelism: a fixed batch of
// independent simulator runs dispatched through the worker pool, each worker
// keeping one warm simulator and one private coflow set. The op is the whole
// batch, so ns/op shrinking with cores is the pool's wall-clock win.
func sweepThroughputRows(workers int) ([]benchResult, error) {
	const (
		batch = 16
		n     = 64
		ncf   = 24
	)
	type workerState struct {
		sim *netsim.Simulator
		cfs []*coflow.Coflow
		rep netsim.Report
	}
	axis := coresAxis(workers)
	maxCores := axis[len(axis)-1]
	// One warm state per worker slot, shared across the benchmark
	// iterations so the op measures scheduling, not allocation.
	states := make([]*workerState, maxCores)
	var epochs int
	for w := range states {
		fab, err := netsim.NewFabric(n, 0)
		if err != nil {
			return nil, err
		}
		st := &workerState{sim: netsim.NewSimulator(fab, coflow.NewVarys()), cfs: benchCoflows(n, ncf)}
		if err := st.sim.RunInto(st.cfs, &st.rep); err != nil {
			return nil, err
		}
		epochs = st.rep.Epochs
		states[w] = st
	}
	var results []benchResult
	var serialNs float64
	for _, cores := range axis {
		c := cores
		r, nsOp, err := benchRun(func() error {
			_, err := parallel.RunWithState(c, batch,
				func(w int) *workerState { return states[w] },
				func(st *workerState, _ int) (struct{}, error) {
					return struct{}{}, st.sim.RunInto(st.cfs, &st.rep)
				})
			return err
		})
		if err != nil {
			return nil, err
		}
		if c == 1 {
			serialNs = nsOp
		}
		res := benchResult{
			Name:            fmt.Sprintf("SweepThroughput/cores=%d", c),
			NsPerOp:         nsOp,
			AllocsPerOp:     r.AllocsPerOp(),
			BytesPerOp:      r.AllocedBytesPerOp(),
			EpochsPerRun:    epochs * batch,
			EpochsPerSec:    float64(epochs*batch) * 1e9 / nsOp,
			Cores:           c,
			SpeedupVsSerial: serialNs / nsOp,
		}
		results = append(results, res)
		printBenchRow(res)
	}
	return results, nil
}

// shardedRunRows measures Tier-2 parallelism: one simulator run on a large
// fabric (benchPorts ports, benchCoflows coflows of benchPorts/2 flows each)
// with the MADD/water-filling passes sharded over C goroutines. The shard
// thresholds are forced low so the sharded code path runs at every size this
// flag can select — the output is bit-identical either way, so the row
// isolates the sharding cost/benefit. allocs/op is recorded deliberately:
// the sharded path allocates only grow-once scratch, so a warm run should
// stay near the serial path's zero.
func shardedRunRows(workers, benchPorts, ncf int) ([]benchResult, error) {
	cfs := benchCoflows(benchPorts, ncf)
	var results []benchResult
	var serialNs float64
	for _, cores := range coresAxis(workers) {
		fab, err := netsim.NewFabric(benchPorts, 0)
		if err != nil {
			return nil, err
		}
		sim := netsim.NewSimulator(fab, coflow.NewVarys())
		sim.ShardWorkers = cores
		sim.ShardMinPorts = 2
		sim.ShardMinFlows = 2
		var rep netsim.Report
		if err := sim.RunInto(cfs, &rep); err != nil { // warm scratch + shard buffers
			return nil, err
		}
		epochs := rep.Epochs
		r, nsOp, err := benchRun(func() error { return sim.RunInto(cfs, &rep) })
		if err != nil {
			return nil, err
		}
		if cores == 1 {
			serialNs = nsOp
		}
		res := benchResult{
			Name:            fmt.Sprintf("ShardedRun/cores=%d", cores),
			NsPerOp:         nsOp,
			AllocsPerOp:     r.AllocsPerOp(),
			BytesPerOp:      r.AllocedBytesPerOp(),
			EpochsPerRun:    epochs,
			EpochsPerSec:    float64(epochs) * 1e9 / nsOp,
			Cores:           cores,
			SpeedupVsSerial: serialNs / nsOp,
		}
		results = append(results, res)
		printBenchRow(res)
	}
	return results, nil
}

func netsimBench(path string, workers, benchPorts, benchCoflows int) error {
	results, err := steadyStateRows()
	if err != nil {
		return err
	}
	sweepRows, err := sweepThroughputRows(workers)
	if err != nil {
		return err
	}
	results = append(results, sweepRows...)
	shardRows, err := shardedRunRows(workers, benchPorts, benchCoflows)
	if err != nil {
		return err
	}
	results = append(results, shardRows...)
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return nil
}
