package main

// The telemetry experiment: one seeded online workload through all 8
// coflow schedulers with a telemetry recorder attached, reduced to a
// utilization/stretch row per scheduler. The columns make the scheduler
// trade-offs visible at a glance: Varys buys low mean stretch with
// preemption (low Jain fairness), per-flow fair maximizes fairness at the
// cost of stretch, FIFO queues everything (high queue delay).

import (
	"fmt"

	"ccf/internal/core"
)

func telemetryExp(seed int64, bw float64, workers int) error {
	cfg := core.TelemetryConfig{Seed: seed, Bandwidth: bw, Workers: workers}
	rows, err := core.TelemetryExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Telemetry: per-scheduler utilization and stretch on one online workload")
	fmt.Printf("(12 ports, 16 coflows, seed %d; stretch = CCT / isolated lower bound)\n", seed)
	fmt.Printf("  %-18s %9s %8s %9s %9s %9s %9s %7s\n",
		"scheduler", "makespan", "avgCCT", "util-avg", "util-pk", "stretch", "worst", "jain")
	for _, r := range rows {
		s := r.Summary
		fmt.Printf("  %-18s %9.2f %8.2f %8.1f%% %8.1f%% %9.3f %9.3f %7.3f\n",
			r.Scheduler, r.Makespan, r.AvgCCT,
			100*s.MeanUtilization, 100*s.PeakUtilization,
			s.MeanStretch, s.MaxStretch, s.JainFairness)
	}
	fmt.Println()
	return nil
}
