package main

// The service experiments measure the daemon (internal/service) rather than
// the algorithms behind it.
//
// -exp service-load drives an in-process pool through three phases — steady
// load, ~10x overload with jittered-exponential-backoff clients, and a
// kill+restart — and writes latency percentiles, shed counts and recovery
// time to BENCH_service.json.
//
// -exp service-smoke is the external half of the CI crash test: it drives a
// running ccfd over HTTP (-serviceurl), submitting a deterministic job
// stream ([-serviceoffset, -serviceoffset+-servicejobs)) sequentially and
// appending each decision as one JSON line to -smokeout. CI runs a reference
// pass uninterrupted, then the same stream with a kill -9 and restart in the
// middle, and diffs the two files byte for byte.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccf/internal/metrics"
	"ccf/internal/service"
	"ccf/internal/stats"
	"ccf/internal/workload"
)

// smokeSpec is job i of the deterministic smoke/load stream: same bytes for
// any run, so crash-interrupted and uninterrupted passes are comparable.
func smokeSpec(i int, nodes int) service.JobSpec {
	return service.JobSpec{
		Name: fmt.Sprintf("smoke-%06d", i),
		Key:  fmt.Sprintf("key-%d", i%17),
		Gen: &workload.Config{
			Nodes:          nodes,
			CustomerTuples: 40,
			OrderTuples:    400,
			PayloadBytes:   1000,
			Zipf:           0.8,
			Seed:           uint64(i),
			JitterFrac:     0.05,
		},
	}
}

// ---------------------------------------------------------------------------
// service-load: in-process phases with an httptest server.

type serviceLoadPhase struct {
	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Shed       int     `json:"shed"`
	Retries    int     `json:"retries"`
	Errors     int     `json:"errors"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	HealthP99  float64 `json:"healthz_p99_ms"`
	ElapsedSec float64 `json:"elapsed_sec"`
}

type serviceLoadReport struct {
	Shards        int              `json:"shards"`
	Nodes         int              `json:"nodes"`
	QueueDepth    int              `json:"queue_depth"`
	Normal        serviceLoadPhase `json:"normal"`
	Overload      serviceLoadPhase `json:"overload"`
	KilledAtJobs  uint64           `json:"killed_at_jobs"`
	RestoreMs     float64          `json:"restore_ms"`
	RestoredJobs  uint64           `json:"restored_jobs"`
	DigestsMatch  bool             `json:"digests_match"`
	PostKill      serviceLoadPhase `json:"post_kill"`
	TotalAdmitted uint64           `json:"total_admitted"`
	Scrapes       []metricsScrape  `json:"metrics_scrapes"`
	BatchAxis     []batchAxisRow   `json:"batch_axis"`
}

// batchAxisRow is one -batch-max setting of the group-commit sweep: the same
// overload drive against a single fsync-ing shard, so jobs_per_sec isolates
// what batching the WAL append+fsync (and the session advance behind it)
// buys. Decisions are byte-identical across rows; only throughput moves.
type batchAxisRow struct {
	BatchMax     int     `json:"batch_max"`
	OK           int     `json:"ok"`
	Errors       int     `json:"errors"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	Batches      uint64  `json:"batches"`
	MeanBatch    float64 `json:"mean_batch_jobs"`
	WALSyncs     uint64  `json:"wal_syncs"`
	SyncsPerJob  float64 `json:"syncs_per_job"`
	SpeedupVsSeq float64 `json:"speedup_vs_batch1"`
}

// batchAxisExp sweeps -batch-max over one fsync-per-append shard. The driver
// is open-loop with a bounded in-flight window just under the queue depth:
// the shard's queue stays deep for the whole run (nothing sheds, nothing
// stalls), which is the overload regime where adaptive batching forms full
// groups. Every row submits the same deterministic job stream in-process —
// no HTTP client noise in the throughput being compared.
func batchAxisExp(nodes int) ([]batchAxisRow, error) {
	const inflight, jobs = 120, 2000
	var rows []batchAxisRow
	for _, bm := range []int{1, 8, 64} {
		dir, err := os.MkdirTemp("", "ccfd-batch-")
		if err != nil {
			return nil, err
		}
		cfg := service.Config{
			Shards:        1,
			Nodes:         nodes,
			QueueDepth:    128,
			BatchMax:      bm,
			Dir:           dir,
			SnapshotEvery: -1, // keep the journal pure WAL: the sweep meters group commit, not compaction
			DegradeAfter:  -1, // every decision takes the full co-optimized path
			RetryAfter:    5 * time.Millisecond,
			WALSync:       true,
			Engine:        service.EngineConfig{CoOptimize: true},
		}
		pool, err := service.NewPool(cfg)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		if err := pool.Start(context.Background()); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}

		sem := make(chan struct{}, inflight)
		var wg sync.WaitGroup
		var ok, errs atomic.Int64
		var latMu sync.Mutex
		lats := make([]float64, 0, jobs)
		begin := time.Now()
		for i := 0; i < jobs; i++ {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				b := time.Now()
				if _, err := pool.Submit(context.Background(), smokeSpec(1000+i, nodes)); err != nil {
					errs.Add(1)
					return
				}
				ok.Add(1)
				latMu.Lock()
				lats = append(lats, time.Since(b).Seconds())
				latMu.Unlock()
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(begin).Seconds()
		st := pool.Stats()
		drainErr := pool.Drain(context.Background())
		os.RemoveAll(dir)
		if drainErr != nil {
			return nil, drainErr
		}

		row := batchAxisRow{
			BatchMax:   bm,
			OK:         int(ok.Load()),
			Errors:     int(errs.Load()),
			ElapsedSec: elapsed,
			P50Ms:      stats.Percentile(lats, 50) * 1e3,
			P99Ms:      stats.Percentile(lats, 99) * 1e3,
			Batches:    st.Batches,
			WALSyncs:   st.WALSyncs,
		}
		if elapsed > 0 {
			row.JobsPerSec = float64(row.OK) / elapsed
		}
		if st.Batches > 0 {
			row.MeanBatch = float64(st.Admitted) / float64(st.Batches)
		}
		if st.Admitted > 0 {
			row.SyncsPerJob = float64(st.WALSyncs) / float64(st.Admitted)
		}
		if len(rows) > 0 && rows[0].JobsPerSec > 0 {
			row.SpeedupVsSeq = row.JobsPerSec / rows[0].JobsPerSec
		} else {
			row.SpeedupVsSeq = 1
		}
		fmt.Printf("  batch-max %2d: %6.1f jobs/s, p99 %7.2f ms, %.2f syncs/job (mean batch %.1f), speedup %.2fx\n",
			bm, row.JobsPerSec, row.P99Ms, row.SyncsPerJob, row.MeanBatch, row.SpeedupVsSeq)
		rows = append(rows, row)
	}
	return rows, nil
}

// metricsScrape summarizes one /metrics pull taken at a phase boundary:
// structural validity plus the headline counters, so the benchmark report
// records what an external Prometheus would have seen at that moment.
type metricsScrape struct {
	Phase         string  `json:"phase"`
	Valid         bool    `json:"valid"`
	SampleLines   int     `json:"sample_lines"`
	AdmittedTotal float64 `json:"admitted_total"`
	ShedTotal     float64 `json:"shed_total"`
	DegradedTotal float64 `json:"degraded_total"`
	DecisionCount float64 `json:"decision_latency_count"`
}

// scrapeServiceMetrics pulls url/metrics and folds it into a metricsScrape.
func scrapeServiceMetrics(phase, url string) metricsScrape {
	sc := metricsScrape{Phase: phase}
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return sc
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return sc
	}
	text := string(body)
	sc.Valid = metrics.ValidateExposition(text) == nil
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sc.SampleLines++
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(line, "ccfd_jobs_admitted_total"):
			sc.AdmittedTotal += v
		case strings.HasPrefix(line, "ccfd_jobs_shed_total"):
			sc.ShedTotal += v
		case strings.HasPrefix(line, "ccfd_jobs_degraded_total"):
			sc.DegradedTotal += v
		case strings.HasPrefix(line, "ccfd_decision_latency_seconds_count"):
			sc.DecisionCount += v
		}
	}
	return sc
}

// loadPhase fires `clients` concurrent workers, each submitting jobs from
// the deterministic stream with jittered exponential backoff on 429/5xx,
// while a sidecar samples /healthz latency.
func loadPhase(url string, clients, perClient, offset, nodes int, heavyPartitions int) serviceLoadPhase {
	var ph serviceLoadPhase
	ph.Requests = clients * perClient
	var ok, shed, retries, errs atomic.Int64
	var latMu sync.Mutex
	var lats []float64

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients + 1,
		MaxIdleConnsPerHost: clients + 1,
	}}

	stopHealth := make(chan struct{})
	healthDone := make(chan []float64, 1)
	go func() {
		var hl []float64
		for {
			select {
			case <-stopHealth:
				healthDone <- hl
				return
			default:
			}
			b := time.Now()
			resp, err := client.Get(url + "/healthz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			hl = append(hl, time.Since(b).Seconds())
			time.Sleep(2 * time.Millisecond)
		}
	}()

	begin := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(offset + c)))
			for j := 0; j < perClient; j++ {
				spec := smokeSpec(offset+c*perClient+j, nodes)
				if heavyPartitions > 0 {
					spec.Gen.Partitions = heavyPartitions
				}
				body, _ := json.Marshal(spec)
				backoff := 5 * time.Millisecond
				reqStart := time.Now()
				for attempt := 0; ; attempt++ {
					resp, err := client.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						errs.Add(1)
						break
					}
					io.Copy(io.Discard, resp.Body)
					code := resp.StatusCode
					resp.Body.Close()
					if code == http.StatusOK {
						ok.Add(1)
						latMu.Lock()
						lats = append(lats, time.Since(reqStart).Seconds())
						latMu.Unlock()
						break
					}
					if code == http.StatusTooManyRequests || code >= 500 {
						if code == http.StatusTooManyRequests {
							shed.Add(1)
						}
						if attempt >= 8 {
							errs.Add(1)
							break
						}
						retries.Add(1)
						// Jittered exponential backoff: full jitter over an
						// exponentially growing window.
						time.Sleep(time.Duration(rng.Int63n(int64(backoff))) + backoff/2)
						backoff *= 2
						continue
					}
					errs.Add(1)
					break
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopHealth)
	hl := <-healthDone

	ph.ElapsedSec = time.Since(begin).Seconds()
	ph.OK = int(ok.Load())
	ph.Shed = int(shed.Load())
	ph.Retries = int(retries.Load())
	ph.Errors = int(errs.Load())
	ph.P50Ms = stats.Percentile(lats, 50) * 1e3
	ph.P99Ms = stats.Percentile(lats, 99) * 1e3
	if len(hl) > 0 {
		sort.Float64s(hl)
		ph.HealthP99 = hl[(len(hl)*99)/100] * 1e3
	}
	return ph
}

func serviceLoadExp(outPath, dir string) error {
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ccfd-bench-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	cfg := service.Config{
		Shards:        2,
		Nodes:         8,
		QueueDepth:    8,
		Dir:           dir,
		SnapshotEvery: 32,
		DegradeAfter:  500 * time.Microsecond,
		RetryAfter:    5 * time.Millisecond,
		Engine:        service.EngineConfig{CoOptimize: true},
	}
	rep := serviceLoadReport{Shards: cfg.Shards, Nodes: cfg.Nodes, QueueDepth: cfg.QueueDepth}

	// Each pool gets its own registry: gauge funcs close over a pool's
	// shards, so reusing a registry across the restart would keep scraping
	// the dead pool.
	cfg.Obs = service.Observability{Metrics: metrics.NewRegistry(), TraceDepth: 256}
	pool, err := service.NewPool(cfg)
	if err != nil {
		return err
	}
	if err := pool.Start(context.Background()); err != nil {
		return err
	}
	srv := httptest.NewServer(service.NewHandler(pool, service.HTTPConfig{RequestTimeout: 10 * time.Second}))

	// Phase 1: steady load, concurrency ~ queue capacity.
	fmt.Println("  phase 1: steady load (4 clients)")
	rep.Normal = loadPhase(srv.URL, 4, 50, 0, cfg.Nodes, 0)
	rep.Scrapes = append(rep.Scrapes, scrapeServiceMetrics("normal", srv.URL))

	// Phase 2: overload — twice the pool's total queue capacity in
	// concurrent clients, heavy placements, backoff on shed.
	fmt.Println("  phase 2: overload (32 clients, heavy placements)")
	rep.Overload = loadPhase(srv.URL, 32, 10, 200, cfg.Nodes, 2048)
	rep.Scrapes = append(rep.Scrapes, scrapeServiceMetrics("overload", srv.URL))

	// Phase 3: kill -9 equivalent mid-run, then measure recovery.
	fmt.Println("  phase 3: kill + restart")
	preStates, err := pool.State(context.Background())
	if err != nil {
		return err
	}
	var killedAt uint64
	for _, st := range preStates {
		killedAt += st.Seq
	}
	rep.KilledAtJobs = killedAt
	pool.Kill()
	srv.Close()

	restoreBegin := time.Now()
	cfg.Obs = service.Observability{Metrics: metrics.NewRegistry(), TraceDepth: 256}
	pool2, err := service.NewPool(cfg)
	if err != nil {
		return err
	}
	if err := pool2.Start(context.Background()); err != nil {
		return err
	}
	rep.RestoreMs = time.Since(restoreBegin).Seconds() * 1e3
	postStates, err := pool2.State(context.Background())
	if err != nil {
		return err
	}
	rep.DigestsMatch = len(postStates) == len(preStates)
	for i := range postStates {
		rep.RestoredJobs += postStates[i].Seq
		if i < len(preStates) && postStates[i] != preStates[i] {
			rep.DigestsMatch = false
		}
	}
	srv2 := httptest.NewServer(service.NewHandler(pool2, service.HTTPConfig{RequestTimeout: 10 * time.Second}))
	rep.Scrapes = append(rep.Scrapes, scrapeServiceMetrics("post_restore", srv2.URL))
	rep.PostKill = loadPhase(srv2.URL, 4, 25, 520, cfg.Nodes, 0)
	rep.Scrapes = append(rep.Scrapes, scrapeServiceMetrics("post_kill", srv2.URL))
	finalStates, err := pool2.State(context.Background())
	if err != nil {
		return err
	}
	for _, st := range finalStates {
		rep.TotalAdmitted += st.Seq
	}
	srv2.Close()
	if err := pool2.Drain(context.Background()); err != nil {
		return err
	}

	// Phase 4: the batch axis — same drive, one fsync-ing shard, three
	// -batch-max settings.
	fmt.Println("  phase 4: group-commit batch axis (1 shard, fsync per append)")
	rep.BatchAxis, err = batchAxisExp(cfg.Nodes)
	if err != nil {
		return err
	}

	fmt.Printf("  normal:   %d ok, p50 %.2f ms, p99 %.2f ms\n", rep.Normal.OK, rep.Normal.P50Ms, rep.Normal.P99Ms)
	fmt.Printf("  overload: %d ok, %d shed, %d retries, p99 %.2f ms, healthz p99 %.2f ms\n",
		rep.Overload.OK, rep.Overload.Shed, rep.Overload.Retries, rep.Overload.P99Ms, rep.Overload.HealthP99)
	fmt.Printf("  recovery: %d jobs restored in %.1f ms, digests match: %v\n",
		rep.RestoredJobs, rep.RestoreMs, rep.DigestsMatch)
	if !rep.DigestsMatch {
		return fmt.Errorf("service-load: post-restart state diverged from pre-kill state")
	}
	for _, sc := range rep.Scrapes {
		if !sc.Valid {
			return fmt.Errorf("service-load: /metrics scrape at %s failed structural validation", sc.Phase)
		}
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", outPath)
	return nil
}

// ---------------------------------------------------------------------------
// service-smoke: sequential external driver against a live ccfd.

func serviceSmokeExp(url string, jobs, offset, nodes int, outPath string, wait time.Duration) error {
	if url == "" {
		return fmt.Errorf("service-smoke needs -serviceurl")
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Wait for readiness: the daemon may be mid-restore after a kill.
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(url + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service-smoke: %s not ready after %v", url, wait)
		}
		time.Sleep(100 * time.Millisecond)
	}

	out, err := os.OpenFile(outPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer out.Close()

	rng := rand.New(rand.NewSource(int64(offset)))
	for i := offset; i < offset+jobs; i++ {
		spec := smokeSpec(i, nodes)
		body, _ := json.Marshal(spec)
		backoff := 10 * time.Millisecond
		for attempt := 0; ; attempt++ {
			resp, err := client.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				// Connection refused mid-restart: back off and retry.
				if attempt >= 20 {
					return fmt.Errorf("service-smoke: job %d: %v", i, err)
				}
			} else {
				dec, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					return rerr
				}
				if resp.StatusCode == http.StatusOK {
					// One compact JSON line per decision; the CI crash test
					// diffs these files across runs.
					if _, err := out.Write(append(bytes.TrimSpace(dec), '\n')); err != nil {
						return err
					}
					break
				}
				if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode < 500 {
					return fmt.Errorf("service-smoke: job %d: %d %s", i, resp.StatusCode, dec)
				}
				if attempt >= 20 {
					return fmt.Errorf("service-smoke: job %d: still %d after %d attempts", i, resp.StatusCode, attempt)
				}
			}
			time.Sleep(time.Duration(rng.Int63n(int64(backoff))) + backoff/2)
			if backoff < time.Second {
				backoff *= 2
			}
		}
	}
	fmt.Printf("service-smoke: %d decisions ([%d,%d)) appended to %s\n", jobs, offset, offset+jobs, outPath)
	return nil
}

// ---------------------------------------------------------------------------
// service-burst: concurrent external driver for the kill -9 mid-batch smoke.

// serviceBurstExp slams a running ccfd with `clients` concurrent submitters
// so the shard queues stay deep and admissions ride real multi-record group
// commits. Every acknowledged decision is recorded as one {"shard","seq"}
// JSON line in outPath. The daemon is expected to be killed (kill -9) while
// the burst is in flight: connection errors and 5xx just end that client's
// stream. CI restarts the daemon afterwards and asserts acked ⇒ journaled —
// every recorded seq is <= the restored seq of its shard.
func serviceBurstExp(url string, jobs, nodes, clients int, outPath string, wait time.Duration) error {
	if url == "" {
		return fmt.Errorf("service-burst needs -serviceurl")
	}
	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(url + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service-burst: %s not ready after %v", url, wait)
		}
		time.Sleep(100 * time.Millisecond)
	}

	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	var outMu sync.Mutex
	var acked, errors atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= jobs {
					return
				}
				spec := smokeSpec(i, nodes)
				// A handful of keys keeps every shard's queue deep, so the
				// run loops actually form multi-record batches.
				spec.Key = fmt.Sprintf("burst-%d", i%4)
				body, _ := json.Marshal(spec)
				resp, err := client.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					errors.Add(1) // daemon killed mid-burst: expected
					continue
				}
				dec, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					if resp.StatusCode == http.StatusTooManyRequests {
						time.Sleep(2 * time.Millisecond)
					}
					errors.Add(1)
					continue
				}
				var d service.Decision
				if err := json.Unmarshal(dec, &d); err != nil {
					errors.Add(1)
					continue
				}
				line := fmt.Sprintf("{\"shard\":%d,\"seq\":%d}\n", d.Shard, d.Seq)
				outMu.Lock()
				_, werr := out.WriteString(line)
				outMu.Unlock()
				if werr != nil {
					errors.Add(1)
					continue
				}
				acked.Add(1)
			}
		}()
	}
	wg.Wait()
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("service-burst: %d acked, %d unacked/errored (kill expected), ledger %s\n",
		acked.Load(), errors.Load(), outPath)
	return nil
}
