package main

// trace-scale: replay the synthetic Facebook trace at increasing density
// multipliers and write BENCH_trace.json. Each density row replays
// round(base·density) coflows with interarrivals compressed by the same
// factor through the streaming path (fbtrace.Stream → core.ReplayStream with
// the event-horizon loop and completed-coflow release), so the trace never
// materialises as a slice. Densities up to -tracedense are also run through
// the dense batch path (fbtrace.Generate → netsim.RunInto) to (a) measure
// speedup_vs_dense and (b) assert the two paths agree bit for bit; beyond
// that the dense path is skipped (at ×1000 it would dominate CI) and the
// row carries only the streaming numbers.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ccf/internal/coflow"
	"ccf/internal/core"
	"ccf/internal/fbtrace"
	"ccf/internal/netsim"
)

type traceRow struct {
	Density    float64 `json:"density"`
	Coflows    int     `json:"coflows"`
	Scheduler  string  `json:"scheduler"`
	WallSec    float64 `json:"wall_sec"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	Epochs     int     `json:"epochs"`
	AvgCCT     float64 `json:"avg_cct_sec"`
	// PeakResident is the session's coflow high-water mark — the
	// deterministic memory bound of the streaming replay.
	PeakResident int `json:"peak_resident_coflows"`
	// HeapAllocBytes samples runtime heap-in-use right after the replay (a
	// peak-RSS proxy; GC timing makes it approximate, PeakResident is the
	// deterministic counterpart).
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// Dense-comparison fields, present only on rows where the dense path ran.
	DenseWallSec   float64 `json:"dense_wall_sec,omitempty"`
	SpeedupVsDense float64 `json:"speedup_vs_dense,omitempty"`
	DenseMatch     bool    `json:"dense_match,omitempty"`
}

// parseDensities parses the -density list. Every entry must be a positive,
// finite number.
func parseDensities(list string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		d, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("-density: %q is not a number", tok)
		}
		if d <= 0 {
			return nil, fmt.Errorf("-density: multipliers must be positive, got %g", d)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-density: empty list")
	}
	return out, nil
}

func traceScaleExp(path string, densities []float64, machines, coflows int, denseMax float64) error {
	fmt.Printf("trace-scale: FB-like trace replay, %d machines, base %d coflows (dense comparison up to ×%g):\n",
		machines, coflows, denseMax)
	var rows []traceRow
	for _, density := range densities {
		cfg := fbtrace.Config{
			Machines:            machines,
			Coflows:             coflows,
			MeanInterarrivalSec: 1,
			Seed:                42,
			Density:             density,
		}
		st, err := fbtrace.Stream(cfg)
		if err != nil {
			return err
		}
		total := st.Total()

		runtime.GC()
		start := time.Now()
		rep, err := core.ReplayStream(machines, st, core.ReplayOptions{
			Scheduler:        coflow.NewVarys(),
			EventHorizon:     true,
			ReleaseCompleted: true,
		})
		wall := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("density %g: %w", density, err)
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)

		row := traceRow{
			Density:        density,
			Coflows:        total,
			Scheduler:      "varys",
			WallSec:        wall,
			JobsPerSec:     float64(total) / wall,
			Epochs:         rep.Epochs,
			AvgCCT:         rep.AvgCCT,
			PeakResident:   rep.PeakResident,
			HeapAllocBytes: ms.HeapAlloc,
		}

		if density <= denseMax {
			denseStart := time.Now()
			cfs, err := fbtrace.Generate(cfg)
			if err != nil {
				return err
			}
			fab, err := netsim.NewFabric(machines, 0)
			if err != nil {
				return err
			}
			var denseRep netsim.Report
			if err := netsim.NewSimulator(fab, coflow.NewVarys()).RunInto(cfs, &denseRep); err != nil {
				return fmt.Errorf("density %g dense: %w", density, err)
			}
			row.DenseWallSec = time.Since(denseStart).Seconds()
			row.SpeedupVsDense = row.DenseWallSec / wall
			row.DenseMatch = rep.AvgCCT == denseRep.AvgCCT &&
				rep.Makespan == denseRep.Makespan &&
				rep.TotalBytes == denseRep.TotalBytes &&
				rep.MaxCCT == denseRep.MaxCCT &&
				rep.Epochs == denseRep.Epochs
			if !row.DenseMatch {
				return fmt.Errorf("density %g: streaming replay diverged from dense batch "+
					"(avgCCT %v vs %v, makespan %v vs %v, epochs %d vs %d)",
					density, rep.AvgCCT, denseRep.AvgCCT, rep.Makespan, denseRep.Makespan,
					rep.Epochs, denseRep.Epochs)
			}
		}

		rows = append(rows, row)
		fmt.Printf("  ×%-6g %7d coflows  %8.2fs wall  %9.1f jobs/s  peak resident %6d",
			density, total, row.WallSec, row.JobsPerSec, row.PeakResident)
		if row.DenseWallSec > 0 {
			fmt.Printf("  dense %8.2fs  speedup %5.1fx", row.DenseWallSec, row.SpeedupVsDense)
		}
		fmt.Println()
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return nil
}
