package main

// The failure-model experiments: the randomized chaos sweep over every
// coflow scheduler and the node-loss recovery comparison (co-optimized
// re-placement vs naive retry-in-place). Both mirror the tests in
// internal/core (TestChaosInvariants, TestRecoveryReplaceBeatsRetryInPlace)
// so the CLI and CI exercise the same invariants.

import (
	"fmt"

	"ccf/internal/core"
	"ccf/internal/parallel"
	"ccf/internal/placement"
	"ccf/internal/workload"
)

// chaosExp runs the seeded chaos sweep and prints the aggregate summary.
// Any invariant violation is printed and turns into a non-zero exit.
func chaosExp(seeds, workers int) error {
	fmt.Printf("Chaos sweep: %d fault schedules x 8 coflow schedulers, rotating retransmission policies\n", seeds)
	res, err := core.RunChaos(core.ChaosConfig{Seeds: seeds, Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("  runs:           %d\n", res.Runs)
	fmt.Printf("  wasted bytes:   %.0f (voided by restarts, re-sent)\n", res.TotalWasted)
	fmt.Printf("  flow restarts:  %d\n", res.TotalRestarts)
	fmt.Printf("  max slowdown:   %.3fx (worst faulted/fault-free makespan)\n", res.MaxSlowdown)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Println("  VIOLATION:", v)
		}
		return fmt.Errorf("%d invariant violation(s)", len(res.Violations))
	}
	fmt.Println("  invariants:     all hold (completion, byte conservation, lower bound, recovery)")
	fmt.Println()
	return nil
}

// recoveryExp compares the two recovery policies over a set of seeds: kill
// one node a quarter into the fault-free transfer, then finish the
// redistribution with co-optimized re-placement vs retry-in-place.
func recoveryExp(bw float64, workers int) error {
	if bw <= 0 {
		bw = 1e6 // second-scale runs at the experiment's workload size
	}
	opts := core.Options{Bandwidth: bw}
	fmt.Println("Recovery: node 3 of 8 dies at 25% of the fault-free makespan;")
	fmt.Println("orphaned partitions re-placed by restricted CCF (replace) vs hash-style (retry-in-place)")
	fmt.Printf("  %-4s %12s %6s %14s %14s %8s\n",
		"seed", "clean (s)", "orph", "replace (s)", "retry (s)", "gain")
	const seeds = 8
	// Seeds are independent; run them through the pool and print the rows
	// from the index-ordered results so the table matches the serial output.
	type row struct {
		clean, replace, retry float64
		orphans               int
	}
	rows, err := parallel.Run(workers, seeds, func(i int) (row, error) {
		seed := uint64(i)
		w, err := workload.Generate(workload.Config{
			Nodes: 8, Partitions: 64,
			CustomerTuples: 2000, OrderTuples: 20000, PayloadBytes: 100,
			Zipf: 0.3, ShuffleRanks: true, Seed: seed, JitterFrac: 0.3,
		})
		if err != nil {
			return row{}, err
		}
		probe, err := core.RunWithNodeLoss(w, placement.CCF{},
			core.NodeLossSpec{FailNode: 3, FailTime: 1e-3}, core.RecoverReplace, opts)
		if err != nil {
			return row{}, err
		}
		spec := core.NodeLossSpec{FailNode: 3, FailTime: probe.CleanMakespan / 4}
		rep, err := core.RunWithNodeLoss(w, placement.CCF{}, spec, core.RecoverReplace, opts)
		if err != nil {
			return row{}, err
		}
		retry, err := core.RunWithNodeLoss(w, placement.CCF{}, spec, core.RecoverRetryInPlace, opts)
		if err != nil {
			return row{}, err
		}
		return row{
			clean: rep.CleanMakespan, replace: rep.PostMakespan,
			retry: retry.PostMakespan, orphans: rep.ReplacedPartitions,
		}, nil
	})
	if err != nil {
		return err
	}
	var sumReplace, sumRetry float64
	wins := 0
	for seed, r := range rows {
		gain := (r.retry - r.replace) / r.retry * 100
		fmt.Printf("  %-4d %12.4f %6d %14.4f %14.4f %+7.1f%%\n",
			seed, r.clean, r.orphans, r.replace, r.retry, gain)
		sumReplace += r.replace
		sumRetry += r.retry
		if r.replace < r.retry {
			wins++
		}
	}
	fmt.Printf("  %-4s %12s %6s %14.4f %14.4f %+7.1f%%\n", "mean", "", "",
		sumReplace/seeds, sumRetry/seeds, (sumRetry-sumReplace)/sumRetry*100)
	fmt.Printf("  co-optimized re-placement wins %d/%d seeds\n\n", wins, seeds)
	return nil
}
