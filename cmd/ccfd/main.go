// ccfd is the co-optimizer daemon: the streaming engine of internal/core
// wrapped in a crash-safe HTTP/JSON service (internal/service). One process
// serves a pool of sharded engines with admission control, write-ahead
// logging and periodic snapshots; kill it at any point and a restart from
// the same -dir resumes byte-identical decisions.
//
// Usage:
//
//	ccfd -addr :8080 -dir /var/lib/ccfd -nodes 100 -shards 4
//
// Endpoints: POST /v1/jobs, GET /healthz, GET /readyz, GET /stats,
// GET /v1/state, POST /v1/snapshot; with -metrics also GET /metrics
// (Prometheus text exposition) and with -trace-depth > 0 the per-job
// lifecycle trace endpoints GET /v1/trace?job=<id|name> and
// GET /v1/trace/recent (Chrome trace-event JSON, loadable in Perfetto).
// -admin-addr serves net/http/pprof on a separate mux so profiling never
// shares a listener with the data plane. See DESIGN.md §13–§14.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	rpprof "runtime/pprof"
	"syscall"
	"time"

	"ccf/internal/metrics"
	"ccf/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		nodes     = flag.Int("nodes", 100, "fabric size each shard engine spans")
		shards    = flag.Int("shards", 4, "independent engine shards (jobs are hashed to shards by key)")
		queue     = flag.Int("queue", 64, "per-shard admission queue depth (full queue sheds with 429)")
		batchMax  = flag.Int("batch-max", 16, "max queued jobs decided per shard loop iteration under one group-committed WAL append (1 = sequential; decisions are identical either way)")
		batchWait = flag.Duration("batch-wait", 0, "how long a shard lingers for batch followers once one job is pending (0 = adaptive batching only, no added latency)")
		dir       = flag.String("dir", "", "state directory for snapshots and WALs (empty = no persistence)")
		snapEvery = flag.Int("snapshot-every", 64, "snapshot (compact the WAL) every this many jobs per shard")
		deadline  = flag.Duration("deadline", 5*time.Second, "per-request processing deadline")
		degrade   = flag.Duration("degrade-after", 250*time.Millisecond,
			"queue wait beyond which a job takes the degraded placement-only path (<0 disables)")
		retryAfter = flag.Duration("retry-after", 50*time.Millisecond, "backoff hint sent with shed (429) responses")
		bw         = flag.Float64("bw", 0, "port bandwidth in bytes/sec (0 = simulator default)")
		coopt      = flag.Bool("coopt", true, "co-optimize placements against the in-flight backlog")
		netsched   = flag.String("netsched", "varys", "network coflow scheduler: varys, aalo, fifo, scf, ncf")
		walSync    = flag.Bool("wal-sync", false, "fsync the WAL after every append (survives OS crashes, not just process kills)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "graceful-shutdown budget before the process exits anyway")

		metricsOn  = flag.Bool("metrics", false, "serve Prometheus text exposition at GET /metrics")
		traceDepth = flag.Int("trace-depth", 0, "per-shard ring of completed job lifecycle traces (0 disables /v1/trace)")
		logFormat  = flag.String("log-format", "text", "structured log format: text or json")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error (per-decision lines are debug)")
		adminAddr  = flag.String("admin-addr", "", "separate listen address for net/http/pprof (empty disables)")
		profEvery  = flag.Duration("profile-every", 0, "capture a CPU profile this often (0 disables; requires -profile-dir)")
		profDur    = flag.Duration("profile-duration", 10*time.Second, "length of each continuous CPU profile capture")
		profDir    = flag.String("profile-dir", "", "directory for continuous CPU profiles (ccfd-cpu-<n>.pprof)")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccfd:", err)
		os.Exit(2)
	}

	obs := service.Observability{TraceDepth: *traceDepth, Log: logger}
	if *metricsOn {
		obs.Metrics = metrics.NewRegistry()
	}
	pool, err := service.NewPool(service.Config{
		Shards:        *shards,
		Nodes:         *nodes,
		QueueDepth:    *queue,
		BatchMax:      *batchMax,
		BatchWait:     *batchWait,
		Dir:           *dir,
		SnapshotEvery: *snapEvery,
		DegradeAfter:  *degrade,
		RetryAfter:    *retryAfter,
		WALSync:       *walSync,
		Engine: service.EngineConfig{
			Bandwidth:        *bw,
			CoOptimize:       *coopt,
			NetworkScheduler: *netsched,
		},
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
		Obs: obs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccfd:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if err := pool.Start(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ccfd: start:", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: service.NewHandler(pool, service.HTTPConfig{RequestTimeout: *deadline}),
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening",
		"addr", *addr, "shards", *shards, "nodes", *nodes, "dir", *dir,
		"metrics", *metricsOn, "trace_depth", *traceDepth)

	var adminSrv *http.Server
	if *adminAddr != "" {
		adminSrv = &http.Server{Addr: *adminAddr, Handler: adminMux(obs.Metrics)}
		go func() {
			if err := adminSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin listener failed", "addr", *adminAddr, "error", err)
			}
		}()
		logger.Info("admin listening (pprof)", "addr", *adminAddr)
	}

	if *profEvery > 0 {
		if *profDir == "" {
			fmt.Fprintln(os.Stderr, "ccfd: -profile-every requires -profile-dir")
			os.Exit(2)
		}
		go continuousProfile(ctx, logger, *profDir, *profEvery, *profDur)
	}

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop taking connections, then drain the pool —
		// queued jobs finish, a final snapshot compacts each shard's WAL.
		logger.Info("signal received, draining", "grace", *drainGrace)
		grace, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := srv.Shutdown(grace); err != nil {
			logger.Warn("http shutdown", "error", err)
		}
		if adminSrv != nil {
			_ = adminSrv.Shutdown(grace)
		}
		if err := pool.Drain(grace); err != nil {
			logger.Error("drain failed", "error", err)
			os.Exit(1)
		}
		logger.Info("drained cleanly")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ccfd: serve:", err)
			os.Exit(1)
		}
	}
}

// buildLogger assembles the daemon's slog logger from the CLI knobs.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
	return slog.New(h), nil
}

// adminMux is the operator-only surface: pprof plus a second /metrics mount
// so profiling and scraping work even when the data-plane listener is
// saturated. Kept off the data-plane mux so exposing ccfd to clients never
// exposes pprof.
func adminMux(reg *metrics.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("GET /metrics", reg.Handler())
	}
	return mux
}

// continuousProfile captures a CPU profile of profDur every interval,
// writing numbered files under dir until ctx is cancelled. The capture
// itself is the standard runtime profiler; between captures the daemon
// runs unprofiled.
func continuousProfile(ctx context.Context, logger *slog.Logger, dir string, every, profDur time.Duration) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		logger.Error("profile dir", "error", err)
		return
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for n := 0; ; n++ {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		path := filepath.Join(dir, fmt.Sprintf("ccfd-cpu-%d.pprof", n))
		f, err := os.Create(path)
		if err != nil {
			logger.Error("profile create", "path", path, "error", err)
			return
		}
		if err := rpprof.StartCPUProfile(f); err != nil {
			logger.Error("profile start", "error", err)
			f.Close()
			return
		}
		select {
		case <-ctx.Done():
			rpprof.StopCPUProfile()
			f.Close()
			return
		case <-time.After(profDur):
		}
		rpprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			logger.Error("profile close", "path", path, "error", err)
			return
		}
		logger.Info("cpu profile written", "path", path)
	}
}
