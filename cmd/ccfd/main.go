// ccfd is the co-optimizer daemon: the streaming engine of internal/core
// wrapped in a crash-safe HTTP/JSON service (internal/service). One process
// serves a pool of sharded engines with admission control, write-ahead
// logging and periodic snapshots; kill it at any point and a restart from
// the same -dir resumes byte-identical decisions.
//
// Usage:
//
//	ccfd -addr :8080 -dir /var/lib/ccfd -nodes 100 -shards 4
//
// Endpoints: POST /v1/jobs, GET /healthz, GET /readyz, GET /stats,
// GET /v1/state, POST /v1/snapshot. See DESIGN.md §13.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccf/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		nodes     = flag.Int("nodes", 100, "fabric size each shard engine spans")
		shards    = flag.Int("shards", 4, "independent engine shards (jobs are hashed to shards by key)")
		queue     = flag.Int("queue", 64, "per-shard admission queue depth (full queue sheds with 429)")
		dir       = flag.String("dir", "", "state directory for snapshots and WALs (empty = no persistence)")
		snapEvery = flag.Int("snapshot-every", 64, "snapshot (compact the WAL) every this many jobs per shard")
		deadline  = flag.Duration("deadline", 5*time.Second, "per-request processing deadline")
		degrade   = flag.Duration("degrade-after", 250*time.Millisecond,
			"queue wait beyond which a job takes the degraded placement-only path (<0 disables)")
		retryAfter = flag.Duration("retry-after", 50*time.Millisecond, "backoff hint sent with shed (429) responses")
		bw         = flag.Float64("bw", 0, "port bandwidth in bytes/sec (0 = simulator default)")
		coopt      = flag.Bool("coopt", true, "co-optimize placements against the in-flight backlog")
		netsched   = flag.String("netsched", "varys", "network coflow scheduler: varys, aalo, fifo, scf, ncf")
		walSync    = flag.Bool("wal-sync", false, "fsync the WAL after every append (survives OS crashes, not just process kills)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "graceful-shutdown budget before the process exits anyway")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "ccfd: ", log.LstdFlags|log.Lmicroseconds)
	pool, err := service.NewPool(service.Config{
		Shards:        *shards,
		Nodes:         *nodes,
		QueueDepth:    *queue,
		Dir:           *dir,
		SnapshotEvery: *snapEvery,
		DegradeAfter:  *degrade,
		RetryAfter:    *retryAfter,
		WALSync:       *walSync,
		Engine: service.EngineConfig{
			Bandwidth:        *bw,
			CoOptimize:       *coopt,
			NetworkScheduler: *netsched,
		},
		Logf: logger.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccfd:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if err := pool.Start(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "ccfd: start:", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: service.NewHandler(pool, service.HTTPConfig{RequestTimeout: *deadline}),
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Printf("listening on %s (%d shards x %d nodes, dir=%q)", *addr, *shards, *nodes, *dir)

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop taking connections, then drain the pool —
		// queued jobs finish, a final snapshot compacts each shard's WAL.
		logger.Printf("signal received, draining (grace %v)", *drainGrace)
		grace, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := srv.Shutdown(grace); err != nil {
			logger.Printf("http shutdown: %v", err)
		}
		if err := pool.Drain(grace); err != nil {
			logger.Printf("drain: %v", err)
			os.Exit(1)
		}
		logger.Printf("drained cleanly")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "ccfd: serve:", err)
			os.Exit(1)
		}
	}
}
