// datagen emits workloads in the CoflowSim "benchmark" trace format so CCF's
// schedules can be replayed by the original Varys/Aalo tooling (the paper's
// Figure 4 pipeline: scheduling output → coflow info → simulator).
//
// For a given workload and placer it writes one trace whose jobs encode the
// shuffle flows the placement induces.
//
// Usage:
//
//	datagen -nodes 50 -placer ccf -o shuffle_ccf.txt
//	datagen -nodes 50 -placer hash -scale 0.001 -o shuffle_hash.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"ccf/internal/partition"
	"ccf/internal/placement"
	"ccf/internal/skew"
	"ccf/internal/trace"
	"ccf/internal/workload"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 50, "cluster size n")
		parts    = flag.Int("partitions", 0, "partition count p (0 = 15n)")
		zipf     = flag.Float64("zipf", workload.DefaultZipf, "zipf factor")
		skewFrac = flag.Float64("skew", workload.DefaultSkew, "skew fraction")
		scale    = flag.Float64("scale", 0.01, "dataset scale (1.0 = ≈1 TB)")
		placer   = flag.String("placer", "ccf", "hash, mini, ccf")
		out      = flag.String("o", "", "output file (default stdout)")
		seed     = flag.Uint64("seed", 0, "workload seed")
	)
	flag.Parse()
	if err := run(*nodes, *parts, *zipf, *skewFrac, *scale, *placer, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(nodes, parts int, zipfF, skewFrac, scale float64, placer, out string, seed uint64) error {
	var sched placement.Scheduler
	handleSkew := false
	switch placer {
	case "hash":
		sched = placement.Hash{}
	case "mini":
		sched, handleSkew = placement.Mini{}, true
	case "ccf":
		sched, handleSkew = placement.CCF{}, true
	default:
		return fmt.Errorf("unknown placer %q", placer)
	}

	w, err := workload.Generate(workload.Config{
		Nodes: nodes, Partitions: parts, Zipf: zipfF, Skew: skewFrac, Seed: seed,
		CustomerTuples: int64(scale * workload.DefaultCustomerTuples),
		OrderTuples:    int64(scale * workload.DefaultOrderTuples),
	})
	if err != nil {
		return err
	}

	matrix := w.Chunks
	var initial *partition.Loads
	var broadcast []int64
	if handleSkew && w.SkewPartition >= 0 {
		plan := skew.PartialDuplication(w)
		if err := plan.Validate(w.Chunks); err != nil {
			return err
		}
		matrix, initial, broadcast = plan.Adjusted, plan.Initial, plan.BroadcastVolumes
	}
	pl, err := sched.Place(matrix, initial)
	if err != nil {
		return err
	}
	vol, err := partition.FlowVolumes(matrix, pl)
	if err != nil {
		return err
	}
	for i, b := range broadcast {
		vol[i] += b
	}

	tr, err := trace.FromVolumes(nodes, vol, 0)
	if err != nil {
		return err
	}

	dst := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := trace.Write(dst, tr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datagen: %d jobs over %d racks (%s placement, %.2f GB shuffle)\n",
		len(tr.Jobs), nodes, sched.Name(), float64(sum(vol))/1e9)
	return nil
}

func sum(v []int64) int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}
