package core

import (
	"math"
	"testing"

	"ccf/internal/placement"
	"ccf/internal/workload"
)

// testSweep keeps unit-test sweeps fast: 1/1000 of the paper's tuples.
var testSweep = SweepOptions{Scale: 0.001}

func TestSchedulerFor(t *testing.T) {
	for _, tc := range []struct {
		a       Approach
		name    string
		skewing bool
	}{
		{ApproachHash, "Hash", false},
		{ApproachMini, "Mini", true},
		{ApproachCCF, "CCF", true},
	} {
		s, sk, err := SchedulerFor(tc.a)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != tc.name || sk != tc.skewing {
			t.Errorf("SchedulerFor(%s) = (%s, %v), want (%s, %v)", tc.a, s.Name(), sk, tc.name, tc.skewing)
		}
	}
	if _, _, err := SchedulerFor("bogus"); err == nil {
		t.Error("SchedulerFor accepted an unknown approach")
	}
}

func testWorkload(t *testing.T, n int, zipf, skewFrac float64) *workload.Workload {
	t.Helper()
	w, err := workload.Generate(workload.Config{
		Nodes: n, CustomerTuples: 9_000, OrderTuples: 90_000,
		PayloadBytes: 1000, Zipf: zipf, Skew: skewFrac,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestEventSimMatchesClosedForm(t *testing.T) {
	// The figure experiments use the closed-form bandwidth model; the event
	// simulator must agree for every approach, with and without skew.
	for _, skewFrac := range []float64{0, 0.2} {
		w := testWorkload(t, 8, 0.8, skewFrac)
		for _, a := range []Approach{ApproachHash, ApproachMini, ApproachCCF} {
			closed, err := Run(w, a, Options{})
			if err != nil {
				t.Fatal(err)
			}
			sim, err := Run(w, a, Options{UseEventSim: true})
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(closed.TimeSec-sim.TimeSec) / (closed.TimeSec + 1e-12); rel > 1e-6 {
				t.Errorf("skew=%g %s: closed form %g s vs event sim %g s", skewFrac, a, closed.TimeSec, sim.TimeSec)
			}
			if closed.TrafficBytes != sim.TrafficBytes {
				t.Errorf("skew=%g %s: traffic differs %d vs %d", skewFrac, a, closed.TrafficBytes, sim.TrafficBytes)
			}
		}
	}
}

func TestHashIgnoresSkewHandling(t *testing.T) {
	w := testWorkload(t, 8, 0.8, 0.2)
	r, err := Run(w, ApproachHash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.SkewHandled {
		t.Error("Hash must be skew-oblivious per §IV.A")
	}
	for _, a := range []Approach{ApproachMini, ApproachCCF} {
		r, err := Run(w, a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !r.SkewHandled {
			t.Errorf("%s must integrate partial duplication per §IV.A", a)
		}
	}
}

func TestRunAllReturnsThreeApproaches(t *testing.T) {
	w := testWorkload(t, 6, 0.8, 0.2)
	rs, err := RunAll(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("RunAll returned %d results", len(rs))
	}
	for a, r := range rs {
		if r.TimeSec <= 0 || r.TrafficBytes <= 0 {
			t.Errorf("%s: degenerate result %+v", a, r)
		}
		if err := r.Placement.Validate(6, w.Config.Partitions); err != nil {
			t.Errorf("%s: invalid placement: %v", a, err)
		}
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	fr, err := Fig5([]int{50, 100, 200}, testSweep)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fr.SpeedupOverHash {
		if fr.SpeedupOverHash[i] < 1.5 {
			t.Errorf("point %d: CCF only %.2f× over Hash; paper band is 2.1-3.7×", i, fr.SpeedupOverHash[i])
		}
		if fr.SpeedupOverMini[i] < 5 {
			t.Errorf("point %d: CCF only %.2f× over Mini; paper band is 8.1-15.2×", i, fr.SpeedupOverMini[i])
		}
	}
	// Traffic ordering: Mini ≤ CCF ≤ Hash at every point.
	mini, _ := fr.Traffic.Get("Mini")
	ccf, _ := fr.Traffic.Get("CCF")
	hash, _ := fr.Traffic.Get("Hash")
	for i := range fr.Traffic.X {
		if !(mini.Values[i] <= ccf.Values[i]+1e-9 && ccf.Values[i] <= hash.Values[i]+1e-9) {
			t.Errorf("point %d: traffic ordering violated: Mini %g, CCF %g, Hash %g",
				i, mini.Values[i], ccf.Values[i], hash.Values[i])
		}
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	fr, err := Fig6([]float64{0, 0.5, 1.0}, 100, testSweep)
	if err != nil {
		t.Fatal(err)
	}
	hash, _ := fr.Time.Get("Hash")
	ccf, _ := fr.Time.Get("CCF")
	mini, _ := fr.Time.Get("Mini")
	// Hash ≈ flat: dominated by the skew hotspot at every zipf.
	lo, hi := hash.Values[0], hash.Values[0]
	for _, v := range hash.Values {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi/lo > 1.3 {
		t.Errorf("Hash time varies %.2f× across zipf; paper says nearly constant", hi/lo)
	}
	// CCF increases with zipf.
	for i := 1; i < len(ccf.Values); i++ {
		if ccf.Values[i] <= ccf.Values[i-1] {
			t.Errorf("CCF time not increasing with zipf: %v", ccf.Values)
		}
	}
	// Mini is worst everywhere.
	for i := range mini.Values {
		if mini.Values[i] <= ccf.Values[i] || mini.Values[i] <= hash.Values[i] {
			t.Errorf("point %d: Mini (%g) not the slowest (CCF %g, Hash %g)",
				i, mini.Values[i], ccf.Values[i], hash.Values[i])
		}
	}
	// The extreme speedup at zipf=0 (paper: up to 395× over Mini).
	if fr.SpeedupOverMini[0] < 50 {
		t.Errorf("zipf=0 speedup over Mini = %.1f×; paper reports hundreds", fr.SpeedupOverMini[0])
	}
}

func TestFig7ShapeHolds(t *testing.T) {
	fr, err := Fig7([]float64{0, 0.25, 0.5}, 100, testSweep)
	if err != nil {
		t.Fatal(err)
	}
	hash, _ := fr.Time.Get("Hash")
	ccf, _ := fr.Time.Get("CCF")
	mini, _ := fr.Time.Get("Mini")
	// Hash rises sharply with skew; Mini and CCF decrease.
	if !(hash.Values[0] < hash.Values[1] && hash.Values[1] < hash.Values[2]) {
		t.Errorf("Hash time not increasing with skew: %v", hash.Values)
	}
	for i := 1; i < 3; i++ {
		if ccf.Values[i] >= ccf.Values[i-1] {
			t.Errorf("CCF time not decreasing with skew: %v", ccf.Values)
		}
		if mini.Values[i] >= mini.Values[i-1] {
			t.Errorf("Mini time not decreasing with skew: %v", mini.Values)
		}
	}
	// At skew 0, CCF still (slightly) beats Hash — the paper's "about 50
	// secs faster" at full scale.
	if ccf.Values[0] >= hash.Values[0] {
		t.Errorf("skew=0: CCF (%g) not faster than Hash (%g)", ccf.Values[0], hash.Values[0])
	}
	// Traffic decreases linearly-ish with skew for Mini and CCF.
	miniTr, _ := fr.Traffic.Get("Mini")
	if !(miniTr.Values[0] > miniTr.Values[1] && miniTr.Values[1] > miniTr.Values[2]) {
		t.Errorf("Mini traffic not decreasing with skew: %v", miniTr.Values)
	}
}

func TestSpeedupsAreScaleInvariant(t *testing.T) {
	// The bandwidth model is linear in bytes, so scaling the dataset must
	// not change the speedups — this is what justifies the scaled-down
	// sweeps in tests and benches.
	a, err := Fig5([]int{100}, SweepOptions{Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5([]int{100}, SweepOptions{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(a.SpeedupOverHash[0]-b.SpeedupOverHash[0]) / b.SpeedupOverHash[0]; rel > 0.02 {
		t.Errorf("speedup over Hash varies with scale: %.3f vs %.3f", a.SpeedupOverHash[0], b.SpeedupOverHash[0])
	}
	if rel := math.Abs(a.SpeedupOverMini[0]-b.SpeedupOverMini[0]) / b.SpeedupOverMini[0]; rel > 0.02 {
		t.Errorf("speedup over Mini varies with scale: %.3f vs %.3f", a.SpeedupOverMini[0], b.SpeedupOverMini[0])
	}
}

func TestDefaultAxes(t *testing.T) {
	if got := DefaultFig5Nodes(); len(got) != 10 || got[0] != 100 || got[9] != 1000 {
		t.Errorf("DefaultFig5Nodes = %v", got)
	}
	if got := DefaultFig6Zipfs(); len(got) != 6 || got[5] != 1.0 {
		t.Errorf("DefaultFig6Zipfs = %v", got)
	}
	if got := DefaultFig7Skews(); len(got) != 6 || got[5] != 0.5 {
		t.Errorf("DefaultFig7Skews = %v", got)
	}
}

func TestRunSchedulerWithCustomScheduler(t *testing.T) {
	w := testWorkload(t, 6, 0.8, 0.2)
	r, err := RunScheduler(w, placement.LPT{}, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Approach != "LPT" {
		t.Errorf("approach = %q, want LPT", r.Approach)
	}
	if r.TimeSec <= 0 {
		t.Error("LPT run produced zero time")
	}
}

func TestTrafficGBUnits(t *testing.T) {
	r := &Result{TrafficBytes: 2_500_000_000}
	if got := r.TrafficGB(); got != 2.5 {
		t.Errorf("TrafficGB = %g, want 2.5", got)
	}
}

func TestShuffledRanksWeakenMiniCollapse(t *testing.T) {
	// Ablation abl-rank: with rotated zipf ranks Mini no longer funnels
	// everything into node 0, so its time improves dramatically.
	aligned, err := Fig6([]float64{0.8}, 60, SweepOptions{Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := Fig6([]float64{0.8}, 60, SweepOptions{Scale: 0.001, ShuffleRanks: true})
	if err != nil {
		t.Fatal(err)
	}
	am, _ := aligned.Time.Get("Mini")
	sm, _ := shuffled.Time.Get("Mini")
	if sm.Values[0] >= am.Values[0]/2 {
		t.Errorf("shuffled-rank Mini (%g s) not ≪ aligned Mini (%g s)", sm.Values[0], am.Values[0])
	}
}

func TestCustomBandwidthScalesTime(t *testing.T) {
	w := testWorkload(t, 6, 0.8, 0.2)
	slow, err := Run(w, ApproachCCF, Options{Bandwidth: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(w, ApproachCCF, Options{Bandwidth: 2e6})
	if err != nil {
		t.Fatal(err)
	}
	if r := slow.TimeSec / fast.TimeSec; math.Abs(r-2) > 1e-9 {
		t.Errorf("halving bandwidth changed time by %gx, want exactly 2x", r)
	}
}

func TestSweepPropagatesGenerationErrors(t *testing.T) {
	// A zero node count at a sweep point must surface as an error, not a
	// panic or silent skip.
	if _, err := Fig5([]int{0}, testSweep); err == nil {
		t.Error("Fig5 accepted a zero node count")
	}
}

func TestFigDefaultsApplied(t *testing.T) {
	// Defaults: Fig6/Fig7 use 500 nodes and their canonical axes when
	// given zeros; verify with a tiny scale so this stays fast.
	fr, err := Fig6(nil, 40, SweepOptions{Scale: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Time.X) != len(DefaultFig6Zipfs()) {
		t.Errorf("Fig6 default axis has %d points", len(fr.Time.X))
	}
	fr7, err := Fig7(nil, 40, SweepOptions{Scale: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr7.Time.X) != len(DefaultFig7Skews()) {
		t.Errorf("Fig7 default axis has %d points", len(fr7.Time.X))
	}
}

func TestPartitionMultiplierOption(t *testing.T) {
	opts := SweepOptions{Scale: 0.001, PartitionMultiplier: 5}.withDefaults()
	cfg := opts.workloadConfig(20, 0.8, 0.2)
	if cfg.Partitions != 100 {
		t.Errorf("partitions = %d, want 5×20", cfg.Partitions)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.Chunks.P != 100 {
		t.Errorf("generated partitions = %d", w.Chunks.P)
	}
}
