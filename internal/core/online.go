package core

// Online co-optimization: the paper's footnote-1 claim ("our proposed
// framework is based on the coflow abstraction, thus it can be extended to
// online and complex network cases very easily") made concrete. Analytical
// jobs arrive over time; each job's operator is placed *knowing the backlog
// the in-flight coflows will still be moving at its arrival* — the
// outstanding bytes per port become the initial-load term v⁰ of the model —
// and all coflows then share the fabric under Varys.
//
// The contrast mode (co-optimize off) places each operator as if the
// network were idle, which is what a system composing an offline placer
// with an online coflow scheduler would do.
//
// Two implementations coexist:
//
//   - OnlineEngine (the serving path) keeps ONE resumable netsim.Session
//     alive across the whole stream: each Submit advances the live
//     simulation to the job's arrival, reads the backlog in place, places,
//     and admits the new coflow into the same session. Total simulator work
//     is O(J) over J jobs with zero per-arrival cloning.
//   - RunOnlineReference (the frozen reference) re-simulates the entire
//     admitted history from t=0 with a horizon for every arrival — O(J²)
//     simulator work and a deep clone per arrival. It exists to pin the
//     engine: TestOnlineEngineMatchesReference asserts byte-identical
//     CCTs/Makespan across seeds × placers × network schedulers ×
//     co-optimize on/off, with and without injected port failures.
//
// RunOnline, the public batch entry point, is a thin wrapper over the
// engine: sort by arrival, Submit each job, Finish, map CCTs back to input
// order.

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/partition"
	"ccf/internal/placement"
	"ccf/internal/skew"
	"ccf/internal/workload"
)

// OnlineJob is one operator arriving at a point in time.
type OnlineJob struct {
	Name     string
	Arrival  float64 // seconds
	Workload *workload.Workload
	// Scheduler places this job's partitions; nil means CCF.
	Scheduler placement.Scheduler
	// HandleSkew applies partial duplication before placement.
	HandleSkew bool
	// PlacementOnly skips the backlog probe for this job even when the
	// engine co-optimizes: the job is placed against an idle network and
	// admitted without advancing the session. This is the daemon's
	// load-shedding path — a degraded decision beats a timed-out one — and
	// the flag is recorded in its write-ahead log so replay repeats the
	// same degraded placements bit for bit.
	PlacementOnly bool
}

// ErrArrivalOutOfOrder reports a job submitted with an arrival earlier than
// the engine clock (the previous submission's arrival). The live session
// only moves forward in time, so an out-of-order arrival cannot be admitted
// as-is; concurrent intakes (the daemon) catch this with errors.Is and lift
// the arrival to the clock instead. Returned wrapped in *ArrivalOrderError.
var ErrArrivalOutOfOrder = errors.New("core: job arrives before engine clock")

// ArrivalOrderError carries the details of an out-of-order submission; it
// unwraps to ErrArrivalOutOfOrder.
type ArrivalOrderError struct {
	Job     int     // submission index of the rejected job
	Arrival float64 // the job's arrival
	Clock   float64 // the engine clock it fell behind
}

func (e *ArrivalOrderError) Error() string {
	return fmt.Sprintf("core: online job %d arrives at %g, before the engine clock %g (submit in arrival order)",
		e.Job, e.Arrival, e.Clock)
}

func (e *ArrivalOrderError) Unwrap() error { return ErrArrivalOutOfOrder }

// OnlineOptions configure an online run.
type OnlineOptions struct {
	// Bandwidth per port (bytes/sec); 0 = CoflowSim default.
	Bandwidth float64
	// CoOptimize feeds each arrival the in-flight port backlog as initial
	// loads; false places each job against an idle network.
	CoOptimize bool
	// NetworkScheduler orders the concurrent coflows; nil = Varys.
	NetworkScheduler coflow.Scheduler
	// Failures schedules port outages on the shared fabric (see
	// netsim.PortFailure); edges straddling job arrivals apply exactly as in
	// an offline run. Retransmit selects the recovery policy.
	Failures   []netsim.PortFailure
	Retransmit netsim.RetransmitPolicy
}

// OnlineReport summarises an online run.
type OnlineReport struct {
	// CCTs[i] is the coflow completion time of jobs[i] (seconds from
	// arrival), indexed by the caller's input job order regardless of
	// arrival order; 0 for jobs with no remote bytes.
	CCTs []float64
	// AvgCCT and MaxCCT aggregate over jobs.
	AvgCCT   float64
	MaxCCT   float64
	Makespan float64
}

// OnlineDecision reports what Submit decided for one job.
type OnlineDecision struct {
	// Job is the submission index (0-based, arrival order).
	Job int
	// Placement assigns each partition of the job's (possibly skew-adjusted)
	// chunk matrix a destination node.
	Placement *partition.Placement
	// Backlog is the in-flight per-port load the placement saw — the v⁰
	// initial-load term. Zero-valued when co-optimization is off or the
	// network was idle at the arrival.
	Backlog partition.Loads
	// Completed counts jobs that had already finished when this one arrived
	// (only advanced when co-optimization drives the session forward).
	Completed int
}

// OnlineEngine streams jobs through one live co-optimized simulation.
// Construct with NewOnlineEngine, feed jobs in non-decreasing arrival order
// with Submit, and call Finish once to run the tail and collect the report.
// Compared to RunOnlineReference's probe-per-arrival, the engine does O(J)
// total simulator work over J jobs and produces byte-identical CCTs and
// makespan (see TestOnlineEngineMatchesReference). Not safe for concurrent
// use.
type OnlineEngine struct {
	opts     OnlineOptions
	n        int
	sim      *netsim.Simulator
	ses      *netsim.Session
	jobs     []*coflow.Coflow // one per submitted job, in submission order
	lastArr  float64
	egB, inB []int64 // reusable backlog buffers
	batch    *Batch  // reusable batch handle (BeginBatch)
	finished bool
}

// NewOnlineEngine builds an engine over a fresh fabric of `nodes` ports.
func NewOnlineEngine(nodes int, opts OnlineOptions) (*OnlineEngine, error) {
	fabric, err := netsim.NewFabric(nodes, opts.Bandwidth)
	if err != nil {
		return nil, err
	}
	netSched := opts.NetworkScheduler
	if netSched == nil {
		netSched = coflow.NewVarys()
	}
	sim := netsim.NewSimulator(fabric, netSched)
	sim.Failures = opts.Failures
	sim.Retransmit = opts.Retransmit
	ses, err := sim.Session()
	if err != nil {
		return nil, err
	}
	return &OnlineEngine{
		opts: opts, n: nodes, sim: sim, ses: ses,
		egB: make([]int64, nodes), inB: make([]int64, nodes),
	}, nil
}

// Submit places one arriving job and admits its coflow into the live
// simulation. Jobs must be submitted in non-decreasing arrival order — the
// session only moves forward in time (RunOnline sorts for you). When
// co-optimizing, the session is advanced to the arrival and the in-flight
// backlog read off the live flow state; no history is re-simulated.
func (e *OnlineEngine) Submit(job OnlineJob) (*OnlineDecision, error) {
	return e.submit(job, nil)
}

// Batch shares one backlog snapshot across the co-optimized placement
// probes of an admission batch. The first probing job at a given arrival
// pays the full O(flows) BacklogInto scan; followers at the same arrival
// copy the cached snapshot, incrementally extended with each admitted
// coflow's own volumes (exact int64 additions — identical to re-probing).
// Decisions stay byte-identical to sequential Submit calls: every job still
// advances the session to its arrival (retiring zero-byte coflows and
// crossing failure edges exactly where the sequential path does); only the
// redundant backlog re-scan is skipped. Obtain with BeginBatch; a Batch is
// owned by the engine's goroutine and is invalidated by the next BeginBatch.
type Batch struct {
	e       *OnlineEngine
	arrival float64
	valid   bool
	eg, in  []int64
}

// BeginBatch starts an admission batch. The returned handle reuses
// engine-owned buffers, so at most one batch may be live at a time.
func (e *OnlineEngine) BeginBatch() *Batch {
	if e.batch == nil {
		e.batch = &Batch{e: e, eg: make([]int64, e.n), in: make([]int64, e.n)}
	}
	e.batch.valid = false
	return e.batch
}

// Submit is Submit on the engine, sharing the batch's backlog snapshot.
func (b *Batch) Submit(job OnlineJob) (*OnlineDecision, error) {
	return b.e.submit(job, b)
}

// noteAdmitted folds a freshly admitted coflow into the cached snapshot so
// the next same-arrival probe needs no rescan. A coflow admitted at a
// different arrival (a PlacementOnly job with an explicit later timestamp)
// invalidates the cache instead — the next probe re-reads the session.
func (b *Batch) noteAdmitted(cf *coflow.Coflow, arrival float64) {
	if !b.valid {
		return
	}
	if arrival != b.arrival {
		b.valid = false
		return
	}
	for _, f := range cf.Flows {
		if f.Done {
			continue
		}
		r := int64(f.Remaining + 0.5)
		b.eg[f.Src] += r
		b.in[f.Dst] += r
	}
}

// BatchResult pairs one job's decision with its submission error.
type BatchResult struct {
	Decision *OnlineDecision
	Err      error
}

// AdmitBatch submits a batch of jobs that share one admission instant (or a
// non-decreasing run of instants) through a single Batch handle: the live
// session advances once per distinct arrival and the backlog snapshot is
// probed once and reused across the batch. Per-job failures are reported in
// the matching BatchResult; a failed job admits nothing and later jobs in
// the batch still submit, exactly as sequential Submit calls would.
func (e *OnlineEngine) AdmitBatch(jobs []OnlineJob) []BatchResult {
	b := e.BeginBatch()
	out := make([]BatchResult, len(jobs))
	for i, job := range jobs {
		out[i].Decision, out[i].Err = b.Submit(job)
	}
	return out
}

// submit is the one admission path; bp non-nil shares the batch's backlog
// snapshot, bp == nil is the sequential path (always probes the session).
func (e *OnlineEngine) submit(job OnlineJob, bp *Batch) (*OnlineDecision, error) {
	if e.finished {
		return nil, errors.New("core: online engine already finished")
	}
	ji := len(e.jobs)
	if job.Workload == nil {
		return nil, fmt.Errorf("core: online job %d has no workload", ji)
	}
	if job.Workload.Chunks.N != e.n {
		return nil, fmt.Errorf("core: online job %d spans %d nodes, engine spans %d",
			ji, job.Workload.Chunks.N, e.n)
	}
	if job.Arrival < 0 {
		return nil, fmt.Errorf("core: online job %d has negative arrival %g", ji, job.Arrival)
	}
	if job.Arrival < e.lastArr {
		return nil, &ArrivalOrderError{Job: ji, Arrival: job.Arrival, Clock: e.lastArr}
	}
	e.lastArr = job.Arrival

	sched := job.Scheduler
	if sched == nil {
		sched = placement.CCF{}
	}
	matrix := job.Workload.Chunks
	initial := &partition.Loads{Egress: make([]int64, e.n), Ingress: make([]int64, e.n)}
	var plan *skew.Plan
	if job.HandleSkew && job.Workload.SkewPartition >= 0 {
		plan = skew.PartialDuplication(job.Workload)
		if err := plan.Validate(job.Workload.Chunks); err != nil {
			return nil, fmt.Errorf("core: online job %d: %w", ji, err)
		}
		matrix = plan.Adjusted
		copy(initial.Egress, plan.Initial.Egress)
		copy(initial.Ingress, plan.Initial.Ingress)
	}

	dec := &OnlineDecision{Job: ji}
	if e.opts.CoOptimize && !job.PlacementOnly && len(e.jobs) > 0 {
		// What does the network look like when this job arrives? Advance
		// the one live simulation from the previous arrival and read the
		// outstanding bytes per port in place. The advance always runs —
		// even mid-batch at an unchanged arrival it retires just-finished
		// coflows on exactly the boundaries the sequential path does — but
		// a batch handle with a snapshot for this arrival replaces the
		// O(flows) BacklogInto rescan with a copy.
		if err := e.ses.Advance(job.Arrival); err != nil {
			return nil, fmt.Errorf("core: online job %d: backlog probe: %w", ji, err)
		}
		if bp != nil && bp.valid && bp.arrival == job.Arrival {
			copy(e.egB, bp.eg)
			copy(e.inB, bp.in)
		} else {
			if err := e.ses.BacklogInto(e.egB, e.inB); err != nil {
				return nil, fmt.Errorf("core: online job %d: %w", ji, err)
			}
			if bp != nil {
				bp.arrival = job.Arrival
				bp.valid = true
				copy(bp.eg, e.egB)
				copy(bp.in, e.inB)
			}
		}
		dec.Backlog = partition.Loads{
			Egress:  append([]int64(nil), e.egB...),
			Ingress: append([]int64(nil), e.inB...),
		}
		for i := 0; i < e.n; i++ {
			initial.Egress[i] += e.egB[i]
			initial.Ingress[i] += e.inB[i]
		}
		dec.Completed = len(e.ses.Report().CCTs)
	}

	pl, err := sched.Place(matrix, initial)
	if err != nil {
		return nil, fmt.Errorf("core: online job %d: %w", ji, err)
	}
	vol, err := partition.FlowVolumes(matrix, pl)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		for i, b := range plan.BroadcastVolumes {
			vol[i] += b
		}
	}
	cf, err := coflow.FromVolumes(ji, job.Name, job.Arrival, e.n, vol)
	if err != nil {
		return nil, err
	}
	if err := e.ses.Admit(cf); err != nil {
		return nil, fmt.Errorf("core: online job %d: %w", ji, err)
	}
	if bp != nil {
		bp.noteAdmitted(cf, job.Arrival)
	}
	e.jobs = append(e.jobs, cf)
	dec.Placement = pl
	return dec, nil
}

// Finish runs the live simulation to completion and aggregates per-job
// CCTs in submission order. The engine cannot accept further jobs after.
func (e *OnlineEngine) Finish() (*OnlineReport, error) {
	if e.finished {
		return nil, errors.New("core: online engine already finished")
	}
	e.finished = true
	rep, err := e.ses.Finish()
	if err != nil {
		return nil, err
	}
	out := &OnlineReport{CCTs: make([]float64, len(e.jobs)), Makespan: rep.Makespan}
	for ji, cf := range e.jobs {
		cct, ok := rep.CCTs[cf.ID]
		if !ok {
			// A job with no remote bytes completes instantly.
			cct = 0
		}
		out.CCTs[ji] = cct
		out.AvgCCT += cct
		if cct > out.MaxCCT {
			out.MaxCCT = cct
		}
	}
	if len(e.jobs) > 0 {
		out.AvgCCT /= float64(len(e.jobs))
	}
	return out, nil
}

// Clock returns the engine clock: the arrival of the latest submitted job
// (0 before any submission). Submissions with earlier arrivals are rejected
// with ErrArrivalOutOfOrder.
func (e *OnlineEngine) Clock() float64 { return e.lastArr }

// JobCount returns the number of jobs admitted so far.
func (e *OnlineEngine) JobCount() int { return len(e.jobs) }

// CompletedJobs returns how many admitted jobs had finished their transfers
// the last time the live session advanced (only the co-optimized path moves
// the session between submissions, so a placement-oblivious engine reports 0
// until Finish).
func (e *OnlineEngine) CompletedJobs() int { return len(e.ses.Report().CCTs) }

// BacklogInto writes the live session's per-port in-flight bytes into the
// caller's slices (len n each) — the observability mirror of the backlog
// probe the co-optimized placer uses. Read-only, but the session is owned
// by the engine's goroutine: call it only from there (the service shard
// samples it in its run loop and publishes through atomics).
func (e *OnlineEngine) BacklogInto(egress, ingress []int64) error {
	return e.ses.BacklogInto(egress, ingress)
}

// StateDigest fingerprints the engine's full deterministic state — the
// session's clock and per-flow progress plus the engine clock and admission
// count — so a snapshot/restore cycle can prove the restored engine is
// byte-identical to the one that wrote the snapshot.
func (e *OnlineEngine) StateDigest() uint64 {
	d := e.ses.Digest()
	d ^= 0x9e3779b97f4a7c15 * uint64(len(e.jobs))
	d = (d << 7) | (d >> 57)
	d ^= math.Float64bits(e.lastArr)
	return d
}

// RunOnline places and simulates a stream of jobs.
//
// Placement happens in arrival order. When co-optimizing, the network state
// at each arrival is the live backlog of the one shared simulation (the same
// Varys dynamics throughout) at that time; that backlog, plus the job's own
// skew broadcasts, forms the initial loads of the placement model. The
// simulation then continues with the new coflow admitted, and its end state
// yields the reported CCTs. This is a thin wrapper over OnlineEngine —
// submit in arrival order, finish, map CCTs back to input job order.
func RunOnline(jobs []OnlineJob, opts OnlineOptions) (*OnlineReport, error) {
	order, n, err := onlineOrder(jobs)
	if err != nil {
		return nil, err
	}
	if order == nil {
		return &OnlineReport{}, nil
	}
	eng, err := NewOnlineEngine(n, opts)
	if err != nil {
		return nil, err
	}
	for _, ji := range order {
		if _, err := eng.Submit(jobs[ji]); err != nil {
			return nil, err
		}
	}
	rep, err := eng.Finish()
	if err != nil {
		return nil, err
	}
	out := &OnlineReport{CCTs: make([]float64, len(jobs)), Makespan: rep.Makespan}
	for k, ji := range order {
		cct := rep.CCTs[k]
		out.CCTs[ji] = cct
	}
	// Aggregate in input order so the float summation is deterministic and
	// matches the reference implementation bit for bit.
	for _, cct := range out.CCTs {
		out.AvgCCT += cct
		if cct > out.MaxCCT {
			out.MaxCCT = cct
		}
	}
	out.AvgCCT /= float64(len(jobs))
	return out, nil
}

// onlineOrder validates a job batch and returns the stable arrival order.
// A nil order with a nil error signals an empty batch.
func onlineOrder(jobs []OnlineJob) ([]int, int, error) {
	if len(jobs) == 0 {
		return nil, 0, nil
	}
	for i, j := range jobs {
		if j.Workload == nil {
			return nil, 0, fmt.Errorf("core: online job %d has no workload", i)
		}
	}
	n := jobs[0].Workload.Chunks.N
	for i, j := range jobs {
		if j.Workload.Chunks.N != n {
			return nil, 0, fmt.Errorf("core: online job %d spans %d nodes, first job spans %d",
				i, j.Workload.Chunks.N, n)
		}
		if j.Arrival < 0 {
			return nil, 0, fmt.Errorf("core: online job %d has negative arrival %g", i, j.Arrival)
		}
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].Arrival < jobs[order[b]].Arrival })
	return order, n, nil
}

// RunOnlineReference is the frozen probe-per-arrival implementation kept as
// the equivalence oracle for OnlineEngine: for every arrival it deep-clones
// the admitted coflows and re-simulates them from t=0 up to a horizon at the
// arrival to read the backlog — O(J²) simulator work. Semantics are
// otherwise identical to RunOnline, and the equivalence suite pins the two
// to byte-identical CCTs and makespan.
func RunOnlineReference(jobs []OnlineJob, opts OnlineOptions) (*OnlineReport, error) {
	order, n, err := onlineOrder(jobs)
	if err != nil {
		return nil, err
	}
	if order == nil {
		return &OnlineReport{}, nil
	}
	fabric, err := netsim.NewFabric(n, opts.Bandwidth)
	if err != nil {
		return nil, err
	}
	netSched := opts.NetworkScheduler
	if netSched == nil {
		netSched = coflow.NewVarys()
	}

	var admitted []*coflow.Coflow
	cfByJob := make([]*coflow.Coflow, len(jobs))
	for rank, ji := range order {
		job := jobs[ji]
		sched := job.Scheduler
		if sched == nil {
			sched = placement.CCF{}
		}

		matrix := job.Workload.Chunks
		initial := &partition.Loads{Egress: make([]int64, n), Ingress: make([]int64, n)}
		var plan *skew.Plan
		if job.HandleSkew && job.Workload.SkewPartition >= 0 {
			plan = skew.PartialDuplication(job.Workload)
			if err := plan.Validate(job.Workload.Chunks); err != nil {
				return nil, fmt.Errorf("core: online job %d: %w", ji, err)
			}
			matrix = plan.Adjusted
			copy(initial.Egress, plan.Initial.Egress)
			copy(initial.Ingress, plan.Initial.Ingress)
		}

		if opts.CoOptimize && len(admitted) > 0 {
			// What will the network look like when this job arrives?
			probe := cloneCoflows(admitted)
			sim := netsim.NewSimulator(fabric, netSched)
			sim.Failures = opts.Failures
			sim.Retransmit = opts.Retransmit
			sim.Horizon = job.Arrival
			if _, err := sim.Run(probe); err != nil {
				return nil, fmt.Errorf("core: online job %d: backlog probe: %w", ji, err)
			}
			eg, in := netsim.PortBacklog(n, probe)
			for i := 0; i < n; i++ {
				initial.Egress[i] += eg[i]
				initial.Ingress[i] += in[i]
			}
		}

		pl, err := sched.Place(matrix, initial)
		if err != nil {
			return nil, fmt.Errorf("core: online job %d: %w", ji, err)
		}
		vol, err := partition.FlowVolumes(matrix, pl)
		if err != nil {
			return nil, err
		}
		if plan != nil {
			for i, b := range plan.BroadcastVolumes {
				vol[i] += b
			}
		}
		// Coflow IDs are arrival ranks (as in OnlineEngine, where a streaming
		// submission index is all there is), so scheduler ID tie-breaks agree
		// between the two implementations.
		cf, err := coflow.FromVolumes(rank, job.Name, job.Arrival, n, vol)
		if err != nil {
			return nil, err
		}
		admitted = append(admitted, cf)
		cfByJob[ji] = cf
	}

	finalSim := netsim.NewSimulator(fabric, netSched)
	finalSim.Failures = opts.Failures
	finalSim.Retransmit = opts.Retransmit
	rep, err := finalSim.Run(admitted)
	if err != nil {
		return nil, err
	}
	out := &OnlineReport{CCTs: make([]float64, len(jobs)), Makespan: rep.Makespan}
	for ji, cf := range cfByJob {
		cct, ok := rep.CCTs[cf.ID]
		if !ok {
			// A job with no remote bytes completes instantly.
			cct = 0
		}
		out.CCTs[ji] = cct
		out.AvgCCT += cct
		if cct > out.MaxCCT {
			out.MaxCCT = cct
		}
	}
	out.AvgCCT /= float64(len(jobs))
	return out, nil
}

// cloneCoflows deep-copies coflows so horizon probes do not disturb the
// originals (the simulator resets state on Run, but the probe must not race
// with the final run's IDs or share Flow pointers).
func cloneCoflows(in []*coflow.Coflow) []*coflow.Coflow {
	out := make([]*coflow.Coflow, len(in))
	for i, c := range in {
		nc := &coflow.Coflow{ID: c.ID, Name: c.Name, Arrival: c.Arrival}
		for _, f := range c.Flows {
			nc.Flows = append(nc.Flows, &coflow.Flow{
				ID: f.ID, Coflow: nc, Src: f.Src, Dst: f.Dst, Size: f.Size, Remaining: f.Size,
			})
		}
		out[i] = nc
	}
	return out
}
