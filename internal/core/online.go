package core

// Online co-optimization: the paper's footnote-1 claim ("our proposed
// framework is based on the coflow abstraction, thus it can be extended to
// online and complex network cases very easily") made concrete. Analytical
// jobs arrive over time; each job's operator is placed *knowing the backlog
// the in-flight coflows will still be moving at its arrival* — the
// outstanding bytes per port become the initial-load term v⁰ of the model —
// and all coflows then share the fabric under Varys.
//
// The contrast mode (co-optimize off) places each operator as if the
// network were idle, which is what a system composing an offline placer
// with an online coflow scheduler would do.

import (
	"fmt"
	"sort"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/partition"
	"ccf/internal/placement"
	"ccf/internal/skew"
	"ccf/internal/workload"
)

// OnlineJob is one operator arriving at a point in time.
type OnlineJob struct {
	Name     string
	Arrival  float64 // seconds
	Workload *workload.Workload
	// Scheduler places this job's partitions; nil means CCF.
	Scheduler placement.Scheduler
	// HandleSkew applies partial duplication before placement.
	HandleSkew bool
}

// OnlineOptions configure an online run.
type OnlineOptions struct {
	// Bandwidth per port (bytes/sec); 0 = CoflowSim default.
	Bandwidth float64
	// CoOptimize feeds each arrival the in-flight port backlog as initial
	// loads; false places each job against an idle network.
	CoOptimize bool
	// NetworkScheduler orders the concurrent coflows; nil = Varys.
	NetworkScheduler coflow.Scheduler
}

// OnlineReport summarises an online run.
type OnlineReport struct {
	// CCTs maps job index (in arrival order) to its coflow completion time.
	CCTs []float64
	// AvgCCT and MaxCCT aggregate over jobs.
	AvgCCT   float64
	MaxCCT   float64
	Makespan float64
}

// RunOnline places and simulates a stream of jobs.
//
// Placement happens in arrival order. When co-optimizing, the network state
// at each arrival is obtained by simulating the already-admitted coflows up
// to that time (the same Varys dynamics the final run uses) and reading the
// per-port backlog; that backlog, plus the job's own skew broadcasts, forms
// the initial loads of the placement model. A final full simulation of all
// coflows yields the reported CCTs.
func RunOnline(jobs []OnlineJob, opts OnlineOptions) (*OnlineReport, error) {
	if len(jobs) == 0 {
		return &OnlineReport{}, nil
	}
	for i, j := range jobs {
		if j.Workload == nil {
			return nil, fmt.Errorf("core: online job %d has no workload", i)
		}
	}
	n := jobs[0].Workload.Chunks.N
	for i, j := range jobs {
		if j.Workload.Chunks.N != n {
			return nil, fmt.Errorf("core: online job %d spans %d nodes, first job spans %d",
				i, j.Workload.Chunks.N, n)
		}
		if j.Arrival < 0 {
			return nil, fmt.Errorf("core: online job %d has negative arrival %g", i, j.Arrival)
		}
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].Arrival < jobs[order[b]].Arrival })

	fabric, err := netsim.NewFabric(n, opts.Bandwidth)
	if err != nil {
		return nil, err
	}
	netSched := opts.NetworkScheduler
	if netSched == nil {
		netSched = coflow.NewVarys()
	}

	var admitted []*coflow.Coflow
	cfByJob := make([]*coflow.Coflow, len(jobs))
	for _, ji := range order {
		job := jobs[ji]
		sched := job.Scheduler
		if sched == nil {
			sched = placement.CCF{}
		}

		matrix := job.Workload.Chunks
		initial := &partition.Loads{Egress: make([]int64, n), Ingress: make([]int64, n)}
		var plan *skew.Plan
		if job.HandleSkew && job.Workload.SkewPartition >= 0 {
			plan = skew.PartialDuplication(job.Workload)
			if err := plan.Validate(job.Workload.Chunks); err != nil {
				return nil, fmt.Errorf("core: online job %d: %w", ji, err)
			}
			matrix = plan.Adjusted
			copy(initial.Egress, plan.Initial.Egress)
			copy(initial.Ingress, plan.Initial.Ingress)
		}

		if opts.CoOptimize && len(admitted) > 0 {
			// What will the network look like when this job arrives?
			probe := cloneCoflows(admitted)
			sim := netsim.NewSimulator(fabric, netSched)
			sim.Horizon = job.Arrival
			if _, err := sim.Run(probe); err != nil {
				return nil, fmt.Errorf("core: online job %d: backlog probe: %w", ji, err)
			}
			eg, in := netsim.PortBacklog(n, probe)
			for i := 0; i < n; i++ {
				initial.Egress[i] += eg[i]
				initial.Ingress[i] += in[i]
			}
		}

		pl, err := sched.Place(matrix, initial)
		if err != nil {
			return nil, fmt.Errorf("core: online job %d: %w", ji, err)
		}
		vol, err := partition.FlowVolumes(matrix, pl)
		if err != nil {
			return nil, err
		}
		if plan != nil {
			for i, b := range plan.BroadcastVolumes {
				vol[i] += b
			}
		}
		cf, err := coflow.FromVolumes(ji, job.Name, job.Arrival, n, vol)
		if err != nil {
			return nil, err
		}
		admitted = append(admitted, cf)
		cfByJob[ji] = cf
	}

	rep, err := netsim.NewSimulator(fabric, netSched).Run(admitted)
	if err != nil {
		return nil, err
	}
	out := &OnlineReport{CCTs: make([]float64, len(jobs)), Makespan: rep.Makespan}
	for ji, cf := range cfByJob {
		cct, ok := rep.CCTs[cf.ID]
		if !ok {
			// A job with no remote bytes completes instantly.
			cct = 0
		}
		out.CCTs[ji] = cct
		out.AvgCCT += cct
		if cct > out.MaxCCT {
			out.MaxCCT = cct
		}
	}
	out.AvgCCT /= float64(len(jobs))
	return out, nil
}

// cloneCoflows deep-copies coflows so horizon probes do not disturb the
// originals (the simulator resets state on Run, but the probe must not race
// with the final run's IDs or share Flow pointers).
func cloneCoflows(in []*coflow.Coflow) []*coflow.Coflow {
	out := make([]*coflow.Coflow, len(in))
	for i, c := range in {
		nc := &coflow.Coflow{ID: c.ID, Name: c.Name, Arrival: c.Arrival}
		for _, f := range c.Flows {
			nc.Flows = append(nc.Flows, &coflow.Flow{
				ID: f.ID, Coflow: nc, Src: f.Src, Dst: f.Dst, Size: f.Size, Remaining: f.Size,
			})
		}
		out[i] = nc
	}
	return out
}
