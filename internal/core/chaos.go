package core

// Chaos harness — randomized fault injection over every coflow scheduler.
// Each seed generates a small online workload and a schedule of transient
// port outages, runs all 8 schedulers through it under a rotating
// retransmission policy, and checks the failure-model invariants that must
// hold regardless of scheduler or fault pattern:
//
//   1. the run completes without error (no ErrStalled: outages always lift),
//   2. every coflow completes once its ports recover,
//   3. byte conservation: wire bytes = delivered bytes + wasted bytes,
//   4. a faulted run never beats the workload's bandwidth lower bound
//      (max port load / capacity — a theorem: faults only add load and
//      remove capacity), and never beats the fault-free run by more than a
//      small anomaly allowance. The allowance exists because the heuristic
//      schedulers are not makespan-optimal: voiding progress reorders their
//      schedules, and Graham-style anomalies let a worse-resourced run
//      finish a few percent earlier. Observed anomalies stay under 3%.
//   5. every failure outcome reports recovery.
//
// The harness runs both as a regular test (TestChaosInvariants) and via
// `ccfbench -exp chaos`, which prints the aggregate summary recorded in
// EXPERIMENTS.md.

import (
	"fmt"
	"math"
	"math/rand"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/parallel"
)

// ChaosConfig sizes the chaos sweep.
type ChaosConfig struct {
	Seeds     int     // fault schedules to generate (default 32)
	Nodes     int     // fabric ports (default 6)
	Coflows   int     // coflows per workload (default 5)
	Bandwidth float64 // bytes/sec (default 100: second-scale runs)
	// Workers bounds seed-level parallelism (1 = serial, 0 = GOMAXPROCS).
	// Seeds are independent and aggregated in seed order, so the result —
	// including the violation list and the float totals — is identical at
	// any worker count.
	Workers int
}

func (c *ChaosConfig) defaults() {
	if c.Seeds <= 0 {
		c.Seeds = 32
	}
	if c.Nodes < 2 {
		c.Nodes = 6
	}
	if c.Coflows <= 0 {
		c.Coflows = 5
	}
	if c.Bandwidth <= 0 {
		c.Bandwidth = 100
	}
}

// ChaosResult aggregates a sweep.
type ChaosResult struct {
	Runs          int
	Violations    []string // empty on a clean sweep
	TotalWasted   float64
	TotalRestarts int
	MaxSlowdown   float64 // worst faulted/clean makespan ratio observed
}

// chaosSchedulers returns fresh instances of all 8 coflow schedulers.
// Stateful schedulers (Aalo, deadline mode) must be rebuilt per run.
func chaosSchedulers() []struct {
	name string
	mk   func() coflow.Scheduler
} {
	return []struct {
		name string
		mk   func() coflow.Scheduler
	}{
		{"varys", coflow.NewVarys},
		{"fifo", coflow.NewFIFO},
		{"scf", coflow.NewSCF},
		{"ncf", coflow.NewNCF},
		{"aalo", func() coflow.Scheduler { return coflow.NewAalo() }},
		{"per-flow-fair", func() coflow.Scheduler { return coflow.PerFlowFair{} }},
		{"sequential-by-dest", func() coflow.Scheduler { return coflow.SequentialByDest{} }},
		{"varys-deadline", func() coflow.Scheduler { return coflow.NewVarysDeadline() }},
	}
}

// chaosWorkload builds the seed's random online coflow set.
func chaosWorkload(rng *rand.Rand, n, ncf int) []*coflow.Coflow {
	out := make([]*coflow.Coflow, ncf)
	for ci := 0; ci < ncf; ci++ {
		nf := 3 + rng.Intn(6)
		flows := make([]coflow.Flow, 0, nf)
		for f := 0; f < nf; f++ {
			src := rng.Intn(n)
			dst := rng.Intn(n - 1)
			if dst >= src {
				dst++
			}
			flows = append(flows, coflow.Flow{
				ID: f, Src: src, Dst: dst,
				Size: 1e3 + rng.Float64()*9e3,
			})
		}
		out[ci] = coflow.New(ci, "chaos", rng.Float64()*20, flows)
	}
	return out
}

// chaosFaults builds the seed's transient outage schedule. Up is always
// strictly after Down so every port recovers and completion is guaranteed.
func chaosFaults(rng *rand.Rand, n int) []netsim.PortFailure {
	nf := 1 + rng.Intn(3)
	out := make([]netsim.PortFailure, nf)
	for i := range out {
		down := rng.Float64() * 40
		out[i] = netsim.PortFailure{
			Port: rng.Intn(n),
			Down: down,
			Up:   down + 1 + rng.Float64()*14,
		}
	}
	return out
}

var chaosPolicies = []netsim.RetransmitPolicy{
	netsim.RetransmitRestart,
	netsim.RetransmitResume,
	netsim.RetransmitRestartDelivered,
}

// chaosSeedResult is one seed's contribution to the sweep, merged into the
// ChaosResult in seed order so the aggregate is worker-count independent.
type chaosSeedResult struct {
	runs        int
	violations  []string
	wasted      float64
	restarts    int
	maxSlowdown float64
}

// RunChaos executes the sweep and collects invariant violations. Seeds run
// through the worker pool (cfg.Workers); each seed derives its workload and
// fault schedule from its own rng, so seeds are fully independent, and the
// per-seed results are folded in seed order.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg.defaults()
	fabric, err := netsim.NewFabric(cfg.Nodes, cfg.Bandwidth)
	if err != nil {
		return nil, err
	}
	outs, err := parallel.Run(cfg.Workers, cfg.Seeds, func(seed int) (chaosSeedResult, error) {
		return runChaosSeed(cfg, fabric, seed), nil
	})
	if err != nil {
		return nil, err
	}
	res := &ChaosResult{}
	for _, out := range outs {
		res.Runs += out.runs
		res.Violations = append(res.Violations, out.violations...)
		res.TotalWasted += out.wasted
		res.TotalRestarts += out.restarts
		if out.maxSlowdown > res.MaxSlowdown {
			res.MaxSlowdown = out.maxSlowdown
		}
	}
	return res, nil
}

// runChaosSeed runs every scheduler through one seed's workload and fault
// schedule, collecting that seed's invariant violations.
func runChaosSeed(cfg ChaosConfig, fabric netsim.Fabric, seed int) chaosSeedResult {
	res := chaosSeedResult{}
	fail := func(format string, args ...any) {
		res.violations = append(res.violations, fmt.Sprintf(format, args...))
	}
	// anomalyTol is the slack invariant 4 grants to scheduling anomalies
	// when comparing against the fault-free run (see package comment).
	const anomalyTol = 0.05
	rng := rand.New(rand.NewSource(int64(seed)))
	base := chaosWorkload(rng, cfg.Nodes, cfg.Coflows)
	faults := chaosFaults(rng, cfg.Nodes)
	var totalSize float64
	for _, c := range base {
		c.Completed = false // fresh workload per seed
		totalSize += c.TotalBytes()
	}
	// Bandwidth lower bound of the workload: max port load / capacity.
	lb := 0.0
	eg := make([]float64, cfg.Nodes)
	in := make([]float64, cfg.Nodes)
	for _, c := range base {
		for _, f := range c.Flows {
			eg[f.Src] += f.Size
			in[f.Dst] += f.Size
		}
	}
	for p := 0; p < cfg.Nodes; p++ {
		if t := eg[p] / cfg.Bandwidth; t > lb {
			lb = t
		}
		if t := in[p] / cfg.Bandwidth; t > lb {
			lb = t
		}
	}
	for si, sc := range chaosSchedulers() {
		policy := chaosPolicies[(seed+si)%len(chaosPolicies)]
		tag := fmt.Sprintf("seed=%d sched=%s policy=%s", seed, sc.name, policy)

		clean, err := netsim.NewSimulator(fabric, sc.mk()).Run(cloneCoflows(base))
		if err != nil {
			fail("%s: fault-free run errored: %v", tag, err)
			continue
		}

		sim := netsim.NewSimulator(fabric, sc.mk())
		sim.Failures = faults
		sim.Retransmit = policy
		cfs := cloneCoflows(base)
		rep, err := sim.Run(cfs)
		res.runs++
		if err != nil {
			fail("%s: faulted run errored: %v", tag, err)
			continue
		}
		for _, c := range cfs {
			if !c.Completed {
				fail("%s: coflow %d never completed", tag, c.ID)
			}
		}
		// Byte conservation: wire traffic = delivered + wasted. The
		// tolerance absorbs the engine's sub-microbyte completion
		// epsilon across flows.
		if want := totalSize + rep.WastedBytes; math.Abs(rep.TotalBytes-want) > 1e-3*(1+want) {
			fail("%s: conservation broken: wire %g != delivered %g + wasted %g",
				tag, rep.TotalBytes, totalSize, rep.WastedBytes)
		}
		if rep.Makespan < lb-1e-9 {
			fail("%s: faulted makespan %g beats bandwidth lower bound %g", tag, rep.Makespan, lb)
		}
		if rep.Makespan < clean.Makespan*(1-anomalyTol) {
			fail("%s: faulted makespan %g beats fault-free %g beyond the %g anomaly allowance",
				tag, rep.Makespan, clean.Makespan, anomalyTol)
		}
		for _, out := range rep.Failures {
			if !out.Recovered {
				fail("%s: port %d failure at t=%g never recovered", tag, out.Port, out.Down)
			}
		}
		res.wasted += rep.WastedBytes
		for _, r := range rep.Restarts {
			res.restarts += r
		}
		if clean.Makespan > 0 {
			if ratio := rep.Makespan / clean.Makespan; ratio > res.maxSlowdown {
				res.maxSlowdown = ratio
			}
		}
	}
	return res
}
