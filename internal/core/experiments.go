package core

// Experiment definitions for the paper's evaluation. Each Fig* function
// regenerates one figure (both panels) and returns the data as stats tables
// plus the speedup bands the paper quotes in the text.

import (
	"fmt"
	"runtime"

	"ccf/internal/parallel"
	"ccf/internal/stats"
	"ccf/internal/workload"
)

// SweepOptions parameterise a figure sweep. Zero values take the paper's
// defaults; Scale shrinks the dataset for unit tests and CI-speed benches.
type SweepOptions struct {
	// Scale multiplies the tuple counts (1.0 = paper scale: 90 M + 900 M
	// tuples ≈ 1 TB). The figure *shapes* are scale-free: traffic and time
	// scale linearly, speedups are unchanged (a tested invariant).
	Scale float64
	// Bandwidth per port, bytes/sec (0 = CoflowSim default 128 MB/s).
	Bandwidth float64
	// JitterFrac perturbs chunk sizes (see workload.Config). The default is
	// 0 — exact Zipf proportions — because the paper's uniform (zipf = 0)
	// data still funnels Mini into node 0, which requires the per-partition
	// argmax to stay on the first node; random jitter would break that tie
	// structure. The robustness tests sweep nonzero jitter explicitly.
	JitterFrac float64
	// Seed for the jitter.
	Seed uint64
	// PartitionMultiplier overrides p = 15n when nonzero.
	PartitionMultiplier int
	// ShuffleRanks breaks zipf rank alignment (ablation abl-rank).
	ShuffleRanks bool
	// UseEventSim switches CCT measurement to the flow-level simulator.
	UseEventSim bool
	// Workers bounds the sweep's x-point parallelism: 1 forces the serial
	// path, 0 keeps the library default min(GOMAXPROCS, 4) — each point holds
	// an n×p matrix, ≈120 MB at the paper's 1000-node shape, so "all cores"
	// is not a safe default for memory. Results are identical at any value
	// (points are independent and aggregated in axis order).
	Workers int
}

func (o SweepOptions) withDefaults() SweepOptions {
	if o.Scale == 0 {
		o.Scale = 1
	}
	return o
}

func (o SweepOptions) workloadConfig(n int, zipf, skewFrac float64) workload.Config {
	cfg := workload.Config{
		Nodes:          n,
		Zipf:           zipf,
		Skew:           skewFrac,
		CustomerTuples: int64(o.Scale * workload.DefaultCustomerTuples),
		OrderTuples:    int64(o.Scale * workload.DefaultOrderTuples),
		ShuffleRanks:   o.ShuffleRanks,
		Seed:           o.Seed,
		JitterFrac:     o.JitterFrac,
	}
	if o.PartitionMultiplier > 0 {
		cfg.Partitions = o.PartitionMultiplier * n
	}
	return cfg
}

// FigureResult carries both panels of one figure plus derived speedups.
type FigureResult struct {
	Traffic *stats.Table // panel (a): network traffic, GB
	Time    *stats.Table // panel (b): communication time, seconds
	// SpeedupOverHash / SpeedupOverMini are CCF's pointwise speedups, the
	// numbers the paper quotes in the running text.
	SpeedupOverHash []float64
	SpeedupOverMini []float64
}

// sweep runs the three approaches over a list of x points, where point i is
// described by (nodes, zipf, skew) from the pointCfg callback.
func sweep(title, xlabel string, xs []float64, pointCfg func(x float64) workload.Config, opts SweepOptions) (*FigureResult, error) {
	traffic := &stats.Table{Title: title + " (a)", XLabel: xlabel, YLabel: "network traffic (GB)", X: xs}
	times := &stats.Table{Title: title + " (b)", XLabel: xlabel, YLabel: "communication time (s)", X: xs}
	approaches := []Approach{ApproachHash, ApproachMini, ApproachCCF}
	trafficVals := map[Approach][]float64{}
	timeVals := map[Approach][]float64{}
	runOpts := Options{Bandwidth: opts.Bandwidth, UseEventSim: opts.UseEventSim}

	// X points are independent experiments; run them through the worker pool
	// and collect results in axis order (parallel.Run aggregates by input
	// index, so the series fold below performs the same appends the serial
	// loop did). The default worker bound stays small — each point holds an
	// n×p matrix, ≈120 MB at the paper's 1000-node shape.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
	}
	outs, err := parallel.Run(workers, len(xs), func(i int) (map[Approach]*Result, error) {
		x := xs[i]
		wl, err := workload.Generate(pointCfg(x))
		if err != nil {
			return nil, fmt.Errorf("core: %s at %s=%g: %w", title, xlabel, x, err)
		}
		results, err := RunAll(wl, runOpts)
		if err != nil {
			return nil, fmt.Errorf("core: %s at %s=%g: %w", title, xlabel, x, err)
		}
		return results, nil
	})
	if err != nil {
		return nil, err
	}

	for _, results := range outs {
		for _, a := range approaches {
			trafficVals[a] = append(trafficVals[a], results[a].TrafficGB())
			timeVals[a] = append(timeVals[a], results[a].TimeSec)
		}
	}
	for _, a := range approaches {
		if err := traffic.AddSeries(string(a), trafficVals[a]); err != nil {
			return nil, err
		}
		if err := times.AddSeries(string(a), timeVals[a]); err != nil {
			return nil, err
		}
	}

	fr := &FigureResult{Traffic: traffic, Time: times}
	if fr.SpeedupOverHash, err = stats.Speedups(
		stats.Series{Label: "Hash", Values: timeVals[ApproachHash]},
		stats.Series{Label: "CCF", Values: timeVals[ApproachCCF]}); err != nil {
		return nil, err
	}
	if fr.SpeedupOverMini, err = stats.Speedups(
		stats.Series{Label: "Mini", Values: timeVals[ApproachMini]},
		stats.Series{Label: "CCF", Values: timeVals[ApproachCCF]}); err != nil {
		return nil, err
	}
	return fr, nil
}

// DefaultFig5Nodes is the x axis of Figure 5: 100..1000 nodes.
func DefaultFig5Nodes() []int {
	var out []int
	for n := 100; n <= 1000; n += 100 {
		out = append(out, n)
	}
	return out
}

// Fig5 regenerates Figure 5: Hash/Mini/CCF traffic and communication time
// versus the number of nodes (zipf = 0.8, skew = 20%).
func Fig5(nodes []int, opts SweepOptions) (*FigureResult, error) {
	opts = opts.withDefaults()
	if len(nodes) == 0 {
		nodes = DefaultFig5Nodes()
	}
	xs := make([]float64, len(nodes))
	for i, n := range nodes {
		xs[i] = float64(n)
	}
	return sweep("Figure 5", "nodes", xs, func(x float64) workload.Config {
		return opts.workloadConfig(int(x), workload.DefaultZipf, workload.DefaultSkew)
	}, opts)
}

// DefaultFig6Zipfs is the x axis of Figure 6: zipf factor 0..1.
func DefaultFig6Zipfs() []float64 { return []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} }

// Fig6 regenerates Figure 6: the three approaches versus the Zipf factor
// (500 nodes, skew = 20%).
func Fig6(zipfs []float64, nodes int, opts SweepOptions) (*FigureResult, error) {
	opts = opts.withDefaults()
	if len(zipfs) == 0 {
		zipfs = DefaultFig6Zipfs()
	}
	if nodes == 0 {
		nodes = 500
	}
	return sweep("Figure 6", "zipf", zipfs, func(x float64) workload.Config {
		return opts.workloadConfig(nodes, x, workload.DefaultSkew)
	}, opts)
}

// DefaultFig7Skews is the x axis of Figure 7: skew 0..50%.
func DefaultFig7Skews() []float64 { return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} }

// Fig7 regenerates Figure 7: the three approaches versus data skewness
// (500 nodes, zipf = 0.8).
func Fig7(skews []float64, nodes int, opts SweepOptions) (*FigureResult, error) {
	opts = opts.withDefaults()
	if len(skews) == 0 {
		skews = DefaultFig7Skews()
	}
	if nodes == 0 {
		nodes = 500
	}
	return sweep("Figure 7", "skew", skews, func(x float64) workload.Config {
		return opts.workloadConfig(nodes, workload.DefaultZipf, x)
	}, opts)
}
