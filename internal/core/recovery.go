package core

// Recovery from permanent node loss — the failure-aware half of the
// co-optimization loop. When a node dies mid-redistribution, everything it
// received is gone (un-replicated shuffle output), everything it still held
// is lost, and every partition destined to it must be re-placed across the
// survivors. The recovery policy decides how:
//
//   - RecoverReplace re-runs CCF over the residual chunk matrix, restricted
//     to surviving nodes and seeded with the survivors' remaining backlog
//     as initial loads — placement and network state co-optimized, exactly
//     the paper's Algorithm 1 applied to the degraded cluster.
//   - RecoverRetryInPlace is the naive baseline: each orphaned partition is
//     reassigned hash-style over the survivors, oblivious to both chunk
//     locality and the backlog the failure left behind.
//
// The comparison (EXPERIMENTS.md "Recovery") shows the co-optimized
// re-placement finishing the post-failure work strictly faster.

import (
	"fmt"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/partition"
	"ccf/internal/placement"
	"ccf/internal/workload"
)

// RecoveryPolicy selects how orphaned partitions are re-placed after a
// permanent node loss.
type RecoveryPolicy string

const (
	// RecoverReplace co-optimizes: CCF over the residual matrix restricted
	// to survivors, with the survivors' backlog as initial loads.
	RecoverReplace RecoveryPolicy = "replace"
	// RecoverRetryInPlace reassigns orphaned partitions hash-style over
	// the survivors, ignoring chunk locality and backlog.
	RecoverRetryInPlace RecoveryPolicy = "retry-in-place"
)

// NodeLossSpec schedules one permanent node loss.
type NodeLossSpec struct {
	FailNode int
	FailTime float64
}

// NodeLossReport summarises a run through failure and recovery.
type NodeLossReport struct {
	Policy   RecoveryPolicy
	FailNode int
	FailTime float64
	// CleanMakespan is the fault-free makespan of the same workload and
	// placement — the lower bound any recovery must exceed.
	CleanMakespan float64
	// WastedBytes were delivered into the failed node before it died and
	// must be re-sent elsewhere.
	WastedBytes float64
	// LostBytes are stranded on the failed node: chunks it held that were
	// never (or only partially) shipped out, including chunks of its own
	// partitions. They cannot be recovered by re-placement.
	LostBytes float64
	// ReplacedPartitions/ReplacedBytes measure the re-placement work: the
	// orphaned partitions and the surviving chunk bytes re-sent for them.
	ReplacedPartitions int
	ReplacedBytes      int64
	// PostMakespan is the time from the failure until the surviving
	// transfer (continuation + repair traffic) completes; TotalMakespan =
	// FailTime + PostMakespan.
	PostMakespan  float64
	TotalMakespan float64
}

// RunWithNodeLoss executes the redistribution of w under the given
// application-level scheduler, kills FailNode at FailTime, re-places the
// orphaned partitions per the recovery policy, and simulates the rest. The
// recovery path models un-replicated storage: skew pre-processing is not
// applied (pass the plain chunk matrix workloads the recovery experiments
// use).
func RunWithNodeLoss(w *workload.Workload, sched placement.Scheduler, spec NodeLossSpec, policy RecoveryPolicy, opts Options) (*NodeLossReport, error) {
	matrix := w.Chunks
	n := matrix.N
	if spec.FailNode < 0 || spec.FailNode >= n {
		return nil, fmt.Errorf("core: fail node %d outside cluster of %d", spec.FailNode, n)
	}
	if spec.FailTime <= 0 {
		return nil, fmt.Errorf("core: fail time must be positive, got %g", spec.FailTime)
	}
	switch policy {
	case RecoverReplace, RecoverRetryInPlace:
	default:
		return nil, fmt.Errorf("core: unknown recovery policy %q", policy)
	}
	dead := spec.FailNode

	pl, err := sched.Place(matrix, nil)
	if err != nil {
		return nil, err
	}
	vol, err := partition.FlowVolumes(matrix, pl)
	if err != nil {
		return nil, err
	}
	primary, err := coflow.FromVolumes(0, "primary", 0, n, vol)
	if err != nil {
		return nil, err
	}
	fabric, err := netsim.NewFabric(n, opts.bandwidth())
	if err != nil {
		return nil, err
	}

	rpt := &NodeLossReport{Policy: policy, FailNode: dead, FailTime: spec.FailTime}

	// Fault-free reference run (on a clone: simulation mutates flow state).
	cleanRep, err := netsim.NewSimulator(fabric, coflow.NewVarys()).Run(cloneCoflows([]*coflow.Coflow{primary}))
	if err != nil {
		return nil, err
	}
	rpt.CleanMakespan = cleanRep.Makespan

	// Phase 1: run the primary transfer up to the failure instant and read
	// the in-flight state off the flows.
	sim := netsim.NewSimulator(fabric, coflow.NewVarys())
	sim.Horizon = spec.FailTime
	phase1 := cloneCoflows([]*coflow.Coflow{primary})
	if _, err := sim.Run(phase1); err != nil {
		return nil, err
	}

	// Classify the in-flight state: deliveries into the dead node are
	// wasted, bytes still on the dead node are lost, survivor↔survivor
	// remainders continue in phase 2.
	contVol := make([]int64, n*n)
	for _, f := range phase1[0].Flows {
		moved := f.Size - f.Remaining
		switch {
		case f.Dst == dead:
			rpt.WastedBytes += moved
		case f.Src == dead:
			rpt.LostBytes += f.Remaining
		case !f.Done:
			contVol[f.Src*n+f.Dst] += int64(f.Remaining + 0.5)
		}
	}
	// Chunks the dead node held for its own partitions never crossed the
	// network but are just as lost.
	for k := 0; k < matrix.P; k++ {
		if pl.Dest[k] == dead {
			rpt.LostBytes += float64(matrix.At(dead, k))
		}
	}

	// Residual matrix: the surviving chunks of every orphaned partition.
	residual, err := partition.NewChunkMatrix(n, matrix.P)
	if err != nil {
		return nil, err
	}
	for k := 0; k < matrix.P; k++ {
		if pl.Dest[k] != dead {
			continue
		}
		rpt.ReplacedPartitions++
		for i := 0; i < n; i++ {
			if i == dead {
				continue
			}
			v := matrix.At(i, k)
			residual.Set(i, k, v)
			rpt.ReplacedBytes += v
		}
	}

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = i != dead
	}
	var newPl *partition.Placement
	switch policy {
	case RecoverReplace:
		// The survivors' unfinished transfer is network state the
		// re-placement must work around — feed it to CCF as initial loads.
		backlog := &partition.Loads{Egress: make([]int64, n), Ingress: make([]int64, n)}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := contVol[i*n+j]
				backlog.Egress[i] += v
				backlog.Ingress[j] += v
			}
		}
		r := placement.Restricted{Inner: placement.CCF{}, Allowed: alive}
		newPl, err = r.Place(residual, backlog)
		if err != nil {
			return nil, err
		}
	case RecoverRetryInPlace:
		survivors := make([]int, 0, n-1)
		for i := 0; i < n; i++ {
			if i != dead {
				survivors = append(survivors, i)
			}
		}
		newPl = partition.NewPlacement(matrix.P)
		for k := 0; k < matrix.P; k++ {
			newPl.Dest[k] = survivors[k%len(survivors)]
		}
	}

	// Phase 2: survivor continuation plus repair traffic, from t=FailTime.
	repairVol := make([]int64, n*n)
	for k := 0; k < matrix.P; k++ {
		if pl.Dest[k] != dead {
			continue
		}
		d := newPl.Dest[k]
		for i := 0; i < n; i++ {
			if i == dead || i == d {
				continue
			}
			repairVol[i*n+d] += matrix.At(i, k)
		}
	}
	var phase2 []*coflow.Coflow
	if cont, err := coflow.FromVolumes(0, "continue", 0, n, contVol); err != nil {
		return nil, err
	} else if len(cont.Flows) > 0 {
		phase2 = append(phase2, cont)
	}
	if repair, err := coflow.FromVolumes(1, "repair", 0, n, repairVol); err != nil {
		return nil, err
	} else if len(repair.Flows) > 0 {
		phase2 = append(phase2, repair)
	}
	if len(phase2) > 0 {
		rep2, err := netsim.NewSimulator(fabric, coflow.NewVarys()).Run(phase2)
		if err != nil {
			return nil, err
		}
		rpt.PostMakespan = rep2.Makespan
	}
	rpt.TotalMakespan = spec.FailTime + rpt.PostMakespan
	return rpt, nil
}
