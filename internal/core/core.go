// Package core is the paper's primary contribution: the Coflow-based
// Co-optimization Framework (CCF). It wires the substrates together along
// the architecture of the paper's Figure 3 — an operator's data and network
// information enter the schedule/control layer, the application-level
// scheduler and the coflow scheduler co-optimize, and the resulting plan is
// executed (here: simulated) by the data-processing layer.
//
// The package also encodes the paper's entire evaluation (Figures 5-7 and
// the Figure 1/2 motivating example) as reproducible experiment functions.
package core

import (
	"fmt"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/partition"
	"ccf/internal/placement"
	"ccf/internal/skew"
	"ccf/internal/workload"
)

// Approach names the three schemes of the evaluation (§IV.A).
type Approach string

const (
	// ApproachHash is the baseline hash-based join: network-level
	// optimization only (coflow scheduling over fixed hash placement).
	ApproachHash Approach = "Hash"
	// ApproachMini minimizes network traffic (track-join-style placement
	// plus skew handling), then coflow-schedules the result: application-
	// and network-level optimization, decoupled.
	ApproachMini Approach = "Mini"
	// ApproachCCF co-optimizes placement and coflow schedule (Algorithm 1
	// plus skew handling).
	ApproachCCF Approach = "CCF"
)

// Options configure a pipeline run.
type Options struct {
	// Bandwidth is the per-port bandwidth in bytes/sec; 0 uses the
	// CoflowSim default of 128 MB/s.
	Bandwidth float64
	// UseEventSim runs the flow-level event simulator instead of the
	// closed-form bandwidth model. The two agree for a single coflow under
	// MADD (a tested invariant); the closed form avoids materialising the
	// O(n²) flows of thousand-node runs.
	UseEventSim bool
	// Probe, when non-nil, observes the event-simulator run (telemetry).
	// Only meaningful with UseEventSim; the closed form has no event loop
	// to observe. Nil keeps the simulator on its zero-overhead path.
	Probe netsim.Probe
}

func (o Options) bandwidth() float64 {
	if o.Bandwidth > 0 {
		return o.Bandwidth
	}
	return netsim.DefaultPortBandwidth
}

// Result reports one (workload, approach) execution.
type Result struct {
	Approach        string
	TrafficBytes    int64   // bytes crossing the network, broadcasts included
	BottleneckBytes int64   // T = max port load
	TimeSec         float64 // network communication time (CCT)
	SkewHandled     bool
	Placement       *partition.Placement
}

// TrafficGB returns traffic in the paper's unit (decimal gigabytes).
func (r *Result) TrafficGB() float64 { return float64(r.TrafficBytes) / 1e9 }

// SchedulerFor returns the placement scheduler and skew-handling policy of
// an approach, per §IV.A: Hash is skew-oblivious; Mini and CCF integrate
// partial duplication.
func SchedulerFor(a Approach) (placement.Scheduler, bool, error) {
	switch a {
	case ApproachHash:
		return placement.Hash{}, false, nil
	case ApproachMini:
		return placement.Mini{}, true, nil
	case ApproachCCF:
		return placement.CCF{}, true, nil
	default:
		return nil, false, fmt.Errorf("core: unknown approach %q", a)
	}
}

// Run executes the CCF pipeline for one approach on one workload.
func Run(w *workload.Workload, a Approach, opts Options) (*Result, error) {
	sched, handleSkew, err := SchedulerFor(a)
	if err != nil {
		return nil, err
	}
	return RunScheduler(w, sched, handleSkew, opts)
}

// RunScheduler is the general pipeline: optional skew pre-processing, then
// application-level placement, then network-level (coflow) execution.
func RunScheduler(w *workload.Workload, sched placement.Scheduler, handleSkew bool, opts Options) (*Result, error) {
	matrix := w.Chunks
	var initial *partition.Loads
	var plan *skew.Plan
	if handleSkew && w.SkewPartition >= 0 {
		plan = skew.PartialDuplication(w)
		if err := plan.Validate(w.Chunks); err != nil {
			return nil, err
		}
		matrix = plan.Adjusted
		initial = plan.Initial
	}

	eval, err := placement.Evaluate(sched, matrix, initial)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Approach:        sched.Name(),
		TrafficBytes:    eval.TrafficBytes,
		BottleneckBytes: eval.BottleneckBytes,
		SkewHandled:     plan != nil,
		Placement:       eval.Placement,
	}

	if opts.UseEventSim {
		vol, err := partition.FlowVolumes(matrix, eval.Placement)
		if err != nil {
			return nil, err
		}
		if plan != nil {
			for i, b := range plan.BroadcastVolumes {
				vol[i] += b
			}
		}
		cf, err := coflow.FromVolumes(0, string(res.Approach), 0, matrix.N, vol)
		if err != nil {
			return nil, err
		}
		fabric, err := netsim.NewFabric(matrix.N, opts.bandwidth())
		if err != nil {
			return nil, err
		}
		if len(cf.Flows) == 0 {
			res.TimeSec = 0
			return res, nil
		}
		sim := netsim.NewSimulator(fabric, coflow.NewVarys())
		sim.Probe = opts.Probe
		rep, err := sim.Run([]*coflow.Coflow{cf})
		if err != nil {
			return nil, err
		}
		res.TimeSec = rep.MaxCCT
		return res, nil
	}

	res.TimeSec = netsim.BandwidthModelCCT(eval.Loads.Egress, eval.Loads.Ingress, opts.bandwidth())
	return res, nil
}

// RunAll executes Hash, Mini and CCF on the same workload — one x-point of
// a figure.
func RunAll(w *workload.Workload, opts Options) (map[Approach]*Result, error) {
	out := make(map[Approach]*Result, 3)
	for _, a := range []Approach{ApproachHash, ApproachMini, ApproachCCF} {
		r, err := Run(w, a, opts)
		if err != nil {
			return nil, fmt.Errorf("core: approach %s: %w", a, err)
		}
		out[a] = r
	}
	return out, nil
}
