package core

// BenchmarkOnlineArrivals contrasts the two online implementations as the
// job stream grows: the probe-per-arrival reference re-simulates history for
// every arrival (O(J²) simulator work), the session engine advances one live
// simulation (O(J)). The session path should scale ~linearly in J and beat
// the probe path by well over the 5× acceptance bar at J=256.

import (
	"fmt"
	"testing"

	"ccf/internal/workload"
)

// benchOnlineJobs builds a deterministic stream of J small jobs with
// staggered arrivals; sizes are kept modest so the probe path at J=256
// finishes in benchmark time while the J² blowup still dominates.
func benchOnlineJobs(b testing.TB, n, j int) []OnlineJob {
	b.Helper()
	zipfs := []float64{0, 0.5, 1.0, 1.5}
	jobs := make([]OnlineJob, 0, j)
	for k := 0; k < j; k++ {
		w, err := workload.Generate(workload.Config{
			Nodes: n, CustomerTuples: 200, OrderTuples: 2_000,
			PayloadBytes: 1000, Zipf: zipfs[k%len(zipfs)], Seed: uint64(k),
			JitterFrac: 0.05,
		})
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, OnlineJob{
			Name:     fmt.Sprintf("job%d", k),
			Arrival:  0.02 * float64(k),
			Workload: w,
		})
	}
	return jobs
}

func BenchmarkOnlineArrivals(b *testing.B) {
	const n = 8
	for _, j := range []int{16, 64, 256} {
		jobs := benchOnlineJobs(b, n, j)
		opts := OnlineOptions{CoOptimize: true}
		b.Run(fmt.Sprintf("probe/J=%d", j), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunOnlineReference(jobs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("session/J=%d", j), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunOnline(jobs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
