package core

// Batched admission equivalence: OnlineEngine.AdmitBatch / Batch.Submit
// must be byte-identical to sequential Submit — same decisions (placements,
// backlog snapshots, completed counts), same state digest after every
// batch, same final report — across seeds × batch sizes {1, 2, 7, 64},
// with failure edges straddling batch boundaries and zero-remote-byte jobs
// retiring mid-batch (the two places a shared backlog snapshot could
// plausibly diverge from per-job probing).

import (
	"fmt"
	"reflect"
	"testing"

	"ccf/internal/netsim"
	"ccf/internal/partition"
	"ccf/internal/placement"
	"ccf/internal/workload"
)

// batchEquivJobs builds one seeded stream with arrival ties (batch groups
// share a lifted clock), mixed placers, a PlacementOnly job, and a
// zero-remote-bytes job whose coflow retires on the very next advance.
func batchEquivJobs(t testing.TB, n int, seed int64) []OnlineJob {
	t.Helper()
	local := &workload.Workload{
		Config:        workload.Config{Nodes: n},
		Chunks:        partition.MustChunkMatrix(n, 1),
		SkewPartition: -1,
	}
	local.Chunks.H[0] = 1 << 20 // partition 0 lives entirely on node 0

	zipfs := []float64{0, 0.5, 1.0, 1.5}
	var jobs []OnlineJob
	arrival := 0.0
	for k := 0; k < 14; k++ {
		if k%4 == 3 {
			arrival += 0.01 * float64(seed%5+1) // ties inside groups of 3
		}
		job := OnlineJob{
			Name:     fmt.Sprintf("job%d", k),
			Arrival:  arrival,
			Workload: equivWorkload(t, n, zipfs[k%len(zipfs)], uint64(seed)*31+uint64(k)),
		}
		switch k % 3 {
		case 1:
			job.Scheduler = placement.Mini{}
		case 2:
			job.Scheduler = placement.Hash{}
		}
		if k == 6 {
			job.PlacementOnly = true
		}
		if k == 9 {
			// Hash pins partition 0 to node 0 where all its bytes live: a
			// coflow with no remote bytes, retired by the next advance.
			job.Workload = local
			job.Scheduler = placement.Hash{}
			job.PlacementOnly = false
		}
		jobs = append(jobs, job)
	}
	return jobs
}

func TestOnlineAdmitBatchMatchesSequential(t *testing.T) {
	const n = 4
	batchSizes := []int{1, 2, 7, 64}
	failureModes := []struct {
		name     string
		failures []netsim.PortFailure
	}{
		{"fault-free", nil},
		// Down/up edges land mid-stream so batches straddle them.
		{"port-failure", []netsim.PortFailure{{Port: 1, Down: 0.005, Up: 0.02}}},
	}
	for _, fm := range failureModes {
		fm := fm
		t.Run(fm.name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				opts := OnlineOptions{CoOptimize: true, Failures: fm.failures}
				jobs := batchEquivJobs(t, n, seed)

				// Sequential reference: per-job decisions and digests.
				ref, err := NewOnlineEngine(n, opts)
				if err != nil {
					t.Fatal(err)
				}
				refDecs := make([]*OnlineDecision, len(jobs))
				refDigests := make([]uint64, len(jobs))
				for i, job := range jobs {
					refDecs[i], err = ref.Submit(job)
					if err != nil {
						t.Fatalf("seed %d: sequential job %d: %v", seed, i, err)
					}
					refDigests[i] = ref.StateDigest()
				}
				refRep, err := ref.Finish()
				if err != nil {
					t.Fatal(err)
				}

				for _, bs := range batchSizes {
					eng, err := NewOnlineEngine(n, opts)
					if err != nil {
						t.Fatal(err)
					}
					for lo := 0; lo < len(jobs); lo += bs {
						hi := lo + bs
						if hi > len(jobs) {
							hi = len(jobs)
						}
						for i, res := range eng.AdmitBatch(jobs[lo:hi]) {
							ji := lo + i
							if res.Err != nil {
								t.Fatalf("seed %d batch %d: job %d: %v", seed, bs, ji, res.Err)
							}
							if !reflect.DeepEqual(res.Decision, refDecs[ji]) {
								t.Fatalf("seed %d batch %d: job %d decision diverged:\nbatch %+v\nseq   %+v",
									seed, bs, ji, res.Decision, refDecs[ji])
							}
						}
						if got, want := eng.StateDigest(), refDigests[hi-1]; got != want {
							t.Fatalf("seed %d batch %d: digest after jobs [%d,%d): %016x, sequential %016x",
								seed, bs, lo, hi, got, want)
						}
					}
					rep, err := eng.Finish()
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(rep, refRep) {
						t.Fatalf("seed %d batch %d: final report diverged:\nbatch %+v\nseq   %+v", seed, bs, rep, refRep)
					}
				}
			}
		})
	}
}

// TestOnlineBatchErrorMidBatch pins per-job failure isolation: a bad job in
// the middle of a batch reports its error in its slot while the jobs around
// it decide exactly as a sequential stream without the bad job would not —
// the engine clock still advanced for the rejected arrival, matching the
// sequential Submit contract.
func TestOnlineBatchErrorMidBatch(t *testing.T) {
	const n = 4
	jobs := batchEquivJobs(t, n, 1)[:6]
	bad := OnlineJob{Name: "bad", Arrival: jobs[3].Arrival, Workload: nil}
	stream := append(append(append([]OnlineJob{}, jobs[:3]...), bad), jobs[3:]...)

	ref, err := NewOnlineEngine(n, OnlineOptions{CoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	refDecs := make([]*OnlineDecision, len(stream))
	for i, job := range stream {
		dec, err := ref.Submit(job)
		if (err != nil) != (i == 3) {
			t.Fatalf("sequential job %d: err=%v", i, err)
		}
		refDecs[i] = dec
	}

	eng, err := NewOnlineEngine(n, OnlineOptions{CoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range eng.AdmitBatch(stream) {
		if (res.Err != nil) != (i == 3) {
			t.Fatalf("batched job %d: err=%v", i, res.Err)
		}
		if !reflect.DeepEqual(res.Decision, refDecs[i]) {
			t.Fatalf("job %d decision diverged:\nbatch %+v\nseq   %+v", i, res.Decision, refDecs[i])
		}
	}
	if got, want := eng.StateDigest(), ref.StateDigest(); got != want {
		t.Fatalf("digest diverged: %016x vs %016x", got, want)
	}
}
