package core

// The motivating example of the paper's Figures 1 and 2, reconstructed
// exactly: a three-node system holding eight chunks of four join keys,
//
//	Node 0: 1³ 2¹ 0³      Node 1: 1⁶ 2² 5¹      Node 2: 5² 0¹
//
// (kᶠ = f tuples with key k). Hashing keys mod 3 yields schedule plan SP0
// with traffic 8 = 3+1+2+1+1; the traffic-optimal SP2 moves 6 tuples but has
// an optimal-coflow CCT of 4 time units; the traffic-suboptimal SP1 moves 7
// tuples yet completes in 3 — the gap CCF exploits. The paper's "worst
// schedule" for SP2 (Figure 2(a), nodes flushing one destination at a time)
// takes 6 units. All five numbers are reproduced by MotivatingExample and
// locked in by tests.

import (
	"fmt"

	"ccf/internal/coflow"
	"ccf/internal/milp"
	"ccf/internal/netsim"
	"ccf/internal/partition"
	"ccf/internal/placement"
)

// MotivatingKeys are the join keys of the example, in partition order.
// Key k maps to partition index k's position in this slice.
var MotivatingKeys = []int64{0, 1, 2, 5}

// MotivatingMatrix builds the 3×4 chunk matrix of Figure 1 with one byte
// per tuple (the paper counts cost in tuples; any uniform payload scales
// identically).
func MotivatingMatrix() *partition.ChunkMatrix {
	m := partition.MustChunkMatrix(3, 4)
	// partitions: 0 → key 0, 1 → key 1, 2 → key 2, 3 → key 5
	m.Set(0, 0, 3) // 0³ on node 0
	m.Set(2, 0, 1) // 0¹ on node 2
	m.Set(0, 1, 3) // 1³ on node 0
	m.Set(1, 1, 6) // 1⁶ on node 1
	m.Set(0, 2, 1) // 2¹ on node 0
	m.Set(1, 2, 2) // 2² on node 1
	m.Set(1, 3, 1) // 5¹ on node 1
	m.Set(2, 3, 2) // 5² on node 2
	return m
}

// MotivatingPlan names one schedule plan of the example.
type MotivatingPlan struct {
	Name      string
	Placement *partition.Placement
	// Traffic is the tuples moved to remote nodes (Figure 1's cost).
	Traffic int64
	// OptimalCCT is the coflow completion time in time units under optimal
	// (MADD) coflow scheduling with unit port capacity (Figure 2(b)/(c)).
	OptimalCCT float64
	// WorstCCT is the CCT under the uncoordinated destination-at-a-time
	// schedule of Figure 2(a).
	WorstCCT float64
}

// MotivatingResult bundles the full reconstruction.
type MotivatingResult struct {
	Matrix *partition.ChunkMatrix
	SP0    MotivatingPlan // hash-based
	SP1    MotivatingPlan // traffic-suboptimal, CCT-optimal
	SP2    MotivatingPlan // traffic-optimal
	// CCF is the plan Algorithm 1 produces (it recovers SP1).
	CCF MotivatingPlan
	// OptimalT is the certified minimum bottleneck (from branch & bound).
	OptimalT int64
}

// motivatingPlacements returns the paper's three plans over partition order
// (key 0, key 1, key 2, key 5).
func motivatingPlacements() (sp0, sp1, sp2 *partition.Placement) {
	// SP0 hash: key mod 3 → node.
	sp0 = &partition.Placement{Dest: []int{0, 1, 2, 2}}
	// SP1: key0→n0, key1→n1, key2→n0, key5→n2 (traffic 7, CCT 3).
	sp1 = &partition.Placement{Dest: []int{0, 1, 0, 2}}
	// SP2: key0→n0, key1→n1, key2→n1, key5→n2 (traffic 6, CCT 4).
	sp2 = &partition.Placement{Dest: []int{0, 1, 1, 2}}
	return sp0, sp1, sp2
}

// evalMotivatingPlan computes traffic and both CCTs of a plan over the
// example matrix with unit ("one tuple per time unit") port capacity.
func evalMotivatingPlan(name string, m *partition.ChunkMatrix, pl *partition.Placement) (MotivatingPlan, error) {
	loads, err := partition.ComputeLoads(m, pl, nil)
	if err != nil {
		return MotivatingPlan{}, fmt.Errorf("core: motivating plan %s: %w", name, err)
	}
	vol, err := partition.FlowVolumes(m, pl)
	if err != nil {
		return MotivatingPlan{}, err
	}
	fabric, err := netsim.NewFabric(m.N, 1) // 1 tuple per time unit
	if err != nil {
		return MotivatingPlan{}, err
	}
	run := func(s coflow.Scheduler) (float64, error) {
		cf, err := coflow.FromVolumes(0, name, 0, m.N, vol)
		if err != nil {
			return 0, err
		}
		if len(cf.Flows) == 0 {
			return 0, nil
		}
		rep, err := netsim.NewSimulator(fabric, s).Run([]*coflow.Coflow{cf})
		if err != nil {
			return 0, err
		}
		return rep.MaxCCT, nil
	}
	opt, err := run(coflow.NewVarys())
	if err != nil {
		return MotivatingPlan{}, err
	}
	worst, err := run(coflow.SequentialByDest{})
	if err != nil {
		return MotivatingPlan{}, err
	}
	return MotivatingPlan{
		Name:       name,
		Placement:  pl,
		Traffic:    loads.Traffic(),
		OptimalCCT: opt,
		WorstCCT:   worst,
	}, nil
}

// MotivatingExample reconstructs Figures 1 and 2 and runs both the CCF
// heuristic and the exact solver on the instance.
func MotivatingExample() (*MotivatingResult, error) {
	m := MotivatingMatrix()
	sp0, sp1, sp2 := motivatingPlacements()
	res := &MotivatingResult{Matrix: m}
	var err error
	if res.SP0, err = evalMotivatingPlan("SP0", m, sp0); err != nil {
		return nil, err
	}
	if res.SP1, err = evalMotivatingPlan("SP1", m, sp1); err != nil {
		return nil, err
	}
	if res.SP2, err = evalMotivatingPlan("SP2", m, sp2); err != nil {
		return nil, err
	}
	ccfPl, err := placement.CCF{}.Place(m, nil)
	if err != nil {
		return nil, err
	}
	if res.CCF, err = evalMotivatingPlan("CCF", m, ccfPl); err != nil {
		return nil, err
	}
	exact, err := milp.Solve(m, nil, milp.Options{})
	if err != nil {
		return nil, err
	}
	if !exact.Optimal {
		return nil, fmt.Errorf("core: exact solver did not certify the 3×4 motivating instance")
	}
	res.OptimalT = exact.T
	return res, nil
}
