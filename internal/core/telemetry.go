package core

// The telemetry experiment: run one seeded online coflow workload under
// every coflow scheduler with a telemetry.Recorder attached and reduce each
// run to the utilization/stretch row `ccfbench -exp telemetry` prints. The
// same lens the experimental coflow-scheduling literature uses to explain
// scheduler behavior — per-port utilization and per-coflow timelines —
// applied to our 8 schedulers on identical input.

import (
	"fmt"
	"math/rand"

	"ccf/internal/netsim"
	"ccf/internal/parallel"
	"ccf/internal/telemetry"
)

// TelemetryConfig sizes the telemetry comparison experiment.
type TelemetryConfig struct {
	Seed      int64
	Nodes     int     // fabric ports (default 12)
	Coflows   int     // coflows in the online workload (default 16)
	Bandwidth float64 // bytes/sec (default 100: second-scale runs)
	// Workers bounds scheduler-level parallelism (1 = serial, 0 =
	// GOMAXPROCS). Rows come back in the fixed scheduler order either way.
	Workers int
}

func (c *TelemetryConfig) defaults() {
	if c.Nodes < 2 {
		c.Nodes = 12
	}
	if c.Coflows <= 0 {
		c.Coflows = 16
	}
	if c.Bandwidth <= 0 {
		c.Bandwidth = 100
	}
}

// TelemetryRow is one scheduler's reduction.
type TelemetryRow struct {
	Scheduler string
	Makespan  float64
	AvgCCT    float64
	// Summary carries the full derived metrics (per-port, per-coflow,
	// stretch histogram) for callers that want more than the row.
	Summary *telemetry.Summary
}

// TelemetryExperiment runs the seeded workload under all 8 coflow
// schedulers, each observed by a fresh Recorder, and returns one row per
// scheduler in the fixed scheduler order (deterministic output).
func TelemetryExperiment(cfg TelemetryConfig) ([]TelemetryRow, error) {
	cfg.defaults()
	fabric, err := netsim.NewFabric(cfg.Nodes, cfg.Bandwidth)
	if err != nil {
		return nil, err
	}
	base := chaosWorkload(rand.New(rand.NewSource(cfg.Seed)), cfg.Nodes, cfg.Coflows)
	scheds := chaosSchedulers()
	// Schedulers are independent runs over clones of the same workload; the
	// pool returns rows indexed by scheduler position, preserving the fixed
	// output order at any worker count.
	return parallel.Run(cfg.Workers, len(scheds), func(i int) (TelemetryRow, error) {
		sc := scheds[i]
		rec := telemetry.NewRecorder(telemetry.Config{})
		sim := netsim.NewSimulator(fabric, sc.mk())
		sim.Probe = rec
		rep, err := sim.Run(cloneCoflows(base))
		if err != nil {
			return TelemetryRow{}, fmt.Errorf("telemetry experiment: scheduler %s: %w", sc.name, err)
		}
		return TelemetryRow{
			Scheduler: sc.name,
			Makespan:  rep.Makespan,
			AvgCCT:    rep.AvgCCT,
			Summary:   rec.Summary(),
		}, nil
	})
}
