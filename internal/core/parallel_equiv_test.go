package core

// Tier-1 equivalence: every experiment routed through the worker pool must
// return *deeply equal* results at any worker count. parallel.Run aggregates
// by input index, so the folds in sweep(), RunChaos, and the recovery /
// telemetry experiments perform the same float additions and appends in the
// same order as the serial loop — this test pins that contract end to end
// with reflect.DeepEqual (no epsilons).

import (
	"reflect"
	"testing"
)

var equivWorkers = []int{1, 2, 7}

func TestFigSweepParallelMatchesSerial(t *testing.T) {
	base := func(w int) SweepOptions { return SweepOptions{Scale: 0.001, Workers: w} }
	serial, err := Fig6(nil, 40, base(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range equivWorkers[1:] {
		got, err := Fig6(nil, 40, base(w))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("Fig6 at workers=%d diverged from serial", w)
		}
	}
}

func TestChaosParallelMatchesSerial(t *testing.T) {
	run := func(w int) *ChaosResult {
		t.Helper()
		res, err := RunChaos(ChaosConfig{Seeds: 4, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range equivWorkers[1:] {
		if got := run(w); !reflect.DeepEqual(serial, got) {
			t.Errorf("RunChaos at workers=%d diverged from serial:\nserial: %+v\ngot:    %+v", w, serial, got)
		}
	}
}

func TestTelemetryParallelMatchesSerial(t *testing.T) {
	run := func(w int) []TelemetryRow {
		t.Helper()
		rows, err := TelemetryExperiment(TelemetryConfig{Seed: 1, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	for _, w := range equivWorkers[1:] {
		if got := run(w); !reflect.DeepEqual(serial, got) {
			t.Errorf("TelemetryExperiment at workers=%d diverged from serial", w)
		}
	}
}
