package core

import (
	"math"
	"testing"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/placement"
	"ccf/internal/workload"
)

func onlineWorkload(t *testing.T, n int, zipf float64, seed uint64) *workload.Workload {
	t.Helper()
	w, err := workload.Generate(workload.Config{
		Nodes: n, CustomerTuples: 2_000, OrderTuples: 20_000,
		PayloadBytes: 1000, Zipf: zipf, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunOnlineEmpty(t *testing.T) {
	rep, err := RunOnline(nil, OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 0 || len(rep.CCTs) != 0 {
		t.Errorf("empty run: %+v", rep)
	}
}

func TestRunOnlineValidation(t *testing.T) {
	w8 := onlineWorkload(t, 8, 0.8, 1)
	w4 := onlineWorkload(t, 4, 0.8, 1)
	if _, err := RunOnline([]OnlineJob{{Workload: nil}}, OnlineOptions{}); err == nil {
		t.Error("accepted a nil workload")
	}
	if _, err := RunOnline([]OnlineJob{{Workload: w8}, {Workload: w4}}, OnlineOptions{}); err == nil {
		t.Error("accepted mismatched cluster widths")
	}
	if _, err := RunOnline([]OnlineJob{{Workload: w8, Arrival: -1}}, OnlineOptions{}); err == nil {
		t.Error("accepted negative arrival")
	}
}

func TestRunOnlineSingleJobMatchesOffline(t *testing.T) {
	// One job online == the offline pipeline.
	w := onlineWorkload(t, 8, 0.8, 2)
	on, err := RunOnline([]OnlineJob{{Name: "solo", Workload: w}}, OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunScheduler(w, placement.CCF{}, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(on.CCTs[0]-off.TimeSec)/(off.TimeSec+1e-12) > 1e-6 {
		t.Errorf("online single job CCT %g != offline %g", on.CCTs[0], off.TimeSec)
	}
}

func TestRunOnlineCoOptimizationHelps(t *testing.T) {
	// Job 1 floods node 0's ingress (a Mini placement on aligned-zipf
	// data). Job 2 (CCF) arrives mid-transfer: the co-optimized placement
	// must see node 0's backlog and steer around it, the oblivious one
	// piles on.
	n := 8
	first := onlineWorkload(t, n, 1.0, 3)
	second := onlineWorkload(t, n, 0.0, 4)
	jobs := func() []OnlineJob {
		return []OnlineJob{
			{Name: "hot", Arrival: 0, Workload: first, Scheduler: placement.Mini{}},
			{Name: "late", Arrival: 1, Workload: second, Scheduler: placement.CCF{}},
		}
	}
	oblivious, err := RunOnline(jobs(), OnlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	coopt, err := RunOnline(jobs(), OnlineOptions{CoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if coopt.CCTs[1] > oblivious.CCTs[1] {
		t.Errorf("co-optimized late-job CCT %g worse than oblivious %g", coopt.CCTs[1], oblivious.CCTs[1])
	}
	if coopt.AvgCCT > oblivious.AvgCCT*1.001 {
		t.Errorf("co-optimized avg CCT %g worse than oblivious %g", coopt.AvgCCT, oblivious.AvgCCT)
	}
}

func TestRunOnlineArrivalOrderIndependence(t *testing.T) {
	// Jobs given out of order must be processed by arrival.
	n := 6
	a := onlineWorkload(t, n, 0.8, 5)
	b := onlineWorkload(t, n, 0.8, 6)
	fwd, err := RunOnline([]OnlineJob{
		{Name: "a", Arrival: 0, Workload: a},
		{Name: "b", Arrival: 2, Workload: b},
	}, OnlineOptions{CoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := RunOnline([]OnlineJob{
		{Name: "b", Arrival: 2, Workload: b},
		{Name: "a", Arrival: 0, Workload: a},
	}, OnlineOptions{CoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fwd.CCTs[0]-rev.CCTs[1]) > 1e-9 || math.Abs(fwd.CCTs[1]-rev.CCTs[0]) > 1e-9 {
		t.Errorf("arrival ordering not respected: fwd=%v rev=%v", fwd.CCTs, rev.CCTs)
	}
}

func TestRunOnlineWithSkewHandling(t *testing.T) {
	w, err := workload.Generate(workload.Config{
		Nodes: 6, CustomerTuples: 1_000, OrderTuples: 10_000,
		PayloadBytes: 1000, Zipf: 0.8, Skew: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunOnline([]OnlineJob{{Name: "skewed", Workload: w, HandleSkew: true}}, OnlineOptions{CoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunScheduler(w, placement.CCF{}, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.CCTs[0]-off.TimeSec)/(off.TimeSec+1e-12) > 1e-6 {
		t.Errorf("online skew-handled CCT %g != offline %g", rep.CCTs[0], off.TimeSec)
	}
}

func TestHorizonSimulation(t *testing.T) {
	// Direct check of the backlog probe: a 10-byte flow at 1 B/s probed at
	// t=4 must have 6 bytes left.
	c := coflow.New(0, "h", 0, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 10}})
	fab, err := netsim.NewFabric(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.NewSimulator(fab, coflow.NewVarys())
	sim.Horizon = 4
	rep, err := sim.Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 4 {
		t.Errorf("horizon run ended at %g, want 4", rep.Makespan)
	}
	eg, in := netsim.PortBacklog(2, []*coflow.Coflow{c})
	if eg[0] != 6 || in[1] != 6 {
		t.Errorf("backlog = eg %v in %v, want 6 at ports 0/1", eg, in)
	}
	// Horizon past completion behaves like a full run.
	sim.Horizon = 100
	rep, err = sim.Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.CCTs[0]; math.Abs(got-10) > 1e-9 {
		t.Errorf("CCT with generous horizon = %g, want 10", got)
	}
}

func TestHorizonBeforeArrival(t *testing.T) {
	c := coflow.New(0, "h", 5, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 10}})
	fab, err := netsim.NewFabric(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.NewSimulator(fab, coflow.NewVarys())
	sim.Horizon = 3
	rep, err := sim.Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CCTs) != 0 {
		t.Errorf("coflow completed before arriving: %+v", rep)
	}
	eg, _ := netsim.PortBacklog(2, []*coflow.Coflow{c})
	if eg[0] != 10 {
		t.Errorf("untouched backlog = %d, want 10", eg[0])
	}
}
