package core

// Streaming trace replay: drive one live netsim.Session from a coflow
// source (e.g. fbtrace.Stream) without ever materialising the workload as a
// slice. Each pulled coflow advances the session to its arrival and admits
// it, so the resident set is the in-flight coflows plus at most one pending
// arrival; with EventHorizon + ReleaseCompleted the session also drops
// coflows as they finish, keeping memory bounded by the *concurrency* of the
// trace rather than its length. That is what lets the Facebook trace replay
// at 1000× density inside CI.
//
// Advancing to each arrival is exact: arrivals bound the dense loop's epochs
// anyway, so the stepwise session visits the same epoch boundaries as a
// batch RunInto over the fully materialised trace, and the reports agree bit
// for bit (TestReplayStreamMatchesBatch).

import (
	"errors"
	"fmt"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
)

// CoflowSource yields coflows in non-decreasing arrival order. Next returns
// (nil, false) when the source is exhausted. *fbtrace.Streamer implements it.
type CoflowSource interface {
	Next() (*coflow.Coflow, bool)
}

// ReplayOptions configure a streaming replay.
type ReplayOptions struct {
	// Bandwidth per port (bytes/sec); 0 = CoflowSim default.
	Bandwidth float64
	// Scheduler orders the concurrent coflows; nil = Varys.
	Scheduler coflow.Scheduler
	// EventHorizon runs the sparse session loop (netsim.Simulator).
	EventHorizon bool
	// ReleaseCompleted drops finished coflows from the live session; only
	// effective with EventHorizon and a sparse-capable scheduler.
	ReleaseCompleted bool
}

// ReplayReport aggregates a streaming replay.
type ReplayReport struct {
	Coflows        int     // coflows pulled from the source
	AvgCCT         float64 // seconds, unweighted mean over completed coflows
	WeightedAvgCCT float64 // Σw·CCT / Σw over completed coflows
	MaxCCT         float64
	Makespan       float64
	TotalBytes     float64
	Epochs         int
	// PeakResident is the largest number of coflows held by the session at
	// any admission — the memory high-water mark of the replay. Without
	// ReleaseCompleted it ends up equal to Coflows.
	PeakResident int
}

// ReplayStream pulls the source dry through one live session and returns the
// aggregate report. The source must yield arrivals in non-decreasing order
// (fbtrace streams do); a regression is reported as an error.
func ReplayStream(machines int, src CoflowSource, opts ReplayOptions) (*ReplayReport, error) {
	if src == nil {
		return nil, errors.New("core: replay needs a coflow source")
	}
	fabric, err := netsim.NewFabric(machines, opts.Bandwidth)
	if err != nil {
		return nil, err
	}
	sched := opts.Scheduler
	if sched == nil {
		sched = coflow.NewVarys()
	}
	sim := netsim.NewSimulator(fabric, sched)
	sim.EventHorizon = opts.EventHorizon
	sim.ReleaseCompleted = opts.ReleaseCompleted
	ses, err := sim.Session()
	if err != nil {
		return nil, err
	}
	out := &ReplayReport{}
	last := 0.0
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		if c.Arrival < last {
			return nil, fmt.Errorf("core: replay source regressed: coflow %d arrives at %g after %g",
				c.ID, c.Arrival, last)
		}
		last = c.Arrival
		// Advance first so completed coflows retire (and, under
		// ReleaseCompleted, free) before the next admission grows the set.
		if err := ses.Advance(c.Arrival); err != nil {
			return nil, fmt.Errorf("core: replay at t=%g: %w", c.Arrival, err)
		}
		if err := ses.Admit(c); err != nil {
			return nil, fmt.Errorf("core: replay admit coflow %d: %w", c.ID, err)
		}
		out.Coflows++
		if r := ses.AdmittedCount(); r > out.PeakResident {
			out.PeakResident = r
		}
	}
	rep, err := ses.Finish()
	if err != nil {
		return nil, err
	}
	out.AvgCCT = rep.AvgCCT
	out.WeightedAvgCCT = rep.WeightedAvgCCT
	out.MaxCCT = rep.MaxCCT
	out.Makespan = rep.Makespan
	out.TotalBytes = rep.TotalBytes
	out.Epochs = rep.Epochs
	return out, nil
}
