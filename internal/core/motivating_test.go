package core

import (
	"testing"
)

// TestMotivatingExample locks in every number of the paper's Figures 1-2:
// traffic 8/7/6 for SP0/SP1/SP2, optimal CCTs 4 (SP2) and 3 (SP1), worst
// CCT 6 (SP2), and CCF recovering the co-optimal plan.
func TestMotivatingExample(t *testing.T) {
	res, err := MotivatingExample()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SP0.Traffic; got != 8 {
		t.Errorf("SP0 (hash) traffic = %d, paper says 8", got)
	}
	if got := res.SP1.Traffic; got != 7 {
		t.Errorf("SP1 traffic = %d, paper says 7", got)
	}
	if got := res.SP2.Traffic; got != 6 {
		t.Errorf("SP2 traffic = %d, paper says 6", got)
	}
	if got := res.SP2.OptimalCCT; !approx(got, 4) {
		t.Errorf("SP2 optimal-coflow CCT = %g, Figure 2(b) says 4", got)
	}
	if got := res.SP2.WorstCCT; !approx(got, 6) {
		t.Errorf("SP2 worst-schedule CCT = %g, Figure 2(a) says 6", got)
	}
	if got := res.SP1.OptimalCCT; !approx(got, 3) {
		t.Errorf("SP1 optimal-coflow CCT = %g, Figure 2(c) says 3", got)
	}
	if got := res.CCF.OptimalCCT; !approx(got, 3) {
		t.Errorf("CCF heuristic CCT = %g, want the co-optimal 3", got)
	}
	if res.OptimalT != 3 {
		t.Errorf("exact solver bottleneck T = %d, want 3", res.OptimalT)
	}
	// The co-optimization gap the paper motivates with: the traffic-optimal
	// plan is strictly slower than the traffic-suboptimal one.
	if !(res.SP2.Traffic < res.SP1.Traffic && res.SP2.OptimalCCT > res.SP1.OptimalCCT) {
		t.Errorf("co-optimization gap missing: SP2 (traffic %d, CCT %g) vs SP1 (traffic %d, CCT %g)",
			res.SP2.Traffic, res.SP2.OptimalCCT, res.SP1.Traffic, res.SP1.OptimalCCT)
	}
}

func approx(got, want float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d < 1e-6
}
