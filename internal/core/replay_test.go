package core

// ReplayStream must be a pure re-packaging of the batch path: pulling the
// fbtrace stream through one live session — with the sparse loop and
// completed-coflow release on — yields the exact report a dense RunInto over
// the fully materialised trace produces. fbtrace assigns IDs in arrival
// order, so ID-order aggregation (the released path) is input-order
// aggregation and even the averaged fields match bit for bit.

import (
	"testing"

	"ccf/internal/coflow"
	"ccf/internal/fbtrace"
	"ccf/internal/netsim"
)

func replaySchedulers() map[string]func() coflow.Scheduler {
	return map[string]func() coflow.Scheduler{
		"varys": coflow.NewVarys,
		"aalo":  func() coflow.Scheduler { return coflow.NewAalo() },
		"fifo":  coflow.NewFIFO,
	}
}

func TestReplayStreamMatchesBatch(t *testing.T) {
	for name, mk := range replaySchedulers() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for seed := uint64(0); seed < 4; seed++ {
				cfg := fbtrace.Config{
					Machines: 10, Coflows: 60,
					MeanInterarrivalSec: 0.2, Seed: seed,
				}
				cfs, err := fbtrace.Generate(cfg)
				if err != nil {
					t.Fatal(err)
				}
				fab, err := netsim.NewFabric(cfg.Machines, 0)
				if err != nil {
					t.Fatal(err)
				}
				want, err := netsim.NewSimulator(fab, mk()).Run(cfs)
				if err != nil {
					t.Fatal(err)
				}

				st, err := fbtrace.Stream(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ReplayStream(cfg.Machines, st, ReplayOptions{
					Scheduler:        mk(),
					EventHorizon:     true,
					ReleaseCompleted: true,
				})
				if err != nil {
					t.Fatal(err)
				}

				if got.Coflows != cfg.Coflows {
					t.Errorf("seed %d: replayed %d coflows, want %d", seed, got.Coflows, cfg.Coflows)
				}
				if got.Makespan != want.Makespan {
					t.Errorf("seed %d: Makespan %v != %v", seed, got.Makespan, want.Makespan)
				}
				if got.AvgCCT != want.AvgCCT {
					t.Errorf("seed %d: AvgCCT %v != %v", seed, got.AvgCCT, want.AvgCCT)
				}
				if got.WeightedAvgCCT != want.WeightedAvgCCT {
					t.Errorf("seed %d: WeightedAvgCCT %v != %v", seed, got.WeightedAvgCCT, want.WeightedAvgCCT)
				}
				if got.MaxCCT != want.MaxCCT {
					t.Errorf("seed %d: MaxCCT %v != %v", seed, got.MaxCCT, want.MaxCCT)
				}
				if got.TotalBytes != want.TotalBytes {
					t.Errorf("seed %d: TotalBytes %v != %v", seed, got.TotalBytes, want.TotalBytes)
				}
				if got.Epochs != want.Epochs {
					t.Errorf("seed %d: Epochs %d != %d", seed, got.Epochs, want.Epochs)
				}
			}
		})
	}
}

// TestReplayStreamBoundsResidency pins the memory story: with release on,
// the session's high-water mark tracks trace *concurrency*, not length —
// a long sparse trace must never hold every coflow at once.
func TestReplayStreamBoundsResidency(t *testing.T) {
	cfg := fbtrace.Config{
		Machines: 12, Coflows: 400,
		MeanInterarrivalSec: 2, Seed: 5,
	}
	st, err := fbtrace.Stream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayStream(cfg.Machines, st, ReplayOptions{
		Scheduler:        coflow.NewVarys(),
		EventHorizon:     true,
		ReleaseCompleted: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakResident >= cfg.Coflows/2 {
		t.Errorf("peak residency %d of %d coflows: release never bounded memory", rep.PeakResident, cfg.Coflows)
	}
}

func TestReplayStreamValidation(t *testing.T) {
	if _, err := ReplayStream(4, nil, ReplayOptions{}); err == nil {
		t.Error("accepted nil source")
	}
	if _, err := ReplayStream(0, &sliceSource{}, ReplayOptions{}); err == nil {
		t.Error("accepted 0-port fabric")
	}
	src := &sliceSource{cfs: []*coflow.Coflow{
		coflow.New(0, "a", 5, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 10}}),
		coflow.New(1, "b", 3, []coflow.Flow{{ID: 0, Src: 1, Dst: 0, Size: 10}}),
	}}
	if _, err := ReplayStream(2, src, ReplayOptions{}); err == nil {
		t.Error("accepted regressing arrivals")
	}
}

type sliceSource struct {
	cfs []*coflow.Coflow
	i   int
}

func (s *sliceSource) Next() (*coflow.Coflow, bool) {
	if s.i >= len(s.cfs) {
		return nil, false
	}
	c := s.cfs[s.i]
	s.i++
	return c, true
}
