package core

import (
	"testing"

	"ccf/internal/placement"
	"ccf/internal/workload"
)

// pickRecoverySched is the primary placement scheduler of the recovery
// experiments: the paper's co-optimizing CCF.
func pickRecoverySched() placement.Scheduler { return placement.CCF{} }

func TestChaosInvariants(t *testing.T) {
	res, err := RunChaos(ChaosConfig{Seeds: 32})
	if err != nil {
		t.Fatal(err)
	}
	if want := 32 * 8; res.Runs != want {
		t.Errorf("runs = %d, want %d", res.Runs, want)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	if res.TotalWasted <= 0 {
		t.Error("chaos sweep voided no bytes — faults never bit")
	}
	if res.MaxSlowdown < 1 {
		t.Errorf("max slowdown %g < 1", res.MaxSlowdown)
	}
}

func recoveryWorkload(t *testing.T, seed uint64) *workload.Workload {
	t.Helper()
	cfg := workload.Config{
		Nodes: 8, Partitions: 64,
		CustomerTuples: 2000, OrderTuples: 20000, PayloadBytes: 100,
		Zipf: 0.3, ShuffleRanks: true, Seed: seed, JitterFrac: 0.3,
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestRecoveryReplaceBeatsRetryInPlace checks the recovery comparison in
// aggregate: the co-optimized re-placement must win on mean post-failure
// makespan and on win count. Per-seed strict dominance is not required —
// CCF's greedy bottleneck heuristic can lose individual instances by a
// fraction of a percent — but no seed may regress badly.
func TestRecoveryReplaceBeatsRetryInPlace(t *testing.T) {
	opts := Options{Bandwidth: 1e6}
	wins, losses := 0, 0
	var sumReplace, sumRetry float64
	for seed := uint64(0); seed < 8; seed++ {
		w := recoveryWorkload(t, seed)
		// Fail a node one quarter into the fault-free transfer.
		probe, err := RunWithNodeLoss(w, pickRecoverySched(), NodeLossSpec{FailNode: 3, FailTime: 1e-3}, RecoverReplace, opts)
		if err != nil {
			t.Fatal(err)
		}
		failTime := probe.CleanMakespan / 4
		spec := NodeLossSpec{FailNode: 3, FailTime: failTime}
		rep, err := RunWithNodeLoss(w, pickRecoverySched(), spec, RecoverReplace, opts)
		if err != nil {
			t.Fatal(err)
		}
		retry, err := RunWithNodeLoss(w, pickRecoverySched(), spec, RecoverRetryInPlace, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.CleanMakespan != retry.CleanMakespan || rep.WastedBytes != retry.WastedBytes ||
			rep.LostBytes != retry.LostBytes {
			t.Errorf("seed %d: phase-1 state differs between policies: %+v vs %+v", seed, rep, retry)
		}
		if rep.ReplacedPartitions == 0 {
			t.Errorf("seed %d: no partitions were orphaned (fail node never a destination?)", seed)
		}
		sumReplace += rep.PostMakespan
		sumRetry += retry.PostMakespan
		switch {
		case rep.PostMakespan < retry.PostMakespan-1e-9:
			wins++
		case rep.PostMakespan > retry.PostMakespan+1e-9:
			losses++
			if rep.PostMakespan > retry.PostMakespan*1.1 {
				t.Errorf("seed %d: recovery-aware post-makespan %g regresses badly vs retry-in-place %g",
					seed, rep.PostMakespan, retry.PostMakespan)
			}
		}
	}
	if sumReplace >= sumRetry {
		t.Errorf("mean post-makespan: replace %g not better than retry-in-place %g", sumReplace/8, sumRetry/8)
	}
	if wins <= losses {
		t.Errorf("recovery-aware re-placement won %d, lost %d", wins, losses)
	}
}

func TestNodeLossValidation(t *testing.T) {
	w := recoveryWorkload(t, 1)
	opts := Options{Bandwidth: 1e6}
	if _, err := RunWithNodeLoss(w, pickRecoverySched(), NodeLossSpec{FailNode: 99, FailTime: 1}, RecoverReplace, opts); err == nil {
		t.Error("out-of-range fail node accepted")
	}
	if _, err := RunWithNodeLoss(w, pickRecoverySched(), NodeLossSpec{FailNode: 0, FailTime: 0}, RecoverReplace, opts); err == nil {
		t.Error("non-positive fail time accepted")
	}
	if _, err := RunWithNodeLoss(w, pickRecoverySched(), NodeLossSpec{FailNode: 0, FailTime: 1}, RecoveryPolicy("bogus"), opts); err == nil {
		t.Error("unknown policy accepted")
	}
}
