package core

import (
	"errors"
	"fmt"
	"testing"

	"ccf/internal/workload"
)

func onlineOrderTestJob(t *testing.T, name string, arrival float64, seed uint64) OnlineJob {
	t.Helper()
	w, err := workload.Generate(workload.Config{
		Nodes: 4, CustomerTuples: 100, OrderTuples: 1_000,
		PayloadBytes: 1000, Zipf: 0.8, Seed: seed, JitterFrac: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return OnlineJob{Name: name, Arrival: arrival, Workload: w}
}

// The daemon's concurrent intake can reorder arrivals; the engine must fail
// such a submission with a typed error the caller can match and recover
// from, never a panic or a silent skip.
func TestSubmitOutOfOrderArrivalTypedError(t *testing.T) {
	eng, err := NewOnlineEngine(4, OnlineOptions{CoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(onlineOrderTestJob(t, "a", 2.0, 1)); err != nil {
		t.Fatal(err)
	}
	_, err = eng.Submit(onlineOrderTestJob(t, "b", 1.0, 2))
	if err == nil {
		t.Fatal("out-of-order submission succeeded, want error")
	}
	if !errors.Is(err, ErrArrivalOutOfOrder) {
		t.Fatalf("error %v does not match ErrArrivalOutOfOrder", err)
	}
	var oe *ArrivalOrderError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v is not an *ArrivalOrderError", err)
	}
	if oe.Job != 1 || oe.Arrival != 1.0 || oe.Clock != 2.0 {
		t.Fatalf("got details %+v, want job 1 arriving at 1 behind clock 2", oe)
	}
	// A wrapped error must still match, the way the daemon sees it after
	// adding request context.
	wrapped := fmt.Errorf("shard 3: %w", err)
	if !errors.Is(wrapped, ErrArrivalOutOfOrder) {
		t.Fatalf("wrapped error %v lost the sentinel", wrapped)
	}

	// The rejection must not corrupt engine state: lifting the arrival to
	// the clock (the daemon's recovery) succeeds and the engine keeps going.
	lifted := onlineOrderTestJob(t, "b", 1.0, 2)
	lifted.Arrival = eng.Clock()
	if _, err := eng.Submit(lifted); err != nil {
		t.Fatalf("lifted resubmission failed: %v", err)
	}
	if got := eng.JobCount(); got != 2 {
		t.Fatalf("JobCount = %d after reject+lift, want 2", got)
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatalf("Finish after recovered rejection: %v", err)
	}
}

// PlacementOnly must skip the backlog probe (the decision sees an idle
// network) while still admitting the job into the live session.
func TestSubmitPlacementOnlySkipsBacklogProbe(t *testing.T) {
	eng, err := NewOnlineEngine(4, OnlineOptions{CoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(onlineOrderTestJob(t, "a", 0, 1)); err != nil {
		t.Fatal(err)
	}
	job := onlineOrderTestJob(t, "b", 0.001, 2)
	job.PlacementOnly = true
	dec, err := eng.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Backlog.Egress != nil || dec.Backlog.Ingress != nil {
		t.Fatalf("degraded decision reported a backlog: %+v", dec.Backlog)
	}
	if got := eng.JobCount(); got != 2 {
		t.Fatalf("JobCount = %d, want 2 (degraded job still admitted)", got)
	}
	rep, err := eng.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CCTs) != 2 || rep.CCTs[1] <= 0 {
		t.Fatalf("degraded job did not simulate: CCTs=%v", rep.CCTs)
	}
}

// Two engines fed the same stream digest identically; diverging streams
// diverge. This is the primitive the snapshot/restore determinism test
// builds on.
func TestStateDigestTracksEngineState(t *testing.T) {
	mk := func() *OnlineEngine {
		eng, err := NewOnlineEngine(4, OnlineOptions{CoOptimize: true})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	a, b := mk(), mk()
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("fresh engines digest differently")
	}
	for i := 0; i < 4; i++ {
		job := onlineOrderTestJob(t, fmt.Sprintf("j%d", i), 0.01*float64(i), uint64(i))
		if _, err := a.Submit(job); err != nil {
			t.Fatal(err)
		}
		job2 := onlineOrderTestJob(t, fmt.Sprintf("j%d", i), 0.01*float64(i), uint64(i))
		if _, err := b.Submit(job2); err != nil {
			t.Fatal(err)
		}
		if a.StateDigest() != b.StateDigest() {
			t.Fatalf("digests diverged on identical streams after job %d", i)
		}
	}
	extra := onlineOrderTestJob(t, "extra", 1.0, 99)
	if _, err := a.Submit(extra); err != nil {
		t.Fatal(err)
	}
	if a.StateDigest() == b.StateDigest() {
		t.Fatal("digest did not change when streams diverged")
	}
}
