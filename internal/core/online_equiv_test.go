package core

// Online engine equivalence: the streaming OnlineEngine (one resumable
// simulation session, O(J) simulator work) must reproduce the frozen
// probe-per-arrival reference (re-simulate history per arrival, O(J²))
// byte-identically — every CCT, the makespan, and the aggregates — across
// placement schedulers × network schedulers × co-optimize on/off × seeds,
// with and without injected port failures. This is the online counterpart of
// the netsim↔refsim golden suite.

import (
	"fmt"
	"testing"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/partition"
	"ccf/internal/placement"
	"ccf/internal/skew"
	"ccf/internal/workload"
)

// equivWorkload is a small deterministic workload so the ≥24-seed sweep
// stays fast; different seeds shift chunk jitter and therefore placements,
// arrival interleavings and tie-breaks.
func equivWorkload(t testing.TB, n int, zipf float64, seed uint64) *workload.Workload {
	t.Helper()
	w, err := workload.Generate(workload.Config{
		Nodes: n, CustomerTuples: 300, OrderTuples: 3_000,
		PayloadBytes: 1000, Zipf: zipf, Seed: seed, JitterFrac: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// equivJobs builds one seeded job stream: staggered arrivals including a
// simultaneous pair so admission tie-breaks are exercised.
func equivJobs(t testing.TB, n int, seed int64) []OnlineJob {
	t.Helper()
	zipfs := []float64{0, 0.5, 1.0, 1.5}
	arrivals := []float64{0, 0.02 * float64(seed%5), 0.05, 0.05}
	jobs := make([]OnlineJob, 0, len(zipfs))
	for k, z := range zipfs {
		jobs = append(jobs, OnlineJob{
			Name:     fmt.Sprintf("job%d", k),
			Arrival:  arrivals[k],
			Workload: equivWorkload(t, n, z, uint64(seed)*31+uint64(k)),
		})
	}
	return jobs
}

func comparePlacedOnline(t *testing.T, tag string, got, ref *OnlineReport) {
	t.Helper()
	if got.Makespan != ref.Makespan {
		t.Errorf("%s: Makespan %v != %v", tag, got.Makespan, ref.Makespan)
	}
	if got.AvgCCT != ref.AvgCCT {
		t.Errorf("%s: AvgCCT %v != %v", tag, got.AvgCCT, ref.AvgCCT)
	}
	if got.MaxCCT != ref.MaxCCT {
		t.Errorf("%s: MaxCCT %v != %v", tag, got.MaxCCT, ref.MaxCCT)
	}
	if len(got.CCTs) != len(ref.CCTs) {
		t.Fatalf("%s: %d CCTs != %d", tag, len(got.CCTs), len(ref.CCTs))
	}
	for i := range ref.CCTs {
		if got.CCTs[i] != ref.CCTs[i] {
			t.Errorf("%s: CCT[%d] = %v, want %v", tag, i, got.CCTs[i], ref.CCTs[i])
		}
	}
}

// TestOnlineEngineMatchesReference is the tentpole acceptance test: ≥24
// seeds × {CCF, Mini, Hash} × {Varys, Aalo} × co-optimize on/off, engine vs
// probe reference, exact equality.
func TestOnlineEngineMatchesReference(t *testing.T) {
	const n, seeds = 6, 24
	placers := []struct {
		name string
		mk   func() placement.Scheduler
	}{
		{"ccf", func() placement.Scheduler { return placement.CCF{} }},
		{"mini", func() placement.Scheduler { return placement.Mini{} }},
		{"hash", func() placement.Scheduler { return placement.Hash{} }},
	}
	nets := []struct {
		name string
		mk   func() coflow.Scheduler // nil result = package default (Varys)
	}{
		{"varys", func() coflow.Scheduler { return nil }},
		{"aalo", func() coflow.Scheduler { return coflow.NewAalo() }},
	}
	for _, pl := range placers {
		for _, nt := range nets {
			for _, coopt := range []bool{false, true} {
				pl, nt, coopt := pl, nt, coopt
				t.Run(fmt.Sprintf("%s/%s/coopt=%v", pl.name, nt.name, coopt), func(t *testing.T) {
					for seed := int64(0); seed < seeds; seed++ {
						jobs := equivJobs(t, n, seed)
						for i := range jobs {
							jobs[i].Scheduler = pl.mk()
						}
						ref, refErr := RunOnlineReference(jobs, OnlineOptions{
							CoOptimize: coopt, NetworkScheduler: nt.mk(),
						})
						got, gotErr := RunOnline(jobs, OnlineOptions{
							CoOptimize: coopt, NetworkScheduler: nt.mk(),
						})
						tag := fmt.Sprintf("seed=%d", seed)
						if (refErr != nil) != (gotErr != nil) {
							t.Fatalf("%s: error mismatch: engine=%v reference=%v", tag, gotErr, refErr)
						}
						if refErr != nil {
							continue
						}
						comparePlacedOnline(t, tag, got, ref)
					}
				})
			}
		}
	}
}

// TestOnlineEngineMatchesReferenceWithFailures is the fault-injection case
// of the acceptance criteria: port outages whose down/up edges straddle job
// arrivals must apply identically whether the simulation is advanced
// incrementally (session) or re-run per arrival plus once at the end
// (reference), under every retransmission policy.
func TestOnlineEngineMatchesReferenceWithFailures(t *testing.T) {
	const n = 6
	policies := []struct {
		name string
		pol  netsim.RetransmitPolicy
	}{
		{"restart", netsim.RetransmitRestart},
		{"resume", netsim.RetransmitResume},
		{"restart-delivered", netsim.RetransmitRestartDelivered},
	}
	// The down edge lands between the first and later arrivals; the up edge
	// after the last arrival — the outage straddles the whole admission
	// sequence. A second short outage hits mid-stream.
	failures := []netsim.PortFailure{
		{Port: 1, Down: 0.01, Up: 0.2},
		{Port: 3, Down: 0.04, Up: 0.06},
	}
	for _, pol := range policies {
		for _, coopt := range []bool{false, true} {
			pol, coopt := pol, coopt
			t.Run(fmt.Sprintf("%s/coopt=%v", pol.name, coopt), func(t *testing.T) {
				for seed := int64(0); seed < 8; seed++ {
					jobs := equivJobs(t, n, seed)
					opts := OnlineOptions{
						CoOptimize: coopt,
						Failures:   failures,
						Retransmit: pol.pol,
					}
					ref, refErr := RunOnlineReference(jobs, opts)
					got, gotErr := RunOnline(jobs, opts)
					tag := fmt.Sprintf("seed=%d", seed)
					if (refErr != nil) != (gotErr != nil) {
						t.Fatalf("%s: error mismatch: engine=%v reference=%v", tag, gotErr, refErr)
					}
					if refErr != nil {
						continue
					}
					comparePlacedOnline(t, tag, got, ref)
				}
			})
		}
	}
}

// TestRunOnlineObliviousIsBlackBoxComposition pins the paper's "black-box
// composition" baseline: with CoOptimize off, RunOnline must be *exactly*
// per-job offline placement against an idle network (initial loads zero, or
// the job's own skew broadcasts) composed with one shared simulation of the
// resulting coflows.
func TestRunOnlineObliviousIsBlackBoxComposition(t *testing.T) {
	const n = 6
	for _, handleSkew := range []bool{false, true} {
		handleSkew := handleSkew
		t.Run(fmt.Sprintf("skew=%v", handleSkew), func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				jobs := equivJobs(t, n, seed)
				if handleSkew {
					for i := range jobs {
						w, err := workload.Generate(workload.Config{
							Nodes: n, CustomerTuples: 300, OrderTuples: 3_000,
							PayloadBytes: 1000, Skew: 0.3, Seed: uint64(seed)*17 + uint64(i),
						})
						if err != nil {
							t.Fatal(err)
						}
						jobs[i].Workload = w
						jobs[i].HandleSkew = true
					}
				}
				got, err := RunOnline(jobs, OnlineOptions{CoOptimize: false})
				if err != nil {
					t.Fatal(err)
				}

				// Manual composition. Jobs here arrive in input order
				// (equivJobs produces non-decreasing arrivals), so input
				// index == arrival rank == coflow ID.
				var cfs []*coflow.Coflow
				for ji, job := range jobs {
					matrix := job.Workload.Chunks
					initial := &partition.Loads{Egress: make([]int64, n), Ingress: make([]int64, n)}
					var plan *skew.Plan
					if job.HandleSkew && job.Workload.SkewPartition >= 0 {
						plan = skew.PartialDuplication(job.Workload)
						matrix = plan.Adjusted
						copy(initial.Egress, plan.Initial.Egress)
						copy(initial.Ingress, plan.Initial.Ingress)
					}
					pl, err := placement.CCF{}.Place(matrix, initial)
					if err != nil {
						t.Fatal(err)
					}
					vol, err := partition.FlowVolumes(matrix, pl)
					if err != nil {
						t.Fatal(err)
					}
					if plan != nil {
						for i, b := range plan.BroadcastVolumes {
							vol[i] += b
						}
					}
					cf, err := coflow.FromVolumes(ji, job.Name, job.Arrival, n, vol)
					if err != nil {
						t.Fatal(err)
					}
					cfs = append(cfs, cf)
				}
				fab, err := netsim.NewFabric(n, 0)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := netsim.NewSimulator(fab, coflow.NewVarys()).Run(cfs)
				if err != nil {
					t.Fatal(err)
				}
				for ji := range jobs {
					want := rep.CCTs[ji] // missing entry = 0, the no-remote-bytes case
					if got.CCTs[ji] != want {
						t.Errorf("seed=%d: CCT[%d] = %v, want composition %v", seed, ji, got.CCTs[ji], want)
					}
				}
				if got.Makespan != rep.Makespan {
					t.Errorf("seed=%d: Makespan %v != composition %v", seed, got.Makespan, rep.Makespan)
				}
			}
		})
	}
}

// TestOnlineCoOptimizeSeesBacklogAtTimeZero is the Horizon zero-value
// regression: two jobs arriving at t=0 — the second job's placement must see
// the first job's full volume as backlog. Before Horizon got its NoHorizon
// sentinel, the reference probe set Horizon = 0, which meant "no horizon":
// the backlog probe simulated the first job to completion and reported an
// idle network.
func TestOnlineCoOptimizeSeesBacklogAtTimeZero(t *testing.T) {
	const n = 6
	w0 := equivWorkload(t, n, 1.0, 1)
	w1 := equivWorkload(t, n, 0.5, 2)
	eng, err := NewOnlineEngine(n, OnlineOptions{CoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	d0, err := eng.Submit(OnlineJob{Name: "a", Arrival: 0, Workload: w0})
	if err != nil {
		t.Fatal(err)
	}
	if d0.Backlog.Egress != nil {
		t.Errorf("first job saw a backlog: %+v", d0.Backlog)
	}
	d1, err := eng.Submit(OnlineJob{Name: "b", Arrival: 0, Workload: w1})
	if err != nil {
		t.Fatal(err)
	}
	var seen, want int64
	for p := 0; p < n; p++ {
		seen += d1.Backlog.Egress[p]
	}
	// The first job has moved nothing at t=0, so the backlog must be its
	// entire remote volume — placement-dependent, so recompute it from the
	// decision instead of hard-coding.
	vol, err := partition.FlowVolumes(w0.Chunks, d0.Placement)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vol {
		want += v
	}
	if want == 0 {
		t.Fatal("degenerate workload: first job has no remote bytes")
	}
	if seen != want {
		t.Errorf("second job at t=0 saw backlog %d, want the first job's full remote volume %d", seen, want)
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}

	// And the batch entry points agree with each other on the same stream.
	jobs := []OnlineJob{
		{Name: "a", Arrival: 0, Workload: w0},
		{Name: "b", Arrival: 0, Workload: w1},
	}
	ref, err := RunOnlineReference(jobs, OnlineOptions{CoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunOnline(jobs, OnlineOptions{CoOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	comparePlacedOnline(t, "t0-pair", got, ref)
}

// TestOnlineZeroRemoteBytesJob pins the CCT-0 path: a job whose partitions
// are already resident where placement wants them produces a coflow with no
// flows, completes instantly, and reports CCT 0 through both entry points.
func TestOnlineZeroRemoteBytesJob(t *testing.T) {
	const n = 4
	m := partition.MustChunkMatrix(n, 1)
	m.H[0] = 1 << 20 // partition 0 lives entirely on node 0
	local := &workload.Workload{
		Config:        workload.Config{Nodes: n},
		Chunks:        m,
		SkewPartition: -1,
	}
	jobs := []OnlineJob{
		{Name: "local", Arrival: 0, Workload: local},
		{Name: "remote", Arrival: 0.01, Workload: equivWorkload(t, n, 1.0, 3)},
	}
	for _, coopt := range []bool{false, true} {
		ref, err := RunOnlineReference(jobs, OnlineOptions{CoOptimize: coopt})
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunOnline(jobs, OnlineOptions{CoOptimize: coopt})
		if err != nil {
			t.Fatal(err)
		}
		if got.CCTs[0] != 0 {
			t.Errorf("coopt=%v: local job CCT = %v, want 0", coopt, got.CCTs[0])
		}
		if got.CCTs[1] <= 0 {
			t.Errorf("coopt=%v: remote job CCT = %v, want > 0", coopt, got.CCTs[1])
		}
		comparePlacedOnline(t, fmt.Sprintf("coopt=%v", coopt), got, ref)
	}
}
