// Package stats provides the small numeric and presentation helpers the
// experiment harness shares: labelled series, speedup computation, and
// fixed-width ASCII / CSV rendering of the paper's figure data.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one labelled curve: a y-value per x point.
type Series struct {
	Label  string
	Values []float64
}

// Table is the data behind one figure panel: shared x axis, several curves.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// AddSeries appends a curve, validating its length against the x axis.
func (t *Table) AddSeries(label string, values []float64) error {
	if len(values) != len(t.X) {
		return fmt.Errorf("stats: series %q has %d values for %d x points", label, len(values), len(t.X))
	}
	t.Series = append(t.Series, Series{Label: label, Values: values})
	return nil
}

// Get returns the series with the given label.
func (t *Table) Get(label string) (Series, bool) {
	for _, s := range t.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// Speedups returns, pointwise, base/other — "how many times faster other is
// than base" when the values are times.
func Speedups(base, other Series) ([]float64, error) {
	if len(base.Values) != len(other.Values) {
		return nil, fmt.Errorf("stats: speedup of %q vs %q: lengths %d vs %d",
			other.Label, base.Label, len(other.Values), len(base.Values))
	}
	out := make([]float64, len(base.Values))
	for i := range out {
		if other.Values[i] == 0 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = base.Values[i] / other.Values[i]
	}
	return out, nil
}

// MinMax returns the extrema of a slice (NaNs ignored); (0,0) when empty.
func MinMax(v []float64) (lo, hi float64) {
	first := true
	for _, x := range v {
		if math.IsNaN(x) {
			continue
		}
		if first {
			lo, hi = x, x
			first = false
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Percentile returns the q-th percentile (q in [0,100]) using linear
// interpolation over the sorted copy of v. Degenerate windows stay finite:
// an empty input reports 0, a single sample reports that sample for every
// q, NaN samples are ignored, and a NaN q reports 0 rather than indexing
// with an undefined int(NaN) conversion. The service's /stats percentiles
// feed from live latency rings, so these edges are routine, not exotic.
func Percentile(v []float64, q float64) float64 {
	if len(v) == 0 || math.IsNaN(q) {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	// sort.Float64s places NaNs first; slice them off so they cannot
	// poison the interpolation.
	for len(s) > 0 && math.IsNaN(s[0]) {
		s = s[1:]
	}
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 100 {
		return s[len(s)-1]
	}
	pos := q / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// RenderASCII writes the table as a fixed-width text table matching the
// rows the paper's figures plot.
func RenderASCII(w io.Writer, t *Table) error {
	if _, err := fmt.Fprintf(w, "%s  (%s vs %s)\n", t.Title, t.YLabel, t.XLabel); err != nil {
		return err
	}
	header := fmt.Sprintf("%14s", t.XLabel)
	for _, s := range t.Series {
		header += fmt.Sprintf("%16s", s.Label)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for i, x := range t.X {
		row := fmt.Sprintf("%14s", trimFloat(x))
		for _, s := range t.Series {
			row += fmt.Sprintf("%16s", trimFloat(s.Values[i]))
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (x column first).
func RenderCSV(w io.Writer, t *Table) error {
	cols := []string{t.XLabel}
	for _, s := range t.Series {
		cols = append(cols, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, x := range t.X {
		row := []string{formatCSV(x)}
		for _, s := range t.Series {
			row = append(row, formatCSV(s.Values[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.2f", x)
}

func formatCSV(x float64) string {
	return fmt.Sprintf("%g", x)
}
