package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram: len(Bounds) finite buckets with
// ascending upper bounds, plus one implicit overflow bucket. Bucket i holds
// observations x with Bounds[i-1] <= x < Bounds[i] (the first bucket is
// unbounded below); the overflow bucket holds x >= Bounds[len(Bounds)-1].
// The telemetry summary uses it for the per-coflow stretch distribution.
type Histogram struct {
	Bounds []float64
	Counts []int // len(Bounds)+1; last entry is the overflow bucket
	N      int
	Sum    float64
	Min    float64
	Max    float64
}

// NewHistogram builds a histogram over strictly ascending bucket bounds.
func NewHistogram(bounds ...float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("stats: histogram bounds not ascending at %d (%g <= %g)",
				i, bounds[i], bounds[i-1])
		}
	}
	return &Histogram{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]int, len(bounds)+1),
	}, nil
}

// LinearBounds returns n ascending bounds start+width, start+2*width, ...
// — a convenience for NewHistogram.
func LinearBounds(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i+1)
	}
	return out
}

// Observe adds one observation. NaNs are ignored.
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	if h.N == 0 || x < h.Min {
		h.Min = x
	}
	if h.N == 0 || x > h.Max {
		h.Max = x
	}
	h.N++
	h.Sum += x
	for i, b := range h.Bounds {
		if x < b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Mean returns Sum/N (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Render writes the histogram as fixed-width text rows, one per non-empty
// prefix of buckets, with a proportional bar of at most barWidth cells
// (barWidth <= 0 uses 40).
func (h *Histogram) Render(w io.Writer, barWidth int) error {
	if barWidth <= 0 {
		barWidth = 40
	}
	peak := 0
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.Counts {
		var label string
		switch {
		case i == 0:
			label = fmt.Sprintf("      < %-8s", trimFloat(h.Bounds[0]))
		case i == len(h.Bounds):
			label = fmt.Sprintf("     >= %-8s", trimFloat(h.Bounds[len(h.Bounds)-1]))
		default:
			label = fmt.Sprintf("%7s-%-8s", trimFloat(h.Bounds[i-1]), trimFloat(h.Bounds[i]))
		}
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", c*barWidth/peak)
		}
		if _, err := fmt.Fprintf(w, "  %s %6d %s\n", label, c, bar); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  n=%d mean=%.3f min=%.3f max=%.3f\n", h.N, h.Mean(), h.Min, h.Max)
	return err
}
