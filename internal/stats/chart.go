package stats

// Terminal charts: render a Table's series as an ASCII line chart so
// `ccfbench -chart` can show each figure's *shape* directly in the
// terminal, next to the numeric rows. One character column per x position
// (interpolated when the canvas is wider), one glyph per series.

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// chartGlyphs mark the series, in order.
var chartGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// ChartOptions size the canvas.
type ChartOptions struct {
	// Width and Height of the plotting area in characters (excluding
	// axes). Zero values default to 60×16.
	Width, Height int
	// LogY plots log10(y); zero and negative values clamp to the smallest
	// positive datum. Useful for the paper's time panels, which span two
	// orders of magnitude.
	LogY bool
}

// RenderChart draws every series of the table on one canvas.
func RenderChart(w io.Writer, t *Table, opts ChartOptions) error {
	if len(t.X) == 0 || len(t.Series) == 0 {
		return fmt.Errorf("stats: chart needs at least one x point and one series")
	}
	if opts.Width <= 0 {
		opts.Width = 60
	}
	if opts.Height <= 0 {
		opts.Height = 16
	}

	transform := func(v float64) (float64, bool) { return v, true }
	if opts.LogY {
		// Find the smallest positive value for clamping.
		minPos := math.Inf(1)
		for _, s := range t.Series {
			for _, v := range s.Values {
				if v > 0 && v < minPos {
					minPos = v
				}
			}
		}
		if math.IsInf(minPos, 1) {
			return fmt.Errorf("stats: log chart needs at least one positive value")
		}
		transform = func(v float64) (float64, bool) {
			if v <= 0 {
				v = minPos
			}
			return math.Log10(v), true
		}
	}

	// Data ranges after transformation.
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, s := range t.Series {
		for _, v := range s.Values {
			tv, ok := transform(v)
			if !ok {
				continue
			}
			yLo = math.Min(yLo, tv)
			yHi = math.Max(yHi, tv)
		}
	}
	if yHi == yLo {
		yHi = yLo + 1
	}
	xLo, xHi := t.X[0], t.X[len(t.X)-1]
	if xHi == xLo {
		xHi = xLo + 1
	}

	canvas := make([][]byte, opts.Height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	plot := func(xFrac, yFrac float64, glyph byte) {
		col := int(xFrac*float64(opts.Width-1) + 0.5)
		row := opts.Height - 1 - int(yFrac*float64(opts.Height-1)+0.5)
		if col < 0 || col >= opts.Width || row < 0 || row >= opts.Height {
			return
		}
		canvas[row][col] = glyph
	}
	for si, s := range t.Series {
		glyph := chartGlyphs[si%len(chartGlyphs)]
		// Interpolate between consecutive points so lines stay connected
		// when the canvas is wider than the series.
		for col := 0; col < opts.Width; col++ {
			xFrac := float64(col) / float64(opts.Width-1)
			x := xLo + xFrac*(xHi-xLo)
			y, ok := interp(t.X, s.Values, x)
			if !ok {
				continue
			}
			ty, ok := transform(y)
			if !ok {
				continue
			}
			plot(xFrac, (ty-yLo)/(yHi-yLo), glyph)
		}
	}

	// Emit with a y-axis gutter.
	scale := "linear"
	if opts.LogY {
		scale = "log10"
	}
	if _, err := fmt.Fprintf(w, "%s — %s vs %s (%s scale)\n", t.Title, t.YLabel, t.XLabel, scale); err != nil {
		return err
	}
	hiLabel, loLabel := yHi, yLo
	if opts.LogY {
		hiLabel, loLabel = math.Pow(10, yHi), math.Pow(10, yLo)
	}
	for r, line := range canvas {
		gutter := "          "
		switch r {
		case 0:
			gutter = fmt.Sprintf("%9.3g ", hiLabel)
		case opts.Height - 1:
			gutter = fmt.Sprintf("%9.3g ", loLabel)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", gutter, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", opts.Width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s%-10.4g%*.4g\n", strings.Repeat(" ", 11), xLo, opts.Width-10, xHi); err != nil {
		return err
	}
	legend := make([]string, 0, len(t.Series))
	for si, s := range t.Series {
		legend = append(legend, fmt.Sprintf("%c %s", chartGlyphs[si%len(chartGlyphs)], s.Label))
	}
	_, err := fmt.Fprintf(w, "%s%s\n", strings.Repeat(" ", 11), strings.Join(legend, "   "))
	return err
}

// interp linearly interpolates (xs, ys) at x; xs must be increasing.
func interp(xs, ys []float64, x float64) (float64, bool) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, false
	}
	if x <= xs[0] {
		return ys[0], true
	}
	if x >= xs[len(xs)-1] {
		return ys[len(ys)-1], true
	}
	for i := 1; i < len(xs); i++ {
		if x <= xs[i] {
			span := xs[i] - xs[i-1]
			if span == 0 {
				return ys[i], true
			}
			frac := (x - xs[i-1]) / span
			return ys[i-1]*(1-frac) + ys[i]*frac, true
		}
	}
	return ys[len(ys)-1], true
}
