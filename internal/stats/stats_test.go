package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableAddSeriesValidatesLength(t *testing.T) {
	tbl := &Table{X: []float64{1, 2, 3}}
	if err := tbl.AddSeries("ok", []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddSeries("bad", []float64{1}); err == nil {
		t.Error("AddSeries accepted a mis-sized series")
	}
	if _, ok := tbl.Get("ok"); !ok {
		t.Error("Get failed to find added series")
	}
	if _, ok := tbl.Get("missing"); ok {
		t.Error("Get found a series that was never added")
	}
}

func TestSpeedups(t *testing.T) {
	base := Series{Label: "Hash", Values: []float64{10, 20}}
	other := Series{Label: "CCF", Values: []float64{5, 4}}
	sp, err := Speedups(base, other)
	if err != nil {
		t.Fatal(err)
	}
	if sp[0] != 2 || sp[1] != 5 {
		t.Errorf("speedups = %v, want [2 5]", sp)
	}
	if _, err := Speedups(base, Series{Values: []float64{1}}); err == nil {
		t.Error("Speedups accepted mismatched lengths")
	}
	inf, err := Speedups(base, Series{Values: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(inf[0], 1) {
		t.Errorf("division by zero should be +Inf, got %g", inf[0])
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, math.NaN(), -1, 7})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%g, %g), want (-1, 7)", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Errorf("empty MinMax = (%g, %g), want (0, 0)", lo, hi)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("empty Mean = %g, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{5, 1, 3}
	if got := Percentile(v, 0); got != 1 {
		t.Errorf("p0 = %g, want 1", got)
	}
	if got := Percentile(v, 100); got != 5 {
		t.Errorf("p100 = %g, want 5", got)
	}
	if got := Percentile(v, 50); got != 3 {
		t.Errorf("p50 = %g, want 3", got)
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("interpolated p50 = %g, want 1.5", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %g, want 0", got)
	}
	// A single sample is every percentile.
	for _, q := range []float64{0, 50, 100} {
		if got := Percentile([]float64{7}, q); got != 7 {
			t.Errorf("single-sample p%g = %g, want 7", q, got)
		}
	}
	// Input must not be reordered.
	if v[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

// TestPercentileDegenerateWindows pins the /stats contract: percentile math
// over live latency windows must stay finite through every degenerate shape
// — empty, single-sample, NaN quantiles, NaN samples — never NaN or panic.
func TestPercentileDegenerateWindows(t *testing.T) {
	for _, q := range []float64{0, 50, 99, 100, math.NaN()} {
		if got := Percentile(nil, q); got != 0 {
			t.Errorf("empty p%v = %g, want 0", q, got)
		}
		if got := Percentile([]float64{3.5}, q); got != 3.5 && !math.IsNaN(q) {
			t.Errorf("single-sample p%v = %g, want 3.5", q, got)
		}
	}
	if got := Percentile([]float64{1, 2, 3}, math.NaN()); got != 0 {
		t.Errorf("NaN quantile = %g, want 0", got)
	}
	// NaN samples are dropped, not propagated.
	v := []float64{math.NaN(), 2, math.NaN(), 4}
	for _, q := range []float64{0, 50, 99, 100} {
		got := Percentile(v, q)
		if math.IsNaN(got) {
			t.Fatalf("p%g over NaN-polluted window is NaN", q)
		}
		if got < 2 || got > 4 {
			t.Errorf("p%g = %g, want within [2,4]", q, got)
		}
	}
	if got := Percentile([]float64{math.NaN()}, 50); got != 0 {
		t.Errorf("all-NaN window p50 = %g, want 0", got)
	}
}

func makeTable() *Table {
	tbl := &Table{Title: "Figure X", XLabel: "nodes", YLabel: "time", X: []float64{100, 200}}
	_ = tbl.AddSeries("Hash", []float64{10, 20.5})
	_ = tbl.AddSeries("CCF", []float64{5, 8})
	return tbl
}

func TestRenderASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderASCII(&buf, makeTable()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure X", "nodes", "Hash", "CCF", "100", "20.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderCSV(&buf, makeTable()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if lines[0] != "nodes,Hash,CCF" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "100,10,5" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "200,20.5,8" {
		t.Errorf("row 2 = %q", lines[2])
	}
}
