package stats

import (
	"bytes"
	"strings"
	"testing"
)

func chartTable() *Table {
	tbl := &Table{Title: "Fig", XLabel: "nodes", YLabel: "time", X: []float64{100, 200, 300}}
	_ = tbl.AddSeries("Hash", []float64{10, 10, 10})
	_ = tbl.AddSeries("CCF", []float64{8, 4, 2})
	return tbl
}

func TestRenderChartBasics(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderChart(&buf, chartTable(), ChartOptions{Width: 30, Height: 8}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig", "time", "nodes", "* Hash", "o CCF", "linear"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Both glyphs must appear on the canvas.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series glyphs missing from canvas")
	}
	// Flat series paints the same row: count rows containing '*'.
	starRows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") && strings.Contains(line, "*") {
			starRows++
		}
	}
	if starRows != 1 {
		t.Errorf("flat series spans %d rows, want 1", starRows)
	}
}

func TestRenderChartLogScale(t *testing.T) {
	tbl := &Table{Title: "L", XLabel: "x", YLabel: "y", X: []float64{1, 2}}
	_ = tbl.AddSeries("s", []float64{1, 1000})
	var buf bytes.Buffer
	if err := RenderChart(&buf, tbl, ChartOptions{Width: 20, Height: 6, LogY: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "log10") {
		t.Error("log chart not labelled")
	}
	// Zero/negative values are clamped, not fatal.
	tbl2 := &Table{Title: "Z", XLabel: "x", YLabel: "y", X: []float64{1, 2}}
	_ = tbl2.AddSeries("s", []float64{0, 10})
	if err := RenderChart(&buf, tbl2, ChartOptions{LogY: true}); err != nil {
		t.Errorf("log chart with a zero value: %v", err)
	}
	// All-nonpositive is an error.
	tbl3 := &Table{Title: "N", XLabel: "x", YLabel: "y", X: []float64{1}}
	_ = tbl3.AddSeries("s", []float64{0})
	if err := RenderChart(&buf, tbl3, ChartOptions{LogY: true}); err == nil {
		t.Error("accepted an all-zero log chart")
	}
}

func TestRenderChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderChart(&buf, &Table{}, ChartOptions{}); err == nil {
		t.Error("accepted an empty table")
	}
}

func TestRenderChartConstantSeries(t *testing.T) {
	tbl := &Table{Title: "C", XLabel: "x", YLabel: "y", X: []float64{5, 5}}
	_ = tbl.AddSeries("s", []float64{3, 3})
	var buf bytes.Buffer
	if err := RenderChart(&buf, tbl, ChartOptions{Width: 10, Height: 4}); err != nil {
		t.Errorf("degenerate ranges must not error: %v", err)
	}
}

func TestInterp(t *testing.T) {
	xs := []float64{0, 10, 20}
	ys := []float64{0, 100, 50}
	cases := []struct{ x, want float64 }{
		{-5, 0}, {0, 0}, {5, 50}, {10, 100}, {15, 75}, {20, 50}, {25, 50},
	}
	for _, tc := range cases {
		got, ok := interp(xs, ys, tc.x)
		if !ok || got != tc.want {
			t.Errorf("interp(%g) = %g (%v), want %g", tc.x, got, ok, tc.want)
		}
	}
	if _, ok := interp(nil, nil, 1); ok {
		t.Error("interp accepted empty input")
	}
	if _, ok := interp([]float64{1}, []float64{1, 2}, 1); ok {
		t.Error("interp accepted mismatched lengths")
	}
}
