package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram(1, 1); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if _, err := NewHistogram(2, 1); err == nil {
		t.Error("descending bounds accepted")
	}
	if _, err := NewHistogram(1, 2, 3); err != nil {
		t.Errorf("valid bounds rejected: %v", err)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h, err := NewHistogram(1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket i holds Bounds[i-1] <= x < Bounds[i]; first is unbounded
	// below, last (overflow) holds x >= the final bound.
	for _, x := range []float64{0.5, 1, 1.5, 2, 3.9, 4, 100} {
		h.Observe(x)
	}
	want := []int{1, 2, 2, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d count = %d, want %d (all: %v)", i, c, want[i], h.Counts)
		}
	}
	if h.N != 7 {
		t.Errorf("N = %d, want 7", h.N)
	}
	if h.Min != 0.5 || h.Max != 100 {
		t.Errorf("min/max = %g/%g, want 0.5/100", h.Min, h.Max)
	}
	if got := h.Mean(); got != h.Sum/7 {
		t.Errorf("Mean = %g, want %g", got, h.Sum/7)
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	h, _ := NewHistogram(1)
	h.Observe(math.NaN())
	if h.N != 0 {
		t.Errorf("NaN counted: N = %d", h.N)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("empty Mean = %g, want 0", got)
	}
}

func TestLinearBounds(t *testing.T) {
	got := LinearBounds(0, 0.5, 3)
	want := []float64{0.5, 1, 1.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LinearBounds = %v, want %v", got, want)
		}
	}
	if _, err := NewHistogram(LinearBounds(1, 1, 4)...); err != nil {
		t.Errorf("LinearBounds output rejected: %v", err)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(1, 2)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(1.6)
	var buf bytes.Buffer
	if err := h.Render(&buf, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"< 1", "1-2", ">= 2", "n=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The fullest bucket gets the full-width bar.
	if !strings.Contains(out, strings.Repeat("#", 10)) {
		t.Errorf("render missing full-width bar:\n%s", out)
	}
}
