package coflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func singleFlow(id, src, dst int, size float64) Flow {
	return Flow{ID: id, Src: src, Dst: dst, Size: size}
}

func TestNewDropsZeroFlows(t *testing.T) {
	c := New(1, "x", 0, []Flow{
		singleFlow(0, 0, 1, 10),
		singleFlow(1, 1, 2, 0),
		singleFlow(2, 2, 0, -5),
	})
	if len(c.Flows) != 1 {
		t.Errorf("New kept %d flows, want 1 (zero/negative dropped)", len(c.Flows))
	}
	if c.Flows[0].Remaining != 10 {
		t.Errorf("Remaining = %g, want 10", c.Flows[0].Remaining)
	}
	if c.Flows[0].Coflow != c {
		t.Error("flow not linked to its coflow")
	}
}

func TestFromVolumes(t *testing.T) {
	vol := []int64{
		0, 5, 0,
		0, 0, 7,
		3, 0, 0,
	}
	c, err := FromVolumes(2, "shuffle", 1.5, 3, vol)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Flows) != 3 {
		t.Fatalf("got %d flows, want 3", len(c.Flows))
	}
	if c.Arrival != 1.5 {
		t.Errorf("arrival = %g, want 1.5", c.Arrival)
	}
	if c.TotalBytes() != 15 {
		t.Errorf("TotalBytes = %g, want 15", c.TotalBytes())
	}
	// Diagonal must be ignored even if set.
	vol[0] = 100
	c2, err := FromVolumes(0, "d", 0, 3, vol)
	if err != nil {
		t.Fatal(err)
	}
	if c2.TotalBytes() != 115-100 {
		t.Errorf("self-loop volume not dropped: total = %g", c2.TotalBytes())
	}
}

func TestFromVolumesRejectsBadMatrix(t *testing.T) {
	if _, err := FromVolumes(0, "x", 0, 3, make([]int64, 8)); err == nil {
		t.Error("FromVolumes accepted 8 entries for n=3")
	}
}

func TestBottleneck(t *testing.T) {
	// Flows: 0→1 (4), 0→2 (3), 2→1 (2). Egress 0 = 7, ingress 1 = 6.
	c := New(0, "g", 0, []Flow{
		singleFlow(0, 0, 1, 4),
		singleFlow(1, 0, 2, 3),
		singleFlow(2, 2, 1, 2),
	})
	if got := c.Bottleneck(3); got != 7 {
		t.Errorf("Bottleneck = %g, want 7 (egress of node 0)", got)
	}
	// Done flows are excluded.
	c.Flows[0].Done = true
	if got := c.Bottleneck(3); got != 3 {
		t.Errorf("Bottleneck after completing 0→1 = %g, want 3", got)
	}
}

func TestCCTErrorsWhenIncomplete(t *testing.T) {
	c := New(0, "x", 0, []Flow{singleFlow(0, 0, 1, 1)})
	if _, err := c.CCT(); err == nil {
		t.Error("CCT of incomplete coflow returned nil error")
	}
	c.Completed = true
	c.Arrival = 1
	c.Completion = 3.5
	cct, err := c.CCT()
	if err != nil || cct != 2.5 {
		t.Errorf("CCT = %g, %v; want 2.5, nil", cct, err)
	}
}

func testScratch(n int) *allocScratch {
	s := new(allocScratch)
	s.ensure(n)
	return s
}

func capSlices(n int, bw float64) (eg, in []float64) {
	eg = make([]float64, n)
	in = make([]float64, n)
	for i := 0; i < n; i++ {
		eg[i], in[i] = bw, bw
	}
	return eg, in
}

func TestMADDFinishesFlowsTogether(t *testing.T) {
	c := New(0, "m", 0, []Flow{
		singleFlow(0, 0, 1, 8),
		singleFlow(1, 0, 2, 4),
		singleFlow(2, 2, 1, 2),
	})
	eg, in := capSlices(3, 1)
	tau := maddAllocate(c, eg, in, testScratch(3))
	// Bottleneck: egress 0 carries 12 at capacity 1 ⇒ τ = 12.
	if tau != 12 {
		t.Fatalf("τ = %g, want 12", tau)
	}
	for _, f := range c.Flows {
		if got := f.Remaining / f.Rate; math.Abs(got-12) > 1e-9 {
			t.Errorf("flow %d finishes at %g, want τ=12 (MADD property)", f.ID, got)
		}
	}
	// Residual capacity: egress 0 fully consumed.
	if eg[0] > 1e-9 {
		t.Errorf("egress 0 residual = %g, want 0", eg[0])
	}
}

func TestMADDBlockedPort(t *testing.T) {
	c := New(0, "m", 0, []Flow{singleFlow(0, 0, 1, 8)})
	eg, in := capSlices(2, 1)
	eg[0] = 0
	tau := maddAllocate(c, eg, in, testScratch(2))
	if !math.IsInf(tau, 1) {
		t.Fatalf("τ = %g with a dead port, want +Inf", tau)
	}
	if c.Flows[0].Rate != 0 {
		t.Errorf("blocked MADD assigned rate %g, want 0", c.Flows[0].Rate)
	}
}

func TestWaterFillSingleBottleneck(t *testing.T) {
	// Three flows out of node 0: equal share of its egress.
	c := New(0, "w", 0, []Flow{
		singleFlow(0, 0, 1, 10),
		singleFlow(1, 0, 2, 10),
		singleFlow(2, 0, 3, 10),
	})
	eg, in := capSlices(4, 3)
	s := testScratch(4)
	waterFill(activeFlows([]*Coflow{c}, s), eg, in, s)
	for _, f := range c.Flows {
		if math.Abs(f.Rate-1) > 1e-9 {
			t.Errorf("flow %d rate = %g, want 1 (3-way fair share of 3)", f.ID, f.Rate)
		}
	}
}

func TestWaterFillMaxMin(t *testing.T) {
	// Flows: A 0→1, B 0→2, C 3→2. Ports cap 1. Port 0 egress shared by
	// A,B; port 2 ingress shared by B,C. Max-min: everyone ½ at the first
	// level, then A and C can grow to fill ports 1-in and 3-out... A's
	// bottleneck is port 0 (shared with frozen B at ½) → A gets ½ + ... :
	// progressive filling: all at ½ — port 0 and port 2 both saturate
	// (A+B=1 at port 0; B+C=1 at port 2) so all freeze at ½ except none
	// can grow. Expected: ½, ½, ½.
	c := New(0, "w", 0, []Flow{
		singleFlow(0, 0, 1, 10),
		singleFlow(1, 0, 2, 10),
		singleFlow(2, 3, 2, 10),
	})
	eg, in := capSlices(4, 1)
	s := testScratch(4)
	waterFill(activeFlows([]*Coflow{c}, s), eg, in, s)
	for _, f := range c.Flows {
		if math.Abs(f.Rate-0.5) > 1e-9 {
			t.Errorf("flow %d rate = %g, want 0.5", f.ID, f.Rate)
		}
	}
}

func TestWaterFillUnevenLevels(t *testing.T) {
	// A 0→1, B 0→2, C 3→4: A,B share port 0 (→ ½ each); C is alone and
	// gets the full unit.
	c := New(0, "w", 0, []Flow{
		singleFlow(0, 0, 1, 10),
		singleFlow(1, 0, 2, 10),
		singleFlow(2, 3, 4, 10),
	})
	eg, in := capSlices(5, 1)
	s := testScratch(5)
	waterFill(activeFlows([]*Coflow{c}, s), eg, in, s)
	want := []float64{0.5, 0.5, 1}
	for i, f := range c.Flows {
		if math.Abs(f.Rate-want[i]) > 1e-9 {
			t.Errorf("flow %d rate = %g, want %g", f.ID, f.Rate, want[i])
		}
	}
}

func TestWaterFillRespectsCapacitiesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		var flows []Flow
		for i := 0; i < 1+rng.Intn(12); i++ {
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			flows = append(flows, singleFlow(i, src, dst, 1+float64(rng.Intn(100))))
		}
		c := New(0, "p", 0, flows)
		eg, in := capSlices(n, 1)
		s := testScratch(n)
		waterFill(activeFlows([]*Coflow{c}, s), eg, in, s)
		egUse := make([]float64, n)
		inUse := make([]float64, n)
		for _, fl := range c.Flows {
			if fl.Rate < -1e-12 {
				return false
			}
			egUse[fl.Src] += fl.Rate
			inUse[fl.Dst] += fl.Rate
		}
		for p := 0; p < n; p++ {
			if egUse[p] > 1+1e-6 || inUse[p] > 1+1e-6 {
				return false
			}
		}
		// Work conservation: every flow is bottlenecked somewhere.
		for _, fl := range c.Flows {
			if egUse[fl.Src] < 1-1e-6 && inUse[fl.Dst] < 1-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSchedulerNamesDistinct(t *testing.T) {
	scheds := []Scheduler{NewVarys(), NewFIFO(), NewSCF(), NewNCF(), NewAalo(), PerFlowFair{}, SequentialByDest{}}
	seen := map[string]bool{}
	for _, s := range scheds {
		if s.Name() == "" {
			t.Error("empty scheduler name")
		}
		if seen[s.Name()] {
			t.Errorf("duplicate scheduler name %q", s.Name())
		}
		seen[s.Name()] = true
	}
}

func TestVarysPrioritisesSmallBottleneck(t *testing.T) {
	// Coflow A: 0→1 of 100. Coflow B: 0→1 of 10. SEBF must give B the
	// shared port first; A gets nothing until backfill — but backfill also
	// serves A on the leftover... here there is no leftover (same ports),
	// so A's rate must be 0 and B's must be full.
	a := New(0, "A", 0, []Flow{singleFlow(0, 0, 1, 100)})
	b := New(1, "B", 0, []Flow{singleFlow(0, 0, 1, 10)})
	eg, in := capSlices(2, 1)
	NewVarys().Allocate(0, []*Coflow{a, b}, eg, in)
	if b.Flows[0].Rate < 1-1e-9 {
		t.Errorf("small coflow rate = %g, want 1 (SEBF priority)", b.Flows[0].Rate)
	}
	if a.Flows[0].Rate > 1e-9 {
		t.Errorf("large coflow rate = %g, want 0 (blocked behind SEBF)", a.Flows[0].Rate)
	}
}

func TestVarysBackfillsDisjointPorts(t *testing.T) {
	// B has priority on ports 0→1; A uses 2→3 and must still run at full
	// rate thanks to work conservation.
	a := New(0, "A", 0, []Flow{singleFlow(0, 2, 3, 100)})
	b := New(1, "B", 0, []Flow{singleFlow(0, 0, 1, 10)})
	eg, in := capSlices(4, 1)
	NewVarys().Allocate(0, []*Coflow{a, b}, eg, in)
	if a.Flows[0].Rate < 1-1e-9 {
		t.Errorf("disjoint coflow rate = %g, want 1 (work conservation)", a.Flows[0].Rate)
	}
}

func TestFIFOOrdersByArrival(t *testing.T) {
	late := New(0, "late", 5, []Flow{singleFlow(0, 0, 1, 10)})
	early := New(1, "early", 1, []Flow{singleFlow(0, 0, 1, 100)})
	eg, in := capSlices(2, 1)
	NewFIFO().Allocate(6, []*Coflow{late, early}, eg, in)
	if early.Flows[0].Rate < 1-1e-9 {
		t.Errorf("early coflow rate = %g, want 1 under FIFO", early.Flows[0].Rate)
	}
	if late.Flows[0].Rate > 1e-9 {
		t.Errorf("late coflow rate = %g, want 0 under FIFO", late.Flows[0].Rate)
	}
}

func TestSCFPrefersSmallest(t *testing.T) {
	big := New(0, "big", 0, []Flow{singleFlow(0, 0, 1, 100)})
	small := New(1, "small", 0, []Flow{singleFlow(0, 0, 1, 1)})
	eg, in := capSlices(2, 1)
	NewSCF().Allocate(0, []*Coflow{big, small}, eg, in)
	if small.Flows[0].Rate < 1-1e-9 {
		t.Error("SCF did not prioritise the smallest coflow")
	}
}

func TestNCFPrefersNarrowest(t *testing.T) {
	wide := New(0, "wide", 0, []Flow{singleFlow(0, 0, 1, 10), singleFlow(1, 2, 1, 10)})
	narrow := New(1, "narrow", 0, []Flow{singleFlow(0, 0, 1, 1000)})
	eg, in := capSlices(3, 1)
	NewNCF().Allocate(0, []*Coflow{wide, narrow}, eg, in)
	if narrow.Flows[0].Rate < 1-1e-9 {
		t.Error("NCF did not prioritise the narrowest coflow")
	}
}

func TestAaloQueueAssignment(t *testing.T) {
	a := NewAalo()
	c := New(0, "q", 0, []Flow{singleFlow(0, 0, 1, 1)})
	if q := a.queueOf(c); q != 0 {
		t.Errorf("fresh coflow queue = %d, want 0", q)
	}
	c.SentBytes = 10e6
	if q := a.queueOf(c); q != 1 {
		t.Errorf("10 MB-sent queue = %d, want 1", q)
	}
	c.SentBytes = 100e6
	if q := a.queueOf(c); q != 2 {
		t.Errorf("100 MB-sent queue = %d, want 2", q)
	}
}

func TestAaloPrioritisesFreshCoflows(t *testing.T) {
	old := New(0, "old", 0, []Flow{singleFlow(0, 0, 1, 1e9)})
	old.SentBytes = 200e6 // deep queue
	fresh := New(1, "fresh", 0, []Flow{singleFlow(0, 0, 1, 1e6)})
	eg, in := capSlices(2, 1)
	NewAalo().Allocate(0, []*Coflow{old, fresh}, eg, in)
	if fresh.Flows[0].Rate < 1-1e-9 {
		t.Errorf("fresh coflow rate = %g, want 1 (D-CLAS priority)", fresh.Flows[0].Rate)
	}
}

func TestPerFlowFairIgnoresCoflows(t *testing.T) {
	a := New(0, "A", 0, []Flow{singleFlow(0, 0, 1, 1e9)})
	b := New(1, "B", 0, []Flow{singleFlow(0, 0, 1, 1)})
	eg, in := capSlices(2, 1)
	PerFlowFair{}.Allocate(0, []*Coflow{a, b}, eg, in)
	if math.Abs(a.Flows[0].Rate-0.5) > 1e-9 || math.Abs(b.Flows[0].Rate-0.5) > 1e-9 {
		t.Errorf("per-flow fair rates = %g, %g; want 0.5 each", a.Flows[0].Rate, b.Flows[0].Rate)
	}
}

func TestSequentialByDestServesLowestDestination(t *testing.T) {
	c := New(0, "s", 0, []Flow{
		singleFlow(0, 0, 2, 10),
		singleFlow(1, 1, 2, 10),
		singleFlow(2, 0, 1, 10),
	})
	eg, in := capSlices(3, 1)
	SequentialByDest{}.Allocate(0, []*Coflow{c}, eg, in)
	// Destination 1 is lowest: only flow 2 (0→1) runs.
	if c.Flows[2].Rate < 1-1e-9 {
		t.Errorf("flow to lowest dest rate = %g, want 1", c.Flows[2].Rate)
	}
	if c.Flows[0].Rate > 1e-9 || c.Flows[1].Rate > 1e-9 {
		t.Errorf("flows to higher dest got rates %g, %g; want 0", c.Flows[0].Rate, c.Flows[1].Rate)
	}
}

func TestAllSchedulersRespectCapacities(t *testing.T) {
	scheds := []Scheduler{NewVarys(), NewFIFO(), NewSCF(), NewNCF(), NewAalo(), PerFlowFair{}, SequentialByDest{}}
	f := func(seed int64, schedIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := scheds[int(schedIdx)%len(scheds)]
		n := 2 + rng.Intn(5)
		var cfs []*Coflow
		for ci := 0; ci < 1+rng.Intn(4); ci++ {
			var flows []Flow
			for i := 0; i < 1+rng.Intn(6); i++ {
				src := rng.Intn(n)
				dst := (src + 1 + rng.Intn(n-1)) % n
				flows = append(flows, singleFlow(i, src, dst, 1+float64(rng.Intn(1000))))
			}
			c := New(ci, "c", float64(rng.Intn(3)), flows)
			c.SentBytes = float64(rng.Intn(2)) * 20e6
			cfs = append(cfs, c)
		}
		eg, in := capSlices(n, 1)
		s.Allocate(0, cfs, eg, in)
		egUse := make([]float64, n)
		inUse := make([]float64, n)
		for _, c := range cfs {
			for _, fl := range c.Flows {
				if fl.Rate < 0 {
					return false
				}
				egUse[fl.Src] += fl.Rate
				inUse[fl.Dst] += fl.Rate
			}
		}
		for p := 0; p < n; p++ {
			if egUse[p] > 1+1e-6 || inUse[p] > 1+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
