package coflow_test

import (
	"fmt"

	"ccf/internal/coflow"
)

// A coflow's bottleneck Γ is the largest per-port byte load; under
// exclusive MADD allocation its minimum CCT is Γ divided by the port
// bandwidth — the quantity SEBF orders by.
func ExampleCoflow_Bottleneck() {
	c := coflow.New(0, "shuffle", 0, []coflow.Flow{
		{ID: 0, Src: 0, Dst: 1, Size: 8},
		{ID: 1, Src: 0, Dst: 2, Size: 4},
		{ID: 2, Src: 2, Dst: 1, Size: 2},
	})
	fmt.Printf("width %d, total %g bytes, bottleneck %g bytes\n",
		c.Width(), c.TotalBytes(), c.Bottleneck(3))
	// Output:
	// width 3, total 14 bytes, bottleneck 12 bytes
}

// Deadline mode admits a coflow only if its finish-at-deadline rates fit
// the capacity left by earlier reservations.
func ExampleNewVarysDeadline() {
	a := coflow.New(0, "a", 0, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 10}})
	a.Deadline = 10 // needs the whole unit port
	b := coflow.New(1, "b", 0, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 5}})
	b.Deadline = 100

	d := coflow.NewVarysDeadline()
	eg := []float64{1, 1}
	in := []float64{1, 1}
	d.Allocate(0, []*coflow.Coflow{a, b}, eg, in)
	fmt.Printf("a admitted: %v, b admitted: %v\n", d.Admitted(0), d.Admitted(1))
	// Output:
	// a admitted: true, b admitted: false
}
