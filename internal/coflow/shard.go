package coflow

// Tier-2 intra-run parallelism: port/flow-sharded variants of the MADD
// rate-allocation and water-filling passes, for fabrics large enough that a
// single scheduling epoch dominates wall time (1024-port fabrics carry up to
// ~10⁶ live flows per epoch).
//
// The contract is the same as the allocation-free refactor's: bit-identical
// results. Every sharded loop is restricted to computations that are exact
// under any split:
//
//   - elementwise per-flow writes (Rate updates, freeze flags): each flow is
//     written by exactly one shard, with the same float expression the serial
//     loop uses;
//   - integer accumulation (per-port flow counts): integer addition is
//     associative, so per-shard counters merged in any order equal the serial
//     count;
//   - max/min reductions (MADD's τ, water-filling's α): max and min over
//     floats are order-independent, so per-shard extrema merged afterwards
//     equal the serial reduction;
//   - per-port capacity updates: the serial loop's effect on one port is a
//     *sequence* of subtractions in flow order, interleaved with other ports'
//     (independent) memory; the sharded code replays exactly that per-port
//     sequence — water-filling subtracts the same α count-many times, MADD
//     applies the stashed per-flow rates serially in flow order.
//
// Float *accumulations* in flow order (demandInto's per-port byte sums, the
// engine's egUse/inUse tally) are NOT shardable without changing rounding,
// so they stay serial; the sharded functions below fall through to the
// untouched serial implementations whenever sharding is off or the pass is
// below the flow threshold. That keeps small fabrics on literally the
// pre-existing code path — and at 0 allocs/op (the sharded path spawns
// goroutines, which allocate; its allocs/op are tracked by a separate
// bench).

import (
	"math"

	"ccf/internal/parallel"
)

// DefaultShardMinFlows is the per-pass flow-count floor below which the
// sharded variants run the serial code even when sharding is enabled: under
// ~4k flows the O(flows) loops cost a few microseconds, comparable to the
// goroutine fan-out itself.
const DefaultShardMinFlows = 4096

// ShardOptions configures intra-epoch sharding for a scheduler. The zero
// value disables it (the serial path).
type ShardOptions struct {
	// Workers is the number of goroutines the sharded passes fan out to;
	// <= 1 disables sharding.
	Workers int
	// MinFlows is the per-pass flow-count floor below which the serial code
	// runs; 0 selects DefaultShardMinFlows. Tests force 1 to exercise the
	// sharded code on small workloads.
	MinFlows int
}

func (o ShardOptions) minFlows() int {
	if o.MinFlows > 0 {
		return o.MinFlows
	}
	return DefaultShardMinFlows
}

// enabled reports whether a pass over n flows should shard.
func (o ShardOptions) enabled(n int) bool {
	return o.Workers > 1 && n >= o.minFlows()
}

// minCoflows derives the coflow-count floor for the passes that shard over
// coflows (priority re-keying, rate resets): their per-item cost is one
// coflow's flow list, so the floor scales down with MinFlows (and tests that
// force MinFlows=1 exercise these passes on handfuls of coflows too).
func (o ShardOptions) minCoflows() int {
	m := o.minFlows() / 64
	if m < 2 {
		m = 2
	}
	return m
}

// ShardTunable is implemented by schedulers whose allocation passes can
// shard. netsim.Simulator propagates its ShardWorkers/ShardMinFlows
// configuration through this interface at the start of every run, so callers
// configure parallelism once on the simulator rather than per scheduler.
type ShardTunable interface {
	// SetShard replaces the scheduler's shard configuration. The zero
	// ShardOptions restores the serial path.
	SetShard(ShardOptions)
}

// SetShard implements ShardTunable.
func (o *orderedMADD) SetShard(opts ShardOptions) { o.shard = opts }

// SetShard implements ShardTunable.
func (a *Aalo) SetShard(opts ShardOptions) { a.shard = opts }

// SetShard implements ShardTunable.
func (d *Deadline) SetShard(opts ShardOptions) { d.shard = opts }

// SetShard implements ShardTunable. Note PerFlowFair is normally used as a
// value; only pointer-held instances (&PerFlowFair{...}) are reachable
// through the interface, but the Shard field works either way.
func (p *PerFlowFair) SetShard(opts ShardOptions) { p.Shard = opts }

// SetShard implements ShardTunable (see PerFlowFair.SetShard).
func (s *SequentialByDest) SetShard(opts ShardOptions) { s.Shard = opts }

// shardScratch is one worker's slice of the sharded passes' state: dense
// per-port counters plus their touched lists (merged into the shared
// allocScratch counters after the parallel section), and small per-shard
// reduction outputs.
type shardScratch struct {
	egCnt, inCnt []int
	egT, inT     []int
	tally        int     // integer reduction output (unfrozen counts)
	extreme      float64 // float max/min reduction output (τ)
	blocked      bool    // MADD: shard saw a needed port with no capacity
}

// ensureShards sizes w shard scratches for a fabric of n ports (grow-only,
// like every other scratch).
func (s *allocScratch) ensureShards(w, n int) {
	if len(s.shards) < w {
		old := s.shards
		s.shards = make([]shardScratch, w)
		copy(s.shards, old)
	}
	for i := range s.shards[:w] {
		sh := &s.shards[i]
		if len(sh.egCnt) < n {
			sh.egCnt = make([]int, n)
			sh.inCnt = make([]int, n)
		}
		if cap(sh.egT) < n {
			sh.egT = make([]int, 0, n)
			sh.inT = make([]int, 0, n)
		}
	}
}

// shardsRun returns how many shards parallel.ForShards actually runs for n
// items under w workers (it clamps workers to n). Merges must stop there:
// shards beyond it carry stale reduction outputs from earlier passes.
func shardsRun(w, n int) int {
	if n < w {
		return n
	}
	return w
}

// resetRatesSharded is resetRates with the coflow loop sharded (elementwise
// writes: each flow's Rate is zeroed by exactly one shard).
func resetRatesSharded(active []*Coflow, shard ShardOptions) {
	if shard.Workers <= 1 || len(active) < shard.minCoflows() {
		resetRates(active)
		return
	}
	parallel.ForShards(shard.Workers, len(active), func(_, lo, hi int) {
		resetRates(active[lo:hi])
	})
}

// rekeyOrder recomputes every coflow's priority key, sharding over coflows
// when configured: keys are per-coflow pure functions of that coflow's state
// (Γ, remaining bytes, arrival, width), so each shard computes them with its
// own allocScratch and the floats are exactly the serial ones.
func (o *orderedMADD) rekeyOrder(ports int) {
	order := o.ord.order
	if o.shard.Workers > 1 && len(order) >= o.shard.minCoflows() {
		w := o.shard.Workers
		if len(o.keyScratch) < w {
			old := o.keyScratch
			o.keyScratch = make([]allocScratch, w)
			for i := range old {
				o.keyScratch[i] = old[i]
			}
		}
		for i := 0; i < w; i++ {
			o.keyScratch[i].ensure(ports)
		}
		parallel.ForShards(w, len(order), func(sh, lo, hi int) {
			s := &o.keyScratch[sh]
			for _, c := range order[lo:hi] {
				c.schedKey = o.key(c, s)
			}
		})
		return
	}
	for _, c := range order {
		c.schedKey = o.key(c, &o.scratch)
	}
}

// maddAllocateSharded is maddAllocate with the τ reduction port-sharded and
// the per-flow division pass flow-sharded. The per-port demand accumulation
// (demandInto) and the capacity deductions are float accumulations in flow
// order, so they stay serial; the sharded division stashes each flow's rate
// so the deduction loop can replay it in exactly the serial order.
func maddAllocateSharded(c *Coflow, egCap, inCap []float64, s *allocScratch, shard ShardOptions) float64 {
	n := len(c.Flows)
	if c.sim.valid {
		n = len(c.sim.live)
	}
	if !shard.enabled(n) {
		return maddAllocate(c, egCap, inCap, s)
	}
	w := shard.Workers
	s.ensureShards(w, len(egCap))
	flows, egPorts, inPorts := c.demandInto(s)

	// τ = max over the coflow's ports of need/capacity; max is exact under
	// any split. A shard that sees a needed port with zero capacity marks
	// blocked (the serial loop breaks early there; the merged result is the
	// same because a blocked coflow's τ is discarded).
	tauOver := func(ports []int, need, cap []float64) {
		parallel.ForShards(w, len(ports), func(sh, lo, hi int) {
			ss := &s.shards[sh]
			tau, blocked := 0.0, false
			for _, p := range ports[lo:hi] {
				if cap[p] <= 0 {
					blocked = true
					break
				}
				if t := need[p] / cap[p]; t > tau {
					tau = t
				}
			}
			ss.extreme, ss.blocked = tau, blocked
		})
	}
	tau, blocked := 0.0, false
	merge := func(nports int) {
		for i := 0; i < shardsRun(w, nports); i++ {
			if s.shards[i].blocked {
				blocked = true
			}
			if s.shards[i].extreme > tau {
				tau = s.shards[i].extreme
			}
		}
	}
	tauOver(egPorts, s.egNeed, egCap)
	merge(len(egPorts))
	if !blocked {
		tauOver(inPorts, s.inNeed, inCap)
		merge(len(inPorts))
	}
	clearDemand(s, egPorts, inPorts)
	if blocked {
		return math.Inf(1)
	}
	if tau == 0 {
		return 0
	}

	// Per-flow rates: the division and the Rate update are elementwise
	// (same expression, one writer per flow); the stash lets the capacity
	// deductions below run serially in flow order — the exact subtraction
	// sequence each port sees in the serial loop.
	if cap(s.rates) < len(flows) {
		s.rates = make([]float64, len(flows))
	}
	rates := s.rates[:len(flows)]
	parallel.ForShards(w, len(flows), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			f := flows[i]
			if f.Done {
				rates[i] = 0
				continue
			}
			r := f.Remaining / tau
			f.Rate += r
			rates[i] = r
		}
	})
	for i, f := range flows {
		if f.Done {
			continue
		}
		egCap[f.Src] -= rates[i]
		inCap[f.Dst] -= rates[i]
	}
	return tau
}

// waterFillSharded is waterFill with every O(flows) pass of each filling
// round sharded:
//
//   - the unfrozen-per-port count: per-shard integer counters merged in
//     shard order (exact);
//   - the α grant to flows: elementwise Rate += α (exact);
//   - the port capacity updates: port-sharded — port p's capacity receives
//     cnt(p) subtractions of the same α, the identical operation sequence
//     the serial interleaved loop applies to that address;
//   - the freeze scan: elementwise reads of the (fully updated) capacities
//     plus per-shard unfrozen tallies merged as integers (exact).
//
// α itself is a min reduction over the touched ports (exact in any order).
func waterFillSharded(flows []*Flow, egCap, inCap []float64, s *allocScratch, shard ShardOptions) {
	if !shard.enabled(len(flows)) {
		waterFill(flows, egCap, inCap, s)
		return
	}
	w := shard.Workers
	nsh := shardsRun(w, len(flows))
	s.ensureShards(w, len(egCap))
	if cap(s.fill) < len(flows) {
		s.fill = make([]fillState, len(flows))
	}
	st := s.fill[:len(flows)]
	parallel.ForShards(w, len(flows), func(sh, lo, hi int) {
		n := 0
		for i := lo; i < hi; i++ {
			st[i].frozen = flows[i].Done
			if !flows[i].Done {
				n++
			}
		}
		s.shards[sh].tally = n
	})
	unfrozen := 0
	for i := 0; i < nsh; i++ {
		unfrozen += s.shards[i].tally
	}
	for unfrozen > 0 {
		// Count unfrozen flows per port into per-shard counters, then merge
		// (integer adds are exact; the touched-list order only feeds the min
		// reduction and the clears, neither of which is order-sensitive).
		parallel.ForShards(w, len(flows), func(sh, lo, hi int) {
			ss := &s.shards[sh]
			egT, inT := ss.egT[:0], ss.inT[:0]
			for i := lo; i < hi; i++ {
				if st[i].frozen {
					continue
				}
				f := flows[i]
				if ss.egCnt[f.Src] == 0 {
					egT = append(egT, f.Src)
				}
				ss.egCnt[f.Src]++
				if ss.inCnt[f.Dst] == 0 {
					inT = append(inT, f.Dst)
				}
				ss.inCnt[f.Dst]++
			}
			ss.egT, ss.inT = egT, inT
		})
		egT, inT := s.egTouched[:0], s.inTouched[:0]
		for i := 0; i < nsh; i++ {
			ss := &s.shards[i]
			for _, p := range ss.egT {
				if s.egCnt[p] == 0 {
					egT = append(egT, p)
				}
				s.egCnt[p] += ss.egCnt[p]
				ss.egCnt[p] = 0
			}
			for _, p := range ss.inT {
				if s.inCnt[p] == 0 {
					inT = append(inT, p)
				}
				s.inCnt[p] += ss.inCnt[p]
				ss.inCnt[p] = 0
			}
		}
		s.egTouched, s.inTouched = egT, inT

		// The common increment is limited by the tightest port (min: exact).
		alpha := math.Inf(1)
		for _, p := range egT {
			if a := egCap[p] / float64(s.egCnt[p]); a < alpha {
				alpha = a
			}
		}
		for _, p := range inT {
			if a := inCap[p] / float64(s.inCnt[p]); a < alpha {
				alpha = a
			}
		}
		if math.IsInf(alpha, 1) || alpha <= 0 {
			// No capacity left anywhere: freeze everyone (mirrors serial).
			for _, p := range egT {
				s.egCnt[p] = 0
			}
			for _, p := range inT {
				s.inCnt[p] = 0
			}
			for i := range st {
				st[i].frozen = true
			}
			break
		}

		// Grant α: flow-sharded Rate updates; port-sharded capacity updates
		// replaying the serial per-port subtraction sequence.
		parallel.ForShards(w, len(flows), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if !st[i].frozen {
					flows[i].Rate += alpha
				}
			}
		})
		parallel.ForShards(w, len(egT), func(_, lo, hi int) {
			for _, p := range egT[lo:hi] {
				v := egCap[p]
				for k := s.egCnt[p]; k > 0; k-- {
					v -= alpha
				}
				egCap[p] = v
			}
		})
		parallel.ForShards(w, len(inT), func(_, lo, hi int) {
			for _, p := range inT[lo:hi] {
				v := inCap[p]
				for k := s.inCnt[p]; k > 0; k-- {
					v -= alpha
				}
				inCap[p] = v
			}
		})
		for _, p := range egT {
			s.egCnt[p] = 0
		}
		for _, p := range inT {
			s.inCnt[p] = 0
		}

		// Freeze flows on saturated ports (reads of the fully-updated
		// capacities; per-shard tallies merge exactly).
		const eps = 1e-12
		parallel.ForShards(w, len(flows), func(sh, lo, hi int) {
			n := 0
			for i := lo; i < hi; i++ {
				if st[i].frozen {
					continue
				}
				f := flows[i]
				if egCap[f.Src] <= eps || inCap[f.Dst] <= eps {
					st[i].frozen = true
				} else {
					n++
				}
			}
			s.shards[sh].tally = n
		})
		newUnfrozen := 0
		for i := 0; i < nsh; i++ {
			newUnfrozen += s.shards[i].tally
		}
		if newUnfrozen == unfrozen {
			// Defensive progress guarantee, identical to the serial path.
			freezeTightest(flows, st, egCap, inCap)
			newUnfrozen = unfrozen - 1
		}
		unfrozen = newUnfrozen
	}
}
