package coflow

// Deadline-aware coflow scheduling — the second half of Varys (SIGCOMM'14):
// besides minimising CCT, Varys guarantees admitted coflows complete within
// their deadlines. A coflow is admitted iff, at arrival, the rates required
// to finish exactly at its deadline fit into the capacity left after all
// earlier reservations; admitted coflows then receive exactly those rates
// (minimum-allocation keeps slack for future arrivals), while rejected and
// best-effort (deadline-less) coflows share the leftovers max-min fairly.

import "math"

// admission state of a coflow within one simulation.
type admission int

const (
	undecided admission = iota
	admitted
	rejected
)

// Deadline is the Varys deadline-mode scheduler. It is stateful (admission
// decisions persist across epochs) and therefore NOT reusable across
// simulator runs — create a fresh instance per Run.
type Deadline struct {
	state map[int]admission

	scratch allocScratch
	ord     orderState
	shard   ShardOptions
}

// NewVarysDeadline returns a fresh deadline-mode scheduler.
func NewVarysDeadline() *Deadline {
	return &Deadline{state: make(map[int]admission)}
}

// Name implements Scheduler.
func (d *Deadline) Name() string { return "varys-deadline" }

// Admitted reports the admission decision for a coflow ID (false for
// rejected, undecided, or unknown IDs).
func (d *Deadline) Admitted(id int) bool { return d.state[id] == admitted }

// PriorityOrder implements Auditable: the arrival-ordered reservation order
// the last Allocate served (admission runs down this list).
func (d *Deadline) PriorityOrder() []*Coflow { return d.ord.order }

// Allocate implements Scheduler. Arrival order is static per coflow, so the
// serving order is re-sorted only when the active-set membership changes.
func (d *Deadline) Allocate(now float64, active []*Coflow, egCap, inCap []float64) {
	resetRatesSharded(active, d.shard)
	d.scratch.ensure(len(egCap))
	if d.ord.sync(active) {
		for _, c := range d.ord.order {
			c.schedKey = c.Arrival
		}
		sortByKey(d.ord.order, false)
	}

	for _, c := range d.ord.order {
		if c.Deadline <= 0 {
			continue // best effort: served by the backfill below
		}
		switch d.state[c.ID] {
		case rejected:
			continue // also backfill-only
		case undecided:
			if d.admit(c, now, egCap, inCap) {
				d.state[c.ID] = admitted
			} else {
				d.state[c.ID] = rejected
				continue
			}
		}
		// Admitted: reserve exactly the finish-at-deadline rates.
		timeLeft := c.Arrival + c.Deadline - now
		if timeLeft <= 0 {
			// Past due (should not happen for truly admitted coflows, but
			// float drift can leave crumbs): drain at full MADD speed.
			maddAllocate(c, egCap, inCap, &d.scratch)
			continue
		}
		for _, f := range c.Flows {
			if f.Done {
				continue
			}
			r := f.Remaining / timeLeft
			// Defensive cap against accumulated float error.
			r = math.Min(r, math.Min(egCap[f.Src], inCap[f.Dst]))
			if r < 0 {
				r = 0
			}
			f.Rate += r
			egCap[f.Src] -= r
			inCap[f.Dst] -= r
		}
	}
	// Leftover capacity serves rejected and best-effort coflows — and
	// opportunistically accelerates everyone (finishing early never breaks
	// a deadline).
	waterFillSharded(activeFlows(active, &d.scratch), egCap, inCap, &d.scratch, d.shard)
}

// CapacityChanged implements CapacityObserver. Losing (or regaining) port
// capacity invalidates every standing admission decision: rates that fit
// before a failure may no longer fit, and a coflow rejected under degraded
// capacity may fit once the port recovers. All decisions revert to
// undecided so the next Allocate re-runs admission against the current
// capacities; coflows past their deadline fail re-admission and fall back
// to best-effort backfill.
func (d *Deadline) CapacityChanged(now float64) {
	for id := range d.state {
		d.state[id] = undecided
	}
}

// admit checks whether finish-at-deadline rates fit the residual capacity.
func (d *Deadline) admit(c *Coflow, now float64, egCap, inCap []float64) bool {
	timeLeft := c.Arrival + c.Deadline - now
	if timeLeft <= 0 {
		return false
	}
	// Accumulate the per-port required rates into the dense scratch, like
	// demandInto but for Remaining/timeLeft.
	s := &d.scratch
	flows := c.Flows
	var egPorts, inPorts []int
	if c.sim.valid {
		flows, egPorts, inPorts = c.sim.live, c.sim.egPorts, c.sim.inPorts
		for _, f := range flows {
			s.egNeed[f.Src] += f.Remaining / timeLeft
			s.inNeed[f.Dst] += f.Remaining / timeLeft
		}
	} else {
		egT, inT := s.egTouched[:0], s.inTouched[:0]
		for _, f := range flows {
			if f.Done {
				continue
			}
			if s.egCnt[f.Src] == 0 {
				egT = append(egT, f.Src)
			}
			s.egCnt[f.Src]++
			s.egNeed[f.Src] += f.Remaining / timeLeft
			if s.inCnt[f.Dst] == 0 {
				inT = append(inT, f.Dst)
			}
			s.inCnt[f.Dst]++
			s.inNeed[f.Dst] += f.Remaining / timeLeft
		}
		s.egTouched, s.inTouched = egT, inT
		egPorts, inPorts = egT, inT
	}
	const tol = 1 + 1e-9
	ok := true
	for _, p := range egPorts {
		if s.egNeed[p] > egCap[p]*tol {
			ok = false
			break
		}
	}
	if ok {
		for _, p := range inPorts {
			if s.inNeed[p] > inCap[p]*tol {
				ok = false
				break
			}
		}
	}
	clearDemand(s, egPorts, inPorts)
	return ok
}

// DeadlineStats summarises deadline outcomes after a simulation: which
// coflows with deadlines completed in time.
type DeadlineStats struct {
	WithDeadline int
	Met          int
	Admitted     int
}

// MetFraction returns Met/WithDeadline (1 when no coflow had a deadline).
func (s DeadlineStats) MetFraction() float64 {
	if s.WithDeadline == 0 {
		return 1
	}
	return float64(s.Met) / float64(s.WithDeadline)
}

// CollectDeadlineStats inspects completed coflows against their deadlines.
// Pass the scheduler to also count admissions; nil is allowed.
func CollectDeadlineStats(coflows []*Coflow, d *Deadline) DeadlineStats {
	var s DeadlineStats
	for _, c := range coflows {
		if c.Deadline <= 0 {
			continue
		}
		s.WithDeadline++
		if c.Completed {
			if cct, err := c.CCT(); err == nil && cct <= c.Deadline*(1+1e-9) {
				s.Met++
			}
		}
		if d != nil && d.Admitted(c.ID) {
			s.Admitted++
		}
	}
	return s
}
