package coflow

import "testing"

func TestAuditablePriorityOrder(t *testing.T) {
	// Every ordered scheduler exposes its serving order through Auditable;
	// after an Allocate the order must reflect the policy (SEBF: smallest
	// bottleneck first), not the input order.
	big := New(0, "big", 0, []Flow{singleFlow(0, 0, 1, 100)})
	small := New(1, "small", 0, []Flow{singleFlow(0, 0, 1, 10)})
	eg, in := capSlices(2, 1)

	s := NewVarys()
	aud, ok := s.(Auditable)
	if !ok {
		t.Fatal("Varys does not implement Auditable")
	}
	s.Allocate(0, []*Coflow{big, small}, eg, in)
	order := aud.PriorityOrder()
	if len(order) != 2 || order[0].ID != small.ID || order[1].ID != big.ID {
		ids := make([]int, len(order))
		for i, c := range order {
			ids[i] = c.ID
		}
		t.Fatalf("Varys priority order = %v, want [1 0] (SEBF)", ids)
	}

	// The other priority-ordered schedulers expose the interface too.
	for _, sc := range []Scheduler{NewFIFO(), NewSCF(), NewNCF(), NewAalo(), NewVarysDeadline()} {
		if _, ok := sc.(Auditable); !ok {
			t.Errorf("%s does not implement Auditable", sc.Name())
		}
	}
	// The order-free allocators have no priority order to audit.
	for _, sc := range []Scheduler{PerFlowFair{}, SequentialByDest{}} {
		if _, ok := sc.(Auditable); ok {
			t.Errorf("%s unexpectedly implements Auditable", sc.Name())
		}
	}
}
