package coflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeadlineAdmitFeasible(t *testing.T) {
	// 10 bytes at cap 1 needs 10 s; a 20 s deadline is admissible and the
	// reservation paces the flow to finish exactly at the deadline
	// (backfill aside — here there is leftover, so the flow may also run
	// faster; check the reserved rate path directly).
	c := New(0, "d", 0, []Flow{singleFlow(0, 0, 1, 10)})
	c.Deadline = 20
	d := NewVarysDeadline()
	eg, in := capSlices(2, 1)
	d.Allocate(0, []*Coflow{c}, eg, in)
	if !d.Admitted(0) {
		t.Fatal("feasible deadline rejected")
	}
	// Reserved 0.5 + backfilled 0.5 = full port.
	if math.Abs(c.Flows[0].Rate-1) > 1e-9 {
		t.Errorf("rate = %g, want 1 (reservation + backfill)", c.Flows[0].Rate)
	}
}

func TestDeadlineRejectInfeasible(t *testing.T) {
	c := New(0, "d", 0, []Flow{singleFlow(0, 0, 1, 100)})
	c.Deadline = 5 // needs rate 20 on a unit port
	d := NewVarysDeadline()
	eg, in := capSlices(2, 1)
	d.Allocate(0, []*Coflow{c}, eg, in)
	if d.Admitted(0) {
		t.Fatal("infeasible deadline admitted")
	}
	// Rejected coflows still progress via backfill (best effort).
	if c.Flows[0].Rate < 1-1e-9 {
		t.Errorf("rejected coflow backfill rate = %g, want 1", c.Flows[0].Rate)
	}
}

func TestDeadlineAdmissionProtectsEarlierReservation(t *testing.T) {
	// A admitted with a tight deadline reserves the whole shared port; B's
	// admission check must then fail even though B alone would fit.
	a := New(0, "a", 0, []Flow{singleFlow(0, 0, 1, 10)})
	a.Deadline = 10 // needs the full unit port
	b := New(1, "b", 0, []Flow{singleFlow(0, 0, 1, 5)})
	b.Deadline = 100
	d := NewVarysDeadline()
	eg, in := capSlices(2, 1)
	d.Allocate(0, []*Coflow{a, b}, eg, in)
	if !d.Admitted(0) {
		t.Fatal("first coflow not admitted")
	}
	if d.Admitted(1) {
		t.Fatal("second coflow admitted despite exhausted reservation")
	}
}

func TestDeadlineEndToEnd(t *testing.T) {
	// Simulated to completion: the admitted coflow meets its deadline, the
	// rejected one finishes late but finishes.
	run := func() (*Deadline, []*Coflow, map[int]float64) {
		a := New(0, "a", 0, []Flow{singleFlow(0, 0, 1, 10)})
		a.Deadline = 12
		b := New(1, "b", 0, []Flow{singleFlow(0, 0, 1, 10)})
		b.Deadline = 13 // alone: fine; after a's reservation: infeasible
		d := NewVarysDeadline()
		cfs := []*Coflow{a, b}
		simulateLocal(t, d, cfs, 2, 1)
		ccts := map[int]float64{}
		for _, c := range cfs {
			cct, err := c.CCT()
			if err != nil {
				t.Fatalf("CCT: %v", err)
			}
			ccts[c.ID] = cct
		}
		return d, cfs, ccts
	}
	d, cfs, ccts := run()
	if !d.Admitted(0) || d.Admitted(1) {
		t.Fatalf("admissions = %v/%v, want a admitted, b rejected", d.Admitted(0), d.Admitted(1))
	}
	if ccts[0] > 12+1e-6 {
		t.Errorf("admitted coflow CCT %g missed its 12 s deadline", ccts[0])
	}
	if !cfs[1].Completed {
		t.Error("rejected coflow never completed (best effort broken)")
	}
	stats := CollectDeadlineStats(cfs, d)
	if stats.WithDeadline != 2 || stats.Admitted != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Met < 1 {
		t.Errorf("met = %d, want at least the admitted coflow", stats.Met)
	}
}

// simulateLocal is a minimal fluid loop so this package's tests do not
// import netsim (which imports coflow).
func simulateLocal(t *testing.T, s Scheduler, cfs []*Coflow, ports int, bw float64) {
	t.Helper()
	for _, c := range cfs {
		for _, f := range c.Flows {
			f.Remaining = f.Size
			f.Done = f.Size <= 0
			f.Rate = 0
		}
		c.Completed = false
		c.SentBytes = 0
	}
	now := 0.0
	for epoch := 0; epoch < 100000; epoch++ {
		var active []*Coflow
		done := true
		for _, c := range cfs {
			allDone := true
			for _, f := range c.Flows {
				if !f.Done {
					allDone = false
					break
				}
			}
			if allDone {
				if !c.Completed {
					c.Completed = true
					c.Completion = now
				}
				continue
			}
			done = false
			if c.Arrival <= now+1e-12 {
				active = append(active, c)
			}
		}
		if done {
			return
		}
		if len(active) == 0 {
			next := math.Inf(1)
			for _, c := range cfs {
				if !c.Completed && c.Arrival > now && c.Arrival < next {
					next = c.Arrival
				}
			}
			now = next
			continue
		}
		eg := make([]float64, ports)
		in := make([]float64, ports)
		for p := range eg {
			eg[p], in[p] = bw, bw
		}
		s.Allocate(now, active, eg, in)
		dt := math.Inf(1)
		for _, c := range active {
			for _, f := range c.Flows {
				if !f.Done && f.Rate > 0 {
					if x := f.Remaining / f.Rate; x < dt {
						dt = x
					}
				}
			}
		}
		for _, c := range cfs {
			if !c.Completed && c.Arrival > now {
				if x := c.Arrival - now; x < dt {
					dt = x
				}
			}
		}
		if math.IsInf(dt, 1) {
			t.Fatal("local simulation stalled")
		}
		now += dt
		for _, c := range active {
			for _, f := range c.Flows {
				if f.Done || f.Rate <= 0 {
					continue
				}
				moved := math.Min(f.Rate*dt, f.Remaining)
				f.Remaining -= moved
				c.SentBytes += moved
				if f.Remaining <= 1e-9 {
					f.Remaining = 0
					f.Done = true
					f.EndTime = now
				}
			}
		}
	}
	t.Fatal("local simulation did not terminate")
}

func TestDeadlineBestEffortCoflows(t *testing.T) {
	// Deadline-less coflows run on leftovers and never block admissions.
	be := New(0, "be", 0, []Flow{singleFlow(0, 0, 1, 1000)})
	dl := New(1, "dl", 0, []Flow{singleFlow(0, 0, 1, 5)})
	dl.Deadline = 10
	d := NewVarysDeadline()
	eg, in := capSlices(2, 1)
	d.Allocate(0, []*Coflow{be, dl}, eg, in)
	if !d.Admitted(1) {
		t.Fatal("deadline coflow blocked by best-effort traffic")
	}
	// dl reserved 0.5; backfill splits the remaining 0.5.
	if dl.Flows[0].Rate < 0.5-1e-9 {
		t.Errorf("deadline coflow rate = %g, want ≥ 0.5", dl.Flows[0].Rate)
	}
	if be.Flows[0].Rate <= 0 {
		t.Error("best-effort coflow starved entirely")
	}
}

func TestDeadlineStatsMetFraction(t *testing.T) {
	if f := (DeadlineStats{}).MetFraction(); f != 1 {
		t.Errorf("empty MetFraction = %g, want 1", f)
	}
	if f := (DeadlineStats{WithDeadline: 4, Met: 3}).MetFraction(); f != 0.75 {
		t.Errorf("MetFraction = %g, want 0.75", f)
	}
}

func TestDeadlineSchedulerCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		var cfs []*Coflow
		for ci := 0; ci < 1+rng.Intn(5); ci++ {
			var flows []Flow
			for i := 0; i < 1+rng.Intn(4); i++ {
				src := rng.Intn(n)
				dst := (src + 1 + rng.Intn(n-1)) % n
				flows = append(flows, singleFlow(i, src, dst, 1+float64(rng.Intn(100))))
			}
			c := New(ci, "c", 0, flows)
			if rng.Intn(2) == 0 {
				c.Deadline = float64(1 + rng.Intn(200))
			}
			cfs = append(cfs, c)
		}
		d := NewVarysDeadline()
		eg, in := capSlices(n, 1)
		d.Allocate(0, cfs, eg, in)
		egUse := make([]float64, n)
		inUse := make([]float64, n)
		for _, c := range cfs {
			for _, fl := range c.Flows {
				if fl.Rate < 0 {
					return false
				}
				egUse[fl.Src] += fl.Rate
				inUse[fl.Dst] += fl.Rate
			}
		}
		for p := 0; p < n; p++ {
			if egUse[p] > 1+1e-6 || inUse[p] > 1+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
