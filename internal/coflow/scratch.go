package coflow

// Allocation-free scratch state for the scheduling hot path.
//
// Every scheduler used to rebuild map[int]float64 demand maps, map[int]int
// fairness counters, and fresh order slices on every epoch — millions of
// heap allocations per simulation. The schedulers now own an allocScratch
// (or borrow one from a pool, for the stateless baselines) whose dense
// per-port buffers are sized once to the fabric and *reset* between uses by
// walking only the ports actually touched. Combined with the per-coflow
// live-flow caches (see Coflow.BeginSim), a steady-state scheduling epoch
// performs zero heap allocations — property-tested to be bit-identical to
// the retained map-based implementation in internal/refsim.

import "sync"

// allocScratch holds the dense per-port buffers one scheduler needs for one
// epoch. All slices are sized to the fabric's port count by ensure and are
// zero/empty between uses (each consumer clears exactly what it touched).
// Not safe for concurrent use.
type allocScratch struct {
	// need accumulates per-port remaining bytes (maddAllocate, Bottleneck
	// keys, deadline admission); cnt counts flows per port (waterFill
	// levels, and doubles as the "port already touched" marker everywhere).
	egNeed, inNeed []float64
	egCnt, inCnt   []int
	// touched lists the ports with a non-zero cnt entry so clearing is
	// O(ports touched), not O(ports).
	egTouched, inTouched []int
	// fill holds waterFill's per-flow freeze state.
	fill []fillState
	// flows and subset are reusable flow-list buffers (activeFlows, and
	// SequentialByDest's destination filter).
	flows, subset []*Flow
	// shards and rates back the Tier-2 sharded passes (see shard.go): one
	// shardScratch per worker for the flow-sharded counting/tally loops, and
	// a per-flow rate stash so maddAllocateSharded can split the parallel
	// division pass from the serial (order-preserving) capacity deductions.
	// Nil until a sharded pass actually runs; the serial path never touches
	// them, which keeps the sub-threshold zero-alloc invariant intact.
	shards []shardScratch
	rates  []float64
}

// ensure sizes the per-port buffers for a fabric of n ports, growing (never
// shrinking) so a scratch can serve fabrics of different sizes in turn.
func (s *allocScratch) ensure(n int) {
	if len(s.egNeed) >= n {
		return
	}
	s.egNeed = make([]float64, n)
	s.inNeed = make([]float64, n)
	s.egCnt = make([]int, n)
	s.inCnt = make([]int, n)
	if cap(s.egTouched) < n {
		s.egTouched = make([]int, 0, n)
		s.inTouched = make([]int, 0, n)
	}
}

// scratchPool serves the stateless value-type schedulers (PerFlowFair,
// SequentialByDest) that cannot own a scratch across calls without an API
// break. Get/Put is allocation-free at steady state.
var scratchPool = sync.Pool{New: func() any { return new(allocScratch) }}

// orderState keeps a scheduler's priority order alive across epochs so the
// full active set is not re-copied (and, for static-key policies, not even
// re-sorted) every epoch.
type orderState struct {
	order []*Coflow // the persistent, sorted serving order
	prev  []*Coflow // last epoch's active set, for membership detection
}

// sync reports whether the active-set membership changed since the previous
// epoch and, if it did, rebuilds both buffers from the current set. The
// comparison is element-wise pointer identity: the simulator compacts its
// active slice in place, so positions shift exactly when membership changes.
func (st *orderState) sync(active []*Coflow) bool {
	if len(st.prev) == len(active) {
		same := true
		for i, c := range active {
			if st.prev[i] != c {
				same = false
				break
			}
		}
		if same {
			return false
		}
	}
	st.prev = append(st.prev[:0], active...)
	st.order = append(st.order[:0], active...)
	return true
}

// keyLess is the shared order predicate: schedKey, then (optionally) arrival,
// then ID. With unique coflow IDs this is a strict total order, so any
// correct sort yields the same unique permutation the original
// sort.SliceStable produced.
func keyLess(a, b *Coflow, tieArrival bool) bool {
	if a.schedKey != b.schedKey {
		return a.schedKey < b.schedKey
	}
	if tieArrival && a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}

// sortByKey insertion-sorts the order buffer by keyLess. Insertion sort is
// deliberate: it allocates nothing (sort.Slice's reflect.Swapper does), and
// the buffer is persistent across epochs, so it is almost always already
// sorted or off by a few drifted keys — the adaptive O(n) case.
func sortByKey(order []*Coflow, tieArrival bool) {
	for i := 1; i < len(order); i++ {
		c := order[i]
		j := i - 1
		for j >= 0 && keyLess(c, order[j], tieArrival) {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = c
	}
}

// insertionSortByArrival stable-sorts coflows by arrival time without
// allocating (the simulator's admission queue; almost always already in
// order). Stable sorts are unique, so the result matches sort.SliceStable.
func insertionSortByArrival(cs []*Coflow) {
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i - 1
		for j >= 0 && c.Arrival < cs[j].Arrival {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = c
	}
}

// InsertionSortByArrival exposes the allocation-free stable arrival sort for
// the simulator's admission queue.
func InsertionSortByArrival(cs []*Coflow) { insertionSortByArrival(cs) }
