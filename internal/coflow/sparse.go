package coflow

// Event-horizon (sparse) allocation: scheduler-side support for the engine
// mode in which per-epoch cost scales with what *changed* since the last
// epoch, not with everything active (DESIGN.md §16).
//
// The contract is the repository's standing one: bit-identical results to
// the dense path. Every shortcut below is a proof-carrying no-op:
//
//   - priority keys are cached per coflow and recomputed only when the
//     engine marked the coflow moved (bytes advanced, a flow completed or
//     was reactivated, a failure voided progress). A clean coflow's key is
//     a pure function of unchanged state, so the cached float is the bit
//     the dense re-key would have produced;
//   - the persistent order is re-sorted only when membership changed or a
//     recomputed key differs from its cached value. Sorting an
//     already-sorted slice is the identity permutation, so skipping it is
//     exact;
//   - a coflow whose port set touches a port with no residual capacity is
//     skipped before demand accumulation: maddAllocate's blocked branch
//     (the early break over the same port sets) has no state effects, so
//     not calling it at all is exact. The last blocking port is memoized,
//     making the re-check O(1) while the port stays saturated;
//   - the work-conserving backfill is skipped whenever any coflow was
//     blocked: that coflow's live flows sit unfrozen on a port with
//     capacity ≤ 0, MADD grants only ever subtract capacity, so
//     water-filling's first level computes α ≤ 0 and freezes everything
//     without granting — a pure no-op on rates and capacities;
//   - rate resets walk only the coflows granted rates by the previous
//     Allocate (writing 0 over 0 is the identity). When the backfill ran,
//     every active coflow was granted, and the reset falls back to the
//     dense pass. Done flows dropped from the live cache may keep a stale
//     Rate that the dense reset would have zeroed; no reader observes done
//     flows' rates (the engine and telemetry iterate live flows only).
//
// The engine's half of the contract: call MarkSimMoved on every coflow
// whose progress state changes, and read SimGranted/LastGrantDense to
// restrict its own flow passes to rate-carrying coflows.

// SparseAllocator is implemented by schedulers that support the
// event-horizon engine mode. netsim.Session enables it only for schedulers
// that implement this interface; everything else keeps the dense loop.
type SparseAllocator interface {
	Scheduler
	// SetSparse toggles sparse allocation. While on, the engine must mark
	// moved coflows (MarkSimMoved); in return, after each Allocate either
	// LastGrantDense reports true or exactly the coflows with SimGranted
	// carry nonzero rates. Off restores the dense path and discards the
	// sparse bookkeeping.
	SetSparse(on bool)
	// LastGrantDense reports whether the last Allocate's backfill granted
	// rates across the whole active set (so the engine must scan every live
	// flow rather than just the granted coflows).
	LastGrantDense() bool
}

// MarkSimMoved records that the coflow's progress state (remaining bytes,
// live-flow set, or sent bytes) changed, invalidating any cached priority
// key. The event engine calls it in sparse mode; it is harmless elsewhere.
func (c *Coflow) MarkSimMoved() { c.sim.moved = true }

// SimGranted reports whether the last sparse Allocate granted this coflow
// nonzero rates. Meaningful only between sparse Allocate calls.
func (c *Coflow) SimGranted() bool { return c.sim.granted }

// blockedOn reports whether maddAllocate would find one of the coflow's
// ports with no residual capacity — exactly its blocked condition, computed
// over the same cached port sets — without touching scratch state. The
// blocking port is memoized (validated against the live port counts, since
// completions can drop a port from the set) so steady-state re-checks of a
// still-blocked coflow cost O(1).
func (c *Coflow) blockedOn(egCap, inCap []float64) bool {
	if h := c.sim.blockEg; h >= 0 && c.sim.egCnt[h] > 0 && egCap[h] <= 0 {
		return true
	}
	if h := c.sim.blockIn; h >= 0 && c.sim.inCnt[h] > 0 && inCap[h] <= 0 {
		return true
	}
	for _, p := range c.sim.egPorts {
		if egCap[p] <= 0 {
			c.sim.blockEg = p
			return true
		}
	}
	for _, p := range c.sim.inPorts {
		if inCap[p] <= 0 {
			c.sim.blockIn = p
			return true
		}
	}
	return false
}

// sparseState is the per-scheduler half of the event-horizon bookkeeping:
// the coflows granted rates by the last Allocate (for the O(granted) rate
// reset) and whether the backfill went dense.
type sparseState struct {
	on      bool
	granted []*Coflow
	dense   bool
}

// reset zeroes the rates the previous Allocate assigned: the granted
// coflows' live flows, or the dense reset when the backfill granted
// everywhere. Identical to resetRates where observable — flows outside the
// granted set already carry rate 0 (writing 0 over 0 is the identity).
func (sp *sparseState) reset(active []*Coflow, shard ShardOptions) {
	if sp.dense {
		sp.dense = false
		resetRatesSharded(active, shard)
		for _, c := range sp.granted {
			c.sim.granted = false
		}
	} else {
		for _, c := range sp.granted {
			c.sim.granted = false
			for _, f := range c.sim.live {
				f.Rate = 0
			}
		}
	}
	sp.granted = sp.granted[:0]
}

// set toggles sparse mode, discarding stale grant state on any transition.
func (sp *sparseState) set(on bool) {
	sp.on = on
	sp.dense = false
	sp.granted = sp.granted[:0]
}

// serve runs the MADD pass over the priority order with the blocked-coflow
// skip, recording grants. Returns whether any coflow was blocked (which
// makes the work-conserving backfill a guaranteed no-op; see file comment).
func (sp *sparseState) serve(order []*Coflow, egCap, inCap []float64, s *allocScratch, shard ShardOptions) (anyBlocked bool) {
	for _, c := range order {
		if c.blockedOn(egCap, inCap) {
			anyBlocked = true
			continue
		}
		maddAllocateSharded(c, egCap, inCap, s, shard)
		c.sim.granted = true
		sp.granted = append(sp.granted, c)
	}
	return anyBlocked
}

// SetSparse implements SparseAllocator.
func (o *orderedMADD) SetSparse(on bool) { o.sparse.set(on) }

// LastGrantDense implements SparseAllocator.
func (o *orderedMADD) LastGrantDense() bool { return o.sparse.dense }

// allocateSparse is the event-horizon variant of orderedMADD.Allocate:
// same epoch structure, with the re-key restricted to moved coflows, the
// sort to changed keys, the MADD pass skipping blocked coflows, and the
// backfill skipped when provably a no-op.
func (o *orderedMADD) allocateSparse(active []*Coflow, egCap, inCap []float64) {
	o.sparse.reset(active, o.shard)
	o.scratch.ensure(len(egCap))
	memb := o.ord.sync(active)
	if memb || o.dynamic {
		changed := memb
		for _, c := range o.ord.order {
			if c.sim.keyed && !c.sim.moved {
				continue
			}
			k := o.key(c, &o.scratch)
			c.sim.moved, c.sim.keyed = false, true
			if k != c.schedKey {
				c.schedKey = k
				changed = true
			}
		}
		if changed {
			sortByKey(o.ord.order, false)
		}
	}
	anyBlocked := o.sparse.serve(o.ord.order, egCap, inCap, &o.scratch, o.shard)
	if o.backfill && !anyBlocked {
		waterFillSharded(activeFlows(active, &o.scratch), egCap, inCap, &o.scratch, o.shard)
		o.sparse.dense = true
	}
}

// SetSparse implements SparseAllocator.
func (a *Aalo) SetSparse(on bool) { a.sparse.set(on) }

// LastGrantDense implements SparseAllocator.
func (a *Aalo) LastGrantDense() bool { return a.sparse.dense }

// allocateSparse is the event-horizon variant of Aalo.Allocate: the D-CLAS
// queue index of a coflow whose SentBytes did not change is recomputed from
// its cached value, and the rest follows orderedMADD.allocateSparse.
func (a *Aalo) allocateSparse(active []*Coflow, egCap, inCap []float64) {
	a.sparse.reset(active, a.shard)
	a.scratch.ensure(len(egCap))
	resort := a.ord.sync(active)
	for _, c := range a.ord.order {
		if c.sim.keyed && !c.sim.moved {
			continue
		}
		q := float64(a.queueOf(c))
		c.sim.moved, c.sim.keyed = false, true
		if q != c.schedKey {
			c.schedKey = q
			resort = true
		}
	}
	if resort {
		sortByKey(a.ord.order, true)
	}
	anyBlocked := a.sparse.serve(a.ord.order, egCap, inCap, &a.scratch, a.shard)
	if !anyBlocked {
		waterFillSharded(activeFlows(active, &a.scratch), egCap, inCap, &a.scratch, a.shard)
		a.sparse.dense = true
	}
}

// EffectiveWeight returns the coflow's weight with the zero value mapped to
// the default weight 1 (see the Weight field).
func (c *Coflow) EffectiveWeight() float64 {
	if c.Weight > 0 {
		return c.Weight
	}
	return 1
}
