// Package coflow implements the coflow abstraction of Chowdhury & Stoica
// (HotNets'12) and the schedulers the paper builds on: a coflow is a group
// of parallel flows sharing a performance goal, and the metric of interest
// is the coflow completion time (CCT) — the finish time of the slowest flow
// — rather than any individual flow's completion.
//
// Flows are modelled at the fluid level over the non-blocking switch of
// Varys: each of the n machines has one ingress and one egress port of equal
// capacity, and contention happens only at ports. Schedulers assign rates;
// the event engine in internal/netsim advances time between completions.
//
// The scheduling epoch is the hottest path in the repository (every figure
// of the paper is millions of epochs), so the schedulers are allocation-free
// at steady state: dense per-port scratch buffers instead of per-epoch maps
// (see allocScratch), per-coflow live-flow caches maintained incrementally
// as flows complete (see Coflow.BeginSim), and persistent priority orders
// that are only re-sorted when membership or keys change. The pre-optimized
// implementation is retained in internal/refsim and the two are pinned
// bit-identical by the equivalence tests in internal/netsim.
package coflow

import (
	"fmt"
	"math"
)

// Flow is one point-to-point transfer within a coflow, the 3-tuple
// [src, dst, volume] of the paper plus simulation state.
type Flow struct {
	ID     int
	Coflow *Coflow
	Src    int     // egress port index
	Dst    int     // ingress port index
	Size   float64 // bytes

	Remaining float64 // bytes left to transfer
	Rate      float64 // current rate, bytes/sec; set by schedulers
	Done      bool
	EndTime   float64 // simulation time the flow finished (valid once Done)
}

// Coflow is a set of parallel flows released together (the paper assumes
// all flows of an operator's shuffle start at the same time; the engine
// also supports staggered arrivals for the online schedulers).
type Coflow struct {
	ID      int
	Name    string
	Arrival float64 // seconds
	// Deadline, when positive, is the completion target in seconds
	// relative to Arrival; the Varys deadline-mode scheduler admits or
	// rejects based on it. Zero means best-effort.
	Deadline float64
	// Weight scales this coflow's contribution to weighted completion-time
	// metrics (Report.WeightedAvgCCT and the weighted-CCT schedulers built on
	// it). Zero means the default weight 1, so every existing construction
	// path keeps its outputs byte-identical.
	Weight float64
	Flows  []*Flow

	// SentBytes accumulates bytes transferred so far; Aalo's D-CLAS uses it
	// to infer priority without prior knowledge.
	SentBytes float64
	// Completion is the CCT end time (valid once Completed).
	Completion float64
	Completed  bool

	// sim is the live-flow cache maintained by the event engine between
	// BeginSim and the end of a run; see BeginSim for the contract.
	sim simCache
	// schedKey is the current priority key (Γ for SEBF, remaining bytes
	// for SCF, queue index for Aalo, ...). It is owned by whichever
	// scheduler is driving this coflow; schedulers must not interleave
	// Allocate calls over the same coflows.
	schedKey float64
}

// simCache caches which flows of a coflow are still moving bytes and which
// ports they touch, so schedulers don't rescan (and the old map-based paths
// don't re-hash) the full flow list every epoch. egPorts/inPorts hold
// exactly the ports with at least one live flow — the key sets of the demand
// maps this replaced — and egCnt/inCnt the per-port live-flow counts that
// make completion updates O(1) per flow.
type simCache struct {
	valid            bool
	live             []*Flow // non-done flows, preserving Flows order
	egPorts, inPorts []int   // ports with ≥1 live flow (unordered)
	egCnt, inCnt     []int   // per-port live-flow counts, len ≥ fabric ports

	// Sparse-mode (event-horizon) bookkeeping; see sparse.go. moved marks
	// that the coflow's progress state changed since its priority key was
	// last computed; keyed marks schedKey as a valid cache of that key;
	// granted marks that the last sparse Allocate assigned this coflow
	// nonzero rates; blockEg/blockIn memoize the last port the coflow was
	// found blocked on (-1 when none), so re-checking a still-blocked coflow
	// is O(1) instead of O(ports touched).
	moved, keyed, granted bool
	blockEg, blockIn      int
}

// BeginSim (re)builds the live-flow cache for a simulation over a fabric of
// the given port count. The event engine calls it once per run after
// resetting flow state; from then on the cache is kept consistent by calling
// RefreshSim after marking flows Done. Code that flips Flow.Done by hand
// without RefreshSim invalidates the cache — the schedulers fall back to
// scanning Flows only for coflows that never entered a simulation.
func (c *Coflow) BeginSim(ports int) {
	c.sim.valid = true
	c.sim.moved = true
	c.sim.keyed = false
	c.sim.granted = false
	c.sim.blockEg, c.sim.blockIn = -1, -1
	c.sim.live = c.sim.live[:0]
	c.sim.egPorts = c.sim.egPorts[:0]
	c.sim.inPorts = c.sim.inPorts[:0]
	if len(c.sim.egCnt) < ports {
		c.sim.egCnt = make([]int, ports)
		c.sim.inCnt = make([]int, ports)
	} else {
		for i := range c.sim.egCnt {
			c.sim.egCnt[i] = 0
			c.sim.inCnt[i] = 0
		}
	}
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		c.sim.live = append(c.sim.live, f)
		if c.sim.egCnt[f.Src] == 0 {
			c.sim.egPorts = append(c.sim.egPorts, f.Src)
		}
		c.sim.egCnt[f.Src]++
		if c.sim.inCnt[f.Dst] == 0 {
			c.sim.inPorts = append(c.sim.inPorts, f.Dst)
		}
		c.sim.inCnt[f.Dst]++
	}
}

// RefreshSim drops flows that completed since the last refresh from the
// live-flow cache, updating the per-port counts and port sets incrementally.
// Batched by design: the engine calls it once per coflow per epoch (only for
// coflows that had completions), so a burst of simultaneous completions
// costs one compaction pass, not one per flow.
func (c *Coflow) RefreshSim() {
	if !c.sim.valid {
		return
	}
	w := 0
	for _, f := range c.sim.live {
		if !f.Done {
			c.sim.live[w] = f
			w++
			continue
		}
		c.sim.egCnt[f.Src]--
		if c.sim.egCnt[f.Src] == 0 {
			c.sim.egPorts = removePort(c.sim.egPorts, f.Src)
		}
		c.sim.inCnt[f.Dst]--
		if c.sim.inCnt[f.Dst] == 0 {
			c.sim.inPorts = removePort(c.sim.inPorts, f.Dst)
		}
	}
	c.sim.live = c.sim.live[:w]
}

// Reactivate re-enters a previously-Done flow of this coflow into the
// live-flow cache, used by the failure model when a retransmission policy
// voids already-delivered bytes. The caller must reset the flow's progress
// state (Done, Remaining, Rate) before calling; Reactivate only repairs the
// cache: it re-appends the flow to the live list and restores the per-port
// counts and port sets. Appending (rather than re-sorting into Flows order)
// is deliberate — live-flow order never affects scheduler results, and the
// equivalence-pinned fault-free paths never call Reactivate.
func (c *Coflow) Reactivate(f *Flow) {
	if !c.sim.valid {
		return
	}
	c.sim.moved = true
	c.sim.live = append(c.sim.live, f)
	if c.sim.egCnt[f.Src] == 0 {
		c.sim.egPorts = append(c.sim.egPorts, f.Src)
	}
	c.sim.egCnt[f.Src]++
	if c.sim.inCnt[f.Dst] == 0 {
		c.sim.inPorts = append(c.sim.inPorts, f.Dst)
	}
	c.sim.inCnt[f.Dst]++
}

// CapacityObserver is implemented by schedulers that cache decisions which
// depend on fabric capacity (e.g. deadline admission control). The event
// engine notifies observers when a port fails or recovers — not on plain
// CapacityEvent rescales, whose behavior predates the failure model and is
// pinned by the refsim equivalence suite.
type CapacityObserver interface {
	// CapacityChanged reports that port capacities changed at time now in
	// a way the scheduler may want to re-evaluate cached state for.
	CapacityChanged(now float64)
}

// Auditable is implemented by schedulers that maintain an explicit serving
// order (Varys/SEBF, FIFO, SCF, NCF, Aalo's D-CLAS queues, deadline mode).
// Telemetry probes use it to snapshot the decision the scheduler just made —
// which coflow is being served first and why a later one is starved.
type Auditable interface {
	// PriorityOrder returns the current serving order, highest priority
	// first. The slice is owned by the scheduler: read-only, valid only
	// until the next Allocate, and must be copied if retained. It reflects
	// the order used by the most recent Allocate call.
	PriorityOrder() []*Coflow
}

// removePort swap-removes p from the port set. Port-set order never affects
// results (it feeds max/min reductions and existence checks only).
func removePort(ports []int, p int) []int {
	for i, q := range ports {
		if q == p {
			ports[i] = ports[len(ports)-1]
			return ports[:len(ports)-1]
		}
	}
	return ports
}

// LiveFlows returns the cached non-done flows in Flows order, or nil when no
// simulation cache is active. The returned slice is owned by the coflow:
// read-only, and invalidated by the next RefreshSim.
func (c *Coflow) LiveFlows() []*Flow {
	if !c.sim.valid {
		return nil
	}
	return c.sim.live
}

// Finished reports whether every flow of the coflow is done. O(1) under an
// active simulation cache, O(flows) otherwise.
func (c *Coflow) Finished() bool {
	if c.sim.valid {
		return len(c.sim.live) == 0
	}
	for _, f := range c.Flows {
		if !f.Done {
			return false
		}
	}
	return true
}

// New builds a coflow from flow volumes. Zero-size flows are dropped.
func New(id int, name string, arrival float64, flows []Flow) *Coflow {
	c := &Coflow{ID: id, Name: name, Arrival: arrival}
	for i := range flows {
		f := flows[i]
		if f.Size <= 0 {
			continue
		}
		nf := &Flow{ID: f.ID, Coflow: c, Src: f.Src, Dst: f.Dst, Size: f.Size, Remaining: f.Size}
		c.Flows = append(c.Flows, nf)
	}
	return c
}

// FromVolumes builds a coflow from an n×n volume matrix (bytes from i to j,
// row-major), skipping the diagonal and zero entries.
func FromVolumes(id int, name string, arrival float64, n int, vol []int64) (*Coflow, error) {
	if len(vol) != n*n {
		return nil, fmt.Errorf("coflow: volume matrix has %d entries, want %d", len(vol), n*n)
	}
	c := &Coflow{ID: id, Name: name, Arrival: arrival}
	fid := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := vol[i*n+j]
			if i == j || v <= 0 {
				continue
			}
			c.Flows = append(c.Flows, &Flow{
				ID: fid, Coflow: c, Src: i, Dst: j,
				Size: float64(v), Remaining: float64(v),
			})
			fid++
		}
	}
	return c, nil
}

// TotalBytes returns the sum of flow sizes.
func (c *Coflow) TotalBytes() float64 {
	var s float64
	for _, f := range c.Flows {
		s += f.Size
	}
	return s
}

// RemainingBytes returns the bytes the coflow still has to move.
func (c *Coflow) RemainingBytes() float64 {
	var s float64
	for _, f := range c.Flows {
		if !f.Done {
			s += f.Remaining
		}
	}
	return s
}

// Width returns the number of flows (Aalo/NCF use it).
func (c *Coflow) Width() int { return len(c.Flows) }

// Bottleneck returns Γ, the maximum over ports of the coflow's remaining
// bytes traversing that port. Under exclusive use of the fabric with port
// capacity R, the minimum CCT is Γ/R — the quantity SEBF orders by and the
// bandwidth model of the paper's model (1.2).
func (c *Coflow) Bottleneck(n int) float64 {
	eg := make([]float64, n)
	in := make([]float64, n)
	var g float64
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		eg[f.Src] += f.Remaining
		in[f.Dst] += f.Remaining
		if eg[f.Src] > g {
			g = eg[f.Src]
		}
		if in[f.Dst] > g {
			g = in[f.Dst]
		}
	}
	return g
}

// bottleneckScratch computes the same Γ as Bottleneck without allocating:
// per-port sums accumulate in dense scratch (in the same flow order, so the
// floats round identically) and the max over final per-port sums equals the
// running max over prefix sums because remaining bytes are non-negative.
func (c *Coflow) bottleneckScratch(s *allocScratch) float64 {
	flows, egPorts, inPorts := c.demandInto(s)
	_ = flows
	var g float64
	for _, p := range egPorts {
		if s.egNeed[p] > g {
			g = s.egNeed[p]
		}
	}
	for _, p := range inPorts {
		if s.inNeed[p] > g {
			g = s.inNeed[p]
		}
	}
	clearDemand(s, egPorts, inPorts)
	return g
}

// demandInto accumulates the coflow's per-port remaining-byte demand into
// the dense scratch buffers and returns the live flows plus the touched port
// sets. With an active sim cache the port sets come straight from the cache
// (exactly the key sets the old demand maps had); otherwise they are
// discovered with the scratch counters. Callers must clearDemand the
// returned port sets before the scratch is used again.
func (c *Coflow) demandInto(s *allocScratch) (flows []*Flow, egPorts, inPorts []int) {
	if c.sim.valid {
		for _, f := range c.sim.live {
			s.egNeed[f.Src] += f.Remaining
			s.inNeed[f.Dst] += f.Remaining
		}
		return c.sim.live, c.sim.egPorts, c.sim.inPorts
	}
	egT, inT := s.egTouched[:0], s.inTouched[:0]
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		if s.egCnt[f.Src] == 0 {
			egT = append(egT, f.Src)
		}
		s.egCnt[f.Src]++
		s.egNeed[f.Src] += f.Remaining
		if s.inCnt[f.Dst] == 0 {
			inT = append(inT, f.Dst)
		}
		s.inCnt[f.Dst]++
		s.inNeed[f.Dst] += f.Remaining
	}
	s.egTouched, s.inTouched = egT, inT
	return c.Flows, egT, inT
}

// clearDemand zeroes exactly the scratch entries demandInto touched.
func clearDemand(s *allocScratch, egPorts, inPorts []int) {
	for _, p := range egPorts {
		s.egNeed[p] = 0
		s.egCnt[p] = 0
	}
	for _, p := range inPorts {
		s.inNeed[p] = 0
		s.inCnt[p] = 0
	}
}

// CCT returns the coflow completion time (relative to arrival). Asking for
// the CCT of a coflow that has not completed is an error, not a panic, so
// engines that hit an inconsistent state can propagate it.
func (c *Coflow) CCT() (float64, error) {
	if !c.Completed {
		return 0, fmt.Errorf("coflow: CCT of incomplete coflow %d (%s)", c.ID, c.Name)
	}
	return c.Completion - c.Arrival, nil
}

// Scheduler assigns rates to the active flows each scheduling epoch.
//
// egCap/inCap hold the per-port capacities (bytes/sec) the scheduler may
// hand out this epoch; implementations must ensure the sum of rates over
// each egress/ingress port does not exceed the respective capacity. Every
// scheduler here is work-conserving up to its policy: it should leave a
// port idle only when no active flow can use it.
type Scheduler interface {
	Name() string
	// Allocate sets Rate on every non-done flow of the active coflows
	// (flows it declines to serve must get rate 0, not stale values).
	Allocate(now float64, active []*Coflow, egCap, inCap []float64)
}

// ---------------------------------------------------------------------------
// Allocation helpers shared by the schedulers.
// ---------------------------------------------------------------------------

// resetRates zeroes all rates so schedulers start from a clean slate.
func resetRates(active []*Coflow) {
	for _, c := range active {
		for _, f := range c.Flows {
			f.Rate = 0
		}
	}
}

// maddAllocate implements Varys' Minimum Allocation for Desired Duration:
// the coflow's flows all finish together at τ = max over its ports of
// remaining/capacity, so flow f gets rate remaining_f/τ. Rates are deducted
// from the residual capacities. Returns the τ achieved (+Inf if a needed
// port has no capacity, in which case no rates are assigned).
func maddAllocate(c *Coflow, egCap, inCap []float64, s *allocScratch) float64 {
	flows, egPorts, inPorts := c.demandInto(s)
	tau := 0.0
	blocked := false
	for _, p := range egPorts {
		if egCap[p] <= 0 {
			blocked = true
			break
		}
		if t := s.egNeed[p] / egCap[p]; t > tau {
			tau = t
		}
	}
	if !blocked {
		for _, p := range inPorts {
			if inCap[p] <= 0 {
				blocked = true
				break
			}
			if t := s.inNeed[p] / inCap[p]; t > tau {
				tau = t
			}
		}
	}
	clearDemand(s, egPorts, inPorts)
	if blocked {
		return math.Inf(1)
	}
	if tau == 0 {
		return 0
	}
	for _, f := range flows {
		if f.Done {
			continue
		}
		r := f.Remaining / tau
		f.Rate += r
		egCap[f.Src] -= r
		inCap[f.Dst] -= r
	}
	return tau
}

// waterFill distributes the residual capacity max-min fairly across the
// given flows (progressive filling). Rates are added on top of any rates
// already assigned and deducted from the capacities.
func waterFill(flows []*Flow, egCap, inCap []float64, s *allocScratch) {
	if cap(s.fill) < len(flows) {
		s.fill = make([]fillState, len(flows))
	}
	st := s.fill[:len(flows)]
	unfrozen := 0
	for i, f := range flows {
		st[i].frozen = f.Done
		if !f.Done {
			unfrozen++
		}
	}
	for unfrozen > 0 {
		// Count unfrozen flows per port (dense counters; the touched
		// lists make the clear O(ports in use)).
		egT, inT := s.egTouched[:0], s.inTouched[:0]
		for i, f := range flows {
			if st[i].frozen {
				continue
			}
			if s.egCnt[f.Src] == 0 {
				egT = append(egT, f.Src)
			}
			s.egCnt[f.Src]++
			if s.inCnt[f.Dst] == 0 {
				inT = append(inT, f.Dst)
			}
			s.inCnt[f.Dst]++
		}
		// The common increment is limited by the tightest port.
		alpha := math.Inf(1)
		for _, p := range egT {
			if a := egCap[p] / float64(s.egCnt[p]); a < alpha {
				alpha = a
			}
		}
		for _, p := range inT {
			if a := inCap[p] / float64(s.inCnt[p]); a < alpha {
				alpha = a
			}
		}
		for _, p := range egT {
			s.egCnt[p] = 0
		}
		for _, p := range inT {
			s.inCnt[p] = 0
		}
		s.egTouched, s.inTouched = egT, inT
		if math.IsInf(alpha, 1) || alpha <= 0 {
			// No capacity left anywhere: freeze everyone.
			for i := range st {
				st[i].frozen = true
			}
			break
		}
		// Grant alpha to every unfrozen flow.
		for i, f := range flows {
			if st[i].frozen {
				continue
			}
			f.Rate += alpha
			egCap[f.Src] -= alpha
			inCap[f.Dst] -= alpha
		}
		// Freeze flows on saturated ports.
		const eps = 1e-12
		newUnfrozen := 0
		for i, f := range flows {
			if st[i].frozen {
				continue
			}
			if egCap[f.Src] <= eps || inCap[f.Dst] <= eps {
				st[i].frozen = true
			} else {
				newUnfrozen++
			}
		}
		if newUnfrozen == unfrozen {
			// Defensive: guarantee progress even with degenerate float
			// behaviour by freezing the flow on the fullest port.
			freezeTightest(flows, st, egCap, inCap)
			newUnfrozen = unfrozen - 1
		}
		unfrozen = newUnfrozen
	}
}

// fillState tracks per-flow water-filling progress.
type fillState struct{ frozen bool }

func freezeTightest(flows []*Flow, st []fillState, egCap, inCap []float64) {
	best, bestCap := -1, math.Inf(1)
	for i, f := range flows {
		if st[i].frozen {
			continue
		}
		c := math.Min(egCap[f.Src], inCap[f.Dst])
		if c < bestCap {
			best, bestCap = i, c
		}
	}
	if best >= 0 {
		st[best].frozen = true
	}
}

// activeFlows flattens the non-done flows of the active coflows into the
// scratch flow buffer, preserving (coflow, flow) order.
func activeFlows(active []*Coflow, s *allocScratch) []*Flow {
	out := s.flows[:0]
	for _, c := range active {
		if c.sim.valid {
			out = append(out, c.sim.live...)
			continue
		}
		for _, f := range c.Flows {
			if !f.Done {
				out = append(out, f)
			}
		}
	}
	s.flows = out
	return out
}

// ---------------------------------------------------------------------------
// Schedulers.
// ---------------------------------------------------------------------------

// orderedMADD is the shared engine of the priority-ordered schedulers: it
// serves coflows in priority order, giving each MADD rates from the residual
// capacity, then backfills leftovers max-min fairly across all remaining
// flows (work conservation, as in Varys).
//
// The serving order persists across epochs. Policies with static keys
// (arrival time, width) re-sort only when the active-set membership changes;
// dynamic policies (Γ, remaining bytes) recompute keys once per epoch — not
// once per comparison, as the pre-optimized code did — and rely on the
// adaptive insertion sort to exploit the near-sorted order.
type orderedMADD struct {
	name string
	// key computes the coflow's priority (smaller serves first; ties break
	// by coflow ID).
	key func(c *Coflow, s *allocScratch) float64
	// dynamic marks keys that drift as bytes move, forcing a per-epoch
	// re-key + re-sort even with unchanged membership.
	dynamic  bool
	backfill bool

	scratch allocScratch
	ord     orderState
	// shard configures the Tier-2 intra-epoch parallelism (see shard.go);
	// the zero value keeps every pass on the serial code path.
	shard ShardOptions
	// keyScratch holds one allocScratch per shard worker for the parallel
	// re-key pass (key functions need private demand buffers). Nil until
	// sharded re-keying actually runs.
	keyScratch []allocScratch
	// sparse holds the event-horizon bookkeeping (see sparse.go); its zero
	// value keeps Allocate on the dense path above.
	sparse sparseState
}

func (o *orderedMADD) Name() string { return o.name }

// PriorityOrder implements Auditable: the persistent serving order the last
// Allocate used (SEBF's Γ order, FIFO's arrival order, ...).
func (o *orderedMADD) PriorityOrder() []*Coflow { return o.ord.order }

func (o *orderedMADD) Allocate(_ float64, active []*Coflow, egCap, inCap []float64) {
	if o.sparse.on {
		o.allocateSparse(active, egCap, inCap)
		return
	}
	resetRatesSharded(active, o.shard)
	o.scratch.ensure(len(egCap))
	if o.ord.sync(active) || o.dynamic {
		o.rekeyOrder(len(egCap))
		sortByKey(o.ord.order, false)
	}
	for _, c := range o.ord.order {
		maddAllocateSharded(c, egCap, inCap, &o.scratch, o.shard)
	}
	if o.backfill {
		waterFillSharded(activeFlows(active, &o.scratch), egCap, inCap, &o.scratch, o.shard)
	}
}

// NewVarys returns the Varys scheduler: Smallest Effective Bottleneck First
// ordering with MADD allocation and work-conserving backfill (SIGCOMM'14).
func NewVarys() Scheduler {
	return &orderedMADD{
		name:     "varys-sebf",
		key:      func(c *Coflow, s *allocScratch) float64 { return c.bottleneckScratch(s) },
		dynamic:  true,
		backfill: true,
	}
}

// NewFIFO returns first-come-first-served coflow scheduling with MADD rates,
// ties by ID. FIFO-LM of Qiu et al. without the multiplexing.
func NewFIFO() Scheduler {
	return &orderedMADD{
		name:     "fifo",
		key:      func(c *Coflow, _ *allocScratch) float64 { return c.Arrival },
		backfill: true,
	}
}

// NewSCF returns Smallest (remaining) Coflow First — the size-based
// counterpart of SEBF.
func NewSCF() Scheduler {
	return &orderedMADD{
		name: "scf",
		key: func(c *Coflow, _ *allocScratch) float64 {
			if c.sim.valid {
				var r float64
				for _, f := range c.sim.live {
					r += f.Remaining
				}
				return r
			}
			return c.RemainingBytes()
		},
		dynamic:  true,
		backfill: true,
	}
}

// NewNCF returns Narrowest Coflow First (fewest flows first).
func NewNCF() Scheduler {
	return &orderedMADD{
		name:     "ncf",
		key:      func(c *Coflow, _ *allocScratch) float64 { return float64(len(c.Flows)) },
		backfill: true,
	}
}

// Aalo approximates the D-CLAS discretized priority queues of Aalo
// (SIGCOMM'15): coflows are binned by bytes sent so far into queues with
// geometrically growing thresholds; lower queues get strict priority,
// FIFO within a queue, MADD rates, leftover capacity backfilled.
type Aalo struct {
	// FirstThreshold is queue 0's upper bound in bytes (Aalo default 10 MB).
	FirstThreshold float64
	// Multiplier grows thresholds geometrically (Aalo default 10).
	Multiplier float64

	scratch allocScratch
	ord     orderState
	shard   ShardOptions
	sparse  sparseState
}

// NewAalo returns an Aalo scheduler with the paper defaults.
func NewAalo() *Aalo { return &Aalo{FirstThreshold: 10e6, Multiplier: 10} }

// Name implements Scheduler.
func (a *Aalo) Name() string { return "aalo-dclas" }

// PriorityOrder implements Auditable: the D-CLAS queue order (queue index,
// then arrival, then ID) the last Allocate served.
func (a *Aalo) PriorityOrder() []*Coflow { return a.ord.order }

// queueOf returns the priority queue index for a coflow.
func (a *Aalo) queueOf(c *Coflow) int {
	q := 0
	th := a.FirstThreshold
	for c.SentBytes >= th && q < 32 {
		th *= a.Multiplier
		q++
	}
	return q
}

// Allocate implements Scheduler. The queue order persists across epochs and
// is re-sorted only when membership changes or a coflow crosses a queue
// threshold (queue index, then arrival, then ID is a strict total order).
func (a *Aalo) Allocate(_ float64, active []*Coflow, egCap, inCap []float64) {
	if a.sparse.on {
		a.allocateSparse(active, egCap, inCap)
		return
	}
	resetRatesSharded(active, a.shard)
	a.scratch.ensure(len(egCap))
	resort := a.ord.sync(active)
	for _, c := range a.ord.order {
		if q := float64(a.queueOf(c)); q != c.schedKey {
			c.schedKey = q
			resort = true
		}
	}
	if resort {
		sortByKey(a.ord.order, true)
	}
	for _, c := range a.ord.order {
		maddAllocateSharded(c, egCap, inCap, &a.scratch, a.shard)
	}
	waterFillSharded(activeFlows(active, &a.scratch), egCap, inCap, &a.scratch, a.shard)
}

// PerFlowFair ignores coflow boundaries entirely and shares every port
// max-min fairly across individual flows — the TCP-like baseline coflow
// papers compare against.
type PerFlowFair struct {
	// Shard configures intra-epoch parallelism; zero value = serial.
	Shard ShardOptions
}

// Name implements Scheduler.
func (PerFlowFair) Name() string { return "per-flow-fair" }

// Allocate implements Scheduler.
func (p PerFlowFair) Allocate(_ float64, active []*Coflow, egCap, inCap []float64) {
	resetRatesSharded(active, p.Shard)
	s := scratchPool.Get().(*allocScratch)
	s.ensure(len(egCap))
	waterFillSharded(activeFlows(active, s), egCap, inCap, s, p.Shard)
	scratchPool.Put(s)
}

// SequentialByDest reproduces the uncoordinated "worst schedule" of the
// paper's Figure 2(a): senders flush data one destination at a time in
// destination index order, so a single ingress link is contended while the
// others idle. Only flows towards the lowest-indexed destination with
// pending traffic receive bandwidth each epoch.
type SequentialByDest struct {
	// Shard configures intra-epoch parallelism; zero value = serial.
	Shard ShardOptions
}

// Name implements Scheduler.
func (SequentialByDest) Name() string { return "sequential-by-dest" }

// Allocate implements Scheduler.
func (sd SequentialByDest) Allocate(_ float64, active []*Coflow, egCap, inCap []float64) {
	resetRatesSharded(active, sd.Shard)
	s := scratchPool.Get().(*allocScratch)
	s.ensure(len(egCap))
	flows := activeFlows(active, s)
	cur := -1
	for _, f := range flows {
		if cur == -1 || f.Dst < cur {
			cur = f.Dst
		}
	}
	if cur == -1 {
		scratchPool.Put(s)
		return
	}
	subset := s.subset[:0]
	for _, f := range flows {
		if f.Dst == cur {
			subset = append(subset, f)
		}
	}
	s.subset = subset
	waterFillSharded(subset, egCap, inCap, s, sd.Shard)
	scratchPool.Put(s)
}
