// Package coflow implements the coflow abstraction of Chowdhury & Stoica
// (HotNets'12) and the schedulers the paper builds on: a coflow is a group
// of parallel flows sharing a performance goal, and the metric of interest
// is the coflow completion time (CCT) — the finish time of the slowest flow
// — rather than any individual flow's completion.
//
// Flows are modelled at the fluid level over the non-blocking switch of
// Varys: each of the n machines has one ingress and one egress port of equal
// capacity, and contention happens only at ports. Schedulers assign rates;
// the event engine in internal/netsim advances time between completions.
package coflow

import (
	"fmt"
	"math"
	"sort"
)

// Flow is one point-to-point transfer within a coflow, the 3-tuple
// [src, dst, volume] of the paper plus simulation state.
type Flow struct {
	ID     int
	Coflow *Coflow
	Src    int     // egress port index
	Dst    int     // ingress port index
	Size   float64 // bytes

	Remaining float64 // bytes left to transfer
	Rate      float64 // current rate, bytes/sec; set by schedulers
	Done      bool
	EndTime   float64 // simulation time the flow finished (valid once Done)
}

// Coflow is a set of parallel flows released together (the paper assumes
// all flows of an operator's shuffle start at the same time; the engine
// also supports staggered arrivals for the online schedulers).
type Coflow struct {
	ID      int
	Name    string
	Arrival float64 // seconds
	// Deadline, when positive, is the completion target in seconds
	// relative to Arrival; the Varys deadline-mode scheduler admits or
	// rejects based on it. Zero means best-effort.
	Deadline float64
	Flows    []*Flow

	// SentBytes accumulates bytes transferred so far; Aalo's D-CLAS uses it
	// to infer priority without prior knowledge.
	SentBytes float64
	// Completion is the CCT end time (valid once Completed).
	Completion float64
	Completed  bool
}

// New builds a coflow from flow volumes. Zero-size flows are dropped.
func New(id int, name string, arrival float64, flows []Flow) *Coflow {
	c := &Coflow{ID: id, Name: name, Arrival: arrival}
	for i := range flows {
		f := flows[i]
		if f.Size <= 0 {
			continue
		}
		nf := &Flow{ID: f.ID, Coflow: c, Src: f.Src, Dst: f.Dst, Size: f.Size, Remaining: f.Size}
		c.Flows = append(c.Flows, nf)
	}
	return c
}

// FromVolumes builds a coflow from an n×n volume matrix (bytes from i to j,
// row-major), skipping the diagonal and zero entries.
func FromVolumes(id int, name string, arrival float64, n int, vol []int64) (*Coflow, error) {
	if len(vol) != n*n {
		return nil, fmt.Errorf("coflow: volume matrix has %d entries, want %d", len(vol), n*n)
	}
	c := &Coflow{ID: id, Name: name, Arrival: arrival}
	fid := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := vol[i*n+j]
			if i == j || v <= 0 {
				continue
			}
			c.Flows = append(c.Flows, &Flow{
				ID: fid, Coflow: c, Src: i, Dst: j,
				Size: float64(v), Remaining: float64(v),
			})
			fid++
		}
	}
	return c, nil
}

// TotalBytes returns the sum of flow sizes.
func (c *Coflow) TotalBytes() float64 {
	var s float64
	for _, f := range c.Flows {
		s += f.Size
	}
	return s
}

// RemainingBytes returns the bytes the coflow still has to move.
func (c *Coflow) RemainingBytes() float64 {
	var s float64
	for _, f := range c.Flows {
		if !f.Done {
			s += f.Remaining
		}
	}
	return s
}

// Width returns the number of flows (Aalo/NCF use it).
func (c *Coflow) Width() int { return len(c.Flows) }

// Bottleneck returns Γ, the maximum over ports of the coflow's remaining
// bytes traversing that port. Under exclusive use of the fabric with port
// capacity R, the minimum CCT is Γ/R — the quantity SEBF orders by and the
// bandwidth model of the paper's model (1.2).
func (c *Coflow) Bottleneck(n int) float64 {
	eg := make([]float64, n)
	in := make([]float64, n)
	var g float64
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		eg[f.Src] += f.Remaining
		in[f.Dst] += f.Remaining
		if eg[f.Src] > g {
			g = eg[f.Src]
		}
		if in[f.Dst] > g {
			g = in[f.Dst]
		}
	}
	return g
}

// CCT returns the coflow completion time (relative to arrival). It panics
// if the coflow has not completed; call after the simulation finished.
func (c *Coflow) CCT() float64 {
	if !c.Completed {
		panic(fmt.Sprintf("coflow: CCT of incomplete coflow %d (%s)", c.ID, c.Name))
	}
	return c.Completion - c.Arrival
}

// Scheduler assigns rates to the active flows each scheduling epoch.
//
// egCap/inCap hold the per-port capacities (bytes/sec) the scheduler may
// hand out this epoch; implementations must ensure the sum of rates over
// each egress/ingress port does not exceed the respective capacity. Every
// scheduler here is work-conserving up to its policy: it should leave a
// port idle only when no active flow can use it.
type Scheduler interface {
	Name() string
	// Allocate sets Rate on every non-done flow of the active coflows
	// (flows it declines to serve must get rate 0, not stale values).
	Allocate(now float64, active []*Coflow, egCap, inCap []float64)
}

// ---------------------------------------------------------------------------
// Allocation helpers shared by the schedulers.
// ---------------------------------------------------------------------------

// resetRates zeroes all rates so schedulers start from a clean slate.
func resetRates(active []*Coflow) {
	for _, c := range active {
		for _, f := range c.Flows {
			f.Rate = 0
		}
	}
}

// maddAllocate implements Varys' Minimum Allocation for Desired Duration:
// the coflow's flows all finish together at τ = max over its ports of
// remaining/capacity, so flow f gets rate remaining_f/τ. Rates are deducted
// from the residual capacities. Returns the τ achieved (+Inf if a needed
// port has no capacity, in which case no rates are assigned).
func maddAllocate(c *Coflow, egCap, inCap []float64) float64 {
	egNeed := map[int]float64{}
	inNeed := map[int]float64{}
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		egNeed[f.Src] += f.Remaining
		inNeed[f.Dst] += f.Remaining
	}
	tau := 0.0
	for p, need := range egNeed {
		if egCap[p] <= 0 {
			return math.Inf(1)
		}
		if t := need / egCap[p]; t > tau {
			tau = t
		}
	}
	for p, need := range inNeed {
		if inCap[p] <= 0 {
			return math.Inf(1)
		}
		if t := need / inCap[p]; t > tau {
			tau = t
		}
	}
	if tau == 0 {
		return 0
	}
	for _, f := range c.Flows {
		if f.Done {
			continue
		}
		r := f.Remaining / tau
		f.Rate += r
		egCap[f.Src] -= r
		inCap[f.Dst] -= r
	}
	return tau
}

// waterFill distributes the residual capacity max-min fairly across the
// given flows (progressive filling). Rates are added on top of any rates
// already assigned and deducted from the capacities.
func waterFill(flows []*Flow, egCap, inCap []float64) {
	st := make([]fillState, len(flows))
	unfrozen := 0
	for _, f := range flows {
		if !f.Done {
			unfrozen++
		}
	}
	for i, f := range flows {
		if f.Done {
			st[i].frozen = true
		}
	}
	for unfrozen > 0 {
		// Count unfrozen flows per port.
		egCnt := map[int]int{}
		inCnt := map[int]int{}
		for i, f := range flows {
			if st[i].frozen {
				continue
			}
			egCnt[f.Src]++
			inCnt[f.Dst]++
		}
		// The common increment is limited by the tightest port.
		alpha := math.Inf(1)
		for p, cnt := range egCnt {
			if a := egCap[p] / float64(cnt); a < alpha {
				alpha = a
			}
		}
		for p, cnt := range inCnt {
			if a := inCap[p] / float64(cnt); a < alpha {
				alpha = a
			}
		}
		if math.IsInf(alpha, 1) || alpha <= 0 {
			// No capacity left anywhere: freeze everyone.
			for i := range st {
				st[i].frozen = true
			}
			break
		}
		// Grant alpha to every unfrozen flow.
		for i, f := range flows {
			if st[i].frozen {
				continue
			}
			f.Rate += alpha
			egCap[f.Src] -= alpha
			inCap[f.Dst] -= alpha
		}
		// Freeze flows on saturated ports.
		const eps = 1e-12
		newUnfrozen := 0
		for i, f := range flows {
			if st[i].frozen {
				continue
			}
			if egCap[f.Src] <= eps || inCap[f.Dst] <= eps {
				st[i].frozen = true
			} else {
				newUnfrozen++
			}
		}
		if newUnfrozen == unfrozen {
			// Defensive: guarantee progress even with degenerate float
			// behaviour by freezing the flow on the fullest port.
			freezeTightest(flows, st, egCap, inCap)
			newUnfrozen = unfrozen - 1
		}
		unfrozen = newUnfrozen
	}
}

// fillState tracks per-flow water-filling progress.
type fillState struct{ frozen bool }

func freezeTightest(flows []*Flow, st []fillState, egCap, inCap []float64) {
	best, bestCap := -1, math.Inf(1)
	for i, f := range flows {
		if st[i].frozen {
			continue
		}
		c := math.Min(egCap[f.Src], inCap[f.Dst])
		if c < bestCap {
			best, bestCap = i, c
		}
	}
	if best >= 0 {
		st[best].frozen = true
	}
}

// activeFlows flattens the non-done flows of the active coflows.
func activeFlows(active []*Coflow) []*Flow {
	var out []*Flow
	for _, c := range active {
		for _, f := range c.Flows {
			if !f.Done {
				out = append(out, f)
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Schedulers.
// ---------------------------------------------------------------------------

// orderedMADD is the shared engine of the priority-ordered schedulers: it
// serves coflows in the order produced by less, giving each MADD rates from
// the residual capacity, then backfills leftovers max-min fairly across all
// remaining flows (work conservation, as in Varys).
type orderedMADD struct {
	name     string
	less     func(a, b *Coflow, n int) bool
	backfill bool
}

func (o orderedMADD) Name() string { return o.name }

func (o orderedMADD) Allocate(_ float64, active []*Coflow, egCap, inCap []float64) {
	resetRates(active)
	n := len(egCap)
	order := append([]*Coflow(nil), active...)
	sort.SliceStable(order, func(a, b int) bool { return o.less(order[a], order[b], n) })
	for _, c := range order {
		maddAllocate(c, egCap, inCap)
	}
	if o.backfill {
		waterFill(activeFlows(active), egCap, inCap)
	}
}

// NewVarys returns the Varys scheduler: Smallest Effective Bottleneck First
// ordering with MADD allocation and work-conserving backfill (SIGCOMM'14).
func NewVarys() Scheduler {
	return orderedMADD{
		name: "varys-sebf",
		less: func(a, b *Coflow, n int) bool {
			ga, gb := a.Bottleneck(n), b.Bottleneck(n)
			if ga != gb {
				return ga < gb
			}
			return a.ID < b.ID
		},
		backfill: true,
	}
}

// NewFIFO returns first-come-first-served coflow scheduling with MADD rates,
// ties by ID. FIFO-LM of Qiu et al. without the multiplexing.
func NewFIFO() Scheduler {
	return orderedMADD{
		name: "fifo",
		less: func(a, b *Coflow, _ int) bool {
			if a.Arrival != b.Arrival {
				return a.Arrival < b.Arrival
			}
			return a.ID < b.ID
		},
		backfill: true,
	}
}

// NewSCF returns Smallest (remaining) Coflow First — the size-based
// counterpart of SEBF.
func NewSCF() Scheduler {
	return orderedMADD{
		name: "scf",
		less: func(a, b *Coflow, _ int) bool {
			ra, rb := a.RemainingBytes(), b.RemainingBytes()
			if ra != rb {
				return ra < rb
			}
			return a.ID < b.ID
		},
		backfill: true,
	}
}

// NewNCF returns Narrowest Coflow First (fewest flows first).
func NewNCF() Scheduler {
	return orderedMADD{
		name: "ncf",
		less: func(a, b *Coflow, _ int) bool {
			wa, wb := a.Width(), b.Width()
			if wa != wb {
				return wa < wb
			}
			return a.ID < b.ID
		},
		backfill: true,
	}
}

// Aalo approximates the D-CLAS discretized priority queues of Aalo
// (SIGCOMM'15): coflows are binned by bytes sent so far into queues with
// geometrically growing thresholds; lower queues get strict priority,
// FIFO within a queue, MADD rates, leftover capacity backfilled.
type Aalo struct {
	// FirstThreshold is queue 0's upper bound in bytes (Aalo default 10 MB).
	FirstThreshold float64
	// Multiplier grows thresholds geometrically (Aalo default 10).
	Multiplier float64
}

// NewAalo returns an Aalo scheduler with the paper defaults.
func NewAalo() *Aalo { return &Aalo{FirstThreshold: 10e6, Multiplier: 10} }

// Name implements Scheduler.
func (a *Aalo) Name() string { return "aalo-dclas" }

// queueOf returns the priority queue index for a coflow.
func (a *Aalo) queueOf(c *Coflow) int {
	q := 0
	th := a.FirstThreshold
	for c.SentBytes >= th && q < 32 {
		th *= a.Multiplier
		q++
	}
	return q
}

// Allocate implements Scheduler.
func (a *Aalo) Allocate(_ float64, active []*Coflow, egCap, inCap []float64) {
	resetRates(active)
	order := append([]*Coflow(nil), active...)
	sort.SliceStable(order, func(x, y int) bool {
		qx, qy := a.queueOf(order[x]), a.queueOf(order[y])
		if qx != qy {
			return qx < qy
		}
		if order[x].Arrival != order[y].Arrival {
			return order[x].Arrival < order[y].Arrival
		}
		return order[x].ID < order[y].ID
	})
	for _, c := range order {
		maddAllocate(c, egCap, inCap)
	}
	waterFill(activeFlows(active), egCap, inCap)
}

// PerFlowFair ignores coflow boundaries entirely and shares every port
// max-min fairly across individual flows — the TCP-like baseline coflow
// papers compare against.
type PerFlowFair struct{}

// Name implements Scheduler.
func (PerFlowFair) Name() string { return "per-flow-fair" }

// Allocate implements Scheduler.
func (PerFlowFair) Allocate(_ float64, active []*Coflow, egCap, inCap []float64) {
	resetRates(active)
	waterFill(activeFlows(active), egCap, inCap)
}

// SequentialByDest reproduces the uncoordinated "worst schedule" of the
// paper's Figure 2(a): senders flush data one destination at a time in
// destination index order, so a single ingress link is contended while the
// others idle. Only flows towards the lowest-indexed destination with
// pending traffic receive bandwidth each epoch.
type SequentialByDest struct{}

// Name implements Scheduler.
func (SequentialByDest) Name() string { return "sequential-by-dest" }

// Allocate implements Scheduler.
func (SequentialByDest) Allocate(_ float64, active []*Coflow, egCap, inCap []float64) {
	resetRates(active)
	flows := activeFlows(active)
	cur := -1
	for _, f := range flows {
		if cur == -1 || f.Dst < cur {
			cur = f.Dst
		}
	}
	if cur == -1 {
		return
	}
	var subset []*Flow
	for _, f := range flows {
		if f.Dst == cur {
			subset = append(subset, f)
		}
	}
	waterFill(subset, egCap, inCap)
}
