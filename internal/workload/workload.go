// Package workload synthesises the paper's evaluation workload: a TPC-H-like
// CUSTOMER ⋈ ORDERS join on CUSTKEY at scale factor 600 (90 million customer
// tuples, 900 million order tuples, 1000-byte payloads, ≈ 1 TB input), hash
// partitioned over n nodes with p partitions.
//
// Two levels of fidelity are provided:
//
//   - Chunk level (Generate): produces the h_ik chunk matrix directly, which
//     is all the placement schedulers and the coflow simulator consume. Chunk
//     sizes within each partition follow a Zipf distribution over the nodes
//     with rank-aligned ordering (node 0 always holds the largest chunk, as
//     stated in §IV.B.2 of the paper), and a configurable fraction of the
//     large relation is re-keyed to CUSTKEY 1 to inject skew.
//
//   - Tuple level (package join's generators): materialises actual tuples for
//     end-to-end join verification at reduced scale.
//
// The substitution for TPC-H dbgen is recorded in DESIGN.md §3.
package workload

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"ccf/internal/partition"
)

// Paper-default workload constants (§IV.A.2 and §IV.A.3).
const (
	// DefaultCustomerTuples is |CUSTOMER| at TPC-H SF = 600.
	DefaultCustomerTuples = 90_000_000
	// DefaultOrderTuples is |ORDERS| at TPC-H SF = 600.
	DefaultOrderTuples = 900_000_000
	// DefaultPayloadBytes is the per-tuple payload the paper fixes.
	DefaultPayloadBytes = 1000
	// DefaultPartitionMultiplier: p = 15 × n in every experiment.
	DefaultPartitionMultiplier = 15
	// DefaultZipf is the default Zipf factor for chunk sizes over nodes.
	DefaultZipf = 0.8
	// DefaultSkew is the default fraction of ORDERS re-keyed to CUSTKEY 1.
	DefaultSkew = 0.20
	// SkewKey is the hot key the paper's skew injection targets.
	SkewKey = 1
)

// Config describes one workload instance.
type Config struct {
	Nodes          int     // n
	Partitions     int     // p; if 0, DefaultPartitionMultiplier × Nodes
	CustomerTuples int64   // |CUSTOMER|; if 0, DefaultCustomerTuples
	OrderTuples    int64   // |ORDERS|; if 0, DefaultOrderTuples
	PayloadBytes   int64   // bytes per tuple; if 0, DefaultPayloadBytes
	Zipf           float64 // Zipf factor θ ∈ [0, ∞); 0 = uniform
	Skew           float64 // fraction of ORDERS tuples re-keyed to SkewKey, ∈ [0, 1)
	// ShuffleRanks breaks the paper's rank alignment: instead of node 0
	// always holding the largest chunk of every partition, the Zipf rank
	// order is rotated per partition. Used by the abl-rank ablation.
	ShuffleRanks bool
	// Seed perturbs the deterministic jitter applied to chunk sizes so that
	// repeated runs can exercise different tie-breaks. Zero is a valid seed.
	Seed uint64
	// JitterFrac adds ±JitterFrac relative noise to each chunk so chunk
	// sizes are not perfectly proportional across partitions. Defaults to 0
	// (exact proportions), which matches the closed-form analysis in
	// EXPERIMENTS.md; the figure runs use a small jitter.
	JitterFrac float64
}

// withDefaults returns a copy with zero fields replaced by paper defaults.
func (c Config) withDefaults() (Config, error) {
	if c.Nodes <= 0 {
		return c, fmt.Errorf("workload: Nodes must be positive, got %d", c.Nodes)
	}
	if c.Partitions == 0 {
		c.Partitions = DefaultPartitionMultiplier * c.Nodes
	}
	if c.Partitions < c.Nodes {
		return c, fmt.Errorf("workload: Partitions (%d) must be >= Nodes (%d)", c.Partitions, c.Nodes)
	}
	if c.CustomerTuples == 0 {
		c.CustomerTuples = DefaultCustomerTuples
	}
	if c.OrderTuples == 0 {
		c.OrderTuples = DefaultOrderTuples
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = DefaultPayloadBytes
	}
	if c.Zipf < 0 {
		return c, fmt.Errorf("workload: Zipf must be non-negative, got %g", c.Zipf)
	}
	if c.Skew < 0 || c.Skew >= 1 {
		return c, fmt.Errorf("workload: Skew must be in [0,1), got %g", c.Skew)
	}
	return c, nil
}

// Workload is a generated instance: the chunk matrix of non-skewed data, the
// extra bytes of the hot key per node, and bookkeeping needed by the skew
// handler and the experiment harness.
type Workload struct {
	Config Config
	// Chunks is h_ik for all data including skewed bytes (what a
	// skew-oblivious scheduler like Hash sees).
	Chunks *partition.ChunkMatrix
	// SkewPartition is the partition the hot key hashes to (-1 if skew=0).
	SkewPartition int
	// SkewBytesPerNode[i] is the bytes of hot-key ORDERS tuples resident on
	// node i (contained within Chunks at SkewPartition).
	SkewBytesPerNode []int64
	// SkewOwner is the node holding the CUSTOMER tuple for the hot key: the
	// source of the partial-duplication broadcast.
	SkewOwner int
	// BroadcastBytes is the size of the small-relation tuples that partial
	// duplication replicates to every other node (per destination).
	BroadcastBytes int64
}

// TotalBytes returns the total input size in bytes.
func (w *Workload) TotalBytes() int64 { return w.Chunks.TotalBytes() }

// zipfWeights returns normalised Zipf weights w_r = r^-θ / Σ r^-θ for ranks
// 1..n. θ = 0 yields the uniform distribution.
func zipfWeights(n int, theta float64) []float64 {
	w := make([]float64, n)
	var z float64
	for r := 0; r < n; r++ {
		w[r] = math.Pow(float64(r+1), -theta)
		z += w[r]
	}
	for r := range w {
		w[r] /= z
	}
	return w
}

// splitmix64 is a tiny deterministic PRNG step used for jitter so the
// generator does not depend on math/rand ordering guarantees.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitUniform maps a 64-bit hash to [0, 1).
func unitUniform(x uint64) float64 {
	return float64(x>>11) / float64(1<<53)
}

// Generate builds a workload instance per the paper's §IV.A recipe:
//
//  1. Total bytes = (|C| + |O|) × payload, split evenly over p partitions
//     (uniform custkeys ⇒ near-identical partition totals).
//  2. Within each partition, chunk sizes over the n nodes follow Zipf(θ)
//     with aligned ranks (node 0 largest) unless ShuffleRanks is set.
//  3. skew × |O| tuples are re-keyed to CUSTKEY 1; their bytes concentrate
//     in the hot key's partition, distributed over nodes proportionally to
//     the Zipf weights (the paper picks the re-keyed tuples uniformly at
//     random, so they sit where the data sits).
func Generate(cfg Config) (*Workload, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n, p := cfg.Nodes, cfg.Partitions
	m, err := partition.NewChunkMatrix(n, p)
	if err != nil {
		return nil, err
	}

	totalTuples := cfg.CustomerTuples + cfg.OrderTuples
	skewOrderTuples := int64(cfg.Skew * float64(cfg.OrderTuples))
	normalTuples := totalTuples - skewOrderTuples
	normalBytes := normalTuples * cfg.PayloadBytes
	skewBytes := skewOrderTuples * cfg.PayloadBytes

	weights := zipfWeights(n, cfg.Zipf)

	// Spread the non-skewed bytes: partition totals are equal up to
	// integer remainders; within a partition, node shares follow the
	// (possibly rotated) Zipf weights with optional jitter. Partitions
	// write disjoint matrix columns, so they fill in parallel; the jitter
	// is hashed per (node, partition), keeping the result deterministic
	// regardless of worker count.
	perPartition := normalBytes / int64(p)
	remainder := normalBytes % int64(p)
	workers := runtime.GOMAXPROCS(0)
	if workers > p {
		workers = p
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := p * w / workers
		hi := p * (w + 1) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for k := lo; k < hi; k++ {
				tot := perPartition
				if int64(k) < remainder {
					tot++
				}
				assignPartition(m, k, tot, weights, cfg)
			}
		}(lo, hi)
	}
	wg.Wait()

	w := &Workload{
		Config:           cfg,
		Chunks:           m,
		SkewPartition:    -1,
		SkewBytesPerNode: make([]int64, n),
	}

	if skewOrderTuples > 0 {
		part := partition.ModPartitioner{NumPartitions: p}
		ks := part.Partition(SkewKey)
		w.SkewPartition = ks
		// Distribute hot-key bytes over nodes by the same weights, since
		// the re-keyed tuples are sampled uniformly from the relation.
		var assigned int64
		for i := 0; i < n; i++ {
			b := int64(weights[rankOf(i, ks, cfg)] * float64(skewBytes))
			w.SkewBytesPerNode[i] = b
			assigned += b
		}
		// Put rounding remainder on the largest-share node.
		w.SkewBytesPerNode[largestIdx(w.SkewBytesPerNode)] += skewBytes - assigned
		for i := 0; i < n; i++ {
			m.Add(i, ks, w.SkewBytesPerNode[i])
		}
		// The CUSTOMER side of the hot key is a single tuple; it lives on
		// the node owning the largest chunk of the hot partition (where a
		// locality-aware loader would have put it — any single node works,
		// the broadcast volume is what matters).
		w.SkewOwner = largestIdx(w.SkewBytesPerNode)
		w.BroadcastBytes = cfg.PayloadBytes
	}
	return w, nil
}

// assignPartition splits tot bytes of partition k over the nodes.
func assignPartition(m *partition.ChunkMatrix, k int, tot int64, weights []float64, cfg Config) {
	n := len(weights)
	var sum int64
	maxI := 0
	var maxV int64 = -1
	for i := 0; i < n; i++ {
		f := weights[rankOf(i, k, cfg)]
		if cfg.JitterFrac > 0 {
			h := splitmix64(cfg.Seed ^ uint64(k)*0x9E3779B97F4A7C15 ^ uint64(i)<<32)
			f *= 1 + cfg.JitterFrac*(2*unitUniform(h)-1)
		}
		v := int64(f * float64(tot))
		m.Set(i, k, v)
		sum += v
		if v > maxV {
			maxV = v
			maxI = i
		}
	}
	// Rounding remainder goes to the largest chunk, preserving the argmax.
	// With jitter the shares need not sum to 1, so the remainder can be
	// negative; drain it from the largest chunks without going below zero.
	rem := tot - sum
	if rem >= -maxV {
		m.Add(maxI, k, rem)
		return
	}
	for rem < 0 {
		big, bigV := 0, int64(-1)
		for i := 0; i < n; i++ {
			if v := m.At(i, k); v > bigV {
				big, bigV = i, v
			}
		}
		take := -rem
		if take > bigV {
			take = bigV
		}
		if take == 0 {
			break // tot was 0; nothing to drain
		}
		m.Add(big, k, -take)
		rem += take
	}
}

// rankOf returns the Zipf rank of node i for partition k: identity when
// ranks are aligned (paper default), rotated by a per-partition offset when
// ShuffleRanks is set.
func rankOf(i, k int, cfg Config) int {
	if !cfg.ShuffleRanks {
		return i
	}
	n := cfg.Nodes
	off := int(splitmix64(cfg.Seed^uint64(k)) % uint64(n))
	return (i + off) % n
}

func largestIdx(v []int64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
