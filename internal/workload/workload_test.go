package workload

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

func TestDefaultsApplied(t *testing.T) {
	w, err := Generate(Config{Nodes: 10, Zipf: 0.5, Skew: 0.1, CustomerTuples: 1000, OrderTuples: 10000, PayloadBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Config.Partitions; got != 150 {
		t.Errorf("default partitions = %d, want 15×10", got)
	}
	w2, err := Generate(Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Config.CustomerTuples != DefaultCustomerTuples || w2.Config.OrderTuples != DefaultOrderTuples {
		t.Errorf("paper-default tuple counts not applied: %+v", w2.Config)
	}
	if w2.Config.PayloadBytes != DefaultPayloadBytes {
		t.Errorf("payload = %d, want %d", w2.Config.PayloadBytes, DefaultPayloadBytes)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Nodes: 0},
		{Nodes: -2},
		{Nodes: 10, Partitions: 5},
		{Nodes: 3, Zipf: -0.1},
		{Nodes: 3, Skew: -0.2},
		{Nodes: 3, Skew: 1.0},
	}
	for _, c := range cases {
		if _, err := Generate(c); err == nil {
			t.Errorf("Generate(%+v) accepted invalid config", c)
		}
	}
}

func TestTotalBytesConservation(t *testing.T) {
	cfg := Config{Nodes: 8, CustomerTuples: 900, OrderTuples: 9000, PayloadBytes: 100, Zipf: 0.8, Skew: 0.2}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := (cfg.CustomerTuples + cfg.OrderTuples) * cfg.PayloadBytes
	if got := w.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %d, want %d (all tuples accounted)", got, want)
	}
	if err := w.Chunks.Validate(); err != nil {
		t.Errorf("generated matrix invalid: %v", err)
	}
}

func TestZipfWeightsProperties(t *testing.T) {
	for _, theta := range []float64{0, 0.3, 0.8, 1, 2} {
		w := zipfWeights(50, theta)
		var sum float64
		for r := 0; r < len(w); r++ {
			sum += w[r]
			if r > 0 && w[r] > w[r-1]+1e-15 {
				t.Errorf("theta=%g: weights not non-increasing at rank %d", theta, r)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("theta=%g: weights sum to %g, want 1", theta, sum)
		}
	}
	// theta=0 is uniform.
	w := zipfWeights(4, 0)
	for _, v := range w {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("zipf(0) weight = %g, want 0.25", v)
		}
	}
}

func TestRankAlignmentNodeZeroLargest(t *testing.T) {
	w, err := Generate(Config{Nodes: 20, CustomerTuples: 10_000, OrderTuples: 100_000, PayloadBytes: 100, Zipf: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	_, node := w.Chunks.MaxChunk()
	for k, d := range node {
		if d != 0 {
			t.Fatalf("partition %d: largest chunk on node %d; paper setup requires node 0 (§IV.B.2)", k, d)
		}
	}
}

func TestShuffleRanksBreaksAlignment(t *testing.T) {
	w, err := Generate(Config{Nodes: 20, CustomerTuples: 10_000, OrderTuples: 100_000, PayloadBytes: 100, Zipf: 0.8, ShuffleRanks: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, node := w.Chunks.MaxChunk()
	offNode0 := 0
	for _, d := range node {
		if d != 0 {
			offNode0++
		}
	}
	if offNode0 == 0 {
		t.Error("ShuffleRanks left every partition's largest chunk on node 0")
	}
}

func TestSkewInjection(t *testing.T) {
	cfg := Config{Nodes: 10, CustomerTuples: 1000, OrderTuples: 10_000, PayloadBytes: 10, Zipf: 0.8, Skew: 0.2}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w.SkewPartition != SkewKey%w.Config.Partitions {
		t.Errorf("SkewPartition = %d, want %d (key 1 under mod hash)", w.SkewPartition, SkewKey%w.Config.Partitions)
	}
	var skewTotal int64
	for _, b := range w.SkewBytesPerNode {
		if b < 0 {
			t.Fatalf("negative skew bytes: %v", w.SkewBytesPerNode)
		}
		skewTotal += b
	}
	wantSkew := int64(cfg.Skew*float64(cfg.OrderTuples)) * cfg.PayloadBytes
	if skewTotal != wantSkew {
		t.Errorf("skew bytes = %d, want %d (20%% of ORDERS)", skewTotal, wantSkew)
	}
	if w.BroadcastBytes != cfg.PayloadBytes {
		t.Errorf("broadcast = %d bytes, want one customer tuple (%d)", w.BroadcastBytes, cfg.PayloadBytes)
	}
	if w.SkewOwner < 0 || w.SkewOwner >= cfg.Nodes {
		t.Errorf("SkewOwner = %d outside cluster", w.SkewOwner)
	}
}

func TestNoSkewFields(t *testing.T) {
	w, err := Generate(Config{Nodes: 5, CustomerTuples: 100, OrderTuples: 1000, PayloadBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if w.SkewPartition != -1 {
		t.Errorf("SkewPartition = %d for skewless workload, want -1", w.SkewPartition)
	}
	if w.BroadcastBytes != 0 {
		t.Errorf("BroadcastBytes = %d for skewless workload, want 0", w.BroadcastBytes)
	}
}

func TestSkewPartitionIsHeaviest(t *testing.T) {
	w, err := Generate(Config{Nodes: 10, CustomerTuples: 1000, OrderTuples: 10_000, PayloadBytes: 10, Zipf: 0.8, Skew: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	tot := w.Chunks.PartitionTotals()
	for k, v := range tot {
		if k != w.SkewPartition && v > tot[w.SkewPartition] {
			t.Fatalf("partition %d (%d bytes) heavier than skew partition %d (%d bytes)",
				k, v, w.SkewPartition, tot[w.SkewPartition])
		}
	}
}

func TestJitterPreservesConservationAndNonNegativity(t *testing.T) {
	f := func(seed uint64, zipfTenths uint8) bool {
		theta := float64(zipfTenths%11) / 10
		cfg := Config{
			Nodes: 6, CustomerTuples: 500, OrderTuples: 5000, PayloadBytes: 17,
			Zipf: theta, Skew: 0.2, JitterFrac: 0.05, Seed: seed,
		}
		w, err := Generate(cfg)
		if err != nil {
			return false
		}
		if w.Chunks.Validate() != nil {
			return false
		}
		return w.TotalBytes() == (cfg.CustomerTuples+cfg.OrderTuples)*cfg.PayloadBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Nodes: 7, CustomerTuples: 300, OrderTuples: 3000, PayloadBytes: 13, Zipf: 0.6, Skew: 0.1, JitterFrac: 0.02, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Chunks.H {
		if a.Chunks.H[i] != b.Chunks.H[i] {
			t.Fatal("Generate is not deterministic for identical configs")
		}
	}
}

func TestPartitionTotalsNearEqualWithoutSkew(t *testing.T) {
	w, err := Generate(Config{Nodes: 10, CustomerTuples: 10_000, OrderTuples: 100_000, PayloadBytes: 10, Zipf: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	tot := w.Chunks.PartitionTotals()
	var lo, hi int64 = tot[0], tot[0]
	for _, v := range tot {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo > 1 {
		t.Errorf("uniform-key partition totals spread %d..%d; want within 1 byte", lo, hi)
	}
}

func TestZipfConcentration(t *testing.T) {
	// Higher zipf ⇒ node 0 holds a strictly larger share.
	share := func(theta float64) float64 {
		w, err := Generate(Config{Nodes: 50, CustomerTuples: 100_000, OrderTuples: 1_000_000, PayloadBytes: 100, Zipf: theta})
		if err != nil {
			t.Fatal(err)
		}
		nt := w.Chunks.NodeTotals()
		return float64(nt[0]) / float64(w.TotalBytes())
	}
	s0, s05, s1 := share(0), share(0.5), share(1)
	if !(s0 < s05 && s05 < s1) {
		t.Errorf("node-0 share not increasing with zipf: %g, %g, %g", s0, s05, s1)
	}
	if math.Abs(s0-1.0/50) > 0.001 {
		t.Errorf("zipf=0 node-0 share = %g, want ≈ 1/50", s0)
	}
}

func TestSplitmixAvalanche(t *testing.T) {
	// Adjacent seeds must produce well-separated uniform values.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		x := rng.Uint64()
		a, b := unitUniform(splitmix64(x)), unitUniform(splitmix64(x+1))
		if a == b {
			t.Fatalf("splitmix64 collision for adjacent seeds at %d", x)
		}
		if a < 0 || a >= 1 || b < 0 || b >= 1 {
			t.Fatalf("unitUniform out of range: %g %g", a, b)
		}
	}
}

func TestGenerateParallelDeterminism(t *testing.T) {
	// Generation fans partitions out over GOMAXPROCS workers; the output
	// must be identical at any worker count.
	cfg := Config{
		Nodes: 16, CustomerTuples: 2000, OrderTuples: 20_000,
		PayloadBytes: 50, Zipf: 0.7, Skew: 0.15, JitterFrac: 0.03, Seed: 99,
	}
	prev := runtime.GOMAXPROCS(1)
	serial, err := Generate(cfg)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Chunks.H {
		if serial.Chunks.H[i] != parallel.Chunks.H[i] {
			t.Fatal("parallel generation diverges from serial")
		}
	}
}
