package metrics

// Prometheus text exposition format, version 0.0.4: for every family a
// # HELP line, a # TYPE line, then one sample line per series (histograms
// expand into cumulative _bucket lines ending at le="+Inf", plus _sum and
// _count). Families render in registration order and series in label-key
// order, so consecutive scrapes differ only in values — the validator test
// diffs structure across scrapes.

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WriteText renders every registered family in the text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler serves the registry at GET /metrics content-type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

func (f *family) write(bw *bufio.Writer) error {
	if len(f.series) == 0 {
		return nil
	}
	if _, err := bw.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n"); err != nil {
		return err
	}
	if _, err := bw.WriteString("# TYPE " + f.name + " " + f.typ + "\n"); err != nil {
		return err
	}
	for _, s := range f.series {
		if err := s.write(bw, f); err != nil {
			return err
		}
	}
	return nil
}

func (s *series) write(bw *bufio.Writer, f *family) error {
	switch {
	case s.counter != nil:
		return sample(bw, f.name, s.key, formatUint(s.counter.Value()))
	case s.gauge != nil:
		return sample(bw, f.name, s.key, formatFloat(s.gauge.Value()))
	case s.gaugeFn != nil:
		return sample(bw, f.name, s.key, formatFloat(s.gaugeFn()))
	case s.hist != nil:
		h := s.hist
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if err := sample(bw, f.name+"_bucket", mergeLabels(s.labels, "le", formatFloat(b)), formatUint(cum)); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if err := sample(bw, f.name+"_bucket", mergeLabels(s.labels, "le", "+Inf"), formatUint(cum)); err != nil {
			return err
		}
		if err := sample(bw, f.name+"_sum", s.key, formatFloat(h.Sum())); err != nil {
			return err
		}
		return sample(bw, f.name+"_count", s.key, formatUint(h.Count()))
	}
	return nil
}

func sample(bw *bufio.Writer, name, labels, value string) error {
	if _, err := bw.WriteString(name + labels + " " + value + "\n"); err != nil {
		return err
	}
	return nil
}

// labelKey renders a label list as `{a="x",b="y"}` (empty string for no
// labels) — both the series identity and the exposition form.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// mergeLabels appends one extra label (the histogram's le) to a rendered
// label set.
func mergeLabels(labels []Label, name, value string) string {
	extra := name + `="` + escapeValue(value) + `"`
	if len(labels) == 0 {
		return "{" + extra + "}"
	}
	key := labelKey(labels)
	return key[:len(key)-1] + "," + extra + "}"
}

// escapeValue escapes a label value per the exposition grammar.
func escapeValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatUint(v uint64) string {
	return strconv.FormatUint(v, 10)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
