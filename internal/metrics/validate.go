package metrics

// ValidateExposition is a promlint-style structural check of a text
// exposition page, shared by the package tests, the service-layer
// validator test and the CI observability smoke. It verifies the 0.0.4
// grammar properties that scraping stacks rely on:
//
//   - every sample belongs to a family announced by # HELP and # TYPE
//     lines (in that order, HELP before TYPE before samples);
//   - sample names match the family (exactly, or family_{bucket,sum,count}
//     for histograms);
//   - histogram buckets carry an le label, are cumulative in file order,
//     end at le="+Inf", and the +Inf bucket equals the _count sample;
//   - counter and histogram-count values are non-negative and finite;
//   - no duplicate series within a family.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

type expFamily struct {
	typ        string
	sawHelp    bool
	seen       map[string]bool // series key → present
	bucketCum  map[string]float64
	bucketInf  map[string]float64
	countVal   map[string]float64
	sawInf     map[string]bool
	sawSamples bool
}

// ValidateExposition checks one scrape page; nil means structurally valid.
func ValidateExposition(text string) error {
	fams := make(map[string]*expFamily)
	for ln, line := range strings.Split(text, "\n") {
		ln++ // 1-based for messages
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			name := fieldAfter(line, "# HELP ")
			f := fams[name]
			if f == nil {
				f = newExpFamily()
				fams[name] = f
			}
			if f.sawSamples {
				return fmt.Errorf("line %d: HELP for %s after its samples", ln, name)
			}
			f.sawHelp = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line %q", ln, line)
			}
			name, typ := parts[0], parts[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", ln, typ)
			}
			f := fams[name]
			if f == nil {
				f = newExpFamily()
				fams[name] = f
			}
			if !f.sawHelp {
				return fmt.Errorf("line %d: TYPE for %s without a preceding HELP", ln, name)
			}
			if f.sawSamples {
				return fmt.Errorf("line %d: TYPE for %s after its samples", ln, name)
			}
			if f.typ != "" {
				return fmt.Errorf("line %d: duplicate TYPE for %s", ln, name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}

		name, labels, value, ok := splitSample(line)
		if !ok {
			return fmt.Errorf("line %d: malformed sample %q", ln, line)
		}
		fam, base, suffix := resolveFamily(fams, name)
		if fam == nil {
			return fmt.Errorf("line %d: sample %s has no HELP/TYPE family", ln, name)
		}
		fam.sawSamples = true
		if fam.typ == "" {
			return fmt.Errorf("line %d: sample %s before its TYPE line", ln, name)
		}
		if (suffix == "bucket" || suffix == "sum" || suffix == "count") && fam.typ != "histogram" && fam.typ != "summary" {
			return fmt.Errorf("line %d: %s sample on %s family %s", ln, suffix, fam.typ, base)
		}

		switch {
		case fam.typ == "histogram" && suffix == "bucket":
			le, rest, err := extractLE(labels)
			if err != nil {
				return fmt.Errorf("line %d: %v", ln, err)
			}
			if value < fam.bucketCum[rest] {
				return fmt.Errorf("line %d: histogram %s%s buckets not cumulative (%g after %g)",
					ln, base, rest, value, fam.bucketCum[rest])
			}
			fam.bucketCum[rest] = value
			if le == "+Inf" {
				fam.sawInf[rest] = true
				fam.bucketInf[rest] = value
			} else if fam.sawInf[rest] {
				return fmt.Errorf("line %d: histogram %s%s has buckets after le=\"+Inf\"", ln, base, rest)
			}
		case fam.typ == "histogram" && suffix == "count":
			fam.countVal[labels] = value
			fallthrough
		case fam.typ == "counter" && suffix == "":
			if value < 0 || math.IsNaN(value) || math.IsInf(value, 0) {
				return fmt.Errorf("line %d: counter-like sample %s = %g", ln, name, value)
			}
		}
		if suffix == "" || suffix == "sum" || suffix == "count" {
			key := name + labels
			if fam.seen[key] {
				return fmt.Errorf("line %d: duplicate series %s", ln, key)
			}
			fam.seen[key] = true
		}
	}

	for name, f := range fams {
		if f.typ != "histogram" {
			continue
		}
		for rest := range f.bucketCum {
			if !f.sawInf[rest] {
				return fmt.Errorf("histogram %s%s has no le=\"+Inf\" bucket", name, rest)
			}
		}
		for rest, inf := range f.bucketInf {
			if cnt, ok := f.countVal[rest]; ok && cnt != inf {
				return fmt.Errorf("histogram %s%s: _count %g != +Inf bucket %g", name, rest, cnt, inf)
			}
		}
	}
	return nil
}

func newExpFamily() *expFamily {
	return &expFamily{
		seen:      make(map[string]bool),
		bucketCum: make(map[string]float64),
		bucketInf: make(map[string]float64),
		countVal:  make(map[string]float64),
		sawInf:    make(map[string]bool),
	}
}

// resolveFamily maps a sample name to its announcing family, stripping the
// histogram suffixes.
func resolveFamily(fams map[string]*expFamily, name string) (f *expFamily, base, suffix string) {
	if f = fams[name]; f != nil {
		return f, name, ""
	}
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, sfx) {
			base = strings.TrimSuffix(name, sfx)
			if f = fams[base]; f != nil {
				return f, base, sfx[1:]
			}
		}
	}
	return nil, "", ""
}

func fieldAfter(line, prefix string) string {
	rest := strings.TrimPrefix(line, prefix)
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		return rest[:i]
	}
	return rest
}

// splitSample parses `name{labels} value` (labels optional).
func splitSample(line string) (name, labels string, value float64, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", "", 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
	if err != nil {
		return "", "", 0, false
	}
	id := strings.TrimSpace(line[:sp])
	if br := strings.IndexByte(id, '{'); br >= 0 {
		if !strings.HasSuffix(id, "}") {
			return "", "", 0, false
		}
		return id[:br], id[br:], v, true
	}
	return id, "", v, true
}

// extractLE pulls the le label out of a rendered bucket label set,
// returning the remaining labels as the series key.
func extractLE(labels string) (le, rest string, err error) {
	if !strings.HasPrefix(labels, "{") || !strings.HasSuffix(labels, "}") {
		return "", "", fmt.Errorf("bucket sample without labels (%q)", labels)
	}
	inner := labels[1 : len(labels)-1]
	parts := splitLabels(inner)
	var kept []string
	for _, p := range parts {
		if strings.HasPrefix(p, `le="`) && strings.HasSuffix(p, `"`) {
			le = p[len(`le="`) : len(p)-1]
			continue
		}
		kept = append(kept, p)
	}
	if le == "" {
		return "", "", fmt.Errorf("bucket sample missing le label (%q)", labels)
	}
	if len(kept) == 0 {
		return le, "", nil
	}
	return le, "{" + strings.Join(kept, ",") + "}", nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped char
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
