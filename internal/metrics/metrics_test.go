package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments returned non-zero values")
	}
	var r *Registry
	if r.Counter("x", "h") != nil || r.Gauge("x", "h") != nil || r.Histogram("x", "h", nil) != nil {
		t.Fatal("nil registry returned live instruments")
	}
	r.GaugeFunc("x", "h", func() float64 { return 1 })
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledPathZeroAllocs pins the overhead contract: instrumentation
// calls through nil pointers must not allocate — the service layer relies
// on this to keep its warm loop at the same allocation count whether
// observability is wired or not.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(0.25)
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledHotPathZeroAllocs pins that live instruments are also
// allocation-free per operation (registration may allocate; recording may
// not).
func TestEnabledHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	g := r.Gauge("depth", "depth")
	h := r.Histogram("lat_seconds", "latency", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(2)
		h.Observe(0.003)
	})
	if allocs != 0 {
		t.Fatalf("enabled instrumentation allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs", L("shard", "0")...)
	c.Add(41)
	c.Inc()
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	// Same name+labels returns the same instrument.
	if c2 := r.Counter("jobs_total", "jobs", L("shard", "0")...); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("queue_depth", "depth")
	g.Set(7)
	g.Set(3)
	if g.Value() != 3 {
		t.Fatalf("gauge = %g, want 3", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5 (NaN dropped)", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+2+100; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	text := render(t, r)
	for _, want := range []string{
		`lat_bucket{le="0.1"} 2`, // 0.05 and 0.1 (le is inclusive)
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ccfd_jobs_admitted_total", "Jobs admitted.", L("shard", "0")...).Add(3)
	r.Counter("ccfd_jobs_admitted_total", "Jobs admitted.", L("shard", "1")...).Add(5)
	r.Gauge("ccfd_queue_depth", "Queue depth.", L("shard", "0")...).Set(2)
	r.GaugeFunc("ccfd_uptime_seconds", "Uptime.", func() float64 { return 12.5 })
	r.Histogram("ccfd_decision_latency_seconds", "Latency.", []float64{0.001, 0.01}, L("shard", "0")...).Observe(0.002)
	r.Gauge("weird_value", "Escaping.", Label{Name: "path", Value: "a\"b\\c\nd"}).Set(1)

	text := render(t, r)
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# HELP ccfd_jobs_admitted_total Jobs admitted.",
		"# TYPE ccfd_jobs_admitted_total counter",
		`ccfd_jobs_admitted_total{shard="0"} 3`,
		`ccfd_jobs_admitted_total{shard="1"} 5`,
		"# TYPE ccfd_decision_latency_seconds histogram",
		`ccfd_decision_latency_seconds_bucket{shard="0",le="+Inf"} 1`,
		`ccfd_decision_latency_seconds_count{shard="0"} 1`,
		"ccfd_uptime_seconds 12.5",
		`weird_value{path="a\"b\\c\nd"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("bad name!", "nope")
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "h")
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "n")
	h := r.Histogram("v", "v", []float64{1, 2, 4})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 5))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if got, want := h.Sum(), float64(workers)*per/5*(0+1+2+3+4); math.Abs(got-want) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %g", got, want)
	}
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestValidateExpositionRejectsDamage exercises the validator the service
// tests reuse.
func TestValidateExpositionRejectsDamage(t *testing.T) {
	bad := []string{
		"no_type_line 1\n",
		"# TYPE h histogram\n# HELP h h\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n", // non-cumulative
		"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",                          // no +Inf
	}
	for i, text := range bad {
		if err := ValidateExposition(text); err == nil {
			t.Fatalf("case %d: damaged exposition validated:\n%s", i, text)
		}
	}
}

// BenchmarkObserve keeps an eye on the hot-path cost of one histogram
// observation (a binary search over ~18 bounds plus three atomics).
func BenchmarkObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("lat", "l", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 1e-4)
	}
}
