// Package metrics is the daemon's instrumentation core: atomic counters,
// gauges and fixed-bucket histograms behind a Registry that renders the
// Prometheus text exposition format (version 0.0.4). It is dependency-free
// by design — the repo vendors nothing — and follows the PR 3 overhead
// contract: every instrument is safe to call through a nil pointer (a
// no-op), so disabled instrumentation costs one nil check and zero
// allocations, and the service layer can keep its hot loop byte-identical
// whether metrics are on or off.
//
// Concurrency: instruments are lock-free (single atomics; histograms use
// one atomic per bucket plus a CAS loop for the float sum) and safe for
// any number of writers. Registration takes the registry lock and is
// expected at startup; scraping takes the same lock only to snapshot the
// family list, then reads instrument values atomically, so a scrape never
// blocks a writer.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is ready to
// use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 through nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value reads 0; a nil
// *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 through nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: observation counts per upper bound (le), a total count, and a
// running sum. Bounds are set at registration and never change, so
// Observe is a binary search plus two atomic adds. A nil *Histogram is a
// no-op.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	// Drop duplicates and non-finite bounds; +Inf is always implicit.
	w := 0
	for i, x := range b {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if w > 0 && b[w-1] == b[i] {
			continue
		}
		b[w] = x
		w++
	}
	b = b[:w]
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. NaN observations are dropped (a NaN sum would
// poison the series forever).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound is >= v; the +Inf bucket backstops.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations (0 through nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 through nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefBuckets are the default latency buckets (seconds), spanning 100µs to
// ~100s — wide enough for both sub-millisecond decisions and multi-second
// snapshot writes.
var DefBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 100,
}

// ExpBuckets returns n buckets starting at start, each factor times the
// previous — the standard exponential ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Label is one name/value pair. Series within a family are identified by
// their ordered label list; register the same (name, labels) twice and you
// get the same instrument back.
type Label struct {
	Name, Value string
}

// L is shorthand for a label list.
func L(pairs ...string) []Label {
	if len(pairs)%2 != 0 {
		panic("metrics: L needs name/value pairs")
	}
	out := make([]Label, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Label{Name: pairs[i], Value: pairs[i+1]})
	}
	return out
}

// series is one labeled instrument inside a family.
type series struct {
	labels []Label
	key    string // rendered label string, the identity within the family

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name, help string
	typ        string // "counter", "gauge", "histogram"
	buckets    []float64
	series     []*series
	byKey      map[string]*series
}

// Registry holds metric families and renders them. Construct with
// NewRegistry; a nil *Registry returns nil instruments from every
// constructor, so a component wired to a nil registry is fully disabled
// without a single branch at its call sites.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family fetches or creates the named family, enforcing one type and help
// string per name.
func (r *Registry) family(name, help, typ string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, byKey: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// fetch returns the series for the label set, creating it via mk.
func (f *family) fetch(labels []Label, mk func(*series)) *series {
	key := labelKey(labels)
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...), key: key}
		mk(s)
		f.byKey[key] = s
		f.series = append(f.series, s)
		sort.Slice(f.series, func(a, b int) bool { return f.series[a].key < f.series[b].key })
	}
	return s
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, "counter", nil).fetch(labels, func(s *series) { s.counter = &Counter{} })
	if s.counter == nil {
		panic(fmt.Sprintf("metrics: %s%s is not a counter", name, labelKey(labels)))
	}
	return s.counter
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, "gauge", nil).fetch(labels, func(s *series) { s.gauge = &Gauge{} })
	if s.gauge == nil {
		panic(fmt.Sprintf("metrics: %s%s is not a settable gauge", name, labelKey(labels)))
	}
	return s.gauge
}

// GaugeFunc registers a gauge series whose value is read at scrape time.
// The function must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, "gauge", nil).fetch(labels, func(s *series) { s.gaugeFn = fn })
}

// Histogram registers (or fetches) a histogram series. Buckets are fixed
// by the first registration of the family; nil selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram", buckets)
	s := f.fetch(labels, func(s *series) { s.hist = newHistogram(f.buckets) })
	if s.hist == nil {
		panic(fmt.Sprintf("metrics: %s%s is not a histogram", name, labelKey(labels)))
	}
	return s.hist
}

// snapshot returns the family list under the lock; the families' series
// slices are append-only, so rendering can proceed without it.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.families...)
}

// validName checks the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}
