package skew

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccf/internal/workload"
)

func genWorkload(t *testing.T, n int, skewFrac float64) *workload.Workload {
	t.Helper()
	w, err := workload.Generate(workload.Config{
		Nodes: n, CustomerTuples: 1000, OrderTuples: 10_000,
		PayloadBytes: 10, Zipf: 0.8, Skew: skewFrac,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNoSkewIsNoOp(t *testing.T) {
	w := genWorkload(t, 5, 0)
	p := PartialDuplication(w)
	if p.Adjusted != w.Chunks {
		t.Error("skewless plan should share the original matrix")
	}
	if p.LocalBytes != 0 || p.BroadcastBytes != 0 {
		t.Errorf("skewless plan moved bytes: local=%d broadcast=%d", p.LocalBytes, p.BroadcastBytes)
	}
	if err := p.Validate(w.Chunks); err != nil {
		t.Error(err)
	}
}

func TestPartialDuplicationRemovesSkewBytes(t *testing.T) {
	w := genWorkload(t, 8, 0.25)
	p := PartialDuplication(w)
	if err := p.Validate(w.Chunks); err != nil {
		t.Fatal(err)
	}
	wantLocal := int64(0.25*float64(10_000)) * 10
	if p.LocalBytes != wantLocal {
		t.Errorf("LocalBytes = %d, want %d (25%% of ORDERS)", p.LocalBytes, wantLocal)
	}
	// The adjusted skew partition must equal the original minus skew bytes.
	for i := 0; i < 8; i++ {
		want := w.Chunks.At(i, w.SkewPartition) - w.SkewBytesPerNode[i]
		if got := p.Adjusted.At(i, w.SkewPartition); got != want {
			t.Errorf("node %d adjusted chunk = %d, want %d", i, got, want)
		}
	}
	// Other partitions untouched.
	for k := 0; k < w.Chunks.P; k++ {
		if k == w.SkewPartition {
			continue
		}
		for i := 0; i < 8; i++ {
			if p.Adjusted.At(i, k) != w.Chunks.At(i, k) {
				t.Fatalf("partition %d modified by skew handling", k)
			}
		}
	}
}

func TestBroadcastTopology(t *testing.T) {
	w := genWorkload(t, 6, 0.2)
	p := PartialDuplication(w)
	n := 6
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := p.BroadcastVolumes[i*n+j]
			switch {
			case i == j && v != 0:
				t.Errorf("broadcast self-loop %d→%d = %d", i, j, v)
			case i == w.SkewOwner && j != i && v != w.BroadcastBytes:
				t.Errorf("broadcast %d→%d = %d, want %d", i, j, v, w.BroadcastBytes)
			case i != w.SkewOwner && v != 0:
				t.Errorf("non-owner node %d broadcasts %d bytes", i, v)
			}
		}
	}
	if want := int64(n-1) * w.BroadcastBytes; p.BroadcastBytes != want {
		t.Errorf("BroadcastBytes = %d, want %d", p.BroadcastBytes, want)
	}
	// Initial loads mirror the broadcast volumes.
	if p.Initial.Egress[w.SkewOwner] != int64(n-1)*w.BroadcastBytes {
		t.Errorf("owner egress = %d, want %d", p.Initial.Egress[w.SkewOwner], int64(n-1)*w.BroadcastBytes)
	}
	for j := 0; j < n; j++ {
		want := w.BroadcastBytes
		if j == w.SkewOwner {
			want = 0
		}
		if p.Initial.Ingress[j] != want {
			t.Errorf("node %d ingress = %d, want %d", j, p.Initial.Ingress[j], want)
		}
	}
}

func TestPlanConservationProperty(t *testing.T) {
	f := func(seed uint64, skewPct uint8) bool {
		frac := float64(skewPct%50) / 100
		w, err := workload.Generate(workload.Config{
			Nodes: 4, CustomerTuples: 200, OrderTuples: 2000,
			PayloadBytes: 7, Zipf: 0.5, Skew: frac, Seed: seed, JitterFrac: 0.03,
		})
		if err != nil {
			return false
		}
		p := PartialDuplication(w)
		return p.Validate(w.Chunks) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDetectHeavy(t *testing.T) {
	freq := map[int64]int64{1: 500, 2: 300, 3: 100, 4: 100}
	heavy := DetectHeavy(freq, 1000, 0.2)
	if len(heavy) != 2 {
		t.Fatalf("detected %d heavy keys, want 2", len(heavy))
	}
	if heavy[0].Key != 1 || heavy[1].Key != 2 {
		t.Errorf("heavy order = %v, want key 1 then key 2", heavy)
	}
	if heavy[0].Frac != 0.5 {
		t.Errorf("key 1 frac = %g, want 0.5", heavy[0].Frac)
	}
	if got := DetectHeavy(freq, 1000, 0.6); len(got) != 0 {
		t.Errorf("threshold 0.6 detected %v, want none", got)
	}
	if got := DetectHeavy(freq, 0, 0.1); got != nil {
		t.Errorf("zero total detected %v, want nil", got)
	}
}

func TestDetectHeavyTieBreak(t *testing.T) {
	freq := map[int64]int64{7: 400, 3: 400}
	heavy := DetectHeavy(freq, 1000, 0.1)
	if len(heavy) != 2 || heavy[0].Key != 3 {
		t.Errorf("equal-count keys must sort by key: %v", heavy)
	}
}

func TestSamplerFindsPlantedHeavyHitter(t *testing.T) {
	s := NewSampler(10)
	rng := rand.New(rand.NewSource(1))
	const total = 100_000
	for i := 0; i < total; i++ {
		if rng.Float64() < 0.3 {
			s.Observe(42)
		} else {
			s.Observe(int64(rng.Intn(10_000) + 100))
		}
	}
	if s.Seen() != total {
		t.Errorf("Seen = %d, want %d", s.Seen(), total)
	}
	heavy := s.Heavy(0.1)
	if len(heavy) != 1 || heavy[0].Key != 42 {
		t.Fatalf("sampler found %v, want only key 42", heavy)
	}
	est := float64(heavy[0].Count) / float64(total)
	if est < 0.25 || est > 0.35 {
		t.Errorf("estimated frequency %g, want ≈ 0.3", est)
	}
}

func TestSamplerRatePromotion(t *testing.T) {
	s := NewSampler(0)
	if s.Rate != 1 {
		t.Errorf("rate 0 promoted to %d, want 1", s.Rate)
	}
	s.Observe(5)
	if heavy := s.Heavy(0.5); len(heavy) != 1 {
		t.Errorf("full-rate sampler missed the only key: %v", heavy)
	}
}
