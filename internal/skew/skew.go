// Package skew implements the paper's skew handling (§III.C): detection of
// heavy-hitter join keys and the partial-duplication mitigation of Xu et al.
// (SIGMOD'08) — skewed tuples of the large relation are never transferred;
// instead the few matching tuples of the small relation are broadcast to
// every node, and the broadcast volumes become the initial status v⁰_ij of
// the co-optimization model's flows.
package skew

import (
	"fmt"
	"sort"

	"ccf/internal/partition"
	"ccf/internal/workload"
)

// Plan is the output of partial duplication on a workload: an adjusted chunk
// matrix h′ (skewed bytes removed — they stay local), the broadcast flow
// volumes, and the equivalent initial port loads for the schedulers.
type Plan struct {
	// Adjusted is h′_ik: the chunk matrix the placement scheduler sees.
	Adjusted *partition.ChunkMatrix
	// Initial holds the port loads of the broadcast flows (v⁰).
	Initial *partition.Loads
	// BroadcastVolumes is the n×n matrix (row-major) of broadcast flows.
	BroadcastVolumes []int64
	// LocalBytes counts the skewed bytes kept in place (saved traffic).
	LocalBytes int64
	// BroadcastBytes counts total bytes the broadcast injects.
	BroadcastBytes int64
}

// PartialDuplication derives the skew-handling plan for a generated
// workload. When the workload has no skew the plan is a no-op that shares
// the original matrix.
func PartialDuplication(w *workload.Workload) *Plan {
	n := w.Chunks.N
	p := &Plan{
		Initial:          &partition.Loads{Egress: make([]int64, n), Ingress: make([]int64, n)},
		BroadcastVolumes: make([]int64, n*n),
	}
	if w.SkewPartition < 0 {
		p.Adjusted = w.Chunks
		return p
	}
	p.Adjusted = w.Chunks.Clone()
	for i := 0; i < n; i++ {
		b := w.SkewBytesPerNode[i]
		if b == 0 {
			continue
		}
		p.Adjusted.Add(i, w.SkewPartition, -b)
		p.LocalBytes += b
	}
	// Broadcast the small-relation hot tuples from their owner to every
	// other node.
	src := w.SkewOwner
	for j := 0; j < n; j++ {
		if j == src {
			continue
		}
		p.BroadcastVolumes[src*n+j] = w.BroadcastBytes
		p.Initial.Egress[src] += w.BroadcastBytes
		p.Initial.Ingress[j] += w.BroadcastBytes
		p.BroadcastBytes += w.BroadcastBytes
	}
	return p
}

// HeavyKey describes one detected heavy hitter.
type HeavyKey struct {
	Key   int64
	Count int64
	Frac  float64
}

// DetectHeavy returns the keys whose frequency exceeds threshold (a fraction
// of total), sorted by descending count. This is the exact-count detector;
// production systems sample first — see Sampler.
func DetectHeavy(freq map[int64]int64, total int64, threshold float64) []HeavyKey {
	if total <= 0 {
		return nil
	}
	var out []HeavyKey
	for k, c := range freq {
		f := float64(c) / float64(total)
		if f > threshold {
			out = append(out, HeavyKey{Key: k, Count: c, Frac: f})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Key < out[b].Key
	})
	return out
}

// Sampler detects heavy hitters from a deterministic 1-in-Rate systematic
// sample of a key stream, the cheap pre-pass the paper says has negligible
// overhead (§III.C citing Kotoulas et al.).
type Sampler struct {
	Rate    int64 // sample every Rate-th key; must be >= 1
	counts  map[int64]int64
	seen    int64
	sampled int64
}

// NewSampler builds a sampler; rate < 1 is promoted to 1 (full counting).
func NewSampler(rate int64) *Sampler {
	if rate < 1 {
		rate = 1
	}
	return &Sampler{Rate: rate, counts: make(map[int64]int64)}
}

// Observe feeds one key.
func (s *Sampler) Observe(key int64) {
	s.seen++
	if s.seen%s.Rate == 0 {
		s.counts[key]++
		s.sampled++
	}
}

// Heavy estimates the keys whose population frequency exceeds threshold.
func (s *Sampler) Heavy(threshold float64) []HeavyKey {
	out := DetectHeavy(s.counts, s.sampled, threshold)
	for i := range out {
		// Scale sampled counts back to population estimates.
		out[i].Count *= s.Rate
	}
	return out
}

// Seen returns how many keys were observed.
func (s *Sampler) Seen() int64 { return s.seen }

// Validate checks plan invariants: no negative adjusted chunk, broadcast
// diagonal empty, and byte conservation (original = adjusted + local bytes
// at the skewed partition).
func (p *Plan) Validate(orig *partition.ChunkMatrix) error {
	if err := p.Adjusted.Validate(); err != nil {
		return fmt.Errorf("skew: adjusted matrix invalid: %w", err)
	}
	n := orig.N
	for i := 0; i < n; i++ {
		if p.BroadcastVolumes[i*n+i] != 0 {
			return fmt.Errorf("skew: broadcast self-loop at node %d", i)
		}
	}
	if got, want := orig.TotalBytes(), p.Adjusted.TotalBytes()+p.LocalBytes; got != want {
		return fmt.Errorf("skew: byte conservation violated: orig=%d adjusted+local=%d", got, want)
	}
	return nil
}
