// Package query implements the analytical-job layer of the paper's Figure 3:
// "an analytical job is decomposed into a sequence of distributed data
// operators", each of which redistributes data through a coflow whose
// placement CCF co-optimizes. Besides the join the paper evaluates, the
// package implements the other operators the paper names — aggregation and
// duplicate elimination (§I) — over the same chunk-matrix/coflow machinery,
// plus local pre-aggregation (combiners) as the traffic-reduction technique
// of the data-management domain.
//
// The data model is deliberately small: a Row is (Key, Value), tables are
// row bags distributed over the cluster's nodes, and every operator is
// checked against a single-node reference evaluation in the tests.
package query

import (
	"fmt"
	"sort"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/partition"
	"ccf/internal/placement"
)

// Row is one record: a grouping/join key and a value.
type Row struct {
	Key   int64
	Value int64
}

// Table is a distributed relation: Frags[i] holds node i's rows.
type Table struct {
	Name string
	// PayloadBytes is the wire size of one row.
	PayloadBytes int64
	Frags        [][]Row
}

// NewTable allocates an empty distributed table over n nodes.
func NewTable(name string, n int, payload int64) *Table {
	if payload <= 0 {
		payload = 100
	}
	return &Table{Name: name, PayloadBytes: payload, Frags: make([][]Row, n)}
}

// Nodes returns the cluster width.
func (t *Table) Nodes() int { return len(t.Frags) }

// Rows returns the total row count.
func (t *Table) Rows() int64 {
	var s int64
	for _, f := range t.Frags {
		s += int64(len(f))
	}
	return s
}

// Gather returns all rows on one node, sorted (for reference comparisons).
func (t *Table) Gather() []Row {
	var out []Row
	for _, f := range t.Frags {
		out = append(out, f...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Key != out[b].Key {
			return out[a].Key < out[b].Key
		}
		return out[a].Value < out[b].Value
	})
	return out
}

// ---------------------------------------------------------------------------
// Logical plan.
// ---------------------------------------------------------------------------

// Node is a logical plan operator.
type Node interface {
	// label names the operator for stage reports.
	label() string
}

// Scan reads a named base table.
type Scan struct{ Table string }

func (s *Scan) label() string { return "scan(" + s.Table + ")" }

// JoinOp equi-joins two inputs on Key; the output row is
// (Key, LeftValue + RightValue) for every matching pair.
type JoinOp struct{ Left, Right Node }

func (j *JoinOp) label() string { return "join" }

// AggOp groups its input by Key and sums Values. When Partial is set, each
// node pre-aggregates its fragment before the shuffle (the combiner
// optimization that trades CPU for network traffic).
type AggOp struct {
	Input   Node
	Partial bool
}

func (a *AggOp) label() string {
	if a.Partial {
		return "aggregate(partial)"
	}
	return "aggregate"
}

// DistinctOp removes duplicate (Key, Value) rows globally. Local
// deduplication always runs first (it is free of network cost).
type DistinctOp struct{ Input Node }

func (d *DistinctOp) label() string { return "distinct" }

// MapOp applies a pure per-row transform on every node — projection or
// re-keying. It is a local operator (no network stage), but a re-keying map
// forces the next keyed operator to shuffle again, which is how multi-stage
// analytical jobs chain coflows.
type MapOp struct {
	Input Node
	F     func(Row) Row
}

func (m *MapOp) label() string { return "map" }

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

// Config parameterises an executor.
type Config struct {
	// Nodes is the cluster width. Required.
	Nodes int
	// Partitions per shuffle; 0 = 15 × Nodes.
	Partitions int
	// Scheduler places every shuffle's partitions. Required.
	Scheduler placement.Scheduler
	// Bandwidth per port in bytes/sec; 0 = CoflowSim default.
	Bandwidth float64
}

// StageReport describes one operator's network stage.
type StageReport struct {
	Operator        string
	TrafficBytes    int64
	BottleneckBytes int64
	TimeSec         float64
	RowsIn          int64
	RowsOut         int64
	// FlowVolumes is the n×n byte matrix of the stage's shuffle coflow
	// (row-major); ExecuteBatch replays these as dependency-chained
	// coflows on a shared fabric.
	FlowVolumes []int64
}

// Result is a finished query execution.
type Result struct {
	Output *Table
	Stages []StageReport
	// TotalTimeSec is the summed network time of the sequential stages
	// (the paper's operators run one after another).
	TotalTimeSec float64
	// TotalTrafficBytes sums shuffle traffic over stages.
	TotalTrafficBytes int64
}

// Executor runs logical plans over a set of base tables.
type Executor struct {
	cfg    Config
	part   partition.Partitioner
	tables map[string]*Table
}

// NewExecutor validates the config and registers the base tables.
func NewExecutor(cfg Config, tables ...*Table) (*Executor, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("query: Nodes must be positive, got %d", cfg.Nodes)
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("query: Scheduler is required")
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 15 * cfg.Nodes
	}
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("query: Partitions must be positive, got %d", cfg.Partitions)
	}
	e := &Executor{
		cfg:    cfg,
		part:   partition.ModPartitioner{NumPartitions: cfg.Partitions},
		tables: make(map[string]*Table, len(tables)),
	}
	for _, t := range tables {
		if t.Nodes() != cfg.Nodes {
			return nil, fmt.Errorf("query: table %q spans %d nodes, cluster has %d", t.Name, t.Nodes(), cfg.Nodes)
		}
		if _, dup := e.tables[t.Name]; dup {
			return nil, fmt.Errorf("query: duplicate table %q", t.Name)
		}
		e.tables[t.Name] = t
	}
	return e, nil
}

// Execute runs a plan and reports per-stage network metrics.
func (e *Executor) Execute(plan Node) (*Result, error) {
	res := &Result{}
	out, err := e.run(plan, res)
	if err != nil {
		return nil, err
	}
	res.Output = out
	for _, s := range res.Stages {
		res.TotalTimeSec += s.TimeSec
		res.TotalTrafficBytes += s.TrafficBytes
	}
	return res, nil
}

func (e *Executor) run(node Node, res *Result) (*Table, error) {
	switch op := node.(type) {
	case *Scan:
		t, ok := e.tables[op.Table]
		if !ok {
			return nil, fmt.Errorf("query: unknown table %q", op.Table)
		}
		return t, nil
	case *JoinOp:
		l, err := e.run(op.Left, res)
		if err != nil {
			return nil, err
		}
		r, err := e.run(op.Right, res)
		if err != nil {
			return nil, err
		}
		return e.join(op, l, r, res)
	case *AggOp:
		in, err := e.run(op.Input, res)
		if err != nil {
			return nil, err
		}
		return e.aggregate(op, in, res)
	case *DistinctOp:
		in, err := e.run(op.Input, res)
		if err != nil {
			return nil, err
		}
		return e.distinct(op, in, res)
	case *MapOp:
		in, err := e.run(op.Input, res)
		if err != nil {
			return nil, err
		}
		if op.F == nil {
			return nil, fmt.Errorf("query: map operator without a function")
		}
		out := NewTable("map", e.cfg.Nodes, in.PayloadBytes)
		for i, f := range in.Frags {
			out.Frags[i] = make([]Row, len(f))
			for idx, row := range f {
				out.Frags[i][idx] = op.F(row)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("query: unknown plan node %T", node)
	}
}

// shuffle redistributes the given per-node fragments by key partition using
// the configured placement scheduler, simulates the coflow, and returns the
// post-shuffle fragments plus the stage report.
func (e *Executor) shuffle(label string, frags [][]Row, payload int64) ([][]Row, StageReport, error) {
	n, p := e.cfg.Nodes, e.cfg.Partitions
	rep := StageReport{Operator: label}
	m, err := partition.NewChunkMatrix(n, p)
	if err != nil {
		return nil, rep, fmt.Errorf("query: %s: %w", label, err)
	}
	for i, f := range frags {
		rep.RowsIn += int64(len(f))
		for _, row := range f {
			m.Add(i, e.part.Partition(row.Key), payload)
		}
	}
	pl, err := e.cfg.Scheduler.Place(m, nil)
	if err != nil {
		return nil, rep, fmt.Errorf("query: %s: placement: %w", label, err)
	}
	if err := pl.Validate(n, p); err != nil {
		return nil, rep, err
	}
	loads, err := partition.ComputeLoads(m, pl, nil)
	if err != nil {
		return nil, rep, err
	}
	rep.TrafficBytes = loads.Traffic()
	rep.BottleneckBytes = loads.Max()

	vol, err := partition.FlowVolumes(m, pl)
	if err != nil {
		return nil, rep, err
	}
	rep.FlowVolumes = vol
	cf, err := coflow.FromVolumes(0, label, 0, n, vol)
	if err != nil {
		return nil, rep, err
	}
	if len(cf.Flows) > 0 {
		fabric, err := netsim.NewFabric(n, e.cfg.Bandwidth)
		if err != nil {
			return nil, rep, err
		}
		simRep, err := netsim.NewSimulator(fabric, coflow.NewVarys()).Run([]*coflow.Coflow{cf})
		if err != nil {
			return nil, rep, fmt.Errorf("query: %s: simulation: %w", label, err)
		}
		rep.TimeSec = simRep.MaxCCT
	}

	out := make([][]Row, n)
	for i, f := range frags {
		_ = i
		for _, row := range f {
			d := pl.Dest[e.part.Partition(row.Key)]
			out[d] = append(out[d], row)
		}
	}
	return out, rep, nil
}

// taggedRow carries a join input row plus its side.
type taggedRow struct {
	row   Row
	right bool
}

func (e *Executor) join(op *JoinOp, l, r *Table, res *Result) (*Table, error) {
	n := e.cfg.Nodes
	// Both inputs shuffle in one coflow: combine their fragments for the
	// chunk matrix (co-partitioning), then join locally.
	payload := l.PayloadBytes
	if r.PayloadBytes > payload {
		payload = r.PayloadBytes
	}
	trFrags := make([][]taggedRow, n)
	for i := 0; i < n; i++ {
		trFrags[i] = make([]taggedRow, 0, len(l.Frags[i])+len(r.Frags[i]))
		for _, row := range l.Frags[i] {
			trFrags[i] = append(trFrags[i], taggedRow{row, false})
		}
		for _, row := range r.Frags[i] {
			trFrags[i] = append(trFrags[i], taggedRow{row, true})
		}
	}
	shuffled, rep, err := e.shuffleTagged(op.label(), trFrags, payload)
	if err != nil {
		return nil, err
	}

	out := NewTable("join", n, l.PayloadBytes+r.PayloadBytes)
	for i := 0; i < n; i++ {
		build := make(map[int64][]int64)
		for _, tr := range shuffled[i] {
			if !tr.right {
				build[tr.row.Key] = append(build[tr.row.Key], tr.row.Value)
			}
		}
		for _, tr := range shuffled[i] {
			if !tr.right {
				continue
			}
			for _, lv := range build[tr.row.Key] {
				out.Frags[i] = append(out.Frags[i], Row{Key: tr.row.Key, Value: lv + tr.row.Value})
			}
		}
		rep.RowsOut += int64(len(out.Frags[i]))
	}
	res.Stages = append(res.Stages, rep)
	return out, nil
}

// shuffleTagged is the join's variant of shuffle carrying a side marker.
func (e *Executor) shuffleTagged(label string, frags [][]taggedRow, payload int64) ([][]taggedRow, StageReport, error) {
	n, p := e.cfg.Nodes, e.cfg.Partitions
	rep := StageReport{Operator: label}
	m, err := partition.NewChunkMatrix(n, p)
	if err != nil {
		return nil, rep, fmt.Errorf("query: %s: %w", label, err)
	}
	for i, f := range frags {
		rep.RowsIn += int64(len(f))
		for _, tr := range f {
			m.Add(i, e.part.Partition(tr.row.Key), payload)
		}
	}
	pl, err := e.cfg.Scheduler.Place(m, nil)
	if err != nil {
		return nil, rep, fmt.Errorf("query: %s: placement: %w", label, err)
	}
	loads, err := partition.ComputeLoads(m, pl, nil)
	if err != nil {
		return nil, rep, err
	}
	rep.TrafficBytes = loads.Traffic()
	rep.BottleneckBytes = loads.Max()
	vol, err := partition.FlowVolumes(m, pl)
	if err != nil {
		return nil, rep, err
	}
	rep.FlowVolumes = vol
	cf, err := coflow.FromVolumes(0, label, 0, n, vol)
	if err != nil {
		return nil, rep, err
	}
	if len(cf.Flows) > 0 {
		fabric, err := netsim.NewFabric(n, e.cfg.Bandwidth)
		if err != nil {
			return nil, rep, err
		}
		simRep, err := netsim.NewSimulator(fabric, coflow.NewVarys()).Run([]*coflow.Coflow{cf})
		if err != nil {
			return nil, rep, err
		}
		rep.TimeSec = simRep.MaxCCT
	}
	out := make([][]taggedRow, n)
	for _, f := range frags {
		for _, tr := range f {
			d := pl.Dest[e.part.Partition(tr.row.Key)]
			out[d] = append(out[d], tr)
		}
	}
	return out, rep, nil
}

func (e *Executor) aggregate(op *AggOp, in *Table, res *Result) (*Table, error) {
	n := e.cfg.Nodes
	frags := in.Frags
	if op.Partial {
		// Combiner: collapse each node's fragment to one row per key
		// before any network movement.
		pre := make([][]Row, n)
		for i, f := range frags {
			sums := make(map[int64]int64, len(f))
			for _, row := range f {
				sums[row.Key] += row.Value
			}
			pre[i] = mapToRows(sums)
		}
		frags = pre
	}
	shuffled, rep, err := e.shuffle(op.label(), frags, in.PayloadBytes)
	if err != nil {
		return nil, err
	}
	out := NewTable("aggregate", n, in.PayloadBytes)
	for i := 0; i < n; i++ {
		sums := make(map[int64]int64, len(shuffled[i]))
		for _, row := range shuffled[i] {
			sums[row.Key] += row.Value
		}
		out.Frags[i] = mapToRows(sums)
		rep.RowsOut += int64(len(out.Frags[i]))
	}
	res.Stages = append(res.Stages, rep)
	return out, nil
}

func (e *Executor) distinct(op *DistinctOp, in *Table, res *Result) (*Table, error) {
	n := e.cfg.Nodes
	// Local dedup first: free traffic reduction, same correctness.
	pre := make([][]Row, n)
	for i, f := range in.Frags {
		seen := make(map[Row]bool, len(f))
		for _, row := range f {
			if !seen[row] {
				seen[row] = true
				pre[i] = append(pre[i], row)
			}
		}
	}
	shuffled, rep, err := e.shuffle(op.label(), pre, in.PayloadBytes)
	if err != nil {
		return nil, err
	}
	out := NewTable("distinct", n, in.PayloadBytes)
	for i := 0; i < n; i++ {
		seen := make(map[Row]bool, len(shuffled[i]))
		for _, row := range shuffled[i] {
			if !seen[row] {
				seen[row] = true
				out.Frags[i] = append(out.Frags[i], row)
			}
		}
		rep.RowsOut += int64(len(out.Frags[i]))
	}
	res.Stages = append(res.Stages, rep)
	return out, nil
}

func mapToRows(mp map[int64]int64) []Row {
	out := make([]Row, 0, len(mp))
	for k, v := range mp {
		out = append(out, Row{Key: k, Value: v})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// ---------------------------------------------------------------------------
// Reference (single-node) evaluation for correctness checks.
// ---------------------------------------------------------------------------

// Reference evaluates a plan on gathered tables, single-node, no network.
func Reference(plan Node, tables map[string][]Row) ([]Row, error) {
	switch op := plan.(type) {
	case *Scan:
		rows, ok := tables[op.Table]
		if !ok {
			return nil, fmt.Errorf("query: unknown table %q", op.Table)
		}
		return rows, nil
	case *JoinOp:
		l, err := Reference(op.Left, tables)
		if err != nil {
			return nil, err
		}
		r, err := Reference(op.Right, tables)
		if err != nil {
			return nil, err
		}
		build := make(map[int64][]int64)
		for _, row := range l {
			build[row.Key] = append(build[row.Key], row.Value)
		}
		var out []Row
		for _, row := range r {
			for _, lv := range build[row.Key] {
				out = append(out, Row{Key: row.Key, Value: lv + row.Value})
			}
		}
		return out, nil
	case *AggOp:
		in, err := Reference(op.Input, tables)
		if err != nil {
			return nil, err
		}
		sums := make(map[int64]int64)
		for _, row := range in {
			sums[row.Key] += row.Value
		}
		return mapToRows(sums), nil
	case *DistinctOp:
		in, err := Reference(op.Input, tables)
		if err != nil {
			return nil, err
		}
		seen := make(map[Row]bool)
		var out []Row
		for _, row := range in {
			if !seen[row] {
				seen[row] = true
				out = append(out, row)
			}
		}
		return out, nil
	case *MapOp:
		in, err := Reference(op.Input, tables)
		if err != nil {
			return nil, err
		}
		if op.F == nil {
			return nil, fmt.Errorf("query: map operator without a function")
		}
		out := make([]Row, len(in))
		for i, row := range in {
			out[i] = op.F(row)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("query: unknown plan node %T", plan)
	}
}

// SortRows orders rows canonically for comparisons.
func SortRows(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Key != out[b].Key {
			return out[a].Key < out[b].Key
		}
		return out[a].Value < out[b].Value
	})
	return out
}
