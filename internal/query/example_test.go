package query_test

import (
	"fmt"

	"ccf/internal/placement"
	"ccf/internal/query"
)

// A two-table analytical job written in the textual plan language, executed
// over a 2-node cluster with CCF placement.
func ExampleParsePlan() {
	plan, err := query.ParsePlan("aggregate(join(L, R), partial)")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	l := query.NewTable("L", 2, 10)
	l.Frags[0] = []query.Row{{Key: 1, Value: 100}, {Key: 2, Value: 200}}
	r := query.NewTable("R", 2, 10)
	r.Frags[1] = []query.Row{{Key: 1, Value: 1}, {Key: 1, Value: 2}, {Key: 3, Value: 3}}

	exec, err := query.NewExecutor(query.Config{Nodes: 2, Scheduler: placement.CCF{}}, l, r)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := exec.Execute(plan)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// key 1 joins twice: (100+1) + (100+2) = 203, grouped to one row.
	for _, row := range res.Output.Gather() {
		fmt.Printf("key %d sum %d\n", row.Key, row.Value)
	}
	fmt.Println("plan:", query.FormatPlan(plan))
	// Output:
	// key 1 sum 203
	// plan: aggregate(join(L, R), partial)
}
