package query

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ccf/internal/placement"
)

// buildTable distributes rows over n nodes with a zipf-like bias so the
// shuffle has interesting locality.
func buildTable(name string, n int, payload int64, rows []Row, seed int64) *Table {
	t := NewTable(name, n, payload)
	rng := rand.New(rand.NewSource(seed))
	for _, row := range rows {
		// Biased placement: lower nodes get more rows.
		node := rng.Intn(n)
		if rng.Intn(2) == 0 {
			node = node * rng.Intn(n) / n
		}
		t.Frags[node] = append(t.Frags[node], row)
	}
	return t
}

func randomRows(rng *rand.Rand, count, keySpace int) []Row {
	rows := make([]Row, count)
	for i := range rows {
		rows[i] = Row{Key: int64(rng.Intn(keySpace) + 1), Value: int64(rng.Intn(100))}
	}
	return rows
}

func gatherTables(ts ...*Table) map[string][]Row {
	out := map[string][]Row{}
	for _, t := range ts {
		out[t.Name] = t.Gather()
	}
	return out
}

func TestNewExecutorValidation(t *testing.T) {
	tbl := NewTable("t", 4, 10)
	if _, err := NewExecutor(Config{Nodes: 0, Scheduler: placement.CCF{}}, tbl); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := NewExecutor(Config{Nodes: 4}, tbl); err == nil {
		t.Error("accepted nil scheduler")
	}
	if _, err := NewExecutor(Config{Nodes: 5, Scheduler: placement.CCF{}}, tbl); err == nil {
		t.Error("accepted table with wrong node count")
	}
	if _, err := NewExecutor(Config{Nodes: 4, Scheduler: placement.CCF{}}, tbl, NewTable("t", 4, 10)); err == nil {
		t.Error("accepted duplicate table names")
	}
	e, err := NewExecutor(Config{Nodes: 4, Scheduler: placement.CCF{}}, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Partitions != 60 {
		t.Errorf("default partitions = %d, want 15×4", e.cfg.Partitions)
	}
}

func TestScanUnknownTable(t *testing.T) {
	e, _ := NewExecutor(Config{Nodes: 2, Scheduler: placement.Hash{}})
	if _, err := e.Execute(&Scan{Table: "nope"}); err == nil {
		t.Error("executed a scan of an unknown table")
	}
}

func TestJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := buildTable("L", 5, 100, randomRows(rng, 300, 40), 2)
	r := buildTable("R", 5, 100, randomRows(rng, 500, 40), 3)
	e, err := NewExecutor(Config{Nodes: 5, Scheduler: placement.CCF{}}, l, r)
	if err != nil {
		t.Fatal(err)
	}
	plan := &JoinOp{Left: &Scan{Table: "L"}, Right: &Scan{Table: "R"}}
	res, err := e.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(plan, gatherTables(l, r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output.Gather(), SortRows(want)) {
		t.Errorf("distributed join output differs from reference (%d vs %d rows)",
			res.Output.Rows(), len(want))
	}
	if len(res.Stages) != 1 || res.Stages[0].Operator != "join" {
		t.Errorf("stages = %+v, want one join stage", res.Stages)
	}
	if res.Stages[0].TimeSec <= 0 {
		t.Error("join stage reported zero network time")
	}
}

func TestAggregateMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tbl := buildTable("T", 4, 50, randomRows(rng, 400, 25), 5)
	for _, partial := range []bool{false, true} {
		e, err := NewExecutor(Config{Nodes: 4, Scheduler: placement.CCF{}}, tbl)
		if err != nil {
			t.Fatal(err)
		}
		plan := &AggOp{Input: &Scan{Table: "T"}, Partial: partial}
		res, err := e.Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Reference(plan, gatherTables(tbl))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Output.Gather(), SortRows(want)) {
			t.Errorf("partial=%v: aggregate output differs from reference", partial)
		}
	}
}

func TestPartialAggregationReducesTraffic(t *testing.T) {
	// Many duplicate keys per node ⇒ the combiner must cut shuffle bytes.
	rng := rand.New(rand.NewSource(6))
	tbl := buildTable("T", 6, 100, randomRows(rng, 3000, 20), 7)
	run := func(partial bool) int64 {
		e, err := NewExecutor(Config{Nodes: 6, Scheduler: placement.CCF{}}, tbl)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(&AggOp{Input: &Scan{Table: "T"}, Partial: partial})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTrafficBytes
	}
	naive, combined := run(false), run(true)
	if combined >= naive/2 {
		t.Errorf("combiner traffic %d not ≪ naive %d", combined, naive)
	}
}

func TestDistinctMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Heavy duplication: small key and value spaces.
	rows := make([]Row, 1000)
	for i := range rows {
		rows[i] = Row{Key: int64(rng.Intn(10)), Value: int64(rng.Intn(5))}
	}
	tbl := buildTable("T", 4, 80, rows, 9)
	e, err := NewExecutor(Config{Nodes: 4, Scheduler: placement.Mini{}}, tbl)
	if err != nil {
		t.Fatal(err)
	}
	plan := &DistinctOp{Input: &Scan{Table: "T"}}
	res, err := e.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(plan, gatherTables(tbl))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output.Gather(), SortRows(want)) {
		t.Error("distinct output differs from reference")
	}
	if res.Output.Rows() > 50 {
		t.Errorf("distinct kept %d rows from a ≤50-combination space", res.Output.Rows())
	}
}

func TestComposedPlanMatchesReference(t *testing.T) {
	// The paper's analytical-job shape: join → aggregate → distinct,
	// three sequential operators, three shuffles.
	rng := rand.New(rand.NewSource(10))
	l := buildTable("L", 5, 100, randomRows(rng, 200, 30), 11)
	r := buildTable("R", 5, 100, randomRows(rng, 400, 30), 12)
	plan := &DistinctOp{Input: &AggOp{
		Input:   &JoinOp{Left: &Scan{Table: "L"}, Right: &Scan{Table: "R"}},
		Partial: true,
	}}
	e, err := NewExecutor(Config{Nodes: 5, Scheduler: placement.CCF{}}, l, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(plan, gatherTables(l, r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output.Gather(), SortRows(want)) {
		t.Error("composed plan output differs from reference")
	}
	if len(res.Stages) != 3 {
		t.Fatalf("stages = %d, want 3 (join, aggregate, distinct)", len(res.Stages))
	}
	var sum float64
	for _, s := range res.Stages {
		sum += s.TimeSec
	}
	if res.TotalTimeSec != sum {
		t.Errorf("TotalTimeSec = %g, want sum of stages %g", res.TotalTimeSec, sum)
	}
}

func TestAllSchedulersAgreeOnResults(t *testing.T) {
	// Placement changes the network metrics, never the answer.
	rng := rand.New(rand.NewSource(13))
	l := buildTable("L", 4, 100, randomRows(rng, 150, 20), 14)
	r := buildTable("R", 4, 100, randomRows(rng, 250, 20), 15)
	plan := &AggOp{Input: &JoinOp{Left: &Scan{Table: "L"}, Right: &Scan{Table: "R"}}, Partial: true}
	var outputs [][]Row
	for _, s := range []placement.Scheduler{placement.Hash{}, placement.Mini{}, placement.CCF{}, placement.LPT{}} {
		e, err := NewExecutor(Config{Nodes: 4, Scheduler: s}, l, r)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(plan)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		outputs = append(outputs, res.Output.Gather())
	}
	for i := 1; i < len(outputs); i++ {
		if !reflect.DeepEqual(outputs[0], outputs[i]) {
			t.Fatalf("scheduler %d produced different results", i)
		}
	}
}

func TestCCFStagesNoSlowerThanHashOnZipfData(t *testing.T) {
	// On zipf-aligned data every stage's bottleneck under CCF must be at
	// most Hash's (the figure-level claim, at query granularity).
	rng := rand.New(rand.NewSource(16))
	rows := randomRows(rng, 2000, 50)
	mk := func() *Table {
		tbl := NewTable("T", 8, 100)
		zrng := rand.New(rand.NewSource(17))
		for _, row := range rows {
			// Zipf-ish: node ∝ 1/(r+1).
			node := 0
			for zrng.Float64() > 0.5 && node < 7 {
				node++
			}
			tbl.Frags[node] = append(tbl.Frags[node], row)
		}
		return tbl
	}
	run := func(s placement.Scheduler) float64 {
		e, err := NewExecutor(Config{Nodes: 8, Scheduler: s}, mk())
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Execute(&AggOp{Input: &Scan{Table: "T"}})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTimeSec
	}
	ccf, hash := run(placement.CCF{}), run(placement.Hash{})
	if ccf > hash*1.001 {
		t.Errorf("CCF query time %g > Hash %g on zipf data", ccf, hash)
	}
}

func TestQueryPropertyRandomPlans(t *testing.T) {
	scheds := []placement.Scheduler{placement.Hash{}, placement.Mini{}, placement.CCF{}}
	f := func(seed int64, schedIdx, shape uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		l := buildTable("L", n, 10, randomRows(rng, 50+rng.Intn(100), 15), seed+1)
		r := buildTable("R", n, 10, randomRows(rng, 50+rng.Intn(100), 15), seed+2)
		var plan Node
		switch shape % 4 {
		case 0:
			plan = &JoinOp{Left: &Scan{Table: "L"}, Right: &Scan{Table: "R"}}
		case 1:
			plan = &AggOp{Input: &Scan{Table: "L"}, Partial: shape%2 == 0}
		case 2:
			plan = &DistinctOp{Input: &JoinOp{Left: &Scan{Table: "L"}, Right: &Scan{Table: "R"}}}
		default:
			plan = &AggOp{Input: &JoinOp{Left: &Scan{Table: "L"}, Right: &Scan{Table: "R"}}, Partial: true}
		}
		e, err := NewExecutor(Config{Nodes: n, Scheduler: scheds[int(schedIdx)%len(scheds)]}, l, r)
		if err != nil {
			return false
		}
		res, err := e.Execute(plan)
		if err != nil {
			return false
		}
		want, err := Reference(plan, gatherTables(l, r))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(res.Output.Gather(), SortRows(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestTableHelpers(t *testing.T) {
	tbl := NewTable("x", 2, 0)
	if tbl.PayloadBytes != 100 {
		t.Errorf("zero payload promoted to %d, want 100", tbl.PayloadBytes)
	}
	tbl.Frags[0] = []Row{{2, 1}, {1, 5}}
	tbl.Frags[1] = []Row{{1, 3}}
	if tbl.Rows() != 3 {
		t.Errorf("Rows = %d, want 3", tbl.Rows())
	}
	g := tbl.Gather()
	if g[0] != (Row{1, 3}) || g[1] != (Row{1, 5}) || g[2] != (Row{2, 1}) {
		t.Errorf("Gather not sorted: %v", g)
	}
}

func TestMapOpRekeysAndForcesShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	tbl := buildTable("T", 4, 100, randomRows(rng, 500, 100), 21)
	rekey := func(r Row) Row { return Row{Key: r.Key % 7, Value: r.Value} }
	plan := &AggOp{Input: &MapOp{Input: &Scan{Table: "T"}, F: rekey}}
	e, err := NewExecutor(Config{Nodes: 4, Scheduler: placement.CCF{}}, tbl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(plan, gatherTables(tbl))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output.Gather(), SortRows(want)) {
		t.Error("map+aggregate output differs from reference")
	}
	if res.Output.Rows() > 7 {
		t.Errorf("aggregation over key%%7 kept %d groups", res.Output.Rows())
	}
}

func TestMapOpNilFunction(t *testing.T) {
	tbl := NewTable("T", 2, 10)
	e, err := NewExecutor(Config{Nodes: 2, Scheduler: placement.Hash{}}, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(&MapOp{Input: &Scan{Table: "T"}}); err == nil {
		t.Error("executed a map with nil function")
	}
	if _, err := Reference(&MapOp{Input: &Scan{Table: "T"}}, map[string][]Row{"T": nil}); err == nil {
		t.Error("reference evaluated a map with nil function")
	}
}
