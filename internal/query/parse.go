package query

// A tiny textual plan language so the CLI (cmd/ccfquery) and tests can
// express operator trees without Go code:
//
//	plan     := expr
//	expr     := scan | join | aggregate | distinct | rekey
//	scan     := IDENT | scan(IDENT)
//	join     := join(expr, expr)
//	aggregate:= aggregate(expr) | aggregate(expr, partial)
//	distinct := distinct(expr)
//	rekey    := rekeydiv(expr, N) | rekeymod(expr, N)
//
// rekeydiv maps Key → Key / N (coarsens groups); rekeymod maps Key →
// Key mod N. Both are MapOp instances, the only pure functions the textual
// form needs. Identifiers are table names; whitespace is free.

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParsePlan parses the textual plan language into an operator tree.
func ParsePlan(src string) (Node, error) {
	p := &planParser{src: src}
	node, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("query: trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	return node, nil
}

type planParser struct {
	src string
	pos int
}

func (p *planParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *planParser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *planParser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return fmt.Errorf("query: expected %q at offset %d, found %q", string(c), p.pos, rest(p.src, p.pos))
	}
	p.pos++
	return nil
}

func rest(s string, pos int) string {
	if pos >= len(s) {
		return "<end of input>"
	}
	r := s[pos:]
	if len(r) > 12 {
		r = r[:12] + "…"
	}
	return r
}

func (p *planParser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("query: expected identifier at offset %d, found %q", start, rest(p.src, start))
	}
	return p.src[start:p.pos], nil
}

func (p *planParser) integer() (int64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, fmt.Errorf("query: expected integer at offset %d, found %q", start, rest(p.src, start))
	}
	return strconv.ParseInt(p.src[start:p.pos], 10, 64)
}

func (p *planParser) parseExpr() (Node, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() != '(' {
		// Bare identifier = table scan.
		return &Scan{Table: name}, nil
	}
	switch strings.ToLower(name) {
	case "scan":
		p.pos++ // consume '('
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &Scan{Table: table}, nil
	case "join":
		p.pos++
		left, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		right, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &JoinOp{Left: left, Right: right}, nil
	case "aggregate", "agg":
		p.pos++
		in, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		partial := false
		p.skipSpace()
		if p.peek() == ',' {
			p.pos++
			flag, err := p.ident()
			if err != nil {
				return nil, err
			}
			if strings.ToLower(flag) != "partial" {
				return nil, fmt.Errorf("query: aggregate option %q; only \"partial\" is known", flag)
			}
			partial = true
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &AggOp{Input: in, Partial: partial}, nil
	case "distinct":
		p.pos++
		in, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &DistinctOp{Input: in}, nil
	case "rekeydiv", "rekeymod":
		p.pos++
		in, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		nval, err := p.integer()
		if err != nil {
			return nil, err
		}
		if nval <= 0 {
			return nil, fmt.Errorf("query: %s needs a positive modulus/divisor, got %d", name, nval)
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if strings.ToLower(name) == "rekeydiv" {
			return &MapOp{Input: in, F: func(r Row) Row { return Row{Key: r.Key / nval, Value: r.Value} }}, nil
		}
		return &MapOp{Input: in, F: func(r Row) Row {
			k := r.Key % nval
			if k < 0 {
				k += nval
			}
			return Row{Key: k, Value: r.Value}
		}}, nil
	default:
		return nil, fmt.Errorf("query: unknown operator %q at offset %d", name, p.pos)
	}
}

// FormatPlan renders an operator tree back into the plan language (MapOps
// print as map(...) since their functions are opaque).
func FormatPlan(n Node) string {
	switch op := n.(type) {
	case *Scan:
		return op.Table
	case *JoinOp:
		return "join(" + FormatPlan(op.Left) + ", " + FormatPlan(op.Right) + ")"
	case *AggOp:
		if op.Partial {
			return "aggregate(" + FormatPlan(op.Input) + ", partial)"
		}
		return "aggregate(" + FormatPlan(op.Input) + ")"
	case *DistinctOp:
		return "distinct(" + FormatPlan(op.Input) + ")"
	case *MapOp:
		return "map(" + FormatPlan(op.Input) + ")"
	default:
		return fmt.Sprintf("<%T>", n)
	}
}
