package query

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ccf/internal/placement"
)

func TestParseScan(t *testing.T) {
	for _, src := range []string{"L", " L ", "scan(L)", "scan( L )"} {
		n, err := ParsePlan(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		s, ok := n.(*Scan)
		if !ok || s.Table != "L" {
			t.Errorf("%q parsed to %#v, want scan of L", src, n)
		}
	}
}

func TestParseNested(t *testing.T) {
	n, err := ParsePlan("distinct(aggregate(rekeydiv(join(L, scan(R)), 20), partial))")
	if err != nil {
		t.Fatal(err)
	}
	d, ok := n.(*DistinctOp)
	if !ok {
		t.Fatalf("root is %T, want distinct", n)
	}
	a, ok := d.Input.(*AggOp)
	if !ok || !a.Partial {
		t.Fatalf("distinct input is %T (partial=%v), want partial aggregate", d.Input, a != nil && a.Partial)
	}
	m, ok := a.Input.(*MapOp)
	if !ok {
		t.Fatalf("aggregate input is %T, want map", a.Input)
	}
	j, ok := m.Input.(*JoinOp)
	if !ok {
		t.Fatalf("map input is %T, want join", m.Input)
	}
	if l, ok := j.Left.(*Scan); !ok || l.Table != "L" {
		t.Errorf("join left = %#v", j.Left)
	}
	if r, ok := j.Right.(*Scan); !ok || r.Table != "R" {
		t.Errorf("join right = %#v", j.Right)
	}
	// The rekey function must be Key/20.
	if got := m.F(Row{Key: 45, Value: 7}); got != (Row{Key: 2, Value: 7}) {
		t.Errorf("rekeydiv(45) = %v, want key 2", got)
	}
}

func TestParseRekeyMod(t *testing.T) {
	n, err := ParsePlan("rekeymod(T, 7)")
	if err != nil {
		t.Fatal(err)
	}
	m := n.(*MapOp)
	if got := m.F(Row{Key: 16}); got.Key != 2 {
		t.Errorf("rekeymod(16) key = %d, want 2", got.Key)
	}
	if got := m.F(Row{Key: -3}); got.Key < 0 || got.Key >= 7 {
		t.Errorf("rekeymod(-3) key = %d, want in [0,7)", got.Key)
	}
}

func TestParseAggregateAlias(t *testing.T) {
	n, err := ParsePlan("agg(T)")
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := n.(*AggOp); !ok || a.Partial {
		t.Errorf("agg(T) = %#v, want non-partial aggregate", n)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"join(L)",
		"join(L,)",
		"join(L, R",
		"aggregate(T, bogus)",
		"rekeydiv(T)",
		"rekeydiv(T, 0)",
		"rekeydiv(T, -5)",
		"unknownop(T)",
		"L extra",
		"scan()",
		"distinct(T))",
	}
	for _, src := range cases {
		if _, err := ParsePlan(src); err == nil {
			t.Errorf("ParsePlan(%q) succeeded, want error", src)
		}
	}
}

func TestFormatPlanRoundTrip(t *testing.T) {
	srcs := []string{
		"L",
		"join(L, R)",
		"aggregate(join(L, R), partial)",
		"distinct(aggregate(L))",
	}
	for _, src := range srcs {
		n, err := ParsePlan(src)
		if err != nil {
			t.Fatal(err)
		}
		formatted := FormatPlan(n)
		n2, err := ParsePlan(formatted)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", formatted, src, err)
		}
		if FormatPlan(n2) != formatted {
			t.Errorf("format not stable: %q -> %q", formatted, FormatPlan(n2))
		}
	}
	// MapOps format opaquely.
	if got := FormatPlan(&MapOp{Input: &Scan{Table: "T"}}); got != "map(T)" {
		t.Errorf("FormatPlan(map) = %q", got)
	}
}

func TestParsedPlanExecutesCorrectly(t *testing.T) {
	// End to end: parse a plan, run it distributed, compare with the
	// reference over the same parsed tree.
	rng := rand.New(rand.NewSource(31))
	l := buildTable("L", 4, 100, randomRows(rng, 200, 30), 32)
	r := buildTable("R", 4, 100, randomRows(rng, 300, 30), 33)
	plan, err := ParsePlan("aggregate(rekeymod(join(L, R), 5), partial)")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor(Config{Nodes: 4, Scheduler: placement.CCF{}}, l, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(plan, gatherTables(l, r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output.Gather(), SortRows(want)) {
		t.Error("parsed plan output differs from reference")
	}
	if res.Output.Rows() > 5 {
		t.Errorf("mod-5 grouping produced %d rows", res.Output.Rows())
	}
}

func TestParseWhitespaceRobust(t *testing.T) {
	a, err := ParsePlan("join(L,R)")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParsePlan("  join ( L ,\n\tR )  ")
	if err != nil {
		t.Fatal(err)
	}
	if FormatPlan(a) != FormatPlan(b) {
		t.Error("whitespace changed parse result")
	}
}

func TestParseDeepNesting(t *testing.T) {
	// A deep chain must parse without issue.
	src := "L"
	for i := 0; i < 50; i++ {
		src = "distinct(" + src + ")"
	}
	n, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	depth := 0
	for {
		d, ok := n.(*DistinctOp)
		if !ok {
			break
		}
		n = d.Input
		depth++
	}
	if depth != 50 {
		t.Errorf("parsed depth %d, want 50", depth)
	}
	if !strings.HasPrefix(FormatPlan(n), "L") {
		t.Error("innermost node lost")
	}
}
