package query

// Batch execution: multiple analytical jobs sharing the fabric. Logical
// results are computed per job as usual; the network side replays every
// stage's shuffle coflow on ONE simulated fabric, with stages of the same
// job chained by dependencies and different jobs overlapping freely under
// the coflow scheduler. This is where the coflow abstraction pays at the
// job level: the batch makespan is far below the sum of isolated job times
// whenever jobs do not contend on the same ports.

import (
	"fmt"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
)

// BatchJob is one plan with an arrival time.
type BatchJob struct {
	Name    string
	Plan    Node
	Arrival float64
}

// BatchResult reports a batch execution.
type BatchResult struct {
	// Results holds each job's logical output and per-stage metrics
	// (identical to running Execute on each plan alone).
	Results []*Result
	// JobCompletion[i] is the absolute time job i's last stage finished on
	// the shared fabric.
	JobCompletion []float64
	// Makespan is the batch's total network time.
	Makespan float64
	// SequentialTimeSec is Σ over jobs of their isolated network times —
	// what a one-job-at-a-time system would need.
	SequentialTimeSec float64
}

// ExecuteBatch runs the plans logically and simulates all their stage
// coflows together: within a job stage k depends on stage k−1; jobs are
// independent and overlap.
func (e *Executor) ExecuteBatch(jobs []BatchJob, sched coflow.Scheduler) (*BatchResult, error) {
	if len(jobs) == 0 {
		return &BatchResult{}, nil
	}
	if sched == nil {
		sched = coflow.NewVarys()
	}
	out := &BatchResult{
		Results:       make([]*Result, len(jobs)),
		JobCompletion: make([]float64, len(jobs)),
	}
	var cfs []*coflow.Coflow
	deps := map[int][]int{}
	// jobLast[i] is the coflow ID of job i's final stage (-1 if none).
	jobLast := make([]int, len(jobs))
	id := 0
	for ji, job := range jobs {
		if job.Arrival < 0 {
			return nil, fmt.Errorf("query: batch job %d has negative arrival %g", ji, job.Arrival)
		}
		res, err := e.Execute(job.Plan)
		if err != nil {
			return nil, fmt.Errorf("query: batch job %d (%s): %w", ji, job.Name, err)
		}
		out.Results[ji] = res
		out.SequentialTimeSec += res.TotalTimeSec
		jobLast[ji] = -1
		prev := -1
		for si, st := range res.Stages {
			cf, err := coflow.FromVolumes(id, fmt.Sprintf("%s/%s", job.Name, st.Operator), job.Arrival, e.cfg.Nodes, st.FlowVolumes)
			if err != nil {
				return nil, err
			}
			if len(cf.Flows) == 0 {
				// An all-local stage costs nothing and gates nothing
				// beyond what its predecessor already gates.
				_ = si
				continue
			}
			if prev >= 0 {
				deps[id] = []int{prev}
			}
			cfs = append(cfs, cf)
			prev = id
			jobLast[ji] = id
			id++
		}
	}

	if len(cfs) == 0 {
		for ji := range jobs {
			out.JobCompletion[ji] = jobs[ji].Arrival
		}
		return out, nil
	}
	fabric, err := netsim.NewFabric(e.cfg.Nodes, e.cfg.Bandwidth)
	if err != nil {
		return nil, err
	}
	sim := netsim.NewSimulator(fabric, sched)
	sim.Deps = deps
	rep, err := sim.Run(cfs)
	if err != nil {
		return nil, fmt.Errorf("query: batch simulation: %w", err)
	}
	out.Makespan = rep.Makespan
	byID := make(map[int]*coflow.Coflow, len(cfs))
	for _, c := range cfs {
		byID[c.ID] = c
	}
	for ji := range jobs {
		if jobLast[ji] < 0 {
			out.JobCompletion[ji] = jobs[ji].Arrival
			continue
		}
		out.JobCompletion[ji] = byID[jobLast[ji]].Completion
	}
	return out, nil
}
