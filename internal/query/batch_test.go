package query

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ccf/internal/coflow"
	"ccf/internal/placement"
)

func batchExecutor(t *testing.T, n int, seed int64) *Executor {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := buildTable("L", n, 100, randomRows(rng, 400, 40), seed+1)
	r := buildTable("R", n, 100, randomRows(rng, 600, 40), seed+2)
	e, err := NewExecutor(Config{Nodes: n, Scheduler: placement.CCF{}}, l, r)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExecuteBatchEmpty(t *testing.T) {
	e := batchExecutor(t, 4, 1)
	res, err := e.ExecuteBatch(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || len(res.Results) != 0 {
		t.Errorf("empty batch: %+v", res)
	}
}

func TestExecuteBatchMatchesIndividualResults(t *testing.T) {
	e := batchExecutor(t, 5, 2)
	planA := &JoinOp{Left: &Scan{Table: "L"}, Right: &Scan{Table: "R"}}
	planB := &AggOp{Input: &Scan{Table: "R"}, Partial: true}
	batch, err := e.ExecuteBatch([]BatchJob{
		{Name: "a", Plan: planA},
		{Name: "b", Plan: planB},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := e.Execute(planA)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch.Results[0].Output.Gather(), solo.Output.Gather()) {
		t.Error("batch logical result differs from solo execution")
	}
}

func TestExecuteBatchMakespanBelowSequential(t *testing.T) {
	// Several jobs on the shared fabric must finish no later than strictly
	// one-after-another execution (work conservation + overlap).
	e := batchExecutor(t, 6, 3)
	var jobs []BatchJob
	for i := 0; i < 4; i++ {
		jobs = append(jobs, BatchJob{
			Name: "job", Arrival: 0,
			Plan: &AggOp{Input: &JoinOp{Left: &Scan{Table: "L"}, Right: &Scan{Table: "R"}}},
		})
	}
	res, err := e.ExecuteBatch(jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > res.SequentialTimeSec*1.001 {
		t.Errorf("batch makespan %g exceeds sequential %g", res.Makespan, res.SequentialTimeSec)
	}
	for ji, c := range res.JobCompletion {
		if c <= 0 {
			t.Errorf("job %d completion = %g, want positive", ji, c)
		}
		if c > res.Makespan+1e-9 {
			t.Errorf("job %d completes at %g after makespan %g", ji, c, res.Makespan)
		}
	}
}

func TestExecuteBatchStagesOrdered(t *testing.T) {
	// A two-stage job (join then re-keyed aggregate) must not start its
	// aggregate shuffle before the join shuffle finishes; with a second
	// heavy job contending, completion reflects the chaining.
	e := batchExecutor(t, 4, 4)
	twoStage := &AggOp{Input: &MapOp{
		Input: &JoinOp{Left: &Scan{Table: "L"}, Right: &Scan{Table: "R"}},
		F:     func(r Row) Row { return Row{Key: r.Key % 3, Value: r.Value} },
	}}
	res, err := e.ExecuteBatch([]BatchJob{{Name: "2stage", Plan: twoStage}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Results[0].TotalTimeSec
	if math.Abs(res.Makespan-sum) > 1e-6*sum {
		t.Errorf("single chained job: makespan %g != sum of its stages %g", res.Makespan, sum)
	}
}

func TestExecuteBatchArrivalValidation(t *testing.T) {
	e := batchExecutor(t, 4, 5)
	_, err := e.ExecuteBatch([]BatchJob{{Plan: &Scan{Table: "L"}, Arrival: -2}}, nil)
	if err == nil {
		t.Error("accepted negative arrival")
	}
	if _, err := e.ExecuteBatch([]BatchJob{{Plan: &Scan{Table: "nope"}}}, nil); err == nil {
		t.Error("accepted unknown table")
	}
}

func TestExecuteBatchScanOnlyJob(t *testing.T) {
	// A plan with no shuffle stages completes instantly at its arrival.
	e := batchExecutor(t, 4, 6)
	res, err := e.ExecuteBatch([]BatchJob{{Name: "scan", Plan: &Scan{Table: "L"}, Arrival: 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobCompletion[0] != 3 {
		t.Errorf("scan-only completion = %g, want its arrival 3", res.JobCompletion[0])
	}
	if res.Makespan != 0 {
		t.Errorf("makespan = %g for a networkless batch, want 0", res.Makespan)
	}
}

func TestExecuteBatchDisjointJobsOverlap(t *testing.T) {
	// Two identical single-stage jobs whose shuffles use overlapping ports
	// under SEBF still satisfy: makespan < sum (overlap where possible) —
	// and with per-flow fair, too. Compare schedulers for sanity.
	e := batchExecutor(t, 8, 7)
	jobs := []BatchJob{
		{Name: "a", Plan: &AggOp{Input: &Scan{Table: "L"}}},
		{Name: "b", Plan: &AggOp{Input: &Scan{Table: "R"}}},
	}
	varys, err := e.ExecuteBatch(jobs, coflow.NewVarys())
	if err != nil {
		t.Fatal(err)
	}
	fair, err := e.ExecuteBatch(jobs, coflow.PerFlowFair{})
	if err != nil {
		t.Fatal(err)
	}
	if varys.Makespan > varys.SequentialTimeSec {
		t.Errorf("varys batch makespan %g > sequential %g", varys.Makespan, varys.SequentialTimeSec)
	}
	// Work conservation: both schedulers deliver the same bytes; makespan
	// on a shared bottleneck is equal up to scheduling order effects.
	if fair.Makespan < varys.Makespan*0.5 || fair.Makespan > varys.Makespan*2 {
		t.Errorf("schedulers wildly diverge: varys %g vs fair %g", varys.Makespan, fair.Makespan)
	}
}
