package trackjoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccf/internal/join"
	"ccf/internal/partition"
	"ccf/internal/placement"
)

func relationsFor(t *testing.T, seed uint64) (*join.Relation, *join.Relation) {
	t.Helper()
	c, o := join.GenerateRelations(join.GenConfig{
		Customers: 60, OrdersPerCust: 10, PayloadBytes: 100, Seed: seed,
	})
	return c, o
}

func TestKeyPartitionerIndexing(t *testing.T) {
	l := &join.Relation{Tuples: []join.Tuple{{Key: 5}, {Key: 2}}}
	r := &join.Relation{Tuples: []join.Tuple{{Key: 2}, {Key: 9}}}
	kp, err := NewKeyPartitioner(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if kp.P() != 3 {
		t.Fatalf("P = %d, want 3 distinct keys", kp.P())
	}
	// Sorted order: 2, 5, 9.
	want := []int64{2, 5, 9}
	for i, k := range kp.Keys() {
		if k != want[i] {
			t.Errorf("keys[%d] = %d, want %d", i, k, want[i])
		}
		if kp.Partition(k) != i {
			t.Errorf("Partition(%d) = %d, want %d", k, kp.Partition(k), i)
		}
		got, err := kp.KeyOf(i)
		if err != nil || got != k {
			t.Errorf("KeyOf(%d) = %d, %v", i, got, err)
		}
	}
	if !kp.Contains(5) || kp.Contains(7) {
		t.Error("Contains wrong")
	}
	if kp.Partition(777) != 0 {
		t.Error("unknown keys must fold to micro-partition 0")
	}
	if _, err := kp.KeyOf(99); err == nil {
		t.Error("KeyOf accepted out-of-range index")
	}
}

func TestNewKeyPartitionerEmpty(t *testing.T) {
	if _, err := NewKeyPartitioner(&join.Relation{}); err == nil {
		t.Error("accepted an empty key set")
	}
}

func TestFromPlacement(t *testing.T) {
	kp, err := NewKeyPartitioner(&join.Relation{Tuples: []join.Tuple{{Key: 1}, {Key: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	good := &partition.Placement{Dest: []int{2, 0}}
	keyPl, err := kp.FromPlacement(good)
	if err != nil {
		t.Fatal(err)
	}
	if keyPl.Dest[1] != 2 || keyPl.Dest[4] != 0 {
		t.Errorf("lifted placement = %v", keyPl.Dest)
	}
	if _, err := kp.FromPlacement(&partition.Placement{Dest: []int{1}}); err == nil {
		t.Error("accepted mis-sized placement")
	}
}

func TestPerKeyJoinCardinality(t *testing.T) {
	// The whole pipeline runs at key granularity for every scheduler.
	cust, ords := relationsFor(t, 1)
	want := join.Reference(cust, ords)
	for _, s := range []placement.Scheduler{placement.Hash{}, placement.Mini{}, placement.CCF{}} {
		cl, kp, err := BuildCluster(5, cust, ords, join.ZipfPlacer(5, 0.8, 3))
		if err != nil {
			t.Fatal(err)
		}
		if kp.P() != 60 {
			t.Fatalf("distinct keys = %d, want 60", kp.P())
		}
		res, err := join.Execute(cl, join.Options{Scheduler: s})
		if err != nil {
			t.Fatal(err)
		}
		if res.OutputTuples != want {
			t.Errorf("%s per-key: output = %d, want %d", s.Name(), res.OutputTuples, want)
		}
	}
}

func TestPerKeyMiniIsTrackJoin(t *testing.T) {
	// Per-key Mini (two-phase track join) must move no more bytes than
	// partition-level Mini: finer granularity only exposes more locality.
	cust, ords := relationsFor(t, 2)
	place := join.ZipfPlacer(6, 0.8, 4)

	clKey, _, err := BuildCluster(6, cust, ords, place)
	if err != nil {
		t.Fatal(err)
	}
	perKey, err := join.Execute(clKey, join.Options{Scheduler: placement.Mini{}})
	if err != nil {
		t.Fatal(err)
	}

	clPart := join.NewCluster(6, partition.ModPartitioner{NumPartitions: 12})
	clPart.LoadByPlacement(true, cust, join.ZipfPlacer(6, 0.8, 4))
	clPart.LoadByPlacement(false, ords, join.ZipfPlacer(6, 0.8, 4))
	perPart, err := join.Execute(clPart, join.Options{Scheduler: placement.Mini{}})
	if err != nil {
		t.Fatal(err)
	}

	if perKey.TrafficBytes > perPart.TrafficBytes {
		t.Errorf("per-key Mini traffic %d > partition-level %d", perKey.TrafficBytes, perPart.TrafficBytes)
	}
}

func TestPerKeyCCFImprovesBottleneck(t *testing.T) {
	// Finer placement granularity cannot hurt CCF's objective: per-key CCF
	// should achieve a bottleneck at most that of coarse partitioning on
	// the same data (same placer, same loads).
	cust, ords := relationsFor(t, 3)

	clKey, _, err := BuildCluster(6, cust, ords, join.ZipfPlacer(6, 0.8, 5))
	if err != nil {
		t.Fatal(err)
	}
	perKey, err := join.Execute(clKey, join.Options{Scheduler: placement.CCF{}})
	if err != nil {
		t.Fatal(err)
	}

	clPart := join.NewCluster(6, partition.ModPartitioner{NumPartitions: 6})
	clPart.LoadByPlacement(true, cust, join.ZipfPlacer(6, 0.8, 5))
	clPart.LoadByPlacement(false, ords, join.ZipfPlacer(6, 0.8, 5))
	perPart, err := join.Execute(clPart, join.Options{Scheduler: placement.CCF{}})
	if err != nil {
		t.Fatal(err)
	}

	if perKey.BottleneckBytes > perPart.BottleneckBytes {
		t.Errorf("per-key CCF bottleneck %d > coarse %d", perKey.BottleneckBytes, perPart.BottleneckBytes)
	}
}

func TestPerKeyWithSkewHandling(t *testing.T) {
	cust, ords := join.GenerateRelations(join.GenConfig{
		Customers: 50, OrdersPerCust: 20, PayloadBytes: 100, SkewFrac: 0.3, Seed: 4,
	})
	want := join.Reference(cust, ords)
	cl, _, err := BuildCluster(4, cust, ords, join.ZipfPlacer(4, 0.8, 6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := join.Execute(cl, join.Options{Scheduler: placement.CCF{}, SkewThreshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputTuples != want {
		t.Errorf("per-key + skew handling: output = %d, want %d", res.OutputTuples, want)
	}
	if len(res.SkewedKeys) != 1 || res.SkewedKeys[0] != 1 {
		t.Errorf("skewed keys = %v, want [1]", res.SkewedKeys)
	}
}

func TestPerKeyCardinalityProperty(t *testing.T) {
	scheds := []placement.Scheduler{placement.Hash{}, placement.Mini{}, placement.CCF{}}
	f := func(seed uint64, schedIdx uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 + rng.Intn(4)
		cust, ords := join.GenerateRelations(join.GenConfig{
			Customers: 10 + int64(rng.Intn(40)), OrdersPerCust: 3 + int64(rng.Intn(8)),
			PayloadBytes: 10, Seed: seed,
		})
		cl, _, err := BuildCluster(n, cust, ords, join.ZipfPlacer(n, rng.Float64(), seed+5))
		if err != nil {
			return false
		}
		res, err := join.Execute(cl, join.Options{Scheduler: scheds[int(schedIdx)%len(scheds)]})
		if err != nil {
			return false
		}
		return res.OutputTuples == join.Reference(cust, ords)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
