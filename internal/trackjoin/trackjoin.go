// Package trackjoin implements per-key scheduling, the finest-grained
// placement level the paper discusses (footnote 6): track join
// (Polychroniou et al., SIGMOD'14) minimises network traffic *per join key*
// rather than per hash partition, and the paper notes CCF "can be also
// extended to that level".
//
// The extension is exactly a change of granularity: build the chunk matrix
// with one micro-partition per distinct key and feed it to the same
// application-level schedulers. A KeyPartitioner adapts that granularity to
// the tuple-level join engine, so the whole pipeline — placement, skew
// handling, shuffle simulation, local joins, cardinality verification —
// runs unchanged at key level:
//
//   - Mini over the key matrix = two-phase track join (each key's tuples
//     gather at the node already holding most of that key's bytes —
//     minimal traffic, the paper's per-key baseline);
//   - CCF over the key matrix = per-key CCF, trading a little traffic for
//     a smaller bottleneck, as at partition level.
package trackjoin

import (
	"fmt"
	"sort"

	"ccf/internal/join"
	"ccf/internal/partition"
)

// KeyPartitioner maps each distinct join key to its own micro-partition.
// It implements partition.Partitioner over a closed key set.
type KeyPartitioner struct {
	index map[int64]int
	keys  []int64
}

// NewKeyPartitioner builds the key→micro-partition index from the distinct
// keys of the given relations. Keys are indexed in sorted order so the
// mapping is deterministic.
func NewKeyPartitioner(relations ...*join.Relation) (*KeyPartitioner, error) {
	set := make(map[int64]bool)
	for _, r := range relations {
		for _, t := range r.Tuples {
			set[t.Key] = true
		}
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("trackjoin: no keys observed")
	}
	kp := &KeyPartitioner{index: make(map[int64]int, len(set)), keys: make([]int64, 0, len(set))}
	for k := range set {
		kp.keys = append(kp.keys, k)
	}
	sort.Slice(kp.keys, func(a, b int) bool { return kp.keys[a] < kp.keys[b] })
	for i, k := range kp.keys {
		kp.index[k] = i
	}
	return kp, nil
}

// Partition implements partition.Partitioner. Unknown keys (never observed
// at build time) fold onto micro-partition 0; callers that need strictness
// should use Contains first.
func (kp *KeyPartitioner) Partition(key int64) int {
	if i, ok := kp.index[key]; ok {
		return i
	}
	return 0
}

// P implements partition.Partitioner.
func (kp *KeyPartitioner) P() int { return len(kp.keys) }

// Contains reports whether the key was part of the build set.
func (kp *KeyPartitioner) Contains(key int64) bool {
	_, ok := kp.index[key]
	return ok
}

// Keys returns the indexed keys in micro-partition order.
func (kp *KeyPartitioner) Keys() []int64 { return kp.keys }

// KeyOf returns the key of micro-partition i.
func (kp *KeyPartitioner) KeyOf(i int) (int64, error) {
	if i < 0 || i >= len(kp.keys) {
		return 0, fmt.Errorf("trackjoin: micro-partition %d outside [0,%d)", i, len(kp.keys))
	}
	return kp.keys[i], nil
}

// KeyPlacement is a per-key destination map, the track-join analogue of
// partition.Placement.
type KeyPlacement struct {
	Dest map[int64]int
}

// FromPlacement lifts a micro-partition placement back to key space.
func (kp *KeyPartitioner) FromPlacement(pl *partition.Placement) (*KeyPlacement, error) {
	if len(pl.Dest) != len(kp.keys) {
		return nil, fmt.Errorf("trackjoin: placement covers %d micro-partitions, want %d",
			len(pl.Dest), len(kp.keys))
	}
	out := &KeyPlacement{Dest: make(map[int64]int, len(kp.keys))}
	for i, d := range pl.Dest {
		out.Dest[kp.keys[i]] = d
	}
	return out, nil
}

// BuildCluster loads two relations onto a cluster partitioned at key
// granularity, using the provided per-tuple home assignment.
func BuildCluster(n int, left, right *join.Relation, place func(i int, t join.Tuple) int) (*join.Cluster, *KeyPartitioner, error) {
	kp, err := NewKeyPartitioner(left, right)
	if err != nil {
		return nil, nil, err
	}
	cl := join.NewCluster(n, kp)
	cl.LoadByPlacement(true, left, place)
	cl.LoadByPlacement(false, right, place)
	return cl, kp, nil
}
