package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccf/internal/partition"
)

func TestRefineNeverWorsens(t *testing.T) {
	f := func(seed int64, withInitial bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 2+rng.Intn(6), 2+rng.Intn(15)
		m := randomMatrix(rng, n, p, 100)
		var init *partition.Loads
		if withInitial {
			init = &partition.Loads{Egress: make([]int64, n), Ingress: make([]int64, n)}
			for i := 0; i < n; i++ {
				init.Egress[i] = int64(rng.Intn(50))
				init.Ingress[i] = int64(rng.Intn(50))
			}
		}
		start := partition.NewPlacement(p)
		for k := range start.Dest {
			start.Dest[k] = rng.Intn(n)
		}
		startT, err := partition.ComputeLoads(m, start, init)
		if err != nil {
			return false
		}
		res, err := Refine(m, start, init, RefineOptions{})
		if err != nil {
			return false
		}
		if res.Placement.Validate(n, p) != nil {
			return false
		}
		endT, err := partition.ComputeLoads(m, res.Placement, init)
		if err != nil {
			return false
		}
		// Reported values must match recomputation and never worsen.
		return res.InitialT == startT.Max() && res.FinalT == endT.Max() && res.FinalT <= res.InitialT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestRefineDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 4, 10, 50)
	start, err := Hash{}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	orig := append([]int(nil), start.Dest...)
	if _, err := Refine(m, start, nil, RefineOptions{}); err != nil {
		t.Fatal(err)
	}
	for k := range orig {
		if start.Dest[k] != orig[k] {
			t.Fatal("Refine mutated its input placement")
		}
	}
}

func TestRefineFixesBadPlacement(t *testing.T) {
	// Everything piled on node 0 (Mini's failure mode on aligned data):
	// refinement must spread it out substantially.
	rng := rand.New(rand.NewSource(3))
	n, p := 8, 64
	m := randomMatrix(rng, n, p, 100)
	start := partition.NewPlacement(p)
	for k := range start.Dest {
		start.Dest[k] = 0
	}
	res, err := Refine(m, start, nil, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalT >= res.InitialT/2 {
		t.Errorf("refine only improved T from %d to %d on a pile-up", res.InitialT, res.FinalT)
	}
	if res.Moves == 0 {
		t.Error("no moves recorded")
	}
}

func TestRefineRespectsBudgets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, 6, 30, 50)
	start := partition.NewPlacement(30)
	for k := range start.Dest {
		start.Dest[k] = 0
	}
	res, err := Refine(m, start, nil, RefineOptions{MaxMoves: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves > 3 {
		t.Errorf("moves = %d exceeds budget 3", res.Moves)
	}
	res, err = Refine(m, start, nil, RefineOptions{MaxPasses: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes > 1 {
		t.Errorf("passes = %d exceeds budget 1", res.Passes)
	}
}

func TestRefineRejectsBadInputs(t *testing.T) {
	m := partition.MustChunkMatrix(3, 2)
	if _, err := Refine(m, partition.NewPlacement(2), nil, RefineOptions{}); err == nil {
		t.Error("accepted an unassigned placement")
	}
	good := &partition.Placement{Dest: []int{0, 1}}
	bad := &partition.Loads{Egress: []int64{1}, Ingress: []int64{1, 2, 3}}
	if _, err := Refine(m, good, bad, RefineOptions{}); err == nil {
		t.Error("accepted mis-sized initial loads")
	}
}

func TestCCFRefinedAtLeastAsGoodAsCCF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 3+rng.Intn(5), 5+rng.Intn(20)
		m := randomMatrix(rng, n, p, 80)
		base, err := Evaluate(CCF{}, m, nil)
		if err != nil {
			return false
		}
		refined, err := Evaluate(CCFRefined{}, m, nil)
		if err != nil {
			return false
		}
		return refined.BottleneckBytes <= base.BottleneckBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCCFRefinedName(t *testing.T) {
	if (CCFRefined{}).Name() != "CCF-refined" {
		t.Error("wrong name")
	}
}

func TestRefineIsIdempotentAtLocalOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomMatrix(rng, 5, 25, 50)
	first, err := CCFRefined{}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Refine(m, first, nil, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 {
		t.Errorf("refining a local optimum made %d moves", res.Moves)
	}
	if res.FinalT != res.InitialT {
		t.Errorf("T changed at a local optimum: %d -> %d", res.InitialT, res.FinalT)
	}
}
