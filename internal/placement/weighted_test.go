package placement

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ccf/internal/partition"
)

func uniformCaps(n int, c float64) ([]float64, []float64) {
	eg := make([]float64, n)
	in := make([]float64, n)
	for i := range eg {
		eg[i], in[i] = c, c
	}
	return eg, in
}

func TestWeightedCCFReducesToCCFOnUniformCaps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 2+rng.Intn(5), 1+rng.Intn(12)
		m := randomMatrix(rng, n, p, 80)
		eg, in := uniformCaps(n, 7)
		w, err := WeightedCCF{EgressCap: eg, IngressCap: in}.Place(m, nil)
		if err != nil {
			return false
		}
		u, err := CCF{}.Place(m, nil)
		if err != nil {
			return false
		}
		for k := range u.Dest {
			if w.Dest[k] != u.Dest[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWeightedCCFAvoidsSlowPort(t *testing.T) {
	// Two candidate destinations hold equal chunks of a partition, but
	// node 1's ingress is 10× slower: the weighted placer must send the
	// partition to node 2 while the unweighted one (ties aside) treats
	// them identically.
	m := partition.MustChunkMatrix(3, 1)
	m.Set(0, 0, 100) // source holding most of the data
	m.Set(1, 0, 10)
	m.Set(2, 0, 10)
	eg, in := uniformCaps(3, 100)
	in[1] = 10 // node 1 ingress is slow
	pl, err := WeightedCCF{EgressCap: eg, IngressCap: in}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Dest[0] == 1 {
		t.Errorf("weighted CCF sent the partition to the slow port (dest=%d)", pl.Dest[0])
	}
}

func TestWeightedCCFBeatsPlainOnHeterogeneousFabric(t *testing.T) {
	// Power-law data plus one degraded node: the capacity-aware placer
	// must achieve a lower weighted bottleneck than the oblivious one.
	rng := rand.New(rand.NewSource(8))
	n, p := 10, 80
	m := partition.MustChunkMatrix(n, p)
	for k := 0; k < p; k++ {
		base := 10_000 + rng.Intn(1000)
		for i := 0; i < n; i++ {
			m.Set(i, k, int64(base/(i+1)))
		}
	}
	eg, in := uniformCaps(n, 1000)
	// Node 0 (the data-heavy node every partition would otherwise target)
	// has a degraded ingress link.
	in[0] = 100

	weighted, err := WeightedCCF{EgressCap: eg, IngressCap: in}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := CCF{}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := partition.ComputeLoads(m, weighted, nil)
	if err != nil {
		t.Fatal(err)
	}
	plc, err := partition.ComputeLoads(m, plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	wT, err := WeightedBottleneck(wl, eg, in)
	if err != nil {
		t.Fatal(err)
	}
	pT, err := WeightedBottleneck(plc, eg, in)
	if err != nil {
		t.Fatal(err)
	}
	if wT >= pT {
		t.Errorf("weighted CCF T = %g s not better than plain CCF %g s on degraded fabric", wT, pT)
	}
}

// weightedReference is the naive O(p·n²) weighted greedy, mirroring the
// unweighted reference test.
func weightedReference(m *partition.ChunkMatrix, egCap, inCap []float64) *partition.Placement {
	n, p := m.N, m.P
	egress := make([]int64, n)
	ingress := make([]int64, n)
	order := make([]int, p)
	for k := range order {
		order[k] = k
	}
	maxChunk, _ := m.MaxChunk()
	sort.SliceStable(order, func(a, b int) bool { return maxChunk[order[a]] > maxChunk[order[b]] })
	tot := m.PartitionTotals()
	pl := partition.NewPlacement(p)
	for _, k := range order {
		bestD := -1
		bestT := 0.0
		for d := 0; d < n; d++ {
			var T float64
			for i := 0; i < n; i++ {
				eg := egress[i]
				if i != d {
					eg += m.At(i, k)
				}
				in := ingress[i]
				if i == d {
					in += tot[k] - m.At(d, k)
				}
				if x := float64(eg) / egCap[i]; x > T {
					T = x
				}
				if x := float64(in) / inCap[i]; x > T {
					T = x
				}
			}
			if bestD == -1 || T < bestT {
				bestD, bestT = d, T
			}
		}
		pl.Dest[k] = bestD
		for i := 0; i < n; i++ {
			if i != bestD {
				egress[i] += m.At(i, k)
			}
		}
		ingress[bestD] += tot[k] - m.At(bestD, k)
	}
	return pl
}

func TestWeightedCCFMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 2+rng.Intn(5), 1+rng.Intn(10)
		m := randomMatrix(rng, n, p, 60)
		eg := make([]float64, n)
		in := make([]float64, n)
		for i := 0; i < n; i++ {
			eg[i] = float64(1 + rng.Intn(9))
			in[i] = float64(1 + rng.Intn(9))
		}
		got, err := WeightedCCF{EgressCap: eg, IngressCap: in}.Place(m, nil)
		if err != nil {
			return false
		}
		want := weightedReference(m, eg, in)
		for k := range want.Dest {
			if got.Dest[k] != want.Dest[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestWeightedCCFValidation(t *testing.T) {
	m := partition.MustChunkMatrix(3, 2)
	eg, in := uniformCaps(2, 1) // wrong size
	if _, err := (WeightedCCF{EgressCap: eg, IngressCap: in}).Place(m, nil); err == nil {
		t.Error("accepted mis-sized capacities")
	}
	eg3, in3 := uniformCaps(3, 1)
	eg3[1] = 0
	if _, err := (WeightedCCF{EgressCap: eg3, IngressCap: in3}).Place(m, nil); err == nil {
		t.Error("accepted zero capacity")
	}
	eg3[1] = 1
	bad := &partition.Loads{Egress: []int64{1}, Ingress: []int64{1, 2, 3}}
	if _, err := (WeightedCCF{EgressCap: eg3, IngressCap: in3}).Place(m, bad); err == nil {
		t.Error("accepted mis-sized initial loads")
	}
}

func TestWeightedBottleneck(t *testing.T) {
	l := &partition.Loads{Egress: []int64{100, 10}, Ingress: []int64{0, 40}}
	tv, err := WeightedBottleneck(l, []float64{10, 10}, []float64{10, 2})
	if err != nil {
		t.Fatal(err)
	}
	// egress: 10, 1; ingress: 0, 20 → 20 s.
	if math.Abs(tv-20) > 1e-12 {
		t.Errorf("WeightedBottleneck = %g, want 20", tv)
	}
	if _, err := WeightedBottleneck(l, []float64{1}, []float64{1, 1}); err == nil {
		t.Error("accepted mis-sized capacities")
	}
}
