package placement

// WeightedCCF extends Algorithm 1 to heterogeneous port capacities — the
// paper's footnote-4 generalization where constraint (1.5)'s R_l differs per
// link. The objective becomes the weighted bottleneck
//
//	T = max( max_i egress_i / egCap_i ,  max_j ingress_j / inCap_j )
//
// measured in seconds rather than bytes, and the greedy search is otherwise
// identical: partitions descending by largest chunk, each to the destination
// minimising the running weighted T.

import (
	"fmt"
	"sort"

	"ccf/internal/partition"
)

// WeightedCCF is the capacity-aware variant of CCF.
type WeightedCCF struct {
	// EgressCap and IngressCap are per-port capacities in bytes/sec.
	// Both must match the chunk matrix's node count at Place time.
	EgressCap  []float64
	IngressCap []float64
}

// Name implements Scheduler.
func (WeightedCCF) Name() string { return "CCF-weighted" }

// Place implements Scheduler.
func (c WeightedCCF) Place(m *partition.ChunkMatrix, initial *partition.Loads) (*partition.Placement, error) {
	n, p := m.N, m.P
	if len(c.EgressCap) != n || len(c.IngressCap) != n {
		return nil, fmt.Errorf("placement: WeightedCCF capacities sized %d/%d, want %d",
			len(c.EgressCap), len(c.IngressCap), n)
	}
	for i := 0; i < n; i++ {
		if c.EgressCap[i] <= 0 || c.IngressCap[i] <= 0 {
			return nil, fmt.Errorf("placement: WeightedCCF port %d has non-positive capacity", i)
		}
	}
	egress := make([]int64, n)
	ingress := make([]int64, n)
	if initial != nil {
		if len(initial.Egress) != n || len(initial.Ingress) != n {
			return nil, fmt.Errorf("placement: initial loads sized %d/%d, want %d",
				len(initial.Egress), len(initial.Ingress), n)
		}
		copy(egress, initial.Egress)
		copy(ingress, initial.Ingress)
	}

	order := make([]int, p)
	for k := range order {
		order[k] = k
	}
	maxChunk, _ := m.MaxChunk()
	sort.SliceStable(order, func(a, b int) bool {
		return maxChunk[order[a]] > maxChunk[order[b]]
	})

	tot := m.PartitionTotals()
	pl := partition.NewPlacement(p)
	col := make([]int64, n)

	for _, k := range order {
		for i := 0; i < n; i++ {
			col[i] = m.At(i, k)
		}
		tk := tot[k]

		// Top-2 of weighted (egress_i + h_ik)/egCap_i and of weighted
		// ingress_j / inCap_j, exactly as in the unweighted variant.
		var e1, e2 float64 = -1, -1
		e1i := -1
		var in1, in2 float64 = -1, -1
		in1j := -1
		for i := 0; i < n; i++ {
			ev := float64(egress[i]+col[i]) / c.EgressCap[i]
			if ev > e1 {
				e2, e1, e1i = e1, ev, i
			} else if ev > e2 {
				e2 = ev
			}
			iv := float64(ingress[i]) / c.IngressCap[i]
			if iv > in1 {
				in2, in1, in1j = in1, iv, i
			} else if iv > in2 {
				in2 = iv
			}
		}

		bestD := -1
		bestT := 0.0
		for d := 0; d < n; d++ {
			eMax := e1
			if d == e1i {
				eMax = e2
			}
			if own := float64(egress[d]) / c.EgressCap[d]; own > eMax {
				eMax = own
			}
			iOther := in1
			if d == in1j {
				iOther = in2
			}
			iD := float64(ingress[d]+tk-col[d]) / c.IngressCap[d]
			t := eMax
			if iOther > t {
				t = iOther
			}
			if iD > t {
				t = iD
			}
			if bestD == -1 || t < bestT {
				bestD, bestT = d, t
			}
		}

		pl.Dest[k] = bestD
		for i := 0; i < n; i++ {
			if i != bestD {
				egress[i] += col[i]
			}
		}
		ingress[bestD] += tk - col[bestD]
	}
	return pl, nil
}

// WeightedBottleneck computes the seconds-valued objective of a placement
// under heterogeneous capacities.
func WeightedBottleneck(l *partition.Loads, egCap, inCap []float64) (float64, error) {
	if len(l.Egress) != len(egCap) || len(l.Ingress) != len(inCap) {
		return 0, fmt.Errorf("placement: loads sized %d/%d vs capacities %d/%d",
			len(l.Egress), len(l.Ingress), len(egCap), len(inCap))
	}
	var t float64
	for i, v := range l.Egress {
		if x := float64(v) / egCap[i]; x > t {
			t = x
		}
	}
	for j, v := range l.Ingress {
		if x := float64(v) / inCap[j]; x > t {
			t = x
		}
	}
	return t, nil
}
