package placement

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ccf/internal/partition"
)

func randomMatrix(rng *rand.Rand, n, p, maxChunk int) *partition.ChunkMatrix {
	m := partition.MustChunkMatrix(n, p)
	for i := range m.H {
		m.H[i] = int64(rng.Intn(maxChunk))
	}
	return m
}

func TestHashPlacement(t *testing.T) {
	m := partition.MustChunkMatrix(3, 7)
	pl, err := Hash{}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, d := range pl.Dest {
		if d != k%3 {
			t.Fatalf("Hash dest[%d] = %d, want %d", k, d, k%3)
		}
	}
}

func TestMiniKeepsLargestChunkLocal(t *testing.T) {
	m := partition.MustChunkMatrix(3, 2)
	m.Set(0, 0, 5)
	m.Set(1, 0, 9)
	m.Set(2, 1, 4)
	m.Set(0, 1, 4) // tie with node 2; lowest index wins
	pl, err := Mini{}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Dest[0] != 1 {
		t.Errorf("Mini dest[0] = %d, want 1 (largest chunk)", pl.Dest[0])
	}
	if pl.Dest[1] != 0 {
		t.Errorf("Mini dest[1] = %d, want 0 (tie to lowest index)", pl.Dest[1])
	}
}

func TestMiniMinimisesTraffic(t *testing.T) {
	// Property: no placement has lower traffic than Mini's.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 2+rng.Intn(4), 1+rng.Intn(6)
		m := randomMatrix(rng, n, p, 40)
		ev, err := Evaluate(Mini{}, m, nil)
		if err != nil {
			return false
		}
		// Exhaustive check over random alternative placements.
		for trial := 0; trial < 50; trial++ {
			alt := partition.NewPlacement(p)
			for k := range alt.Dest {
				alt.Dest[k] = rng.Intn(n)
			}
			l, err := partition.ComputeLoads(m, alt, nil)
			if err != nil {
				return false
			}
			if l.Traffic() < ev.TrafficBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// ccfReference is the textbook O(p·n²) implementation of Algorithm 1, used
// to validate the optimised incremental version.
func ccfReference(m *partition.ChunkMatrix, initial *partition.Loads, noSort bool) *partition.Placement {
	n, p := m.N, m.P
	egress := make([]int64, n)
	ingress := make([]int64, n)
	if initial != nil {
		copy(egress, initial.Egress)
		copy(ingress, initial.Ingress)
	}
	order := make([]int, p)
	for k := range order {
		order[k] = k
	}
	if !noSort {
		maxChunk, _ := m.MaxChunk()
		sort.SliceStable(order, func(a, b int) bool {
			return maxChunk[order[a]] > maxChunk[order[b]]
		})
	}
	tot := m.PartitionTotals()
	pl := partition.NewPlacement(p)
	for _, k := range order {
		bestD := -1
		var bestT int64
		for d := 0; d < n; d++ {
			var T int64
			for i := 0; i < n; i++ {
				eg := egress[i]
				if i != d {
					eg += m.At(i, k)
				}
				in := ingress[i]
				if i == d {
					in += tot[k] - m.At(d, k)
				}
				if eg > T {
					T = eg
				}
				if in > T {
					T = in
				}
			}
			if bestD == -1 || T < bestT {
				bestD, bestT = d, T
			}
		}
		pl.Dest[k] = bestD
		for i := 0; i < n; i++ {
			if i != bestD {
				egress[i] += m.At(i, k)
			}
		}
		ingress[bestD] += tot[k] - m.At(bestD, k)
	}
	return pl
}

func TestCCFMatchesReferenceImplementation(t *testing.T) {
	f := func(seed int64, withInitial, noSort bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 2+rng.Intn(6), 1+rng.Intn(12)
		m := randomMatrix(rng, n, p, 100)
		var init *partition.Loads
		if withInitial {
			init = &partition.Loads{Egress: make([]int64, n), Ingress: make([]int64, n)}
			for i := 0; i < n; i++ {
				init.Egress[i] = int64(rng.Intn(30))
				init.Ingress[i] = int64(rng.Intn(30))
			}
		}
		got, err := CCF{NoSort: noSort}.Place(m, init)
		if err != nil {
			return false
		}
		want := ccfReference(m, init, noSort)
		for k := range want.Dest {
			if got.Dest[k] != want.Dest[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCCFBeatsHashAndMiniOnAlignedZipf(t *testing.T) {
	// On the paper's rank-aligned data CCF must dominate both baselines.
	rng := rand.New(rand.NewSource(3))
	n, p := 12, 60
	m := partition.MustChunkMatrix(n, p)
	for k := 0; k < p; k++ {
		base := 1000 + rng.Intn(100)
		for i := 0; i < n; i++ {
			m.Set(i, k, int64(base/(i+1)))
		}
	}
	evalT := func(s Scheduler) int64 {
		ev, err := Evaluate(s, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ev.BottleneckBytes
	}
	ccf, hash, mini := evalT(CCF{}), evalT(Hash{}), evalT(Mini{})
	if ccf > hash {
		t.Errorf("CCF bottleneck %d > Hash %d", ccf, hash)
	}
	if ccf > mini {
		t.Errorf("CCF bottleneck %d > Mini %d", ccf, mini)
	}
}

func TestCCFNeverWorseThanBothBaselinesRandom(t *testing.T) {
	// CCF is greedy, not optimal, but on random instances it should never
	// lose to *both* baselines at once by more than its own first-step
	// choice; in practice it wins or ties the better of the two. We check
	// the weaker, always-true-looking invariant and flag regressions.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 2+rng.Intn(5), 5+rng.Intn(20)
		m := randomMatrix(rng, n, p, 50)
		get := func(s Scheduler) int64 {
			ev, err := Evaluate(s, m, nil)
			if err != nil {
				return 1 << 62
			}
			return ev.BottleneckBytes
		}
		ccf := get(CCF{})
		best := get(Hash{})
		if v := get(Mini{}); v < best {
			best = v
		}
		// Allow slack: greedy loses up to ≈1.5× on tiny adversarial random
		// instances (worst observed over 3000 seeds: 1.48×). The bound
		// catches systematic regressions without asserting optimality the
		// algorithm never promised.
		return float64(ccf) <= 1.6*float64(best)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCCFAccountsForInitialLoads(t *testing.T) {
	// Two nodes, one partition held by node 0 only. Without initial loads
	// the partition should stay on node 0 (zero traffic). With a huge
	// pre-existing ingress on node 0... it still stays (ingress only grows
	// at the destination by remote bytes = 0). But with huge pre-existing
	// egress on node 1 and the chunk on node 1, CCF must keep it local.
	m := partition.MustChunkMatrix(2, 1)
	m.Set(0, 0, 10)
	pl, err := CCF{}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Dest[0] != 0 {
		t.Errorf("dest = %d, want 0 (keep local)", pl.Dest[0])
	}
	// Now bias: node 0 already has ingress 100; assigning to node 0 adds
	// nothing (chunk is local), so it must still pick node 0 over pushing
	// 10 bytes to node 1.
	init := &partition.Loads{Egress: []int64{0, 0}, Ingress: []int64{100, 0}}
	pl, err = CCF{}.Place(m, init)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Dest[0] != 0 {
		t.Errorf("with initial ingress: dest = %d, want 0 (local move is free)", pl.Dest[0])
	}

	// Three nodes; partition spread over nodes 0 and 1. Node 1 has large
	// initial ingress, so CCF should prefer node 0 as destination.
	m2 := partition.MustChunkMatrix(3, 1)
	m2.Set(0, 0, 10)
	m2.Set(1, 0, 10)
	init2 := &partition.Loads{Egress: []int64{0, 0, 0}, Ingress: []int64{0, 50, 0}}
	pl2, err := CCF{}.Place(m2, init2)
	if err != nil {
		t.Fatal(err)
	}
	if pl2.Dest[0] != 0 {
		t.Errorf("dest = %d, want 0 (node 1 pre-loaded)", pl2.Dest[0])
	}
}

func TestCCFRejectsBadInitial(t *testing.T) {
	m := partition.MustChunkMatrix(2, 1)
	_, err := CCF{}.Place(m, &partition.Loads{Egress: []int64{1}, Ingress: []int64{1, 2}})
	if err == nil {
		t.Error("CCF accepted mis-sized initial loads")
	}
}

func TestSortOrderMatters(t *testing.T) {
	// Construct an instance where processing large partitions first wins:
	// classic greedy-makespan behaviour. We only require the sorted variant
	// to be no worse, on aligned-zipf-like data.
	rng := rand.New(rand.NewSource(11))
	worseCount := 0
	for trial := 0; trial < 50; trial++ {
		n, p := 4, 20
		m := partition.MustChunkMatrix(n, p)
		for k := 0; k < p; k++ {
			base := 1 << uint(rng.Intn(10))
			for i := 0; i < n; i++ {
				m.Set(i, k, int64(base/(i+1)+rng.Intn(3)))
			}
		}
		sorted, err := Evaluate(CCF{}, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		unsorted, err := Evaluate(CCF{NoSort: true}, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sorted.BottleneckBytes > unsorted.BottleneckBytes {
			worseCount++
		}
	}
	if worseCount > 10 {
		t.Errorf("sorted CCF lost to unsorted in %d/50 trials; the sort should help on power-law data", worseCount)
	}
}

func TestRandomPlacementValidAndDeterministic(t *testing.T) {
	m := partition.MustChunkMatrix(5, 40)
	a, err := Random{Seed: 9}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(5, 40); err != nil {
		t.Fatal(err)
	}
	b, _ := Random{Seed: 9}.Place(m, nil)
	for k := range a.Dest {
		if a.Dest[k] != b.Dest[k] {
			t.Fatal("Random placement not deterministic per seed")
		}
	}
	c, _ := Random{Seed: 10}.Place(m, nil)
	same := true
	for k := range a.Dest {
		if a.Dest[k] != c.Dest[k] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical random placements")
	}
}

func TestLPTBalancesIngress(t *testing.T) {
	// Equal-size partitions on a cold cluster: LPT spreads them 1 per node.
	n, p := 4, 4
	m := partition.MustChunkMatrix(n, p)
	for k := 0; k < p; k++ {
		for i := 0; i < n; i++ {
			m.Set(i, k, 10)
		}
	}
	pl, err := LPT{}.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, d := range pl.Dest {
		seen[d]++
	}
	for d, c := range seen {
		if c != 1 {
			t.Errorf("LPT put %d partitions on node %d; want 1 each", c, d)
		}
	}
}

func TestEvaluateReportsConsistentMetrics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 2+rng.Intn(5), 1+rng.Intn(10)
		m := randomMatrix(rng, n, p, 60)
		for _, s := range []Scheduler{Hash{}, Mini{}, CCF{}, LPT{}, Random{Seed: uint64(seed)}} {
			ev, err := Evaluate(s, m, nil)
			if err != nil {
				return false
			}
			if ev.TrafficBytes != ev.Loads.Traffic() || ev.BottleneckBytes != ev.Loads.Max() {
				return false
			}
			if ev.BottleneckBytes > ev.TrafficBytes && ev.TrafficBytes > 0 {
				return false // a single port cannot exceed total traffic
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSchedulerNames(t *testing.T) {
	cases := map[Scheduler]string{
		Hash{}:            "Hash",
		Mini{}:            "Mini",
		CCF{}:             "CCF",
		CCF{NoSort: true}: "CCF-nosort",
		LPT{}:             "LPT",
		Random{}:          "Random",
	}
	for s, want := range cases {
		if got := s.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}
