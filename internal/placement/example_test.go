package placement_test

import (
	"fmt"

	"ccf/internal/partition"
	"ccf/internal/placement"
)

// The paper's motivating instance (Figure 1): three nodes, four join keys.
// CCF recovers the co-optimal plan SP1 — one more tuple of traffic than the
// traffic-minimal plan, but a bottleneck of 3 instead of 4.
func ExampleCCF() {
	m := partition.MustChunkMatrix(3, 4)
	m.Set(0, 0, 3) // key 0: 3 tuples on node 0 ...
	m.Set(2, 0, 1)
	m.Set(0, 1, 3)
	m.Set(1, 1, 6)
	m.Set(0, 2, 1)
	m.Set(1, 2, 2)
	m.Set(1, 3, 1)
	m.Set(2, 3, 2)

	for _, s := range []placement.Scheduler{placement.Mini{}, placement.CCF{}} {
		ev, err := placement.Evaluate(s, m, nil)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%-4s moves %d tuples, bottleneck T = %d\n", s.Name(), ev.TrafficBytes, ev.BottleneckBytes)
	}
	// Output:
	// Mini moves 6 tuples, bottleneck T = 4
	// CCF  moves 7 tuples, bottleneck T = 3
}

// Refine improves any feasible placement by relocating one partition at a
// time; here it repairs a pathological everything-on-node-0 plan.
func ExampleRefine() {
	m := partition.MustChunkMatrix(4, 4)
	for k := 0; k < 4; k++ {
		for i := 0; i < 4; i++ {
			m.Set(i, k, 10)
		}
	}
	start := &partition.Placement{Dest: []int{0, 0, 0, 0}}
	res, err := placement.Refine(m, start, nil, placement.RefineOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("T: %d -> %d in %d moves\n", res.InitialT, res.FinalT, res.Moves)
	// Output:
	// T: 120 -> 60 in 2 moves
}
