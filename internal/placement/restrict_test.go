package placement

import (
	"strings"
	"testing"

	"ccf/internal/partition"
)

func TestRestrictedPlacesOnlyOnAllowedNodes(t *testing.T) {
	// 4 nodes, node 2 dead (row zeroed). Every scheduler wrapped must land
	// all partitions on {0, 1, 3}.
	m := partition.MustChunkMatrix(4, 6)
	for k := 0; k < 6; k++ {
		m.Set(k%2, k, int64(100*(k+1)))
		m.Set(3, k, 40)
	}
	allowed := []bool{true, true, false, true}
	for _, inner := range []Scheduler{Hash{}, Mini{}, CCF{}, LPT{}} {
		r := Restricted{Inner: inner, Allowed: allowed}
		pl, err := r.Place(m, nil)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if err := pl.Validate(m.N, m.P); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		for k, d := range pl.Dest {
			if d == 2 {
				t.Errorf("%s placed partition %d on dead node 2", r.Name(), k)
			}
		}
	}
}

func TestRestrictedMatchesInnerOnCompactCluster(t *testing.T) {
	// Restricting {0,1,3} of a 4-node matrix must equal running the inner
	// scheduler on the equivalent 3-node matrix, destinations mapped back.
	m := partition.MustChunkMatrix(4, 5)
	vals := [][5]int64{{90, 0, 10, 0, 5}, {0, 80, 0, 60, 0}, {0, 0, 0, 0, 0}, {30, 20, 70, 10, 0}}
	for i := range vals {
		for k, v := range vals[i] {
			m.Set(i, k, v)
		}
	}
	compact := partition.MustChunkMatrix(3, 5)
	for s, i := range []int{0, 1, 3} {
		copy(compact.Row(s), m.Row(i))
	}
	r := Restricted{Inner: CCF{}, Allowed: []bool{true, true, false, true}}
	got, err := r.Place(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CCF{}.Place(compact, nil)
	if err != nil {
		t.Fatal(err)
	}
	back := []int{0, 1, 3}
	for k := range want.Dest {
		if got.Dest[k] != back[want.Dest[k]] {
			t.Errorf("partition %d: restricted dest %d, compact dest %d (maps to %d)",
				k, got.Dest[k], want.Dest[k], back[want.Dest[k]])
		}
	}
}

func TestRestrictedInitialLoadsAreProjected(t *testing.T) {
	// A survivor with a huge residual backlog should repel CCF even when
	// the chunk matrix alone makes it attractive.
	m := partition.MustChunkMatrix(3, 1)
	m.Set(0, 0, 100)
	initial := &partition.Loads{Egress: make([]int64, 3), Ingress: []int64{0, 1_000_000, 0}}
	r := Restricted{Inner: CCF{}, Allowed: []bool{false, true, true}}
	// Dead node 0 still holds chunks: must refuse.
	if _, err := r.Place(m, initial); err == nil || !strings.Contains(err.Error(), "holds chunks") {
		t.Fatalf("err = %v, want chunk-holding refusal", err)
	}
	m.Set(0, 0, 0)
	m.Set(2, 0, 100)
	pl, err := r.Place(m, initial)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Dest[0] != 2 {
		t.Errorf("partition went to backlogged node %d, want 2", pl.Dest[0])
	}
}

func TestRestrictedValidation(t *testing.T) {
	m := partition.MustChunkMatrix(2, 2)
	if _, err := (Restricted{Inner: CCF{}, Allowed: []bool{true}}).Place(m, nil); err == nil {
		t.Error("mask length mismatch accepted")
	}
	if _, err := (Restricted{Inner: CCF{}, Allowed: []bool{false, false}}).Place(m, nil); err == nil {
		t.Error("empty survivor set accepted")
	}
}
