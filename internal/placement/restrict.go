package placement

// Restricted adapts any placement scheduler to a degraded cluster: after a
// permanent node loss, partitions may only be re-placed onto surviving
// nodes. It compacts the chunk matrix down to the allowed rows, runs the
// inner scheduler over that smaller cluster, and maps the destinations back
// to original node indices — so CCF's bottleneck reasoning (and the initial
// loads describing the survivors' residual backlog) applies unchanged to
// the residual problem.

import (
	"fmt"

	"ccf/internal/partition"
)

// Restricted wraps Inner so it only places partitions onto nodes with
// Allowed[i] == true. Rows of the chunk matrix belonging to disallowed
// nodes must be all-zero: a dead node cannot act as a source either (its
// chunks are gone — account for them before building the residual matrix).
type Restricted struct {
	Inner   Scheduler
	Allowed []bool
}

// Name implements Scheduler.
func (r Restricted) Name() string { return r.Inner.Name() + "+restricted" }

// Place implements Scheduler.
func (r Restricted) Place(m *partition.ChunkMatrix, initial *partition.Loads) (*partition.Placement, error) {
	if len(r.Allowed) != m.N {
		return nil, fmt.Errorf("placement: restricted mask covers %d nodes, matrix has %d", len(r.Allowed), m.N)
	}
	// survivors[s] is the original index of compact row s.
	survivors := make([]int, 0, m.N)
	for i, ok := range r.Allowed {
		if ok {
			survivors = append(survivors, i)
		}
	}
	if len(survivors) == 0 {
		return nil, fmt.Errorf("placement: restricted mask allows no nodes")
	}
	for i, ok := range r.Allowed {
		if ok {
			continue
		}
		for _, v := range m.Row(i) {
			if v != 0 {
				return nil, fmt.Errorf("placement: disallowed node %d still holds chunks", i)
			}
		}
	}
	sub, err := partition.NewChunkMatrix(len(survivors), m.P)
	if err != nil {
		return nil, err
	}
	for s, i := range survivors {
		copy(sub.Row(s), m.Row(i))
	}
	var subInit *partition.Loads
	if initial != nil {
		if len(initial.Egress) != m.N || len(initial.Ingress) != m.N {
			return nil, fmt.Errorf("placement: initial loads sized %d/%d, matrix has %d nodes",
				len(initial.Egress), len(initial.Ingress), m.N)
		}
		subInit = &partition.Loads{
			Egress:  make([]int64, len(survivors)),
			Ingress: make([]int64, len(survivors)),
		}
		for s, i := range survivors {
			subInit.Egress[s] = initial.Egress[i]
			subInit.Ingress[s] = initial.Ingress[i]
		}
	}
	subPl, err := r.Inner.Place(sub, subInit)
	if err != nil {
		return nil, err
	}
	if err := subPl.Validate(sub.N, sub.P); err != nil {
		return nil, fmt.Errorf("placement: inner scheduler %s produced invalid placement: %w", r.Inner.Name(), err)
	}
	pl := partition.NewPlacement(m.P)
	for k, d := range subPl.Dest {
		pl.Dest[k] = survivors[d]
	}
	return pl, nil
}
