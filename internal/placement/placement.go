// Package placement implements the application-level data-movement
// schedulers the paper compares:
//
//   - Hash: the classic hash-based join — partition k goes to node k mod n.
//     Represents network-level-only optimization (§IV.A "Baseline").
//   - Mini: traffic-minimising placement — each partition goes to the node
//     holding its largest chunk, so the fewest bytes cross the network.
//     Represents decoupled application+network optimization (track-join
//     style, §IV.A "Minimize network traffic").
//   - CCF: the paper's co-optimizing heuristic (Algorithm 1) — partitions
//     are processed in descending order of their largest chunk and each is
//     assigned to the destination that minimises the running bottleneck
//     port load T = max(max egress, max ingress).
//
// Additional schedulers (Random, LPT, CCF without the sort) support the
// ablation studies listed in DESIGN.md.
package placement

import (
	"fmt"
	"sort"

	"ccf/internal/partition"
)

// Scheduler assigns every partition of a chunk matrix to a destination node.
// The initial loads, when non-nil, describe network volume already committed
// before the redistribution starts (the v⁰_ij broadcast flows produced by
// skew handling); co-optimizing schedulers account for them, oblivious ones
// ignore them.
type Scheduler interface {
	Name() string
	Place(m *partition.ChunkMatrix, initial *partition.Loads) (*partition.Placement, error)
}

// Hash implements the baseline: destination = partition index mod n. With
// the paper's f(k) = k mod p partitioner this is exactly "each data chunk is
// assigned to a node based on its responsible hash value".
type Hash struct{}

// Name implements Scheduler.
func (Hash) Name() string { return "Hash" }

// Place implements Scheduler.
func (Hash) Place(m *partition.ChunkMatrix, _ *partition.Loads) (*partition.Placement, error) {
	pl := partition.NewPlacement(m.P)
	for k := 0; k < m.P; k++ {
		pl.Dest[k] = k % m.N
	}
	return pl, nil
}

// Mini implements the traffic-minimising scheduler: for each partition it
// examines all destinations and keeps the one minimising bytes moved, i.e.
// the node holding the largest chunk. Ties resolve to the lowest node index
// (which, with the paper's rank-aligned Zipf data, is why Mini funnels the
// entire relation into node 0).
type Mini struct{}

// Name implements Scheduler.
func (Mini) Name() string { return "Mini" }

// Place implements Scheduler.
func (Mini) Place(m *partition.ChunkMatrix, _ *partition.Loads) (*partition.Placement, error) {
	_, node := m.MaxChunk()
	return &partition.Placement{Dest: node}, nil
}

// CCF implements Algorithm 1 of the paper: a step-by-step greedy search that
// keeps the bottleneck port load T minimal after each assignment.
//
// The straightforward implementation costs O(p·n²); this one costs
// O(p·(n + log p)) by tracking, per candidate destination d, the would-be
// maxima with top-2 bookkeeping:
//
//	egress side:  assigning k to d adds h_ik to every egress i ≠ d, so the
//	              new egress max is max_i(egress_i + h_ik) unless the argmax
//	              is d itself, in which case it is the second max.
//	ingress side: only ingress_d changes, by tot_k − h_dk.
type CCF struct {
	// NoSort disables the descending sort of line 1 (ablation abl-sort).
	NoSort bool
}

// Name implements Scheduler.
func (c CCF) Name() string {
	if c.NoSort {
		return "CCF-nosort"
	}
	return "CCF"
}

// Place implements Scheduler.
func (c CCF) Place(m *partition.ChunkMatrix, initial *partition.Loads) (*partition.Placement, error) {
	n, p := m.N, m.P
	egress := make([]int64, n)
	ingress := make([]int64, n)
	if initial != nil {
		if len(initial.Egress) != n || len(initial.Ingress) != n {
			return nil, fmt.Errorf("placement: initial loads sized %d/%d, want %d",
				len(initial.Egress), len(initial.Ingress), n)
		}
		copy(egress, initial.Egress)
		copy(ingress, initial.Ingress)
	}

	// Line 1: sort partitions by their largest chunk, descending, so large
	// chunks (to which T is most sensitive) are placed first.
	order := make([]int, p)
	for k := range order {
		order[k] = k
	}
	if !c.NoSort {
		maxChunk, _ := m.MaxChunk()
		sort.SliceStable(order, func(a, b int) bool {
			return maxChunk[order[a]] > maxChunk[order[b]]
		})
	}

	tot := m.PartitionTotals()
	pl := partition.NewPlacement(p)
	col := make([]int64, n) // h_ik for the current partition

	for _, k := range order {
		for i := 0; i < n; i++ {
			col[i] = m.At(i, k)
		}
		tk := tot[k]

		// Top-2 of (egress_i + h_ik) over all i.
		var e1, e2 int64 = -1, -1
		e1i := -1
		// Top-2 of ingress_j over all j.
		var in1, in2 int64 = -1, -1
		in1j := -1
		for i := 0; i < n; i++ {
			ev := egress[i] + col[i]
			if ev > e1 {
				e2, e1, e1i = e1, ev, i
			} else if ev > e2 {
				e2 = ev
			}
			iv := ingress[i]
			if iv > in1 {
				in2, in1, in1j = in1, iv, i
			} else if iv > in2 {
				in2 = iv
			}
		}

		// Evaluate T_d for every candidate destination d in O(1).
		bestD := -1
		var bestT int64 = -1
		for d := 0; d < n; d++ {
			eMax := e1
			if d == e1i {
				eMax = e2
			}
			if egress[d] > eMax { // d's own egress is unchanged
				eMax = egress[d]
			}
			iOther := in1
			if d == in1j {
				iOther = in2
			}
			iD := ingress[d] + tk - col[d]
			t := eMax
			if iOther > t {
				t = iOther
			}
			if iD > t {
				t = iD
			}
			if bestD == -1 || t < bestT {
				bestD, bestT = d, t
			}
		}

		// Commit the assignment (line 9).
		pl.Dest[k] = bestD
		for i := 0; i < n; i++ {
			if i != bestD {
				egress[i] += col[i]
			}
		}
		ingress[bestD] += tk - col[bestD]
	}
	return pl, nil
}

// Random assigns partitions uniformly at random (deterministic per Seed).
// A sanity baseline for the ablations: it spreads ingress like Hash but has
// no locality at all.
type Random struct{ Seed uint64 }

// Name implements Scheduler.
func (Random) Name() string { return "Random" }

// Place implements Scheduler.
func (r Random) Place(m *partition.ChunkMatrix, _ *partition.Loads) (*partition.Placement, error) {
	pl := partition.NewPlacement(m.P)
	x := r.Seed | 1
	for k := 0; k < m.P; k++ {
		// xorshift64*
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		pl.Dest[k] = int((x * 0x2545F4914F6CDD1D) % uint64(m.N))
	}
	return pl, nil
}

// LPT is the classic longest-processing-time makespan heuristic applied to
// ingress only: partitions in descending total size, each to the node with
// the least accumulated ingress. It balances receivers but ignores senders
// and locality — an ablation isolating how much CCF's egress/locality terms
// contribute.
type LPT struct{}

// Name implements Scheduler.
func (LPT) Name() string { return "LPT" }

// Place implements Scheduler.
func (LPT) Place(m *partition.ChunkMatrix, initial *partition.Loads) (*partition.Placement, error) {
	n, p := m.N, m.P
	ingress := make([]int64, n)
	if initial != nil && len(initial.Ingress) == n {
		copy(ingress, initial.Ingress)
	}
	tot := m.PartitionTotals()
	order := make([]int, p)
	for k := range order {
		order[k] = k
	}
	sort.SliceStable(order, func(a, b int) bool { return tot[order[a]] > tot[order[b]] })
	pl := partition.NewPlacement(p)
	for _, k := range order {
		best := 0
		for j := 1; j < n; j++ {
			if ingress[j] < ingress[best] {
				best = j
			}
		}
		pl.Dest[k] = best
		ingress[best] += tot[k] - m.At(best, k)
	}
	return pl, nil
}

// Evaluation bundles the metrics of a placement under the bandwidth model.
type Evaluation struct {
	Placement *partition.Placement
	Loads     *partition.Loads
	// TrafficBytes is the total bytes crossing the network (remote moves
	// plus any initial broadcast volume).
	TrafficBytes int64
	// BottleneckBytes is T = max port load; CCT = T / port bandwidth for a
	// single coflow under MADD.
	BottleneckBytes int64
}

// Evaluate runs a scheduler over a chunk matrix and computes its loads,
// traffic, and bottleneck under optional initial (broadcast) volumes.
func Evaluate(s Scheduler, m *partition.ChunkMatrix, initial *partition.Loads) (*Evaluation, error) {
	pl, err := s.Place(m, initial)
	if err != nil {
		return nil, fmt.Errorf("placement: %s: %w", s.Name(), err)
	}
	loads, err := partition.ComputeLoads(m, pl, initial)
	if err != nil {
		return nil, fmt.Errorf("placement: %s produced invalid placement: %w", s.Name(), err)
	}
	return &Evaluation{
		Placement:       pl,
		Loads:           loads,
		TrafficBytes:    loads.Traffic(),
		BottleneckBytes: loads.Max(),
	}, nil
}
