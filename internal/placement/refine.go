package placement

// Local-search refinement of a placement: a bridge between Algorithm 1's
// single greedy pass and the exact solver the paper abandons for scale. The
// move neighbourhood relocates one partition at a time to the destination
// that most reduces the bottleneck T, repeating until a local optimum or a
// move budget. Each pass costs O(p·n) amortised with the same top-2
// machinery as the constructor heuristics, so refinement stays usable at
// the paper's 500-node, 7500-partition shape.

import (
	"fmt"

	"ccf/internal/partition"
)

// RefineOptions bound the search.
type RefineOptions struct {
	// MaxMoves caps accepted relocations; 0 means the package default
	// (4 × p, enough for convergence on every workload tested).
	MaxMoves int
	// MaxPasses caps full sweeps over the partitions; 0 means 8.
	MaxPasses int
}

// RefineResult reports what the search did.
type RefineResult struct {
	Placement *partition.Placement
	// InitialT and FinalT are the bottleneck loads before and after.
	InitialT int64
	FinalT   int64
	Moves    int
	Passes   int
}

// Refine improves a feasible placement by single-partition relocation until
// a local optimum or budget exhaustion. The input placement is not
// modified. Initial loads (broadcast volumes) are honoured if non-nil.
func Refine(m *partition.ChunkMatrix, pl *partition.Placement, initial *partition.Loads, opts RefineOptions) (*RefineResult, error) {
	n, p := m.N, m.P
	if err := pl.Validate(n, p); err != nil {
		return nil, fmt.Errorf("placement: refine needs a feasible start: %w", err)
	}
	if opts.MaxMoves == 0 {
		opts.MaxMoves = 4 * p
	}
	if opts.MaxPasses == 0 {
		opts.MaxPasses = 8
	}

	dest := append([]int(nil), pl.Dest...)
	egress := make([]int64, n)
	ingress := make([]int64, n)
	if initial != nil {
		if len(initial.Egress) != n || len(initial.Ingress) != n {
			return nil, fmt.Errorf("placement: initial loads sized %d/%d, want %d",
				len(initial.Egress), len(initial.Ingress), n)
		}
		copy(egress, initial.Egress)
		copy(ingress, initial.Ingress)
	}
	tot := m.PartitionTotals()
	for k := 0; k < p; k++ {
		d := dest[k]
		for i := 0; i < n; i++ {
			if i != d {
				egress[i] += m.At(i, k)
			}
		}
		ingress[d] += tot[k] - m.At(d, k)
	}
	maxOf := func() int64 {
		var t int64
		for i := 0; i < n; i++ {
			if egress[i] > t {
				t = egress[i]
			}
			if ingress[i] > t {
				t = ingress[i]
			}
		}
		return t
	}

	res := &RefineResult{InitialT: maxOf()}
	col := make([]int64, n)

	for pass := 0; pass < opts.MaxPasses && res.Moves < opts.MaxMoves; pass++ {
		improvedThisPass := false
		for k := 0; k < p && res.Moves < opts.MaxMoves; k++ {
			cur := dest[k]
			for i := 0; i < n; i++ {
				col[i] = m.At(i, k)
			}
			// Detach partition k from the state.
			for i := 0; i < n; i++ {
				if i != cur {
					egress[i] -= col[i]
				}
			}
			ingress[cur] -= tot[k] - col[cur]

			// Top-2 over the detached state, as in the constructor.
			var e1, e2 int64 = -1, -1
			e1i := -1
			var in1, in2 int64 = -1, -1
			in1j := -1
			for i := 0; i < n; i++ {
				ev := egress[i] + col[i]
				if ev > e1 {
					e2, e1, e1i = e1, ev, i
				} else if ev > e2 {
					e2 = ev
				}
				iv := ingress[i]
				if iv > in1 {
					in2, in1, in1j = in1, iv, i
				} else if iv > in2 {
					in2 = iv
				}
			}
			bestD := -1
			var bestT int64 = -1
			for d := 0; d < n; d++ {
				eMax := e1
				if d == e1i {
					eMax = e2
				}
				if egress[d] > eMax {
					eMax = egress[d]
				}
				iOther := in1
				if d == in1j {
					iOther = in2
				}
				iD := ingress[d] + tot[k] - col[d]
				t := eMax
				if iOther > t {
					t = iOther
				}
				if iD > t {
					t = iD
				}
				if bestD == -1 || t < bestT || (t == bestT && d == cur) {
					bestD, bestT = d, t
				}
			}
			// Reattach at the winner.
			if bestD != cur {
				res.Moves++
				improvedThisPass = true
			}
			dest[k] = bestD
			for i := 0; i < n; i++ {
				if i != bestD {
					egress[i] += col[i]
				}
			}
			ingress[bestD] += tot[k] - col[bestD]
		}
		res.Passes++
		if !improvedThisPass {
			break
		}
	}
	res.FinalT = maxOf()
	res.Placement = &partition.Placement{Dest: dest}
	return res, nil
}

// CCFRefined composes Algorithm 1 with local-search refinement, the
// "spend a little more scheduling time for a better T" knob.
type CCFRefined struct {
	Opts RefineOptions
}

// Name implements Scheduler.
func (CCFRefined) Name() string { return "CCF-refined" }

// Place implements Scheduler.
func (c CCFRefined) Place(m *partition.ChunkMatrix, initial *partition.Loads) (*partition.Placement, error) {
	base, err := CCF{}.Place(m, initial)
	if err != nil {
		return nil, err
	}
	res, err := Refine(m, base, initial, c.Opts)
	if err != nil {
		return nil, err
	}
	return res.Placement, nil
}
