package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ccf/internal/coflow"
)

func TestDepsChainReleasesSequentially(t *testing.T) {
	// Stage 0 (10 B) → stage 1 (5 B) on the same port: stage 1 must start
	// at t=10 and finish at 15; its CCT covers only its active transfer.
	s0 := mkCoflow(0, 0, [3]float64{0, 1, 10})
	s1 := mkCoflow(1, 0, [3]float64{0, 1, 5})
	fab, _ := NewFabric(2, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Deps = map[int][]int{1: {0}}
	rep, err := sim.Run([]*coflow.Coflow{s0, s1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Makespan-15) > 1e-9 {
		t.Errorf("makespan = %g, want 15 (sequential stages)", rep.Makespan)
	}
	if math.Abs(rep.CCTs[1]-5) > 1e-9 {
		t.Errorf("stage-1 CCT = %g, want 5 (measured from release)", rep.CCTs[1])
	}
	if math.Abs(s1.Completion-15) > 1e-9 {
		t.Errorf("stage-1 completion = %g, want 15", s1.Completion)
	}
}

func TestDepsForestOverlaps(t *testing.T) {
	// Two independent 2-stage jobs on disjoint ports overlap fully:
	// makespan = one job's length, not the sum.
	j1s0 := mkCoflow(0, 0, [3]float64{0, 1, 10})
	j1s1 := mkCoflow(1, 0, [3]float64{1, 0, 10})
	j2s0 := mkCoflow(2, 0, [3]float64{2, 3, 10})
	j2s1 := mkCoflow(3, 0, [3]float64{3, 2, 10})
	fab, _ := NewFabric(4, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Deps = map[int][]int{1: {0}, 3: {2}}
	rep, err := sim.Run([]*coflow.Coflow{j1s0, j1s1, j2s0, j2s1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Makespan-20) > 1e-9 {
		t.Errorf("makespan = %g, want 20 (jobs overlap)", rep.Makespan)
	}
}

func TestDepsDiamond(t *testing.T) {
	// 0 → {1, 2} → 3: the join stage waits for both parents.
	c0 := mkCoflow(0, 0, [3]float64{0, 1, 4})
	c1 := mkCoflow(1, 0, [3]float64{0, 1, 6}) // same port: serial after 0... dep-released at 4
	c2 := mkCoflow(2, 0, [3]float64{2, 3, 2}) // disjoint port: released at 4, done at 6
	c3 := mkCoflow(3, 0, [3]float64{0, 1, 1})
	fab, _ := NewFabric(4, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Deps = map[int][]int{1: {0}, 2: {0}, 3: {1, 2}}
	rep, err := sim.Run([]*coflow.Coflow{c0, c1, c2, c3})
	if err != nil {
		t.Fatal(err)
	}
	// 0 done at 4; 1 runs 4..10; 2 runs 4..6; 3 released at 10, done 11.
	if math.Abs(rep.Makespan-11) > 1e-9 {
		t.Errorf("makespan = %g, want 11", rep.Makespan)
	}
	if math.Abs(c3.Completion-11) > 1e-9 {
		t.Errorf("sink completion = %g, want 11", c3.Completion)
	}
}

func TestDepsValidation(t *testing.T) {
	c0 := mkCoflow(0, 0, [3]float64{0, 1, 1})
	fab, _ := NewFabric(2, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Deps = map[int][]int{0: {9}}
	if _, err := sim.Run([]*coflow.Coflow{c0}); err == nil {
		t.Error("accepted a dependency on an unknown coflow")
	}
	sim.Deps = map[int][]int{0: {0}}
	if _, err := sim.Run([]*coflow.Coflow{c0}); err == nil {
		t.Error("accepted a self-dependency")
	}
	sim.Deps = map[int][]int{9: {0}}
	if _, err := sim.Run([]*coflow.Coflow{c0}); err == nil {
		t.Error("accepted deps declared for an unknown coflow")
	}
}

func TestDepsCycleDetected(t *testing.T) {
	a := mkCoflow(0, 0, [3]float64{0, 1, 1})
	b := mkCoflow(1, 0, [3]float64{0, 1, 1})
	fab, _ := NewFabric(2, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Deps = map[int][]int{0: {1}, 1: {0}}
	if _, err := sim.Run([]*coflow.Coflow{a, b}); err == nil {
		t.Error("dependency cycle not detected")
	}
}

func TestDepsWithArrivals(t *testing.T) {
	// A dependent whose own arrival is later than its parent's completion
	// waits for the arrival, not just the dependency.
	s0 := mkCoflow(0, 0, [3]float64{0, 1, 2})
	s1 := mkCoflow(1, 10, [3]float64{0, 1, 3})
	fab, _ := NewFabric(2, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Deps = map[int][]int{1: {0}}
	rep, err := sim.Run([]*coflow.Coflow{s0, s1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Makespan-13) > 1e-9 {
		t.Errorf("makespan = %g, want 13 (arrival dominates dependency)", rep.Makespan)
	}
}

func TestDepsRandomChainsComplete(t *testing.T) {
	// Random linear chains over random fabrics always complete and honour
	// ordering: each stage completes no earlier than its predecessor.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		stages := 2 + rng.Intn(5)
		var cfs []*coflow.Coflow
		deps := map[int][]int{}
		for st := 0; st < stages; st++ {
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			cfs = append(cfs, mkCoflow(st, 0, [3]float64{float64(src), float64(dst), float64(1 + rng.Intn(50))}))
			if st > 0 {
				deps[st] = []int{st - 1}
			}
		}
		fab, _ := NewFabric(n, 1+float64(rng.Intn(4)))
		sim := NewSimulator(fab, coflow.NewVarys())
		sim.Deps = deps
		rep, err := sim.Run(cfs)
		if err != nil {
			return false
		}
		if len(rep.CCTs) != stages {
			return false
		}
		for st := 1; st < stages; st++ {
			if cfs[st].Completion < cfs[st-1].Completion-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
