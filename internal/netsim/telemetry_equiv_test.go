package netsim_test

// Telemetry non-perturbation: attaching a telemetry.Recorder must not
// change a single bit of the simulation. The probe contract (read-only
// observation, no float operations on the simulation's state) makes this a
// theorem about the code; this test pins it empirically across the same
// seeded workload space the refsim equivalence suite uses — all 8
// schedulers, heterogeneous fabrics, staggered arrivals, dependency DAGs,
// capacity events, outages, horizons, deadlines.

import (
	"fmt"
	"math/rand"
	"testing"

	"ccf/internal/netsim"
	"ccf/internal/telemetry"
)

// The Recorder must satisfy the simulator's probe interface.
var _ netsim.Probe = (*telemetry.Recorder)(nil)

// TestTelemetryDoesNotPerturbSimulation runs every scheduler over seeded
// random workloads twice — probe off, probe on — and requires the two
// Reports to be byte-identical in every deterministic field (Makespan,
// Epochs, TotalBytes, WastedBytes, MaxCCT, every CCT) and every coflow and
// flow end state to match exactly.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	const seeds = 24
	for _, pair := range schedPairs {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				spec := randomSpec(rand.New(rand.NewSource(seed)), pair.deadlines)
				fab := spec.fabric(t)

				offCfs := spec.build()
				offSim := netsim.NewSimulator(fab, pair.prod())
				offSim.Events = spec.events
				offSim.Deps = spec.deps
				if spec.horizon > 0 { // spec uses 0 for "no horizon"; netsim now uses NoHorizon
					offSim.Horizon = spec.horizon
				}
				offRep, offErr := offSim.Run(offCfs)

				onCfs := spec.build()
				onSim := netsim.NewSimulator(fab, pair.prod())
				onSim.Events = spec.events
				onSim.Deps = spec.deps
				if spec.horizon > 0 {
					onSim.Horizon = spec.horizon
				}
				rec := telemetry.NewRecorder(telemetry.Config{})
				onSim.Probe = rec
				onRep, onErr := onSim.Run(onCfs)

				tag := fmt.Sprintf("%s/seed=%d", pair.name, seed)
				if (offErr != nil) != (onErr != nil) {
					t.Fatalf("%s: error mismatch: off=%v on=%v", tag, offErr, onErr)
				}
				if offErr != nil {
					continue
				}
				if onRep.Makespan != offRep.Makespan {
					t.Errorf("%s: Makespan %v != %v", tag, onRep.Makespan, offRep.Makespan)
				}
				if onRep.Epochs != offRep.Epochs {
					t.Errorf("%s: Epochs %d != %d", tag, onRep.Epochs, offRep.Epochs)
				}
				if onRep.TotalBytes != offRep.TotalBytes {
					t.Errorf("%s: TotalBytes %v != %v", tag, onRep.TotalBytes, offRep.TotalBytes)
				}
				if onRep.WastedBytes != offRep.WastedBytes {
					t.Errorf("%s: WastedBytes %v != %v", tag, onRep.WastedBytes, offRep.WastedBytes)
				}
				if onRep.MaxCCT != offRep.MaxCCT {
					t.Errorf("%s: MaxCCT %v != %v", tag, onRep.MaxCCT, offRep.MaxCCT)
				}
				// AvgCCT is now summed in input-coflow order on both runs, so
				// it too must match exactly.
				if onRep.AvgCCT != offRep.AvgCCT {
					t.Errorf("%s: AvgCCT %v != %v", tag, onRep.AvgCCT, offRep.AvgCCT)
				}
				if len(onRep.CCTs) != len(offRep.CCTs) {
					t.Errorf("%s: %d CCTs != %d", tag, len(onRep.CCTs), len(offRep.CCTs))
				}
				for id, cct := range offRep.CCTs {
					if got, ok := onRep.CCTs[id]; !ok || got != cct {
						t.Errorf("%s: CCT[%d] = %v, want %v", tag, id, got, cct)
					}
				}
				for i := range offCfs {
					oc, nc := offCfs[i], onCfs[i]
					if nc.Completed != oc.Completed || (oc.Completed && nc.Completion != oc.Completion) {
						t.Errorf("%s: coflow %d completion (%v,%v) != (%v,%v)",
							tag, oc.ID, nc.Completed, nc.Completion, oc.Completed, oc.Completion)
					}
					if nc.SentBytes != oc.SentBytes {
						t.Errorf("%s: coflow %d SentBytes %v != %v", tag, oc.ID, nc.SentBytes, oc.SentBytes)
					}
				}
				// The recording itself should be sane: one lifecycle arrival
				// per admitted coflow, monotone non-negative sample windows.
				sum := rec.Summary()
				if sum.Makespan != offRep.Makespan {
					t.Errorf("%s: recorder makespan %v != report %v", tag, sum.Makespan, offRep.Makespan)
				}
				for _, s := range rec.Samples() {
					if s.Dur < 0 {
						t.Errorf("%s: negative sample window %v at t=%v", tag, s.Dur, s.Start)
					}
				}
			}
		})
	}
}
