package netsim_test

// Golden equivalence: the allocation-free simulator + schedulers must produce
// *bit-identical* results to the frozen pre-optimization implementation in
// internal/refsim. The optimization preserved float operation order
// everywhere (dense scratch accumulates per-port sums in the same flow order
// the maps did; max/min reductions are order-independent; sorts are over
// strict total orders so the permutation is unique), so the comparison is
// exact equality on every field except AvgCCT: the reference sums it in
// nondeterministic map-iteration order (the optimized simulator now sums in
// input-coflow order), so that one field gets an epsilon.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/refsim"
)

// cfSpec describes one coflow of a generated workload; build materialises
// fresh, independent coflow sets so the two simulators never share state.
type cfSpec struct {
	id       int
	arrival  float64
	deadline float64
	flows    []coflow.Flow
}

type workloadSpec struct {
	ports        int
	egCap, inCap []float64
	coflows      []cfSpec
	events       []netsim.CapacityEvent
	deps         map[int][]int
	horizon      float64
}

func (w *workloadSpec) build() []*coflow.Coflow {
	out := make([]*coflow.Coflow, 0, len(w.coflows))
	for _, cs := range w.coflows {
		c := coflow.New(cs.id, fmt.Sprintf("cf%d", cs.id), cs.arrival, cs.flows)
		c.Deadline = cs.deadline
		out = append(out, c)
	}
	return out
}

func (w *workloadSpec) fabric(t *testing.T) netsim.Fabric {
	t.Helper()
	f, err := netsim.NewHeterogeneousFabric(w.egCap, w.inCap)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// randomSpec draws a workload spanning the full feature space: heterogeneous
// fabrics, staggered arrivals, dependency DAGs, capacity events (including
// full port outages), horizons, and deadlines.
func randomSpec(rng *rand.Rand, withDeadlines bool) workloadSpec {
	n := 2 + rng.Intn(7)
	w := workloadSpec{ports: n}
	w.egCap = make([]float64, n)
	w.inCap = make([]float64, n)
	hetero := rng.Intn(2) == 0
	for p := 0; p < n; p++ {
		w.egCap[p], w.inCap[p] = 100, 100
		if hetero {
			w.egCap[p] = 50 + float64(rng.Intn(150))
			w.inCap[p] = 50 + float64(rng.Intn(150))
		}
	}
	ncf := 1 + rng.Intn(8)
	for ci := 0; ci < ncf; ci++ {
		cs := cfSpec{id: ci, arrival: float64(rng.Intn(40)) * 0.25}
		if withDeadlines && rng.Intn(2) == 0 {
			cs.deadline = 0.5 + rng.Float64()*20
		}
		nf := 1 + rng.Intn(10)
		for fi := 0; fi < nf; fi++ {
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			cs.flows = append(cs.flows, coflow.Flow{
				ID: fi, Src: src, Dst: dst,
				Size: float64(1 + rng.Intn(10_000)),
			})
		}
		w.coflows = append(w.coflows, cs)
	}
	if rng.Intn(3) == 0 { // dependency DAG (edges point to lower IDs only)
		w.deps = map[int][]int{}
		for ci := 1; ci < ncf; ci++ {
			if rng.Intn(3) == 0 {
				w.deps[ci] = append(w.deps[ci], rng.Intn(ci))
			}
		}
		if len(w.deps) == 0 {
			w.deps = nil
		}
	}
	if rng.Intn(5) > 0 { // capacity events, sometimes a full outage
		factors := []float64{0, 0.25, 0.5, 1, 2}
		for e := 0; e < 1+rng.Intn(3); e++ {
			w.events = append(w.events, netsim.CapacityEvent{
				Time:          rng.Float64() * 30,
				Port:          rng.Intn(n),
				EgressFactor:  factors[rng.Intn(len(factors))],
				IngressFactor: factors[rng.Intn(len(factors))],
			})
		}
	}
	if rng.Intn(5) == 0 {
		w.horizon = 1 + rng.Float64()*30
	}
	return w
}

// schedPairs pairs each production scheduler with its frozen reference twin.
var schedPairs = []struct {
	name      string
	deadlines bool
	prod, ref func() coflow.Scheduler
}{
	{"varys", false, coflow.NewVarys, refsim.NewVarys},
	{"fifo", false, coflow.NewFIFO, refsim.NewFIFO},
	{"scf", false, coflow.NewSCF, refsim.NewSCF},
	{"ncf", false, coflow.NewNCF, refsim.NewNCF},
	{"aalo", false,
		func() coflow.Scheduler { return coflow.NewAalo() },
		func() coflow.Scheduler { return refsim.NewAalo() }},
	{"per-flow-fair", false,
		func() coflow.Scheduler { return coflow.PerFlowFair{} },
		func() coflow.Scheduler { return refsim.PerFlowFair{} }},
	{"sequential-by-dest", false,
		func() coflow.Scheduler { return coflow.SequentialByDest{} },
		func() coflow.Scheduler { return refsim.SequentialByDest{} }},
	{"varys-deadline", true,
		func() coflow.Scheduler { return coflow.NewVarysDeadline() },
		func() coflow.Scheduler { return refsim.NewVarysDeadline() }},
}

func compareRuns(t *testing.T, tag string, spec *workloadSpec,
	prodCfs, refCfs []*coflow.Coflow, prodRep, refRep *netsim.Report, prodErr, refErr error) {
	t.Helper()
	if (prodErr != nil) != (refErr != nil) {
		t.Fatalf("%s: error mismatch: optimized=%v reference=%v", tag, prodErr, refErr)
	}
	if prodErr != nil {
		return // both failed the same way; no reports to compare
	}
	if prodRep.Makespan != refRep.Makespan {
		t.Errorf("%s: Makespan %v != %v", tag, prodRep.Makespan, refRep.Makespan)
	}
	if prodRep.Epochs != refRep.Epochs {
		t.Errorf("%s: Epochs %d != %d", tag, prodRep.Epochs, refRep.Epochs)
	}
	if prodRep.TotalBytes != refRep.TotalBytes {
		t.Errorf("%s: TotalBytes %v != %v", tag, prodRep.TotalBytes, refRep.TotalBytes)
	}
	if prodRep.MaxCCT != refRep.MaxCCT {
		t.Errorf("%s: MaxCCT %v != %v", tag, prodRep.MaxCCT, refRep.MaxCCT)
	}
	if len(prodRep.CCTs) != len(refRep.CCTs) {
		t.Errorf("%s: %d CCTs != %d", tag, len(prodRep.CCTs), len(refRep.CCTs))
	}
	for id, cct := range refRep.CCTs {
		if got, ok := prodRep.CCTs[id]; !ok || got != cct {
			t.Errorf("%s: CCT[%d] = %v, want %v", tag, id, got, cct)
		}
	}
	// The reference sums AvgCCT in map-iteration order (the optimized
	// simulator sums in input order for deterministic output), so it is the
	// one field where only near-equality is guaranteed.
	if d := math.Abs(prodRep.AvgCCT - refRep.AvgCCT); d > 1e-9*(1+math.Abs(refRep.AvgCCT)) {
		t.Errorf("%s: AvgCCT %v != %v (Δ=%g)", tag, prodRep.AvgCCT, refRep.AvgCCT, d)
	}
	// Flow- and coflow-level state must agree exactly too.
	for i := range refCfs {
		rc, pc := refCfs[i], prodCfs[i]
		if pc.Completed != rc.Completed || (rc.Completed && pc.Completion != rc.Completion) {
			t.Errorf("%s: coflow %d completion (%v,%v) != (%v,%v)",
				tag, rc.ID, pc.Completed, pc.Completion, rc.Completed, rc.Completion)
		}
		if pc.SentBytes != rc.SentBytes {
			t.Errorf("%s: coflow %d SentBytes %v != %v", tag, rc.ID, pc.SentBytes, rc.SentBytes)
		}
		for j := range rc.Flows {
			rf, pf := rc.Flows[j], pc.Flows[j]
			if pf.Done != rf.Done || pf.Remaining != rf.Remaining || (rf.Done && pf.EndTime != rf.EndTime) {
				t.Errorf("%s: flow %d/%d state (done=%v rem=%v end=%v) != (done=%v rem=%v end=%v)",
					tag, rc.ID, rf.ID, pf.Done, pf.Remaining, pf.EndTime, rf.Done, rf.Remaining, rf.EndTime)
			}
		}
	}
}

// TestOptimizedSimulatorMatchesReference is the golden property test: ≥50
// seeded random workloads per scheduler, optimized vs reference, exact
// Report equality (modulo the AvgCCT summation order epsilon).
func TestOptimizedSimulatorMatchesReference(t *testing.T) {
	const seeds = 64
	for _, pair := range schedPairs {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				spec := randomSpec(rand.New(rand.NewSource(seed)), pair.deadlines)
				fab := spec.fabric(t)

				prodCfs := spec.build()
				prodSim := netsim.NewSimulator(fab, pair.prod())
				prodSim.Events = spec.events
				prodSim.Deps = spec.deps
				if spec.horizon > 0 { // spec uses 0 for "no horizon"; netsim now uses NoHorizon
					prodSim.Horizon = spec.horizon
				}
				prodRep, prodErr := prodSim.Run(prodCfs)

				refCfs := spec.build()
				refSim := refsim.NewSimulator(fab, pair.ref())
				refSim.Events = spec.events
				refSim.Deps = spec.deps
				refSim.Horizon = spec.horizon
				refRep, refErr := refSim.Run(refCfs)

				tag := fmt.Sprintf("%s/seed=%d", pair.name, seed)
				compareRuns(t, tag, &spec, prodCfs, refCfs, prodRep, refRep, prodErr, refErr)
			}
		})
	}
}

// TestOptimizedSimulatorMatchesReferenceReused pins that scheduler and
// simulator *reuse* (the new steady-state path: one Simulator, RunInto, same
// scheduler instance across runs) still matches the reference — i.e. no
// state leaks across runs through the scratch buffers or live-flow caches.
// The reference is re-run the same number of times on its own coflow set:
// Run mutates dependency-gated coflows' Arrival (by design), so repeat runs
// are only comparable rerun-for-rerun.
func TestOptimizedSimulatorMatchesReferenceReused(t *testing.T) {
	for _, pair := range schedPairs {
		if pair.deadlines {
			continue // Deadline is documented as single-run; skip reuse
		}
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			for seed := int64(100); seed < 105; seed++ {
				spec := randomSpec(rand.New(rand.NewSource(seed)), false)
				fab := spec.fabric(t)
				sim := netsim.NewSimulator(fab, pair.prod())
				sim.Events = spec.events
				sim.Deps = spec.deps
				if spec.horizon > 0 {
					sim.Horizon = spec.horizon
				}
				prodCfs := spec.build()
				var rep netsim.Report
				var prodErr error
				for rerun := 0; rerun < 3; rerun++ {
					prodErr = sim.RunInto(prodCfs, &rep)
					if prodErr != nil {
						break
					}
				}

				refCfs := spec.build()
				refSim := refsim.NewSimulator(fab, pair.ref())
				refSim.Events = spec.events
				refSim.Deps = spec.deps
				refSim.Horizon = spec.horizon
				var refRep *netsim.Report
				var refErr error
				for rerun := 0; rerun < 3; rerun++ {
					refRep, refErr = refSim.Run(refCfs)
					if refErr != nil {
						break
					}
				}

				tag := fmt.Sprintf("%s/reused-seed=%d", pair.name, seed)
				compareRuns(t, tag, &spec, prodCfs, refCfs, &rep, refRep, prodErr, refErr)
			}
		})
	}
}
