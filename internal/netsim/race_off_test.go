//go:build !race

package netsim_test

const raceEnabled = false
