//go:build race

package netsim_test

// The race detector instruments allocations, so alloc-count assertions are
// meaningless under -race and are skipped.
const raceEnabled = true
