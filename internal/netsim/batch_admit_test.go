package netsim_test

// AdmitBatch semantics: registering N coflows at one time boundary in a
// single call must be byte-identical to N sequential Admit calls — same
// admission order on arrival ties, same digests after every Advance, same
// final report — and validation must be all-or-nothing (a bad coflow in the
// middle of a batch admits nothing).

import (
	"fmt"
	"math/rand"
	"testing"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
)

// batchSpecCoflows builds a seeded stream of coflows grouped by arrival:
// groups share one arrival instant (the batched daemon's lifted clock), and
// a few coflows carry zero-size flows to exercise the instant-completion
// path inside a batch.
func batchSpecCoflows(seed int64, ports int) [][]*coflow.Coflow {
	rng := rand.New(rand.NewSource(seed))
	var groups [][]*coflow.Coflow
	id := 0
	arrival := 0.0
	for g := 0; g < 6; g++ {
		arrival += rng.Float64() * 2
		n := 1 + rng.Intn(5)
		var group []*coflow.Coflow
		for k := 0; k < n; k++ {
			var flows []coflow.Flow
			nf := 1 + rng.Intn(4)
			for f := 0; f < nf; f++ {
				src := rng.Intn(ports)
				dst := rng.Intn(ports)
				if dst == src {
					dst = (dst + 1) % ports
				}
				size := float64(rng.Intn(64)) * 1e6
				if rng.Intn(7) == 0 {
					size = 0 // zero-byte flow: done on admission
				}
				flows = append(flows, coflow.Flow{ID: f, Src: src, Dst: dst, Size: size})
			}
			group = append(group, coflow.New(id, fmt.Sprintf("c%d", id), arrival, flows))
			id++
		}
		groups = append(groups, group)
	}
	return groups
}

// TestAdmitBatchMatchesSequential pins the batch-admission determinism
// contract: AdmitBatch(group) followed by Advance equals per-coflow Admit
// followed by the same Advance, digest for digest, across seeds.
func TestAdmitBatchMatchesSequential(t *testing.T) {
	const ports = 8
	for seed := int64(0); seed < 8; seed++ {
		seqGroups := batchSpecCoflows(seed, ports)
		batGroups := batchSpecCoflows(seed, ports)

		mkSession := func() *netsim.Session {
			fabric, err := netsim.NewFabric(ports, 0)
			if err != nil {
				t.Fatal(err)
			}
			ses, err := netsim.NewSimulator(fabric, coflow.NewVarys()).Session()
			if err != nil {
				t.Fatal(err)
			}
			return ses
		}
		seqSes, batSes := mkSession(), mkSession()

		for gi := range seqGroups {
			for _, c := range seqGroups[gi] {
				if err := seqSes.Admit(c); err != nil {
					t.Fatalf("seed %d group %d: sequential admit: %v", seed, gi, err)
				}
			}
			if err := batSes.AdmitBatch(batGroups[gi]); err != nil {
				t.Fatalf("seed %d group %d: batch admit: %v", seed, gi, err)
			}
			stop := seqGroups[gi][0].Arrival
			if err := seqSes.Advance(stop); err != nil {
				t.Fatalf("seed %d group %d: sequential advance: %v", seed, gi, err)
			}
			if err := batSes.Advance(stop); err != nil {
				t.Fatalf("seed %d group %d: batch advance: %v", seed, gi, err)
			}
			if s, b := seqSes.Digest(), batSes.Digest(); s != b {
				t.Fatalf("seed %d group %d: digest diverged: sequential %016x, batch %016x", seed, gi, s, b)
			}
		}

		seqRep, err := seqSes.Finish()
		if err != nil {
			t.Fatalf("seed %d: sequential finish: %v", seed, err)
		}
		batRep, err := batSes.Finish()
		if err != nil {
			t.Fatalf("seed %d: batch finish: %v", seed, err)
		}
		if seqRep.Makespan != batRep.Makespan {
			t.Fatalf("seed %d: makespan %g vs %g", seed, seqRep.Makespan, batRep.Makespan)
		}
		if len(seqRep.CCTs) != len(batRep.CCTs) {
			t.Fatalf("seed %d: %d vs %d CCTs", seed, len(seqRep.CCTs), len(batRep.CCTs))
		}
		for id, cct := range seqRep.CCTs {
			if batRep.CCTs[id] != cct {
				t.Fatalf("seed %d: coflow %d CCT %g vs %g", seed, id, cct, batRep.CCTs[id])
			}
		}
		if s, b := seqSes.Digest(), batSes.Digest(); s != b {
			t.Fatalf("seed %d: final digest diverged: %016x vs %016x", seed, s, b)
		}
	}
}

// TestAdmitBatchAllOrNothing feeds a batch whose middle coflow is invalid:
// the call must fail without staging any coflow from the batch.
func TestAdmitBatchAllOrNothing(t *testing.T) {
	const ports = 4
	fabric, err := netsim.NewFabric(ports, 0)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := netsim.NewSimulator(fabric, coflow.NewVarys()).Session()
	if err != nil {
		t.Fatal(err)
	}
	good1 := coflow.New(0, "good1", 0, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 1e6}})
	bad := coflow.New(1, "bad", 0, []coflow.Flow{{ID: 0, Src: 2, Dst: 2, Size: 1e6}}) // self-loop
	good2 := coflow.New(2, "good2", 0, []coflow.Flow{{ID: 0, Src: 1, Dst: 3, Size: 1e6}})
	if err := ses.AdmitBatch([]*coflow.Coflow{good1, bad, good2}); err == nil {
		t.Fatal("batch with a self-loop flow admitted")
	}
	if n := ses.AdmittedCount(); n != 0 {
		t.Fatalf("failed batch staged %d coflows, want 0", n)
	}
}
