// Package netsim is the network substrate of the reproduction: a flow-level,
// event-driven simulator over the non-blocking switch abstraction used by
// Varys, Aalo and the paper — n machines, each with one ingress and one
// egress port of equal capacity, bandwidth contention only at ports, and a
// full-bisection core that never blocks.
//
// This replaces the CoflowSim back-end of the paper's evaluation. Time
// advances in fluid epochs: a coflow scheduler assigns per-flow rates, the
// engine jumps to the next flow completion or coflow arrival, transfers the
// bytes, and repeats. For a single coflow under MADD allocation the result
// equals the closed-form bandwidth model of the paper (CCT = max port load /
// port bandwidth), which is verified by tests.
package netsim

import (
	"errors"
	"fmt"
	"math"

	"ccf/internal/coflow"
)

// DefaultPortBandwidth is 128 MB/s per port, CoflowSim's default link speed
// (1 Gbps ≈ 125 MB/s rounded to CoflowSim's power-of-two constant).
const DefaultPortBandwidth = 128e6

// Fabric describes the non-blocking switch: every machine gets one ingress
// and one egress port. The paper's base model gives all ports the same
// normalized capacity; the heterogeneous constructor realises the R_l
// generalization of constraint (1.5) — per-link capacities.
type Fabric struct {
	Ports int
	// EgressCap and InCap are per-port capacities in bytes/sec.
	EgressCap  []float64
	IngressCap []float64
	// maxCap caches the largest port capacity for tolerance checks.
	maxCap float64
}

// NewFabric builds a uniform fabric with the CoflowSim default bandwidth
// when bw <= 0.
func NewFabric(ports int, bw float64) (Fabric, error) {
	if ports <= 0 {
		return Fabric{}, fmt.Errorf("netsim: ports must be positive, got %d", ports)
	}
	if bw <= 0 {
		bw = DefaultPortBandwidth
	}
	eg := make([]float64, ports)
	in := make([]float64, ports)
	for i := range eg {
		eg[i], in[i] = bw, bw
	}
	return Fabric{Ports: ports, EgressCap: eg, IngressCap: in, maxCap: bw}, nil
}

// NewHeterogeneousFabric builds a fabric with per-port capacities — the
// paper's "extended to complex network conditions by adding parameters to
// these two constraints" (§III.A footnote 4). Both slices must have the same
// positive length and strictly positive entries.
func NewHeterogeneousFabric(egress, ingress []float64) (Fabric, error) {
	if len(egress) == 0 || len(egress) != len(ingress) {
		return Fabric{}, fmt.Errorf("netsim: capacity slices sized %d/%d; want equal and non-empty",
			len(egress), len(ingress))
	}
	f := Fabric{
		Ports:      len(egress),
		EgressCap:  append([]float64(nil), egress...),
		IngressCap: append([]float64(nil), ingress...),
	}
	for p := 0; p < f.Ports; p++ {
		if egress[p] <= 0 || ingress[p] <= 0 {
			return Fabric{}, fmt.Errorf("netsim: port %d has non-positive capacity (eg=%g in=%g)",
				p, egress[p], ingress[p])
		}
		if egress[p] > f.maxCap {
			f.maxCap = egress[p]
		}
		if ingress[p] > f.maxCap {
			f.maxCap = ingress[p]
		}
	}
	return f, nil
}

// Report summarises one simulation run.
type Report struct {
	// Makespan is the finish time of the last flow (seconds).
	Makespan float64
	// CCTs maps coflow ID to its completion time (seconds from arrival).
	CCTs map[int]float64
	// AvgCCT and MaxCCT aggregate over coflows.
	AvgCCT float64
	MaxCCT float64
	// WeightedAvgCCT is the weight-averaged CCT, Σ wᵢ·CCTᵢ / Σ wᵢ over
	// completed coflows (coflow.Coflow.Weight, zero meaning 1). With all
	// weights at the default it equals AvgCCT up to summation rounding.
	WeightedAvgCCT float64
	// TotalBytes moved across the network, including bytes whose progress
	// a failure later voided — the wire traffic. For a run that finishes,
	// TotalBytes = Σ flow sizes + WastedBytes (byte conservation).
	TotalBytes float64
	// Epochs counts scheduler invocations (simulation cost metric).
	Epochs int
	// WastedBytes is the transfer progress voided by port failures (zero
	// in fault-free runs and under RetransmitResume).
	WastedBytes float64
	// Restarts maps coflow ID to the number of flow restarts failures
	// forced on it. Nil until a failure actually voids progress.
	Restarts map[int]int
	// Failures holds one outcome per configured PortFailure, in input
	// order. Empty when the simulator has no failures scheduled.
	Failures []FailureOutcome
}

// ErrStalled is returned when active flows exist but the scheduler assigns
// zero aggregate rate and no future arrival can unblock them — a
// non-work-conserving scheduler bug.
var ErrStalled = errors.New("netsim: simulation stalled with pending flows")

// completionEps treats a flow as finished when fewer than this many bytes
// remain, absorbing float rounding across epochs.
const completionEps = 1e-6

// Simulator runs a set of coflows over a fabric under a scheduler.
type Simulator struct {
	fabric Fabric
	sched  coflow.Scheduler
	// MaxEpochs bounds the event loop (default 10 million) so scheduler
	// bugs surface as errors instead of livelocks.
	MaxEpochs int
	// Horizon, when >= 0, stops the simulation at that time instead of
	// running to completion; flow state (Remaining, Done) is left at the
	// horizon so callers can inspect the in-flight backlog. NewSimulator
	// initialises it to NoHorizon (-1), which runs to completion. A zero
	// horizon is a real stop-at-t=0: earlier revisions treated 0 as "no
	// horizon", which made a backlog probe for an arrival at t=0 silently
	// simulate to completion and report an empty network. Resumable
	// sessions (see Session) supersede horizon-limited runs for the online
	// co-optimizer; Horizon remains for one-shot what-if runs.
	Horizon float64
	// Events injects capacity changes (degradations, repairs) at given
	// times — the failure-injection hook. Events apply in time order; the
	// event loop never steps across an event boundary.
	Events []CapacityEvent
	// Deps declares coflow dependencies by ID: a coflow becomes eligible
	// only once all listed predecessor coflows have completed (and its own
	// Arrival has passed). This models multi-stage analytical jobs — each
	// stage's shuffle coflow releases when the previous stage finishes.
	// Cycles and unknown IDs are reported as errors.
	Deps map[int][]int
	// Failures schedules port outages (capacity → 0 over an interval, or
	// forever). Unlike Events, a failure can void completed work per the
	// Retransmit policy; see PortFailure. When empty, the failure
	// machinery is entirely inert and the run is bit-identical to the
	// fault-free engine.
	Failures []PortFailure
	// Retransmit selects what a failure does to bytes already carried
	// through the failed port (default RetransmitRestart).
	Retransmit RetransmitPolicy
	// Probe, when non-nil, observes the run (see Probe). The nil default is
	// the fast path: no allocations, no extra float operations, bit-identical
	// to internal/refsim. A non-nil probe must never mutate simulator state;
	// the telemetry equivalence test pins that observing does not perturb.
	Probe Probe
	// ShardWorkers enables Tier-2 intra-epoch parallelism: when > 1 and the
	// fabric has at least ShardMinPorts ports, the scheduler's MADD and
	// water-filling passes shard across this many goroutines — bit-identical
	// to serial (see internal/coflow/shard.go), pinned by the sharded
	// equivalence suite. 0 or 1 keeps every pass on the serial code path.
	ShardWorkers int
	// ShardMinPorts is the fabric-size floor below which sharding stays off
	// even with ShardWorkers > 1 (0 selects DefaultShardMinPorts). Small
	// fabrics never leave the serial path, preserving 0 allocs/op.
	ShardMinPorts int
	// ShardMinFlows overrides the per-pass flow-count floor forwarded to the
	// scheduler (0 selects coflow.DefaultShardMinFlows). Tests force 1 to
	// exercise the sharded code on small workloads.
	ShardMinFlows int
	// EventHorizon opts the session loop into the sparse (event-horizon)
	// engine: per-epoch cost scales with the coflows whose state changed —
	// admission-queue prefix pops, retirement scans gated on completion
	// edges, flow passes over the rate-granted set only, and a min-heap of
	// projected completion times — instead of with everything active.
	// Bit-identical to the dense path (pinned by the horizon equivalence
	// suite); engages only for schedulers implementing
	// coflow.SparseAllocator and for runs without Deps (anything else falls
	// back to the dense loop). See DESIGN.md §16.
	EventHorizon bool
	// ReleaseCompleted lets an event-horizon session drop completed coflows
	// from its admitted list so streamed replays run in bounded memory:
	// after release, BacklogInto and Digest cover only retained coflows and
	// the CCT aggregates are summed in coflow-ID order (per-coflow results
	// stay in Report.CCTs either way). Only takes effect in sparse sessions;
	// incompatible with Failures (recovery accounting needs the full coflow
	// population at the end of the run).
	ReleaseCompleted bool

	// scratch holds the per-run buffers so repeated Runs (parameter sweeps,
	// benchmarks) reuse storage instead of reallocating it. Simulators are
	// therefore not safe for concurrent Runs.
	scratch runScratch
	// ses is the simulator's single resumable session (see Session); Run and
	// RunInto drive it to completion in one call, Simulator.Session hands it
	// to the caller. Embedded so steady-state reuse allocates nothing.
	ses Session
}

// NoHorizon disables the simulation horizon (the NewSimulator default):
// runs proceed until every admitted coflow completes.
const NoHorizon = -1

// DefaultShardMinPorts is the fabric size below which intra-epoch sharding
// stays off: under ~256 ports an epoch's O(flows) passes run in the low
// microseconds, where goroutine fan-out costs more than it saves.
const DefaultShardMinPorts = 256

// shardOptions resolves the simulator's shard knobs into the configuration
// handed to ShardTunable schedulers; the zero value means serial.
func (s *Simulator) shardOptions() coflow.ShardOptions {
	minPorts := s.ShardMinPorts
	if minPorts <= 0 {
		minPorts = DefaultShardMinPorts
	}
	if s.ShardWorkers > 1 && s.fabric.Ports >= minPorts {
		return coflow.ShardOptions{Workers: s.ShardWorkers, MinFlows: s.ShardMinFlows}
	}
	return coflow.ShardOptions{}
}

// runScratch is the simulator's reusable per-run storage. Sized on first use
// and only ever grown; the event loop itself allocates nothing at steady
// state (the per-run CCT map entries are the one unavoidable exception, and
// RunInto lets callers recycle even those). The queue/active/live-flow lists
// live on the Session, which is equally reused.
type runScratch struct {
	events       []CapacityEvent
	egFac, inFac []float64
	egCap, inCap []float64
	egUse, inUse []float64        // fused rate-check accumulators
	dirty        []*coflow.Coflow // coflows with completions this epoch
	completed    map[int]bool
	known        map[int]bool
	downCnt      []int            // per-port count of outages covering now
	failEv       []failTransition // time-sorted failure edges
	// probeEg/probeIn snapshot the effective per-port capacities for the
	// probe's EpochSample; filled only when a probe is attached.
	probeEg, probeIn []float64
	// horizon is the sparse loop's min-heap of projected flow-completion
	// times (see horizon.go); untouched by the dense loop.
	horizon completionHeap
}

// CapacityEvent rescales one port's capacities at a point in time. Factors
// multiply the port's *configured* capacity (not the current one), so a
// degradation (factor 0.5) followed by a repair (factor 1) is exact.
// A zero factor parks the port entirely; flows through it simply wait.
type CapacityEvent struct {
	Time          float64
	Port          int
	EgressFactor  float64
	IngressFactor float64
}

// NewSimulator wires a fabric and a scheduler.
func NewSimulator(f Fabric, s coflow.Scheduler) *Simulator {
	return &Simulator{fabric: f, sched: s, MaxEpochs: 10_000_000, Horizon: NoHorizon}
}

// Run simulates the given coflows to completion and fills in per-flow
// EndTime, per-coflow Completion, and the aggregate report. Coflows may
// arrive at different times; flows within a coflow start at its arrival.
func (s *Simulator) Run(coflows []*coflow.Coflow) (*Report, error) {
	rep := &Report{}
	if err := s.RunInto(coflows, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// RunInto is Run with caller-owned Report storage: rep is reset (its CCTs
// map is cleared and reused) and filled in place, so steady-state repeat
// runs — benchmark loops, parameter sweeps — don't allocate a report per
// run. Internally it is one complete session (see Session): begin, admit
// every coflow, drive the event loop to the end, aggregate. The event loop
// itself lives in session.go; splitting run setup from the loop is what
// makes runs resumable, and a straight-through run is the degenerate session
// with a single Advance to +Inf.
func (s *Simulator) RunInto(coflows []*coflow.Coflow, rep *Report) error {
	ss := &s.ses
	if err := ss.begin(s, rep); err != nil {
		return err
	}
	if err := ss.admitBatch(coflows); err != nil {
		return err
	}
	// Dependency references are validated up front — unlike a streaming
	// session, the full coflow population is known before time starts.
	sc := &s.scratch
	if len(s.Deps) > 0 {
		if sc.known == nil {
			sc.known = make(map[int]bool, len(coflows))
		} else {
			clear(sc.known)
		}
		known := sc.known
		for _, c := range coflows {
			known[c.ID] = true
		}
		for id, deps := range s.Deps {
			if !known[id] {
				return fmt.Errorf("netsim: dependency declared for unknown coflow %d", id)
			}
			for _, dep := range deps {
				if !known[dep] {
					return fmt.Errorf("netsim: coflow %d depends on unknown coflow %d", id, dep)
				}
				if dep == id {
					return fmt.Errorf("netsim: coflow %d depends on itself", id)
				}
			}
		}
	}
	if s.Probe != nil {
		s.Probe.BeginRun(s.fabric.Ports, s.fabric.EgressCap, s.fabric.IngressCap, coflows, s.sched)
	}
	if len(ss.pending) > 0 {
		ss.now = ss.pending[0].Arrival
	}
	if err := ss.latch(ss.loop(math.Inf(1))); err != nil {
		return err
	}
	ss.finalize(coflows)
	return nil
}

// applyPortDown handles the down edge of a failure: void progress per the
// retransmission policy, account waste, and (under restart-delivered)
// re-enter delivered flows of in-flight coflows into the live set. Returns
// the (possibly extended) flat live-flow list.
func (s *Simulator) applyPortDown(tr failTransition, now float64, active []*coflow.Coflow,
	liveFlows []*coflow.Flow, rep *Report) []*coflow.Flow {
	out := &rep.Failures[tr.out]
	if s.Retransmit == RetransmitResume {
		// Checkpointed transfers: nothing is lost, flows wait out the
		// outage. Count them so the outcome still reflects the blast
		// radius.
		for _, f := range liveFlows {
			if f.Src == tr.port || f.Dst == tr.port {
				out.FlowsHit++
				if s.Probe != nil {
					s.Probe.FlowHit(now, f.Coflow, f, false)
				}
			}
		}
		return liveFlows
	}
	for _, f := range liveFlows {
		if f.Src != tr.port && f.Dst != tr.port {
			continue
		}
		out.FlowsHit++
		restarted := false
		if prog := f.Size - f.Remaining; prog > 0 {
			out.WastedBytes += prog
			rep.WastedBytes += prog
			f.Remaining = f.Size
			// Voided progress changes the coflow's remaining-byte state, so
			// sparse-mode priority-key caches must be invalidated.
			f.Coflow.MarkSimMoved()
			bumpRestart(rep, f.Coflow.ID)
			restarted = true
		}
		if s.Probe != nil {
			s.Probe.FlowHit(now, f.Coflow, f, restarted)
		}
	}
	if s.Retransmit == RetransmitRestartDelivered {
		// Receiver storage loss: deliveries INTO the failed port are
		// gone and must be re-sent. Flows sent FROM the port keep their
		// delivery — the data lives at the destination. Only in-flight
		// coflows are affected; completed ones are out of scope.
		for _, c := range active {
			for _, f := range c.Flows {
				if !f.Done || f.Dst != tr.port || f.Size <= 0 {
					continue
				}
				out.FlowsHit++
				out.WastedBytes += f.Size
				rep.WastedBytes += f.Size
				f.Done = false
				f.Remaining = f.Size
				f.Rate = 0
				f.EndTime = 0
				c.Reactivate(f)
				liveFlows = append(liveFlows, f)
				bumpRestart(rep, c.ID)
				if s.Probe != nil {
					s.Probe.FlowHit(now, c, f, true)
				}
			}
		}
	}
	return liveFlows
}

// finalizeFailures fills the recovery fields of each outcome after the run:
// whether every sized flow touching the port finished, and how long after
// the down edge the last one did.
func finalizeFailures(rep *Report, coflows []*coflow.Coflow) {
	for i := range rep.Failures {
		out := &rep.Failures[i]
		recovered := true
		var ttr float64
		for _, c := range coflows {
			for _, f := range c.Flows {
				if f.Size <= 0 || (f.Src != out.Port && f.Dst != out.Port) {
					continue
				}
				if !f.Done {
					recovered = false
					continue
				}
				if t := f.EndTime - out.Down; t > ttr {
					ttr = t
				}
			}
		}
		out.Recovered = recovered
		if recovered {
			out.TimeToRecovery = ttr
		}
	}
}

// ensurePorts sizes the per-port scratch for the fabric (grow-only).
func (sc *runScratch) ensurePorts(n int) {
	if len(sc.egFac) >= n {
		return
	}
	sc.egFac = make([]float64, n)
	sc.inFac = make([]float64, n)
	sc.egCap = make([]float64, n)
	sc.inCap = make([]float64, n)
	sc.egUse = make([]float64, n)
	sc.inUse = make([]float64, n)
	sc.downCnt = make([]int, n)
}

// sortEventsByTime stable-sorts capacity events by time without allocating
// (the list is tiny and usually pre-sorted; insertion sort is the adaptive
// O(n) case then).
func sortEventsByTime(events []CapacityEvent) {
	for i := 1; i < len(events); i++ {
		ev := events[i]
		j := i - 1
		for j >= 0 && ev.Time < events[j].Time {
			events[j+1] = events[j]
			j--
		}
		events[j+1] = ev
	}
}

// PortBacklog sums the remaining bytes of unfinished flows on each port —
// the network state a horizon-limited simulation leaves behind, and the
// initial-load input the online co-optimizer feeds to placement.
func PortBacklog(n int, coflows []*coflow.Coflow) (egress, ingress []int64) {
	egress = make([]int64, n)
	ingress = make([]int64, n)
	for _, c := range coflows {
		for _, f := range c.Flows {
			if f.Done {
				continue
			}
			r := int64(f.Remaining + 0.5)
			egress[f.Src] += r
			ingress[f.Dst] += r
		}
	}
	return egress, ingress
}

// BandwidthModelCCT computes the closed-form single-coflow CCT of the
// paper's model: max over ports of load divided by port bandwidth. The
// event simulator under MADD matches this exactly; large experiments use the
// closed form to avoid materialising O(n²) flows.
func BandwidthModelCCT(egress, ingress []int64, bandwidth float64) float64 {
	var m int64
	for _, v := range egress {
		if v > m {
			m = v
		}
	}
	for _, v := range ingress {
		if v > m {
			m = v
		}
	}
	return float64(m) / bandwidth
}

// WeightedBandwidthModelCCT is the heterogeneous-capacity counterpart: the
// single-coflow CCT is the maximum over ports of load divided by that port's
// capacity, matching the R_l-parameterised constraints (2.1)/(2.2).
func WeightedBandwidthModelCCT(egress, ingress []int64, egCap, inCap []float64) (float64, error) {
	if len(egress) != len(egCap) || len(ingress) != len(inCap) {
		return 0, fmt.Errorf("netsim: loads sized %d/%d vs capacities %d/%d",
			len(egress), len(ingress), len(egCap), len(inCap))
	}
	var t float64
	for p, v := range egress {
		if egCap[p] <= 0 {
			return 0, fmt.Errorf("netsim: non-positive egress capacity at port %d", p)
		}
		if x := float64(v) / egCap[p]; x > t {
			t = x
		}
	}
	for p, v := range ingress {
		if inCap[p] <= 0 {
			return 0, fmt.Errorf("netsim: non-positive ingress capacity at port %d", p)
		}
		if x := float64(v) / inCap[p]; x > t {
			t = x
		}
	}
	return t, nil
}
