package netsim_test

// Tier-2 equivalence: the sharded MADD / water-filling / re-key passes must
// be *bit-identical* to the serial code at every worker count. The sharded
// passes only split operations that are exact under any split (elementwise
// disjoint writes, integer accumulation, max/min reductions, and per-port
// replay of identical subtractions); every flow-ordered float accumulation
// stays serial. So the comparison below is exact equality on every Report
// and per-flow field — no epsilons — across the full 64-seed × 8-scheduler
// matrix at worker counts that both divide and exceed the tiny test fabrics.

import (
	"fmt"
	"math/rand"
	"testing"

	"ccf/internal/netsim"
	"ccf/internal/parallel"
)

func TestShardedMatchesSerial(t *testing.T) {
	const seeds = 64
	for _, pair := range schedPairs {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			for _, workers := range []int{2, 7} {
				for seed := int64(0); seed < seeds; seed++ {
					spec := randomSpec(rand.New(rand.NewSource(seed)), pair.deadlines)
					fab := spec.fabric(t)

					serialCfs := spec.build()
					serialSim := netsim.NewSimulator(fab, pair.prod())
					serialSim.Events = spec.events
					serialSim.Deps = spec.deps
					if spec.horizon > 0 {
						serialSim.Horizon = spec.horizon
					}
					serialRep, serialErr := serialSim.Run(serialCfs)

					shardCfs := spec.build()
					shardSim := netsim.NewSimulator(fab, pair.prod())
					shardSim.Events = spec.events
					shardSim.Deps = spec.deps
					if spec.horizon > 0 {
						shardSim.Horizon = spec.horizon
					}
					// Force the sharded paths on: every test fabric is ≥ 2
					// ports and every pass sees ≥ 1 flow.
					shardSim.ShardWorkers = workers
					shardSim.ShardMinPorts = 1
					shardSim.ShardMinFlows = 1
					shardRep, shardErr := shardSim.Run(shardCfs)

					tag := fmt.Sprintf("%s/workers=%d/seed=%d", pair.name, workers, seed)
					compareRuns(t, tag, &spec, shardCfs, serialCfs, shardRep, serialRep, shardErr, serialErr)
				}
			}
		})
	}
}

// TestShardedReusedSchedulerClearsConfig pins the Session.begin contract: a
// scheduler instance moved from a sharded simulator to a plain one must not
// keep the stale shard config (and vice versa). Both orders must still match
// a fresh serial run exactly.
func TestShardedReusedSchedulerClearsConfig(t *testing.T) {
	for _, pair := range schedPairs {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			spec := randomSpec(rand.New(rand.NewSource(7)), pair.deadlines)
			fab := spec.fabric(t)

			serialCfs := spec.build()
			serialRep, serialErr := netsim.NewSimulator(fab, pair.prod()).Run(serialCfs)

			// One scheduler instance: sharded run first, then a plain
			// simulator that must clear the shard config on begin.
			sched := pair.prod()
			shardSim := netsim.NewSimulator(fab, sched)
			shardSim.ShardWorkers = 4
			shardSim.ShardMinPorts = 1
			shardSim.ShardMinFlows = 1
			if _, err := shardSim.Run(spec.build()); (err != nil) != (serialErr != nil) {
				t.Fatalf("sharded warm-up error mismatch: %v vs %v", err, serialErr)
			}
			plainCfs := spec.build()
			plainRep, plainErr := netsim.NewSimulator(fab, sched).Run(plainCfs)
			compareRuns(t, pair.name+"/after-sharded", &spec,
				plainCfs, serialCfs, plainRep, serialRep, plainErr, serialErr)
		})
	}
}

// TestTierOneTierTwoRace exercises both tiers at once for the race detector:
// a Tier-1 worker pool over all 8 schedulers, each task running a Tier-2
// sharded simulation. Any cross-shard or cross-worker data race (shared
// scratch, shard buffers, scheduler state) trips -race in CI.
func TestTierOneTierTwoRace(t *testing.T) {
	spec := randomSpec(rand.New(rand.NewSource(42)), false)
	// Keep the randomized shape but drop capacity events: a full-port outage
	// legitimately stalls the run, and this test asserts race-freedom, not
	// outage handling (the equivalence matrix covers that).
	spec.events = nil
	fab := spec.fabric(t)
	err := parallel.ForEach(4, len(schedPairs), func(i int) error {
		pair := schedPairs[i]
		sim := netsim.NewSimulator(fab, pair.prod())
		sim.Deps = spec.deps
		sim.ShardWorkers = 3
		sim.ShardMinPorts = 1
		sim.ShardMinFlows = 1
		_, err := sim.Run(spec.build())
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
