package netsim

// Event-horizon simulation: the sparse variant of the session event loop,
// engaged by Simulator.EventHorizon for schedulers that implement
// coflow.SparseAllocator on runs without Deps (DESIGN.md §16).
//
// The dense loop already jumps epoch-to-event — dt is the minimum over flow
// completions, arrivals, capacity events and failure edges — so the sparse
// loop cannot (and does not) skip epochs. What it changes is the cost *per*
// epoch, from O(pending + live flows) to O(coflows that changed):
//
//   - admission pops the eligible prefix of the arrival-sorted queue instead
//     of rescanning (and re-copying) the whole pending list every epoch.
//     With the queue sorted by arrival, the eligible set is exactly a
//     prefix, so the admissions and their order are the dense ones;
//   - the retirement scan runs only on epochs that could have produced a
//     newly-finished coflow: after an advance with completions, or after an
//     admission (a zero-flow coflow finishes on its admission epoch).
//     Nothing else finishes a coflow — failure edges only un-finish flows —
//     so skipped scans are scans that would have found nothing;
//   - the fused rate/usage/dt pass and the advance pass iterate only the
//     coflows the scheduler granted rates (SimGranted/LastGrantDense).
//     Ungranted flows carry rate 0: the dense pass adds 0.0 to the port
//     sums (exact — the sums start at +0 and never see negative terms, so
//     no term changes any bit) and moves no bytes for them. The iteration
//     order over granted flows — active order × live order — is the dense
//     flat-list order restricted to the granted set, so every float
//     accumulation (egUse/inUse, SentBytes, TotalBytes) rounds identically;
//   - the time to the next completion comes from a min-heap of projected
//     completion times (completionHeap below). Only rate-carrying flows
//     enter the heap — zero-rate flows (e.g. on fully failed ports) never
//     do. The heap is rebuilt each epoch: under the bit-identity contract
//     every granted flow's rate is freshly computed each epoch (MADD's τ
//     and water-filling's α drift as bytes move), so no projection survives
//     an epoch. The win is that only granted flows are projected at all.
//
// With Failures configured the flow passes fall back to the dense flat-list
// scans: restart-delivered reactivation appends to the *global* live list
// tail, which breaks the grouped-by-coflow ordering identity the granted
// iteration relies on. Scheduler-side sparsity (key caches, blocked skips,
// prefix admission, gated retirement) still applies.

import (
	"fmt"
	"math"
)

// completionEntry is one projected flow completion: at = now + rel with
// rel = Remaining/Rate. rel is carried alongside because (now + rel) - now
// is not rel in floats — the heap orders by absolute projection and the
// loop recovers the exact relative step from the stored rel.
type completionEntry struct {
	at  float64
	rel float64
}

// completionHeap is a binary min-heap of projected flow-completion times,
// keyed on the absolute projection. Grow-only storage; reset per epoch.
type completionHeap struct {
	ent []completionEntry
}

func (h *completionHeap) reset() { h.ent = h.ent[:0] }

func (h *completionHeap) len() int { return len(h.ent) }

// push inserts a projection. Callers must never push zero-rate flows: a
// flow with no rate has no projected completion (rel would be +Inf) and
// must not bound the epoch.
func (h *completionHeap) push(at, rel float64) {
	h.ent = append(h.ent, completionEntry{at: at, rel: rel})
	i := len(h.ent) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.ent[p].at <= h.ent[i].at {
			break
		}
		h.ent[p], h.ent[i] = h.ent[i], h.ent[p]
		i = p
	}
}

// pop removes the minimum-projection entry.
func (h *completionHeap) pop() {
	n := len(h.ent) - 1
	h.ent[0] = h.ent[n]
	h.ent = h.ent[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.ent[l].at < h.ent[m].at {
			m = l
		}
		if r < n && h.ent[r].at < h.ent[m].at {
			m = r
		}
		if m == i {
			return
		}
		h.ent[i], h.ent[m] = h.ent[m], h.ent[i]
		i = m
	}
}

// minRel returns the exact minimum relative time-to-completion among the
// pushed entries (+Inf when empty), consuming the minimal tie set. Float
// addition is monotone (rel₁ ≤ rel₂ ⟹ now+rel₁ ≤ now+rel₂), so the flow
// with the globally minimal rel projects onto the minimal absolute time;
// taking the min rel over the entries tied at that projection therefore
// recovers the bit-exact dense dt = min(Remaining/Rate).
func (h *completionHeap) minRel() float64 {
	if len(h.ent) == 0 {
		return math.Inf(1)
	}
	minAt := h.ent[0].at
	rel := h.ent[0].rel
	h.pop()
	for len(h.ent) > 0 && h.ent[0].at == minAt {
		if h.ent[0].rel < rel {
			rel = h.ent[0].rel
		}
		h.pop()
	}
	return rel
}

// loopSparse is the event-horizon event loop. It mirrors Session.loop
// stanza-for-stanza — every float expression, comparison and accumulation
// order is the dense one — with the per-epoch scans restricted to changed
// state as described in the file comment. Deviations from the dense body
// are commented inline with their exactness argument.
func (ss *Session) loopSparse(stop float64) error {
	s := ss.s
	sc := &s.scratch
	rep := ss.rep
	ports := s.fabric.Ports
	hz := s.Horizon
	sa := ss.sa
	egFac, inFac := sc.egFac[:ports], sc.inFac[:ports]
	egCap, inCap := sc.egCap[:ports], sc.inCap[:ports]
	egUse, inUse := sc.egUse[:ports], sc.inUse[:ports]
	downCnt := sc.downCnt[:ports]
	failEv := sc.failEv
	haveFail := ss.haveFail
	heap := &sc.horizon

	now := ss.now
	pending, active, liveFlows := ss.pending, ss.active, ss.live
	events, nextFail := ss.events, ss.nextFail
	save := func() {
		ss.now, ss.pending, ss.active, ss.live = now, pending, active, liveFlows
		ss.events, ss.nextFail = events, nextFail
	}

	// scanRetire arms the retirement scan. It starts armed (a resumed loop
	// re-checks once, exactly as the dense loop would on its first
	// iteration) and re-arms on the only transitions that can finish a
	// coflow: advance completions and admissions.
	scanRetire := true
	for {
		if ss.iter >= s.MaxEpochs {
			save()
			return fmt.Errorf("netsim: exceeded %d epochs (scheduler %q livelock?)", s.MaxEpochs, s.sched.Name())
		}
		ss.iter++
		// Admissions: with no Deps, the eligible coflows are exactly the
		// arrival-sorted queue's prefix with Arrival ≤ now — same test, same
		// order, same arrival lift as the dense scan, without touching the
		// ineligible suffix.
		for len(pending) > 0 && pending[0].Arrival <= now+1e-12 {
			c := pending[0]
			pending = pending[1:]
			if c.Arrival < now {
				c.Arrival = now
			}
			active = append(active, c)
			if haveFail {
				liveFlows = append(liveFlows, c.LiveFlows()...)
			}
			scanRetire = true
			if s.Probe != nil {
				s.Probe.CoflowAdmitted(now, c)
			}
		}
		for len(events) > 0 && events[0].Time <= now+1e-12 {
			ev := events[0]
			events = events[1:]
			egFac[ev.Port] = ev.EgressFactor
			inFac[ev.Port] = ev.IngressFactor
		}
		for nextFail < len(failEv) && failEv[nextFail].time <= now+1e-12 {
			tr := failEv[nextFail]
			nextFail++
			if tr.up {
				downCnt[tr.port]--
			} else {
				downCnt[tr.port]++
				liveFlows = s.applyPortDown(tr, now, active, liveFlows, rep)
			}
			if s.Probe != nil {
				s.Probe.FailureEdge(now, tr.port, tr.up)
			}
			if ss.obs != nil {
				ss.obs.CapacityChanged(now)
			}
		}
		// Retirement, gated: coflows finish only through advance completions
		// or (zero-flow coflows) admission, both of which arm the scan; a
		// skipped scan is one the dense loop runs and finds nothing in.
		if scanRetire {
			scanRetire = false
			liveCF := active[:0]
			for _, c := range active {
				if c.Finished() {
					if !c.Completed {
						c.Completed = true
						c.Completion = now
						cct, err := c.CCT()
						if err != nil {
							save()
							return err
						}
						rep.CCTs[c.ID] = cct
						if ss.release {
							ss.relWeights[c.ID] = c.EffectiveWeight()
						}
						if s.Probe != nil {
							s.Probe.CoflowCompleted(now, c)
						}
					}
					continue
				}
				liveCF = append(liveCF, c)
			}
			active = liveCF
			if ss.release {
				ss.releaseCompleted()
			}
		}

		if hz >= 0 && now >= hz-1e-12 {
			now = hz
			break
		}
		if now >= stop-1e-12 {
			break
		}
		if len(active) == 0 {
			if len(pending) == 0 {
				break
			}
			// No Deps: the first eligible arrival is the queue head.
			next := pending[0].Arrival
			if hz >= 0 && next >= hz {
				now = hz
				break
			}
			if next > stop {
				break
			}
			if next > now {
				now = next
			}
			continue
		}

		// Scheduling epoch: identical capacity setup; Allocate runs the
		// scheduler's sparse path (key caches, blocked skips, granted set).
		rep.Epochs++
		for p := 0; p < ports; p++ {
			egCap[p] = s.fabric.EgressCap[p] * egFac[p]
			inCap[p] = s.fabric.IngressCap[p] * inFac[p]
			egUse[p], inUse[p] = 0, 0
		}
		if haveFail {
			for p, d := range downCnt {
				if d > 0 {
					egCap[p], inCap[p] = 0, 0
				}
			}
		}
		s.sched.Allocate(now, active, egCap, inCap)

		// Fused pass + completion heap. Without failures, iterate the
		// granted coflows in active order (the dense flat order restricted
		// to rate-carrying flows); with failures, the dense flat list.
		dt := math.Inf(1)
		heap.reset()
		grantDense := sa.LastGrantDense()
		if haveFail {
			for _, f := range liveFlows {
				if f.Rate < 0 {
					save()
					return fmt.Errorf("netsim: scheduler %q set negative rate %g on flow %d", s.sched.Name(), f.Rate, f.ID)
				}
				egUse[f.Src] += f.Rate
				inUse[f.Dst] += f.Rate
				if f.Rate > 0 {
					rel := f.Remaining / f.Rate
					heap.push(now+rel, rel)
				}
			}
		} else {
			for _, c := range active {
				if !grantDense && !c.SimGranted() {
					continue
				}
				for _, f := range c.LiveFlows() {
					if f.Rate < 0 {
						save()
						return fmt.Errorf("netsim: scheduler %q set negative rate %g on flow %d", s.sched.Name(), f.Rate, f.ID)
					}
					egUse[f.Src] += f.Rate
					inUse[f.Dst] += f.Rate
					if f.Rate > 0 {
						rel := f.Remaining / f.Rate
						heap.push(now+rel, rel)
					}
				}
			}
		}
		if t := heap.minRel(); t < dt {
			dt = t
		}
		const tolAbs = 1e-9
		tol := 1 + 1e-3
		for p := 0; p < ports; p++ {
			egLim := s.fabric.EgressCap[p] * egFac[p] * tol
			inLim := s.fabric.IngressCap[p] * inFac[p] * tol
			if haveFail && downCnt[p] > 0 {
				egLim, inLim = 0, 0
			}
			if egUse[p] > egLim+tolAbs || inUse[p] > inLim+tolAbs {
				save()
				return fmt.Errorf("netsim: scheduler %q oversubscribed port %d (eg=%.3g/%.3g in=%.3g/%.3g)",
					s.sched.Name(), p, egUse[p], egLim, inUse[p], inLim)
			}
		}

		// Epoch bounds: first pending arrival (the queue head — no Deps),
		// capacity events, failure edges, horizon, stop. Same expressions
		// and comparisons as the dense loop.
		if len(pending) > 0 {
			if t := pending[0].Arrival - now; t >= 0 && t < dt {
				dt = t
			}
		}
		if len(events) > 0 {
			if t := events[0].Time - now; t < dt {
				dt = t
			}
		}
		if nextFail < len(failEv) {
			if t := failEv[nextFail].time - now; t < dt {
				dt = t
			}
		}
		if hz >= 0 && now+dt > hz {
			dt = hz - now
		}
		if t := stop - now; t >= 0 && t < dt {
			dt = t
		}
		if math.IsInf(dt, 1) {
			save()
			return fmt.Errorf("%w: %d coflows active under scheduler %q", ErrStalled, len(active), s.sched.Name())
		}
		if s.Probe != nil {
			probeEg, probeIn := sc.probeEg[:ports], sc.probeIn[:ports]
			for p := 0; p < ports; p++ {
				probeEg[p] = s.fabric.EgressCap[p] * egFac[p]
				probeIn[p] = s.fabric.IngressCap[p] * inFac[p]
				if haveFail && downCnt[p] > 0 {
					probeEg[p], probeIn[p] = 0, 0
				}
			}
			s.Probe.EpochSample(now, dt, active, egUse, inUse, probeEg, probeIn)
		}

		// Advance over the same flow sequence the fused pass used; moved
		// coflows are marked for the scheduler's key caches.
		now += dt
		dirty := sc.dirty[:0]
		if haveFail {
			for _, f := range liveFlows {
				if f.Rate <= 0 {
					continue
				}
				moved := f.Rate * dt
				if moved > f.Remaining {
					moved = f.Remaining
				}
				f.Remaining -= moved
				f.Coflow.SentBytes += moved
				f.Coflow.MarkSimMoved()
				rep.TotalBytes += moved
				if f.Remaining <= completionEps {
					f.Remaining = 0
					f.Done = true
					f.EndTime = now
					if len(dirty) == 0 || dirty[len(dirty)-1] != f.Coflow {
						dirty = append(dirty, f.Coflow)
					}
				}
			}
			sc.dirty = dirty
			if len(dirty) > 0 {
				scanRetire = true
				for _, c := range dirty {
					c.RefreshSim()
				}
				w := 0
				for _, f := range liveFlows {
					if !f.Done {
						liveFlows[w] = f
						w++
					}
				}
				liveFlows = liveFlows[:w]
			}
		} else {
			for _, c := range active {
				if !grantDense && !c.SimGranted() {
					continue
				}
				// Every iterated live flow carries rate here (MADD grants
				// all live flows of a served coflow; a dense backfill grants
				// every unfrozen flow at least the first level's α), so the
				// coflow's key-relevant state is guaranteed to move.
				c.MarkSimMoved()
				for _, f := range c.LiveFlows() {
					if f.Rate <= 0 {
						continue
					}
					moved := f.Rate * dt
					if moved > f.Remaining {
						moved = f.Remaining
					}
					f.Remaining -= moved
					f.Coflow.SentBytes += moved
					rep.TotalBytes += moved
					if f.Remaining <= completionEps {
						f.Remaining = 0
						f.Done = true
						f.EndTime = now
						if len(dirty) == 0 || dirty[len(dirty)-1] != f.Coflow {
							dirty = append(dirty, f.Coflow)
						}
					}
				}
			}
			sc.dirty = dirty
			if len(dirty) > 0 {
				scanRetire = true
				for _, c := range dirty {
					c.RefreshSim()
				}
			}
		}
	}
	save()
	return nil
}

// releaseCompleted compacts the session's admitted list under
// ReleaseCompleted, dropping completed coflows once they make up more than
// half of it (amortized O(1) per coflow). Their CCTs stay in rep.CCTs and
// their weights in relWeights; BacklogInto and Digest thereafter cover only
// the retained coflows.
func (ss *Session) releaseCompleted() {
	done := len(ss.rep.CCTs) - ss.released
	if done <= 32 || done <= len(ss.all)/2 {
		return
	}
	w := 0
	for _, c := range ss.all {
		if !c.Completed {
			ss.all[w] = c
			w++
		}
	}
	ss.released += len(ss.all) - w
	// Nil out the released tail so the session does not pin completed
	// coflows (and their flow slices) in memory.
	for i := w; i < len(ss.all); i++ {
		ss.all[i] = nil
	}
	ss.all = ss.all[:w]
}
