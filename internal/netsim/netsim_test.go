package netsim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ccf/internal/coflow"
)

func TestNewFabricValidation(t *testing.T) {
	if _, err := NewFabric(0, 1); err == nil {
		t.Error("NewFabric accepted 0 ports")
	}
	f, err := NewFabric(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if f.EgressCap[p] != DefaultPortBandwidth || f.IngressCap[p] != DefaultPortBandwidth {
			t.Errorf("port %d default bandwidth = %g/%g, want %g",
				p, f.EgressCap[p], f.IngressCap[p], DefaultPortBandwidth)
		}
	}
}

func TestNewHeterogeneousFabricValidation(t *testing.T) {
	if _, err := NewHeterogeneousFabric(nil, nil); err == nil {
		t.Error("accepted empty capacities")
	}
	if _, err := NewHeterogeneousFabric([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, err := NewHeterogeneousFabric([]float64{1, 0}, []float64{1, 1}); err == nil {
		t.Error("accepted zero capacity")
	}
	f, err := NewHeterogeneousFabric([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if f.Ports != 2 || f.IngressCap[1] != 4 {
		t.Errorf("fabric = %+v", f)
	}
}

func TestHeterogeneousFabricSimulation(t *testing.T) {
	// One flow into a slow ingress port: 10 bytes at 2 B/s = 5 s, even
	// though the egress port could do 10 B/s.
	f, err := NewHeterogeneousFabric([]float64{10, 10}, []float64{10, 2})
	if err != nil {
		t.Fatal(err)
	}
	c := mkCoflow(0, 0, [3]float64{0, 1, 10})
	rep, err := NewSimulator(f, coflow.NewVarys()).Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MaxCCT-5) > 1e-9 {
		t.Errorf("CCT = %g, want 5 (ingress-limited)", rep.MaxCCT)
	}
}

func TestHeterogeneousMatchesWeightedClosedForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		egCap := make([]float64, n)
		inCap := make([]float64, n)
		for i := 0; i < n; i++ {
			egCap[i] = float64(1 + rng.Intn(9))
			inCap[i] = float64(1 + rng.Intn(9))
		}
		eg := make([]int64, n)
		in := make([]int64, n)
		var flows [][3]float64
		for i := 0; i < 1+rng.Intn(8); i++ {
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			size := float64(1 + rng.Intn(500))
			flows = append(flows, [3]float64{float64(src), float64(dst), size})
			eg[src] += int64(size)
			in[dst] += int64(size)
		}
		fab, err := NewHeterogeneousFabric(egCap, inCap)
		if err != nil {
			return false
		}
		rep, err := NewSimulator(fab, coflow.NewVarys()).Run([]*coflow.Coflow{mkCoflow(0, 0, flows...)})
		if err != nil {
			return false
		}
		want, err := WeightedBandwidthModelCCT(eg, in, egCap, inCap)
		if err != nil {
			return false
		}
		return math.Abs(rep.MaxCCT-want) < 1e-6*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWeightedBandwidthModelCCTValidation(t *testing.T) {
	if _, err := WeightedBandwidthModelCCT([]int64{1}, []int64{1}, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("accepted mismatched sizes")
	}
	if _, err := WeightedBandwidthModelCCT([]int64{1}, []int64{1}, []float64{0}, []float64{1}); err == nil {
		t.Error("accepted zero capacity")
	}
}

func mkCoflow(id int, arrival float64, flows ...[3]float64) *coflow.Coflow {
	fs := make([]coflow.Flow, len(flows))
	for i, f := range flows {
		fs[i] = coflow.Flow{ID: i, Src: int(f[0]), Dst: int(f[1]), Size: f[2]}
	}
	return coflow.New(id, "test", arrival, fs)
}

func TestSingleCoflowMADDMatchesBandwidthModel(t *testing.T) {
	// 0→1: 8, 0→2: 4, 2→1: 2 at bandwidth 2. Egress 0 = 12 ⇒ CCT = 6.
	c := mkCoflow(0, 0, [3]float64{0, 1, 8}, [3]float64{0, 2, 4}, [3]float64{2, 1, 2})
	fab, _ := NewFabric(3, 2)
	rep, err := NewSimulator(fab, coflow.NewVarys()).Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MaxCCT-6) > 1e-9 {
		t.Errorf("CCT = %g, want 6", rep.MaxCCT)
	}
	eg := []int64{12, 0, 2}
	in := []int64{0, 10, 4}
	if want := BandwidthModelCCT(eg, in, 2); math.Abs(rep.MaxCCT-want) > 1e-9 {
		t.Errorf("event sim %g != closed form %g", rep.MaxCCT, want)
	}
	if math.Abs(rep.TotalBytes-14) > 1e-6 {
		t.Errorf("TotalBytes = %g, want 14", rep.TotalBytes)
	}
}

func TestSingleCoflowAgreementProperty(t *testing.T) {
	// Property: for any random single coflow, the event simulator under
	// Varys/MADD equals max-port-load / bandwidth.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		bw := 1 + float64(rng.Intn(10))
		eg := make([]int64, n)
		in := make([]int64, n)
		var flows [][3]float64
		for i := 0; i < 1+rng.Intn(10); i++ {
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			size := float64(1 + rng.Intn(1000))
			flows = append(flows, [3]float64{float64(src), float64(dst), size})
			eg[src] += int64(size)
			in[dst] += int64(size)
		}
		c := mkCoflow(0, 0, flows...)
		fab, _ := NewFabric(n, bw)
		rep, err := NewSimulator(fab, coflow.NewVarys()).Run([]*coflow.Coflow{c})
		if err != nil {
			return false
		}
		want := BandwidthModelCCT(eg, in, bw)
		return math.Abs(rep.MaxCCT-want) < 1e-6*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestArrivalsAreRespected(t *testing.T) {
	// A lone coflow arriving at t=10 with 5 bytes at bw 1 finishes at 15,
	// but its CCT is 5.
	c := mkCoflow(0, 10, [3]float64{0, 1, 5})
	fab, _ := NewFabric(2, 1)
	rep, err := NewSimulator(fab, coflow.NewVarys()).Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Makespan-15) > 1e-9 {
		t.Errorf("makespan = %g, want 15", rep.Makespan)
	}
	if math.Abs(rep.CCTs[0]-5) > 1e-9 {
		t.Errorf("CCT = %g, want 5 (relative to arrival)", rep.CCTs[0])
	}
}

func TestOnlineTwoCoflowsSEBF(t *testing.T) {
	// Big coflow (100 B) at t=0, small (10 B) at t=1, same ports, bw 1.
	// SEBF preempts: big runs 1s (99 left), small runs 1..11, big resumes.
	// Big CCT = 110, small CCT = 10.
	big := mkCoflow(0, 0, [3]float64{0, 1, 100})
	small := mkCoflow(1, 1, [3]float64{0, 1, 10})
	fab, _ := NewFabric(2, 1)
	rep, err := NewSimulator(fab, coflow.NewVarys()).Run([]*coflow.Coflow{big, small})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.CCTs[1]-10) > 1e-6 {
		t.Errorf("small CCT = %g, want 10 (preempts big)", rep.CCTs[1])
	}
	if math.Abs(rep.CCTs[0]-110) > 1e-6 {
		t.Errorf("big CCT = %g, want 110", rep.CCTs[0])
	}
	if math.Abs(rep.Makespan-110) > 1e-6 {
		t.Errorf("makespan = %g, want 110", rep.Makespan)
	}
}

func TestFIFOvsSEBFAverageCCT(t *testing.T) {
	// Classic result: SEBF beats FIFO on average CCT when a small coflow
	// arrives behind a big one.
	mk := func() []*coflow.Coflow {
		return []*coflow.Coflow{
			mkCoflow(0, 0, [3]float64{0, 1, 100}),
			mkCoflow(1, 0.5, [3]float64{0, 1, 5}),
		}
	}
	fab, _ := NewFabric(2, 1)
	sebf, err := NewSimulator(fab, coflow.NewVarys()).Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := NewSimulator(fab, coflow.NewFIFO()).Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if sebf.AvgCCT >= fifo.AvgCCT {
		t.Errorf("SEBF avg CCT %g !< FIFO %g", sebf.AvgCCT, fifo.AvgCCT)
	}
	// Makespan is identical (work conservation on one bottleneck port).
	if math.Abs(sebf.Makespan-fifo.Makespan) > 1e-6 {
		t.Errorf("makespans differ: SEBF %g, FIFO %g", sebf.Makespan, fifo.Makespan)
	}
}

func TestPerFlowFairVersusVarys(t *testing.T) {
	// Two identical single-flow coflows sharing a port: fair sharing
	// finishes both at 20; SEBF serialises (10 and 20). Average CCT is
	// lower for SEBF, max is equal.
	mk := func() []*coflow.Coflow {
		return []*coflow.Coflow{
			mkCoflow(0, 0, [3]float64{0, 1, 10}),
			mkCoflow(1, 0, [3]float64{0, 1, 10}),
		}
	}
	fab, _ := NewFabric(2, 1)
	fair, err := NewSimulator(fab, coflow.PerFlowFair{}).Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	varys, err := NewSimulator(fab, coflow.NewVarys()).Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fair.AvgCCT-20) > 1e-6 {
		t.Errorf("fair avg CCT = %g, want 20", fair.AvgCCT)
	}
	if math.Abs(varys.AvgCCT-15) > 1e-6 {
		t.Errorf("varys avg CCT = %g, want 15", varys.AvgCCT)
	}
}

func TestSequentialByDestWorstCase(t *testing.T) {
	// The motivating example's SP2 flows under the uncoordinated schedule:
	// dest 0 gets 1, dest 1 gets 4, dest 2 gets 1 ⇒ CCT 6 at unit bw.
	c := mkCoflow(0, 0,
		[3]float64{2, 0, 1},
		[3]float64{0, 1, 3},
		[3]float64{2, 1, 1},
		[3]float64{1, 2, 1},
	)
	fab, _ := NewFabric(3, 1)
	rep, err := NewSimulator(fab, coflow.SequentialByDest{}).Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MaxCCT-6) > 1e-9 {
		t.Errorf("sequential CCT = %g, want 6", rep.MaxCCT)
	}
}

func TestRejectsSelfLoop(t *testing.T) {
	c := mkCoflow(0, 0, [3]float64{1, 1, 5})
	fab, _ := NewFabric(2, 1)
	if _, err := NewSimulator(fab, coflow.NewVarys()).Run([]*coflow.Coflow{c}); err == nil {
		t.Error("simulator accepted a self-loop flow")
	}
}

func TestRejectsOutOfRangePort(t *testing.T) {
	c := mkCoflow(0, 0, [3]float64{0, 5, 5})
	fab, _ := NewFabric(2, 1)
	if _, err := NewSimulator(fab, coflow.NewVarys()).Run([]*coflow.Coflow{c}); err == nil {
		t.Error("simulator accepted a flow to a non-existent port")
	}
}

// stallScheduler assigns no rates, ever.
type stallScheduler struct{}

func (stallScheduler) Name() string { return "stall" }
func (stallScheduler) Allocate(_ float64, active []*coflow.Coflow, _, _ []float64) {
	for _, c := range active {
		for _, f := range c.Flows {
			f.Rate = 0
		}
	}
}

func TestStallDetection(t *testing.T) {
	c := mkCoflow(0, 0, [3]float64{0, 1, 5})
	fab, _ := NewFabric(2, 1)
	_, err := NewSimulator(fab, stallScheduler{}).Run([]*coflow.Coflow{c})
	if !errors.Is(err, ErrStalled) {
		t.Errorf("err = %v, want ErrStalled", err)
	}
}

// greedyOversubscriber violates port capacity on purpose.
type greedyOversubscriber struct{}

func (greedyOversubscriber) Name() string { return "oversub" }
func (greedyOversubscriber) Allocate(_ float64, active []*coflow.Coflow, egCap, _ []float64) {
	for _, c := range active {
		for _, f := range c.Flows {
			f.Rate = egCap[f.Src] * 10
		}
	}
}

func TestOversubscriptionDetection(t *testing.T) {
	c := mkCoflow(0, 0, [3]float64{0, 1, 5})
	fab, _ := NewFabric(2, 1)
	if _, err := NewSimulator(fab, greedyOversubscriber{}).Run([]*coflow.Coflow{c}); err == nil {
		t.Error("simulator accepted oversubscribed rates")
	}
}

func TestEmptyRun(t *testing.T) {
	fab, _ := NewFabric(2, 1)
	rep, err := NewSimulator(fab, coflow.NewVarys()).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 0 || len(rep.CCTs) != 0 {
		t.Errorf("empty run: makespan=%g CCTs=%v", rep.Makespan, rep.CCTs)
	}
}

func TestEmptyCoflowCompletesInstantly(t *testing.T) {
	c := &coflow.Coflow{ID: 7, Name: "empty", Arrival: 3}
	fab, _ := NewFabric(2, 1)
	rep, err := NewSimulator(fab, coflow.NewVarys()).Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.CCTs[7]; got != 0 {
		t.Errorf("empty coflow CCT = %g, want 0", got)
	}
}

func TestReportAggregates(t *testing.T) {
	a := mkCoflow(0, 0, [3]float64{0, 1, 10})
	b := mkCoflow(1, 0, [3]float64{2, 3, 30})
	fab, _ := NewFabric(4, 1)
	rep, err := NewSimulator(fab, coflow.NewVarys()).Run([]*coflow.Coflow{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.AvgCCT-20) > 1e-9 {
		t.Errorf("avg CCT = %g, want 20", rep.AvgCCT)
	}
	if math.Abs(rep.MaxCCT-30) > 1e-9 {
		t.Errorf("max CCT = %g, want 30", rep.MaxCCT)
	}
	if math.Abs(rep.TotalBytes-40) > 1e-6 {
		t.Errorf("total bytes = %g, want 40", rep.TotalBytes)
	}
	if rep.Epochs <= 0 {
		t.Error("no epochs recorded")
	}
}

func TestRunIsIdempotentOnCoflowState(t *testing.T) {
	// Run resets flow state, so simulating the same coflows twice gives
	// identical reports.
	mk := []*coflow.Coflow{
		mkCoflow(0, 0, [3]float64{0, 1, 17}, [3]float64{1, 2, 9}),
		mkCoflow(1, 2, [3]float64{2, 0, 23}),
	}
	fab, _ := NewFabric(3, 2)
	r1, err := NewSimulator(fab, coflow.NewVarys()).Run(mk)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewSimulator(fab, coflow.NewVarys()).Run(mk)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Makespan-r2.Makespan) > 1e-9 || math.Abs(r1.AvgCCT-r2.AvgCCT) > 1e-9 {
		t.Errorf("re-run diverged: %+v vs %+v", r1, r2)
	}
}

func TestAllSchedulersCompleteRandomWorkloads(t *testing.T) {
	scheds := []coflow.Scheduler{
		coflow.NewVarys(), coflow.NewFIFO(), coflow.NewSCF(), coflow.NewNCF(),
		coflow.NewAalo(), coflow.PerFlowFair{}, coflow.SequentialByDest{},
	}
	f := func(seed int64, schedIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := scheds[int(schedIdx)%len(scheds)]
		n := 2 + rng.Intn(5)
		var cfs []*coflow.Coflow
		var totalBytes float64
		for ci := 0; ci < 1+rng.Intn(4); ci++ {
			var flows [][3]float64
			for i := 0; i < 1+rng.Intn(5); i++ {
				src := rng.Intn(n)
				dst := (src + 1 + rng.Intn(n-1)) % n
				size := float64(1 + rng.Intn(500))
				flows = append(flows, [3]float64{float64(src), float64(dst), size})
				totalBytes += size
			}
			cfs = append(cfs, mkCoflow(ci, float64(rng.Intn(4)), flows...))
		}
		fab, _ := NewFabric(n, 1+float64(rng.Intn(5)))
		rep, err := NewSimulator(fab, s).Run(cfs)
		if err != nil {
			return false
		}
		if len(rep.CCTs) != len(cfs) {
			return false
		}
		// All bytes delivered.
		return math.Abs(rep.TotalBytes-totalBytes) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBandwidthModelCCT(t *testing.T) {
	if got := BandwidthModelCCT([]int64{10, 4}, []int64{0, 14}, 2); got != 7 {
		t.Errorf("BandwidthModelCCT = %g, want 7", got)
	}
	if got := BandwidthModelCCT(nil, nil, 5); got != 0 {
		t.Errorf("empty loads CCT = %g, want 0", got)
	}
}

func TestDeadlineModeThroughSimulator(t *testing.T) {
	// Three coflows sharing a port. A (10B, deadline 12) admitted; B
	// (10B, deadline 13) rejected after A's reservation; C best-effort.
	a := mkCoflow(0, 0, [3]float64{0, 1, 10})
	a.Deadline = 12
	b := mkCoflow(1, 0, [3]float64{0, 1, 10})
	b.Deadline = 13
	c := mkCoflow(2, 0, [3]float64{2, 3, 7})
	d := coflow.NewVarysDeadline()
	fab, _ := NewFabric(4, 1)
	rep, err := NewSimulator(fab, d).Run([]*coflow.Coflow{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Admitted(0) || d.Admitted(1) {
		t.Fatalf("admissions: a=%v b=%v, want true/false", d.Admitted(0), d.Admitted(1))
	}
	if rep.CCTs[0] > 12+1e-6 {
		t.Errorf("admitted coflow CCT %g missed deadline 12", rep.CCTs[0])
	}
	if rep.CCTs[2] > 7+1e-6 {
		t.Errorf("disjoint best-effort coflow CCT %g, want 7 (full port via backfill)", rep.CCTs[2])
	}
	stats := coflow.CollectDeadlineStats([]*coflow.Coflow{a, b, c}, d)
	if stats.WithDeadline != 2 || stats.Admitted != 1 || stats.Met < 1 {
		t.Errorf("deadline stats = %+v", stats)
	}
	// All bytes delivered despite the rejection (best-effort service).
	if math.Abs(rep.TotalBytes-27) > 1e-6 {
		t.Errorf("moved %g bytes, want 27", rep.TotalBytes)
	}
}
