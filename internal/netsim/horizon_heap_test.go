package netsim

// White-box unit tests for the completion heap: minRel must return the
// bit-exact minimum relative step (the dense dt), consuming exactly the
// minimal-projection tie set, and report +Inf when empty.

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestCompletionHeapEmpty(t *testing.T) {
	var h completionHeap
	if got := h.minRel(); !math.IsInf(got, 1) {
		t.Fatalf("empty heap minRel = %v, want +Inf", got)
	}
	h.push(5, 5)
	h.reset()
	if got := h.minRel(); !math.IsInf(got, 1) {
		t.Fatalf("reset heap minRel = %v, want +Inf", got)
	}
}

func TestCompletionHeapMinRelExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		var h completionHeap
		now := rng.Float64() * 1e6
		n := 1 + rng.Intn(50)
		rels := make([]float64, n)
		for i := range rels {
			rels[i] = rng.Float64() * 100
			h.push(now+rels[i], rels[i])
		}
		want := math.Inf(1)
		for _, r := range rels {
			if r < want {
				want = r
			}
		}
		if got := h.minRel(); got != want {
			t.Fatalf("trial %d: minRel = %v, want exact %v", trial, got, want)
		}
	}
}

// TestCompletionHeapTieSet pins the projection-collision case: distinct rels
// can round to the same absolute projection (now + rel). minRel must scan
// the whole tie set and return the smallest rel, not whichever entry the
// heap surfaces first.
func TestCompletionHeapTieSet(t *testing.T) {
	var h completionHeap
	const now = 1e16 // ulp(now) = 2, so sub-ulp rels collapse onto now
	rels := []float64{0.9, 0.4, 0.7}
	for _, r := range rels {
		if now+r != now {
			t.Fatalf("test premise broken: now+%v should project onto now", r)
		}
		h.push(now+r, r)
	}
	h.push(now+8, 8) // strictly larger projection stays behind
	if got := h.minRel(); got != 0.4 {
		t.Fatalf("minRel = %v, want 0.4 (min over the tie set)", got)
	}
	if h.len() != 1 {
		t.Fatalf("tie set not fully consumed: %d entries left, want 1", h.len())
	}
}

func TestCompletionHeapPopOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var h completionHeap
	var ats []float64
	for i := 0; i < 100; i++ {
		at := rng.Float64() * 1000
		ats = append(ats, at)
		h.push(at, at)
	}
	sort.Float64s(ats)
	for i, want := range ats {
		if got := h.ent[0].at; got != want {
			t.Fatalf("pop %d: min = %v, want %v", i, got, want)
		}
		h.pop()
	}
	if h.len() != 0 {
		t.Fatalf("heap not drained: %d entries left", h.len())
	}
}
