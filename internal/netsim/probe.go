package netsim

import "ccf/internal/coflow"

// Probe is the simulator's observability hook: an optional observer the
// event loop drives at run boundaries, epoch boundaries, and event edges.
// internal/telemetry provides the production implementation (utilization
// rings, coflow lifecycle traces, Perfetto/JSONL export); tests provide
// small counting probes.
//
// The contract is strict so that observing can never perturb:
//
//   - Every method is called synchronously from the event loop, single
//     goroutine, in simulation-time order.
//   - Every argument is read-only. Slices (capacities, usage, active sets)
//     are the simulator's scratch storage: they are only valid for the
//     duration of the call and must be copied if retained.
//   - A nil Simulator.Probe is the fast path: the loop takes one
//     predictable branch per hook site and allocates nothing, keeping the
//     disabled path bit-identical to internal/refsim and at 0 allocs/op
//     (pinned by the equivalence suite and the allocation guard test).
type Probe interface {
	// BeginRun starts a run over a fabric of the given port count and
	// configured capacities. sched is the driving scheduler — probes may
	// type-assert it against coflow.Auditable to capture decision audits.
	BeginRun(ports int, egCap, inCap []float64, coflows []*coflow.Coflow, sched coflow.Scheduler)

	// EpochSample reports one scheduling epoch: the interval [now, now+dt)
	// over which the just-allocated rates hold. egUse/inUse are the per-port
	// aggregate rates, egCap/inCap the effective per-port capacities this
	// epoch (configured capacity x event factor, zero while the port is
	// down).
	EpochSample(now, dt float64, active []*coflow.Coflow, egUse, inUse, egCap, inCap []float64)

	// CoflowAdmitted fires when a coflow enters the active set (arrival
	// time reached and dependencies satisfied).
	CoflowAdmitted(now float64, c *coflow.Coflow)

	// CoflowCompleted fires when the last flow of a coflow finishes.
	CoflowCompleted(now float64, c *coflow.Coflow)

	// FailureEdge fires on every failure transition: up=false when the
	// port's outage begins, up=true when it lifts.
	FailureEdge(now float64, port int, up bool)

	// FlowHit fires once per flow affected by a failure's down edge.
	// restarted is true when the retransmission policy voided the flow's
	// progress (the flow re-sends from byte zero), false when the flow
	// merely waits out the outage (RetransmitResume).
	FlowHit(now float64, c *coflow.Coflow, f *coflow.Flow, restarted bool)

	// EndRun closes the run at the final simulation time (the makespan, or
	// the horizon for horizon-limited runs). Not called when the run aborts
	// with an error.
	EndRun(now float64)
}
