package netsim_test

// Session semantics: a resumable session advanced in steps — stopping at
// every arrival and capacity-event timestamp, admitting coflows as they
// arrive — must be *bit-identical* to a straight-through RunInto over the
// same workload (the property the online engine's O(J) backlog reads stand
// on), and the documented edge cases (simultaneous arrivals, stops landing
// exactly on completion or failure-edge timestamps, t=0 horizons) must hold
// exactly.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
)

// sessionStops collects the timestamps a stepped session may stop at while
// staying bit-identical to a straight-through run: epoch boundaries only,
// i.e. arrivals of dependency-free coflows and capacity events, ascending.
// A dependency-gated coflow's arrival is NOT necessarily a boundary (it is
// admitted at its dependency's completion instant), so stopping there would
// split a fluid interval the straight-through run takes in one step.
func sessionStops(spec *workloadSpec) []float64 {
	var stops []float64
	for _, cs := range spec.coflows {
		if len(spec.deps[cs.id]) > 0 {
			continue
		}
		stops = append(stops, cs.arrival)
	}
	for _, ev := range spec.events {
		stops = append(stops, ev.Time)
	}
	sort.Float64s(stops)
	return stops
}

// runSession drives a stepped session over the spec's coflows: streaming
// admission at each arrival when the spec has no dependency DAG (dependency
// references must exist before they can gate admission), upfront admission
// otherwise, then Advance through every stop and Finish. Returns the final
// report and the first error the session latched.
func runSession(t *testing.T, sim *netsim.Simulator, spec *workloadSpec, cfs []*coflow.Coflow) (*netsim.Report, error) {
	t.Helper()
	ses, err := sim.Session()
	if err != nil {
		return nil, err
	}
	streaming := spec.deps == nil
	byArrival := append([]*coflow.Coflow(nil), cfs...)
	sort.SliceStable(byArrival, func(a, b int) bool { return byArrival[a].Arrival < byArrival[b].Arrival })
	if !streaming {
		for _, c := range byArrival {
			if err := ses.Admit(c); err != nil {
				return nil, err
			}
		}
	}
	next := 0
	for _, stop := range sessionStops(spec) {
		if streaming {
			for next < len(byArrival) && byArrival[next].Arrival <= stop {
				if err := ses.Admit(byArrival[next]); err != nil {
					return nil, err
				}
				next++
			}
		}
		if err := ses.Advance(stop); err != nil {
			return nil, err
		}
	}
	return ses.Finish()
}

// TestSessionMatchesRunInto is the golden session property: stepped sessions
// (streaming and upfront admission alike) equal straight-through runs bit
// for bit — reports, coflow end states, flow end states — across the same
// seeded workload space the refsim suite sweeps.
func TestSessionMatchesRunInto(t *testing.T) {
	const seeds = 24
	scheds := []struct {
		name string
		mk   func() coflow.Scheduler
	}{
		{"varys", coflow.NewVarys},
		{"aalo", func() coflow.Scheduler { return coflow.NewAalo() }},
		{"fifo", coflow.NewFIFO},
		{"per-flow-fair", func() coflow.Scheduler { return coflow.PerFlowFair{} }},
	}
	for _, sc := range scheds {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				spec := randomSpec(rand.New(rand.NewSource(seed)), false)

				refCfs := spec.build()
				refSim := netsim.NewSimulator(spec.fabric(t), sc.mk())
				refSim.Events = spec.events
				refSim.Deps = spec.deps
				if spec.horizon > 0 {
					refSim.Horizon = spec.horizon
				}
				refRep := &netsim.Report{}
				refErr := refSim.RunInto(refCfs, refRep)

				sesCfs := spec.build()
				sesSim := netsim.NewSimulator(spec.fabric(t), sc.mk())
				sesSim.Events = spec.events
				sesSim.Deps = spec.deps
				if spec.horizon > 0 {
					sesSim.Horizon = spec.horizon
				}
				sesRep, sesErr := runSession(t, sesSim, &spec, sesCfs)

				tag := fmt.Sprintf("%s/seed=%d", sc.name, seed)
				compareRuns(t, tag, &spec, sesCfs, refCfs, sesRep, refRep, sesErr, refErr)
			}
		})
	}
}

// TestSessionSimultaneousArrivals admits two coflows with the same arrival
// across separate Admit calls mid-session and checks the run equals a batch
// RunInto of all three.
func TestSessionSimultaneousArrivals(t *testing.T) {
	build := func() []*coflow.Coflow {
		mk := func(id int, arrival float64, src, dst int, size float64) *coflow.Coflow {
			return coflow.New(id, fmt.Sprintf("c%d", id), arrival,
				[]coflow.Flow{{ID: 0, Src: src, Dst: dst, Size: size}})
		}
		return []*coflow.Coflow{
			mk(0, 0, 0, 1, 64e6),
			mk(1, 0.25, 1, 2, 32e6), // simultaneous pair
			mk(2, 0.25, 2, 3, 16e6),
		}
	}
	fab, err := netsim.NewFabric(4, 0)
	if err != nil {
		t.Fatal(err)
	}

	refCfs := build()
	refRep, err := netsim.NewSimulator(fab, coflow.NewVarys()).Run(refCfs)
	if err != nil {
		t.Fatal(err)
	}

	sesCfs := build()
	sim := netsim.NewSimulator(fab, coflow.NewVarys())
	ses, err := sim.Session()
	if err != nil {
		t.Fatal(err)
	}
	if err := ses.Admit(sesCfs[0]); err != nil {
		t.Fatal(err)
	}
	if err := ses.Advance(0.25); err != nil {
		t.Fatal(err)
	}
	if err := ses.Admit(sesCfs[1]); err != nil {
		t.Fatal(err)
	}
	if err := ses.Admit(sesCfs[2]); err != nil {
		t.Fatal(err)
	}
	sesRep, err := ses.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range refRep.CCTs {
		if got := sesRep.CCTs[id]; got != want {
			t.Errorf("CCT[%d] = %v, want %v", id, got, want)
		}
	}
	if sesRep.Makespan != refRep.Makespan {
		t.Errorf("Makespan %v != %v", sesRep.Makespan, refRep.Makespan)
	}
}

// TestSessionAdvanceOnCompletionTimestamp lands an Advance exactly on a flow
// completion instant (sizes and the default bandwidth divide to a
// binary-exact time) and checks the completion is applied at the stop: CCT
// recorded, backlog empty.
func TestSessionAdvanceOnCompletionTimestamp(t *testing.T) {
	fab, err := netsim.NewFabric(2, 0) // 128e6 B/s
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.NewSimulator(fab, coflow.NewVarys())
	ses, err := sim.Session()
	if err != nil {
		t.Fatal(err)
	}
	cf := coflow.New(0, "c0", 0, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 8e6}})
	if err := ses.Admit(cf); err != nil {
		t.Fatal(err)
	}
	const done = 8e6 / 128e6 // 0.0625, exact in binary
	if err := ses.Advance(done); err != nil {
		t.Fatal(err)
	}
	eg, in := make([]int64, 2), make([]int64, 2)
	if err := ses.BacklogInto(eg, in); err != nil {
		t.Fatal(err)
	}
	if eg[0] != 0 || in[1] != 0 {
		t.Errorf("backlog at completion instant: eg=%v in=%v, want zeros", eg, in)
	}
	if got, ok := ses.Report().CCTs[0]; !ok || got != done {
		t.Errorf("CCT[0] = %v (ok=%v), want %v at the stop instant", got, ok, done)
	}
	rep, err := ses.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != done {
		t.Errorf("Makespan = %v, want %v", rep.Makespan, done)
	}
}

// TestSessionAdvanceOnFailureEdge lands Advance stops exactly on a failure's
// down and up edges. At the down instant the restart policy has voided the
// flow's progress — the backlog must read the full size again — and the
// whole stepped run still matches a straight-through faulted run bit for
// bit.
func TestSessionAdvanceOnFailureEdge(t *testing.T) {
	const size = 32e6
	const down, up = 0.125, 0.25 // binary-exact edges
	build := func() []*coflow.Coflow {
		return []*coflow.Coflow{coflow.New(0, "c0", 0,
			[]coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: size}})}
	}
	fab, err := netsim.NewFabric(2, 0)
	if err != nil {
		t.Fatal(err)
	}

	refCfs := build()
	refSim := netsim.NewSimulator(fab, coflow.NewVarys())
	refSim.Failures = []netsim.PortFailure{{Port: 1, Down: down, Up: up}}
	refRep, err := refSim.Run(refCfs)
	if err != nil {
		t.Fatal(err)
	}

	sesCfs := build()
	sim := netsim.NewSimulator(fab, coflow.NewVarys())
	sim.Failures = []netsim.PortFailure{{Port: 1, Down: down, Up: up}}
	ses, err := sim.Session()
	if err != nil {
		t.Fatal(err)
	}
	if err := ses.Admit(sesCfs[0]); err != nil {
		t.Fatal(err)
	}
	if err := ses.Advance(down); err != nil {
		t.Fatal(err)
	}
	eg, in := make([]int64, 2), make([]int64, 2)
	if err := ses.BacklogInto(eg, in); err != nil {
		t.Fatal(err)
	}
	if eg[0] != int64(size) {
		t.Errorf("backlog at down edge = %d, want full size %d (restart voided progress)", eg[0], int64(size))
	}
	if err := ses.Advance(up); err != nil {
		t.Fatal(err)
	}
	if err := ses.BacklogInto(eg, in); err != nil {
		t.Fatal(err)
	}
	if eg[0] != int64(size) {
		t.Errorf("backlog at up edge = %d, want %d (port was down throughout)", eg[0], int64(size))
	}
	sesRep, err := ses.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if sesRep.CCTs[0] != refRep.CCTs[0] || sesRep.Makespan != refRep.Makespan {
		t.Errorf("stepped faulted run (cct=%v makespan=%v) != straight-through (cct=%v makespan=%v)",
			sesRep.CCTs[0], sesRep.Makespan, refRep.CCTs[0], refRep.Makespan)
	}
	if sesRep.WastedBytes != refRep.WastedBytes {
		t.Errorf("WastedBytes %v != %v", sesRep.WastedBytes, refRep.WastedBytes)
	}
}

// TestHorizonZeroStopsAtTimeZero is the Horizon zero-value regression at the
// simulator level: with the NoHorizon sentinel, Horizon = 0 is a real
// "stop at t=0" — a coflow arriving at 0 is admitted but moves nothing, so
// its full volume reads back as backlog.
func TestHorizonZeroStopsAtTimeZero(t *testing.T) {
	fab, err := netsim.NewFabric(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfs := []*coflow.Coflow{coflow.New(0, "c0", 0,
		[]coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 4e6}})}
	sim := netsim.NewSimulator(fab, coflow.NewVarys())
	sim.Horizon = 0
	rep, err := sim.Run(cfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CCTs) != 0 {
		t.Errorf("coflow completed under Horizon=0: %v", rep.CCTs)
	}
	if rep.Makespan != 0 {
		t.Errorf("Makespan = %v, want 0", rep.Makespan)
	}
	eg, in := netsim.PortBacklog(2, cfs)
	if eg[0] != 4e6 || in[1] != 4e6 {
		t.Errorf("backlog under Horizon=0: eg=%v in=%v, want the full 4e6", eg, in)
	}
	// And the default stays "no horizon": a fresh simulator runs to the end.
	rep2, err := netsim.NewSimulator(fab, coflow.NewVarys()).Run(cfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.CCTs) != 1 {
		t.Errorf("default-horizon run did not complete: %v", rep2.CCTs)
	}
}

// TestSessionLifecycleErrors pins the session API contract: no Advance into
// the past, no use after Finish, and errors latch.
func TestSessionLifecycleErrors(t *testing.T) {
	fab, err := netsim.NewFabric(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.NewSimulator(fab, coflow.NewVarys())
	ses, err := sim.Session()
	if err != nil {
		t.Fatal(err)
	}
	// A long transfer keeps the session busy so the clock really advances
	// (a drained session parks its clock at the last event instead).
	if err := ses.Admit(coflow.New(1, "slow", 0,
		[]coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 1e12}})); err != nil {
		t.Fatal(err)
	}
	if err := ses.Advance(2); err != nil {
		t.Fatal(err)
	}
	if err := ses.Advance(1); err == nil {
		t.Error("Advance into the past succeeded")
	}
	if err := ses.Advance(3); err != nil {
		t.Fatalf("forward Advance after a rejected one: %v", err)
	}
	if _, err := ses.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := ses.Advance(4); err == nil {
		t.Error("Advance after Finish succeeded")
	}
	if err := ses.Admit(coflow.New(0, "late", 0, []coflow.Flow{{Src: 0, Dst: 1, Size: 1}})); err == nil {
		t.Error("Admit after Finish succeeded")
	}
	if _, err := ses.Finish(); err == nil {
		t.Error("double Finish succeeded")
	}
	if math.IsNaN(ses.Now()) {
		t.Error("Now is NaN")
	}
}
