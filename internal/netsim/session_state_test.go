package netsim

import (
	"testing"

	"ccf/internal/coflow"
)

// The session state accessors back the service layer's snapshots and stats:
// counts track admissions/completions, and the digest distinguishes any two
// sessions whose flow progress differs.
func TestSessionStateAccessors(t *testing.T) {
	fabric, err := NewFabric(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() (*Session, []*coflow.Coflow) {
		sim := NewSimulator(fabric, coflow.NewVarys())
		ses, err := sim.Session()
		if err != nil {
			t.Fatal(err)
		}
		a, err := coflow.FromVolumes(0, "a", 0, 4, []int64{0, 400, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
		if err != nil {
			t.Fatal(err)
		}
		b, err := coflow.FromVolumes(1, "b", 1, 4, []int64{0, 0, 800, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
		if err != nil {
			t.Fatal(err)
		}
		return ses, []*coflow.Coflow{a, b}
	}

	ses, cfs := mk()
	if ses.AdmittedCount() != 0 || ses.CompletedCount() != 0 {
		t.Fatalf("fresh session reports %d admitted / %d completed", ses.AdmittedCount(), ses.CompletedCount())
	}
	base := ses.Digest()
	for _, c := range cfs {
		if err := ses.Admit(c); err != nil {
			t.Fatal(err)
		}
	}
	if ses.AdmittedCount() != 2 {
		t.Fatalf("AdmittedCount = %d, want 2", ses.AdmittedCount())
	}
	if ses.Digest() == base {
		t.Fatal("digest unchanged by admissions")
	}

	// A twin session fed the same coflows digests identically at every stop.
	twin, twinCfs := mk()
	for _, c := range twinCfs {
		if err := twin.Admit(c); err != nil {
			t.Fatal(err)
		}
	}
	for _, stop := range []float64{1, 5, 20} {
		if err := ses.Advance(stop); err != nil {
			t.Fatal(err)
		}
		if err := twin.Advance(stop); err != nil {
			t.Fatal(err)
		}
		if ses.Digest() != twin.Digest() {
			t.Fatalf("twin sessions diverged at stop %g", stop)
		}
	}
	if ses.CompletedCount() != 2 {
		t.Fatalf("CompletedCount = %d after draining run, want 2", ses.CompletedCount())
	}
}
