package netsim_test

// Event-horizon equivalence: the sparse loop (Simulator.EventHorizon) must be
// *bit-identical* to the dense loop. Every sparse shortcut is a proof-carrying
// no-op (prefix admission pops the same coflows in the same order, skipped
// retirement scans would have found nothing, ungranted flows contribute +0.0
// to port sums and move no bytes, the completion heap recovers the exact
// min(Remaining/Rate), cached priority keys are pure functions of unchanged
// state), so the comparison is exact equality on every Report and per-flow
// field — no epsilons — across the seed × scheduler matrix, with and without
// failure schedules whose edges straddle the epochs the dense loop probes.

import (
	"fmt"
	"math/rand"
	"testing"

	"ccf/internal/netsim"
)

// withFailures decorates a random spec with a failure schedule drawn from the
// same rng: 1–3 outages (some permanent, some overlapping), edges spread over
// the run so some land between completion epochs and some on top of them.
func withFailures(rng *rand.Rand, spec *workloadSpec) []netsim.PortFailure {
	var fails []netsim.PortFailure
	for i := 0; i < 1+rng.Intn(3); i++ {
		pf := netsim.PortFailure{
			Port: rng.Intn(spec.ports),
			Down: rng.Float64() * 25,
		}
		if rng.Intn(4) > 0 { // 3/4 transient, 1/4 permanent
			pf.Up = pf.Down + 0.5 + rng.Float64()*10
		}
		fails = append(fails, pf)
	}
	return fails
}

func runPair(t *testing.T, tag string, spec *workloadSpec, prod func() *netsim.Simulator) {
	t.Helper()
	denseCfs := spec.build()
	denseSim := prod()
	denseRep, denseErr := denseSim.Run(denseCfs)

	horizonCfs := spec.build()
	horizonSim := prod()
	horizonSim.EventHorizon = true
	horizonRep, horizonErr := horizonSim.Run(horizonCfs)

	compareRuns(t, tag, spec, horizonCfs, denseCfs, horizonRep, denseRep, horizonErr, denseErr)
	if denseErr == nil && horizonRep.WeightedAvgCCT != denseRep.WeightedAvgCCT {
		t.Errorf("%s: WeightedAvgCCT %v != %v", tag, horizonRep.WeightedAvgCCT, denseRep.WeightedAvgCCT)
	}
}

// TestEventHorizonMatchesDense is the golden sparse-vs-dense property test:
// the full scheduler matrix over seeded random workloads (heterogeneous
// fabrics, staggered arrivals, capacity events including full outages,
// horizons, dependency DAGs — which exercise the documented dense fallback).
func TestEventHorizonMatchesDense(t *testing.T) {
	const seeds = 32
	for _, pair := range schedPairs {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				spec := randomSpec(rand.New(rand.NewSource(seed)), pair.deadlines)
				fab := spec.fabric(t)
				runPair(t, fmt.Sprintf("%s/seed=%d", pair.name, seed), &spec,
					func() *netsim.Simulator {
						sim := netsim.NewSimulator(fab, pair.prod())
						sim.Events = spec.events
						sim.Deps = spec.deps
						if spec.horizon > 0 {
							sim.Horizon = spec.horizon
						}
						return sim
					})
			}
		})
	}
}

// TestEventHorizonMatchesDenseUnderFailures pins the sparse loop against
// failure schedules under every retransmission policy: down/up edges land
// between, and exactly on, the completion epochs the dense loop steps
// through, voiding progress and (under restart-delivered) resurrecting
// delivered flows into the live set mid-run.
func TestEventHorizonMatchesDenseUnderFailures(t *testing.T) {
	const seeds = 24
	policies := []struct {
		name   string
		policy netsim.RetransmitPolicy
	}{
		{"restart", netsim.RetransmitRestart},
		{"resume", netsim.RetransmitResume},
		{"restart-delivered", netsim.RetransmitRestartDelivered},
	}
	for _, pair := range schedPairs {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			for _, pol := range policies {
				for seed := int64(0); seed < seeds; seed++ {
					rng := rand.New(rand.NewSource(seed))
					spec := randomSpec(rng, pair.deadlines)
					spec.deps = nil // exercise the sparse loop, not the fallback
					fails := withFailures(rng, &spec)
					fab := spec.fabric(t)
					tag := fmt.Sprintf("%s/%s/seed=%d", pair.name, pol.name, seed)
					runPair(t, tag, &spec, func() *netsim.Simulator {
						sim := netsim.NewSimulator(fab, pair.prod())
						sim.Events = spec.events
						sim.Failures = fails
						sim.Retransmit = pol.policy
						if spec.horizon > 0 {
							sim.Horizon = spec.horizon
						}
						return sim
					})
				}
			}
		})
	}
}

// TestEventHorizonReusedSchedulerClearsSparse pins the Session.begin
// contract: a scheduler instance moved from an event-horizon simulator to a
// plain one must drop the sparse bookkeeping (and vice versa), matching a
// fresh dense run exactly — the sparse twin of the shard-config reuse test.
func TestEventHorizonReusedSchedulerClearsSparse(t *testing.T) {
	for _, pair := range schedPairs {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			spec := randomSpec(rand.New(rand.NewSource(11)), pair.deadlines)
			fab := spec.fabric(t)

			denseCfs := spec.build()
			denseSim := netsim.NewSimulator(fab, pair.prod())
			denseSim.Events = spec.events
			denseSim.Deps = spec.deps
			denseRep, denseErr := denseSim.Run(denseCfs)

			sched := pair.prod()
			warmSim := netsim.NewSimulator(fab, sched)
			warmSim.Events = spec.events
			warmSim.Deps = spec.deps
			warmSim.EventHorizon = true
			if _, err := warmSim.Run(spec.build()); (err != nil) != (denseErr != nil) {
				t.Fatalf("horizon warm-up error mismatch: %v vs %v", err, denseErr)
			}
			plainCfs := spec.build()
			plainSim := netsim.NewSimulator(fab, sched)
			plainSim.Events = spec.events
			plainSim.Deps = spec.deps
			plainRep, plainErr := plainSim.Run(plainCfs)
			compareRuns(t, pair.name+"/after-horizon", &spec,
				plainCfs, denseCfs, plainRep, denseRep, plainErr, denseErr)
		})
	}
}
