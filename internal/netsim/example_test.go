package netsim_test

import (
	"fmt"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
)

// One shuffle coflow on a 3-port fabric under Varys (SEBF + MADD): the CCT
// equals the bottleneck port's load divided by its bandwidth.
func ExampleSimulator_Run() {
	c := coflow.New(0, "shuffle", 0, []coflow.Flow{
		{ID: 0, Src: 0, Dst: 1, Size: 800},
		{ID: 1, Src: 0, Dst: 2, Size: 400},
		{ID: 2, Src: 2, Dst: 1, Size: 200},
	})
	fabric, err := netsim.NewFabric(3, 100) // 100 bytes/sec per port
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep, err := netsim.NewSimulator(fabric, coflow.NewVarys()).Run([]*coflow.Coflow{c})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Egress of node 0 carries 1200 bytes at 100 B/s.
	fmt.Printf("CCT = %g s, moved %g bytes\n", rep.MaxCCT, rep.TotalBytes)
	// Output:
	// CCT = 12 s, moved 1400 bytes
}

// Capacity events inject failures mid-run: the ingress of port 1 halves at
// t=5, stretching the tail of the transfer.
func ExampleCapacityEvent() {
	c := coflow.New(0, "f", 0, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 10}})
	fabric, err := netsim.NewFabric(2, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sim := netsim.NewSimulator(fabric, coflow.NewVarys())
	sim.Events = []netsim.CapacityEvent{{Time: 5, Port: 1, EgressFactor: 1, IngressFactor: 0.5}}
	rep, err := sim.Run([]*coflow.Coflow{c})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("CCT = %g s\n", rep.MaxCCT)
	// Output:
	// CCT = 15 s
}
