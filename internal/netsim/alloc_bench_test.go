package netsim_test

// Microbenchmarks pinning the allocation-free hot path: a steady-state
// simulation run (reused Simulator + RunInto + reused coflows) must report
// 0 allocs/op. Any allocation that sneaks back into the epoch loop, the
// schedulers, or the live-flow caches shows up here immediately.

import (
	"fmt"
	"testing"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
)

func allToAll(b testing.TB, n int) []*coflow.Coflow {
	b.Helper()
	vol := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				vol[i*n+j] = int64(1e6 * (1 + (i+j)%7))
			}
		}
	}
	cf, err := coflow.FromVolumes(0, "bench", 0, n, vol)
	if err != nil {
		b.Fatal(err)
	}
	return []*coflow.Coflow{cf}
}

func staggered(b testing.TB, n, ncf int) []*coflow.Coflow {
	b.Helper()
	out := make([]*coflow.Coflow, 0, ncf)
	for ci := 0; ci < ncf; ci++ {
		var flows []coflow.Flow
		for f := 0; f < n/2; f++ {
			src := (ci + f) % n
			dst := (src + 1 + f%(n-1)) % n
			flows = append(flows, coflow.Flow{ID: f, Src: src, Dst: dst, Size: float64(1+(ci+f)%9) * 1e6})
		}
		out = append(out, coflow.New(ci, "bench", float64(ci)/4, flows))
	}
	return out
}

// BenchmarkSteadyStateRun measures a full simulation run on the steady-state
// path for each scheduler family; allocs/op must be 0.
func BenchmarkSteadyStateRun(b *testing.B) {
	scheds := []struct {
		name string
		mk   func() coflow.Scheduler
	}{
		{"varys", coflow.NewVarys},
		{"aalo", func() coflow.Scheduler { return coflow.NewAalo() }},
		{"fifo", coflow.NewFIFO},
		{"per-flow-fair", func() coflow.Scheduler { return coflow.PerFlowFair{} }},
	}
	for _, sc := range scheds {
		for _, n := range []int{16, 64} {
			b.Run(fmt.Sprintf("%s/n=%d", sc.name, n), func(b *testing.B) {
				cfs := staggered(b, n, 24)
				fab, err := netsim.NewFabric(n, 0)
				if err != nil {
					b.Fatal(err)
				}
				sim := netsim.NewSimulator(fab, sc.mk())
				var rep netsim.Report
				if err := sim.RunInto(cfs, &rep); err != nil { // warm the scratch
					b.Fatal(err)
				}
				epochs := rep.Epochs
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := sim.RunInto(cfs, &rep); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if b.Elapsed() > 0 {
					b.ReportMetric(float64(epochs)*float64(b.N)/b.Elapsed().Seconds(), "epochs/s")
				}
				// Guard, not just a metric: the nil-probe steady state must
				// stay at 0 allocs/op, and a regression fails the benchmark
				// instead of quietly shifting the reported number.
				if !raceEnabled {
					if avg := testing.AllocsPerRun(5, func() {
						if err := sim.RunInto(cfs, &rep); err != nil {
							b.Fatal(err)
						}
					}); avg != 0 {
						b.Fatalf("steady-state RunInto allocated %v allocs/op with nil probe", avg)
					}
				}
			})
		}
	}
}

// TestSteadyStateRunZeroAllocs pins the telemetry overhead contract on the
// regular test path (no -bench flag needed): with Probe nil, a steady-state
// run performs zero heap allocations per op for every scheduler family.
func TestSteadyStateRunZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs allocation counts")
	}
	scheds := []struct {
		name string
		mk   func() coflow.Scheduler
	}{
		{"varys", coflow.NewVarys},
		{"aalo", func() coflow.Scheduler { return coflow.NewAalo() }},
		{"fifo", coflow.NewFIFO},
		{"per-flow-fair", func() coflow.Scheduler { return coflow.PerFlowFair{} }},
	}
	for _, sc := range scheds {
		t.Run(sc.name, func(t *testing.T) {
			cfs := staggered(t, 16, 24)
			fab, err := netsim.NewFabric(16, 0)
			if err != nil {
				t.Fatal(err)
			}
			sim := netsim.NewSimulator(fab, sc.mk())
			var rep netsim.Report
			if err := sim.RunInto(cfs, &rep); err != nil { // warm the scratch
				t.Fatal(err)
			}
			if avg := testing.AllocsPerRun(10, func() {
				if err := sim.RunInto(cfs, &rep); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Fatalf("steady-state RunInto allocated %v allocs/op with nil probe", avg)
			}

			// Same contract with Tier-2 sharding *configured* but below the
			// fabric-size threshold (16 ports < DefaultShardMinPorts): the
			// sub-threshold path is the literal serial code, so the presence
			// of the sharding machinery must not cost a single allocation.
			shardSim := netsim.NewSimulator(fab, sc.mk())
			shardSim.ShardWorkers = 4
			if err := shardSim.RunInto(cfs, &rep); err != nil {
				t.Fatal(err)
			}
			if avg := testing.AllocsPerRun(10, func() {
				if err := shardSim.RunInto(cfs, &rep); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Fatalf("sub-threshold sharded RunInto allocated %v allocs/op", avg)
			}
		})
	}
}

// TestSessionAdvanceZeroAllocs extends the allocation contract to the
// resumable session: the online engine's steady state — begin a session,
// stream coflows in at their arrivals, Advance between them, read the
// backlog in place, Finish — must perform zero heap allocations per full
// cycle once the simulator's buffers are warm. This is what makes the O(J)
// incremental backlog path allocation-free where the probe path cloned every
// flow per arrival.
func TestSessionAdvanceZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs allocation counts")
	}
	scheds := []struct {
		name string
		mk   func() coflow.Scheduler
	}{
		{"varys", coflow.NewVarys},
		{"aalo", func() coflow.Scheduler { return coflow.NewAalo() }},
	}
	for _, sc := range scheds {
		t.Run(sc.name, func(t *testing.T) {
			const n = 16
			cfs := staggered(t, n, 24)
			fab, err := netsim.NewFabric(n, 0)
			if err != nil {
				t.Fatal(err)
			}
			sim := netsim.NewSimulator(fab, sc.mk())
			eg, in := make([]int64, n), make([]int64, n)
			cycle := func() {
				ses, err := sim.Session()
				if err != nil {
					t.Fatal(err)
				}
				for _, c := range cfs {
					if err := ses.Advance(c.Arrival); err != nil {
						t.Fatal(err)
					}
					if err := ses.BacklogInto(eg, in); err != nil {
						t.Fatal(err)
					}
					if err := ses.Admit(c); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := ses.Finish(); err != nil {
					t.Fatal(err)
				}
			}
			cycle() // warm the scratch and the session buffers
			if avg := testing.AllocsPerRun(10, cycle); avg != 0 {
				t.Fatalf("steady-state session cycle allocated %v allocs/op", avg)
			}
		})
	}
}

// BenchmarkSteadyStateSingleCoflow is the MADD fast path: one all-to-all
// coflow (n²−n flows), the shape behind the paper's bandwidth-model check.
func BenchmarkSteadyStateSingleCoflow(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfs := allToAll(b, n)
			fab, err := netsim.NewFabric(n, 0)
			if err != nil {
				b.Fatal(err)
			}
			sim := netsim.NewSimulator(fab, coflow.NewVarys())
			var rep netsim.Report
			if err := sim.RunInto(cfs, &rep); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sim.RunInto(cfs, &rep); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
