package netsim_test

// Microbenchmarks pinning the allocation-free hot path: a steady-state
// simulation run (reused Simulator + RunInto + reused coflows) must report
// 0 allocs/op. Any allocation that sneaks back into the epoch loop, the
// schedulers, or the live-flow caches shows up here immediately.

import (
	"fmt"
	"testing"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
)

func allToAll(b *testing.B, n int) []*coflow.Coflow {
	b.Helper()
	vol := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				vol[i*n+j] = int64(1e6 * (1 + (i+j)%7))
			}
		}
	}
	cf, err := coflow.FromVolumes(0, "bench", 0, n, vol)
	if err != nil {
		b.Fatal(err)
	}
	return []*coflow.Coflow{cf}
}

func staggered(b *testing.B, n, ncf int) []*coflow.Coflow {
	b.Helper()
	out := make([]*coflow.Coflow, 0, ncf)
	for ci := 0; ci < ncf; ci++ {
		var flows []coflow.Flow
		for f := 0; f < n/2; f++ {
			src := (ci + f) % n
			dst := (src + 1 + f%(n-1)) % n
			flows = append(flows, coflow.Flow{ID: f, Src: src, Dst: dst, Size: float64(1+(ci+f)%9) * 1e6})
		}
		out = append(out, coflow.New(ci, "bench", float64(ci)/4, flows))
	}
	return out
}

// BenchmarkSteadyStateRun measures a full simulation run on the steady-state
// path for each scheduler family; allocs/op must be 0.
func BenchmarkSteadyStateRun(b *testing.B) {
	scheds := []struct {
		name string
		mk   func() coflow.Scheduler
	}{
		{"varys", coflow.NewVarys},
		{"aalo", func() coflow.Scheduler { return coflow.NewAalo() }},
		{"fifo", coflow.NewFIFO},
		{"per-flow-fair", func() coflow.Scheduler { return coflow.PerFlowFair{} }},
	}
	for _, sc := range scheds {
		for _, n := range []int{16, 64} {
			b.Run(fmt.Sprintf("%s/n=%d", sc.name, n), func(b *testing.B) {
				cfs := staggered(b, n, 24)
				fab, err := netsim.NewFabric(n, 0)
				if err != nil {
					b.Fatal(err)
				}
				sim := netsim.NewSimulator(fab, sc.mk())
				var rep netsim.Report
				if err := sim.RunInto(cfs, &rep); err != nil { // warm the scratch
					b.Fatal(err)
				}
				epochs := rep.Epochs
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := sim.RunInto(cfs, &rep); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if b.Elapsed() > 0 {
					b.ReportMetric(float64(epochs)*float64(b.N)/b.Elapsed().Seconds(), "epochs/s")
				}
			})
		}
	}
}

// BenchmarkSteadyStateSingleCoflow is the MADD fast path: one all-to-all
// coflow (n²−n flows), the shape behind the paper's bandwidth-model check.
func BenchmarkSteadyStateSingleCoflow(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfs := allToAll(b, n)
			fab, err := netsim.NewFabric(n, 0)
			if err != nil {
				b.Fatal(err)
			}
			sim := netsim.NewSimulator(fab, coflow.NewVarys())
			var rep netsim.Report
			if err := sim.RunInto(cfs, &rep); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sim.RunInto(cfs, &rep); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
