package netsim

// Port failures — the fault model of the robustness layer. A PortFailure
// takes one machine's ingress+egress ports to zero capacity at Down and
// restores them at Up (or never, when Up <= Down: a permanent loss). Unlike
// a CapacityEvent — which only rescales future service — a failure can also
// destroy work already performed, governed by the retransmission policy:
// in-flight progress may be voided (senders restart from byte zero) and,
// under the strictest policy, even fully-delivered flows into the failed
// port are re-sent, modelling loss of the receiver's un-replicated storage.
//
// Failures never change fault-free behavior: every branch of the failure
// machinery is gated on len(Simulator.Failures) > 0, keeping the fault-free
// event loop bit-identical to internal/refsim and allocation-free.

// RetransmitPolicy selects what happens to the bytes a failed port has
// already carried.
type RetransmitPolicy int

const (
	// RetransmitRestart voids the in-flight progress of every live flow
	// touching the failed port: senders restart those transfers from byte
	// zero once capacity returns. Delivered (Done) flows keep their data.
	// This is the default and models sender-side retransmission without
	// checkpointing.
	RetransmitRestart RetransmitPolicy = iota
	// RetransmitResume keeps all progress — flows simply wait out the
	// outage and resume from their checkpoint. No bytes are wasted.
	RetransmitResume
	// RetransmitRestartDelivered is RetransmitRestart plus receiver
	// storage loss: flows of in-flight coflows already delivered INTO the
	// failed port are voided too and re-enter the live set (the receiving
	// machine lost the data). Flows sent FROM the failed port keep their
	// delivery — the data lives at the destination. Coflows that fully
	// completed before the failure are not resurrected.
	RetransmitRestartDelivered
)

// String names the policy for reports and CLI flags.
func (p RetransmitPolicy) String() string {
	switch p {
	case RetransmitRestart:
		return "restart"
	case RetransmitResume:
		return "resume"
	case RetransmitRestartDelivered:
		return "restart-delivered"
	}
	return "unknown"
}

// PortFailure schedules one port outage: both the egress and ingress port
// of machine Port lose all capacity at time Down and regain their
// configured capacity at Up. Up <= Down means the port never recovers
// (permanent node loss). Overlapping failures of the same port compose: the
// port is up only when no scheduled outage covers the current time.
type PortFailure struct {
	Port int
	Down float64
	Up   float64
}

// Permanent reports whether the failure never recovers.
func (pf PortFailure) Permanent() bool { return pf.Up <= pf.Down }

// FailureOutcome records what one PortFailure did to the run. Report.Failures
// holds one outcome per configured failure, in input order.
type FailureOutcome struct {
	Port      int
	Down, Up  float64
	Permanent bool
	// FlowsHit counts the flows affected when the port went down: live
	// flows touching the port, plus (under RetransmitRestartDelivered)
	// delivered flows voided by receiver loss.
	FlowsHit int
	// WastedBytes is the progress this failure voided — bytes that were
	// carried across the fabric and then had to be re-sent.
	WastedBytes float64
	// Recovered reports that every sized flow touching the port finished
	// by the end of the run (always false if the run stopped at a horizon
	// with such flows in flight).
	Recovered bool
	// TimeToRecovery is the interval from Down until the last flow
	// touching the port completed, 0 when the failure affected no
	// unfinished flow. Only meaningful when Recovered.
	TimeToRecovery float64
}

// failTransition is one edge of a failure interval in the event loop's
// time-ordered schedule: the down edge (up=false) or the recovery edge.
type failTransition struct {
	time float64
	port int
	up   bool
	out  int // index into Report.Failures
}

// sortFailTransitions stable-sorts transitions by time (insertion sort: the
// list is tiny and usually near-sorted). Stability keeps the down edge of a
// failure ahead of any same-time edges appended later, so the down-counter
// composition of overlapping failures is order-independent.
func sortFailTransitions(tr []failTransition) {
	for i := 1; i < len(tr); i++ {
		ev := tr[i]
		j := i - 1
		for j >= 0 && ev.time < tr[j].time {
			tr[j+1] = tr[j]
			j--
		}
		tr[j+1] = ev
	}
}

// bumpRestart counts one forced flow restart against a coflow. The map is
// lazily allocated so fault-free runs stay allocation-free.
func bumpRestart(rep *Report, id int) {
	if rep.Restarts == nil {
		rep.Restarts = make(map[int]int)
	}
	rep.Restarts[id]++
}
