package netsim_test

// Edge cases for the event-horizon loop that the random matrices are
// unlikely to hit exactly: completion and failure edges landing on the same
// timestamp, coflows whose every flow carries zero rate (fully failed ports
// — nothing enters the completion heap, the failure up-edge must bound the
// epoch), Session.Advance stopping bit-identically at boundaries the sparse
// loop would otherwise skip past, and ReleaseCompleted retiring coflows
// mid-run without disturbing the report.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
)

var retransmitPolicies = []struct {
	name   string
	policy netsim.RetransmitPolicy
}{
	{"restart", netsim.RetransmitRestart},
	{"resume", netsim.RetransmitResume},
	{"restart-delivered", netsim.RetransmitRestartDelivered},
}

// TestEventHorizonCompletionMeetsFailureEdge pins the same-instant case: a
// lone coflow drains a 400-byte flow over a 100-cap link, completing at
// exactly t=4.0 — the instant one port fails transiently and another fails
// permanently. A second coflow straddles the outage. Dense and sparse loops
// must agree bit-for-bit on how the tie resolves, under every policy.
func TestEventHorizonCompletionMeetsFailureEdge(t *testing.T) {
	spec := workloadSpec{
		ports: 3,
		egCap: []float64{100, 100, 100},
		inCap: []float64{100, 100, 100},
		coflows: []cfSpec{
			{id: 0, arrival: 0, flows: []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 400}}},
			{id: 1, arrival: 2, flows: []coflow.Flow{
				{ID: 0, Src: 1, Dst: 2, Size: 300},
				{ID: 1, Src: 2, Dst: 0, Size: 500},
			}},
		},
	}
	fails := []netsim.PortFailure{
		{Port: 1, Down: 4, Up: 6},
		{Port: 2, Down: 4}, // permanent, same instant as the completion
	}
	for _, pair := range schedPairs {
		for _, pol := range retransmitPolicies {
			tag := fmt.Sprintf("%s/%s", pair.name, pol.name)
			runPair(t, tag, &spec, func() *netsim.Simulator {
				sim := netsim.NewSimulator(spec.fabric(t), pair.prod())
				sim.Failures = fails
				sim.Retransmit = pol.policy
				return sim
			})
		}
	}
}

// TestEventHorizonZeroRateNeverBoundsEpoch pins the empty-heap case: the
// only admitted coflow sits on a port that is down for its entire early
// life, so every flow has rate zero and nothing is pushed into the
// completion heap. The epoch must be bounded by the failure up-edge alone —
// identically in both loops — and the coflow completes only after repair.
func TestEventHorizonZeroRateNeverBoundsEpoch(t *testing.T) {
	spec := workloadSpec{
		ports: 2,
		egCap: []float64{100, 100},
		inCap: []float64{100, 100},
		coflows: []cfSpec{
			{id: 0, arrival: 2, flows: []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 200}}},
		},
	}
	fails := []netsim.PortFailure{{Port: 0, Down: 1, Up: 8}}
	for _, pair := range schedPairs {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			runPair(t, pair.name, &spec, func() *netsim.Simulator {
				sim := netsim.NewSimulator(spec.fabric(t), pair.prod())
				sim.Failures = fails
				sim.Retransmit = netsim.RetransmitResume
				return sim
			})
			cfs := spec.build()
			sim := netsim.NewSimulator(spec.fabric(t), pair.prod())
			sim.Failures = fails
			sim.Retransmit = netsim.RetransmitResume
			sim.EventHorizon = true
			rep, err := sim.Run(cfs)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Makespan < 8 {
				t.Errorf("makespan %v: completed before the port came back at t=8", rep.Makespan)
			}
		})
	}
}

// TestEventHorizonAdvanceBoundaries drives dense and sparse sessions through
// an identical ladder of Advance stops — many landing mid-interval, where
// the sparse loop would otherwise leap straight to the next completion — and
// demands bit-identical state (Digest) at every rung plus identical final
// reports.
func TestEventHorizonAdvanceBoundaries(t *testing.T) {
	for _, pair := range schedPairs {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			for seed := int64(200); seed < 212; seed++ {
				spec := randomSpec(rand.New(rand.NewSource(seed)), pair.deadlines)
				spec.deps = nil
				spec.horizon = 0
				fab := spec.fabric(t)
				tag := fmt.Sprintf("%s/seed=%d", pair.name, seed)

				mk := func(horizon bool) (*netsim.Session, []*coflow.Coflow, error) {
					sim := netsim.NewSimulator(fab, pair.prod())
					sim.Events = spec.events
					sim.EventHorizon = horizon
					ss, err := sim.Session()
					if err != nil {
						return nil, nil, err
					}
					cfs := spec.build()
					for _, c := range cfs {
						if err := ss.Admit(c); err != nil {
							return nil, nil, err
						}
					}
					return ss, cfs, nil
				}
				dense, denseCfs, err := mk(false)
				if err != nil {
					t.Fatal(err)
				}
				sparse, sparseCfs, err := mk(true)
				if err != nil {
					t.Fatal(err)
				}

				var denseErr, sparseErr error
				for _, stop := range []float64{0.3, 1.0, 1.7, 2.5, 4.9, 7.3, 11.1, 20.0, 60.0} {
					denseErr = dense.Advance(stop)
					sparseErr = sparse.Advance(stop)
					if (denseErr != nil) != (sparseErr != nil) {
						t.Fatalf("%s: Advance(%v) error mismatch: dense=%v sparse=%v",
							tag, stop, denseErr, sparseErr)
					}
					if denseErr != nil {
						break
					}
					if d, s := dense.Digest(), sparse.Digest(); d != s {
						t.Fatalf("%s: Digest diverged at stop=%v: dense=%x sparse=%x", tag, stop, d, s)
					}
					if dense.Now() != sparse.Now() {
						t.Fatalf("%s: Now diverged at stop=%v: %v != %v", tag, stop, dense.Now(), sparse.Now())
					}
				}
				if denseErr != nil {
					continue // both stalled identically mid-ladder
				}
				denseRep, denseErr := dense.Finish()
				sparseRep, sparseErr := sparse.Finish()
				compareRuns(t, tag, &spec, sparseCfs, denseCfs, sparseRep, denseRep, sparseErr, denseErr)
			}
		})
	}
}

// TestEventHorizonReleaseCompleted streams enough coflows through a sparse
// session that the completed-coflow compaction provably triggers, then
// checks the report against a dense run that retains everything: same CCTs,
// same makespan, same (weighted) averages — summed in ID order, which for
// arrival-ordered IDs is the dense input order, so equality is exact.
func TestEventHorizonReleaseCompleted(t *testing.T) {
	const n = 120
	rng := rand.New(rand.NewSource(7))
	spec := workloadSpec{
		ports: 4,
		egCap: []float64{100, 100, 100, 100},
		inCap: []float64{100, 100, 100, 100},
	}
	for i := 0; i < n; i++ {
		cs := cfSpec{id: i, arrival: float64(i) * 0.5}
		for fi := 0; fi < 1+rng.Intn(3); fi++ {
			src := rng.Intn(spec.ports)
			cs.flows = append(cs.flows, coflow.Flow{
				ID: fi, Src: src, Dst: (src + 1 + rng.Intn(spec.ports-1)) % spec.ports,
				Size: float64(1 + rng.Intn(2000)),
			})
		}
		spec.coflows = append(spec.coflows, cs)
	}
	weight := func(cfs []*coflow.Coflow) {
		for i, c := range cfs {
			if i%3 == 0 {
				c.Weight = 1 + float64(i%5)
			}
		}
	}
	for _, pair := range schedPairs {
		pair := pair
		t.Run(pair.name, func(t *testing.T) {
			fab := spec.fabric(t)
			denseCfs := spec.build()
			weight(denseCfs)
			denseRep, err := netsim.NewSimulator(fab, pair.prod()).Run(denseCfs)
			if err != nil {
				t.Fatal(err)
			}

			sim := netsim.NewSimulator(fab, pair.prod())
			sim.EventHorizon = true
			sim.ReleaseCompleted = true
			ss, err := sim.Session()
			if err != nil {
				t.Fatal(err)
			}
			relCfs := spec.build()
			weight(relCfs)
			for _, c := range relCfs {
				if err := ss.Admit(c); err != nil {
					t.Fatal(err)
				}
			}
			if err := ss.Advance(math.Inf(1)); err != nil {
				t.Fatal(err)
			}
			// Release happens inside the sparse loop; schedulers without
			// sparse support fall back to the dense loop and retain all.
			if _, sparseCapable := pair.prod().(coflow.SparseAllocator); sparseCapable {
				if got := ss.AdmittedCount(); got >= n {
					t.Errorf("AdmittedCount=%d: completed coflows were never released", got)
				}
			}
			relRep, err := ss.Finish()
			if err != nil {
				t.Fatal(err)
			}

			if relRep.Makespan != denseRep.Makespan {
				t.Errorf("Makespan %v != %v", relRep.Makespan, denseRep.Makespan)
			}
			if relRep.MaxCCT != denseRep.MaxCCT {
				t.Errorf("MaxCCT %v != %v", relRep.MaxCCT, denseRep.MaxCCT)
			}
			if relRep.TotalBytes != denseRep.TotalBytes {
				t.Errorf("TotalBytes %v != %v", relRep.TotalBytes, denseRep.TotalBytes)
			}
			if relRep.AvgCCT != denseRep.AvgCCT {
				t.Errorf("AvgCCT %v != %v", relRep.AvgCCT, denseRep.AvgCCT)
			}
			if relRep.WeightedAvgCCT != denseRep.WeightedAvgCCT {
				t.Errorf("WeightedAvgCCT %v != %v", relRep.WeightedAvgCCT, denseRep.WeightedAvgCCT)
			}
			if len(relRep.CCTs) != len(denseRep.CCTs) {
				t.Fatalf("%d CCTs != %d", len(relRep.CCTs), len(denseRep.CCTs))
			}
			for id, want := range denseRep.CCTs {
				if got := relRep.CCTs[id]; got != want {
					t.Errorf("CCT[%d] = %v, want %v", id, got, want)
				}
			}
		})
	}
}

// TestReleaseCompletedRejectsFailures pins the documented incompatibility:
// released coflows cannot be resurrected by a failure edge, so configuring
// both must fail fast rather than silently corrupt results.
func TestReleaseCompletedRejectsFailures(t *testing.T) {
	spec := workloadSpec{
		ports: 2,
		egCap: []float64{100, 100},
		inCap: []float64{100, 100},
		coflows: []cfSpec{
			{id: 0, arrival: 0, flows: []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 100}}},
		},
	}
	sim := netsim.NewSimulator(spec.fabric(t), coflow.NewVarys())
	sim.EventHorizon = true
	sim.ReleaseCompleted = true
	sim.Failures = []netsim.PortFailure{{Port: 0, Down: 1, Up: 2}}
	if _, err := sim.Run(spec.build()); err == nil {
		t.Fatal("ReleaseCompleted with Failures should be rejected")
	}
}

// TestWeightedAvgCCTDefaults pins satellite 1: with no weights set the
// weighted average equals the plain average bit-for-bit (every weight is
// exactly 1), and with weights set it matches a hand-computed Σw·CCT/Σw.
func TestWeightedAvgCCTDefaults(t *testing.T) {
	spec := randomSpec(rand.New(rand.NewSource(42)), false)
	spec.deps = nil
	spec.horizon = 0
	spec.events = nil
	fab := spec.fabric(t)

	cfs := spec.build()
	rep, err := netsim.NewSimulator(fab, coflow.NewVarys()).Run(cfs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WeightedAvgCCT != rep.AvgCCT {
		t.Errorf("default weights: WeightedAvgCCT %v != AvgCCT %v", rep.WeightedAvgCCT, rep.AvgCCT)
	}

	wcfs := spec.build()
	var wsum, wtot float64
	for i, c := range wcfs {
		c.Weight = float64(1 + i%4)
	}
	wrep, err := netsim.NewSimulator(fab, coflow.NewVarys()).Run(wcfs)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range wcfs {
		cct, err := c.CCT()
		if err != nil {
			t.Fatal(err)
		}
		wsum += c.Weight * cct
		wtot += c.Weight
	}
	if want := wsum / wtot; wrep.WeightedAvgCCT != want {
		t.Errorf("WeightedAvgCCT %v != hand-computed %v", wrep.WeightedAvgCCT, want)
	}
}
