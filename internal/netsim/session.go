package netsim

// Session is the resumable form of a simulation run: the same event loop
// RunInto drives to completion, parked between calls so callers can interleave
// time with decisions. Run/RunInto are now thin wrappers over a session that
// is begun, fed every coflow up front, and advanced to the end in one call;
// the online co-optimizer instead keeps ONE session alive across a whole job
// stream — Advance(t) moves the live simulation to the next arrival,
// BacklogInto reads the in-flight per-port bytes the placement model needs,
// Admit injects the newly-placed coflow, and Finish runs the tail and
// aggregates the report. That turns the per-arrival backlog probe from
// "re-simulate the entire admitted history from t=0" (O(J²) simulator work
// over J jobs, with a deep clone per arrival) into "advance the one live
// simulation since the previous arrival" — O(J) total and zero per-arrival
// cloning.
//
// Determinism contract: a session advanced through stops t₁ ≤ t₂ ≤ … that
// all land on epoch boundaries of the equivalent straight-through run —
// coflow arrivals (of coflows admitted at their arrival), capacity-event and
// failure-edge times, completions — and that admits each coflow no later
// than its arrival produces bit-identical flow states, CCTs and makespan to
// a single RunInto over the same coflows. The loop's float arithmetic is
// unchanged — an Advance stop bounds an epoch with the same `arrival - now`
// expression a pending arrival does in a straight-through run, and the stop
// never clamps `now` — so boundary stops land on the same floats either way
// (pinned by TestSessionMatchesRunInto and the online equivalence suite).
// The online engine only ever stops at arrivals, which are boundaries by
// construction. A stop strictly inside a fluid interval is still *semantically*
// exact (rates are constant across the split, so the same bytes move), but
// the split changes float rounding, so downstream times may drift by ulps
// relative to an unstopped run.
//
// Concurrency/lifecycle: a Simulator hosts one activity at a time. Starting a
// session abandons any previous session of that simulator, and calling
// Run/RunInto while a session is live corrupts the session's state (both
// share the simulator's scratch). Sessions are not safe for concurrent use.
//
// Probes keep firing across Advance boundaries: BeginRun once at session
// start (with the coflows admitted so far — none, for Simulator.Session),
// CoflowAdmitted/CoflowCompleted/EpochSample/FailureEdge as the loop crosses
// them regardless of which Advance call drives it, and EndRun at Finish.
// PortFailure windows that straddle arrivals apply exactly as in a
// straight-through run: the down/up edges are simulation events, not
// per-Advance state.

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ccf/internal/coflow"
)

// Session is a resumable simulation over a Simulator's fabric and scheduler.
// Obtain one from Simulator.Session; the zero value is not usable.
type Session struct {
	s   *Simulator
	rep *Report
	// ownRep backs sessions begun without caller-owned report storage
	// (Simulator.Session); reused across sessions so steady-state reuse
	// allocates nothing.
	ownRep Report

	now      float64
	iter     int // event-loop iterations consumed, bounded by MaxEpochs
	pending  []*coflow.Coflow
	active   []*coflow.Coflow
	live     []*coflow.Flow // flat non-done flows of the active coflows
	all      []*coflow.Coflow
	events   []CapacityEvent // unapplied suffix of the sorted event schedule
	nextFail int
	haveFail bool
	obs      coflow.CapacityObserver
	begun    bool
	finished bool
	err      error

	// Event-horizon (sparse) mode: set at begin when the simulator opts in,
	// the scheduler implements coflow.SparseAllocator, and the run has no
	// Deps. The loop then dispatches to loopSparse (horizon.go).
	sparse bool
	sa     coflow.SparseAllocator
	// release mirrors Simulator.ReleaseCompleted for this session; released
	// counts coflows dropped from `all`, and relWeights retains completed
	// coflows' weights for the finalize aggregates (their CCTs live on in
	// rep.CCTs). relWeights storage is reused across sessions; the flag, not
	// the map, gates releasing.
	release    bool
	released   int
	relWeights map[int]float64
}

// Session begins a resumable simulation session on the simulator, abandoning
// any previous session. Coflows are injected with Admit and time advances
// with Advance/Finish. The simulator's Events, Failures, Retransmit and
// Probe configuration apply to the session; Deps are honored but, because
// coflows stream in, dependency references are only resolved against coflows
// admitted so far (an unresolvable dependency surfaces as a blocked-coflows
// error from Advance, not as an upfront validation error the way Run reports
// it).
func (s *Simulator) Session() (*Session, error) {
	ss := &s.ses
	if err := ss.begin(s, nil); err != nil {
		return nil, err
	}
	if s.Probe != nil {
		s.Probe.BeginRun(s.fabric.Ports, s.fabric.EgressCap, s.fabric.IngressCap, nil, s.sched)
	}
	return ss, nil
}

// begin resets the session for a new run: validates and stages the event and
// failure schedules, sizes the scratch, and resets the report. rep == nil
// selects the session-owned report.
func (ss *Session) begin(s *Simulator, rep *Report) error {
	ports := s.fabric.Ports
	sc := &s.scratch
	*ss = Session{
		s:          s,
		ownRep:     ss.ownRep,
		pending:    ss.pending[:0],
		active:     ss.active[:0],
		live:       ss.live[:0],
		all:        ss.all[:0],
		relWeights: ss.relWeights,
		begun:      true,
	}
	if rep == nil {
		rep = &ss.ownRep
	}
	ss.rep = rep

	if sc.completed == nil {
		sc.completed = make(map[int]bool)
	} else {
		clear(sc.completed)
	}

	events := append(sc.events[:0], s.Events...)
	sortEventsByTime(events)
	sc.events = events
	ss.events = events
	for _, ev := range events {
		if ev.Port < 0 || ev.Port >= ports {
			return fmt.Errorf("netsim: capacity event targets port %d outside fabric of %d ports", ev.Port, ports)
		}
		if ev.EgressFactor < 0 || ev.IngressFactor < 0 {
			return fmt.Errorf("netsim: capacity event at t=%g has negative factor", ev.Time)
		}
	}
	sc.ensurePorts(ports)
	egFac, inFac := sc.egFac[:ports], sc.inFac[:ports]
	for p := range egFac {
		egFac[p], inFac[p] = 1, 1
	}

	// Failure schedule: expand each outage into time-sorted down/up edges.
	// A stale down-counter from a previous faulted run must never leak into
	// this one, so the counter is cleared unconditionally (cheap, and free
	// of float effects on the equivalence-pinned fault-free path).
	ss.haveFail = len(s.Failures) > 0
	downCnt := sc.downCnt[:ports]
	for p := range downCnt {
		downCnt[p] = 0
	}
	failEv := sc.failEv[:0]
	if ss.haveFail {
		for i, pf := range s.Failures {
			if pf.Port < 0 || pf.Port >= ports {
				return fmt.Errorf("netsim: failure targets port %d outside fabric of %d ports", pf.Port, ports)
			}
			if pf.Down < 0 {
				return fmt.Errorf("netsim: failure of port %d has negative down time %g", pf.Port, pf.Down)
			}
			failEv = append(failEv, failTransition{time: pf.Down, port: pf.Port, up: false, out: i})
			if !pf.Permanent() {
				failEv = append(failEv, failTransition{time: pf.Up, port: pf.Port, up: true, out: i})
			}
		}
		sortFailTransitions(failEv)
	}
	sc.failEv = failEv
	ss.obs, _ = s.sched.(coflow.CapacityObserver)
	// Propagate (or clear — a scheduler reused across differently-configured
	// simulators must not keep stale sharding) the Tier-2 shard config.
	if st, ok := s.sched.(coflow.ShardTunable); ok {
		st.SetShard(s.shardOptions())
	}
	// Event-horizon mode: sparse only when the simulator opts in, the run
	// has no dependency graph (admission must be a pure arrival-order prefix
	// pop), and the scheduler upholds the sparse contract. Like the shard
	// config, the toggle is propagated unconditionally so a scheduler reused
	// on a dense simulator drops its sparse bookkeeping.
	ss.sparse = s.EventHorizon && len(s.Deps) == 0
	if sa, ok := s.sched.(coflow.SparseAllocator); ok {
		ss.sa = sa
		sa.SetSparse(ss.sparse)
	} else {
		ss.sa = nil
		ss.sparse = false
	}
	ss.release = s.ReleaseCompleted
	if ss.release {
		if len(s.Failures) > 0 {
			return errors.New("netsim: ReleaseCompleted is incompatible with Failures (recovery accounting needs the full coflow set)")
		}
		if ss.relWeights == nil {
			ss.relWeights = make(map[int]float64)
		} else {
			clear(ss.relWeights)
		}
	}
	if s.Probe != nil && len(sc.probeEg) < ports {
		sc.probeEg = make([]float64, ports)
		sc.probeIn = make([]float64, ports)
	}

	*rep = Report{CCTs: rep.CCTs, Restarts: rep.Restarts, Failures: rep.Failures[:0]}
	if rep.CCTs == nil {
		rep.CCTs = make(map[int]float64)
	} else {
		clear(rep.CCTs)
	}
	if rep.Restarts != nil {
		clear(rep.Restarts)
	}
	for _, pf := range s.Failures {
		rep.Failures = append(rep.Failures, FailureOutcome{
			Port: pf.Port, Down: pf.Down, Up: pf.Up, Permanent: pf.Permanent(),
		})
	}
	return nil
}

// check gates the mutating session methods on lifecycle state.
func (ss *Session) check() error {
	if !ss.begun {
		return errors.New("netsim: session not started (obtain one from Simulator.Session)")
	}
	if ss.finished {
		return errors.New("netsim: session already finished")
	}
	return ss.err
}

// latch records a loop error so every later call reports it too: a session
// that errored mid-flight has inconsistent flow state and must be abandoned.
func (ss *Session) latch(err error) error {
	if err != nil {
		ss.err = err
	}
	return err
}

// Admit validates a coflow, resets its flow state, and queues it for
// admission at its Arrival time (or immediately, if the session has already
// advanced past it — the loop lifts the arrival to the current time, the
// same treatment a dependency-released coflow gets). Admitting c after
// advancing past c.Arrival therefore changes c's effective arrival; the
// online engine always admits at the arrival instant, where the two agree.
func (ss *Session) Admit(c *coflow.Coflow) error {
	if err := ss.check(); err != nil {
		return err
	}
	return ss.latch(ss.admit(c))
}

// admit is Admit without the lifecycle gate, shared with RunInto's prologue.
func (ss *Session) admit(c *coflow.Coflow) error {
	if err := ss.validateAdmit(c); err != nil {
		return err
	}
	ss.stage(c)
	return nil
}

// validateAdmit checks a coflow's flows against the fabric without mutating
// any session or flow state, so batch admission can be all-or-nothing.
func (ss *Session) validateAdmit(c *coflow.Coflow) error {
	ports := ss.s.fabric.Ports
	for _, f := range c.Flows {
		if f.Src < 0 || f.Src >= ports || f.Dst < 0 || f.Dst >= ports {
			return fmt.Errorf("netsim: flow %d of coflow %d uses port (%d→%d) outside fabric of %d ports",
				f.ID, c.ID, f.Src, f.Dst, ports)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("netsim: flow %d of coflow %d is a self-loop at port %d", f.ID, c.ID, f.Src)
		}
	}
	return nil
}

// stage registers a validated coflow: reset its flow state and insert it
// into the arrival-sorted admission queue.
func (ss *Session) stage(c *coflow.Coflow) {
	for _, f := range c.Flows {
		f.Remaining = f.Size
		f.Done = f.Size <= 0
		f.Rate = 0
	}
	c.Completed = false
	c.SentBytes = 0
	c.BeginSim(ss.s.fabric.Ports)
	ss.all = append(ss.all, c)
	// Insert into the arrival-sorted admission queue; per-item insertion of a
	// stable sort is itself stable, so batch admission (RunInto) and
	// streaming admission order ties identically.
	p := append(ss.pending, c)
	for i := len(p) - 1; i > 0 && p[i].Arrival < p[i-1].Arrival; i-- {
		p[i], p[i-1] = p[i-1], p[i]
	}
	ss.pending = p
}

// AdmitBatch registers N coflows at one time boundary in a single call —
// the multi-admit entry point the batched daemon path uses. Validation is
// all-or-nothing: every coflow is checked against the fabric before any
// flow state is touched, so a bad coflow in the middle of a batch admits
// nothing. The registered order and arrival-sorted queue are identical to N
// sequential Admit calls (stage inserts stably, ties keep batch order), no
// epoch work runs in between, and the next Advance stops on exactly the
// same boundaries — batch and sequential admission are byte-identical.
func (ss *Session) AdmitBatch(cs []*coflow.Coflow) error {
	if err := ss.check(); err != nil {
		return err
	}
	return ss.latch(ss.admitBatch(cs))
}

// admitBatch is AdmitBatch without the lifecycle gate, shared with RunInto's
// prologue.
func (ss *Session) admitBatch(cs []*coflow.Coflow) error {
	for _, c := range cs {
		if err := ss.validateAdmit(c); err != nil {
			return err
		}
	}
	for _, c := range cs {
		ss.stage(c)
	}
	return nil
}

// Advance runs the simulation up to time `to`: admissions, capacity events,
// failure edges and completions up to (and at) `to` all apply. Unlike the
// legacy Simulator.Horizon, Advance never rewrites the internal clock to the
// stop time — epochs land on exactly the floats a straight-through run
// produces, which is what makes a session bit-identical to RunInto.
func (ss *Session) Advance(to float64) error {
	if err := ss.check(); err != nil {
		return err
	}
	if to < ss.now-1e-12 {
		return fmt.Errorf("netsim: session cannot Advance(%g) behind current time %g", to, ss.now)
	}
	return ss.latch(ss.loop(to))
}

// Finish runs the session to completion and returns the aggregated report
// (owned by the session unless RunInto supplied storage; valid until the
// simulator's next run or session).
func (ss *Session) Finish() (*Report, error) {
	if err := ss.check(); err != nil {
		return nil, err
	}
	if err := ss.latch(ss.loop(math.Inf(1))); err != nil {
		return nil, err
	}
	ss.finalize(ss.all)
	return ss.rep, nil
}

// Now returns the session's current simulation time.
func (ss *Session) Now() float64 { return ss.now }

// AdmittedCount returns how many coflows have been admitted to the session
// (pending, active, or completed).
func (ss *Session) AdmittedCount() int { return len(ss.all) }

// CompletedCount returns how many admitted coflows have completed so far.
func (ss *Session) CompletedCount() int {
	if ss.rep == nil {
		return 0
	}
	return len(ss.rep.CCTs)
}

// Digest fingerprints the session's deterministic simulation state with
// FNV-1a over the clock and every admitted coflow's flow progress (remaining
// bytes, done flags, completion state). Two sessions that took the same
// admissions and boundary stops digest identically; the service layer uses
// this to prove a snapshot-restored engine resumed byte-identical state.
func (ss *Session) Digest() uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(math.Float64bits(ss.now))
	mix(uint64(len(ss.all)))
	for _, c := range ss.all {
		mix(uint64(c.ID))
		mix(math.Float64bits(c.Arrival))
		if c.Completed {
			mix(1)
			mix(math.Float64bits(c.Completion))
		} else {
			mix(0)
		}
		mix(uint64(len(c.Flows)))
		for _, f := range c.Flows {
			mix(math.Float64bits(f.Remaining))
			if f.Done {
				mix(1)
			} else {
				mix(0)
			}
		}
	}
	return h
}

// Report exposes the session's running report: CCTs of coflows completed so
// far, epoch and byte counters, failure outcomes. Read-only; Makespan and
// the CCT aggregates are only filled by Finish.
func (ss *Session) Report() *Report { return ss.rep }

// BacklogInto writes the per-port remaining bytes of every unfinished flow
// the session knows about — admitted, in flight, or still queued — into the
// caller's slices (len == fabric ports), the in-place equivalent of
// PortBacklog. This is the network state the online co-optimizer feeds to
// placement as the initial-load term v⁰.
func (ss *Session) BacklogInto(egress, ingress []int64) error {
	if !ss.begun {
		return errors.New("netsim: session not started (obtain one from Simulator.Session)")
	}
	if err := ss.err; err != nil {
		return err
	}
	ports := ss.s.fabric.Ports
	if len(egress) != ports || len(ingress) != ports {
		return fmt.Errorf("netsim: backlog slices sized %d/%d, want %d", len(egress), len(ingress), ports)
	}
	for p := 0; p < ports; p++ {
		egress[p], ingress[p] = 0, 0
	}
	for _, c := range ss.all {
		for _, f := range c.Flows {
			if f.Done {
				continue
			}
			r := int64(f.Remaining + 0.5)
			egress[f.Src] += r
			ingress[f.Dst] += r
		}
	}
	return nil
}

// depsDone reports whether every declared predecessor of c has completed.
func (s *Simulator) depsDone(c *coflow.Coflow, completed map[int]bool) bool {
	for _, dep := range s.Deps[c.ID] {
		if !completed[dep] {
			return false
		}
	}
	return true
}

// loop is the event loop: fluid epochs between completions, arrivals,
// capacity events and failure edges, stopping once `now` reaches `stop` (or
// the legacy Simulator.Horizon) or the session drains. It is RunInto's former
// body with the run-local state lifted into the session so it can park and
// resume; the float arithmetic is untouched and stays allocation-free at
// steady state.
func (ss *Session) loop(stop float64) error {
	if ss.sparse {
		return ss.loopSparse(stop)
	}
	s := ss.s
	sc := &s.scratch
	rep := ss.rep
	ports := s.fabric.Ports
	hz := s.Horizon
	completed := sc.completed
	egFac, inFac := sc.egFac[:ports], sc.inFac[:ports]
	egCap, inCap := sc.egCap[:ports], sc.inCap[:ports]
	egUse, inUse := sc.egUse[:ports], sc.inUse[:ports]
	downCnt := sc.downCnt[:ports]
	failEv := sc.failEv
	haveFail := ss.haveFail

	now := ss.now
	pending, active, liveFlows := ss.pending, ss.active, ss.live
	events, nextFail := ss.events, ss.nextFail
	// save parks the loop state back in the session; called (not deferred —
	// a deferred closure would allocate) before every exit.
	save := func() {
		ss.now, ss.pending, ss.active, ss.live = now, pending, active, liveFlows
		ss.events, ss.nextFail = events, nextFail
	}

	for {
		if ss.iter >= s.MaxEpochs {
			save()
			return fmt.Errorf("netsim: exceeded %d epochs (scheduler %q livelock?)", s.MaxEpochs, s.sched.Name())
		}
		ss.iter++
		// Admit arrivals (time reached and dependencies completed) and
		// apply due capacity events. A dependency-gated coflow's Arrival is
		// advanced to its release time so its CCT measures active transfer.
		stillPending := pending[:0]
		for _, c := range pending {
			if c.Arrival <= now+1e-12 && s.depsDone(c, completed) {
				if c.Arrival < now {
					c.Arrival = now
				}
				active = append(active, c)
				liveFlows = append(liveFlows, c.LiveFlows()...)
				if s.Probe != nil {
					s.Probe.CoflowAdmitted(now, c)
				}
				continue
			}
			stillPending = append(stillPending, c)
		}
		pending = stillPending
		for len(events) > 0 && events[0].Time <= now+1e-12 {
			ev := events[0]
			events = events[1:]
			egFac[ev.Port] = ev.EgressFactor
			inFac[ev.Port] = ev.IngressFactor
		}
		// Apply due failure edges. Down edges void progress per the
		// retransmission policy and may re-enter delivered flows into the
		// live set; both edges invalidate capacity-dependent scheduler
		// state (deadline admissions).
		for nextFail < len(failEv) && failEv[nextFail].time <= now+1e-12 {
			tr := failEv[nextFail]
			nextFail++
			if tr.up {
				downCnt[tr.port]--
			} else {
				downCnt[tr.port]++
				liveFlows = s.applyPortDown(tr, now, active, liveFlows, rep)
			}
			if s.Probe != nil {
				s.Probe.FailureEdge(now, tr.port, tr.up)
			}
			if ss.obs != nil {
				ss.obs.CapacityChanged(now)
			}
		}
		// Retire completed coflows (O(1) per coflow via the live-flow cache).
		liveCF := active[:0]
		for _, c := range active {
			if c.Finished() {
				if !c.Completed {
					c.Completed = true
					c.Completion = now
					completed[c.ID] = true
					cct, err := c.CCT()
					if err != nil {
						save()
						return err
					}
					rep.CCTs[c.ID] = cct
					if s.Probe != nil {
						s.Probe.CoflowCompleted(now, c)
					}
				}
				continue
			}
			liveCF = append(liveCF, c)
		}
		active = liveCF

		if hz >= 0 && now >= hz-1e-12 {
			now = hz
			break
		}
		if now >= stop-1e-12 {
			break
		}
		if len(active) == 0 {
			if len(pending) == 0 {
				break
			}
			// Jump to the first eligible (dependency-satisfied) arrival.
			next := math.Inf(1)
			for _, c := range pending {
				if s.depsDone(c, completed) {
					next = c.Arrival
					break // pending stays sorted by arrival
				}
			}
			if math.IsInf(next, 1) {
				save()
				return fmt.Errorf("netsim: %d coflows blocked on dependencies that can never complete (cycle?)", len(pending))
			}
			if hz >= 0 && next >= hz {
				now = hz
				break
			}
			if next > stop {
				break
			}
			// A dependency released mid-run has an arrival in the past;
			// time never rewinds — re-run admission at the current time.
			if next > now {
				now = next
			}
			continue
		}

		// Scheduling epoch.
		rep.Epochs++
		for p := 0; p < ports; p++ {
			egCap[p] = s.fabric.EgressCap[p] * egFac[p]
			inCap[p] = s.fabric.IngressCap[p] * inFac[p]
			egUse[p], inUse[p] = 0, 0
		}
		if haveFail {
			for p, d := range downCnt {
				if d > 0 {
					egCap[p], inCap[p] = 0, 0
				}
			}
		}
		s.sched.Allocate(now, active, egCap, inCap)

		// One fused pass over the flat live-flow list: validate rates,
		// accumulate per-port usage, and find the time to next completion.
		// The flat list holds exactly the non-done flows in (coflow, flow)
		// order, so the float accumulation matches the original nested scan.
		dt := math.Inf(1)
		for _, f := range liveFlows {
			if f.Rate < 0 {
				save()
				return fmt.Errorf("netsim: scheduler %q set negative rate %g on flow %d", s.sched.Name(), f.Rate, f.ID)
			}
			egUse[f.Src] += f.Rate
			inUse[f.Dst] += f.Rate
			if f.Rate > 0 {
				if t := f.Remaining / f.Rate; t < dt {
					dt = t
				}
			}
		}
		// Port capacity check with 0.1% tolerance for float accumulation —
		// keeps every scheduler honest under the property tests.
		const tolAbs = 1e-9
		tol := 1 + 1e-3
		for p := 0; p < ports; p++ {
			egLim := s.fabric.EgressCap[p] * egFac[p] * tol
			inLim := s.fabric.IngressCap[p] * inFac[p] * tol
			if haveFail && downCnt[p] > 0 {
				egLim, inLim = 0, 0
			}
			if egUse[p] > egLim+tolAbs || inUse[p] > inLim+tolAbs {
				save()
				return fmt.Errorf("netsim: scheduler %q oversubscribed port %d (eg=%.3g/%.3g in=%.3g/%.3g)",
					s.sched.Name(), p, egUse[p], egLim, inUse[p], inLim)
			}
		}

		// ... or next eligible arrival or capacity event, whichever first.
		// Dependency-gated coflows release at a completion, which is
		// already a dt boundary, so only dependency-satisfied arrivals
		// bound the step.
		for _, c := range pending {
			if s.depsDone(c, completed) {
				if t := c.Arrival - now; t >= 0 && t < dt {
					dt = t
				}
				break
			}
		}
		if len(events) > 0 {
			if t := events[0].Time - now; t < dt {
				dt = t
			}
		}
		if nextFail < len(failEv) {
			if t := failEv[nextFail].time - now; t < dt {
				dt = t
			}
		}
		if hz >= 0 && now+dt > hz {
			dt = hz - now
		}
		// An Advance stop bounds the epoch exactly the way a pending arrival
		// does (same expression, same comparison), so a session stopping at
		// an arrival takes the very float step the straight-through run —
		// which has that arrival in pending — takes.
		if t := stop - now; t >= 0 && t < dt {
			dt = t
		}
		if math.IsInf(dt, 1) {
			save()
			return fmt.Errorf("%w: %d coflows active under scheduler %q", ErrStalled, len(active), s.sched.Name())
		}
		if s.Probe != nil {
			probeEg, probeIn := sc.probeEg[:ports], sc.probeIn[:ports]
			for p := 0; p < ports; p++ {
				probeEg[p] = s.fabric.EgressCap[p] * egFac[p]
				probeIn[p] = s.fabric.IngressCap[p] * inFac[p]
				if haveFail && downCnt[p] > 0 {
					probeEg[p], probeIn[p] = 0, 0
				}
			}
			s.Probe.EpochSample(now, dt, active, egUse, inUse, probeEg, probeIn)
		}

		// Advance along the flat list; coflows that lost flows are marked
		// dirty (the list is grouped by coflow, so last-element dedup is
		// exact) and compacted in one batched pass afterwards.
		now += dt
		dirty := sc.dirty[:0]
		for _, f := range liveFlows {
			if f.Rate <= 0 {
				continue
			}
			moved := f.Rate * dt
			if moved > f.Remaining {
				moved = f.Remaining
			}
			f.Remaining -= moved
			f.Coflow.SentBytes += moved
			rep.TotalBytes += moved
			if f.Remaining <= completionEps {
				f.Remaining = 0
				f.Done = true
				f.EndTime = now
				if len(dirty) == 0 || dirty[len(dirty)-1] != f.Coflow {
					dirty = append(dirty, f.Coflow)
				}
			}
		}
		sc.dirty = dirty
		if len(dirty) > 0 {
			for _, c := range dirty {
				c.RefreshSim()
			}
			w := 0
			for _, f := range liveFlows {
				if !f.Done {
					liveFlows[w] = f
					w++
				}
			}
			liveFlows = liveFlows[:w]
		}
	}
	save()
	return nil
}

// finalize fills the aggregate report fields from the session's end state:
// makespan, CCT aggregates summed in the given coflow order (input order for
// RunInto, admission order for Finish — deterministic either way), failure
// recovery outcomes, and the probe's EndRun.
func (ss *Session) finalize(coflows []*coflow.Coflow) {
	rep := ss.rep
	rep.Makespan = ss.now
	if ss.released > 0 {
		ss.finalizeReleased()
		return
	}
	var wsum float64
	for _, c := range coflows {
		cct, ok := rep.CCTs[c.ID]
		if !ok {
			continue
		}
		rep.AvgCCT += cct
		w := c.EffectiveWeight()
		rep.WeightedAvgCCT += w * cct
		wsum += w
		if cct > rep.MaxCCT {
			rep.MaxCCT = cct
		}
	}
	if len(rep.CCTs) > 0 {
		rep.AvgCCT /= float64(len(rep.CCTs))
	}
	if wsum > 0 {
		rep.WeightedAvgCCT /= wsum
	}
	if ss.haveFail {
		finalizeFailures(rep, coflows)
	}
	if ss.s.Probe != nil {
		ss.s.Probe.EndRun(ss.now)
	}
	ss.finished = true
}

// finalizeReleased aggregates a session that dropped completed coflows under
// ReleaseCompleted: the coflow objects are gone, so the CCT sums run over
// rep.CCTs in ascending coflow-ID order (deterministic, and equal to the
// input-order sum whenever IDs are assigned in arrival order — the trace
// replay convention) with the weights retained at release time. Failures are
// excluded from released sessions at begin, so no recovery pass runs.
func (ss *Session) finalizeReleased() {
	rep := ss.rep
	ids := make([]int, 0, len(rep.CCTs))
	for id := range rep.CCTs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var wsum float64
	for _, id := range ids {
		cct := rep.CCTs[id]
		rep.AvgCCT += cct
		w, ok := ss.relWeights[id]
		if !ok {
			w = 1
		}
		rep.WeightedAvgCCT += w * cct
		wsum += w
		if cct > rep.MaxCCT {
			rep.MaxCCT = cct
		}
	}
	if len(ids) > 0 {
		rep.AvgCCT /= float64(len(ids))
	}
	if wsum > 0 {
		rep.WeightedAvgCCT /= wsum
	}
	if ss.s.Probe != nil {
		ss.s.Probe.EndRun(ss.now)
	}
	ss.finished = true
}
