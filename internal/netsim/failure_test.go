package netsim

import (
	"errors"
	"math"
	"testing"

	"ccf/internal/coflow"
)

// 1000 bytes at 100 B/s ⇒ fault-free CCT 10. Port 1 fails at t=4 (400 bytes
// in flight), recovers at t=6.
func failureFixture(policy RetransmitPolicy) (*Simulator, []*coflow.Coflow) {
	fab, _ := NewFabric(2, 100)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Failures = []PortFailure{{Port: 1, Down: 4, Up: 6}}
	sim.Retransmit = policy
	return sim, []*coflow.Coflow{mkCoflow(7, 0, [3]float64{0, 1, 1000})}
}

func TestFailureRestartVoidsInFlightProgress(t *testing.T) {
	sim, cfs := failureFixture(RetransmitRestart)
	rep, err := sim.Run(cfs)
	if err != nil {
		t.Fatal(err)
	}
	// 400 bytes voided at t=4; the full 1000 re-sent from t=6 ⇒ done at 16.
	if math.Abs(rep.Makespan-16) > 1e-9 {
		t.Errorf("makespan = %g, want 16", rep.Makespan)
	}
	if math.Abs(rep.WastedBytes-400) > 1e-6 {
		t.Errorf("WastedBytes = %g, want 400", rep.WastedBytes)
	}
	if rep.Restarts[7] != 1 {
		t.Errorf("Restarts[7] = %d, want 1", rep.Restarts[7])
	}
	// Byte conservation: wire bytes = delivered + wasted.
	if math.Abs(rep.TotalBytes-(1000+400)) > 1e-6 {
		t.Errorf("TotalBytes = %g, want 1400", rep.TotalBytes)
	}
	if len(rep.Failures) != 1 {
		t.Fatalf("Failures = %v, want one outcome", rep.Failures)
	}
	out := rep.Failures[0]
	if out.Port != 1 || out.Permanent || out.FlowsHit != 1 {
		t.Errorf("outcome = %+v", out)
	}
	if !out.Recovered || math.Abs(out.TimeToRecovery-12) > 1e-9 {
		t.Errorf("recovery = %v/%g, want true/12", out.Recovered, out.TimeToRecovery)
	}
}

func TestFailureResumeKeepsProgress(t *testing.T) {
	sim, cfs := failureFixture(RetransmitResume)
	rep, err := sim.Run(cfs)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpointed: the flow just waits out the 2 s outage ⇒ done at 12.
	if math.Abs(rep.Makespan-12) > 1e-9 {
		t.Errorf("makespan = %g, want 12", rep.Makespan)
	}
	if rep.WastedBytes != 0 || rep.Restarts != nil {
		t.Errorf("resume wasted %g bytes, restarts %v; want none", rep.WastedBytes, rep.Restarts)
	}
	out := rep.Failures[0]
	if out.FlowsHit != 1 || !out.Recovered || math.Abs(out.TimeToRecovery-8) > 1e-9 {
		t.Errorf("outcome = %+v", out)
	}
}

func TestFailureRestartDeliveredResurrectsFlows(t *testing.T) {
	// Per-flow fair over shared egress 0: 0→1 (1000 B) and 0→2 (200 B) get
	// 50 B/s each, so 0→2 delivers at t=4. Port 2 then fails at t=6 with
	// receiver loss: the delivered 200 bytes void and re-enter the live
	// set. Outage 6→7 freezes everything (fair share stalls on a
	// zero-capacity port); from t=7 fair share resumes: 0→2 re-delivers at
	// t=11, 0→1 finishes its remaining 400 at full rate by t=15.
	fab, _ := NewFabric(3, 100)
	sim := NewSimulator(fab, coflow.PerFlowFair{})
	sim.Failures = []PortFailure{{Port: 2, Down: 6, Up: 7}}
	sim.Retransmit = RetransmitRestartDelivered
	c := mkCoflow(3, 0, [3]float64{0, 1, 1000}, [3]float64{0, 2, 200})
	rep, err := sim.Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Makespan-15) > 1e-9 {
		t.Errorf("makespan = %g, want 15", rep.Makespan)
	}
	if math.Abs(rep.WastedBytes-200) > 1e-6 {
		t.Errorf("WastedBytes = %g, want 200", rep.WastedBytes)
	}
	if rep.Restarts[3] != 1 {
		t.Errorf("Restarts[3] = %d, want 1", rep.Restarts[3])
	}
	if math.Abs(rep.TotalBytes-(1200+200)) > 1e-6 {
		t.Errorf("TotalBytes = %g, want 1400", rep.TotalBytes)
	}
	out := rep.Failures[0]
	if !out.Recovered || math.Abs(out.TimeToRecovery-5) > 1e-9 {
		t.Errorf("outcome = %+v, want recovered with TTR 5", out)
	}
}

func TestPermanentFailureStallsRestartingFlows(t *testing.T) {
	fab, _ := NewFabric(2, 100)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Failures = []PortFailure{{Port: 1, Down: 4}} // Up <= Down: forever
	_, err := sim.Run([]*coflow.Coflow{mkCoflow(0, 0, [3]float64{0, 1, 1000})})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("permanent failure err = %v, want ErrStalled", err)
	}
}

func TestFailureValidation(t *testing.T) {
	fab, _ := NewFabric(2, 100)
	cfs := []*coflow.Coflow{mkCoflow(0, 0, [3]float64{0, 1, 10})}
	for _, pf := range []PortFailure{
		{Port: 5, Down: 1, Up: 2},
		{Port: -1, Down: 1, Up: 2},
		{Port: 0, Down: -3, Up: 2},
	} {
		sim := NewSimulator(fab, coflow.NewVarys())
		sim.Failures = []PortFailure{pf}
		if _, err := sim.Run(cfs); err == nil {
			t.Errorf("failure %+v accepted, want error", pf)
		}
	}
}

func TestFailureTriggersDeadlineReevaluation(t *testing.T) {
	// CCT under exclusive use is 10 s, so deadline 15 admits at t=0. Port 1
	// then dies from t=2 to t=12; re-admission at t=2 sees zero ingress
	// capacity and rejects, and at t=12 only 3 s remain for 800 bytes at
	// 100 B/s — rejected again, served best-effort, deadline missed.
	fab, _ := NewFabric(2, 100)
	d := coflow.NewVarysDeadline()
	sim := NewSimulator(fab, d)
	sim.Failures = []PortFailure{{Port: 1, Down: 2, Up: 12}}
	sim.Retransmit = RetransmitResume
	c := mkCoflow(0, 0, [3]float64{0, 1, 1000})
	c.Deadline = 15
	rep, err := sim.Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if d.Admitted(0) {
		t.Error("coflow still admitted after capacity loss re-evaluation")
	}
	st := coflow.CollectDeadlineStats([]*coflow.Coflow{c}, d)
	if st.Met != 0 || st.Admitted != 0 {
		t.Errorf("deadline stats = %+v, want 0 met / 0 admitted", st)
	}
	// Best-effort completion: waits out the outage, finishes at 20.
	if math.Abs(rep.Makespan-20) > 1e-9 {
		t.Errorf("makespan = %g, want 20", rep.Makespan)
	}

	// Without the failure the same setup admits and meets the deadline.
	d2 := coflow.NewVarysDeadline()
	sim2 := NewSimulator(fab, d2)
	c2 := mkCoflow(0, 0, [3]float64{0, 1, 1000})
	c2.Deadline = 15
	if _, err := sim2.Run([]*coflow.Coflow{c2}); err != nil {
		t.Fatal(err)
	}
	if !d2.Admitted(0) {
		t.Error("fault-free control run did not admit the coflow")
	}
}

func TestFaultedRunLeavesNoStateBehind(t *testing.T) {
	// A simulator that ran with failures (including a permanent one that
	// errors out) must behave identically to a fresh simulator on the next
	// fault-free run — no down-counter or schedule leakage.
	fab, _ := NewFabric(4, 100)
	mk := func() []*coflow.Coflow {
		return []*coflow.Coflow{
			mkCoflow(0, 0, [3]float64{0, 1, 1000}, [3]float64{2, 3, 500}),
			mkCoflow(1, 1, [3]float64{1, 2, 700}),
		}
	}
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Failures = []PortFailure{{Port: 1, Down: 2}}
	if _, err := sim.Run(mk()); !errors.Is(err, ErrStalled) {
		t.Fatalf("permanent-failure run err = %v, want ErrStalled", err)
	}
	sim.Failures = nil
	got, err := sim.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewSimulator(fab, coflow.NewVarys()).Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan || got.AvgCCT != want.AvgCCT ||
		got.TotalBytes != want.TotalBytes || got.Epochs != want.Epochs {
		t.Errorf("post-fault run diverged: got %+v, want %+v", got, want)
	}
	if got.WastedBytes != 0 || len(got.Failures) != 0 {
		t.Errorf("fault-free run reports failure artifacts: %+v", got)
	}
}

func TestOverlappingFailuresCompose(t *testing.T) {
	// Two overlapping outages of the same port: capacity returns only when
	// the later one lifts (t=8), so the 1000-byte flow (restarted) lands
	// at 18.
	fab, _ := NewFabric(2, 100)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Failures = []PortFailure{{Port: 1, Down: 4, Up: 6}, {Port: 1, Down: 5, Up: 8}}
	rep, err := sim.Run([]*coflow.Coflow{mkCoflow(0, 0, [3]float64{0, 1, 1000})})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Makespan-18) > 1e-9 {
		t.Errorf("makespan = %g, want 18", rep.Makespan)
	}
	// Only the first down edge finds progress to void (400 bytes); the
	// second hits an already-reset flow.
	if math.Abs(rep.WastedBytes-400) > 1e-6 {
		t.Errorf("WastedBytes = %g, want 400", rep.WastedBytes)
	}
}
