package netsim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ccf/internal/coflow"
)

func TestCapacityEventDegradesMidFlow(t *testing.T) {
	// 10 bytes at 1 B/s; at t=5 the ingress halves. 5 bytes done by t=5,
	// the remaining 5 at 0.5 B/s take 10 more ⇒ CCT 15.
	c := mkCoflow(0, 0, [3]float64{0, 1, 10})
	fab, _ := NewFabric(2, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Events = []CapacityEvent{{Time: 5, Port: 1, EgressFactor: 1, IngressFactor: 0.5}}
	rep, err := sim.Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.CCTs[0]-15) > 1e-9 {
		t.Errorf("CCT with mid-flow degradation = %g, want 15", rep.CCTs[0])
	}
}

func TestCapacityEventRepair(t *testing.T) {
	// Degrade at t=0 to 0.5, repair at t=5: 2.5 bytes by t=5, remaining
	// 7.5 at full speed ⇒ CCT 12.5.
	c := mkCoflow(0, 0, [3]float64{0, 1, 10})
	fab, _ := NewFabric(2, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Events = []CapacityEvent{
		{Time: 0, Port: 0, EgressFactor: 0.5, IngressFactor: 1},
		{Time: 5, Port: 0, EgressFactor: 1, IngressFactor: 1},
	}
	rep, err := sim.Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.CCTs[0]-12.5) > 1e-9 {
		t.Errorf("CCT with repair = %g, want 12.5", rep.CCTs[0])
	}
}

func TestCapacityEventFullOutageThenRepair(t *testing.T) {
	// Port dead from t=2 to t=7: 2 bytes before, stall 5 s, 8 bytes after
	// ⇒ CCT 15. The stall must not trip the deadlock detector because a
	// repair event is pending.
	c := mkCoflow(0, 0, [3]float64{0, 1, 10})
	fab, _ := NewFabric(2, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Events = []CapacityEvent{
		{Time: 2, Port: 1, EgressFactor: 1, IngressFactor: 0},
		{Time: 7, Port: 1, EgressFactor: 1, IngressFactor: 1},
	}
	rep, err := sim.Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.CCTs[0]-15) > 1e-9 {
		t.Errorf("CCT across outage = %g, want 15", rep.CCTs[0])
	}
}

func TestPermanentOutageStalls(t *testing.T) {
	c := mkCoflow(0, 0, [3]float64{0, 1, 10})
	fab, _ := NewFabric(2, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Events = []CapacityEvent{{Time: 2, Port: 1, EgressFactor: 1, IngressFactor: 0}}
	_, err := sim.Run([]*coflow.Coflow{c})
	if !errors.Is(err, ErrStalled) {
		t.Errorf("permanent outage: err = %v, want ErrStalled", err)
	}
}

func TestCapacityEventFullOutageAtTimeZero(t *testing.T) {
	// The port is dead from the very first instant: nothing moves until
	// the repair at t=3, then 10 bytes at 1 B/s ⇒ CCT 13.
	c := mkCoflow(0, 0, [3]float64{0, 1, 10})
	fab, _ := NewFabric(2, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Events = []CapacityEvent{
		{Time: 0, Port: 1, EgressFactor: 1, IngressFactor: 0},
		{Time: 3, Port: 1, EgressFactor: 1, IngressFactor: 1},
	}
	rep, err := sim.Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.CCTs[0]-13) > 1e-9 {
		t.Errorf("CCT with t=0 outage = %g, want 13", rep.CCTs[0])
	}
}

func TestCapacityEventDuplicateTimestamps(t *testing.T) {
	// Two events at the same instant on the same port: the stable sort
	// keeps input order, so the later entry wins (factor 1 here — the 0.25
	// entry must not survive). A same-time event on another port applies
	// independently.
	c := mkCoflow(0, 0, [3]float64{0, 1, 10})
	fab, _ := NewFabric(2, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Events = []CapacityEvent{
		{Time: 5, Port: 1, EgressFactor: 1, IngressFactor: 0.25},
		{Time: 5, Port: 1, EgressFactor: 1, IngressFactor: 0.5},
		{Time: 5, Port: 0, EgressFactor: 1, IngressFactor: 1},
	}
	rep, err := sim.Run([]*coflow.Coflow{c})
	if err != nil {
		t.Fatal(err)
	}
	// 5 bytes by t=5, then 5 bytes at 0.5 B/s ⇒ CCT 15.
	if math.Abs(rep.CCTs[0]-15) > 1e-9 {
		t.Errorf("CCT with duplicate-time events = %g, want 15", rep.CCTs[0])
	}
}

func TestCapacityEventValidation(t *testing.T) {
	c := mkCoflow(0, 0, [3]float64{0, 1, 10})
	fab, _ := NewFabric(2, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Events = []CapacityEvent{{Time: 0, Port: 9, EgressFactor: 1, IngressFactor: 1}}
	if _, err := sim.Run([]*coflow.Coflow{c}); err == nil {
		t.Error("accepted an event on a non-existent port")
	}
	sim.Events = []CapacityEvent{{Time: 0, Port: 0, EgressFactor: -1, IngressFactor: 1}}
	if _, err := sim.Run([]*coflow.Coflow{c}); err == nil {
		t.Error("accepted a negative factor")
	}
}

func TestCapacityEventsConserveBytes(t *testing.T) {
	// Under arbitrary degradation/repair schedules (never permanently
	// dead), every byte still gets delivered.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		var flows [][3]float64
		var total float64
		for i := 0; i < 1+rng.Intn(6); i++ {
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			size := float64(1 + rng.Intn(200))
			flows = append(flows, [3]float64{float64(src), float64(dst), size})
			total += size
		}
		var events []CapacityEvent
		for e := 0; e < rng.Intn(4); e++ {
			port := rng.Intn(n)
			at := float64(rng.Intn(50))
			events = append(events,
				CapacityEvent{Time: at, Port: port, EgressFactor: 0.25, IngressFactor: 0.25},
				// Guaranteed later repair.
				CapacityEvent{Time: at + float64(1+rng.Intn(20)), Port: port, EgressFactor: 1, IngressFactor: 1},
			)
		}
		fab, _ := NewFabric(n, 1)
		sim := NewSimulator(fab, coflow.NewVarys())
		sim.Events = events
		rep, err := sim.Run([]*coflow.Coflow{mkCoflow(0, 0, flows...)})
		if err != nil {
			return false
		}
		return math.Abs(rep.TotalBytes-total) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEventsDoNotAffectUnrelatedPorts(t *testing.T) {
	// Two disjoint flows; degrading port 3 must not slow the 0→1 flow.
	a := mkCoflow(0, 0, [3]float64{0, 1, 10})
	b := mkCoflow(1, 0, [3]float64{2, 3, 10})
	fab, _ := NewFabric(4, 1)
	sim := NewSimulator(fab, coflow.NewVarys())
	sim.Events = []CapacityEvent{{Time: 0, Port: 3, EgressFactor: 1, IngressFactor: 0.1}}
	rep, err := sim.Run([]*coflow.Coflow{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.CCTs[0]-10) > 1e-9 {
		t.Errorf("unrelated flow CCT = %g, want 10", rep.CCTs[0])
	}
	if math.Abs(rep.CCTs[1]-100) > 1e-9 {
		t.Errorf("degraded flow CCT = %g, want 100", rep.CCTs[1])
	}
}
