// Package partition models the data-placement state of a distributed
// operator: the chunk matrix h_ik (bytes of partition k resident on node i),
// the hash partitioning function used to build it, and the assignment of
// partitions to destination nodes produced by an application-level scheduler.
//
// Terminology follows the paper: an individual partitioned piece of data on
// one node is a chunk; the group of chunks sharing a hash value is a
// partition. A placement (the x_jk decision variables of the CCF model) maps
// every partition to exactly one destination node.
package partition

import (
	"errors"
	"fmt"
)

// ChunkMatrix holds h_ik: the number of bytes of partition k stored on node
// i before redistribution. The matrix is dense and row-major: entry (i, k)
// lives at H[i*P+k]. Sizes are bytes throughout.
type ChunkMatrix struct {
	N int     // number of nodes
	P int     // number of partitions
	H []int64 // len N*P, row-major
}

// NewChunkMatrix allocates an all-zero chunk matrix for n nodes and p
// partitions. Non-positive dimensions are an error, not a panic, so callers
// deriving n or p from external input (traces, query plans, CLI flags) can
// propagate the failure.
func NewChunkMatrix(n, p int) (*ChunkMatrix, error) {
	if n <= 0 || p <= 0 {
		return nil, fmt.Errorf("partition: invalid chunk matrix dimensions n=%d p=%d", n, p)
	}
	return &ChunkMatrix{N: n, P: p, H: make([]int64, n*p)}, nil
}

// MustChunkMatrix is NewChunkMatrix for statically-known dimensions (tests,
// examples, literal matrices); it panics on invalid input.
func MustChunkMatrix(n, p int) *ChunkMatrix {
	m, err := NewChunkMatrix(n, p)
	if err != nil {
		panic(err)
	}
	return m
}

// At returns h_ik, the bytes of partition k on node i.
func (m *ChunkMatrix) At(i, k int) int64 { return m.H[i*m.P+k] }

// Set stores h_ik.
func (m *ChunkMatrix) Set(i, k int, v int64) { m.H[i*m.P+k] = v }

// Add increments h_ik by v.
func (m *ChunkMatrix) Add(i, k int, v int64) { m.H[i*m.P+k] += v }

// Row returns the slice of chunk sizes held by node i (one entry per
// partition). The slice aliases the matrix storage.
func (m *ChunkMatrix) Row(i int) []int64 { return m.H[i*m.P : (i+1)*m.P] }

// PartitionTotals returns, for each partition k, the total bytes of that
// partition across all nodes (Σ_i h_ik).
func (m *ChunkMatrix) PartitionTotals() []int64 {
	tot := make([]int64, m.P)
	for i := 0; i < m.N; i++ {
		row := m.Row(i)
		for k, v := range row {
			tot[k] += v
		}
	}
	return tot
}

// NodeTotals returns, for each node i, the total bytes resident on that node
// (Σ_k h_ik).
func (m *ChunkMatrix) NodeTotals() []int64 {
	tot := make([]int64, m.N)
	for i := 0; i < m.N; i++ {
		var s int64
		for _, v := range m.Row(i) {
			s += v
		}
		tot[i] = s
	}
	return tot
}

// TotalBytes returns Σ_ik h_ik.
func (m *ChunkMatrix) TotalBytes() int64 {
	var s int64
	for _, v := range m.H {
		s += v
	}
	return s
}

// MaxChunk returns, for each partition, the largest single chunk size and
// the node holding it. Ties resolve to the lowest node index, matching the
// deterministic argmax the Mini scheduler uses.
func (m *ChunkMatrix) MaxChunk() (size []int64, node []int) {
	size = make([]int64, m.P)
	node = make([]int, m.P)
	for i := 0; i < m.N; i++ {
		row := m.Row(i)
		for k, v := range row {
			if i == 0 || v > size[k] {
				size[k] = v
				node[k] = i
			}
		}
	}
	return size, node
}

// Clone returns a deep copy of the matrix.
func (m *ChunkMatrix) Clone() *ChunkMatrix {
	c := &ChunkMatrix{N: m.N, P: m.P, H: make([]int64, len(m.H))}
	copy(c.H, m.H)
	return c
}

// Validate checks structural invariants: dimensions match storage and no
// chunk is negative.
func (m *ChunkMatrix) Validate() error {
	if m.N <= 0 || m.P <= 0 {
		return fmt.Errorf("partition: non-positive dimensions n=%d p=%d", m.N, m.P)
	}
	if len(m.H) != m.N*m.P {
		return fmt.Errorf("partition: storage length %d != n*p = %d", len(m.H), m.N*m.P)
	}
	for idx, v := range m.H {
		if v < 0 {
			return fmt.Errorf("partition: negative chunk %d at (%d,%d)", v, idx/m.P, idx%m.P)
		}
	}
	return nil
}

// Placement is the output of an application-level scheduler: Dest[k] is the
// destination node of partition k (the j with x_jk = 1).
type Placement struct {
	Dest []int
}

// NewPlacement allocates a placement for p partitions with every destination
// initialised to -1 (unassigned).
func NewPlacement(p int) *Placement {
	d := make([]int, p)
	for k := range d {
		d[k] = -1
	}
	return &Placement{Dest: d}
}

// ErrUnassigned is returned by Validate when a partition has no destination.
var ErrUnassigned = errors.New("partition: placement leaves a partition unassigned")

// Validate checks that the placement covers all p partitions of an n-node
// system: every destination is in [0, n).
func (pl *Placement) Validate(n, p int) error {
	if len(pl.Dest) != p {
		return fmt.Errorf("partition: placement covers %d partitions, want %d", len(pl.Dest), p)
	}
	for k, d := range pl.Dest {
		if d == -1 {
			return fmt.Errorf("%w: partition %d", ErrUnassigned, k)
		}
		if d < 0 || d >= n {
			return fmt.Errorf("partition: partition %d assigned to invalid node %d (n=%d)", k, d, n)
		}
	}
	return nil
}

// Loads holds the per-port byte loads induced by a placement on the
// non-blocking switch model: Egress[i] is the bytes node i must send to
// remote destinations, Ingress[j] is the bytes node j must receive.
type Loads struct {
	Egress  []int64
	Ingress []int64
}

// Max returns the bottleneck load T = max(max egress, max ingress) — the
// objective of the CCF model (3). For a single coflow under MADD allocation
// the communication time is exactly T divided by the port bandwidth.
func (l *Loads) Max() int64 {
	var m int64
	for _, v := range l.Egress {
		if v > m {
			m = v
		}
	}
	for _, v := range l.Ingress {
		if v > m {
			m = v
		}
	}
	return m
}

// Traffic returns the total bytes crossing the network (Σ egress, which by
// conservation equals Σ ingress).
func (l *Loads) Traffic() int64 {
	var s int64
	for _, v := range l.Egress {
		s += v
	}
	return s
}

// ComputeLoads derives the port loads of a placement over a chunk matrix,
// starting from optional initial volumes (e.g. the broadcast flows the skew
// handler schedules before the main redistribution). initial may be nil.
func ComputeLoads(m *ChunkMatrix, pl *Placement, initial *Loads) (*Loads, error) {
	if err := pl.Validate(m.N, m.P); err != nil {
		return nil, err
	}
	l := &Loads{Egress: make([]int64, m.N), Ingress: make([]int64, m.N)}
	if initial != nil {
		if len(initial.Egress) != m.N || len(initial.Ingress) != m.N {
			return nil, fmt.Errorf("partition: initial loads sized for %d/%d ports, want %d",
				len(initial.Egress), len(initial.Ingress), m.N)
		}
		copy(l.Egress, initial.Egress)
		copy(l.Ingress, initial.Ingress)
	}
	for i := 0; i < m.N; i++ {
		row := m.Row(i)
		for k, v := range row {
			if v == 0 {
				continue
			}
			d := pl.Dest[k]
			if d == i {
				continue // local move, no network cost
			}
			l.Egress[i] += v
			l.Ingress[d] += v
		}
	}
	return l, nil
}

// FlowVolumes materialises the v_ij matrix of the coflow induced by a
// placement: volumes[i*n+j] is the bytes node i sends to node j (i != j).
// Chunks whose destination equals their holder generate no flow.
func FlowVolumes(m *ChunkMatrix, pl *Placement) ([]int64, error) {
	if err := pl.Validate(m.N, m.P); err != nil {
		return nil, err
	}
	vol := make([]int64, m.N*m.N)
	for i := 0; i < m.N; i++ {
		row := m.Row(i)
		for k, v := range row {
			if v == 0 {
				continue
			}
			d := pl.Dest[k]
			if d == i {
				continue
			}
			vol[i*m.N+d] += v
		}
	}
	return vol, nil
}

// Partitioner maps join keys to partitions. The paper uses the simple
// modulus hash f(k) = k mod p throughout; alternative partitioners are
// provided for the tuple-level join engine.
type Partitioner interface {
	// Partition returns the partition index in [0, P()) for a join key.
	Partition(key int64) int
	// P returns the number of partitions.
	P() int
}

// ModPartitioner implements f(key) = key mod p, the paper's hash function.
type ModPartitioner struct{ NumPartitions int }

// Partition implements Partitioner.
func (mp ModPartitioner) Partition(key int64) int {
	v := key % int64(mp.NumPartitions)
	if v < 0 {
		v += int64(mp.NumPartitions)
	}
	return int(v)
}

// P implements Partitioner.
func (mp ModPartitioner) P() int { return mp.NumPartitions }

// FNVPartitioner hashes keys with FNV-1a before the modulus, decoupling
// partition indices from key arithmetic. Used by the tuple-level join engine
// when key distributions are adversarial for the modulus hash.
type FNVPartitioner struct{ NumPartitions int }

// Partition implements Partitioner.
func (fp FNVPartitioner) Partition(key int64) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for b := 0; b < 8; b++ {
		h ^= uint64(byte(key >> (8 * b)))
		h *= prime64
	}
	return int(h % uint64(fp.NumPartitions))
}

// P implements Partitioner.
func (fp FNVPartitioner) P() int { return fp.NumPartitions }
