package partition

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustMatrix(t *testing.T, n, p int, vals ...int64) *ChunkMatrix {
	t.Helper()
	m := MustChunkMatrix(n, p)
	if len(vals) != n*p {
		t.Fatalf("test bug: %d values for %dx%d matrix", len(vals), n, p)
	}
	copy(m.H, vals)
	return m
}

func TestNewChunkMatrixBadDims(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{0, 1}, {1, 0}, {-1, 5}, {5, -1}} {
		if m, err := NewChunkMatrix(tc.n, tc.p); err == nil {
			t.Errorf("NewChunkMatrix(%d,%d) = %v, want error", tc.n, tc.p, m)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustChunkMatrix(%d,%d) did not panic", tc.n, tc.p)
				}
			}()
			MustChunkMatrix(tc.n, tc.p)
		}()
	}
	if m, err := NewChunkMatrix(2, 3); err != nil || m.N != 2 || m.P != 3 || len(m.H) != 6 {
		t.Errorf("NewChunkMatrix(2,3) = %v, %v", m, err)
	}
}

func TestChunkMatrixAccessors(t *testing.T) {
	m := MustChunkMatrix(2, 3)
	m.Set(0, 1, 10)
	m.Add(0, 1, 5)
	m.Set(1, 2, 7)
	if got := m.At(0, 1); got != 15 {
		t.Errorf("At(0,1) = %d, want 15", got)
	}
	if got := m.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %d, want 7", got)
	}
	if got := m.At(1, 0); got != 0 {
		t.Errorf("At(1,0) = %d, want 0", got)
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Errorf("Row(1) = %v, want [0 0 7]", row)
	}
	// Row aliases storage.
	row[0] = 99
	if m.At(1, 0) != 99 {
		t.Error("Row must alias the matrix storage")
	}
}

func TestPartitionAndNodeTotals(t *testing.T) {
	m := mustMatrix(t, 2, 3,
		1, 2, 3,
		4, 5, 6)
	pt := m.PartitionTotals()
	if pt[0] != 5 || pt[1] != 7 || pt[2] != 9 {
		t.Errorf("PartitionTotals = %v, want [5 7 9]", pt)
	}
	nt := m.NodeTotals()
	if nt[0] != 6 || nt[1] != 15 {
		t.Errorf("NodeTotals = %v, want [6 15]", nt)
	}
	if m.TotalBytes() != 21 {
		t.Errorf("TotalBytes = %d, want 21", m.TotalBytes())
	}
}

func TestMaxChunkTiesToLowestNode(t *testing.T) {
	m := mustMatrix(t, 3, 2,
		5, 0,
		5, 9,
		4, 9)
	size, node := m.MaxChunk()
	if size[0] != 5 || node[0] != 0 {
		t.Errorf("partition 0: max = (%d, node %d), want (5, node 0) on tie", size[0], node[0])
	}
	if size[1] != 9 || node[1] != 1 {
		t.Errorf("partition 1: max = (%d, node %d), want (9, node 1) on tie", size[1], node[1])
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := mustMatrix(t, 1, 2, 1, 2)
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with the original")
	}
}

func TestValidateCatchesNegativeChunk(t *testing.T) {
	m := mustMatrix(t, 2, 2, 0, 1, -3, 2)
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted a negative chunk")
	}
	m.Set(1, 0, 3)
	if err := m.Validate(); err != nil {
		t.Errorf("Validate rejected a valid matrix: %v", err)
	}
}

func TestValidateCatchesBadStorage(t *testing.T) {
	m := MustChunkMatrix(2, 2)
	m.H = m.H[:3]
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted truncated storage")
	}
}

func TestPlacementValidate(t *testing.T) {
	pl := NewPlacement(3)
	if err := pl.Validate(2, 3); !errors.Is(err, ErrUnassigned) {
		t.Errorf("unassigned placement: err = %v, want ErrUnassigned", err)
	}
	pl.Dest = []int{0, 1, 2}
	if err := pl.Validate(2, 3); err == nil {
		t.Error("Validate accepted destination outside node range")
	}
	pl.Dest = []int{0, 1, 1}
	if err := pl.Validate(2, 3); err != nil {
		t.Errorf("Validate rejected valid placement: %v", err)
	}
	if err := pl.Validate(2, 4); err == nil {
		t.Error("Validate accepted wrong partition count")
	}
}

func TestComputeLoadsLocalMovesAreFree(t *testing.T) {
	m := mustMatrix(t, 2, 2,
		10, 3,
		0, 7)
	pl := &Placement{Dest: []int{0, 1}}
	l, err := ComputeLoads(m, pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Partition 0 → node 0: node 0's 10 bytes stay local. Partition 1 →
	// node 1: node 0 sends 3, node 1's 7 stay.
	if l.Egress[0] != 3 || l.Egress[1] != 0 {
		t.Errorf("Egress = %v, want [3 0]", l.Egress)
	}
	if l.Ingress[0] != 0 || l.Ingress[1] != 3 {
		t.Errorf("Ingress = %v, want [0 3]", l.Ingress)
	}
	if l.Traffic() != 3 {
		t.Errorf("Traffic = %d, want 3", l.Traffic())
	}
	if l.Max() != 3 {
		t.Errorf("Max = %d, want 3", l.Max())
	}
}

func TestComputeLoadsWithInitial(t *testing.T) {
	m := mustMatrix(t, 2, 1, 4, 0)
	pl := &Placement{Dest: []int{1}}
	init := &Loads{Egress: []int64{1, 0}, Ingress: []int64{0, 2}}
	l, err := ComputeLoads(m, pl, init)
	if err != nil {
		t.Fatal(err)
	}
	if l.Egress[0] != 5 || l.Ingress[1] != 6 {
		t.Errorf("loads with initial = eg %v in %v, want eg[0]=5 in[1]=6", l.Egress, l.Ingress)
	}
	// Initial must not be mutated.
	if init.Egress[0] != 1 || init.Ingress[1] != 2 {
		t.Error("ComputeLoads mutated the initial loads")
	}
}

func TestComputeLoadsRejectsBadInitial(t *testing.T) {
	m := mustMatrix(t, 2, 1, 4, 0)
	pl := &Placement{Dest: []int{1}}
	_, err := ComputeLoads(m, pl, &Loads{Egress: []int64{1}, Ingress: []int64{0, 2}})
	if err == nil {
		t.Error("ComputeLoads accepted mis-sized initial loads")
	}
}

func TestFlowVolumes(t *testing.T) {
	m := mustMatrix(t, 3, 2,
		5, 1,
		0, 2,
		3, 0)
	pl := &Placement{Dest: []int{0, 1}}
	vol, err := FlowVolumes(m, pl)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{
		0, 1, 0, // node 0 sends its partition-1 chunk to node 1
		0, 0, 0, // node 1 keeps partition 1 locally
		3, 0, 0, // node 2 sends partition 0 to node 0
	}
	for i := range want {
		if vol[i] != want[i] {
			t.Fatalf("FlowVolumes = %v, want %v", vol, want)
		}
	}
}

func TestTrafficEqualsFlowVolumeSum(t *testing.T) {
	// Property: ComputeLoads traffic == Σ FlowVolumes for any placement.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		p := 1 + rng.Intn(10)
		m := MustChunkMatrix(n, p)
		for i := range m.H {
			m.H[i] = int64(rng.Intn(100))
		}
		pl := NewPlacement(p)
		for k := range pl.Dest {
			pl.Dest[k] = rng.Intn(n)
		}
		l, err := ComputeLoads(m, pl, nil)
		if err != nil {
			return false
		}
		vol, err := FlowVolumes(m, pl)
		if err != nil {
			return false
		}
		var sum int64
		for _, v := range vol {
			sum += v
		}
		var inSum int64
		for _, v := range l.Ingress {
			inSum += v
		}
		return l.Traffic() == sum && inSum == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEgressIngressConservation(t *testing.T) {
	// Property: Σ egress == Σ ingress == total bytes − locally kept bytes.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		p := 1 + rng.Intn(12)
		m := MustChunkMatrix(n, p)
		for i := range m.H {
			m.H[i] = int64(rng.Intn(50))
		}
		pl := NewPlacement(p)
		var kept int64
		for k := range pl.Dest {
			d := rng.Intn(n)
			pl.Dest[k] = d
			kept += m.At(d, k)
		}
		l, err := ComputeLoads(m, pl, nil)
		if err != nil {
			return false
		}
		var eg, in int64
		for i := 0; i < n; i++ {
			eg += l.Egress[i]
			in += l.Ingress[i]
		}
		return eg == in && eg == m.TotalBytes()-kept
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModPartitioner(t *testing.T) {
	p := ModPartitioner{NumPartitions: 7}
	if p.P() != 7 {
		t.Errorf("P() = %d, want 7", p.P())
	}
	if got := p.Partition(15); got != 1 {
		t.Errorf("Partition(15) = %d, want 1", got)
	}
	if got := p.Partition(-3); got < 0 || got >= 7 {
		t.Errorf("Partition(-3) = %d, must be in [0,7)", got)
	}
	if got := p.Partition(0); got != 0 {
		t.Errorf("Partition(0) = %d, want 0", got)
	}
}

func TestFNVPartitionerRange(t *testing.T) {
	p := FNVPartitioner{NumPartitions: 13}
	if p.P() != 13 {
		t.Errorf("P() = %d, want 13", p.P())
	}
	seen := map[int]bool{}
	for k := int64(-500); k < 500; k++ {
		v := p.Partition(k)
		if v < 0 || v >= 13 {
			t.Fatalf("Partition(%d) = %d outside [0,13)", k, v)
		}
		seen[v] = true
	}
	if len(seen) != 13 {
		t.Errorf("FNV over 1000 keys hit %d/13 partitions; want all", len(seen))
	}
}

func TestFNVPartitionerDeterministic(t *testing.T) {
	p := FNVPartitioner{NumPartitions: 31}
	for k := int64(0); k < 100; k++ {
		if p.Partition(k) != p.Partition(k) {
			t.Fatalf("FNV partitioner not deterministic for key %d", k)
		}
	}
}

func TestLoadsMaxEmpty(t *testing.T) {
	l := &Loads{}
	if l.Max() != 0 || l.Traffic() != 0 {
		t.Error("empty Loads should have zero max and traffic")
	}
}
