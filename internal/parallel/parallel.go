// Package parallel is the bounded worker pool behind every sweep-style loop
// in the repository: the ccfbench figure experiments, the chaos harness, the
// telemetry and recovery comparisons, and the equivalence suites all iterate
// independent (seed, scheduler, x-point) tasks, and this package runs them
// over N workers while keeping the *output* exactly what the serial loop
// produced.
//
// Determinism contract: results are aggregated by input index, never by
// completion order. Run returns out[i] = task(i) in a slice indexed like the
// input, so a caller that folds the slice front-to-back performs the same
// float additions, the same appends, and emits the same table rows and CSV
// lines as the serial loop — regardless of how the OS scheduler interleaved
// the workers. With workers <= 1 no goroutines are spawned at all: the tasks
// run inline, in index order, on the caller's goroutine, which is the
// byte-identical serial escape hatch (`ccfbench -workers 1`).
//
// Tasks must be independent: anything a task mutates must be task-local (or
// per-worker, via RunWithState). The simulator scratch refactor made all
// mutable netsim/coflow state explicit structs, so cloning per worker is
// cheap — RunWithState exists precisely so each worker can keep one warm
// Simulator + coflow clone across the tasks it happens to draw.
package parallel

import (
	"runtime"
	"sync"
)

// Resolve maps a workers knob to an effective worker count: values <= 0
// select runtime.GOMAXPROCS(0) (one worker per available core).
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Run executes task(0..n-1) over at most `workers` concurrent goroutines and
// returns the results indexed by input position. workers <= 0 resolves to
// GOMAXPROCS; workers <= 1 (after resolution the pool is still clamped to n)
// runs serially inline.
//
// Error semantics: the serial path stops at the first failing index, exactly
// like the loop it replaces. The parallel path stops handing out new indices
// once any task fails, lets in-flight tasks finish, and returns the error
// with the *lowest* input index among those that ran — so a failure that is
// deterministic in the input maps to a deterministic error. On error the
// partial results are discarded (nil slice).
func Run[R any](workers, n int, task func(i int) (R, error)) ([]R, error) {
	return RunWithState(workers, n,
		func(int) struct{} { return struct{}{} },
		func(_ struct{}, i int) (R, error) { return task(i) })
}

// ForEach is Run for tasks with no result value.
func ForEach(workers, n int, task func(i int) error) error {
	_, err := Run(workers, n, func(i int) (struct{}, error) { return struct{}{}, task(i) })
	return err
}

// RunWithState is Run with per-worker state: newState(w) is called once for
// each of the workers actually started (w in [0, workers)), and every task a
// worker draws receives that worker's state. This is how sweeps keep one warm
// Simulator and one cloned coflow set per worker instead of reallocating per
// task. On the serial path newState(0) is called once and every task shares
// it — the same aliasing a serial loop with hoisted locals has.
func RunWithState[S, R any](workers, n int, newState func(worker int) S, task func(state S, i int) (R, error)) ([]R, error) {
	out := make([]R, n)
	if n == 0 {
		return out, nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		state := newState(0)
		for i := 0; i < n; i++ {
			r, err := task(state, i)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	var (
		mu     sync.Mutex
		next   int // next unclaimed index
		errIdx = n // lowest failing index so far
		outErr error
		wg     sync.WaitGroup
	)
	// claim hands out indices in order; after a failure it returns -1 so
	// workers drain instead of starting work whose output would be thrown
	// away anyway.
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if outErr != nil || next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if outErr == nil || i < errIdx {
			errIdx, outErr = i, err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := newState(w)
			for {
				i := claim()
				if i < 0 {
					return
				}
				r, err := task(state, i)
				if err != nil {
					fail(i, err)
					continue
				}
				out[i] = r
			}
		}(w)
	}
	wg.Wait()
	if outErr != nil {
		return nil, outErr
	}
	return out, nil
}

// ForShards splits [0, n) into `workers` contiguous ranges and runs
// fn(shard, lo, hi) for each — concurrently when workers > 1, inline (one
// call covering the whole range) otherwise. Shard boundaries are a pure
// function of (workers, n), so a computation that is exact under any split
// (elementwise writes, integer accumulation, max/min reductions) produces
// identical results at every worker count. fn must touch only state that is
// disjoint across shards; the caller owns any merge.
//
// This is the engine of the Tier-2 intra-run parallelism: the port and flow
// ranges of the MADD and water-filling passes are independent within an
// epoch, so they shard here once the fabric crosses the size threshold.
func ForShards(workers, n int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo, hi := s*n/workers, (s+1)*n/workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
}
