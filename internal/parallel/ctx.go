package parallel

// Context-aware variants of the pool. The daemon (internal/service) runs
// sweeps — restoring shards, draining queues, forcing snapshots — under
// per-request deadlines, and a deadline must be able to abort the sweep
// mid-flight: stop handing out new indices, let in-flight tasks observe the
// cancellation through their own ctx, and return once every worker has
// parked. Cancellation never leaks goroutines: the workers are joined before
// the call returns, which the package tests pin with a goroutine count.
//
// The non-ctx entry points (Run/ForEach/RunWithState) are deliberately left
// untouched: they back the byte-identical sweep equivalence suites and take
// zero risk from the deadline machinery.

import (
	"context"
	"sync"
)

// RunCtx is Run with cooperative cancellation: once ctx is done, no new
// indices are handed out and RunCtx returns ctx.Err() after in-flight tasks
// return (each task receives ctx and should abort promptly on its own).
// Error precedence matches Run — a task error at the lowest failing index
// wins over the cancellation error, so deterministic task failures stay
// deterministic under cancellation.
func RunCtx[R any](ctx context.Context, workers, n int, task func(ctx context.Context, i int) (R, error)) ([]R, error) {
	return RunWithStateCtx(ctx, workers, n,
		func(int) struct{} { return struct{}{} },
		func(ctx context.Context, _ struct{}, i int) (R, error) { return task(ctx, i) })
}

// ForEachCtx is RunCtx for tasks with no result value.
func ForEachCtx(ctx context.Context, workers, n int, task func(ctx context.Context, i int) error) error {
	_, err := RunCtx(ctx, workers, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, task(ctx, i)
	})
	return err
}

// RunWithStateCtx is RunWithState with cooperative cancellation (see RunCtx).
// On cancellation or error the partial results are discarded (nil slice).
func RunWithStateCtx[S, R any](ctx context.Context, workers, n int,
	newState func(worker int) S, task func(ctx context.Context, state S, i int) (R, error)) ([]R, error) {
	out := make([]R, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		state := newState(0)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := task(ctx, state, i)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	var (
		mu     sync.Mutex
		next   int // next unclaimed index
		errIdx = n // lowest failing index so far
		outErr error
		wg     sync.WaitGroup
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if outErr != nil || next >= n || ctx.Err() != nil {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if outErr == nil || i < errIdx {
			errIdx, outErr = i, err
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := newState(w)
			for {
				i := claim()
				if i < 0 {
					return
				}
				r, err := task(ctx, state, i)
				if err != nil {
					fail(i, err)
					continue
				}
				out[i] = r
			}
		}(w)
	}
	wg.Wait()
	if outErr != nil {
		return nil, outErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
