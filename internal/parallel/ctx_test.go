package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCtxCompletesWithoutCancellation(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		out, err := RunCtx(context.Background(), workers, 20, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunCtxCancellationReturnsPromptly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		done := make(chan error, 1)
		go func() {
			_, err := RunCtx(ctx, workers, 1000, func(ctx context.Context, i int) (int, error) {
				started.Add(1)
				select {
				case <-ctx.Done():
					return 0, ctx.Err()
				case <-time.After(10 * time.Second):
					return i, nil
				}
			})
			done <- err
		}()
		for started.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("workers=%d: RunCtx did not return after cancellation", workers)
		}
		if n := started.Load(); int(n) > workers+1 {
			t.Errorf("workers=%d: %d tasks started after cancel, want <= %d in flight", workers, n, workers+1)
		}
	}
}

func TestRunCtxLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Millisecond)
			cancel()
		}()
		_, _ = RunCtx(ctx, 8, 500, func(ctx context.Context, i int) (int, error) {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(100 * time.Microsecond):
				return i, nil
			}
		})
		cancel()
	}
	// The workers are joined before RunCtx returns, so the count must settle
	// back to the baseline (allow slack for runtime background goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunCtxTaskErrorBeatsCancellation(t *testing.T) {
	boom := fmt.Errorf("boom at 3")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := RunCtx(ctx, 2, 10, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			cancel() // cancellation and failure race; the task error must win
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want task error %v", err, boom)
	}
}

func TestForEachCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := ForEachCtx(ctx, 4, 100, func(ctx context.Context, i int) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
			return nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("ForEachCtx took %v after a 20ms deadline", elapsed)
	}
}

func TestRunWithStateCtxPerWorkerState(t *testing.T) {
	var states atomic.Int32
	out, err := RunWithStateCtx(context.Background(), 4, 64,
		func(worker int) int { states.Add(1); return worker },
		func(_ context.Context, state, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 64 {
		t.Fatalf("got %d results, want 64", len(out))
	}
	if n := states.Load(); n < 1 || n > 4 {
		t.Fatalf("newState called %d times, want 1..4", n)
	}
}
