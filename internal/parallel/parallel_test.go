package parallel_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccf/internal/parallel"
)

// TestRunAggregatesInInputOrder is the determinism pin for every sweep that
// rides the pool: tasks are given adversarial sleeps (later indices finish
// first by construction), and the output must still be indexed by *input*
// position. A pool that appended results in completion order would reverse
// the slice here.
func TestRunAggregatesInInputOrder(t *testing.T) {
	const n = 16
	for _, workers := range []int{1, 2, 3, 7, 16, 32} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var completions []int
			var mu sync.Mutex
			out, err := parallel.Run(workers, n, func(i int) (int, error) {
				// Earlier indices sleep longer, so completion order is
				// (roughly, and with workers>=n exactly) reversed.
				time.Sleep(time.Duration(n-i) * 2 * time.Millisecond)
				mu.Lock()
				completions = append(completions, i)
				mu.Unlock()
				return i * 10, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*10 {
					t.Fatalf("out[%d] = %d, want %d (completion order %v leaked into aggregation)",
						i, v, i*10, completions)
				}
			}
			if workers >= n {
				// Sanity-check the adversarial schedule actually inverted
				// completion order, so the assertion above has teeth.
				if completions[0] != n-1 {
					t.Logf("note: completion order not fully inverted: %v", completions)
				}
			}
		})
	}
}

// TestRunSerialPathRunsInline pins that workers <= 1 spawns no goroutines:
// every task must run on the caller's goroutine, in index order.
func TestRunSerialPathRunsInline(t *testing.T) {
	var order []int
	_, err := parallel.Run(1, 5, func(i int) (struct{}, error) {
		order = append(order, i) // unsynchronized: safe only if inline
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path ran out of order: %v", order)
		}
	}
}

// TestRunBoundsConcurrency checks the pool never runs more than `workers`
// tasks at once.
func TestRunBoundsConcurrency(t *testing.T) {
	const n, workers = 64, 3
	var cur, peak atomic.Int64
	_, err := parallel.Run(workers, n, func(i int) (struct{}, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, want <= %d", p, workers)
	}
}

// TestRunLowestIndexErrorWins pins the deterministic error rule: among the
// tasks that ran and failed, the lowest input index's error is returned.
func TestRunLowestIndexErrorWins(t *testing.T) {
	errs := make([]error, 8)
	for i := range errs {
		errs[i] = fmt.Errorf("task %d failed", i)
	}
	for _, workers := range []int{1, 2, 8} {
		out, err := parallel.Run(workers, 8, func(i int) (int, error) {
			if i >= 2 { // indices 2..7 all fail; 2 must win
				// Invert completion order so a completion-order pool would
				// report a high index.
				time.Sleep(time.Duration(8-i) * 2 * time.Millisecond)
				return 0, errs[i]
			}
			return i, nil
		})
		if out != nil {
			t.Fatalf("workers=%d: partial results not discarded on error", workers)
		}
		if !errors.Is(err, errs[2]) {
			t.Fatalf("workers=%d: got error %v, want %v", workers, err, errs[2])
		}
	}
}

// TestRunStopsClaimingAfterError checks a failure stops new work: with one
// worker-equivalent serial semantics that is "stop at first error", and the
// parallel pool must not start every remaining task either.
func TestRunStopsClaimingAfterError(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	_, err := parallel.Run(2, 1000, func(i int) (struct{}, error) {
		started.Add(1)
		if i == 0 {
			return struct{}{}, boom
		}
		time.Sleep(time.Millisecond)
		return struct{}{}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if s := started.Load(); s > 100 {
		t.Fatalf("%d tasks started after the first failed; pool did not stop claiming", s)
	}
}

// TestRunWithStatePerWorker checks each worker gets exactly one state and
// every task sees its own worker's state (the per-worker scratch contract).
func TestRunWithStatePerWorker(t *testing.T) {
	const n, workers = 40, 4
	var created atomic.Int64
	type state struct{ worker int }
	out, err := parallel.RunWithState(workers, n,
		func(w int) *state {
			created.Add(1)
			return &state{worker: w}
		},
		func(s *state, i int) (int, error) {
			if s == nil {
				return 0, errors.New("nil state")
			}
			return s.worker, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if c := created.Load(); c > workers || c < 1 {
		t.Fatalf("newState called %d times, want 1..%d", c, workers)
	}
	for i, w := range out {
		if w < 0 || w >= workers {
			t.Fatalf("task %d saw worker id %d outside [0,%d)", i, w, workers)
		}
	}
}

func TestResolve(t *testing.T) {
	if got := parallel.Resolve(3); got != 3 {
		t.Fatalf("Resolve(3) = %d", got)
	}
	if got := parallel.Resolve(0); got < 1 {
		t.Fatalf("Resolve(0) = %d, want >= 1", got)
	}
	if got := parallel.Resolve(-5); got != parallel.Resolve(0) {
		t.Fatalf("Resolve(-5) = %d, want GOMAXPROCS", got)
	}
}

// TestForShardsCoversExactly checks every index lands in exactly one shard,
// shards are contiguous, and boundaries are deterministic in (workers, n).
func TestForShardsCoversExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 16, 1000} {
			hits := make([]atomic.Int64, n)
			parallel.ForShards(workers, n, func(shard, lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad shard [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if h := hits[i].Load(); h != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestForShardsInlineWhenSerial pins that workers<=1 calls fn once, inline,
// covering the full range — the zero-goroutine serial path.
func TestForShardsInlineWhenSerial(t *testing.T) {
	calls := 0
	parallel.ForShards(1, 100, func(shard, lo, hi int) {
		calls++
		if shard != 0 || lo != 0 || hi != 100 {
			t.Fatalf("inline shard = (%d,%d,%d), want (0,0,100)", shard, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1", calls)
	}
}
