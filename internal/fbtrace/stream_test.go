package fbtrace

import (
	"math"
	"testing"
)

// TestStreamMatchesGenerate pins the streaming contract: at density 1 the
// stream yields the exact coflow sequence Generate builds — same arrivals,
// names, flow endpoints and sizes, bit for bit — across seeds and shapes.
func TestStreamMatchesGenerate(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		cfg := Config{
			Machines:            4 + int(seed%13),
			Coflows:             30 + int(seed*7),
			MeanInterarrivalSec: 0.25 + float64(seed)*0.5,
			Seed:                seed,
		}
		want, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Density = 1
		st, err := Stream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Total() != len(want) {
			t.Fatalf("seed %d: Total() = %d, want %d", seed, st.Total(), len(want))
		}
		for i, w := range want {
			if got := st.Remaining(); got != len(want)-i {
				t.Fatalf("seed %d: Remaining() = %d at %d, want %d", seed, got, i, len(want)-i)
			}
			c, ok := st.Next()
			if !ok {
				t.Fatalf("seed %d: stream exhausted at %d of %d", seed, i, len(want))
			}
			if c.ID != w.ID || c.Name != w.Name || c.Arrival != w.Arrival || len(c.Flows) != len(w.Flows) {
				t.Fatalf("seed %d: coflow %d mismatch: (%d,%q,%v,%d) != (%d,%q,%v,%d)",
					seed, i, c.ID, c.Name, c.Arrival, len(c.Flows), w.ID, w.Name, w.Arrival, len(w.Flows))
			}
			for j := range w.Flows {
				gf, wf := c.Flows[j], w.Flows[j]
				if gf.ID != wf.ID || gf.Src != wf.Src || gf.Dst != wf.Dst || gf.Size != wf.Size {
					t.Fatalf("seed %d: coflow %d flow %d: (%d,%d→%d,%g) != (%d,%d→%d,%g)",
						seed, i, j, gf.ID, gf.Src, gf.Dst, gf.Size, wf.ID, wf.Src, wf.Dst, wf.Size)
				}
			}
		}
		if c, ok := st.Next(); ok {
			t.Fatalf("seed %d: stream over-produced coflow %d", seed, c.ID)
		}
		if _, ok := st.Next(); ok {
			t.Fatalf("seed %d: exhausted stream yielded again", seed)
		}
	}
}

// TestStreamDensity pins the scaling semantics: Density d yields
// round(Coflows·d) coflows with interarrivals compressed by d, preserving
// strict arrival ordering and the per-coflow validity invariants.
func TestStreamDensity(t *testing.T) {
	base := Config{Machines: 10, Coflows: 40, MeanInterarrivalSec: 1, Seed: 3}
	for _, density := range []float64{0.5, 1, 10, 100} {
		cfg := base
		cfg.Density = density
		st, err := Stream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := int(math.Round(40 * density))
		if st.Total() != want {
			t.Fatalf("density %g: Total() = %d, want %d", density, st.Total(), want)
		}
		prev := -1.0
		n := 0
		var last float64
		for {
			c, ok := st.Next()
			if !ok {
				break
			}
			n++
			if c.Arrival <= prev {
				t.Fatalf("density %g: arrivals not strictly increasing", density)
			}
			prev = c.Arrival
			last = c.Arrival
			if len(c.Flows) == 0 {
				t.Fatalf("density %g: empty coflow", density)
			}
		}
		if n != want {
			t.Fatalf("density %g: yielded %d coflows, want %d", density, n, want)
		}
		// Higher density ⟹ arrivals compress: the span per coflow shrinks
		// like 1/d in expectation. Just sanity-check the ×100 case is far
		// denser than ×1 would be.
		if density == 100 && last/float64(n) > base.MeanInterarrivalSec {
			t.Errorf("density 100: mean spacing %g did not compress", last/float64(n))
		}
	}
}

func TestStreamValidation(t *testing.T) {
	good := Config{Machines: 4, Coflows: 10}
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"one machine", func(c *Config) { c.Machines = 1 }},
		{"zero coflows", func(c *Config) { c.Coflows = 0 }},
		{"negative density", func(c *Config) { c.Density = -1 }},
		{"NaN density", func(c *Config) { c.Density = math.NaN() }},
		{"infinite density", func(c *Config) { c.Density = math.Inf(1) }},
		{"density thins to zero", func(c *Config) { c.Density = 1e-9 }},
		{"bad mix", func(c *Config) { c.Mix = Mix{SN: 0.9, LN: 0.9} }},
	} {
		cfg := good
		tc.mutate(&cfg)
		if _, err := Stream(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		if _, err := Generate(cfg); err == nil {
			t.Errorf("%s: Generate accepted", tc.name)
		}
	}
	if _, err := Stream(good); err != nil {
		t.Errorf("baseline rejected: %v", err)
	}
}
