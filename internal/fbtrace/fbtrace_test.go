package fbtrace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/trace"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Machines: 1, Coflows: 5}); err == nil {
		t.Error("accepted 1 machine")
	}
	if _, err := Generate(Config{Machines: 4, Coflows: 0}); err == nil {
		t.Error("accepted 0 coflows")
	}
	if _, err := Generate(Config{Machines: 4, Coflows: 5, Mix: Mix{SN: 0.9, LN: 0.9}}); err == nil {
		t.Error("accepted a mix not summing to 1")
	}
}

func TestGenerateShape(t *testing.T) {
	cfs, err := Generate(Config{Machines: 100, Coflows: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfs) != 500 {
		t.Fatalf("generated %d coflows, want 500", len(cfs))
	}
	counts := map[Category]int{}
	var bytesByCat = map[Category]float64{}
	prevArrival := -1.0
	for _, c := range cfs {
		if c.Arrival <= prevArrival {
			t.Fatal("arrivals not strictly increasing")
		}
		prevArrival = c.Arrival
		if len(c.Flows) == 0 {
			t.Fatal("empty coflow generated")
		}
		for _, f := range c.Flows {
			if f.Size <= 0 {
				t.Fatalf("non-positive flow size %g", f.Size)
			}
			if f.Src == f.Dst {
				t.Fatal("self-loop generated")
			}
			if f.Src < 0 || f.Src >= 100 || f.Dst < 0 || f.Dst >= 100 {
				t.Fatal("flow endpoint outside fabric")
			}
		}
		cat := Classify(c)
		counts[cat]++
		bytesByCat[cat] += c.TotalBytes()
	}
	// The count distribution should roughly follow the mix.
	if frac := float64(counts[SN]) / 500; frac < 0.35 || frac > 0.70 {
		t.Errorf("SN fraction = %g, want ≈ 0.52", frac)
	}
	// The byte distribution must be dominated by the long/wide tail.
	total := 0.0
	for _, b := range bytesByCat {
		total += b
	}
	if tail := (bytesByCat[LW] + bytesByCat[LN] + bytesByCat[SW]) / total; tail < 0.8 {
		t.Errorf("long/wide coflows carry %g of bytes, want the heavy tail (> 0.8)", tail)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Machines: 20, Coflows: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Machines: 20, Coflows: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || len(a[i].Flows) != len(b[i].Flows) {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestClassifyThresholds(t *testing.T) {
	mk := func(width int, sizeMB float64) *coflow.Coflow {
		var flows []coflow.Flow
		for i := 0; i < width; i++ {
			flows = append(flows, coflow.Flow{ID: i, Src: 0, Dst: 1 + i%3, Size: sizeMB * 1e6})
		}
		return coflow.New(0, "c", 0, flows)
	}
	cases := []struct {
		width  int
		sizeMB float64
		want   Category
	}{
		{10, 1, SN},
		{10, 100, LN},
		{60, 1, SW},
		{60, 100, LW},
	}
	for _, tc := range cases {
		if got := Classify(mk(tc.width, tc.sizeMB)); got != tc.want {
			t.Errorf("Classify(width=%d, %gMB) = %v, want %v", tc.width, tc.sizeMB, got, tc.want)
		}
	}
	if SN.String() != "SN" || LW.String() != "LW" || Category(9).String() == "" {
		t.Error("Category.String broken")
	}
}

func TestParetoBounds(t *testing.T) {
	g := &gen{state: 3}
	for i := 0; i < 10_000; i++ {
		v := g.pareto(1, 100, 1.1)
		if v < 1-1e-9 || v > 100+1e-9 {
			t.Fatalf("pareto variate %g outside [1,100]", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	g := &gen{state: 11}
	sum := 0.0
	const n = 50_000
	for i := 0; i < n; i++ {
		sum += g.exp(2.5)
	}
	if mean := sum / n; math.Abs(mean-2.5) > 0.1 {
		t.Errorf("exponential mean = %g, want ≈ 2.5", mean)
	}
}

func TestWorkloadIsSimulable(t *testing.T) {
	cfs, err := Generate(Config{Machines: 12, Coflows: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, c := range cfs {
		total += c.TotalBytes()
	}
	fab, err := netsim.NewFabric(12, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := netsim.NewSimulator(fab, coflow.NewAalo()).Run(cfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CCTs) != 40 {
		t.Fatalf("completed %d coflows, want 40", len(rep.CCTs))
	}
	if math.Abs(rep.TotalBytes-total)/total > 1e-6 {
		t.Errorf("moved %g bytes, generated %g", rep.TotalBytes, total)
	}
}

func TestToTraceRoundTrip(t *testing.T) {
	cfs, err := Generate(Config{Machines: 8, Coflows: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tr := ToTrace(8, cfs)
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Byte totals survive the format conversion.
	var want float64
	for _, c := range cfs {
		want += c.TotalBytes()
	}
	var got float64
	for _, c := range parsed.Coflows() {
		got += c.TotalBytes()
	}
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("trace round trip: %g bytes, want %g", got, want)
	}
}

func TestSEBFBehaviourOnFBWorkload(t *testing.T) {
	// The classic coflow-scheduling trade-offs on the FB-like mix:
	// (1) SEBF slashes the CCT of short-narrow coflows relative to
	//     per-flow fairness (its SRPT-like preference), and
	// (2) SEBF beats FIFO on overall average CCT (no head-of-line
	//     blocking behind giant coflows).
	run := func(s coflow.Scheduler) (snAvg, overall float64) {
		cfs, err := Generate(Config{Machines: 16, Coflows: 60, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		fab, err := netsim.NewFabric(16, 0)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := netsim.NewSimulator(fab, s).Run(cfs)
		if err != nil {
			t.Fatal(err)
		}
		var snSum float64
		snCount := 0
		for _, c := range cfs {
			if Classify(c) == SN {
				snSum += rep.CCTs[c.ID]
				snCount++
			}
		}
		if snCount == 0 {
			t.Fatal("no short-narrow coflows in the sample")
		}
		return snSum / float64(snCount), rep.AvgCCT
	}
	sebfSN, sebfAll := run(coflow.NewVarys())
	fairSN, _ := run(coflow.PerFlowFair{})
	_, fifoAll := run(coflow.NewFIFO())
	if sebfSN >= fairSN {
		t.Errorf("SEBF short-narrow avg CCT %g !< per-flow fair %g", sebfSN, fairSN)
	}
	if sebfAll >= fifoAll {
		t.Errorf("SEBF overall avg CCT %g !< FIFO %g", sebfAll, fifoAll)
	}
}

func TestGeneratePropertyAlwaysValid(t *testing.T) {
	f := func(seed uint64, m, c uint8) bool {
		machines := 2 + int(m%30)
		count := 1 + int(c%40)
		cfs, err := Generate(Config{Machines: machines, Coflows: count, Seed: seed})
		if err != nil {
			return false
		}
		if len(cfs) != count {
			return false
		}
		for _, cf := range cfs {
			for _, fl := range cf.Flows {
				if fl.Src == fl.Dst || fl.Size <= 0 ||
					fl.Src < 0 || fl.Src >= machines || fl.Dst < 0 || fl.Dst >= machines {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
