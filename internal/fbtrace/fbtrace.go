// Package fbtrace synthesises coflow workloads with the statistical shape of
// the Facebook MapReduce trace that Varys and Aalo (and therefore CoflowSim)
// evaluate on: coflows fall into four categories by length (size of the
// longest flow) and width (number of flows),
//
//	SN — short & narrow     LN — long & narrow
//	SW — short & wide       LW — long & wide
//
// with most coflows short/narrow but most *bytes* carried by the long/wide
// tail, Poisson arrivals, and heavy-tailed flow sizes. The generated
// workloads exercise the online coflow schedulers; trace.Write can persist
// them in CoflowSim's format.
package fbtrace

import (
	"fmt"
	"math"

	"ccf/internal/coflow"
	"ccf/internal/trace"
)

// Defaults follow the Varys §7 characterisation: ≈ 60% of coflows are
// narrow and short, but > 90% of bytes come from the wide/long minority.
const (
	// ShortFlowMB bounds a "short" coflow's largest flow.
	ShortFlowMB = 5.0
	// NarrowWidth bounds a "narrow" coflow's flow count.
	NarrowWidth = 50
)

// Mix sets the category probabilities; they must sum to ≈ 1.
type Mix struct {
	SN, LN, SW, LW float64
}

// DefaultMix mirrors the Facebook trace's coflow-count distribution
// (Varys Table 1: 52% SN, 16% LN, 15% SW, 17% LW).
func DefaultMix() Mix { return Mix{SN: 0.52, LN: 0.16, SW: 0.15, LW: 0.17} }

// Config parameterises a synthetic trace.
type Config struct {
	Machines int // fabric width; mapper/reducer locations in [0, Machines)
	Coflows  int
	// MeanInterarrivalSec spaces Poisson arrivals; 0 = 1 second.
	MeanInterarrivalSec float64
	Mix                 Mix // zero value = DefaultMix
	Seed                uint64
	// Density scales the trace: the coflow count is multiplied by it and the
	// mean interarrival divided by it, replaying the same statistical shape
	// at Density× load. 0 means 1 (the unscaled trace); values in (0, 1)
	// thin the trace. At Density 1 the generated sequence is byte-identical
	// to a Config without the field.
	Density float64
}

// gen is the same xorshift64* generator the other packages use.
type gen struct{ state uint64 }

// scramble whitens a user seed (splitmix64 step) so that adjacent seeds
// yield unrelated streams and zero is valid.
func scramble(seed uint64) uint64 {
	x := seed + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	return x
}

func (g *gen) next() uint64 {
	x := g.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	g.state = x
	return x * 0x2545F4914F6CDD1D
}

func (g *gen) float() float64 { return float64(g.next()>>11) / float64(1<<53) }

func (g *gen) intn(n int) int { return int(g.next() % uint64(n)) }

// exp draws an exponential variate with the given mean.
func (g *gen) exp(mean float64) float64 {
	u := g.float()
	for u == 0 {
		u = g.float()
	}
	return -mean * math.Log(u)
}

// pareto draws a bounded Pareto variate in [lo, hi] with shape alpha —
// the heavy tail of flow sizes.
func (g *gen) pareto(lo, hi, alpha float64) float64 {
	u := g.float()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Category of a generated coflow.
type Category int

// Categories.
const (
	SN Category = iota
	LN
	SW
	LW
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case SN:
		return "SN"
	case LN:
		return "LN"
	case SW:
		return "SW"
	case LW:
		return "LW"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Classify buckets a coflow by the Varys length/width thresholds.
func Classify(c *coflow.Coflow) Category {
	var longest float64
	for _, f := range c.Flows {
		if f.Size > longest {
			longest = f.Size
		}
	}
	short := longest <= ShortFlowMB*1e6
	narrow := len(c.Flows) <= NarrowWidth
	switch {
	case short && narrow:
		return SN
	case narrow:
		return LN
	case short:
		return SW
	default:
		return LW
	}
}

// Generate builds the synthetic workload by draining a Stream, so the two
// paths draw the identical RNG sequence by construction: Generate(cfg) and
// collecting Stream(cfg) yield the same coflows in the same order.
func Generate(cfg Config) ([]*coflow.Coflow, error) {
	st, err := Stream(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]*coflow.Coflow, 0, st.Total())
	for {
		c, ok := st.Next()
		if !ok {
			return out, nil
		}
		out = append(out, c)
	}
}

// Streamer yields the synthetic workload one coflow at a time, in arrival
// order, holding O(1) state between calls: at 1000× density the trace never
// materialises as a slice. Created by Stream.
type Streamer struct {
	machines int
	mean     float64
	mix      Mix
	g        gen
	now      float64
	id       int
	total    int
}

// Stream validates cfg and returns a Streamer over the scaled trace. At
// Density d the stream carries round(Coflows·d) coflows with mean
// interarrival MeanInterarrivalSec/d; at d = 1 the sequence is exactly
// Generate's.
func Stream(cfg Config) (*Streamer, error) {
	if cfg.Machines < 2 {
		return nil, fmt.Errorf("fbtrace: need at least 2 machines, got %d", cfg.Machines)
	}
	if cfg.Coflows <= 0 {
		return nil, fmt.Errorf("fbtrace: need a positive coflow count, got %d", cfg.Coflows)
	}
	if cfg.MeanInterarrivalSec <= 0 {
		cfg.MeanInterarrivalSec = 1
	}
	density := cfg.Density
	if density == 0 {
		density = 1
	}
	if density < 0 || math.IsNaN(density) || math.IsInf(density, 0) {
		return nil, fmt.Errorf("fbtrace: density must be positive and finite, got %g", cfg.Density)
	}
	total := int(math.Round(float64(cfg.Coflows) * density))
	if total <= 0 {
		return nil, fmt.Errorf("fbtrace: density %g thins %d coflows to zero", density, cfg.Coflows)
	}
	mix := cfg.Mix
	if mix.SN+mix.LN+mix.SW+mix.LW == 0 {
		mix = DefaultMix()
	}
	if s := mix.SN + mix.LN + mix.SW + mix.LW; math.Abs(s-1) > 0.01 {
		return nil, fmt.Errorf("fbtrace: mix sums to %g, want 1", s)
	}
	return &Streamer{
		machines: cfg.Machines,
		mean:     cfg.MeanInterarrivalSec / density,
		mix:      mix,
		g:        gen{state: scramble(cfg.Seed)},
		total:    total,
	}, nil
}

// Total returns the number of coflows the stream will yield in all.
func (st *Streamer) Total() int { return st.total }

// Remaining returns the number of coflows not yet yielded.
func (st *Streamer) Remaining() int { return st.total - st.id }

// Next yields the next coflow in arrival order, or (nil, false) when the
// stream is exhausted.
func (st *Streamer) Next() (*coflow.Coflow, bool) {
	if st.id >= st.total {
		return nil, false
	}
	st.now += st.g.exp(st.mean)
	u := st.g.float()
	var cat Category
	switch {
	case u < st.mix.SN:
		cat = SN
	case u < st.mix.SN+st.mix.LN:
		cat = LN
	case u < st.mix.SN+st.mix.LN+st.mix.SW:
		cat = SW
	default:
		cat = LW
	}
	c := genCoflow(&st.g, st.id, st.now, cat, st.machines)
	st.id++
	return c, true
}

// genCoflow draws a single coflow of the given category.
func genCoflow(g *gen, id int, arrival float64, cat Category, machines int) *coflow.Coflow {
	maxWidth := machines * (machines - 1)
	width := 0
	var loMB, hiMB float64
	switch cat {
	case SN, LN:
		width = 1 + g.intn(min(NarrowWidth, maxWidth))
	case SW, LW:
		lo := NarrowWidth + 1
		if lo > maxWidth {
			lo = maxWidth
		}
		width = lo + g.intn(maxWidth-lo+1)
	}
	switch cat {
	case SN, SW:
		loMB, hiMB = 0.1, ShortFlowMB
	case LN, LW:
		loMB, hiMB = ShortFlowMB, 1000
	}
	var flows []coflow.Flow
	for f := 0; f < width; f++ {
		src := g.intn(machines)
		dst := (src + 1 + g.intn(machines-1)) % machines
		sz := g.pareto(loMB, hiMB, 1.1) * 1e6
		flows = append(flows, coflow.Flow{ID: f, Src: src, Dst: dst, Size: sz})
	}
	return coflow.New(id, fmt.Sprintf("%s-%d", cat, id), arrival, flows)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ToTrace converts generated coflows into a CoflowSim benchmark trace: each
// flow becomes a single-mapper reducer entry of its own job... coflows map
// 1:1 to jobs with per-source mapper lists and per-destination megabyte
// sums (the format cannot express per-flow pairs exactly when a job has
// several mappers, so each coflow is split into one job per source).
func ToTrace(machines int, coflows []*coflow.Coflow) *trace.Trace {
	tr := &trace.Trace{NumRacks: machines}
	id := 0
	for _, c := range coflows {
		perSrc := make(map[int]map[int]float64)
		for _, f := range c.Flows {
			if perSrc[f.Src] == nil {
				perSrc[f.Src] = make(map[int]float64)
			}
			perSrc[f.Src][f.Dst] += f.Size / 1e6
		}
		for src := 0; src < machines; src++ {
			red, ok := perSrc[src]
			if !ok {
				continue
			}
			tr.Jobs = append(tr.Jobs, trace.Job{
				ID:            id,
				ArrivalMillis: int64(c.Arrival * 1000),
				Mappers:       []int{src},
				ReducerMB:     red,
			})
			id++
		}
	}
	return tr
}
