package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccf/internal/partition"
	"ccf/internal/placement"
)

func smallRelations(t *testing.T, customers, perCust int64, skew float64, seed uint64) (*Relation, *Relation) {
	t.Helper()
	c, o := GenerateRelations(GenConfig{
		Customers: customers, OrdersPerCust: perCust, PayloadBytes: 100,
		SkewFrac: skew, Seed: seed,
	})
	return c, o
}

func TestGenerateRelationsShape(t *testing.T) {
	c, o := smallRelations(t, 100, 10, 0, 1)
	if len(c.Tuples) != 100 || len(o.Tuples) != 1000 {
		t.Fatalf("relation sizes %d/%d, want 100/1000", len(c.Tuples), len(o.Tuples))
	}
	// Customer keys are unique 1..100.
	seen := map[int64]bool{}
	for _, tp := range c.Tuples {
		if tp.Key < 1 || tp.Key > 100 || seen[tp.Key] {
			t.Fatalf("bad customer key %d", tp.Key)
		}
		seen[tp.Key] = true
	}
	// Every order references an existing customer.
	for _, tp := range o.Tuples {
		if tp.Key < 1 || tp.Key > 100 {
			t.Fatalf("order key %d outside customer range", tp.Key)
		}
	}
	if c.Bytes() != 100*100 {
		t.Errorf("customer bytes = %d, want 10000", c.Bytes())
	}
}

func TestGenerateRelationsSkew(t *testing.T) {
	_, o := smallRelations(t, 100, 100, 0.3, 2)
	freq := o.KeyFreq()
	frac := float64(freq[1]) / float64(len(o.Tuples))
	if frac < 0.25 || frac > 0.40 {
		t.Errorf("hot key fraction = %g, want ≈ 0.30 (skew + uniform hits)", frac)
	}
}

func TestReferenceJoinCount(t *testing.T) {
	l := &Relation{Tuples: []Tuple{{Key: 1}, {Key: 1}, {Key: 2}}}
	r := &Relation{Tuples: []Tuple{{Key: 1}, {Key: 2}, {Key: 2}, {Key: 3}}}
	// key 1: 2×1, key 2: 1×2 ⇒ 4.
	if got := Reference(l, r); got != 4 {
		t.Errorf("Reference = %d, want 4", got)
	}
}

func TestClusterChunkMatrix(t *testing.T) {
	part := partition.ModPartitioner{NumPartitions: 4}
	c := NewCluster(2, part)
	c.Left[0] = []Tuple{{Key: 1, Payload: 10}, {Key: 5, Payload: 10}} // both partition 1
	c.Right[1] = []Tuple{{Key: 2, Payload: 20}}                       // partition 2
	m, err := c.ChunkMatrix()
	if err != nil {
		t.Fatalf("ChunkMatrix: %v", err)
	}
	if m.At(0, 1) != 20 {
		t.Errorf("h[0][1] = %d, want 20", m.At(0, 1))
	}
	if m.At(1, 2) != 20 {
		t.Errorf("h[1][2] = %d, want 20", m.At(1, 2))
	}
	if m.TotalBytes() != 40 {
		t.Errorf("total = %d, want 40", m.TotalBytes())
	}
}

func TestLoadRoundRobin(t *testing.T) {
	part := partition.ModPartitioner{NumPartitions: 3}
	c := NewCluster(3, part)
	r := &Relation{Tuples: make([]Tuple, 10)}
	c.LoadRoundRobin(true, r)
	if len(c.Left[0]) != 4 || len(c.Left[1]) != 3 || len(c.Left[2]) != 3 {
		t.Errorf("round robin split %d/%d/%d, want 4/3/3", len(c.Left[0]), len(c.Left[1]), len(c.Left[2]))
	}
}

func executeOn(t *testing.T, n int, pmult int, custs, perCust int64, skewFrac float64, opts Options, seed uint64) (*Result, int64) {
	t.Helper()
	cust, ords := GenerateRelations(GenConfig{
		Customers: custs, OrdersPerCust: perCust, PayloadBytes: 100,
		SkewFrac: skewFrac, Seed: seed,
	})
	want := Reference(cust, ords)
	part := partition.ModPartitioner{NumPartitions: n * pmult}
	cl := NewCluster(n, part)
	cl.LoadByPlacement(true, cust, ZipfPlacer(n, 0.8, seed+1))
	cl.LoadByPlacement(false, ords, ZipfPlacer(n, 0.8, seed+2))
	res, err := Execute(cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, want
}

func TestExecuteCardinalityAllSchedulers(t *testing.T) {
	for _, s := range []placement.Scheduler{
		placement.Hash{}, placement.Mini{}, placement.CCF{},
		placement.LPT{}, placement.Random{Seed: 3},
	} {
		res, want := executeOn(t, 4, 5, 50, 10, 0, Options{Scheduler: s}, 10)
		if res.OutputTuples != want {
			t.Errorf("%s: output = %d, want %d", s.Name(), res.OutputTuples, want)
		}
		if res.CommTime <= 0 {
			t.Errorf("%s: no communication time simulated", s.Name())
		}
	}
}

func TestExecuteCardinalityWithSkewHandling(t *testing.T) {
	for _, s := range []placement.Scheduler{placement.Mini{}, placement.CCF{}} {
		res, want := executeOn(t, 4, 5, 50, 20, 0.3, Options{Scheduler: s, SkewThreshold: 0.1}, 20)
		if res.OutputTuples != want {
			t.Errorf("%s with skew handling: output = %d, want %d", s.Name(), res.OutputTuples, want)
		}
		if len(res.SkewedKeys) == 0 {
			t.Errorf("%s: no skewed keys detected at 30%% skew", s.Name())
		}
		for _, k := range res.SkewedKeys {
			if k != 1 {
				t.Errorf("%s: unexpected skewed key %d", s.Name(), k)
			}
		}
	}
}

func TestSkewHandlingReducesBottleneck(t *testing.T) {
	with, want := executeOn(t, 4, 5, 50, 40, 0.4, Options{Scheduler: placement.CCF{}, SkewThreshold: 0.1}, 30)
	without, want2 := executeOn(t, 4, 5, 50, 40, 0.4, Options{Scheduler: placement.CCF{}}, 30)
	if want != want2 {
		t.Fatal("test bug: different reference cardinalities")
	}
	if with.OutputTuples != want || without.OutputTuples != want {
		t.Fatalf("cardinality broken: with=%d without=%d want=%d", with.OutputTuples, without.OutputTuples, want)
	}
	if with.BottleneckBytes >= without.BottleneckBytes {
		t.Errorf("skew handling did not reduce bottleneck: %d >= %d", with.BottleneckBytes, without.BottleneckBytes)
	}
}

func TestExecuteRequiresScheduler(t *testing.T) {
	cl := NewCluster(2, partition.ModPartitioner{NumPartitions: 2})
	if _, err := Execute(cl, Options{}); err == nil {
		t.Error("Execute accepted nil scheduler")
	}
}

func TestExecuteEmptyCluster(t *testing.T) {
	cl := NewCluster(3, partition.ModPartitioner{NumPartitions: 6})
	res, err := Execute(cl, Options{Scheduler: placement.CCF{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputTuples != 0 || res.TrafficBytes != 0 || res.CommTime != 0 {
		t.Errorf("empty cluster produced %+v", res)
	}
}

func TestExecuteCardinalityProperty(t *testing.T) {
	// Distributed join == reference join for random relations, schedulers,
	// skew settings, and cluster sizes.
	scheds := []placement.Scheduler{placement.Hash{}, placement.Mini{}, placement.CCF{}}
	f := func(seed uint64, schedIdx, skewPct uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 + rng.Intn(4)
		cust, ords := GenerateRelations(GenConfig{
			Customers: 20 + int64(rng.Intn(50)), OrdersPerCust: 5 + int64(rng.Intn(10)),
			PayloadBytes: 10, SkewFrac: float64(skewPct%40) / 100, Seed: seed,
		})
		part := partition.ModPartitioner{NumPartitions: n * (1 + rng.Intn(10))}
		cl := NewCluster(n, part)
		cl.LoadRoundRobin(true, cust)
		cl.LoadByPlacement(false, ords, ZipfPlacer(n, rng.Float64(), seed+9))
		opts := Options{Scheduler: scheds[int(schedIdx)%len(scheds)]}
		if skewPct%2 == 0 {
			opts.SkewThreshold = 0.08
		}
		res, err := Execute(cl, opts)
		if err != nil {
			return false
		}
		return res.OutputTuples == Reference(cust, ords)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestZipfPlacerBiasAndRange(t *testing.T) {
	pl := ZipfPlacer(10, 1.2, 5)
	counts := make([]int, 10)
	for i := 0; i < 20_000; i++ {
		d := pl(i, Tuple{})
		if d < 0 || d >= 10 {
			t.Fatalf("placer returned node %d", d)
		}
		counts[d]++
	}
	if counts[0] <= counts[5] || counts[0] <= counts[9] {
		t.Errorf("zipf placer not biased to node 0: %v", counts)
	}
}

func TestGenDeterminism(t *testing.T) {
	a := NewGen(9)
	b := NewGen(9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Gen not deterministic")
		}
	}
	if NewGen(0).Uint64() == 0 {
		t.Error("zero seed must be remapped, not produce the zero orbit")
	}
}

func TestKeyZipfProducesHeavyHitters(t *testing.T) {
	_, o := GenerateRelations(GenConfig{
		Customers: 1000, OrdersPerCust: 50, PayloadBytes: 10, KeyZipf: 1.2, Seed: 5,
	})
	freq := o.KeyFreq()
	total := int64(len(o.Tuples))
	// Rank-1 key must dominate and several keys should exceed 1%.
	var heavy int
	var top int64
	for _, c := range freq {
		if c > top {
			top = c
		}
		if float64(c)/float64(total) > 0.01 {
			heavy++
		}
	}
	if float64(top)/float64(total) < 0.05 {
		t.Errorf("top key carries %.3f of orders; zipf 1.2 should exceed 5%%", float64(top)/float64(total))
	}
	if heavy < 3 {
		t.Errorf("only %d keys above 1%%; zipf should produce multiple heavy hitters", heavy)
	}
	// Keys stay within the customer range.
	for k := range freq {
		if k < 1 || k > 1000 {
			t.Fatalf("order key %d outside customers", k)
		}
	}
}

func TestMultiHeavyKeySkewHandling(t *testing.T) {
	// Zipf keys create several heavy hitters; partial duplication must
	// keep every detected one local and preserve the join cardinality.
	cust, ords := GenerateRelations(GenConfig{
		Customers: 200, OrdersPerCust: 50, PayloadBytes: 10, KeyZipf: 1.3, Seed: 7,
	})
	want := Reference(cust, ords)
	cl := NewCluster(5, partition.ModPartitioner{NumPartitions: 50})
	cl.LoadByPlacement(true, cust, ZipfPlacer(5, 0.8, 8))
	cl.LoadByPlacement(false, ords, ZipfPlacer(5, 0.8, 9))
	res, err := Execute(cl, Options{Scheduler: placement.CCF{}, SkewThreshold: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputTuples != want {
		t.Errorf("multi-heavy-key join output = %d, want %d", res.OutputTuples, want)
	}
	if len(res.SkewedKeys) < 2 {
		t.Errorf("detected %d heavy keys (%v); zipf 1.3 at 2%% threshold should find several",
			len(res.SkewedKeys), res.SkewedKeys)
	}
	// Against the skew-oblivious run, the bottleneck must shrink.
	cl2 := NewCluster(5, partition.ModPartitioner{NumPartitions: 50})
	cl2.LoadByPlacement(true, cust, ZipfPlacer(5, 0.8, 8))
	cl2.LoadByPlacement(false, ords, ZipfPlacer(5, 0.8, 9))
	plain, err := Execute(cl2, Options{Scheduler: placement.CCF{}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.OutputTuples != want {
		t.Fatalf("skew-oblivious cardinality broken: %d != %d", plain.OutputTuples, want)
	}
	if res.BottleneckBytes >= plain.BottleneckBytes {
		t.Errorf("multi-key partial duplication did not reduce bottleneck: %d >= %d",
			res.BottleneckBytes, plain.BottleneckBytes)
	}
}
