// Package join is the tuple-level distributed join engine: it materialises
// actual relations, hash-partitions them across a cluster, redistributes the
// partitions according to an application-level placement, measures the
// shuffle on the simulated fabric, and executes the local hash joins in
// parallel — the full execution path of the paper's Figure 3 at a scale a
// test machine can hold in memory.
//
// The figure-scale experiments never materialise tuples (they work on the
// chunk matrix directly); this engine exists to prove end-to-end correctness:
// every placement scheduler and the skew handler must produce exactly the
// output cardinality of a single-node reference join.
package join

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/partition"
	"ccf/internal/placement"
)

// Tuple is one row: the join key plus a payload width in bytes (payload
// contents are irrelevant to redistribution and cardinality, so the engine
// carries sizes, not buffers — the simulator only needs volumes).
type Tuple struct {
	Key     int64
	Payload int64
}

// Relation is a named bag of tuples.
type Relation struct {
	Name   string
	Tuples []Tuple
}

// Bytes returns the relation's total size.
func (r *Relation) Bytes() int64 {
	var s int64
	for _, t := range r.Tuples {
		s += t.Payload
	}
	return s
}

// KeyFreq returns key → multiplicity.
func (r *Relation) KeyFreq() map[int64]int64 {
	f := make(map[int64]int64, len(r.Tuples))
	for _, t := range r.Tuples {
		f[t.Key]++
	}
	return f
}

// Cluster holds the pre-shuffle state: each node's fragments of both input
// relations.
type Cluster struct {
	N     int
	Part  partition.Partitioner
	Left  [][]Tuple // Left[i] = node i's customer-side tuples
	Right [][]Tuple // Right[i] = node i's orders-side tuples
}

// NewCluster creates an empty cluster of n nodes partitioned by part.
func NewCluster(n int, part partition.Partitioner) *Cluster {
	return &Cluster{N: n, Part: part, Left: make([][]Tuple, n), Right: make([][]Tuple, n)}
}

// LoadRoundRobin distributes a relation's tuples over nodes round-robin
// (the loader of a shared-nothing system that ingests without locality).
func (c *Cluster) LoadRoundRobin(left bool, r *Relation) {
	for i, t := range r.Tuples {
		node := i % c.N
		if left {
			c.Left[node] = append(c.Left[node], t)
		} else {
			c.Right[node] = append(c.Right[node], t)
		}
	}
}

// LoadByPlacement places each tuple on the node given by place(tupleIndex),
// letting tests construct arbitrary localities (e.g. zipf-aligned ones).
func (c *Cluster) LoadByPlacement(left bool, r *Relation, place func(i int, t Tuple) int) {
	for i, t := range r.Tuples {
		node := place(i, t)
		if left {
			c.Left[node] = append(c.Left[node], t)
		} else {
			c.Right[node] = append(c.Right[node], t)
		}
	}
}

// ChunkMatrix derives h_ik (bytes per node per partition, both relations
// combined) from the cluster's current state.
func (c *Cluster) ChunkMatrix() (*partition.ChunkMatrix, error) {
	m, err := partition.NewChunkMatrix(c.N, c.Part.P())
	if err != nil {
		return nil, err
	}
	for i := 0; i < c.N; i++ {
		for _, t := range c.Left[i] {
			m.Add(i, c.Part.Partition(t.Key), t.Payload)
		}
		for _, t := range c.Right[i] {
			m.Add(i, c.Part.Partition(t.Key), t.Payload)
		}
	}
	return m, nil
}

// Options configures a distributed join execution.
type Options struct {
	// Scheduler decides partition destinations. Required.
	Scheduler placement.Scheduler
	// Bandwidth is the per-port bandwidth (bytes/sec); 0 = CoflowSim default.
	Bandwidth float64
	// SkewThreshold enables partial duplication for keys whose right-side
	// (large relation) frequency fraction exceeds it; 0 disables.
	SkewThreshold float64
	// Workers bounds local-join parallelism; 0 = GOMAXPROCS.
	Workers int
}

// Result reports one distributed join execution.
type Result struct {
	// OutputTuples is the join cardinality (must equal the reference join).
	OutputTuples int64
	// TrafficBytes moved across the network (shuffle + broadcast).
	TrafficBytes int64
	// CommTime is the shuffle coflow's completion time in seconds as
	// simulated on the fabric.
	CommTime float64
	// BottleneckBytes is the max port load (CommTime × bandwidth).
	BottleneckBytes int64
	// SkewedKeys lists the keys partial duplication kept local.
	SkewedKeys []int64
	// Placement is the partition→node assignment used.
	Placement *partition.Placement
}

// Reference computes the join cardinality on a single node via frequency
// multiplication: |L ⋈ R| = Σ_k freqL(k) · freqR(k).
func Reference(left, right *Relation) int64 {
	lf := left.KeyFreq()
	var out int64
	for _, t := range right.Tuples {
		out += lf[t.Key]
	}
	return out
}

// Execute runs the full distributed pipeline on a loaded cluster:
//
//  1. optional skew detection on the right relation + partial duplication,
//  2. application-level placement over the (adjusted) chunk matrix,
//  3. shuffle as one coflow on the simulated fabric (MADD rates),
//  4. parallel local hash joins,
//
// and returns cardinality plus network metrics.
func Execute(c *Cluster, opts Options) (*Result, error) {
	if opts.Scheduler == nil {
		return nil, fmt.Errorf("join: Options.Scheduler is required")
	}
	n := c.N
	p := c.Part.P()
	res := &Result{}

	// --- Skew detection (exact counting over the large relation). ---
	skewed := map[int64]bool{}
	if opts.SkewThreshold > 0 {
		freq := make(map[int64]int64)
		var total int64
		for i := 0; i < n; i++ {
			for _, t := range c.Right[i] {
				freq[t.Key]++
				total++
			}
		}
		for k, cnt := range freq {
			if total > 0 && float64(cnt)/float64(total) > opts.SkewThreshold {
				skewed[k] = true
			}
		}
		for k := range skewed {
			res.SkewedKeys = append(res.SkewedKeys, k)
		}
		sort.Slice(res.SkewedKeys, func(a, b int) bool { return res.SkewedKeys[a] < res.SkewedKeys[b] })
	}

	// --- Build the adjusted chunk matrix and broadcast volumes. ---
	m, err := partition.NewChunkMatrix(n, p)
	if err != nil {
		return nil, err
	}
	initial := &partition.Loads{Egress: make([]int64, n), Ingress: make([]int64, n)}
	broadcast := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for _, t := range c.Left[i] {
			if skewed[t.Key] {
				// Small-relation hot tuples broadcast to every other node.
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					broadcast[i*n+j] += t.Payload
					initial.Egress[i] += t.Payload
					initial.Ingress[j] += t.Payload
				}
				continue
			}
			m.Add(i, c.Part.Partition(t.Key), t.Payload)
		}
		for _, t := range c.Right[i] {
			if skewed[t.Key] {
				continue // stays local, never shuffled
			}
			m.Add(i, c.Part.Partition(t.Key), t.Payload)
		}
	}

	// --- Application-level placement. ---
	pl, err := opts.Scheduler.Place(m, initial)
	if err != nil {
		return nil, fmt.Errorf("join: placement failed: %w", err)
	}
	if err := pl.Validate(n, p); err != nil {
		return nil, err
	}
	res.Placement = pl

	// --- Network simulation of the shuffle coflow. ---
	vol, err := partition.FlowVolumes(m, pl)
	if err != nil {
		return nil, err
	}
	for idx, b := range broadcast {
		vol[idx] += b
	}
	cf, err := coflow.FromVolumes(0, "shuffle", 0, n, vol)
	if err != nil {
		return nil, err
	}
	fabric, err := netsim.NewFabric(n, opts.Bandwidth)
	if err != nil {
		return nil, err
	}
	if len(cf.Flows) > 0 {
		sim := netsim.NewSimulator(fabric, coflow.NewVarys())
		rep, err := sim.Run([]*coflow.Coflow{cf})
		if err != nil {
			return nil, fmt.Errorf("join: shuffle simulation: %w", err)
		}
		res.CommTime = rep.MaxCCT
		res.TrafficBytes = int64(rep.TotalBytes + 0.5)
	}
	loads, err := partition.ComputeLoads(m, pl, initial)
	if err != nil {
		return nil, err
	}
	res.BottleneckBytes = loads.Max()

	// --- Logical data movement. ---
	type nodeData struct {
		left, right []Tuple // post-shuffle tuples per node
	}
	nodes := make([]nodeData, n)
	for i := 0; i < n; i++ {
		for _, t := range c.Left[i] {
			if skewed[t.Key] {
				// Broadcast: visible on every node, paired with the local
				// skewed right tuples only (each right tuple joins once,
				// on its home node).
				continue
			}
			d := pl.Dest[c.Part.Partition(t.Key)]
			nodes[d].left = append(nodes[d].left, t)
		}
		for _, t := range c.Right[i] {
			if skewed[t.Key] {
				nodes[i].right = append(nodes[i].right, t) // stays home
				continue
			}
			d := pl.Dest[c.Part.Partition(t.Key)]
			nodes[d].right = append(nodes[d].right, t)
		}
	}
	// Hot left tuples (collected once, replicated logically everywhere).
	var hotLeft []Tuple
	for i := 0; i < n; i++ {
		for _, t := range c.Left[i] {
			if skewed[t.Key] {
				hotLeft = append(hotLeft, t)
			}
		}
	}

	// --- Parallel local joins. ---
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		out  int64
		work = make(chan int)
	)
	hotFreq := make(map[int64]int64, len(hotLeft))
	for _, t := range hotLeft {
		hotFreq[t.Key]++
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local int64
			for i := range work {
				local += localHashJoin(nodes[i].left, nodes[i].right, hotFreq, skewed)
			}
			mu.Lock()
			out += local
			mu.Unlock()
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	res.OutputTuples = out
	return res, nil
}

// localHashJoin counts matches of right tuples against (a) the node's own
// left fragment and (b) the broadcast hot-key frequencies for skewed keys.
func localHashJoin(left, right []Tuple, hotFreq map[int64]int64, skewed map[int64]bool) int64 {
	build := make(map[int64]int64, len(left))
	for _, t := range left {
		build[t.Key]++
	}
	var out int64
	for _, t := range right {
		if skewed[t.Key] {
			out += hotFreq[t.Key]
			continue
		}
		out += build[t.Key]
	}
	return out
}
