package join

// Tuple-level workload generators mirroring the paper's TPC-H setup at
// arbitrary (usually reduced) scale: CUSTOMER with unique custkeys,
// ORDERS referencing them uniformly, optional skew re-keying a fraction of
// ORDERS to the hot key, and zipf-biased home-node assignment so the chunk
// matrix the engine derives matches the chunk-level generator's shape.

import (
	"math"
)

// Gen is a small deterministic PRNG (xorshift64*) so relation generation is
// reproducible without math/rand's global state.
type Gen struct{ state uint64 }

// NewGen seeds a generator; seed 0 is remapped to a fixed constant.
func NewGen(seed uint64) *Gen {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Gen{state: seed}
}

// Uint64 steps the generator.
func (g *Gen) Uint64() uint64 {
	x := g.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	g.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform int in [0, n).
func (g *Gen) Intn(n int) int { return int(g.Uint64() % uint64(n)) }

// Float64 returns a uniform float in [0, 1).
func (g *Gen) Float64() float64 { return float64(g.Uint64()>>11) / float64(1<<53) }

// GenConfig parameterises relation generation.
type GenConfig struct {
	Customers     int64   // |CUSTOMER|; keys 1..Customers
	OrdersPerCust int64   // |ORDERS| = Customers × OrdersPerCust (TPC-H ≈ 10)
	PayloadBytes  int64   // per-tuple payload (paper: 1000)
	SkewFrac      float64 // fraction of ORDERS re-keyed to key 1
	// KeyZipf, when positive, draws ORDERS custkeys from a Zipf(KeyZipf)
	// popularity distribution over the customers instead of uniformly —
	// the natural generalization of the paper's single-hot-key skew, where
	// several heavy hitters emerge and partial duplication must handle all
	// of them. Composable with SkewFrac.
	KeyZipf float64
	Seed    uint64
}

// GenerateRelations materialises CUSTOMER and ORDERS per the paper's recipe.
func GenerateRelations(cfg GenConfig) (customer, orders *Relation) {
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 1000
	}
	g := NewGen(cfg.Seed)
	customer = &Relation{Name: "CUSTOMER", Tuples: make([]Tuple, cfg.Customers)}
	for i := int64(0); i < cfg.Customers; i++ {
		customer.Tuples[i] = Tuple{Key: i + 1, Payload: cfg.PayloadBytes}
	}
	var drawKey func() int64
	if cfg.KeyZipf > 0 {
		drawKey = zipfKeyDrawer(g, cfg.Customers, cfg.KeyZipf)
	} else {
		drawKey = func() int64 { return int64(g.Intn(int(cfg.Customers))) + 1 }
	}
	nOrders := cfg.Customers * cfg.OrdersPerCust
	orders = &Relation{Name: "ORDERS", Tuples: make([]Tuple, nOrders)}
	for i := int64(0); i < nOrders; i++ {
		key := drawKey()
		if cfg.SkewFrac > 0 && g.Float64() < cfg.SkewFrac {
			key = 1
		}
		orders.Tuples[i] = Tuple{Key: key, Payload: cfg.PayloadBytes}
	}
	return customer, orders
}

// zipfKeyDrawer samples keys 1..n with popularity ∝ rank^−theta via
// inversion on the cumulative weights (O(log n) per draw).
func zipfKeyDrawer(g *Gen, n int64, theta float64) func() int64 {
	// For very large key spaces, bucket the tail: exact weights for the
	// first 4096 ranks, a single uniform tail beyond (the tail carries
	// little mass for theta ≥ ~0.5 and heavy hitters are what matter).
	head := n
	const maxHead = 4096
	if head > maxHead {
		head = maxHead
	}
	cum := make([]float64, head)
	var z float64
	for r := int64(0); r < head; r++ {
		z += math.Pow(float64(r+1), -theta)
	}
	tailMass := 0.0
	if n > head {
		// Integral approximation of the tail Σ_{r=head+1..n} r^−θ.
		if theta == 1 {
			tailMass = math.Log(float64(n)/float64(head)) / z
		} else {
			tailMass = (math.Pow(float64(n), 1-theta) - math.Pow(float64(head), 1-theta)) / ((1 - theta) * z)
		}
		if tailMass < 0 {
			tailMass = 0
		}
		z *= 1 + tailMass
	}
	acc := 0.0
	for r := int64(0); r < head; r++ {
		acc += math.Pow(float64(r+1), -theta) / z
		cum[r] = acc
	}
	return func() int64 {
		u := g.Float64()
		if u >= acc && n > head {
			// Uniform over the tail ranks.
			return head + 1 + int64(g.Intn(int(n-head)))
		}
		lo, hi := int64(0), head-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo + 1
	}
}

// ZipfPlacer returns a placement function assigning tuples to home nodes
// with Zipf(theta) popularity over node ranks (node 0 most popular),
// reproducing the chunk-level generator's rank-aligned locality at tuple
// granularity. The returned closure is deterministic per seed.
func ZipfPlacer(n int, theta float64, seed uint64) func(i int, t Tuple) int {
	w := make([]float64, n)
	var z float64
	for r := 0; r < n; r++ {
		w[r] = math.Pow(float64(r+1), -theta)
		z += w[r]
	}
	cum := make([]float64, n)
	acc := 0.0
	for r := 0; r < n; r++ {
		acc += w[r] / z
		cum[r] = acc
	}
	g := NewGen(seed)
	return func(int, Tuple) int {
		u := g.Float64()
		// Binary search the cumulative weights.
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
}
