// Package telemetry is the observability layer of the simulator: a
// netsim.Probe implementation that records (a) per-port utilization time
// series downsampled into a bounded ring, (b) per-coflow lifecycle events
// (arrival, first byte, preemption, failure hits, restarts, completion),
// and (c) a scheduler decision audit (priority-order snapshots captured via
// the optional coflow.Auditable interface).
//
// The recordings export as a Chrome trace-event file (loadable in Perfetto
// or chrome://tracing — one counter track per port, one duration track per
// coflow) and as JSONL metric lines, and reduce to derived summary metrics:
// peak/mean port utilization, per-coflow stretch (CCT over the coflow's
// isolated bandwidth-model lower bound), Jain's fairness index over CCTs,
// and queueing delay (first byte minus arrival).
//
// Overhead contract: telemetry is strictly opt-in. With Simulator.Probe nil
// the event loop takes one nil-check per hook site and nothing else — the
// disabled path stays bit-identical to internal/refsim and at 0 allocs/op
// (pinned by tests). With a Recorder attached, observation is read-only and
// never perturbs results (also pinned: enabled and disabled runs produce
// byte-identical reports); memory is bounded by the configured ring and
// event caps, with overflow counted, never silent.
package telemetry

import (
	"math"

	"ccf/internal/coflow"
)

// Config sizes a Recorder. The zero value is usable: every field has a
// sensible default applied by NewRecorder.
type Config struct {
	// Resolution is the target width, in simulated seconds, of one port
	// utilization sample. Zero (the default) records one sample per
	// scheduling epoch. In both modes the ring stays bounded: when it
	// fills, adjacent samples are merged pairwise (halving the effective
	// resolution), so the series always spans the whole run.
	Resolution float64
	// MaxSamples bounds the utilization ring (default 2048).
	MaxSamples int
	// MaxEvents bounds the lifecycle event log (default 65536). Overflow
	// increments Summary.TruncatedEvents instead of growing further.
	MaxEvents int
	// MaxAudits bounds the scheduler decision audit (default 4096).
	MaxAudits int
	// AuditDepth is how many leading coflow IDs one audit snapshot keeps
	// (default 8). Snapshots are recorded only when the visible prefix of
	// the priority order changes, not every epoch.
	AuditDepth int
}

func (c Config) withDefaults() Config {
	if c.MaxSamples <= 0 {
		c.MaxSamples = 2048
	}
	if c.MaxSamples < 2 {
		c.MaxSamples = 2 // pair-merge needs at least two slots
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 1 << 16
	}
	if c.MaxAudits <= 0 {
		c.MaxAudits = 4096
	}
	if c.AuditDepth <= 0 {
		c.AuditDepth = 8
	}
	return c
}

// EventKind labels one coflow lifecycle event.
type EventKind uint8

const (
	// EvArrival: the coflow entered the active set.
	EvArrival EventKind = iota
	// EvFirstByte: the coflow first received a positive aggregate rate.
	EvFirstByte
	// EvPreempt: the coflow's aggregate rate dropped to zero while it was
	// still incomplete — the scheduler (or an outage) starved it.
	EvPreempt
	// EvResume: a previously preempted coflow received rate again.
	EvResume
	// EvFailureHit: a failure's down edge touched one of the coflow's
	// flows without voiding progress (RetransmitResume, or no progress).
	EvFailureHit
	// EvRestart: a failure voided one flow's progress; it re-sends from
	// byte zero.
	EvRestart
	// EvComplete: the coflow's last flow finished.
	EvComplete
)

// String names the kind for exports.
func (k EventKind) String() string {
	switch k {
	case EvArrival:
		return "arrival"
	case EvFirstByte:
		return "first-byte"
	case EvPreempt:
		return "preempt"
	case EvResume:
		return "resume"
	case EvFailureHit:
		return "failure-hit"
	case EvRestart:
		return "restart"
	case EvComplete:
		return "complete"
	}
	return "unknown"
}

// Event is one coflow lifecycle event.
type Event struct {
	T      float64
	Coflow int
	Kind   EventKind
}

// PortEvent is one failure edge on a port track.
type PortEvent struct {
	T    float64
	Port int
	Up   bool
}

// AuditSnap is one scheduler decision snapshot: the leading AuditDepth
// coflow IDs of the priority order at time T. A snapshot is recorded only
// when this prefix differs from the previous one.
type AuditSnap struct {
	T     float64
	Order []int
}

// UtilSample is one window of the per-port utilization series. The stored
// values are time-integrals over the window, so pairs of samples merge
// exactly when the ring downsamples.
type UtilSample struct {
	Start, Dur float64
	// egRate/inRate integrate the allocated per-port rate (bytes), and
	// egCap/inCap the effective per-port capacity (bytes), over the window.
	egRate, inRate []float64
	egCap, inCap   []float64
}

// EgressUtil returns the mean egress utilization of port p over the window,
// in [0,1] (0 when the port had no capacity, e.g. during an outage).
func (s *UtilSample) EgressUtil(p int) float64 {
	if s.egCap[p] <= 0 {
		return 0
	}
	return s.egRate[p] / s.egCap[p]
}

// IngressUtil is the ingress counterpart of EgressUtil.
func (s *UtilSample) IngressUtil(p int) float64 {
	if s.inCap[p] <= 0 {
		return 0
	}
	return s.inRate[p] / s.inCap[p]
}

// coflowTrack accumulates one coflow's lifecycle across the run.
type coflowTrack struct {
	id         int
	name       string
	arrival    float64 // admission time (dependency release included)
	firstByte  float64 // -1 until the first positive rate
	completion float64 // -1 until complete
	bytes      float64 // Σ flow sizes
	lower      float64 // isolated bandwidth-model CCT lower bound
	restarts   int
	preempts   int
	active     bool // had positive aggregate rate last epoch
	everActive bool
	admitted   bool
}

// Recorder implements netsim.Probe (asserted in the tests, which own the
// netsim dependency) and accumulates the telemetry of one run. A Recorder
// is single-run state: Begin/EndRun reset it, so reusing one across
// sequential runs records the last run. Not safe for concurrent use.
type Recorder struct {
	cfg   Config
	ports int
	res   float64 // current sample width (doubles on ring overflow)

	samples []UtilSample
	cur     *UtilSample // open accumulation window (grid mode)

	events     []Event
	portEvents []PortEvent
	audits     []AuditSnap
	aud        coflow.Auditable
	lastOrder  []int

	tracks  map[int]*coflowTrack
	ordered []*coflowTrack // input order, for deterministic export

	end          float64
	ran          bool
	truncEvents  int
	truncAudits  int
	epochs       int
	auditScratch []int
}

// NewRecorder builds a Recorder with the given configuration.
func NewRecorder(cfg Config) *Recorder {
	return &Recorder{cfg: cfg.withDefaults()}
}

// BeginRun implements netsim.Probe: resets all state and precomputes each
// coflow's isolated bandwidth-model lower bound from the configured
// capacities (max over ports of the coflow's bytes through the port divided
// by the port's capacity).
func (r *Recorder) BeginRun(ports int, egCap, inCap []float64, coflows []*coflow.Coflow, sched coflow.Scheduler) {
	r.ports = ports
	r.res = r.cfg.Resolution
	r.samples = r.samples[:0]
	r.cur = nil
	r.events = r.events[:0]
	r.portEvents = r.portEvents[:0]
	r.audits = r.audits[:0]
	r.lastOrder = r.lastOrder[:0]
	r.end = 0
	r.ran = true
	r.truncEvents, r.truncAudits = 0, 0
	r.epochs = 0
	r.aud, _ = sched.(coflow.Auditable)

	r.tracks = make(map[int]*coflowTrack, len(coflows))
	r.ordered = r.ordered[:0]
	egLoad := make([]float64, ports)
	inLoad := make([]float64, ports)
	for _, c := range coflows {
		for p := range egLoad {
			egLoad[p], inLoad[p] = 0, 0
		}
		tr := &coflowTrack{
			id: c.ID, name: c.Name, arrival: c.Arrival,
			firstByte: -1, completion: -1,
		}
		for _, f := range c.Flows {
			tr.bytes += f.Size
			egLoad[f.Src] += f.Size
			inLoad[f.Dst] += f.Size
		}
		for p := 0; p < ports; p++ {
			if egCap[p] > 0 {
				if t := egLoad[p] / egCap[p]; t > tr.lower {
					tr.lower = t
				}
			}
			if inCap[p] > 0 {
				if t := inLoad[p] / inCap[p]; t > tr.lower {
					tr.lower = t
				}
			}
		}
		r.tracks[c.ID] = tr
		r.ordered = append(r.ordered, tr)
	}
}

// event appends a lifecycle event, honouring the bound.
func (r *Recorder) event(t float64, id int, kind EventKind) {
	if len(r.events) >= r.cfg.MaxEvents {
		r.truncEvents++
		return
	}
	r.events = append(r.events, Event{T: t, Coflow: id, Kind: kind})
}

// CoflowAdmitted implements netsim.Probe.
func (r *Recorder) CoflowAdmitted(now float64, c *coflow.Coflow) {
	tr := r.tracks[c.ID]
	if tr == nil || tr.admitted {
		return
	}
	tr.admitted = true
	tr.arrival = now
	r.event(now, c.ID, EvArrival)
}

// CoflowCompleted implements netsim.Probe.
func (r *Recorder) CoflowCompleted(now float64, c *coflow.Coflow) {
	tr := r.tracks[c.ID]
	if tr == nil || tr.completion >= 0 {
		return
	}
	tr.completion = now
	if tr.active {
		tr.active = false
	}
	r.event(now, c.ID, EvComplete)
}

// FailureEdge implements netsim.Probe.
func (r *Recorder) FailureEdge(now float64, port int, up bool) {
	r.portEvents = append(r.portEvents, PortEvent{T: now, Port: port, Up: up})
}

// FlowHit implements netsim.Probe.
func (r *Recorder) FlowHit(now float64, c *coflow.Coflow, _ *coflow.Flow, restarted bool) {
	kind := EvFailureHit
	if restarted {
		kind = EvRestart
		if tr := r.tracks[c.ID]; tr != nil {
			tr.restarts++
		}
	}
	r.event(now, c.ID, kind)
}

// EpochSample implements netsim.Probe: folds the epoch's per-port usage
// into the utilization ring, derives first-byte/preempt/resume edges from
// the coflows' aggregate rates, and snapshots the scheduler's priority
// order when it changed.
func (r *Recorder) EpochSample(now, dt float64, active []*coflow.Coflow, egUse, inUse, egCap, inCap []float64) {
	r.epochs++
	if dt > 0 {
		r.addWindow(now, dt, egUse, inUse, egCap, inCap)
	}

	// Lifecycle edges from aggregate rates. LiveFlows is borrowed storage;
	// it is only read within this call.
	for _, c := range active {
		tr := r.tracks[c.ID]
		if tr == nil {
			continue
		}
		rate := 0.0
		for _, f := range c.LiveFlows() {
			rate += f.Rate
		}
		switch {
		case rate > 0 && !tr.everActive:
			tr.everActive, tr.active = true, true
			tr.firstByte = now
			r.event(now, c.ID, EvFirstByte)
		case rate > 0 && !tr.active:
			tr.active = true
			r.event(now, c.ID, EvResume)
		case rate == 0 && tr.active:
			tr.active = false
			tr.preempts++
			r.event(now, c.ID, EvPreempt)
		}
	}

	// Decision audit: record the leading AuditDepth IDs when they change.
	if r.aud != nil {
		order := r.aud.PriorityOrder()
		depth := r.cfg.AuditDepth
		if depth > len(order) {
			depth = len(order)
		}
		ids := r.auditScratch[:0]
		for _, c := range order[:depth] {
			ids = append(ids, c.ID)
		}
		r.auditScratch = ids
		if !intsEqual(ids, r.lastOrder) {
			r.lastOrder = append(r.lastOrder[:0], ids...)
			if len(r.audits) >= r.cfg.MaxAudits {
				r.truncAudits++
			} else {
				r.audits = append(r.audits, AuditSnap{T: now, Order: append([]int(nil), ids...)})
			}
		}
	}
}

// EndRun implements netsim.Probe.
func (r *Recorder) EndRun(now float64) {
	r.flushCur()
	r.end = now
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Utilization ring.
// ---------------------------------------------------------------------------

// addWindow folds one epoch interval [now, now+dt) at the given per-port
// rates into the series: either as one sample per epoch (Resolution 0) or
// split across fixed-width grid buckets.
func (r *Recorder) addWindow(now, dt float64, egUse, inUse, egCap, inCap []float64) {
	if r.res <= 0 {
		s := r.newSample(now, dt)
		accumulate(s, dt, egUse, inUse, egCap, inCap)
		r.push(*s)
		return
	}
	t, rem := now, dt
	for rem > 1e-15 {
		if r.cur != nil && t >= r.cur.Start+r.res-1e-15 {
			r.flushCur()
		}
		if r.cur == nil {
			start := math.Floor(t/r.res) * r.res
			r.cur = r.newSample(start, r.res)
		}
		seg := r.cur.Start + r.res - t
		if seg > rem {
			seg = rem
		}
		accumulate(r.cur, seg, egUse, inUse, egCap, inCap)
		t += seg
		rem -= seg
	}
}

func (r *Recorder) newSample(start, dur float64) *UtilSample {
	return &UtilSample{
		Start: start, Dur: dur,
		egRate: make([]float64, r.ports), inRate: make([]float64, r.ports),
		egCap: make([]float64, r.ports), inCap: make([]float64, r.ports),
	}
}

func accumulate(s *UtilSample, seg float64, egUse, inUse, egCap, inCap []float64) {
	for p := range s.egRate {
		s.egRate[p] += egUse[p] * seg
		s.inRate[p] += inUse[p] * seg
		s.egCap[p] += egCap[p] * seg
		s.inCap[p] += inCap[p] * seg
	}
}

func (r *Recorder) flushCur() {
	if r.cur == nil {
		return
	}
	s := *r.cur
	r.cur = nil
	r.push(s)
}

// push appends a finished sample, pair-merging the ring when it is full so
// the series keeps spanning the whole run at half the resolution.
func (r *Recorder) push(s UtilSample) {
	if len(r.samples) >= r.cfg.MaxSamples {
		r.mergePairs()
	}
	r.samples = append(r.samples, s)
}

func (r *Recorder) mergePairs() {
	w := 0
	for i := 0; i < len(r.samples); i += 2 {
		a := r.samples[i]
		if i+1 < len(r.samples) {
			b := r.samples[i+1]
			for p := range a.egRate {
				a.egRate[p] += b.egRate[p]
				a.inRate[p] += b.inRate[p]
				a.egCap[p] += b.egCap[p]
				a.inCap[p] += b.inCap[p]
			}
			a.Dur = b.Start + b.Dur - a.Start
		}
		r.samples[w] = a
		w++
	}
	r.samples = r.samples[:w]
	if r.res > 0 {
		r.res *= 2
	}
}

// Samples returns the recorded utilization windows in time order. The
// slice and its contents are owned by the Recorder.
func (r *Recorder) Samples() []UtilSample { return r.samples }

// Events returns the lifecycle event log in time order.
func (r *Recorder) Events() []Event { return r.events }

// PortEvents returns the failure edges in time order.
func (r *Recorder) PortEvents() []PortEvent { return r.portEvents }

// Audits returns the recorded scheduler decision snapshots in time order.
func (r *Recorder) Audits() []AuditSnap { return r.audits }
