package telemetry_test

// Recorder behavior against real simulator runs: lifecycle event edges,
// preemption detection, failure hits, audit snapshots, ring downsampling,
// and the derived summary metrics.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"ccf/internal/coflow"
	"ccf/internal/netsim"
	"ccf/internal/telemetry"
)

// mustFabric builds a homogeneous fabric or fails the test.
func mustFabric(t *testing.T, n int, bw float64) netsim.Fabric {
	t.Helper()
	f, err := netsim.NewFabric(n, bw)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// record runs the coflows under the scheduler with a fresh default Recorder
// attached and returns the recorder and report.
func record(t *testing.T, sched coflow.Scheduler, cfs []*coflow.Coflow, mod func(*netsim.Simulator)) (*telemetry.Recorder, *netsim.Report) {
	t.Helper()
	sim := netsim.NewSimulator(mustFabric(t, 4, 100), sched)
	rec := telemetry.NewRecorder(telemetry.Config{})
	sim.Probe = rec
	if mod != nil {
		mod(sim)
	}
	rep, err := sim.Run(cfs)
	if err != nil {
		t.Fatal(err)
	}
	return rec, rep
}

// kinds returns the event kinds recorded for one coflow, in time order.
func kinds(rec *telemetry.Recorder, id int) []telemetry.EventKind {
	var out []telemetry.EventKind
	for _, ev := range rec.Events() {
		if ev.Coflow == id {
			out = append(out, ev.Kind)
		}
	}
	return out
}

func TestLifecycleEvents(t *testing.T) {
	// cf0 is a long transfer on port 0->1; cf1 is a short one on the same
	// pair arriving mid-run. Varys (SEBF) serves the shorter coflow first,
	// so cf0 is preempted at cf1's arrival and resumes after it completes.
	cf0 := coflow.New(0, "long", 0, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 10_000}})
	cf1 := coflow.New(1, "short", 5, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 100}})
	rec, rep := record(t, coflow.NewVarys(), []*coflow.Coflow{cf0, cf1}, nil)

	want0 := []telemetry.EventKind{
		telemetry.EvArrival, telemetry.EvFirstByte,
		telemetry.EvPreempt, telemetry.EvResume, telemetry.EvComplete,
	}
	got0 := kinds(rec, 0)
	if len(got0) != len(want0) {
		t.Fatalf("coflow 0 events = %v, want %v", got0, want0)
	}
	for i := range want0 {
		if got0[i] != want0[i] {
			t.Fatalf("coflow 0 events = %v, want %v", got0, want0)
		}
	}
	want1 := []telemetry.EventKind{telemetry.EvArrival, telemetry.EvFirstByte, telemetry.EvComplete}
	got1 := kinds(rec, 1)
	if len(got1) != len(want1) {
		t.Fatalf("coflow 1 events = %v, want %v", got1, want1)
	}

	sum := rec.Summary()
	if sum.Makespan != rep.Makespan {
		t.Errorf("summary makespan %v != report %v", sum.Makespan, rep.Makespan)
	}
	for _, c := range sum.Coflows {
		if c.CCT < 0 {
			t.Fatalf("coflow %d incomplete in summary", c.ID)
		}
		if c.Stretch < 1 {
			t.Errorf("coflow %d stretch %v < 1", c.ID, c.Stretch)
		}
		if c.QueueDelay < 0 {
			t.Errorf("coflow %d queue delay %v < 0", c.ID, c.QueueDelay)
		}
	}
	// cf0: 10000 bytes at 100 B/s alone would take 100 s; being starved for
	// cf1's single second stretches it, and cf1 goes straight through.
	if sum.Coflows[0].Preemptions != 1 {
		t.Errorf("coflow 0 preemptions = %d, want 1", sum.Coflows[0].Preemptions)
	}
	if sum.Coflows[0].Stretch <= 1 {
		t.Errorf("coflow 0 stretch = %v, want > 1 (it was preempted)", sum.Coflows[0].Stretch)
	}
	if sum.Coflows[1].Stretch != 1 {
		t.Errorf("coflow 1 stretch = %v, want exactly 1", sum.Coflows[1].Stretch)
	}
	if sum.JainFairness <= 0 || sum.JainFairness > 1 {
		t.Errorf("Jain fairness = %v, want in (0,1]", sum.JainFairness)
	}
	if sum.PeakUtilization <= 0 || sum.MeanUtilization <= 0 {
		t.Errorf("utilization mean=%v peak=%v, want positive", sum.MeanUtilization, sum.PeakUtilization)
	}
}

func TestFailureEventsAndRestarts(t *testing.T) {
	cf := coflow.New(0, "cf", 0, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 1_000}})
	rec, rep := record(t, coflow.NewVarys(), []*coflow.Coflow{cf}, func(sim *netsim.Simulator) {
		sim.Failures = []netsim.PortFailure{{Port: 0, Down: 2, Up: 4}}
		sim.Retransmit = netsim.RetransmitRestart
	})
	if len(rec.PortEvents()) != 2 {
		t.Fatalf("port events = %v, want down+up", rec.PortEvents())
	}
	if pe := rec.PortEvents()[0]; pe.Up || pe.Port != 0 || pe.T != 2 {
		t.Errorf("first port event = %+v, want down on port 0 at t=2", pe)
	}
	restarts := 0
	for _, ev := range rec.Events() {
		if ev.Kind == telemetry.EvRestart {
			restarts++
		}
	}
	if want := rep.Restarts[0]; restarts != want {
		t.Errorf("recorded %d restart events, report says %d", restarts, want)
	}
	if restarts == 0 {
		t.Error("expected at least one restart event from the mid-flow outage")
	}
	sum := rec.Summary()
	if sum.Coflows[0].Restarts != restarts {
		t.Errorf("summary restarts = %d, want %d", sum.Coflows[0].Restarts, restarts)
	}
}

func TestAuditSnapshots(t *testing.T) {
	// Two coflows whose Varys priority order flips when the short one
	// arrives: the audit log must capture both orders.
	cf0 := coflow.New(0, "long", 0, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 10_000}})
	cf1 := coflow.New(1, "short", 5, []coflow.Flow{{ID: 0, Src: 2, Dst: 3, Size: 100}})
	rec, _ := record(t, coflow.NewVarys(), []*coflow.Coflow{cf0, cf1}, nil)
	audits := rec.Audits()
	if len(audits) < 2 {
		t.Fatalf("audit snapshots = %v, want at least 2 (order changes on cf1 arrival)", audits)
	}
	if len(audits[0].Order) != 1 || audits[0].Order[0] != 0 {
		t.Errorf("first audit order = %v, want [0]", audits[0].Order)
	}
	sawFlip := false
	for _, a := range audits {
		if len(a.Order) == 2 && a.Order[0] == 1 {
			sawFlip = true
		}
	}
	if !sawFlip {
		t.Errorf("no audit snapshot shows the short coflow at the head: %v", audits)
	}
}

func TestRingDownsamplingBoundedAndExact(t *testing.T) {
	// Many staggered coflows produce far more epochs than MaxSamples; the
	// ring must stay bounded while conserving the rate integral exactly
	// (pair-merging sums integrals, so total bytes recorded == bytes moved).
	var cfs []*coflow.Coflow
	var total float64
	for i := 0; i < 40; i++ {
		size := 100 + float64(i)*10
		cfs = append(cfs, coflow.New(i, "cf", float64(i)*0.7,
			[]coflow.Flow{{ID: 0, Src: i % 4, Dst: (i + 1) % 4, Size: size}}))
		total += size
	}
	sim := netsim.NewSimulator(mustFabric(t, 4, 100), coflow.NewVarys())
	rec := telemetry.NewRecorder(telemetry.Config{MaxSamples: 8})
	sim.Probe = rec
	rep, err := sim.Run(cfs)
	if err != nil {
		t.Fatal(err)
	}
	samples := rec.Samples()
	if len(samples) > 8 {
		t.Fatalf("ring grew to %d samples, cap is 8", len(samples))
	}
	var moved, span float64
	last := math.Inf(-1)
	for i := range samples {
		s := &samples[i]
		if s.Start < last {
			t.Errorf("sample %d starts at %v, before previous window", i, s.Start)
		}
		last = s.Start
		span += s.Dur
		// Utilization times capacity (constant 100 B/s, no events) times
		// window duration recovers the bytes moved in the window; summed it
		// must equal the workload exactly — pair-merging conserves integrals.
		for p := 0; p < 4; p++ {
			moved += s.EgressUtil(p) * 100 * s.Dur
		}
	}
	if math.Abs(span-rep.Makespan) > 1e-6*rep.Makespan {
		t.Errorf("sample windows span %v, makespan %v", span, rep.Makespan)
	}
	if math.Abs(moved-total) > 1e-6*total {
		t.Errorf("rate integral %v bytes, workload %v bytes", moved, total)
	}
	sum := rec.Summary()
	if got := sum.MeanUtilization; got <= 0 || got > 1 {
		t.Errorf("mean utilization %v out of (0,1]", got)
	}
	if sum.TruncatedEvents != 0 {
		t.Errorf("unexpected event truncation: %d", sum.TruncatedEvents)
	}
}

func TestGridResolution(t *testing.T) {
	// Resolution 0.5 on a ~3.1 s run: windows align to the 0.5 s grid.
	cf := coflow.New(0, "cf", 0, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 310}})
	sim := netsim.NewSimulator(mustFabric(t, 4, 100), coflow.NewVarys())
	rec := telemetry.NewRecorder(telemetry.Config{Resolution: 0.5})
	sim.Probe = rec
	if _, err := sim.Run([]*coflow.Coflow{cf}); err != nil {
		t.Fatal(err)
	}
	samples := rec.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	for i := range samples {
		s := &samples[i]
		if r := math.Mod(s.Start, 0.5); r > 1e-9 && r < 0.5-1e-9 {
			t.Errorf("sample %d start %v not grid-aligned", i, s.Start)
		}
		if u := s.EgressUtil(0); u < 0 || u > 1+1e-9 {
			t.Errorf("sample %d egress util %v out of [0,1]", i, u)
		}
	}
}

func TestEventTruncationCounted(t *testing.T) {
	var cfs []*coflow.Coflow
	for i := 0; i < 10; i++ {
		cfs = append(cfs, coflow.New(i, "cf", float64(i),
			[]coflow.Flow{{ID: 0, Src: i % 4, Dst: (i + 1) % 4, Size: 500}}))
	}
	sim := netsim.NewSimulator(mustFabric(t, 4, 100), coflow.NewVarys())
	rec := telemetry.NewRecorder(telemetry.Config{MaxEvents: 5})
	sim.Probe = rec
	if _, err := sim.Run(cfs); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) > 5 {
		t.Fatalf("event log grew to %d, cap is 5", len(rec.Events()))
	}
	if rec.Summary().TruncatedEvents == 0 {
		t.Error("expected truncated events to be counted")
	}
}

// traceDoc mirrors the Chrome trace-event JSON shape for validation.
type traceDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	} `json:"traceEvents"`
}

func TestChromeTraceValidAndMonotone(t *testing.T) {
	cf0 := coflow.New(0, "a", 0, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 5_000}})
	cf1 := coflow.New(1, "b", 3, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 200}})
	rec, _ := record(t, coflow.NewVarys(), []*coflow.Coflow{cf0, cf1}, func(sim *netsim.Simulator) {
		sim.Failures = []netsim.PortFailure{{Port: 2, Down: 1, Up: 2}}
	})

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	// Timestamps monotone (non-decreasing) within every (pid, tid) track.
	last := map[[2]int]float64{}
	counterTracks := map[string]bool{}
	coflowSlices := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		key := [2]int{ev.Pid, ev.Tid}
		if prev, ok := last[key]; ok && ev.Ts < prev {
			t.Fatalf("track pid=%d tid=%d: ts %v after %v", ev.Pid, ev.Tid, ev.Ts, prev)
		}
		last[key] = ev.Ts
		if ev.Ph == "C" {
			counterTracks[ev.Name] = true
		}
		if ev.Ph == "X" && ev.Pid == 2 {
			coflowSlices[ev.Tid] = true
			if ev.Dur <= 0 {
				t.Errorf("coflow %d slice has non-positive duration %v", ev.Tid, ev.Dur)
			}
		}
	}
	for p := 0; p < 4; p++ {
		if !counterTracks[fmt.Sprintf("port%d", p)] {
			t.Errorf("missing counter track for port %d (have %v)", p, counterTracks)
		}
	}
	for id := 0; id < 2; id++ {
		if !coflowSlices[id] {
			t.Errorf("missing lifetime slice for coflow %d", id)
		}
	}
}

func TestJSONLWellFormed(t *testing.T) {
	cf := coflow.New(0, "cf", 0, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 1_000}})
	rec, _ := record(t, coflow.NewVarys(), []*coflow.Coflow{cf}, nil)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var types []string
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		typ, _ := line["type"].(string)
		if typ == "" {
			t.Fatalf("line missing type: %q", sc.Text())
		}
		types = append(types, typ)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(types) == 0 || types[0] != "meta" {
		t.Fatalf("first line type = %v, want meta", types)
	}
	if types[len(types)-1] != "summary" {
		t.Fatalf("last line type = %s, want summary", types[len(types)-1])
	}
}

func TestRenderSummary(t *testing.T) {
	cf := coflow.New(0, "cf", 0, []coflow.Flow{{ID: 0, Src: 0, Dst: 1, Size: 1_000}})
	rec, _ := record(t, coflow.NewVarys(), []*coflow.Coflow{cf}, nil)
	var buf bytes.Buffer
	if err := telemetry.RenderSummary(&buf, rec.Summary()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"telemetry:", "stretch", "n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}
