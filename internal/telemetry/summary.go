package telemetry

import (
	"fmt"
	"io"
	"sort"

	"ccf/internal/stats"
)

// CoflowMetrics is one coflow's derived timeline metrics.
type CoflowMetrics struct {
	ID        int
	Name      string
	Bytes     float64
	Arrival   float64
	FirstByte float64 // -1 if the coflow never received rate
	// Completion is the absolute completion time, -1 if incomplete at the
	// end of the run (horizon-limited runs).
	Completion float64
	CCT        float64 // Completion - Arrival, -1 if incomplete
	// LowerBound is the coflow's isolated bandwidth-model CCT (max port
	// load over port capacity) — the floor no scheduler can beat.
	LowerBound float64
	// Stretch is CCT / LowerBound, the paper-style slowdown from sharing
	// the fabric (and from failures). 0 when incomplete or unbounded.
	Stretch float64
	// QueueDelay is FirstByte - Arrival: how long the scheduler kept the
	// coflow waiting before its first byte moved.
	QueueDelay  float64
	Preemptions int
	Restarts    int
}

// PortMetrics aggregates one port's utilization series.
type PortMetrics struct {
	Port        int
	MeanEgress  float64 // time-weighted mean utilization in [0,1]
	PeakEgress  float64 // peak per-window utilization
	MeanIngress float64
	PeakIngress float64
}

// Summary is the reduction of a recorded run.
type Summary struct {
	Makespan float64
	Epochs   int
	// Coflows is sorted by coflow ID; Ports by port index.
	Coflows []CoflowMetrics
	Ports   []PortMetrics
	// MeanUtilization averages the per-port time-weighted means (egress
	// and ingress pooled); PeakUtilization is the highest per-window
	// utilization any port reached.
	MeanUtilization float64
	PeakUtilization float64
	// JainFairness is Jain's index over completed coflows' CCTs: 1 is
	// perfectly even, 1/n maximally skewed.
	JainFairness float64
	MeanStretch  float64
	MaxStretch   float64
	// StretchHist buckets the per-coflow stretch (completed coflows only).
	StretchHist *stats.Histogram
	// TruncatedEvents/TruncatedAudits count recordings dropped at the
	// configured caps — non-zero means the log is a prefix, not the run.
	TruncatedEvents int
	TruncatedAudits int
}

// Summary reduces the recording. It may be called repeatedly; each call
// recomputes from the raw series.
func (r *Recorder) Summary() *Summary {
	s := &Summary{
		Makespan:        r.end,
		Epochs:          r.epochs,
		TruncatedEvents: r.truncEvents,
		TruncatedAudits: r.truncAudits,
	}

	// Port utilization aggregates from the ring's integrals.
	var meanSum float64
	var meanCnt int
	for p := 0; p < r.ports; p++ {
		pm := PortMetrics{Port: p}
		var egRate, egCap, inRate, inCap float64
		for i := range r.samples {
			sm := &r.samples[i]
			egRate += sm.egRate[p]
			egCap += sm.egCap[p]
			inRate += sm.inRate[p]
			inCap += sm.inCap[p]
			if u := sm.EgressUtil(p); u > pm.PeakEgress {
				pm.PeakEgress = u
			}
			if u := sm.IngressUtil(p); u > pm.PeakIngress {
				pm.PeakIngress = u
			}
		}
		if egCap > 0 {
			pm.MeanEgress = egRate / egCap
		}
		if inCap > 0 {
			pm.MeanIngress = inRate / inCap
		}
		s.Ports = append(s.Ports, pm)
		meanSum += pm.MeanEgress + pm.MeanIngress
		meanCnt += 2
		if pm.PeakEgress > s.PeakUtilization {
			s.PeakUtilization = pm.PeakEgress
		}
		if pm.PeakIngress > s.PeakUtilization {
			s.PeakUtilization = pm.PeakIngress
		}
	}
	if meanCnt > 0 {
		s.MeanUtilization = meanSum / float64(meanCnt)
	}

	// Per-coflow metrics, sorted by ID for deterministic output.
	hist, _ := stats.NewHistogram(1, 1.25, 1.5, 2, 3, 5, 10)
	var cctSum, cctSqSum float64
	var completed int
	var stretchSum float64
	var stretched int
	for _, tr := range r.ordered {
		cm := CoflowMetrics{
			ID: tr.id, Name: tr.name, Bytes: tr.bytes,
			Arrival: tr.arrival, FirstByte: tr.firstByte,
			Completion: tr.completion, CCT: -1,
			LowerBound:  tr.lower,
			QueueDelay:  -1,
			Preemptions: tr.preempts,
			Restarts:    tr.restarts,
		}
		if tr.firstByte >= 0 {
			cm.QueueDelay = tr.firstByte - tr.arrival
		}
		if tr.completion >= 0 {
			cm.CCT = tr.completion - tr.arrival
			completed++
			cctSum += cm.CCT
			cctSqSum += cm.CCT * cm.CCT
			if cm.LowerBound > 0 {
				cm.Stretch = cm.CCT / cm.LowerBound
				// The lower bound is exact arithmetic over the same
				// capacities the simulator integrates, so a sub-1 ratio
				// within rounding distance is float noise, not a scheduler
				// beating physics. (Genuinely sub-1 values stay: capacity
				// events can raise a port above its configured rate.)
				if cm.Stretch < 1 && cm.Stretch > 1-1e-9 {
					cm.Stretch = 1
				}
				hist.Observe(cm.Stretch)
				stretchSum += cm.Stretch
				stretched++
				if cm.Stretch > s.MaxStretch {
					s.MaxStretch = cm.Stretch
				}
			}
		}
		s.Coflows = append(s.Coflows, cm)
	}
	sort.Slice(s.Coflows, func(i, j int) bool { return s.Coflows[i].ID < s.Coflows[j].ID })
	if stretched > 0 {
		s.MeanStretch = stretchSum / float64(stretched)
	}
	if completed > 0 && cctSqSum > 0 {
		s.JainFairness = cctSum * cctSum / (float64(completed) * cctSqSum)
	}
	s.StretchHist = hist
	return s
}

// RenderSummary writes the human-readable summary tables: the run header,
// the per-coflow stretch table (sorted by ID), and the stretch histogram.
func RenderSummary(w io.Writer, s *Summary) error {
	if _, err := fmt.Fprintf(w,
		"telemetry: makespan %.4f s over %d epochs, util mean %.1f%% peak %.1f%%, Jain fairness %.3f\n",
		s.Makespan, s.Epochs, 100*s.MeanUtilization, 100*s.PeakUtilization, s.JainFairness); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %6s %12s %10s %10s %10s %8s %6s %6s\n",
		"coflow", "bytes", "cct (s)", "lower (s)", "stretch", "queued", "preem", "rest"); err != nil {
		return err
	}
	for _, c := range s.Coflows {
		cct, stretch, queued := "-", "-", "-"
		if c.CCT >= 0 {
			cct = fmt.Sprintf("%.4f", c.CCT)
		}
		if c.Stretch > 0 {
			stretch = fmt.Sprintf("%.3f", c.Stretch)
		}
		if c.QueueDelay >= 0 {
			queued = fmt.Sprintf("%.4f", c.QueueDelay)
		}
		if _, err := fmt.Fprintf(w, "  %6d %12.0f %10s %10.4f %10s %8s %6d %6d\n",
			c.ID, c.Bytes, cct, c.LowerBound, stretch, queued, c.Preemptions, c.Restarts); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "  stretch distribution (CCT / isolated lower bound):"); err != nil {
		return err
	}
	if err := s.StretchHist.Render(w, 32); err != nil {
		return err
	}
	if s.TruncatedEvents > 0 || s.TruncatedAudits > 0 {
		if _, err := fmt.Fprintf(w, "  WARNING: truncated %d events, %d audits at the configured caps\n",
			s.TruncatedEvents, s.TruncatedAudits); err != nil {
			return err
		}
	}
	return nil
}
