package telemetry

// Exporters: Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) and JSONL metric lines.
//
// Trace layout: pid 1 "ports" carries one counter track per port with
// egress/ingress utilization series; pid 2 "coflows" carries one thread
// track per coflow with its lifetime as a complete ("X") slice and its
// lifecycle events as instants; pid 3 "fabric" carries failure down/up
// instants, one thread per failed port. Events are emitted grouped per
// track in ascending-timestamp order, so timestamps are monotone within
// every (pid, tid) track — a property CI validates on every trace.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Trace-event process IDs.
const (
	pidPorts   = 1
	pidCoflows = 2
	pidFabric  = 3
)

// traceEvent is one Chrome trace-event object. Field order follows the
// trace-event spec's conventional ordering.
type traceEvent struct {
	Name string         `json:"name,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const usec = 1e6 // trace-event timestamps are microseconds

// traceEncoder streams one Chrome trace-event JSON document: header, comma-
// separated events, footer. It is the emission machinery shared by the
// Recorder's trace export and the service layer's per-job span export.
type traceEncoder struct {
	bw    *bufio.Writer
	first bool
}

func newTraceEncoder(w io.Writer) (*traceEncoder, error) {
	e := &traceEncoder{bw: bufio.NewWriter(w), first: true}
	if _, err := e.bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *traceEncoder) emit(ev traceEvent) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if !e.first {
		if err := e.bw.WriteByte(','); err != nil {
			return err
		}
	}
	e.first = false
	if err := e.bw.WriteByte('\n'); err != nil {
		return err
	}
	_, err = e.bw.Write(b)
	return err
}

// meta emits a process_name/thread_name metadata event.
func (e *traceEncoder) meta(pid, tid int, kind, name string) error {
	return e.emit(traceEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}})
}

// close writes the document footer and flushes.
func (e *traceEncoder) close() error {
	if _, err := e.bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return e.bw.Flush()
}

// WriteChromeTrace writes the recording as a Chrome trace-event JSON file.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	enc, err := newTraceEncoder(w)
	if err != nil {
		return err
	}
	emit := enc.emit
	meta := enc.meta

	// Process metadata.
	if err := meta(pidPorts, 0, "process_name", "ports"); err != nil {
		return err
	}
	if err := meta(pidCoflows, 0, "process_name", "coflows"); err != nil {
		return err
	}
	if len(r.portEvents) > 0 {
		if err := meta(pidFabric, 0, "process_name", "fabric"); err != nil {
			return err
		}
	}

	// One counter track per port, chronological within the track.
	for p := 0; p < r.ports; p++ {
		for i := range r.samples {
			s := &r.samples[i]
			if err := emit(traceEvent{
				Name: fmt.Sprintf("port%d", p), Ph: "C", Ts: s.Start * usec,
				Pid: pidPorts, Tid: p,
				Args: map[string]any{"egress": s.EgressUtil(p), "ingress": s.IngressUtil(p)},
			}); err != nil {
				return err
			}
		}
		if len(r.samples) > 0 {
			// Close the counter at the end of the run so the last window
			// does not render as extending forever.
			if err := emit(traceEvent{
				Name: fmt.Sprintf("port%d", p), Ph: "C", Ts: r.end * usec,
				Pid: pidPorts, Tid: p,
				Args: map[string]any{"egress": 0.0, "ingress": 0.0},
			}); err != nil {
				return err
			}
		}
	}

	// One thread track per coflow: a complete slice for its lifetime plus
	// instants for the lifecycle events. ordered is input order; track
	// naming keeps Perfetto's UI sorted by coflow ID.
	for _, tr := range r.ordered {
		if err := meta(pidCoflows, tr.id, "thread_name", fmt.Sprintf("coflow %d (%s)", tr.id, tr.name)); err != nil {
			return err
		}
		if !tr.admitted {
			continue
		}
		endT := tr.completion
		args := map[string]any{"bytes": tr.bytes, "lower_bound_s": tr.lower}
		if endT < 0 {
			endT = r.end
			args["incomplete"] = true
		}
		if err := emit(traceEvent{
			Name: fmt.Sprintf("cf%d", tr.id), Ph: "X",
			Ts: tr.arrival * usec, Dur: (endT - tr.arrival) * usec,
			Pid: pidCoflows, Tid: tr.id, Args: args,
		}); err != nil {
			return err
		}
		for _, ev := range r.events {
			if ev.Coflow != tr.id || ev.Kind == EvArrival {
				continue
			}
			if err := emit(traceEvent{
				Name: ev.Kind.String(), Ph: "i", Ts: ev.T * usec,
				Pid: pidCoflows, Tid: tr.id, S: "t",
			}); err != nil {
				return err
			}
		}
	}

	// Failure edges, one fabric thread per port, chronological per port.
	seen := map[int]bool{}
	for _, pe := range r.portEvents {
		if !seen[pe.Port] {
			seen[pe.Port] = true
			if err := meta(pidFabric, pe.Port, "thread_name", fmt.Sprintf("port %d", pe.Port)); err != nil {
				return err
			}
		}
	}
	for _, pe := range r.portEvents {
		name := "down"
		if pe.Up {
			name = "up"
		}
		if err := emit(traceEvent{
			Name: name, Ph: "i", Ts: pe.T * usec,
			Pid: pidFabric, Tid: pe.Port, S: "t",
		}); err != nil {
			return err
		}
	}

	return enc.close()
}

// Span is one closed duration on a span track. Times are in seconds on
// whatever clock the caller uses; the exporter only requires that spans on
// one track are given in ascending Start order.
type Span struct {
	Name  string
	Start float64 // seconds
	Dur   float64 // seconds
	Args  map[string]any
}

// Instant is a point event on a span track.
type Instant struct {
	Name string
	T    float64 // seconds
	Args map[string]any
}

// SpanTrack is one (pid, tid) thread of spans — the unit the service layer
// uses to export per-job lifecycle traces. Spans and Instants must each be
// in ascending time order; the exporter merges the two streams so emitted
// timestamps stay monotone within the track (the property CI validates).
type SpanTrack struct {
	Pid, Tid int
	Process  string // process_name metadata, first track per pid wins
	Thread   string // thread_name metadata
	Spans    []Span
	Instants []Instant
}

// WriteSpanTrace writes the tracks as a Chrome trace-event JSON document
// loadable in Perfetto or chrome://tracing.
func WriteSpanTrace(w io.Writer, tracks []SpanTrack) error {
	enc, err := newTraceEncoder(w)
	if err != nil {
		return err
	}
	seenPid := map[int]bool{}
	for _, tr := range tracks {
		if !seenPid[tr.Pid] && tr.Process != "" {
			seenPid[tr.Pid] = true
			if err := enc.meta(tr.Pid, 0, "process_name", tr.Process); err != nil {
				return err
			}
		}
	}
	for _, tr := range tracks {
		if tr.Thread != "" {
			if err := enc.meta(tr.Pid, tr.Tid, "thread_name", tr.Thread); err != nil {
				return err
			}
		}
		// Two-pointer merge keeps the emitted timestamps monotone even when
		// instants fall between spans.
		si, ii := 0, 0
		for si < len(tr.Spans) || ii < len(tr.Instants) {
			if ii >= len(tr.Instants) || (si < len(tr.Spans) && tr.Spans[si].Start <= tr.Instants[ii].T) {
				sp := tr.Spans[si]
				si++
				if err := enc.emit(traceEvent{
					Name: sp.Name, Ph: "X", Ts: sp.Start * usec, Dur: sp.Dur * usec,
					Pid: tr.Pid, Tid: tr.Tid, Args: sp.Args,
				}); err != nil {
					return err
				}
				continue
			}
			in := tr.Instants[ii]
			ii++
			if err := enc.emit(traceEvent{
				Name: in.Name, Ph: "i", Ts: in.T * usec,
				Pid: tr.Pid, Tid: tr.Tid, S: "t", Args: in.Args,
			}); err != nil {
				return err
			}
		}
	}
	return enc.close()
}

// jsonl line payloads; field order is fixed by the struct definitions so
// output diffs cleanly.
type jlMeta struct {
	Type     string  `json:"type"`
	Ports    int     `json:"ports"`
	Makespan float64 `json:"makespan_s"`
	Epochs   int     `json:"epochs"`
	Samples  int     `json:"samples"`
	Events   int     `json:"events"`
}

type jlSample struct {
	Type    string  `json:"type"`
	T       float64 `json:"t"`
	Dur     float64 `json:"dur"`
	Port    int     `json:"port"`
	Egress  float64 `json:"egress"`
	Ingress float64 `json:"ingress"`
}

type jlEvent struct {
	Type   string  `json:"type"`
	T      float64 `json:"t"`
	Coflow int     `json:"coflow"`
	Kind   string  `json:"kind"`
}

type jlPortEvent struct {
	Type string  `json:"type"`
	T    float64 `json:"t"`
	Port int     `json:"port"`
	Up   bool    `json:"up"`
}

type jlAudit struct {
	Type  string  `json:"type"`
	T     float64 `json:"t"`
	Order []int   `json:"order"`
}

type jlCoflow struct {
	Type       string  `json:"type"`
	ID         int     `json:"id"`
	Name       string  `json:"name"`
	Bytes      float64 `json:"bytes"`
	Arrival    float64 `json:"arrival"`
	FirstByte  float64 `json:"first_byte"`
	Completion float64 `json:"completion"`
	CCT        float64 `json:"cct"`
	LowerBound float64 `json:"lower_bound"`
	Stretch    float64 `json:"stretch"`
	QueueDelay float64 `json:"queue_delay"`
	Preempts   int     `json:"preemptions"`
	Restarts   int     `json:"restarts"`
}

type jlSummary struct {
	Type            string  `json:"type"`
	MeanUtilization float64 `json:"mean_utilization"`
	PeakUtilization float64 `json:"peak_utilization"`
	JainFairness    float64 `json:"jain_fairness"`
	MeanStretch     float64 `json:"mean_stretch"`
	MaxStretch      float64 `json:"max_stretch"`
	TruncatedEvents int     `json:"truncated_events"`
	TruncatedAudits int     `json:"truncated_audits"`
}

// WriteJSONL writes the recording as JSONL metric lines: one meta line,
// then samples (time-major, port-minor), lifecycle events, failure edges,
// audit snapshots, per-coflow metrics sorted by ID, and a final summary
// line. Every ordering is deterministic so runs diff cleanly.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	sum := r.Summary()

	if err := enc.Encode(jlMeta{
		Type: "meta", Ports: r.ports, Makespan: r.end,
		Epochs: r.epochs, Samples: len(r.samples), Events: len(r.events),
	}); err != nil {
		return err
	}
	for i := range r.samples {
		s := &r.samples[i]
		for p := 0; p < r.ports; p++ {
			if err := enc.Encode(jlSample{
				Type: "sample", T: s.Start, Dur: s.Dur, Port: p,
				Egress: s.EgressUtil(p), Ingress: s.IngressUtil(p),
			}); err != nil {
				return err
			}
		}
	}
	for _, ev := range r.events {
		if err := enc.Encode(jlEvent{Type: "event", T: ev.T, Coflow: ev.Coflow, Kind: ev.Kind.String()}); err != nil {
			return err
		}
	}
	for _, pe := range r.portEvents {
		if err := enc.Encode(jlPortEvent{Type: "port_event", T: pe.T, Port: pe.Port, Up: pe.Up}); err != nil {
			return err
		}
	}
	for _, a := range r.audits {
		if err := enc.Encode(jlAudit{Type: "audit", T: a.T, Order: a.Order}); err != nil {
			return err
		}
	}
	for _, c := range sum.Coflows {
		if err := enc.Encode(jlCoflow{
			Type: "coflow", ID: c.ID, Name: c.Name, Bytes: c.Bytes,
			Arrival: c.Arrival, FirstByte: c.FirstByte, Completion: c.Completion,
			CCT: c.CCT, LowerBound: c.LowerBound, Stretch: c.Stretch,
			QueueDelay: c.QueueDelay, Preempts: c.Preemptions, Restarts: c.Restarts,
		}); err != nil {
			return err
		}
	}
	if err := enc.Encode(jlSummary{
		Type:            "summary",
		MeanUtilization: sum.MeanUtilization, PeakUtilization: sum.PeakUtilization,
		JainFairness: sum.JainFairness, MeanStretch: sum.MeanStretch, MaxStretch: sum.MaxStretch,
		TruncatedEvents: sum.TruncatedEvents, TruncatedAudits: sum.TruncatedAudits,
	}); err != nil {
		return err
	}
	return bw.Flush()
}
