package bound_test

import (
	"fmt"

	"ccf/internal/bound"
	"ccf/internal/partition"
	"ccf/internal/placement"
)

// Bracketing a heuristic solution between its feasible value and a
// certified lower bound on the motivating instance: CCF's T = 3 meets the
// bound, proving the heuristic optimal here without enumerating anything.
func ExampleGap() {
	m := partition.MustChunkMatrix(3, 4)
	m.Set(0, 0, 3)
	m.Set(2, 0, 1)
	m.Set(0, 1, 3)
	m.Set(1, 1, 6)
	m.Set(0, 2, 1)
	m.Set(1, 2, 2)
	m.Set(1, 3, 1)
	m.Set(2, 3, 2)

	ev, err := placement.Evaluate(placement.CCF{}, m, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	lb, ratio, err := bound.Gap(m, nil, ev.BottleneckBytes)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("heuristic T = %d, lower bound = %d, gap <= %.2fx\n", ev.BottleneckBytes, lb, ratio)
	// Output:
	// heuristic T = 3, lower bound = 3, gap <= 1.00x
}
