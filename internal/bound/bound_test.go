package bound

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccf/internal/milp"
	"ccf/internal/partition"
	"ccf/internal/placement"
	"ccf/internal/workload"
)

func randomMatrix(rng *rand.Rand, n, p, maxChunk int) *partition.ChunkMatrix {
	m := partition.MustChunkMatrix(n, p)
	for i := range m.H {
		m.H[i] = int64(rng.Intn(maxChunk))
	}
	return m
}

func TestLowerBoundAdmissibleAgainstExact(t *testing.T) {
	// The bound must never exceed the certified optimum.
	f := func(seed int64, withInitial bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 2+rng.Intn(3), 1+rng.Intn(7)
		m := randomMatrix(rng, n, p, 40)
		var init *partition.Loads
		if withInitial {
			init = &partition.Loads{Egress: make([]int64, n), Ingress: make([]int64, n)}
			for i := 0; i < n; i++ {
				init.Egress[i] = int64(rng.Intn(30))
				init.Ingress[i] = int64(rng.Intn(30))
			}
		}
		lb, err := LowerBound(m, init)
		if err != nil {
			return false
		}
		exact, err := milp.Solve(m, init, milp.Options{})
		if err != nil || !exact.Optimal {
			return false
		}
		return lb <= exact.T
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLowerBoundNontrivial(t *testing.T) {
	// On the motivating instance the optimum is 3; the bound should be
	// positive and ≤ 3.
	m := partition.MustChunkMatrix(3, 4)
	m.Set(0, 0, 3)
	m.Set(2, 0, 1)
	m.Set(0, 1, 3)
	m.Set(1, 1, 6)
	m.Set(0, 2, 1)
	m.Set(1, 2, 2)
	m.Set(1, 3, 1)
	m.Set(2, 3, 2)
	lb, err := LowerBound(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 || lb > 3 {
		t.Errorf("motivating lower bound = %d, want in (0, 3]", lb)
	}
}

func TestLowerBoundZeroMatrix(t *testing.T) {
	m := partition.MustChunkMatrix(3, 4)
	lb, err := LowerBound(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 0 {
		t.Errorf("zero matrix bound = %d, want 0", lb)
	}
}

func TestLowerBoundSingleNode(t *testing.T) {
	m := partition.MustChunkMatrix(1, 3)
	m.Set(0, 0, 10)
	m.Set(0, 2, 5)
	lb, err := LowerBound(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 0 {
		t.Errorf("single node bound = %d, want 0 (all local)", lb)
	}
}

func TestLowerBoundRejectsBadInputs(t *testing.T) {
	m := partition.MustChunkMatrix(2, 2)
	m.Set(0, 0, -1)
	if _, err := LowerBound(m, nil); err == nil {
		t.Error("accepted a negative chunk")
	}
	m2 := partition.MustChunkMatrix(2, 2)
	if _, err := LowerBound(m2, &partition.Loads{Egress: []int64{1}, Ingress: []int64{1, 2}}); err == nil {
		t.Error("accepted mis-sized initial loads")
	}
}

func TestLowerBoundRespectsInitialLoads(t *testing.T) {
	// A pre-existing ingress of 100 on one port floors the bound at 100.
	m := partition.MustChunkMatrix(3, 2)
	m.Set(0, 0, 10)
	m.Set(1, 1, 10)
	init := &partition.Loads{Egress: make([]int64, 3), Ingress: []int64{100, 0, 0}}
	lb, err := LowerBound(m, init)
	if err != nil {
		t.Fatal(err)
	}
	if lb < 100 {
		t.Errorf("bound = %d, want >= 100 (initial ingress floor)", lb)
	}
}

func TestGapBracketsHeuristicAtPaperShape(t *testing.T) {
	// The headline use: bound the heuristic's optimality gap on a
	// paper-shaped instance too large for branch & bound.
	w, err := workload.Generate(workload.Config{
		Nodes: 50, CustomerTuples: 90_000, OrderTuples: 900_000,
		PayloadBytes: 100, Zipf: 0.8, Skew: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := placement.Evaluate(placement.CCF{}, w.Chunks, nil)
	if err != nil {
		t.Fatal(err)
	}
	lb, ratio, err := Gap(w.Chunks, nil, ev.BottleneckBytes)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Fatal("zero lower bound on a non-trivial instance")
	}
	if ratio < 1 {
		t.Fatalf("ratio %g < 1: bound exceeded a feasible value", ratio)
	}
	if ratio > 1.5 {
		t.Errorf("heuristic certified only within %.2fx of optimal; expected well under 1.5x", ratio)
	}
	t.Logf("n=50 paper-shaped instance: heuristic T=%d, lower bound=%d, gap ≤ %.4fx",
		ev.BottleneckBytes, lb, ratio)
}

func TestGapErrorsOnInfeasibleClaim(t *testing.T) {
	m := partition.MustChunkMatrix(2, 1)
	m.Set(0, 0, 100)
	m.Set(1, 0, 1)
	lb, err := LowerBound(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lb == 0 {
		t.Skip("degenerate instance, bound is zero")
	}
	if _, _, err := Gap(m, nil, lb-1); err == nil {
		t.Error("Gap accepted a 'feasible' value below the lower bound")
	}
}

func TestGapZeroCases(t *testing.T) {
	m := partition.MustChunkMatrix(2, 1) // empty: optimum 0
	lb, ratio, err := Gap(m, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 0 || ratio != 1 {
		t.Errorf("empty instance gap = (%d, %g), want (0, 1)", lb, ratio)
	}
}

func TestLowerBoundMonotoneInData(t *testing.T) {
	// Scaling all chunks by c scales the bound by ~c (bisection on a
	// linear model). Check 2x within rounding.
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, 4, 12, 100)
	lb1, err := LowerBound(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	double := m.Clone()
	for i := range double.H {
		double.H[i] *= 2
	}
	lb2, err := LowerBound(double, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lb2 < 2*lb1-4 || lb2 > 2*lb1+4 {
		t.Errorf("bound not ≈ linear: lb(m)=%d, lb(2m)=%d", lb1, lb2)
	}
}

func TestIndivisibilityFloor(t *testing.T) {
	// One giant partition spread evenly over 4 nodes: any destination must
	// ingest 3/4 of it, which the fractional relaxation alone would split
	// away. The bound must include the indivisibility floor.
	m := partition.MustChunkMatrix(4, 1)
	for i := 0; i < 4; i++ {
		m.Set(i, 0, 100)
	}
	lb, err := LowerBound(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 300 {
		t.Errorf("lower bound = %d, want 300 (whole-partition ingress)", lb)
	}
	// And it is achieved: assign anywhere.
	pl := &partition.Placement{Dest: []int{0}}
	l, err := partition.ComputeLoads(m, pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Max() != 300 {
		t.Fatalf("feasible T = %d, want 300", l.Max())
	}
}

func TestBoundTightWithoutSkewHandling(t *testing.T) {
	// A skewed workload placed WITHOUT partial duplication is dominated by
	// the hot partition; the indivisibility floor makes the bound tight
	// enough to certify the heuristic within a few percent.
	w, err := workload.Generate(workload.Config{
		Nodes: 40, CustomerTuples: 90_000, OrderTuples: 900_000,
		PayloadBytes: 100, Zipf: 0.8, Skew: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := placement.Evaluate(placement.CCF{}, w.Chunks, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ratio, err := Gap(w.Chunks, nil, ev.BottleneckBytes)
	if err != nil {
		t.Fatal(err)
	}
	if ratio > 1.05 {
		t.Errorf("gap ratio %.4f on skew-dominated instance; indivisibility floor should certify ≤ 1.05", ratio)
	}
}
