// Package bound computes certified lower bounds on the co-optimization
// objective T (the bottleneck port load of model (3)) for instances far
// beyond what branch & bound can enumerate — the paper-scale n=500, p=7500
// shape where the paper itself gave up on Gurobi. Together with the CCF
// heuristic's feasible value this brackets the optimum and certifies the
// heuristic's gap at full scale.
//
// The bound is the smallest T passing two relaxations, found by bisection:
//
//	volume:  every partition k must be received by some node at cost at
//	         least minRecv_k = tot_k − max_i h_ik; total ingress across the
//	         n ports (plus any initial ingress) is then at least
//	         Σ_k minRecv_k, so n·T ≥ Σ_j init_j + Σ_k minRecv_k.
//
//	indivisibility: partition k lands whole on one node j, whose ingress
//	         then carries at least tot_k − h_jk (+ its initial ingress), so
//	         T ≥ max_k min_j (initIn_j + tot_k − h_jk). This is what makes
//	         the bound tight when one partition (e.g. the skewed one)
//	         dominates.
//
//	egress:  node i ends with egress rowTot_i + init_i − kept_i ≤ T, so it
//	         must keep at least need_i(T) = rowTot_i + init_i − T bytes.
//	         Keeping partition k costs ingress tot_k − h_ik, and node i has
//	         ingress budget T − initIn_i. The cheapest way to keep bytes is
//	         a knapsack (value h_ik, weight tot_k − h_ik); its *fractional*
//	         relaxation — which also drops the partition-exclusivity
//	         constraint across nodes — upper-bounds what i can keep. If
//	         even that optimistic keep is below need_i(T), no assignment
//	         achieves T.
//
// Both relaxations only discard constraints, so every feasible placement
// satisfies them and the bisection limit is a true lower bound (verified
// against the exact solver on small instances in the tests).
package bound

import (
	"fmt"
	"sort"

	"ccf/internal/partition"
)

// item is one partition from a node's keep-knapsack perspective.
type item struct {
	value  int64 // h_ik: bytes kept locally if assigned here
	weight int64 // tot_k − h_ik: ingress incurred if assigned here
}

// LowerBound returns a certified lower bound on min-max port load for the
// chunk matrix with optional initial loads.
func LowerBound(m *partition.ChunkMatrix, initial *partition.Loads) (int64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	n, p := m.N, m.P
	initEg := make([]int64, n)
	initIn := make([]int64, n)
	if initial != nil {
		if len(initial.Egress) != n || len(initial.Ingress) != n {
			return 0, fmt.Errorf("bound: initial loads sized %d/%d, want %d",
				len(initial.Egress), len(initial.Ingress), n)
		}
		copy(initEg, initial.Egress)
		copy(initIn, initial.Ingress)
	}

	tot := m.PartitionTotals()
	rowTot := m.NodeTotals()
	maxChunk, _ := m.MaxChunk()
	var minRecvSum int64
	for k := 0; k < p; k++ {
		minRecvSum += tot[k] - maxChunk[k]
	}

	// Indivisibility floor: every partition must be received whole.
	var indivisible int64
	for k := 0; k < p; k++ {
		best := int64(1<<62 - 1)
		for j := 0; j < n; j++ {
			if c := initIn[j] + tot[k] - m.At(j, k); c < best {
				best = c
			}
		}
		if best > indivisible {
			indivisible = best
		}
	}
	var initInSum int64
	for _, v := range initIn {
		initInSum += v
	}

	// Per-node knapsack items, pre-sorted by density (value per unit of
	// ingress weight, zero-weight items first) — the fractional-greedy
	// order is T-independent.
	items := make([][]item, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		its := make([]item, 0, p)
		for k := 0; k < p; k++ {
			h := row[k]
			if h == 0 {
				continue // keeping nothing saves nothing
			}
			its = append(its, item{value: h, weight: tot[k] - h})
		}
		sort.Slice(its, func(a, b int) bool {
			// Density value/weight descending; weight 0 = infinite density.
			wa, wb := its[a].weight, its[b].weight
			if wa == 0 || wb == 0 {
				if (wa == 0) != (wb == 0) {
					return wa == 0
				}
				return its[a].value > its[b].value
			}
			// Cross-multiplied comparison avoids float rounding.
			return its[a].value*wb > its[b].value*wa
		})
		items[i] = its
	}

	feasible := func(T int64) bool {
		// Volume relaxation.
		if int64(n)*T < initInSum+minRecvSum {
			return false
		}
		// Per-port initial floors.
		for i := 0; i < n; i++ {
			if initEg[i] > T || initIn[i] > T {
				return false
			}
		}
		// Egress/keep relaxation per node.
		for i := 0; i < n; i++ {
			need := rowTot[i] + initEg[i] - T
			if need <= 0 {
				continue
			}
			budget := T - initIn[i]
			var kept int64
			for _, it := range items[i] {
				if kept >= need {
					break
				}
				if it.weight == 0 {
					kept += it.value
					continue
				}
				if budget <= 0 {
					break
				}
				if it.weight <= budget {
					budget -= it.weight
					kept += it.value
					continue
				}
				// Fractional tail.
				kept += it.value * budget / it.weight
				budget = 0
			}
			if kept < need {
				return false
			}
		}
		return true
	}

	// Bisection over T. The upper end is always feasible for the
	// relaxations (everything local costs no egress... not necessarily —
	// use the trivially feasible max of totals).
	var hi int64
	for i := 0; i < n; i++ {
		if v := rowTot[i] + initEg[i]; v > hi {
			hi = v
		}
		if initIn[i] > hi {
			hi = initIn[i]
		}
	}
	hi += minRecvSum // safety margin; feasible(hi) must hold
	if !feasible(hi) {
		return 0, fmt.Errorf("bound: internal error, relaxation infeasible at T=%d", hi)
	}
	lo := int64(0)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if indivisible > lo {
		lo = indivisible
	}
	return lo, nil
}

// Gap brackets the optimum: it returns the heuristic's feasible T, the
// certified lower bound, and their ratio (≥ 1; equal to 1 proves the
// heuristic optimal on this instance).
func Gap(m *partition.ChunkMatrix, initial *partition.Loads, feasibleT int64) (lb int64, ratio float64, err error) {
	lb, err = LowerBound(m, initial)
	if err != nil {
		return 0, 0, err
	}
	if feasibleT < lb {
		return 0, 0, fmt.Errorf("bound: feasible T=%d below certified lower bound %d — caller bug", feasibleT, lb)
	}
	if lb == 0 {
		if feasibleT == 0 {
			return 0, 1, nil
		}
		return lb, float64(feasibleT), nil
	}
	return lb, float64(feasibleT) / float64(lb), nil
}
