// Package tpch builds TPC-H-flavoured multi-table workloads for the query
// layer — the "more complex workloads (e.g., analytical queries)" of the
// paper's future work (§VI). It generates the three-relation chain
//
//	CUSTOMER (custkey)  ⋈  ORDERS (custkey → orderkey)  ⋈  LINEITEM (orderkey, price)
//
// and expresses canonical analytics over it as plans for query.Executor:
// revenue per customer, revenue per nation, and order counts. Because the
// query engine's rows are (Key, Value) pairs and its join emits Key plus
// the SUM of the two values, chain joins carry composite state by encoding
// (custkey, price) into a single value with a fixed radix — the same trick
// value-tagged columnar engines use, here made explicit and tested.
package tpch

import (
	"fmt"

	"ccf/internal/query"
)

// Radix separates the two halves of an encoded value: value = hi×Radix + lo
// with 0 ≤ lo < Radix. Prices are generated strictly below Radix.
const Radix = 1 << 20

// Nations is the TPC-H nation count; nationkey = custkey mod Nations.
const Nations = 25

// Config sizes the generated tables.
type Config struct {
	Nodes     int
	Customers int64 // orders = 10×customers, lineitems ≈ 4×orders
	// PayloadBytes per row on the wire; 0 = 100.
	PayloadBytes int64
	Seed         uint64
}

// gen is the xorshift64* generator shared with the other packages.
type gen struct{ state uint64 }

func (g *gen) next() uint64 {
	x := g.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	g.state = x
	return x * 0x2545F4914F6CDD1D
}

func (g *gen) intn(n int) int { return int(g.next() % uint64(n)) }

// Tables bundles the generated relations.
type Tables struct {
	Customer *query.Table // Key=custkey, Value=0
	Orders   *query.Table // Key=custkey, Value=orderkey
	Lineitem *query.Table // Key=orderkey, Value=price (< Radix)
}

// Generate materialises the three relations, spread round-robin with a
// deterministic per-row node choice.
func Generate(cfg Config) (*Tables, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("tpch: Nodes must be positive, got %d", cfg.Nodes)
	}
	if cfg.Customers <= 0 {
		return nil, fmt.Errorf("tpch: Customers must be positive, got %d", cfg.Customers)
	}
	if cfg.PayloadBytes == 0 {
		cfg.PayloadBytes = 100
	}
	g := &gen{state: cfg.Seed | 1}
	t := &Tables{
		Customer: query.NewTable("CUSTOMER", cfg.Nodes, cfg.PayloadBytes),
		Orders:   query.NewTable("ORDERS", cfg.Nodes, cfg.PayloadBytes),
		Lineitem: query.NewTable("LINEITEM", cfg.Nodes, cfg.PayloadBytes),
	}
	for ck := int64(1); ck <= cfg.Customers; ck++ {
		node := g.intn(cfg.Nodes)
		t.Customer.Frags[node] = append(t.Customer.Frags[node], query.Row{Key: ck, Value: 0})
	}
	orderKey := int64(0)
	for ck := int64(1); ck <= cfg.Customers; ck++ {
		for o := 0; o < 10; o++ {
			orderKey++
			node := g.intn(cfg.Nodes)
			t.Orders.Frags[node] = append(t.Orders.Frags[node], query.Row{Key: ck, Value: orderKey})
			items := 1 + g.intn(7) // TPC-H: 1..7 lineitems per order
			for li := 0; li < items; li++ {
				price := int64(1 + g.intn(10_000)) // < Radix
				lnode := g.intn(cfg.Nodes)
				t.Lineitem.Frags[lnode] = append(t.Lineitem.Frags[lnode], query.Row{Key: orderKey, Value: price})
			}
		}
	}
	return t, nil
}

// NewExecutor wires the generated tables into a query executor.
func (t *Tables) NewExecutor(cfg query.Config) (*query.Executor, error) {
	return query.NewExecutor(cfg, t.Customer, t.Orders, t.Lineitem)
}

// RevenuePerCustomer is the three-table chain join aggregated by customer:
//
//	SELECT o.custkey, SUM(l.price)
//	FROM ORDERS o JOIN LINEITEM l ON o.orderkey = l.orderkey
//	GROUP BY o.custkey
//
// (CUSTOMER is keyless here — every order has its customer — so the chain
// starts at ORDERS; see RevenuePerNation for the customer-side join.)
// Encoding: after re-keying ORDERS by orderkey with value custkey×Radix,
// the join with LINEITEM adds the price into the low bits; a final map
// decodes (custkey, price) and the aggregate sums per customer.
func RevenuePerCustomer() query.Node {
	ordersByOrder := &query.MapOp{
		Input: &query.Scan{Table: "ORDERS"},
		F: func(r query.Row) query.Row {
			return query.Row{Key: r.Value, Value: r.Key * Radix} // (orderkey, custkey<<20)
		},
	}
	joined := &query.JoinOp{Left: ordersByOrder, Right: &query.Scan{Table: "LINEITEM"}}
	decoded := &query.MapOp{
		Input: joined,
		F: func(r query.Row) query.Row {
			return query.Row{Key: r.Value / Radix, Value: r.Value % Radix} // (custkey, price)
		},
	}
	return &query.AggOp{Input: decoded, Partial: true}
}

// RevenuePerNation rolls customer revenue up to nations
// (nationkey = custkey mod Nations) and additionally verifies each paying
// customer exists by joining CUSTOMER back in.
func RevenuePerNation() query.Node {
	perCustomer := RevenuePerCustomer() // (custkey, revenue)
	// Join with CUSTOMER (value 0) keeps revenue intact and drops any
	// revenue rows without a customer (none, but the join is the point).
	withCustomer := &query.JoinOp{Left: &query.Scan{Table: "CUSTOMER"}, Right: perCustomer}
	byNation := &query.MapOp{
		Input: withCustomer,
		F: func(r query.Row) query.Row {
			return query.Row{Key: r.Key % Nations, Value: r.Value}
		},
	}
	return &query.AggOp{Input: byNation, Partial: true}
}

// OrdersPerCustomer counts orders per customer:
//
//	SELECT custkey, COUNT(*) FROM ORDERS GROUP BY custkey
func OrdersPerCustomer() query.Node {
	ones := &query.MapOp{
		Input: &query.Scan{Table: "ORDERS"},
		F:     func(r query.Row) query.Row { return query.Row{Key: r.Key, Value: 1} },
	}
	return &query.AggOp{Input: ones, Partial: true}
}

// DistinctNations lists the nations that have at least one customer:
//
//	SELECT DISTINCT custkey % 25 FROM CUSTOMER
func DistinctNations() query.Node {
	return &query.DistinctOp{Input: &query.MapOp{
		Input: &query.Scan{Table: "CUSTOMER"},
		F:     func(r query.Row) query.Row { return query.Row{Key: r.Key % Nations, Value: 0} },
	}}
}

// Reference evaluates a plan single-node over the generated tables.
func (t *Tables) Reference(plan query.Node) ([]query.Row, error) {
	return query.Reference(plan, map[string][]query.Row{
		"CUSTOMER": t.Customer.Gather(),
		"ORDERS":   t.Orders.Gather(),
		"LINEITEM": t.Lineitem.Gather(),
	})
}
