package tpch

import (
	"reflect"
	"testing"
	"testing/quick"

	"ccf/internal/placement"
	"ccf/internal/query"
)

func genTables(t *testing.T, n int, customers int64, seed uint64) *Tables {
	t.Helper()
	tb, err := Generate(Config{Nodes: n, Customers: customers, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Nodes: 0, Customers: 10}); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := Generate(Config{Nodes: 4, Customers: 0}); err == nil {
		t.Error("accepted zero customers")
	}
}

func TestGenerateShape(t *testing.T) {
	tb := genTables(t, 4, 50, 1)
	if tb.Customer.Rows() != 50 {
		t.Errorf("customers = %d, want 50", tb.Customer.Rows())
	}
	if tb.Orders.Rows() != 500 {
		t.Errorf("orders = %d, want 500 (10 per customer)", tb.Orders.Rows())
	}
	li := tb.Lineitem.Rows()
	if li < 500 || li > 3500 {
		t.Errorf("lineitems = %d, want 1-7 per order", li)
	}
	// Referential integrity and price bounds.
	orderKeys := map[int64]bool{}
	for _, f := range tb.Orders.Frags {
		for _, r := range f {
			if r.Key < 1 || r.Key > 50 {
				t.Fatalf("order custkey %d outside customers", r.Key)
			}
			orderKeys[r.Value] = true
		}
	}
	for _, f := range tb.Lineitem.Frags {
		for _, r := range f {
			if !orderKeys[r.Key] {
				t.Fatalf("lineitem references unknown order %d", r.Key)
			}
			if r.Value <= 0 || r.Value >= Radix {
				t.Fatalf("price %d outside (0, Radix)", r.Value)
			}
		}
	}
}

func runQuery(t *testing.T, tb *Tables, plan query.Node, sched placement.Scheduler) *query.Result {
	t.Helper()
	exec, err := tb.NewExecutor(query.Config{Nodes: tb.Customer.Nodes(), Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRevenuePerCustomerMatchesReference(t *testing.T) {
	tb := genTables(t, 5, 60, 2)
	plan := RevenuePerCustomer()
	res := runQuery(t, tb, plan, placement.CCF{})
	want, err := tb.Reference(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output.Gather(), query.SortRows(want)) {
		t.Error("distributed revenue-per-customer differs from reference")
	}
	// Every customer has 10 orders with ≥1 lineitem each ⇒ 60 groups.
	if res.Output.Rows() != 60 {
		t.Errorf("groups = %d, want 60", res.Output.Rows())
	}
	// Manual ground truth: revenue per customer = Σ prices of their orders.
	truth := map[int64]int64{}
	custOfOrder := map[int64]int64{}
	for _, f := range tb.Orders.Frags {
		for _, r := range f {
			custOfOrder[r.Value] = r.Key
		}
	}
	for _, f := range tb.Lineitem.Frags {
		for _, r := range f {
			truth[custOfOrder[r.Key]] += r.Value
		}
	}
	for _, row := range res.Output.Gather() {
		if truth[row.Key] != row.Value {
			t.Fatalf("customer %d revenue = %d, manual truth %d", row.Key, row.Value, truth[row.Key])
		}
	}
}

func TestRevenuePerNationMatchesReference(t *testing.T) {
	tb := genTables(t, 4, 60, 3)
	plan := RevenuePerNation()
	res := runQuery(t, tb, plan, placement.CCF{})
	want, err := tb.Reference(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output.Gather(), query.SortRows(want)) {
		t.Error("distributed revenue-per-nation differs from reference")
	}
	if res.Output.Rows() > Nations {
		t.Errorf("nations = %d, want <= %d", res.Output.Rows(), Nations)
	}
	// Nation totals must equal customer totals rolled up.
	perCust := runQuery(t, tb, RevenuePerCustomer(), placement.CCF{})
	nation := map[int64]int64{}
	for _, row := range perCust.Output.Gather() {
		nation[row.Key%Nations] += row.Value
	}
	for _, row := range res.Output.Gather() {
		if nation[row.Key] != row.Value {
			t.Fatalf("nation %d revenue = %d, rollup says %d", row.Key, row.Value, nation[row.Key])
		}
	}
}

func TestOrdersPerCustomer(t *testing.T) {
	tb := genTables(t, 3, 40, 4)
	res := runQuery(t, tb, OrdersPerCustomer(), placement.Hash{})
	if res.Output.Rows() != 40 {
		t.Fatalf("groups = %d, want 40", res.Output.Rows())
	}
	for _, row := range res.Output.Gather() {
		if row.Value != 10 {
			t.Fatalf("customer %d has %d orders, want 10", row.Key, row.Value)
		}
	}
}

func TestDistinctNations(t *testing.T) {
	tb := genTables(t, 3, 100, 5)
	res := runQuery(t, tb, DistinctNations(), placement.Mini{})
	if res.Output.Rows() != Nations {
		t.Errorf("distinct nations = %d, want %d (100 customers cover all)", res.Output.Rows(), Nations)
	}
}

func TestAllQueriesAllSchedulersAgree(t *testing.T) {
	tb := genTables(t, 4, 30, 6)
	for _, plan := range []query.Node{
		RevenuePerCustomer(), RevenuePerNation(), OrdersPerCustomer(), DistinctNations(),
	} {
		var first []query.Row
		for _, s := range []placement.Scheduler{placement.Hash{}, placement.Mini{}, placement.CCF{}} {
			res := runQuery(t, tb, plan, s)
			if first == nil {
				first = res.Output.Gather()
				continue
			}
			if !reflect.DeepEqual(first, res.Output.Gather()) {
				t.Fatalf("schedulers disagree on %T", plan)
			}
		}
	}
}

func TestChainJoinStageCount(t *testing.T) {
	// RevenuePerCustomer has two network stages (join, aggregate);
	// RevenuePerNation adds a second join and another aggregate.
	tb := genTables(t, 4, 30, 7)
	if got := len(runQuery(t, tb, RevenuePerCustomer(), placement.CCF{}).Stages); got != 2 {
		t.Errorf("revenue-per-customer stages = %d, want 2", got)
	}
	if got := len(runQuery(t, tb, RevenuePerNation(), placement.CCF{}).Stages); got != 4 {
		t.Errorf("revenue-per-nation stages = %d, want 4", got)
	}
}

func TestGenerateDeterministicProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a, err := Generate(Config{Nodes: 3, Customers: 20, Seed: seed})
		if err != nil {
			return false
		}
		b, err := Generate(Config{Nodes: 3, Customers: 20, Seed: seed})
		if err != nil {
			return false
		}
		return reflect.DeepEqual(a.Lineitem.Gather(), b.Lineitem.Gather())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
