// Package service turns the streaming co-optimizer (core.OnlineEngine) into
// a crash-safe long-lived daemon: a pool of single-goroutine shards, each
// wrapping one engine behind a bounded queue, with admission control,
// graceful degradation under load, and write-ahead logging plus periodic
// atomic snapshots so a killed daemon restarts mid-trace and resumes
// byte-identical decisions.
//
// Robustness model (the "degradation ladder", DESIGN.md §13):
//
//	normal    → full co-optimized decision: advance the live simulation to
//	            the arrival, read the in-flight backlog, place against it.
//	degraded  → queue wait crossed Config.DegradeAfter: the job is placed
//	            against an idle network (the backlog probe — the expensive
//	            step — is skipped) and the response says so. A degraded
//	            answer in 1 ms beats an exact one after the client gave up.
//	shed      → queue full: the submission is rejected immediately with
//	            ErrOverloaded (HTTP 429 + Retry-After); nothing enters the
//	            engine, so the daemon's memory stays bounded by queue depth.
//	deadline  → the request's context expired before its turn: it is
//	            dropped un-admitted with context.DeadlineExceeded, so a
//	            slow simulation step can never wedge a client.
//
// Determinism contract: every admitted job's *effective* record — arrival
// after any lifting, degraded flag after any shedding decision — is appended
// to the shard's write-ahead log before the client sees the decision, and
// snapshots are just compacted prefixes of that log plus a state digest.
// Because the engine is deterministic, replaying snapshot + WAL rebuilds
// bit-identical engine state, which the digest verifies at restore and
// TestKillRestartDeterminism pins end to end.
package service

import (
	"errors"
	"fmt"

	"ccf/internal/coflow"
	"ccf/internal/core"
	"ccf/internal/partition"
	"ccf/internal/placement"
	"ccf/internal/workload"
)

// JobSpec is the wire format of one job submission, and — with Arrival
// resolved and PlacementOnly reflecting the shedding decision actually
// taken — the record format of the write-ahead log and snapshots. Exactly
// one of Gen or Chunks describes the data to redistribute.
type JobSpec struct {
	// Key routes the job to a shard (hashed); empty means Name.
	Key string `json:"key,omitempty"`
	// Name labels the job in decisions and telemetry.
	Name string `json:"name"`
	// Arrival is the job's arrival time on its shard's simulation clock,
	// in seconds. Omitted (null) means "now": the daemon assigns the
	// shard's current clock. An arrival behind the shard clock — concurrent
	// intake reorders submissions — is lifted to the clock and the decision
	// reports Lifted.
	Arrival *float64 `json:"arrival,omitempty"`
	// Placer selects the placement scheduler: "" or "ccf" (co-optimizing),
	// "hash", "mini".
	Placer string `json:"placer,omitempty"`
	// HandleSkew applies partial duplication before placement (only
	// meaningful for generated workloads, which carry skew metadata).
	HandleSkew bool `json:"handle_skew,omitempty"`
	// PlacementOnly requests the degraded path explicitly: place against an
	// idle network, skip the backlog probe. The daemon also sets this on
	// jobs it sheds under load, and the effective value is journaled.
	PlacementOnly bool `json:"placement_only,omitempty"`
	// Gen generates a synthetic workload server-side (deterministic in the
	// config, so it is journal-friendly: the WAL stores the spec, not the
	// expanded matrix).
	Gen *workload.Config `json:"gen,omitempty"`
	// Chunks is an explicit chunk matrix: Chunks[i][k] = bytes of partition
	// k on node i. len(Chunks) must equal the pool's node count.
	Chunks [][]int64 `json:"chunks,omitempty"`
}

// RouteKey returns the shard-routing key (Key, falling back to Name).
func (s *JobSpec) RouteKey() string {
	if s.Key != "" {
		return s.Key
	}
	return s.Name
}

// ErrBadJob wraps every job validation failure (HTTP 400).
var ErrBadJob = errors.New("service: invalid job")

// validate checks a spec against the pool's fabric size and normalises the
// generator config (fills Nodes) so the journaled record is self-contained.
func (s *JobSpec) validate(nodes int) error {
	if s.Name == "" {
		return fmt.Errorf("%w: missing name", ErrBadJob)
	}
	if s.Arrival != nil && *s.Arrival < 0 {
		return fmt.Errorf("%w: negative arrival %g", ErrBadJob, *s.Arrival)
	}
	if (s.Gen == nil) == (s.Chunks == nil) {
		return fmt.Errorf("%w: exactly one of gen/chunks required", ErrBadJob)
	}
	if _, err := placerByName(s.Placer); err != nil {
		return err
	}
	if s.Gen != nil {
		if s.Gen.Nodes == 0 {
			s.Gen.Nodes = nodes
		}
		if s.Gen.Nodes != nodes {
			return fmt.Errorf("%w: gen spans %d nodes, pool spans %d", ErrBadJob, s.Gen.Nodes, nodes)
		}
		return nil
	}
	if len(s.Chunks) != nodes {
		return fmt.Errorf("%w: chunk matrix has %d rows, pool spans %d nodes", ErrBadJob, len(s.Chunks), nodes)
	}
	p := len(s.Chunks[0])
	if p == 0 {
		return fmt.Errorf("%w: chunk matrix has no partitions", ErrBadJob)
	}
	for i, row := range s.Chunks {
		if len(row) != p {
			return fmt.Errorf("%w: chunk row %d has %d partitions, row 0 has %d", ErrBadJob, i, len(row), p)
		}
		for k, v := range row {
			if v < 0 {
				return fmt.Errorf("%w: negative chunk (%d,%d) = %d", ErrBadJob, i, k, v)
			}
		}
	}
	return nil
}

// placerByName resolves the placement scheduler registry. Only
// deterministic placers are admitted — the WAL replays them.
func placerByName(name string) (placement.Scheduler, error) {
	switch name {
	case "", "ccf":
		return placement.CCF{}, nil
	case "hash":
		return placement.Hash{}, nil
	case "mini":
		return placement.Mini{}, nil
	}
	return nil, fmt.Errorf("%w: unknown placer %q (want ccf, hash or mini)", ErrBadJob, name)
}

// netSchedByName resolves the network (coflow) scheduler registry. Each
// call constructs a fresh instance: schedulers carry per-simulation state
// and must never be shared across shard engines.
func netSchedByName(name string) (coflow.Scheduler, error) {
	switch name {
	case "", "varys":
		return coflow.NewVarys(), nil
	case "aalo":
		return coflow.NewAalo(), nil
	case "fifo":
		return coflow.NewFIFO(), nil
	case "scf":
		return coflow.NewSCF(), nil
	case "ncf":
		return coflow.NewNCF(), nil
	}
	return nil, fmt.Errorf("service: unknown network scheduler %q (want varys, aalo, fifo, scf or ncf)", name)
}

// materialize expands a resolved spec (Arrival non-nil) into the engine's
// job form. Generation is deterministic in the spec, so journal replay
// reproduces the exact job the live path admitted.
func materialize(spec *JobSpec, nodes int) (core.OnlineJob, error) {
	if spec.Arrival == nil {
		return core.OnlineJob{}, fmt.Errorf("service: internal: materialize before arrival resolution")
	}
	placer, err := placerByName(spec.Placer)
	if err != nil {
		return core.OnlineJob{}, err
	}
	var w *workload.Workload
	if spec.Gen != nil {
		w, err = workload.Generate(*spec.Gen)
		if err != nil {
			return core.OnlineJob{}, fmt.Errorf("%w: gen: %v", ErrBadJob, err)
		}
	} else {
		p := len(spec.Chunks[0])
		m, err := partition.NewChunkMatrix(nodes, p)
		if err != nil {
			return core.OnlineJob{}, fmt.Errorf("%w: %v", ErrBadJob, err)
		}
		for i, row := range spec.Chunks {
			copy(m.Row(i), row)
		}
		w = &workload.Workload{Chunks: m, SkewPartition: -1}
	}
	return core.OnlineJob{
		Name:          spec.Name,
		Arrival:       *spec.Arrival,
		Workload:      w,
		Scheduler:     placer,
		HandleSkew:    spec.HandleSkew,
		PlacementOnly: spec.PlacementOnly,
	}, nil
}

// Decision is the daemon's response to one admitted job.
type Decision struct {
	Name  string `json:"name"`
	Key   string `json:"key"`
	Shard int    `json:"shard"`
	// Seq is the shard-local admission sequence number (1-based); it is the
	// job's position in the shard's WAL.
	Seq uint64 `json:"seq"`
	// Arrival is the effective arrival on the shard clock (after lifting).
	Arrival float64 `json:"arrival"`
	// Lifted reports that the submitted arrival was behind the shard clock
	// (or omitted) and was raised to it.
	Lifted bool `json:"lifted,omitempty"`
	// Degraded reports the placement-only path: the decision did not see
	// the in-flight backlog, either because the client asked or because the
	// shard was shedding load.
	Degraded bool `json:"degraded,omitempty"`
	// Placement assigns each partition its destination node.
	Placement []int `json:"placement"`
	// BacklogEgress/BacklogIngress are the per-port in-flight bytes the
	// placement saw (co-optimized, non-degraded decisions only).
	BacklogEgress  []int64 `json:"backlog_egress,omitempty"`
	BacklogIngress []int64 `json:"backlog_ingress,omitempty"`
	// Completed counts jobs already finished on this shard's fabric when
	// this one arrived.
	Completed int `json:"completed"`
	// Clock is the shard's simulation clock after this admission.
	Clock float64 `json:"clock"`
}

// hashKey is 32-bit FNV-1a, the shard routing hash. Fixed here (not
// hash/maphash) because routing must be stable across restarts: the WAL of
// shard i must replay into shard i.
func hashKey(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
