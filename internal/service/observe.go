package service

// Observability wiring for the pool: metric registration, per-shard
// instruments, structured logging. Everything here follows the PR 3
// overhead contract — a zero Observability config keeps every hot path on
// its original shape (one nil check, zero allocations, no extra clock
// reads), and enabling metrics must not perturb decisions: instruments
// record what the shard already computed, never feed anything back into
// admission or placement.

import (
	"context"
	"log/slog"
	"math"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ccf/internal/metrics"
)

// Observability selects the daemon's instrumentation surfaces. The zero
// value disables all of them.
type Observability struct {
	// Metrics, when non-nil, receives the daemon's instruments; serve it
	// with Registry.Handler (the daemon mounts it at GET /metrics).
	Metrics *metrics.Registry
	// TraceDepth bounds each shard's ring of completed per-job lifecycle
	// traces (GET /v1/trace). 0 disables tracing.
	TraceDepth int
	// Log, when non-nil, receives structured log lines: per-decision at
	// Debug, shed/reject at Debug, fence and WAL failures at Error.
	Log *slog.Logger
}

func (o Observability) enabled() bool {
	return o.Metrics != nil || o.TraceDepth > 0 || o.Log != nil
}

// shardObs is one shard's instrumentation bundle. A nil *shardObs means
// observability is fully off; inside, each surface is independently nil.
type shardObs struct {
	birth time.Time
	log   *slog.Logger

	admitted      *metrics.Counter
	replayed      *metrics.Counter
	shed          *metrics.Counter
	degraded      *metrics.Counter
	lifted        *metrics.Counter
	deadlineDrops *metrics.Counter
	rejected      *metrics.Counter
	walFailures   *metrics.Counter
	groupCommits  *metrics.Counter
	walSyncs      *metrics.Counter

	decisionLatency *metrics.Histogram
	queueWait       *metrics.Histogram
	walAppend       *metrics.Histogram
	snapshotWrite   *metrics.Histogram
	batchSize       *metrics.Histogram
	walGroupRecords *metrics.Histogram

	// Per-port backlog mirrors: the run loop samples the live session after
	// each admission (BacklogInto is engine-goroutine-only) and publishes
	// through these atomics; gauge funcs read them at scrape time, so a
	// scrape never touches the shard goroutine.
	egBacklog, inBacklog []atomic.Int64
	egBuf, inBuf         []int64

	traces *traceRing
}

// initObs builds the shard's instruments. Called once from NewPool, before
// Start, so registration races nothing.
func (sh *shard) initObs(obs Observability, birth time.Time) {
	if !obs.enabled() {
		return
	}
	o := &shardObs{birth: birth, log: obs.Log}
	if obs.TraceDepth > 0 {
		o.traces = newTraceRing(obs.TraceDepth)
	}
	if r := obs.Metrics; r != nil {
		lbl := metrics.L("shard", strconv.Itoa(sh.id))
		o.admitted = r.Counter("ccfd_jobs_admitted_total", "Jobs admitted (journaled decisions), including jobs replayed at restore.", lbl...)
		o.replayed = r.Counter("ccfd_jobs_replayed_total", "Jobs re-admitted from snapshot+WAL at restore.", lbl...)
		o.shed = r.Counter("ccfd_jobs_shed_total", "Submissions bounced by a full queue.", lbl...)
		o.degraded = r.Counter("ccfd_jobs_degraded_total", "Jobs pushed onto the placement-only path by queue pressure.", lbl...)
		o.lifted = r.Counter("ccfd_jobs_lifted_total", "Jobs whose arrival was lifted to the shard clock.", lbl...)
		o.deadlineDrops = r.Counter("ccfd_jobs_deadline_dropped_total", "Queued jobs dropped because the client deadline passed before processing.", lbl...)
		o.rejected = r.Counter("ccfd_jobs_rejected_total", "Jobs the engine rejected (invalid specs).", lbl...)
		o.walFailures = r.Counter("ccfd_wal_failures_total", "Journal append or snapshot failures (each fences the shard).", lbl...)
		o.groupCommits = r.Counter("ccfd_wal_group_commits_total", "WAL group commits (one physical write per admission batch).", lbl...)
		o.walSyncs = r.Counter("ccfd_wal_syncs_total", "WAL fsyncs issued (at most one per group commit with -wal-sync).", lbl...)

		o.decisionLatency = r.Histogram("ccfd_decision_latency_seconds", "End-to-end decision latency, enqueue to reply.", nil, lbl...)
		o.queueWait = r.Histogram("ccfd_queue_wait_seconds", "Time a job sat in the shard queue before processing.", nil, lbl...)
		o.walAppend = r.Histogram("ccfd_wal_append_seconds", "WAL group-commit latency (all records of a batch, one write, one optional fsync).", nil, lbl...)
		o.snapshotWrite = r.Histogram("ccfd_snapshot_write_seconds", "Snapshot write+rename latency (the WAL compaction point).", nil, lbl...)
		batchBuckets := []float64{1, 2, 4, 8, 16, 32, 64, 128}
		o.batchSize = r.Histogram("ccfd_batch_size_jobs", "Jobs drained per shard loop iteration (the admission batch).", batchBuckets, lbl...)
		o.walGroupRecords = r.Histogram("ccfd_wal_group_records", "Records per WAL group commit — jobs amortized per fsync.", batchBuckets, lbl...)

		r.GaugeFunc("ccfd_queue_depth", "Jobs waiting in the shard queue.", func() float64 { return float64(len(sh.queue)) }, lbl...)
		r.GaugeFunc("ccfd_queue_capacity", "Shard queue capacity.", func() float64 { return float64(cap(sh.queue)) }, lbl...)
		r.GaugeFunc("ccfd_shard_ready", "1 when the shard is restored, un-fenced and accepting work.", func() float64 {
			if sh.ready.Load() {
				return 1
			}
			return 0
		}, lbl...)
		r.GaugeFunc("ccfd_engine_clock_seconds", "The shard engine's logical clock (latest admitted arrival).", func() float64 {
			return math.Float64frombits(sh.pubClock.Load())
		}, lbl...)
		r.GaugeFunc("ccfd_jobs_completed", "Jobs whose transfers had finished at the last session advance.", func() float64 {
			return float64(sh.pubCompleted.Load())
		}, lbl...)
		r.GaugeFunc("ccfd_snapshot_age_jobs", "Admitted jobs not yet covered by a snapshot (WAL length).", func() float64 {
			return float64(sh.pubSeq.Load() - sh.snapSeqPub.Load())
		}, lbl...)
		r.GaugeFunc("ccfd_snapshot_age_seconds", "Seconds since the shard's last committed snapshot (0 before the first).", func() float64 {
			at := sh.snapAtNanos.Load()
			if at == 0 {
				return 0
			}
			return time.Since(time.Unix(0, at)).Seconds()
		}, lbl...)

		n := sh.cfg.Nodes
		o.egBacklog = make([]atomic.Int64, n)
		o.inBacklog = make([]atomic.Int64, n)
		o.egBuf = make([]int64, n)
		o.inBuf = make([]int64, n)
		for port := 0; port < n; port++ {
			eg, in := &o.egBacklog[port], &o.inBacklog[port]
			pl := metrics.L("shard", strconv.Itoa(sh.id), "port", strconv.Itoa(port))
			r.GaugeFunc("ccfd_port_backlog_bytes", "Per-port in-flight bytes on the shard's fabric, sampled after each admission.",
				func() float64 { return float64(eg.Load()) }, append(pl, metrics.Label{Name: "dir", Value: "egress"})...)
			r.GaugeFunc("ccfd_port_backlog_bytes", "Per-port in-flight bytes on the shard's fabric, sampled after each admission.",
				func() float64 { return float64(in.Load()) }, append(pl, metrics.Label{Name: "dir", Value: "ingress"})...)
		}
	}
	sh.obs = o
}

// sampleBacklog publishes the live session's per-port backlog into the
// scrape mirrors. Run-loop only.
func (sh *shard) sampleBacklog() {
	o := sh.obs
	if o == nil || o.egBacklog == nil {
		return
	}
	if err := sh.eng.BacklogInto(o.egBuf, o.inBuf); err != nil {
		return
	}
	for i := range o.egBuf {
		o.egBacklog[i].Store(o.egBuf[i])
		o.inBacklog[i].Store(o.inBuf[i])
	}
}

// jobAdmitted records the full lifecycle of one successful admission:
// histograms, the span-ring entry, and a Debug log line. batch is the size
// of the admission batch the job rode in; the journal span covers the
// batch's shared group commit (it ends at the same instant for every job in
// the batch).
func (o *shardObs) jobAdmitted(spec *JobSpec, shardID int, seq uint64, enq, start, decide, journal, done time.Time, lifted bool, batch int) {
	o.queueWait.Observe(start.Sub(enq).Seconds())
	o.decisionLatency.Observe(done.Sub(enq).Seconds())
	id := traceID(shardID, seq)
	if o.traces != nil {
		rel := func(t time.Time) float64 { return t.Sub(o.birth).Seconds() }
		o.traces.add(JobTrace{
			ID: id, Name: spec.Name, Key: spec.RouteKey(),
			Shard: shardID, Seq: seq, Outcome: "ok",
			Lifted: lifted, Degraded: spec.PlacementOnly, Batch: batch,
			Spans: []TraceSpan{
				{Name: "queue", Start: rel(enq), Dur: start.Sub(enq).Seconds()},
				{Name: "decide", Start: rel(start), Dur: decide.Sub(start).Seconds()},
				{Name: "journal", Start: rel(decide), Dur: journal.Sub(decide).Seconds()},
				{Name: "reply", Start: rel(journal), Dur: done.Sub(journal).Seconds()},
			},
		})
	}
	if o.log != nil {
		o.log.LogAttrs(context.Background(), slog.LevelDebug, "decision",
			slog.String("trace_id", id), slog.String("job", spec.Name),
			slog.Int("shard", shardID), slog.Uint64("seq", seq),
			slog.Bool("lifted", lifted), slog.Bool("degraded", spec.PlacementOnly),
			slog.Int("batch", batch),
			slog.Duration("latency", done.Sub(enq)))
	}
}

// jobFailed records a submission that never became a decision.
func (o *shardObs) jobFailed(spec *JobSpec, shardID int, outcome string, err error) {
	if o.log != nil {
		o.log.LogAttrs(context.Background(), slog.LevelDebug, "submission failed",
			slog.String("job", spec.Name), slog.Int("shard", shardID),
			slog.String("outcome", outcome), slog.Any("error", err))
	}
}

// traceID is the correlation ID stamped through logs, spans and the
// X-Ccfd-Trace-Id response header. It is derived from (shard, seq) — both
// already deterministic and already inside the Decision body — so tracing
// adds no new entropy and decision bytes stay identical with tracing on or
// off.
func traceID(shard int, seq uint64) string {
	return "s" + strconv.Itoa(shard) + "-" + strconv.FormatUint(seq, 10)
}

// registerPoolMetrics installs the pool-wide families: identity, uptime,
// build info.
func (p *Pool) registerPoolMetrics() {
	r := p.cfg.Obs.Metrics
	if r == nil {
		return
	}
	r.Gauge("ccfd_up", "Always 1 while the daemon serves.").Set(1)
	r.Gauge("ccfd_shards", "Number of engine shards.").Set(float64(len(p.shards)))
	r.GaugeFunc("ccfd_uptime_seconds", "Seconds since the pool was constructed.", func() float64 {
		return time.Since(p.birth).Seconds()
	})
	r.GaugeFunc("ccfd_gomaxprocs", "Scheduler parallelism (GOMAXPROCS).", func() float64 {
		return float64(runtime.GOMAXPROCS(0))
	})
	bi := buildInfo()
	r.Gauge("ccfd_build_info", "Build identity; the value is always 1.",
		metrics.L("version", bi.Version, "go_version", bi.GoVersion)...).Set(1)
}

// BuildInfo is the /stats build block.
type BuildInfo struct {
	Version    string `json:"version"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

var buildVersion = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "(unknown)"
})

func buildInfo() BuildInfo {
	return BuildInfo{
		Version:    buildVersion(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}
