package service

// One shard = one core.OnlineEngine owned by one goroutine, fed by a bounded
// queue. Single ownership is the concurrency story: the engine, the WAL
// writer and the admitted-spec history are touched only by the run loop, so
// there is no lock around the simulator at all. Everything the HTTP layer
// reads concurrently (/stats, /readyz) is published through atomics; the
// only cross-goroutine handshakes are the queue itself, a small control
// channel for snapshot/state requests, and per-request reply channels.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ccf/internal/core"
)

// Submission failure modes, mapped to HTTP statuses by the handler.
var (
	// ErrOverloaded: the shard queue is full; retry after backing off (429).
	ErrOverloaded = errors.New("service: shard queue full")
	// ErrDraining: the daemon is shutting down gracefully (503).
	ErrDraining = errors.New("service: daemon draining")
	// ErrKilled: the daemon was killed with requests still queued (503).
	ErrKilled = errors.New("service: daemon killed")
	// ErrShardFailed: the shard could not persist its journal and has
	// fenced itself off — its in-memory state is ahead of its log, so
	// accepting more work would break the restore contract (503).
	ErrShardFailed = errors.New("service: shard persistence failed")
)

// ShedError is the typed overload rejection: it unwraps to ErrOverloaded
// (statusFor still maps it to 429) and carries the shedding shard plus its
// journal sequence so the HTTP layer can derive a deterministic Retry-After
// jitter — different shards shedding at the same instant hand out different
// backoffs, without any global randomness that would break replay tests.
type ShedError struct {
	Shard int
	Seq   uint64
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("service: shard %d queue full", e.Shard)
}

func (e *ShedError) Unwrap() error { return ErrOverloaded }

// request is one queued submission.
type request struct {
	spec  JobSpec
	ctx   context.Context
	enq   time.Time
	reply chan reply // buffered(1): the shard never blocks on a gone client
}

type reply struct {
	dec *Decision
	err error
}

// control messages reach the run loop out of band (not subject to queue
// admission) so tests and operators can force snapshots and read state
// digests without racing the engine.
type control struct {
	kind  int // ctlSnapshot or ctlState
	reply chan ctlReply
}

const (
	ctlSnapshot = iota
	ctlState
)

type ctlReply struct {
	state ShardState
	err   error
}

// ShardState is the engine-owned state exposed for determinism checks.
type ShardState struct {
	Shard     int     `json:"shard"`
	Seq       uint64  `json:"seq"`
	Clock     float64 `json:"clock"`
	Completed int     `json:"completed"`
	Digest    uint64  `json:"digest"`
}

type shard struct {
	id  int
	cfg *Config
	eng *core.OnlineEngine
	wal *walWriter // nil when persistence is off
	// seq counts admitted jobs (1-based WAL sequence); snapSeq is seq at
	// the last committed snapshot. Run-loop-owned.
	seq, snapSeq uint64
	// specs is the effective record of every admitted job, in admission
	// order — the snapshot payload. Run-loop-owned.
	specs []JobSpec

	// mu serialises queue sends against the close in drain/kill: senders
	// hold RLock, the closer holds Lock, so no send can hit a closed
	// channel.
	mu       sync.RWMutex
	queue    chan *request
	ctl      chan control
	draining bool

	done  chan struct{} // closed when the run loop exits
	crash atomic.Bool   // kill switch: skip processing and the final snapshot

	ready  atomic.Bool
	failed atomic.Bool // persistence failure fence

	// Published mirrors of run-loop state, read lock-free by /stats.
	pubSeq          atomic.Uint64
	pubClock        atomic.Uint64 // math.Float64bits
	pubCompleted    atomic.Uint64
	shed            atomic.Uint64
	degraded        atomic.Uint64
	lifted          atomic.Uint64
	deadlineDrop    atomic.Uint64
	rejected        atomic.Uint64 // engine-level rejections (bad jobs)
	pubBatches      atomic.Uint64 // processed admission batches
	pubGroupCommits atomic.Uint64 // WAL group commits (physical writes)
	pubWALSyncs     atomic.Uint64 // WAL fsyncs issued
	snapSeqPub      atomic.Uint64
	snapAtNanos     atomic.Int64

	// batchBuf and entriesBuf are the run loop's reusable batch scratch:
	// drained requests and their held-back admission results. Run-loop-owned.
	batchBuf   []*request
	entriesBuf []batchEntry

	lat latencyRing

	// obs is the shard's instrumentation bundle; nil when observability is
	// off, which keeps every hot path at one pointer check and zero extra
	// allocations (pinned by TestDisabledObservabilityZeroAllocs).
	obs *shardObs
}

// latencyRing keeps the most recent decision latencies for percentile
// reporting; a bounded window so /stats reflects current behaviour, not the
// daemon's lifetime average.
type latencyRing struct {
	mu  sync.Mutex
	buf [2048]float64 // seconds
	pos int
	n   int
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.pos] = d.Seconds()
	r.pos = (r.pos + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// snapshotValues copies the window for percentile math.
func (r *latencyRing) snapshotValues() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, r.n)
	if r.n == len(r.buf) {
		copy(out, r.buf[r.pos:])
		copy(out[len(r.buf)-r.pos:], r.buf[:r.pos])
	} else {
		copy(out, r.buf[:r.n])
	}
	return out
}

func newShard(id int, cfg *Config) *shard {
	return &shard{
		id:    id,
		cfg:   cfg,
		queue: make(chan *request, cfg.QueueDepth),
		ctl:   make(chan control),
		done:  make(chan struct{}),
	}
}

// restore rebuilds the engine from disk: snapshot (if any) replayed and
// digest-verified, then the WAL suffix. Called once, before the run loop
// starts, from Pool.Start.
func (sh *shard) restore() error {
	eng, err := sh.cfg.Engine.newEngine(sh.cfg.Nodes)
	if err != nil {
		return err
	}
	sh.eng = eng
	if sh.cfg.Dir == "" {
		return nil
	}

	snap, err := readSnapshotFile(snapshotPath(sh.cfg.Dir, sh.id))
	if err != nil {
		return fmt.Errorf("shard %d: snapshot: %w", sh.id, err)
	}
	if snap != nil {
		if snap.Shard != sh.id || snap.Nodes != sh.cfg.Nodes || snap.Engine != sh.cfg.Engine {
			return fmt.Errorf("%w: shard %d: snapshot is for shard=%d nodes=%d engine=%+v",
				ErrSnapshotMismatch, sh.id, snap.Shard, snap.Nodes, snap.Engine)
		}
		for i := range snap.Jobs {
			if err := sh.replayJob(&snap.Jobs[i]); err != nil {
				return fmt.Errorf("shard %d: snapshot job %d: %w", sh.id, i, err)
			}
		}
		if got := sh.eng.StateDigest(); got != snap.Digest {
			return fmt.Errorf("%w: shard %d: replayed digest %016x, snapshot recorded %016x",
				ErrSnapshotMismatch, sh.id, got, snap.Digest)
		}
		sh.snapSeq = snap.Seq
		sh.snapSeqPub.Store(snap.Seq)
	}

	_, torn, err := replayWAL(walPath(sh.cfg.Dir, sh.id), sh.seq, func(seq uint64, spec *JobSpec) error {
		return sh.replayJob(spec)
	})
	if err != nil {
		return fmt.Errorf("shard %d: wal: %w", sh.id, err)
	}
	_ = torn // a torn tail was never acknowledged; dropping it is correct

	sh.wal, err = openWAL(walPath(sh.cfg.Dir, sh.id), sh.cfg.WALSync)
	if err != nil {
		return fmt.Errorf("shard %d: wal: %w", sh.id, err)
	}
	if torn || sh.seq > sh.snapSeq {
		// Re-establish the invariant "WAL holds exactly (snapSeq, seq]":
		// compact the restored state into a fresh snapshot so a torn tail
		// or pre-crash suffix cannot confuse a second restart.
		if err := sh.snapshot(); err != nil {
			return fmt.Errorf("shard %d: post-restore snapshot: %w", sh.id, err)
		}
	}
	sh.publish()
	if sh.obs != nil {
		// Credit restored admissions so the counter resumes monotone across
		// a restart instead of restarting from zero while seq does not.
		sh.obs.admitted.Add(sh.seq)
		sh.obs.replayed.Add(sh.seq)
		sh.sampleBacklog()
	}
	return nil
}

// replayJob re-admits one journaled record. The effective arrival was
// resolved before journaling, so replay bypasses lifting entirely.
func (sh *shard) replayJob(spec *JobSpec) error {
	job, err := materialize(spec, sh.cfg.Nodes)
	if err != nil {
		return err
	}
	if _, err := sh.eng.Submit(job); err != nil {
		return err
	}
	sh.seq++
	sh.specs = append(sh.specs, *spec)
	return nil
}

// run is the shard goroutine: control messages are served between jobs, the
// queue drains until closed, and a graceful close ends with a final
// snapshot. A crash-flagged close abandons the backlog (clients get
// ErrKilled) and skips the snapshot — simulating kill -9 for state purposes
// while keeping in-process tests leak-free.
func (sh *shard) run() {
	defer close(sh.done)
	sh.ready.Store(true)
	for {
		select {
		case c := <-sh.ctl:
			sh.handleControl(c)
			continue
		default:
		}
		select {
		case c := <-sh.ctl:
			sh.handleControl(c)
		case req, ok := <-sh.queue:
			if !ok {
				if !sh.crash.Load() {
					sh.finalSnapshot()
				}
				if sh.wal != nil {
					sh.wal.Close()
				}
				sh.ready.Store(false)
				return
			}
			batch := append(sh.batchBuf[:0], req)
			batch = sh.fillBatch(batch)
			sh.batchBuf = batch
			if sh.crash.Load() {
				for _, r := range batch {
					r.reply <- reply{err: ErrKilled}
				}
				continue
			}
			sh.processBatch(batch)
			if sh.cfg.SnapshotEvery > 0 && sh.seq-sh.snapSeq >= uint64(sh.cfg.SnapshotEvery) {
				sh.trySnapshot()
			}
		}
	}
}

// fillBatch drains queued followers behind the first request of a batch:
// whatever is already waiting is taken without blocking, up to BatchMax.
// When BatchWait > 0 and the queue momentarily empties, the shard lingers
// that long for stragglers before deciding; with the default BatchWait of 0
// batching is purely adaptive — batches form from queue pressure and sparse
// traffic pays zero added latency. A closed queue ends the fill; the outer
// loop observes the close on its next receive.
func (sh *shard) fillBatch(batch []*request) []*request {
	for len(batch) < sh.cfg.BatchMax {
		select {
		case req, ok := <-sh.queue:
			if !ok {
				return batch
			}
			batch = append(batch, req)
		default:
			if sh.cfg.BatchWait <= 0 {
				return batch
			}
			return sh.lingerFill(batch)
		}
	}
	return batch
}

// lingerFill waits up to BatchWait (one deadline for the whole linger) for
// followers to join a non-full batch.
func (sh *shard) lingerFill(batch []*request) []*request {
	timer := time.NewTimer(sh.cfg.BatchWait)
	defer timer.Stop()
	for len(batch) < sh.cfg.BatchMax {
		select {
		case req, ok := <-sh.queue:
			if !ok {
				return batch
			}
			batch = append(batch, req)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

func (sh *shard) handleControl(c control) {
	switch c.kind {
	case ctlSnapshot:
		var err error
		if !sh.failed.Load() {
			err = sh.snapshot()
			if err != nil {
				sh.fence(err)
			}
		} else {
			err = ErrShardFailed
		}
		c.reply <- ctlReply{err: err, state: sh.state()}
	case ctlState:
		c.reply <- ctlReply{state: sh.state()}
	}
}

func (sh *shard) state() ShardState {
	return ShardState{
		Shard:     sh.id,
		Seq:       sh.seq,
		Clock:     sh.eng.Clock(),
		Completed: sh.eng.CompletedJobs(),
		Digest:    sh.eng.StateDigest(),
	}
}

// batchEntry is one admitted job held back for the batch's group commit:
// the reply is only sent once every record in the batch is journaled.
type batchEntry struct {
	req             *request
	dec             *Decision
	seq             uint64
	lifted          bool
	tStart, tDecide time.Time
}

// processBatch admits a drained batch in three phases. Phase 1 decides each
// job in queue order — per-job deadline checks, the degradation ladder,
// arrival resolution (lifting through one engine batch handle, which shares
// a single backlog snapshot per clock instant), engine submit. Submissions
// that fail reply immediately (they never touch the journal); admitted jobs
// are held. Phase 2 journals every admitted record with one group-committed
// WAL append (one write, one fsync): a failure fences the shard and every
// held decision bounces with ErrShardFailed — zero replies acked, the
// batch-wide acked⇒journaled invariant. Phase 3 publishes and releases the
// held replies. Decisions are byte-identical to processing the same queue
// order with BatchMax=1: the engine path is the same per-job sequence, only
// the backlog rescan and the fsync are amortized.
func (sh *shard) processBatch(batch []*request) {
	obs := sh.obs
	eb := sh.eng.BeginBatch()
	entries := sh.entriesBuf[:0]
	for _, req := range batch {
		var tStart time.Time
		if obs != nil {
			tStart = time.Now()
		}
		if req.ctx.Err() != nil {
			// The client's deadline passed while the request sat in the
			// queue; drop it before it touches the engine so the client's
			// 504 is truthful: nothing was admitted.
			sh.deadlineDrop.Add(1)
			if obs != nil {
				obs.deadlineDrops.Inc()
				obs.jobFailed(&req.spec, sh.id, "deadline", context.Cause(req.ctx))
			}
			req.reply <- reply{err: context.Cause(req.ctx)}
			continue
		}
		if sh.failed.Load() {
			req.reply <- reply{err: ErrShardFailed}
			continue
		}

		spec := req.spec // shard-local copy; the effective record being built
		wait := time.Since(req.enq)
		degradedByLoad := sh.cfg.DegradeAfter > 0 && wait > sh.cfg.DegradeAfter
		if degradedByLoad {
			spec.PlacementOnly = true
		}

		lifted := false
		if spec.Arrival == nil {
			now := sh.eng.Clock()
			spec.Arrival = &now
			lifted = true
		}
		job, err := materialize(&spec, sh.cfg.Nodes)
		if err != nil {
			sh.rejected.Add(1)
			if obs != nil {
				obs.rejected.Inc()
				obs.jobFailed(&spec, sh.id, "rejected", err)
			}
			req.reply <- reply{err: err}
			continue
		}
		dec, err := eb.Submit(job)
		if errors.Is(err, core.ErrArrivalOutOfOrder) {
			// Concurrent intake reordered arrivals across clients; the
			// engine rejected loudly (typed, state untouched) and we lift
			// the arrival to the shard clock and resubmit. The lifted
			// arrival is what gets journaled, so replay repeats this exact
			// decision.
			now := sh.eng.Clock()
			spec.Arrival = &now
			job.Arrival = now
			lifted = true
			dec, err = eb.Submit(job)
		}
		if err != nil {
			sh.rejected.Add(1)
			if obs != nil {
				obs.rejected.Inc()
				obs.jobFailed(&spec, sh.id, "rejected", err)
			}
			req.reply <- reply{err: fmt.Errorf("%w: %v", ErrBadJob, err)}
			continue
		}

		sh.seq++
		sh.specs = append(sh.specs, spec)
		var tDecide time.Time
		if obs != nil {
			tDecide = time.Now()
		}
		out := &Decision{
			Name:      spec.Name,
			Key:       spec.RouteKey(),
			Shard:     sh.id,
			Seq:       sh.seq,
			Arrival:   *spec.Arrival,
			Lifted:    lifted,
			Degraded:  spec.PlacementOnly,
			Placement: dec.Placement.Dest,
			Completed: dec.Completed,
			Clock:     sh.eng.Clock(),
		}
		if dec.Backlog.Egress != nil {
			out.BacklogEgress = dec.Backlog.Egress
			out.BacklogIngress = dec.Backlog.Ingress
		}
		entries = append(entries, batchEntry{
			req: req, dec: out, seq: sh.seq, lifted: lifted, tStart: tStart, tDecide: tDecide,
		})
	}
	sh.entriesBuf = entries

	var tGroup time.Time
	if obs != nil {
		tGroup = time.Now()
	}
	if sh.wal != nil && len(entries) > 0 {
		firstSeq := sh.seq - uint64(len(entries)) + 1
		werr := sh.wal.AppendBatch(firstSeq, sh.specs[len(sh.specs)-len(entries):])
		if obs != nil {
			obs.walAppend.Observe(time.Since(tGroup).Seconds())
			obs.walGroupRecords.Observe(float64(len(entries)))
		}
		if werr != nil {
			// The engine admitted jobs the journal did not record: the
			// shard's memory is now ahead of its log, so it fences itself
			// off and acknowledges nothing from this batch rather than hand
			// out decisions a restart would disown.
			sh.fence(werr)
			for i := range entries {
				entries[i].req.reply <- reply{err: fmt.Errorf("%w: %v", ErrShardFailed, werr)}
			}
			return
		}
	}
	var tJournal time.Time
	if obs != nil {
		tJournal = time.Now()
	}

	sh.pubBatches.Add(1)
	for i := range entries {
		e := &entries[i]
		if e.dec.Degraded {
			sh.degraded.Add(1)
		}
		if e.lifted {
			sh.lifted.Add(1)
		}
	}
	sh.publish()
	if obs != nil {
		obs.batchSize.Observe(float64(len(batch)))
		if sh.wal != nil && len(entries) > 0 {
			obs.groupCommits.Inc()
			if sh.cfg.WALSync {
				obs.walSyncs.Inc()
			}
		}
	}
	for i := range entries {
		e := &entries[i]
		sh.lat.record(time.Since(e.req.enq))
		if obs != nil {
			tDone := time.Now()
			obs.admitted.Inc()
			if e.dec.Degraded {
				obs.degraded.Inc()
			}
			if e.lifted {
				obs.lifted.Inc()
			}
			spec := &sh.specs[len(sh.specs)-int(sh.seq-e.seq)-1]
			obs.jobAdmitted(spec, sh.id, e.seq, e.req.enq, e.tStart, e.tDecide, tJournal, tDone, e.lifted, len(batch))
		}
		e.req.reply <- reply{dec: e.dec}
	}
	if obs != nil && len(entries) > 0 {
		sh.sampleBacklog()
	}
}

// fence marks the shard failed: readiness drops, submissions bounce. The
// in-memory engine is ahead of the journal at this point, so serving more
// decisions would hand out state a restart could not reproduce.
func (sh *shard) fence(err error) {
	sh.cfg.Logf("service: shard %d fenced: %v", sh.id, err)
	if sh.obs != nil {
		sh.obs.walFailures.Inc()
		if sh.obs.log != nil {
			sh.obs.log.LogAttrs(context.Background(), slog.LevelError, "shard fenced",
				slog.Int("shard", sh.id), slog.Any("error", err))
		}
	}
	sh.failed.Store(true)
	sh.ready.Store(false)
}

// publish mirrors run-loop state into the atomics /stats reads.
func (sh *shard) publish() {
	sh.pubSeq.Store(sh.seq)
	sh.pubClock.Store(math.Float64bits(sh.eng.Clock()))
	sh.pubCompleted.Store(uint64(sh.eng.CompletedJobs()))
	if sh.wal != nil {
		sh.pubGroupCommits.Store(sh.wal.groupCommits)
		sh.pubWALSyncs.Store(sh.wal.syncs)
	}
}

// snapshot compacts the journal: write the full state atomically, then
// truncate the WAL (snapshot rename is the commit point — see snapshot.go).
func (sh *shard) snapshot() error {
	if sh.cfg.Dir == "" {
		return nil
	}
	snap := &Snapshot{
		Shard:  sh.id,
		Nodes:  sh.cfg.Nodes,
		Engine: sh.cfg.Engine,
		Seq:    sh.seq,
		Clock:  sh.eng.Clock(),
		Digest: sh.eng.StateDigest(),
		Jobs:   sh.specs,
	}
	var begin time.Time
	if sh.obs != nil {
		begin = time.Now()
	}
	if err := writeSnapshotFile(snapshotPath(sh.cfg.Dir, sh.id), snap); err != nil {
		return err
	}
	if sh.obs != nil {
		sh.obs.snapshotWrite.Observe(time.Since(begin).Seconds())
	}
	sh.snapSeq = sh.seq
	sh.snapSeqPub.Store(sh.seq)
	sh.snapAtNanos.Store(time.Now().UnixNano())
	if sh.wal != nil {
		if err := sh.wal.Truncate(); err != nil {
			return err
		}
	}
	return nil
}

// trySnapshot is the periodic variant: a failure fences the shard instead
// of propagating (the job that triggered it was already acknowledged).
func (sh *shard) trySnapshot() {
	if sh.failed.Load() {
		return
	}
	if err := sh.snapshot(); err != nil {
		sh.fence(err)
	}
}

// finalSnapshot runs at graceful shutdown, after the queue drained.
func (sh *shard) finalSnapshot() {
	if sh.failed.Load() || sh.seq == sh.snapSeq {
		return
	}
	sh.trySnapshot()
}

// trySubmit enqueues a request without blocking: ErrOverloaded when the
// queue is full, ErrDraining/ErrKilled when the shard stopped accepting.
func (sh *shard) trySubmit(req *request) error {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.draining {
		if sh.crash.Load() {
			return ErrKilled
		}
		return ErrDraining
	}
	if sh.failed.Load() {
		return ErrShardFailed
	}
	select {
	case sh.queue <- req:
		return nil
	default:
		sh.shed.Add(1)
		if sh.obs != nil {
			sh.obs.shed.Inc()
		}
		return &ShedError{Shard: sh.id, Seq: sh.pubSeq.Load()}
	}
}

// closeIntake stops new submissions and lets the run loop drain out (or
// abandon, when crash was set first).
func (sh *shard) closeIntake() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.draining {
		return
	}
	sh.draining = true
	close(sh.queue)
}

// overloaded reports a full queue — the readiness probe's view of pressure.
func (sh *shard) overloaded() bool {
	return len(sh.queue) >= cap(sh.queue)
}
