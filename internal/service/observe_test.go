package service

// Observability tests: the latency ring's wrap-around boundary, the
// zero-overhead contract of the disabled path, Prometheus exposition
// validity under concurrent load (with counter monotonicity across
// scrapes), the per-job trace endpoints (including Chrome trace-event
// structure), and kill/restart determinism with observability enabled —
// instruments must record the stream without perturbing a single decision
// byte.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ccf/internal/metrics"
)

func TestLatencyRingWrapAround(t *testing.T) {
	size := len((&latencyRing{}).buf)
	cases := []int{0, 1, size - 1, size, size + 1, size + 37, 3 * size}
	for _, total := range cases {
		var r latencyRing
		for i := 0; i < total; i++ {
			r.record(time.Duration(i+1) * time.Microsecond)
		}
		got := r.snapshotValues()
		want := total
		if want > size {
			want = size
		}
		if len(got) != want {
			t.Fatalf("total=%d: window has %d samples, want %d", total, len(got), want)
		}
		// The window must hold exactly the most recent `want` recordings,
		// oldest first — the wrap copy in snapshotValues is what is under
		// test here.
		for i, v := range got {
			exp := (time.Duration(total-want+i+1) * time.Microsecond).Seconds()
			if v != exp {
				t.Fatalf("total=%d: window[%d] = %g, want %g", total, i, v, exp)
			}
		}
	}
}

func TestTraceRingFindAndWrap(t *testing.T) {
	r := newTraceRing(4)
	for i := 1; i <= 6; i++ {
		r.add(JobTrace{ID: traceID(0, uint64(i)), Name: fmt.Sprintf("job-%d", i), Seq: uint64(i)})
	}
	if got := r.snapshot(); len(got) != 4 || got[0].Seq != 3 || got[3].Seq != 6 {
		t.Fatalf("trace window = %+v", got)
	}
	if _, ok := r.find("job-1"); ok {
		t.Fatal("evicted trace still findable")
	}
	tr, ok := r.find("job-5")
	if !ok || tr.Seq != 5 {
		t.Fatalf("find by name = %+v ok=%v", tr, ok)
	}
	tr, ok = r.find(traceID(0, 6))
	if !ok || tr.Name != "job-6" {
		t.Fatalf("find by ID = %+v ok=%v", tr, ok)
	}
}

// TestDisabledObservabilityZeroAllocs pins the overhead contract at the
// service seam: every observability call site the shard loop contains —
// the obs nil check, the backlog sampler, and the nil-instrument calls the
// shard would make — must allocate nothing when observability is off.
func TestDisabledObservabilityZeroAllocs(t *testing.T) {
	cfg, err := Config{Nodes: 4, Shards: 1}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	sh := newShard(0, &cfg)
	sh.initObs(cfg.Obs, time.Now()) // zero Observability: obs must stay nil
	if sh.obs != nil {
		t.Fatal("zero Observability wired instruments")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if sh.obs != nil {
			t.Fatal("unreachable")
		}
		sh.sampleBacklog()
		// The instrument calls themselves are nil-receiver no-ops.
		var o *shardObs
		if o != nil {
			t.Fatal("unreachable")
		}
		var c *metrics.Counter
		var h *metrics.Histogram
		c.Inc()
		h.Observe(0.001)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates %.1f allocs/op, want 0", allocs)
	}
}

func obsConfig(dir string) Config {
	cfg := detConfig(dir)
	cfg.Obs = Observability{Metrics: metrics.NewRegistry(), TraceDepth: 64}
	return cfg
}

// scrapeMetrics fetches /metrics, checks the content type, validates the
// exposition structurally, and returns the page plus a flat sample map.
func scrapeMetrics(t *testing.T, url string) (string, map[string]float64) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	text := string(body)
	if err := metrics.ValidateExposition(text); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	samples := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return text, samples
}

// TestMetricsExpositionUnderLoad is the promlint-style validator test: a
// live daemon under concurrent load must serve a structurally valid
// exposition on every scrape, and every counter must be monotone between
// two scrapes taken mid-load.
func TestMetricsExpositionUnderLoad(t *testing.T) {
	cfg := obsConfig(t.TempDir())
	_, srv := httpTestPool(t, cfg)

	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				resp, _ := postJob(t, srv.URL, genSpec(fmt.Sprintf("m%d-%d", c, j), uint64(c*100+j)))
				_ = resp
			}
		}(c)
	}
	text1, s1 := scrapeMetrics(t, srv.URL)
	wg.Wait()
	_, s2 := scrapeMetrics(t, srv.URL)

	for _, fam := range []string{
		"# TYPE ccfd_jobs_admitted_total counter",
		"# TYPE ccfd_decision_latency_seconds histogram",
		"# TYPE ccfd_queue_wait_seconds histogram",
		"# TYPE ccfd_wal_append_seconds histogram",
		"# TYPE ccfd_queue_depth gauge",
		"# TYPE ccfd_port_backlog_bytes gauge",
		"# TYPE ccfd_uptime_seconds gauge",
		"# TYPE ccfd_build_info gauge",
		`le="+Inf"`,
	} {
		if !strings.Contains(text1, fam) {
			t.Fatalf("exposition missing %q", fam)
		}
	}

	// Counter monotonicity between the mid-load and post-load scrapes.
	mono := 0
	for name, v1 := range s1 {
		base := name[:strings.IndexAny(name, "{ ")+1]
		if base == "" {
			base = name
		}
		if !strings.Contains(name, "_total") && !strings.Contains(name, "_count") && !strings.Contains(name, "_bucket") {
			continue
		}
		v2, ok := s2[name]
		if !ok {
			t.Fatalf("series %s disappeared between scrapes", name)
		}
		if v2 < v1 {
			t.Fatalf("counter %s went backwards: %g -> %g", name, v1, v2)
		}
		mono++
	}
	if mono == 0 {
		t.Fatal("no counter series compared")
	}

	// The load actually registered.
	var admitted float64
	for name, v := range s2 {
		if strings.HasPrefix(name, "ccfd_jobs_admitted_total") {
			admitted += v
		}
	}
	if admitted != 48 {
		t.Fatalf("admitted counter sum = %g, want 48", admitted)
	}
}

// chromeTrace mirrors the trace-event document shape for validation.
type chromeTrace struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	} `json:"traceEvents"`
}

// validateChromeTrace checks the invariant Perfetto relies on: timestamps
// monotone (non-decreasing) within each (pid, tid) track.
func validateChromeTrace(t *testing.T, data []byte) chromeTrace {
	t.Helper()
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace JSON: %v\n%s", err, data)
	}
	last := map[[2]int]float64{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		key := [2]int{ev.Pid, ev.Tid}
		if prev, ok := last[key]; ok && ev.Ts < prev {
			t.Fatalf("event %d (%s): ts %g < %g on track %v", i, ev.Name, ev.Ts, prev, key)
		}
		last[key] = ev.Ts
	}
	return doc
}

func TestTraceEndpoints(t *testing.T) {
	cfg := obsConfig(t.TempDir())
	_, srv := httpTestPool(t, cfg)

	var lastID string
	for i := 0; i < 12; i++ {
		resp, body := postJob(t, srv.URL, genSpec(fmt.Sprintf("tr-%d", i), uint64(i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, body)
		}
		lastID = resp.Header.Get("X-Ccfd-Trace-Id")
		if lastID == "" {
			t.Fatal("200 without X-Ccfd-Trace-Id while tracing is on")
		}
	}

	// Raw lookup by correlation ID: the span model is queue→decide→journal→reply.
	resp, err := http.Get(srv.URL + "/v1/trace?job=" + lastID + "&raw=1")
	if err != nil {
		t.Fatal(err)
	}
	var tr JobTrace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.ID != lastID || tr.Outcome != "ok" {
		t.Fatalf("trace %+v, want id %s", tr, lastID)
	}
	names := make([]string, 0, len(tr.Spans))
	end := 0.0
	for _, sp := range tr.Spans {
		names = append(names, sp.Name)
		// Spans are contiguous by construction; allow a ulp of float noise
		// from start+dur accumulation.
		if sp.Start < end-1e-9 {
			t.Fatalf("span %s starts at %g before previous end %g", sp.Name, sp.Start, end)
		}
		if sp.Dur < 0 {
			t.Fatalf("span %s has negative duration", sp.Name)
		}
		end = sp.Start + sp.Dur
	}
	if got := strings.Join(names, ","); got != "queue,decide,journal,reply" {
		t.Fatalf("span sequence = %s", got)
	}

	// Lookup by job name works too.
	resp, err = http.Get(srv.URL + "/v1/trace?job=tr-7&raw=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	code := resp.StatusCode
	resp.Body.Close()
	if code != http.StatusOK {
		t.Fatalf("trace by name: %d", code)
	}

	// Chrome trace exports, single job and the recent window.
	for _, ep := range []string{"/v1/trace?job=" + lastID, "/v1/trace/recent"} {
		resp, err := http.Get(srv.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s content type %q", ep, ct)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		doc := validateChromeTrace(t, data)
		if len(doc.TraceEvents) == 0 {
			t.Fatalf("%s: empty trace", ep)
		}
	}

	// Unknown jobs 404, missing query 400.
	resp, _ = http.Get(srv.URL + "/v1/trace?job=nope")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/v1/trace")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing query: %d", resp.StatusCode)
	}
}

// TestTraceDisabledIs404 pins the gate: without TraceDepth the endpoints
// refuse, and decisions carry no trace header.
func TestTraceDisabledIs404(t *testing.T) {
	_, srv := httpTestPool(t, detConfig(t.TempDir()))
	resp, body := postJob(t, srv.URL, genSpec("plain", 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Ccfd-Trace-Id"); h != "" {
		t.Fatalf("trace header %q with tracing off", h)
	}
	for _, ep := range []string{"/v1/trace?job=plain", "/v1/trace/recent"} {
		resp, err := http.Get(srv.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s with tracing off: %d", ep, resp.StatusCode)
		}
	}
}

// TestKillRestartDeterminismWithObservability extends the crash-safety
// acceptance test: the reference run has observability fully off, the
// kill/restart run has metrics and tracing on. Byte-identical decisions
// prove both restart determinism and that instrumentation perturbs nothing;
// the restored registry's admitted counters must resume from the replayed
// sequence numbers (monotone across the restart, no reset to zero).
func TestKillRestartDeterminismWithObservability(t *testing.T) {
	jobs := detJobs(11, 4)
	const kill = 23

	ref := startPool(t, detConfig(t.TempDir()))
	refDecs := runStream(t, ref, jobs)
	refStates := poolStates(t, ref)
	if err := ref.Drain(context.Background()); err != nil {
		t.Fatalf("reference drain: %v", err)
	}

	dir := t.TempDir()
	cfg1 := obsConfig(dir)
	b1 := startPool(t, cfg1)
	gotDecs := runStream(t, b1, jobs[:kill])
	preKill := registryCounters(t, cfg1.Obs.Metrics, "ccfd_jobs_admitted_total")
	b1.Kill()

	cfg2 := obsConfig(dir) // fresh registry, same state dir
	b2 := startPool(t, cfg2)
	postRestart := registryCounters(t, cfg2.Obs.Metrics, "ccfd_jobs_admitted_total")
	gotDecs = append(gotDecs, runStream(t, b2, jobs[kill:])...)
	gotStates := poolStates(t, b2)

	for i := range refDecs {
		if string(refDecs[i]) != string(gotDecs[i]) {
			t.Fatalf("decision %d diverged with observability on:\nref: %s\ngot: %s",
				i, refDecs[i], gotDecs[i])
		}
	}
	for i := range refStates {
		if refStates[i] != gotStates[i] {
			t.Fatalf("shard %d state diverged: ref %+v got %+v", i, refStates[i], gotStates[i])
		}
	}

	// Counter restore sanity: the restored admitted counters resume at the
	// journaled sequence — never below what was acknowledged before the
	// kill minus the unsnapshotted tail (everything acked was journaled, so
	// in fact never below the pre-kill value at all).
	for shardLbl, pre := range preKill {
		post, ok := postRestart[shardLbl]
		if !ok {
			t.Fatalf("shard %s has no admitted counter after restart", shardLbl)
		}
		if post < pre {
			t.Fatalf("shard %s admitted counter went backwards across restart: %d -> %d",
				shardLbl, pre, post)
		}
	}
	finalStates := gotStates
	final := registryCounters(t, cfg2.Obs.Metrics, "ccfd_jobs_admitted_total")
	var counterTotal, seqTotal uint64
	for _, v := range final {
		counterTotal += v
	}
	for _, st := range finalStates {
		seqTotal += st.Seq
	}
	if counterTotal != seqTotal {
		t.Fatalf("admitted counters sum to %d, shard seqs to %d", counterTotal, seqTotal)
	}
	if err := b2.Drain(context.Background()); err != nil {
		t.Fatalf("restarted drain: %v", err)
	}
}

// registryCounters reads every series of one counter family, keyed by the
// shard label value.
func registryCounters(t *testing.T, r *metrics.Registry, family string) map[string]uint64 {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateExposition(sb.String()); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	out := map[string]uint64{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, family+"{") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseUint(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		out[line[len(family):sp]] = v
	}
	return out
}
