package service

// HTTP-layer tests: the error→status mapping, and the overload acceptance
// criterion — at roughly 10× queue capacity the daemon sheds with 429s and
// degraded decisions while its health probe stays fast, instead of
// collapsing.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccf/internal/workload"
)

func httpTestPool(t *testing.T, cfg Config) (*Pool, *httptest.Server) {
	t.Helper()
	p := startPool(t, cfg)
	srv := httptest.NewServer(NewHandler(p, HTTPConfig{RequestTimeout: 10 * time.Second}))
	t.Cleanup(srv.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = p.Drain(ctx)
	})
	return p, srv
}

func postJob(t *testing.T, url string, spec JobSpec) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func genSpec(name string, seed uint64) JobSpec {
	return JobSpec{
		Name: name,
		Gen: &workload.Config{
			CustomerTuples: 40,
			OrderTuples:    400,
			PayloadBytes:   1000,
			Zipf:           0.8,
			Seed:           seed,
		},
	}
}

func TestHTTPSubmitAndIntrospection(t *testing.T) {
	cfg := detConfig(t.TempDir())
	_, srv := httpTestPool(t, cfg)

	resp, body := postJob(t, srv.URL, genSpec("first", 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var dec Decision
	if err := json.Unmarshal(body, &dec); err != nil {
		t.Fatalf("decision body: %v", err)
	}
	if dec.Name != "first" || dec.Seq != 1 || len(dec.Placement) == 0 {
		t.Fatalf("decision %+v", dec)
	}

	for _, ep := range []string{"/healthz", "/readyz", "/stats", "/v1/state"} {
		resp, err := http.Get(srv.URL + ep)
		if err != nil {
			t.Fatalf("%s: %v", ep, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", ep, resp.StatusCode)
		}
	}

	resp, err := http.Post(srv.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}

	// Stats reflect the admission.
	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Admitted != 1 {
		t.Fatalf("stats admitted = %d, want 1", st.Admitted)
	}
}

func TestHTTPBadJobIs400(t *testing.T) {
	_, srv := httpTestPool(t, detConfig(t.TempDir()))
	cases := []JobSpec{
		{},                                  // no name, no data
		{Name: "x"},                         // neither gen nor chunks
		{Name: "x", Chunks: [][]int64{{1}}}, // wrong row count
		{Name: "x", Placer: "nope", Gen: &workload.Config{}}, // unknown placer
	}
	for i, spec := range cases {
		resp, body := postJob(t, srv.URL, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: %d %s", i, resp.StatusCode, body)
		}
	}
	// Malformed JSON body.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}
}

// TestHTTPOverloadShedsAndStaysResponsive is the 10×-load acceptance test:
// a single shard with a tiny queue is slammed by ~10× more concurrent
// clients than it has capacity; the daemon must (a) answer every request —
// 200, 429 with a Retry-After hint, or a clean timeout — with zero dropped
// connections, (b) actually shed (429s observed), (c) degrade rather than
// stall (degraded decisions observed), and (d) keep /healthz p99 under
// 100ms throughout.
func TestHTTPOverloadShedsAndStaysResponsive(t *testing.T) {
	cfg := Config{
		Shards:     1,
		Nodes:      4,
		QueueDepth: 1,
		// Below the typical per-decision service time, so any request that
		// actually waited behind another lands on the degraded path.
		DegradeAfter: 100 * time.Microsecond,
		RetryAfter:   10 * time.Millisecond,
		Engine:       EngineConfig{CoOptimize: true},
		// No Dir: persistence off keeps the hot loop on the engine, which is
		// what this test is stressing.
	}
	p, srv := httpTestPool(t, cfg)

	// >10× the shard's capacity (queue depth 1), while keeping the number of
	// runnable goroutines small enough that client-side scheduling noise on
	// a single-CPU runner cannot pollute the health-probe percentiles.
	const clients = 16
	const perClient = 25
	var ok200, shed429, other atomic.Uint64
	var wg sync.WaitGroup

	// The health prober gets its own connection (like a real orchestrator's
	// kubelet would): it must not queue behind the load clients' connection
	// pool, because the claim under test is server responsiveness.
	healthClient := &http.Client{Transport: &http.Transport{}}
	loadClient := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}

	stopHealth := make(chan struct{})
	healthLat := make(chan []float64, 1)
	go func() {
		var lats []float64
		for {
			select {
			case <-stopHealth:
				healthLat <- lats
				return
			default:
			}
			begin := time.Now()
			resp, err := healthClient.Get(srv.URL + "/healthz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			lats = append(lats, time.Since(begin).Seconds())
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				spec := genSpec(fmt.Sprintf("c%d-j%d", c, j), uint64(c*1000+j))
				// Heavy placement (many partitions) so each decision costs
				// around a millisecond — the queue must actually back up.
				spec.Gen.Partitions = 2048
				b, _ := json.Marshal(spec)
				resp, err := loadClient.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
				if err != nil {
					other.Add(1)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("429 without Retry-After")
					}
					var eb errorBody
					if err := json.Unmarshal(body, &eb); err != nil || eb.RetryAfterMs <= 0 {
						t.Errorf("429 body %q", body)
					}
					shed429.Add(1)
				default:
					other.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopHealth)
	lats := <-healthLat

	total := ok200.Load() + shed429.Load() + other.Load()
	if total != clients*perClient {
		t.Fatalf("dropped requests: %d answered of %d", total, clients*perClient)
	}
	if ok200.Load() == 0 {
		t.Fatal("no successful decisions under load")
	}
	if shed429.Load() == 0 {
		t.Fatal("10x load produced no shedding")
	}
	st := p.Stats()
	if st.Shed == 0 {
		t.Fatalf("stats report no shed: %+v", st)
	}
	if st.Degraded == 0 {
		t.Fatalf("no degraded decisions under sustained queue pressure: %+v", st)
	}

	if len(lats) == 0 {
		t.Fatal("no health samples collected")
	}
	sort.Float64s(lats)
	p99 := lats[(len(lats)*99)/100]
	if p99 >= 0.100 {
		t.Fatalf("healthz p99 = %.1fms under overload, want < 100ms", p99*1e3)
	}
	t.Logf("overload: 200=%d 429=%d other=%d degraded=%d healthz p99=%.2fms",
		ok200.Load(), shed429.Load(), other.Load(), st.Degraded, p99*1e3)
}

// TestHTTPDrainingIs503 pins the lifecycle mapping: once Drain begins, new
// submissions get a clean 503 (ErrDraining) and readiness drops, while
// liveness stays 200 — the orchestrator should stop routing, not restart.
func TestHTTPDrainingIs503(t *testing.T) {
	p := startPool(t, detConfig(t.TempDir()))
	srv := httptest.NewServer(NewHandler(p, HTTPConfig{}))
	defer srv.Close()

	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, body := postJob(t, srv.URL, genSpec("late", 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
}
