package service

// Per-job lifecycle traces: every admitted job leaves a bounded record of
// its timed spans (queue → decide → journal → reply) in its shard's ring,
// keyed by a correlation ID derived from (shard, seq). The HTTP layer
// exports rings as Chrome trace-event JSON via telemetry.WriteSpanTrace,
// so a single job's path through the daemon loads directly in Perfetto.

import (
	"io"
	"sort"
	"strconv"
	"sync"

	"ccf/internal/telemetry"
)

// TraceSpan is one timed phase of a job's lifecycle. Times are seconds
// since the pool was constructed.
type TraceSpan struct {
	Name  string  `json:"name"`
	Start float64 `json:"start_s"`
	Dur   float64 `json:"dur_s"`
}

// JobTrace is the recorded lifecycle of one admitted job.
type JobTrace struct {
	ID       string      `json:"id"`
	Name     string      `json:"name"`
	Key      string      `json:"key"`
	Shard    int         `json:"shard"`
	Seq      uint64      `json:"seq"`
	Outcome  string      `json:"outcome"`
	Lifted   bool        `json:"lifted,omitempty"`
	Degraded bool        `json:"degraded,omitempty"`
	Batch    int         `json:"batch,omitempty"`
	Spans    []TraceSpan `json:"spans"`
}

// traceRing is a bounded ring of completed job traces. Written by the
// shard run loop, read by HTTP handlers; a mutex is fine here — the ring
// is touched once per admitted job, not per flow.
type traceRing struct {
	mu  sync.Mutex
	buf []JobTrace
	pos int
	n   int
}

func newTraceRing(depth int) *traceRing {
	return &traceRing{buf: make([]JobTrace, depth)}
}

func (r *traceRing) add(t JobTrace) {
	r.mu.Lock()
	r.buf[r.pos] = t
	r.pos = (r.pos + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// snapshot returns the window oldest-first.
func (r *traceRing) snapshot() []JobTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobTrace, r.n)
	if r.n == len(r.buf) {
		copy(out, r.buf[r.pos:])
		copy(out[len(r.buf)-r.pos:], r.buf[:r.pos])
	} else {
		copy(out, r.buf[:r.n])
	}
	return out
}

// find returns the newest trace whose ID or job name matches q.
func (r *traceRing) find(q string) (JobTrace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.n; i++ {
		// Walk newest → oldest so re-submitted names resolve to the latest.
		idx := (r.pos - 1 - i + len(r.buf)*2) % len(r.buf)
		if t := &r.buf[idx]; t.ID == q || t.Name == q {
			return *t, true
		}
	}
	return JobTrace{}, false
}

// FindTrace looks a job up across every shard ring by correlation ID or
// job name. False when tracing is disabled or the job is not in any window.
func (p *Pool) FindTrace(q string) (JobTrace, bool) {
	for _, sh := range p.shards {
		if sh.obs == nil || sh.obs.traces == nil {
			continue
		}
		if t, ok := sh.obs.traces.find(q); ok {
			return t, true
		}
	}
	return JobTrace{}, false
}

// RecentTraces returns every shard's trace window, oldest-first per shard.
// Nil when tracing is disabled.
func (p *Pool) RecentTraces() []JobTrace {
	var out []JobTrace
	for _, sh := range p.shards {
		if sh.obs == nil || sh.obs.traces == nil {
			continue
		}
		out = append(out, sh.obs.traces.snapshot()...)
	}
	return out
}

// TracingEnabled reports whether any shard keeps a trace ring.
func (p *Pool) TracingEnabled() bool {
	return p.cfg.Obs.TraceDepth > 0
}

// WriteJobTrace renders traces as a Chrome trace-event document: one
// process ("ccfd"), one thread per shard, every job's spans on its shard's
// track. Spans are globally re-sorted per track before export because jobs
// overlap (B is queued while A decides), and the trace-event contract CI
// validates is monotone timestamps within each (pid, tid) track.
func WriteJobTrace(w io.Writer, traces []JobTrace) error {
	byShard := map[int][]telemetry.Span{}
	for _, t := range traces {
		args := map[string]any{"trace_id": t.ID, "job": t.Name, "seq": t.Seq}
		if t.Batch > 0 {
			args["batch"] = t.Batch
		}
		for _, sp := range t.Spans {
			byShard[t.Shard] = append(byShard[t.Shard], telemetry.Span{
				Name: sp.Name, Start: sp.Start, Dur: sp.Dur, Args: args,
			})
		}
	}
	shardIDs := make([]int, 0, len(byShard))
	for id := range byShard {
		shardIDs = append(shardIDs, id)
	}
	sort.Ints(shardIDs)
	tracks := make([]telemetry.SpanTrack, 0, len(shardIDs))
	for _, id := range shardIDs {
		spans := byShard[id]
		sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start < spans[b].Start })
		tracks = append(tracks, telemetry.SpanTrack{
			Pid: 1, Tid: id,
			Process: "ccfd", Thread: "shard " + strconv.Itoa(id),
			Spans: spans,
		})
	}
	return telemetry.WriteSpanTrace(w, tracks)
}
