package service

// Graceful-shutdown contract, exercised under -race in CI: Drain during a
// concurrent submission storm must (a) complete every in-flight and queued
// request with a real decision, (b) bounce late arrivals with clean typed
// errors — never a hang, never a lost reply — and (c) leave a final snapshot
// on disk covering exactly the admitted jobs, with an empty WAL.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGracefulShutdownUnderLoad(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards:        2,
		Nodes:         4,
		QueueDepth:    16,
		Dir:           dir,
		SnapshotEvery: 8,
		DegradeAfter:  -1,
		Engine:        EngineConfig{CoOptimize: true},
	}
	p := startPool(t, cfg)

	const submitters = 8
	const perSubmitter = 30
	var decided, refused atomic.Uint64
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for j := 0; j < perSubmitter; j++ {
				spec := genSpec(fmt.Sprintf("s%d-j%d", s, j), uint64(s*1000+j))
				spec.Key = fmt.Sprintf("k%d", s*perSubmitter+j)
				dec, err := p.Submit(context.Background(), spec)
				switch {
				case err == nil:
					if dec == nil || len(dec.Placement) == 0 {
						t.Errorf("nil/empty decision without error")
					}
					decided.Add(1)
				case errors.Is(err, ErrDraining), errors.Is(err, ErrOverloaded):
					refused.Add(1)
				default:
					t.Errorf("submit during drain: unexpected error %v", err)
					refused.Add(1)
				}
			}
		}(s)
	}

	// Start draining while the storm is in flight.
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()

	if got := decided.Load() + refused.Load(); got != submitters*perSubmitter {
		t.Fatalf("lost replies: %d accounted of %d", got, submitters*perSubmitter)
	}
	if decided.Load() == 0 {
		t.Fatal("drain started before any decision was made")
	}

	// After drain: submissions refuse cleanly, and the on-disk state covers
	// exactly the decided jobs — final snapshot per shard, truncated WALs.
	if _, err := p.Submit(context.Background(), genSpec("late", 9)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
	var snapSeq uint64
	for i := 0; i < cfg.Shards; i++ {
		snap, err := readSnapshotFile(snapshotPath(dir, i))
		if err != nil {
			t.Fatalf("shard %d snapshot: %v", i, err)
		}
		if snap == nil {
			t.Fatalf("shard %d left no final snapshot", i)
		}
		snapSeq += snap.Seq
		if fi, err := os.Stat(walPath(dir, i)); err != nil || fi.Size() != 0 {
			t.Fatalf("shard %d WAL not truncated after final snapshot: %v size=%d", i, err, fi.Size())
		}
	}
	if snapSeq != decided.Load() {
		t.Fatalf("final snapshots cover %d jobs, %d decisions were handed out", snapSeq, decided.Load())
	}

	// The drained state restores into a working pool (no torn tails, digests
	// verify) and the next decision continues the sequence.
	p2 := startPool(t, cfg)
	states := poolStates(t, p2)
	var restored uint64
	for _, st := range states {
		restored += st.Seq
	}
	if restored != decided.Load() {
		t.Fatalf("restored %d jobs, want %d", restored, decided.Load())
	}
	if err := p2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDrainIdempotentAndKillAfterDrain pins lifecycle edge cases: Drain
// twice is fine, Kill after Drain is fine, Submit before Start refuses.
func TestDrainIdempotentAndKillAfterDrain(t *testing.T) {
	p, err := NewPool(Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(context.Background(), genSpec("early", 1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit before start: %v", err)
	}
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	p.Kill() // must not panic or hang after a completed drain
}
