package service

// Batched admission equivalence and group-commit failure modes at the
// service layer. The shard run loop is gated between batches with an
// unbuffered control reply — while the run loop is parked on that send it
// cannot drain its queue, so the test enqueues K requests in a known order
// and releases the gate to have them decided as one batch. Decisions,
// digests and journal contents must be byte-identical to BatchMax=1.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// gateShard parks the shard run loop between batches: handleControl blocks
// sending on the unbuffered reply channel until release() receives it.
// Returns once the run loop has accepted the control message, so after
// gateShard returns the loop is guaranteed not to touch its queue.
func gateShard(sh *shard) (release func()) {
	c := control{kind: ctlState, reply: make(chan ctlReply)}
	sh.ctl <- c
	return func() { <-c.reply }
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// enqueueOrdered submits jobs[lo:hi] concurrently but in a deterministic
// queue order: each submission is only launched once the previous one is
// observed in the shard queue. Returns a wait func that collects the
// decisions (indexed relative to lo) once the gate releases.
func enqueueOrdered(t *testing.T, p *Pool, sh *shard, jobs []JobSpec, lo, hi int) func() ([]*Decision, []error) {
	t.Helper()
	decs := make([]*Decision, hi-lo)
	errs := make([]error, hi-lo)
	var wg sync.WaitGroup
	for i := lo; i < hi; i++ {
		i := i
		depth := len(sh.queue)
		wg.Add(1)
		go func() {
			defer wg.Done()
			decs[i-lo], errs[i-lo] = p.Submit(context.Background(), jobs[i])
		}()
		waitFor(t, fmt.Sprintf("job %d enqueued", i), func() bool { return len(sh.queue) == depth+1 })
	}
	return func() ([]*Decision, []error) {
		wg.Wait()
		return decs, errs
	}
}

func batchConfig(dir string, batchMax int) Config {
	cfg := detConfig(dir)
	cfg.Shards = 1 // one shard: queue order == submission order
	cfg.QueueDepth = 128
	cfg.BatchMax = batchMax
	cfg.WALSync = true
	return cfg
}

// TestBatchedMatchesSequential is the service-layer half of the
// byte-identity contract: the same job stream decided in forced batches of
// {2, 7, 64} must produce decisions and engine digests identical to the
// BatchMax=1 sequential path, across 8 seeds. (Batch size 1 is itself the
// sequential path, covered by TestKillRestartDeterminism.)
func TestBatchedMatchesSequential(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			jobs := detJobs(seed, 4)

			ref := startPool(t, batchConfig(t.TempDir(), 1))
			refDecs := runStream(t, ref, jobs)
			refStates := poolStates(t, ref)
			if err := ref.Drain(context.Background()); err != nil {
				t.Fatal(err)
			}

			for _, bs := range []int{2, 7, 64} {
				p := startPool(t, batchConfig(t.TempDir(), bs))
				sh := p.shards[0]
				got := make([][]byte, 0, len(jobs))
				for lo := 0; lo < len(jobs); lo += bs {
					hi := lo + bs
					if hi > len(jobs) {
						hi = len(jobs)
					}
					release := gateShard(sh)
					wait := enqueueOrdered(t, p, sh, jobs, lo, hi)
					release()
					decs, errs := wait()
					for i, err := range errs {
						if err != nil {
							t.Fatalf("batch %d: job %d: %v", bs, lo+i, err)
						}
					}
					for _, dec := range decs {
						b, err := json.Marshal(dec)
						if err != nil {
							t.Fatal(err)
						}
						got = append(got, b)
					}
				}
				for i := range refDecs {
					if string(refDecs[i]) != string(got[i]) {
						t.Fatalf("batch %d: decision %d diverged:\nseq   %s\nbatch %s", bs, i, refDecs[i], got[i])
					}
				}
				gotStates := poolStates(t, p)
				if refStates[0] != gotStates[0] {
					t.Fatalf("batch %d: state diverged: seq %+v batch %+v", bs, refStates[0], gotStates[0])
				}
				if err := p.Drain(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestGroupCommitAmortizesFsync pins the whole point of batching: a batch of
// 8 admissions lands in the journal through exactly one group commit and one
// fsync, where sequential admission pays eight.
func TestGroupCommitAmortizesFsync(t *testing.T) {
	p := startPool(t, batchConfig(t.TempDir(), 16))
	defer p.Kill()
	sh := p.shards[0]
	jobs := detJobs(0, 4)

	release := gateShard(sh)
	wait := enqueueOrdered(t, p, sh, jobs, 0, 8)
	release()
	if _, errs := wait(); errs[0] != nil {
		t.Fatal(errs[0])
	}
	st := p.Stats().Shards[0]
	if st.Admitted != 8 || st.Batches != 1 || st.WALGroupCommits != 1 || st.WALSyncs != 1 {
		t.Fatalf("after one batch of 8: admitted=%d batches=%d group_commits=%d syncs=%d, want 8/1/1/1",
			st.Admitted, st.Batches, st.WALGroupCommits, st.WALSyncs)
	}

	// One more lone job: one more batch, one more commit, one more fsync.
	if _, err := p.Submit(context.Background(), jobs[8]); err != nil {
		t.Fatal(err)
	}
	st = p.Stats().Shards[0]
	if st.Admitted != 9 || st.Batches != 2 || st.WALGroupCommits != 2 || st.WALSyncs != 2 {
		t.Fatalf("after follow-up job: admitted=%d batches=%d group_commits=%d syncs=%d, want 9/2/2/2",
			st.Admitted, st.Batches, st.WALGroupCommits, st.WALSyncs)
	}
}

// TestBatchDeadlineDropMidBatch pins per-job failure isolation inside a
// batch: a request whose deadline passed in the queue is dropped without
// touching the engine, and the rest of the batch decides exactly as a stream
// that never contained it.
func TestBatchDeadlineDropMidBatch(t *testing.T) {
	jobs := detJobs(2, 4)[:5]
	live := append(append([]JobSpec{}, jobs[:2]...), jobs[3:]...)

	ref := startPool(t, batchConfig(t.TempDir(), 1))
	refDecs := runStream(t, ref, live)
	refStates := poolStates(t, ref)
	if err := ref.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	p := startPool(t, batchConfig(t.TempDir(), 8))
	sh := p.shards[0]
	release := gateShard(sh)
	wait01 := enqueueOrdered(t, p, sh, jobs, 0, 2)
	// Job 2 enters the queue with an already-expired context; Submit returns
	// its context error immediately but the request is enqueued regardless.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	depth := len(sh.queue)
	if _, err := p.Submit(dead, jobs[2]); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired submit: %v", err)
	}
	waitFor(t, "dead job enqueued", func() bool { return len(sh.queue) == depth+1 })
	wait34 := enqueueOrdered(t, p, sh, jobs, 3, 5)
	release()

	var got [][]byte
	for _, wait := range []func() ([]*Decision, []error){wait01, wait34} {
		decs, errs := wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("live job: %d: %v", i, err)
			}
		}
		for _, dec := range decs {
			b, err := json.Marshal(dec)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, b)
		}
	}
	for i := range refDecs {
		if string(refDecs[i]) != string(got[i]) {
			t.Fatalf("decision %d diverged:\nref   %s\nbatch %s", i, refDecs[i], got[i])
		}
	}
	if gotStates := poolStates(t, p); refStates[0] != gotStates[0] {
		t.Fatalf("state diverged: ref %+v got %+v", refStates[0], gotStates[0])
	}
	if drops := p.Stats().Shards[0].DeadlineDrops; drops != 1 {
		t.Fatalf("deadline drops = %d, want 1", drops)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestFsyncErrorMidBatchFencesShard pins the batch-wide acked⇒journaled
// invariant under a failing group commit: when the single fsync covering a
// batch fails, the shard fences itself and acknowledges NOTHING from the
// batch — every caller gets ErrShardFailed, no decision escapes, and further
// submissions bounce.
func TestFsyncErrorMidBatchFencesShard(t *testing.T) {
	dir := t.TempDir()
	p := startPool(t, batchConfig(dir, 8))
	sh := p.shards[0]
	jobs := detJobs(1, 4)

	// Admit two jobs normally so the failure lands mid-journal, then arm the
	// fault. The write to syncErr is ordered before the run loop's read by
	// the queue send of the next batch (channel send happens-before receive).
	runStream(t, p, jobs[:2])
	injected := errors.New("injected fsync failure")
	sh.wal.syncErr = func() error { return injected }

	release := gateShard(sh)
	wait := enqueueOrdered(t, p, sh, jobs, 2, 7)
	release()
	decs, errs := wait()
	for i := range errs {
		if !errors.Is(errs[i], ErrShardFailed) {
			t.Fatalf("batch job %d: err=%v, want ErrShardFailed", i, errs[i])
		}
		if decs[i] != nil {
			t.Fatalf("batch job %d: got a decision %+v from a failed group commit", i, decs[i])
		}
	}
	if !sh.failed.Load() {
		t.Fatal("shard not fenced after fsync failure")
	}
	if _, err := p.Submit(context.Background(), jobs[7]); !errors.Is(err, ErrShardFailed) {
		t.Fatalf("post-fence submit: %v, want ErrShardFailed", err)
	}
	if st := p.Stats().Shards[0]; st.Admitted != 2 {
		t.Fatalf("published admitted = %d after fenced batch, want 2 (nothing acked)", st.Admitted)
	}
	p.Kill()

	// Restart from the same directory: whatever prefix of the torn group is
	// on disk was never acknowledged, so any consistent replay is legal; the
	// two acked jobs must be there.
	p2 := startPool(t, batchConfig(dir, 8))
	if seq := poolStates(t, p2)[0].Seq; seq < 2 {
		t.Fatalf("restored seq = %d, want >= 2 (acked jobs lost)", seq)
	}
	if err := p2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestTornBatchRecordReplaysPrefix pins torn-group-commit recovery: a crash
// that cuts the last record of a group commit in half must replay cleanly to
// the end of the intact prefix — same engine state as a daemon that only
// ever saw those jobs — rather than erroring or replaying garbage.
func TestTornBatchRecordReplaysPrefix(t *testing.T) {
	dir := t.TempDir()
	cfg := batchConfig(dir, 8)
	cfg.SnapshotEvery = -1 // keep every record in the WAL
	p := startPool(t, cfg)
	sh := p.shards[0]
	jobs := detJobs(4, 4)

	release := gateShard(sh)
	wait := enqueueOrdered(t, p, sh, jobs, 0, 6)
	release()
	if _, errs := wait(); errs[0] != nil {
		t.Fatal(errs[0])
	}
	p.Kill()

	// Tear the last record of the group: cut the file mid-way through its
	// final line, as a crash during the (single) batch write would.
	path := walPath(dir, 0)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := b[:len(b)-1] // drop trailing newline
	lastLine := 0
	for i := len(body) - 1; i >= 0; i-- {
		if body[i] == '\n' {
			lastLine = i + 1
			break
		}
	}
	cut := lastLine + (len(body)-lastLine)/2
	if err := os.WriteFile(path, b[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	p2 := startPool(t, cfg)
	gotState := poolStates(t, p2)[0]
	if gotState.Seq != 5 {
		t.Fatalf("restored seq = %d, want 5 (intact prefix of the torn group)", gotState.Seq)
	}
	if err := p2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The replayed prefix must equal a daemon that only ever admitted those
	// five jobs sequentially.
	ref := startPool(t, batchConfig(t.TempDir(), 1))
	runStream(t, ref, jobs[:5])
	refState := poolStates(t, ref)[0]
	if err := ref.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if refState.Digest != gotState.Digest || refState.Clock != gotState.Clock {
		t.Fatalf("torn-tail replay diverged: got %+v want %+v", gotState, refState)
	}
}
