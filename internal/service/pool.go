package service

// Pool is the daemon's engine fleet: N independent shards, jobs hashed to
// shards by routing key, lifecycle and fan-out operations on top.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sync/atomic"
	"time"

	"ccf/internal/parallel"
	"ccf/internal/stats"
)

// Config describes a pool. The zero value is not usable; see Defaults.
type Config struct {
	// Shards is the number of independent engines (default 4).
	Shards int
	// Nodes is the fabric size every shard engine spans (required).
	Nodes int
	// QueueDepth bounds each shard's admission queue (default 64). A full
	// queue sheds with ErrOverloaded instead of growing without bound.
	QueueDepth int
	// BatchMax bounds how many queued jobs a shard drains and decides per
	// loop iteration (default 16). The batch shares one session advance,
	// one backlog probe per distinct clock, and one group-committed WAL
	// append + fsync; decisions are byte-identical to BatchMax=1. 1
	// restores strictly sequential admission.
	BatchMax int
	// BatchWait is how long a shard lingers for followers once one job is
	// pending and the queue has momentarily drained (default 0: adaptive
	// batching only — batches form from queue pressure and sparse traffic
	// pays zero added latency). Only raises batch sizes, never changes
	// decisions.
	BatchWait time.Duration
	// Engine pins the per-shard engine identity (scheduler, bandwidth,
	// co-optimization); it is recorded in snapshots and verified at restore.
	Engine EngineConfig
	// Dir is the state directory for snapshots and WALs; empty disables
	// persistence (decisions are still served, restarts lose state).
	Dir string
	// SnapshotEvery compacts the WAL into a snapshot every that many
	// admitted jobs per shard (default 64; <= 0 disables periodic
	// snapshots — the final drain snapshot still runs).
	SnapshotEvery int
	// DegradeAfter is the queue-wait threshold beyond which a job takes
	// the placement-only path (default 250ms; <= 0 disables degradation).
	DegradeAfter time.Duration
	// RetryAfter is the backoff hint returned with shed responses
	// (default 50ms).
	RetryAfter time.Duration
	// WALSync fsyncs the WAL after every append. Off by default: the
	// daemon then survives process kills (the page cache persists) but a
	// same-instant OS crash may lose the tail. Decisions are only released
	// after the append either way.
	WALSync bool
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// Obs selects the observability surfaces (metrics registry, per-job
	// trace rings, structured logging). The zero value disables all of
	// them, and the disabled path adds zero allocations to the shard loop.
	Obs Observability
}

// withDefaults validates and fills the zero fields.
func (c Config) withDefaults() (Config, error) {
	if c.Nodes <= 0 {
		return c, fmt.Errorf("service: Nodes must be positive, got %d", c.Nodes)
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("service: Shards must be positive, got %d", c.Shards)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 1 {
		return c, fmt.Errorf("service: QueueDepth must be positive, got %d", c.QueueDepth)
	}
	if c.BatchMax == 0 {
		c.BatchMax = 16
	}
	if c.BatchMax < 1 {
		return c, fmt.Errorf("service: BatchMax must be positive, got %d", c.BatchMax)
	}
	if c.BatchWait < 0 {
		c.BatchWait = 0
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 64
	}
	if c.DegradeAfter == 0 {
		c.DegradeAfter = 250 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if _, err := netSchedByName(c.Engine.NetworkScheduler); err != nil {
		return c, err
	}
	return c, nil
}

// Pool is a sharded, crash-safe co-optimizer service. Construct with
// NewPool, call Start once, Submit from any number of goroutines, and end
// with Drain (graceful) or Kill (crash simulation).
type Pool struct {
	cfg     Config
	shards  []*shard
	started atomic.Bool
	stopped atomic.Bool
	birth   time.Time
}

// NewPool validates the configuration and builds the (not yet started)
// pool.
func NewPool(cfg Config) (*Pool, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	p := &Pool{cfg: cfg, birth: time.Now()}
	for i := 0; i < cfg.Shards; i++ {
		sh := newShard(i, &p.cfg)
		sh.initObs(cfg.Obs, p.birth)
		p.shards = append(p.shards, sh)
	}
	p.registerPoolMetrics()
	return p, nil
}

// Start restores every shard from its snapshot + WAL (in parallel, honoring
// ctx) and launches the shard loops. Until Start returns, Ready reports
// false and Submit refuses work; a restore failure leaves the pool down —
// serving decisions that a journal cannot back would break the crash-safety
// contract.
func (p *Pool) Start(ctx context.Context) error {
	if !p.started.CompareAndSwap(false, true) {
		return errors.New("service: pool already started")
	}
	ok := false
	defer func() {
		if !ok {
			p.started.Store(false)
		}
	}()
	if p.cfg.Dir != "" {
		if err := os.MkdirAll(p.cfg.Dir, 0o755); err != nil {
			return err
		}
	}
	begin := time.Now()
	err := parallel.ForEachCtx(ctx, len(p.shards), len(p.shards), func(ctx context.Context, i int) error {
		return p.shards[i].restore()
	})
	if err != nil {
		return err
	}
	for _, sh := range p.shards {
		go sh.run()
	}
	ok = true
	var replayed uint64
	for _, sh := range p.shards {
		replayed += sh.seq
	}
	p.cfg.Logf("service: %d shards up in %v (%d jobs restored)", len(p.shards), time.Since(begin), replayed)
	return nil
}

// shardFor routes a key.
func (p *Pool) shardFor(key string) *shard {
	return p.shards[int(hashKey(key))%len(p.shards)]
}

// Submit routes, queues and awaits one job submission. It returns as soon
// as the decision is made, the queue rejects (ErrOverloaded/ErrDraining),
// or ctx expires — a stuck shard can never wedge the caller.
func (p *Pool) Submit(ctx context.Context, spec JobSpec) (*Decision, error) {
	if !p.started.Load() || p.stopped.Load() {
		return nil, ErrDraining
	}
	if err := spec.validate(p.cfg.Nodes); err != nil {
		return nil, err
	}
	sh := p.shardFor(spec.RouteKey())
	req := &request{spec: spec, ctx: ctx, enq: time.Now(), reply: make(chan reply, 1)}
	if err := sh.trySubmit(req); err != nil {
		return nil, err
	}
	select {
	case rep := <-req.reply:
		return rep.dec, rep.err
	case <-ctx.Done():
		// The shard will still see this request; it drops it un-admitted
		// if the deadline fired before processing began, and completes the
		// admission (journaled, just unobserved) if it fired mid-decision.
		return nil, context.Cause(ctx)
	}
}

// Ready reports whether the pool can take work: started, not draining, and
// every shard restored, un-fenced, and not drowning in backlog.
func (p *Pool) Ready() bool {
	if !p.started.Load() || p.stopped.Load() {
		return false
	}
	for _, sh := range p.shards {
		if !sh.ready.Load() || sh.overloaded() {
			return false
		}
	}
	return true
}

// Drain is graceful shutdown: stop intake everywhere, let every shard work
// off its queue, snapshot, and exit. In-flight and queued requests all
// complete normally; only new submissions see ErrDraining. ctx bounds the
// wait.
func (p *Pool) Drain(ctx context.Context) error {
	if !p.started.Load() {
		return nil
	}
	p.stopped.Store(true)
	for _, sh := range p.shards {
		sh.closeIntake()
	}
	return parallel.ForEachCtx(ctx, len(p.shards), len(p.shards), func(ctx context.Context, i int) error {
		select {
		case <-p.shards[i].done:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("shard %d did not drain: %w", i, context.Cause(ctx))
		}
	})
}

// Kill simulates a crash for in-process tests and the bench driver: intake
// stops, queued requests bounce with ErrKilled, no final snapshot is
// written — recovery must come from the journal, exactly as after kill -9.
func (p *Pool) Kill() {
	if !p.started.Load() {
		return
	}
	p.stopped.Store(true)
	for _, sh := range p.shards {
		sh.crash.Store(true)
		sh.closeIntake()
	}
	for _, sh := range p.shards {
		<-sh.done
	}
}

// SnapshotAll forces an immediate snapshot on every shard (fan-out under
// ctx via the control channel, serialized with job processing per shard).
func (p *Pool) SnapshotAll(ctx context.Context) error {
	return p.control(ctx, ctlSnapshot, nil)
}

// State collects every shard's engine-owned state (clock, seq, digest) —
// the determinism probe used by tests and the smoke driver.
func (p *Pool) State(ctx context.Context) ([]ShardState, error) {
	out := make([]ShardState, len(p.shards))
	if err := p.control(ctx, ctlState, out); err != nil {
		return nil, err
	}
	return out, nil
}

// control round-trips a control message to every shard.
func (p *Pool) control(ctx context.Context, kind int, states []ShardState) error {
	if !p.started.Load() {
		return errors.New("service: pool not started")
	}
	return parallel.ForEachCtx(ctx, len(p.shards), len(p.shards), func(ctx context.Context, i int) error {
		sh := p.shards[i]
		c := control{kind: kind, reply: make(chan ctlReply, 1)}
		select {
		case sh.ctl <- c:
		case <-sh.done:
			return fmt.Errorf("shard %d stopped", i)
		case <-ctx.Done():
			return context.Cause(ctx)
		}
		select {
		case r := <-c.reply:
			if states != nil {
				states[i] = r.state
			}
			return r.err
		case <-ctx.Done():
			return context.Cause(ctx)
		}
	})
}

// ShardStats is one shard's /stats row.
type ShardStats struct {
	Shard           int     `json:"shard"`
	Ready           bool    `json:"ready"`
	QueueDepth      int     `json:"queue_depth"`
	QueueCap        int     `json:"queue_cap"`
	Admitted        uint64  `json:"admitted"`
	Completed       uint64  `json:"completed"`
	Shed            uint64  `json:"shed"`
	Degraded        uint64  `json:"degraded"`
	Lifted          uint64  `json:"lifted"`
	DeadlineDrops   uint64  `json:"deadline_drops"`
	Rejected        uint64  `json:"rejected"`
	Batches         uint64  `json:"batches"`
	WALGroupCommits uint64  `json:"wal_group_commits"`
	WALSyncs        uint64  `json:"wal_syncs"`
	Clock           float64 `json:"clock"`
	SnapshotSeq     uint64  `json:"snapshot_seq"`
	SnapshotAgeJobs uint64  `json:"snapshot_age_jobs"`
	SnapshotAgeSec  float64 `json:"snapshot_age_sec"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
}

// Stats is the /stats document.
type Stats struct {
	Ready         bool         `json:"ready"`
	Draining      bool         `json:"draining"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Build         BuildInfo    `json:"build"`
	Admitted      uint64       `json:"admitted"`
	Shed          uint64       `json:"shed"`
	Degraded      uint64       `json:"degraded"`
	Batches       uint64       `json:"batches"`
	WALSyncs      uint64       `json:"wal_syncs"`
	P50Ms         float64      `json:"p50_ms"`
	P99Ms         float64      `json:"p99_ms"`
	Shards        []ShardStats `json:"shards"`
}

// Stats assembles the live counters without touching any shard goroutine:
// everything here is atomics and the latency rings.
func (p *Pool) Stats() *Stats {
	out := &Stats{
		Ready:         p.Ready(),
		Draining:      p.stopped.Load(),
		UptimeSeconds: time.Since(p.birth).Seconds(),
		Build:         buildInfo(),
	}
	var allLat []float64
	for _, sh := range p.shards {
		lat := sh.lat.snapshotValues()
		ss := ShardStats{
			Shard:           sh.id,
			Ready:           sh.ready.Load() && !sh.overloaded(),
			QueueDepth:      len(sh.queue),
			QueueCap:        cap(sh.queue),
			Admitted:        sh.pubSeq.Load(),
			Completed:       sh.pubCompleted.Load(),
			Shed:            sh.shed.Load(),
			Degraded:        sh.degraded.Load(),
			Lifted:          sh.lifted.Load(),
			DeadlineDrops:   sh.deadlineDrop.Load(),
			Rejected:        sh.rejected.Load(),
			Batches:         sh.pubBatches.Load(),
			WALGroupCommits: sh.pubGroupCommits.Load(),
			WALSyncs:        sh.pubWALSyncs.Load(),
			Clock:           math.Float64frombits(sh.pubClock.Load()),
			SnapshotSeq:     sh.snapSeqPub.Load(),
			P50Ms:           stats.Percentile(lat, 50) * 1e3,
			P99Ms:           stats.Percentile(lat, 99) * 1e3,
		}
		ss.SnapshotAgeJobs = ss.Admitted - ss.SnapshotSeq
		if at := sh.snapAtNanos.Load(); at > 0 {
			ss.SnapshotAgeSec = time.Since(time.Unix(0, at)).Seconds()
		}
		out.Admitted += ss.Admitted
		out.Shed += ss.Shed
		out.Degraded += ss.Degraded
		out.Batches += ss.Batches
		out.WALSyncs += ss.WALSyncs
		allLat = append(allLat, lat...)
		out.Shards = append(out.Shards, ss)
	}
	out.P50Ms = stats.Percentile(allLat, 50) * 1e3
	out.P99Ms = stats.Percentile(allLat, 99) * 1e3
	return out
}

// RetryAfter exposes the configured backoff hint for the HTTP layer.
func (p *Pool) RetryAfter() time.Duration { return p.cfg.RetryAfter }

// Nodes exposes the fabric size for the HTTP layer's error messages.
func (p *Pool) Nodes() int { return p.cfg.Nodes }
