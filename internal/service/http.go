package service

// HTTP/JSON surface of the daemon. Thin by design: every handler either
// reads lock-free published state (health, readiness, stats) or delegates to
// Pool.Submit, which owns the admission-control semantics. The liveness and
// readiness probes never touch a shard goroutine, so they stay fast — sub-
// millisecond — even when every queue is full (the overload test pins p99
// health latency under 100ms at 10x load).
//
//	POST /v1/jobs         submit one JobSpec, returns a Decision
//	GET  /healthz         liveness: process is up and serving
//	GET  /readyz          readiness: 200 only when every shard can take work
//	GET  /stats           queue depths, latency percentiles, shed counters
//	GET  /v1/state        per-shard engine state digests (determinism probe)
//	POST /v1/snapshot     force an immediate snapshot on every shard
//	GET  /metrics         Prometheus text exposition (when a registry is wired)
//	GET  /v1/trace        one job's lifecycle as Chrome trace JSON (?job=ID|name)
//	GET  /v1/trace/recent every shard's trace window as Chrome trace JSON
//
// Trace endpoints accept ?raw=1 to return the JobTrace records instead of
// the Chrome trace-event document. Successful submissions carry the job's
// correlation ID in an X-Ccfd-Trace-Id header when tracing is on (a header,
// not a body field — decision bytes stay identical with tracing on or off).
//
// Error envelope: {"error": "...", "retry_after_ms": N} with the HTTP
// status carrying the class — 400 bad job, 429 shed (plus a Retry-After
// header), 503 draining/fenced, 504 deadline.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// maxJobBody bounds a submission body (an explicit chunk matrix for a large
// fabric is big; 8 MiB is far above anything the drivers send).
const maxJobBody = 8 << 20

// HTTPConfig tunes the handler.
type HTTPConfig struct {
	// RequestTimeout bounds each submission end to end (default 5s); the
	// shard drops un-started work whose deadline passed instead of
	// admitting jobs nobody is waiting for.
	RequestTimeout time.Duration
	// ControlTimeout bounds /v1/state and /v1/snapshot fan-outs (default
	// 30s — a snapshot serializes behind in-flight decisions).
	ControlTimeout time.Duration
}

func (c HTTPConfig) withDefaults() HTTPConfig {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.ControlTimeout <= 0 {
		c.ControlTimeout = 30 * time.Second
	}
	return c
}

// NewHandler builds the daemon's HTTP mux over a pool.
func NewHandler(p *Pool, cfg HTTPConfig) http.Handler {
	cfg = cfg.withDefaults()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		body := http.MaxBytesReader(w, r.Body, maxJobBody)
		if err := json.NewDecoder(body).Decode(&spec); err != nil {
			writeError(w, p, http.StatusBadRequest, fmt.Errorf("%w: body: %v", ErrBadJob, err))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), cfg.RequestTimeout)
		defer cancel()
		dec, err := p.Submit(ctx, spec)
		if err != nil {
			writeError(w, p, statusFor(err), err)
			return
		}
		if p.TracingEnabled() {
			w.Header().Set("X-Ccfd-Trace-Id", traceID(dec.Shard, dec.Seq))
		}
		writeJSON(w, http.StatusOK, dec)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		st := p.Stats()
		code := http.StatusOK
		if !st.Ready {
			code = http.StatusServiceUnavailable
		}
		type shardReady struct {
			Shard      int  `json:"shard"`
			Ready      bool `json:"ready"`
			QueueDepth int  `json:"queue_depth"`
		}
		out := struct {
			Ready  bool         `json:"ready"`
			Shards []shardReady `json:"shards"`
		}{Ready: st.Ready}
		for _, ss := range st.Shards {
			out.Shards = append(out.Shards, shardReady{ss.Shard, ss.Ready, ss.QueueDepth})
		}
		writeJSON(w, code, out)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.Stats())
	})
	mux.HandleFunc("GET /v1/state", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), cfg.ControlTimeout)
		defer cancel()
		states, err := p.State(ctx)
		if err != nil {
			writeError(w, p, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"shards": states})
	})
	mux.HandleFunc("POST /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), cfg.ControlTimeout)
		defer cancel()
		if err := p.SnapshotAll(ctx); err != nil {
			writeError(w, p, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	if reg := p.cfg.Obs.Metrics; reg != nil {
		mux.Handle("GET /metrics", reg.Handler())
	}
	mux.HandleFunc("GET /v1/trace", func(w http.ResponseWriter, r *http.Request) {
		if !p.TracingEnabled() {
			writeError(w, p, http.StatusNotFound, errors.New("service: tracing disabled (wire Observability.TraceDepth)"))
			return
		}
		q := r.URL.Query().Get("job")
		if q == "" {
			writeError(w, p, http.StatusBadRequest, errors.New("service: missing ?job= (correlation ID or job name)"))
			return
		}
		t, ok := p.FindTrace(q)
		if !ok {
			writeError(w, p, http.StatusNotFound, fmt.Errorf("service: no trace for %q in any shard window", q))
			return
		}
		if r.URL.Query().Get("raw") != "" {
			writeJSON(w, http.StatusOK, t)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJobTrace(w, []JobTrace{t})
	})
	mux.HandleFunc("GET /v1/trace/recent", func(w http.ResponseWriter, r *http.Request) {
		if !p.TracingEnabled() {
			writeError(w, p, http.StatusNotFound, errors.New("service: tracing disabled (wire Observability.TraceDepth)"))
			return
		}
		traces := p.RecentTraces()
		if r.URL.Query().Get("raw") != "" {
			writeJSON(w, http.StatusOK, map[string]any{"traces": traces})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJobTrace(w, traces)
	})
	return mux
}

// statusFor maps submission errors onto the degradation ladder's statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrKilled), errors.Is(err, ErrShardFailed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBadJob):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// jsonCodec is one pooled response-encoding buffer: the encoder writes into
// the owned bytes.Buffer, which is flushed to the ResponseWriter in a single
// Write. Pooling keeps the per-request encode path from allocating a fresh
// encoder state machine and growth-sized buffer on every reply (pinned by
// BenchmarkWriteJSON / TestWriteJSONAllocs).
type jsonCodec struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var codecPool = sync.Pool{
	New: func() any {
		c := &jsonCodec{}
		c.enc = json.NewEncoder(&c.buf)
		return c
	},
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	c := codecPool.Get().(*jsonCodec)
	c.buf.Reset()
	if err := c.enc.Encode(v); err != nil {
		codecPool.Put(c)
		http.Error(w, `{"error":"encode failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(c.buf.Bytes())
	codecPool.Put(c)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

func writeError(w http.ResponseWriter, p *Pool, code int, err error) {
	body := errorBody{Error: err.Error()}
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		ra := p.RetryAfter()
		var shed *ShedError
		if errors.As(err, &shed) {
			// Spread shed retries across [base, 2*base) with jitter keyed by
			// (shard, journal seq): deterministic — replayable in tests, no
			// rand in the error path — while distinct shards shedding at the
			// same instant still stagger their clients, and repeated 429s
			// from one shard walk the window as its sequence advances.
			ra += time.Duration(shedJitter(shed.Shard, shed.Seq) * float64(ra))
		}
		body.RetryAfterMs = ra.Milliseconds()
		// The standard header is second-granular; round up so zero never
		// means "hammer me again immediately".
		secs := int64(ra.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, code, body)
}

// shedJitter maps (shard, seq) onto [0, 1) with FNV-1a over both values'
// bytes — allocation-free and well spread even for adjacent shard IDs.
func shedJitter(shard int, seq uint64) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, x := range [2]uint64{uint64(shard), seq} {
		for i := 0; i < 8; i++ {
			h ^= (x >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	return float64(h%1024) / 1024
}
