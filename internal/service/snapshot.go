package service

// Crash-safe persistence: a per-shard write-ahead log of admitted jobs plus
// periodic snapshots that compact the log prefix.
//
// Snapshot file layout (binary header around a JSON payload):
//
//	offset  size  field
//	0       7     magic "CCFSNAP"
//	7       1     version (0x01)
//	8       8     payload length, big-endian
//	16      n     payload (JSON-encoded Snapshot)
//	16+n    4     CRC-32 (IEEE) of the payload, big-endian
//
// Writes are atomic: temp file in the same directory, fsync, rename. The
// decoder rejects truncation, trailing garbage, checksum mismatches and
// unknown versions with typed errors — never a panic, never a partial load
// (FuzzSnapshotRestore pins this).
//
// WAL layout: one JSON object per line, {"seq":N,"crc":C,"job":{...}} with
// the CRC taken over the raw job bytes. A torn final line (the crash wrote
// half a record) is discarded — the client never saw that job's decision,
// because the decision is only sent after the append returns — but
// corruption anywhere before the tail is an error: the log can no longer
// prove what the dead daemon decided.
//
// Recovery ordering: the snapshot rename is the commit point of compaction,
// and the WAL is truncated only after it. A crash between the two leaves
// WAL entries with seq <= Snapshot.Seq, which replay skips; a crash during
// the snapshot write leaves the previous snapshot plus the full WAL. Both
// paths rebuild the same engine.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"ccf/internal/core"
)

// Typed snapshot decode failures, matchable with errors.Is.
var (
	// ErrSnapshotFormat covers structural damage: bad magic, truncation,
	// trailing bytes, undecodable payload.
	ErrSnapshotFormat = errors.New("service: snapshot malformed")
	// ErrSnapshotVersion reports a header from a different format version.
	ErrSnapshotVersion = errors.New("service: snapshot version unsupported")
	// ErrSnapshotChecksum reports payload corruption under an intact header.
	ErrSnapshotChecksum = errors.New("service: snapshot checksum mismatch")
	// ErrSnapshotMismatch reports a well-formed snapshot that belongs to a
	// different daemon configuration (shard, fabric size, engine identity).
	ErrSnapshotMismatch = errors.New("service: snapshot does not match configuration")
	// ErrWALCorrupt reports damage before the final WAL record.
	ErrWALCorrupt = errors.New("service: write-ahead log corrupt")
)

const (
	snapMagic   = "CCFSNAP"
	snapVersion = 0x01
	// snapMaxPayload bounds the decoded payload (a length-prefix of a
	// corrupted header must not drive a giant allocation).
	snapMaxPayload = 1 << 30
)

// EngineConfig pins the engine identity a snapshot belongs to: replaying a
// WAL into a differently-scheduled engine would silently produce different
// decisions, so restore refuses mismatches.
type EngineConfig struct {
	// Bandwidth is the per-port bandwidth in bytes/sec (0 = simulator
	// default).
	Bandwidth float64 `json:"bandwidth"`
	// CoOptimize feeds arrivals the in-flight backlog (the paper's mode).
	CoOptimize bool `json:"co_optimize"`
	// NetworkScheduler names the coflow scheduler ("" = varys).
	NetworkScheduler string `json:"network_scheduler"`
}

// newEngine constructs a shard engine from the pinned identity.
func (c EngineConfig) newEngine(nodes int) (*core.OnlineEngine, error) {
	sched, err := netSchedByName(c.NetworkScheduler)
	if err != nil {
		return nil, err
	}
	return core.NewOnlineEngine(nodes, core.OnlineOptions{
		Bandwidth:        c.Bandwidth,
		CoOptimize:       c.CoOptimize,
		NetworkScheduler: sched,
	})
}

// Snapshot is one shard's durable state: the engine identity, the effective
// records of every job admitted up to Seq, and a digest of the engine state
// those jobs produce. Restore replays Jobs through a fresh engine and
// verifies the digest, then replays the WAL suffix (seq > Seq).
type Snapshot struct {
	Shard  int          `json:"shard"`
	Nodes  int          `json:"nodes"`
	Engine EngineConfig `json:"engine"`
	Seq    uint64       `json:"seq"`
	Clock  float64      `json:"clock"`
	Digest uint64       `json:"digest"`
	Jobs   []JobSpec    `json:"jobs"`
}

// EncodeSnapshot serialises a snapshot into the versioned, checksummed file
// format.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 16+len(payload)+4)
	buf = append(buf, snapMagic...)
	buf = append(buf, snapVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return buf, nil
}

// DecodeSnapshot parses and verifies a snapshot file image. Every failure
// is a typed error; no partially-decoded state ever escapes.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < 16+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed header", ErrSnapshotFormat, len(b))
	}
	if string(b[:7]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSnapshotFormat, b[:7])
	}
	if b[7] != snapVersion {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrSnapshotVersion, b[7], snapVersion)
	}
	n := binary.BigEndian.Uint64(b[8:16])
	if n > snapMaxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrSnapshotFormat, n)
	}
	if uint64(len(b)) != 16+n+4 {
		return nil, fmt.Errorf("%w: %d bytes for a %d-byte payload (truncated or trailing garbage)",
			ErrSnapshotFormat, len(b), n)
	}
	payload := b[16 : 16+n]
	want := binary.BigEndian.Uint32(b[16+n:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: crc %08x, header says %08x", ErrSnapshotChecksum, got, want)
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrSnapshotFormat, err)
	}
	if s.Nodes <= 0 || s.Shard < 0 || uint64(len(s.Jobs)) != s.Seq {
		return nil, fmt.Errorf("%w: inconsistent payload (nodes=%d shard=%d seq=%d jobs=%d)",
			ErrSnapshotFormat, s.Nodes, s.Shard, s.Seq, len(s.Jobs))
	}
	for i := range s.Jobs {
		if s.Jobs[i].Arrival == nil {
			return nil, fmt.Errorf("%w: job %d has no resolved arrival", ErrSnapshotFormat, i)
		}
	}
	return &s, nil
}

// snapshotPath / walPath name a shard's files inside the state directory.
func snapshotPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.snap", shard))
}

func walPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d.wal", shard))
}

// writeSnapshotFile writes atomically: temp file in the same directory,
// fsync, rename over the target.
func writeSnapshotFile(path string, s *Snapshot) error {
	b, err := EncodeSnapshot(s)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// readSnapshotFile loads and verifies a snapshot; a missing file returns
// (nil, nil) — a fresh shard.
func readSnapshotFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(b)
}

// walRecord is one WAL line.
type walRecord struct {
	Seq uint64          `json:"seq"`
	CRC uint32          `json:"crc"`
	Job json.RawMessage `json:"job"`
}

// walWriter appends admitted-job records; not safe for concurrent use (each
// shard goroutine owns its writer).
type walWriter struct {
	f    *os.File
	sync bool
	buf  []byte // reusable group-commit buffer

	// Run-loop-owned accounting, published to /stats through shard atomics:
	// one group commit is one physical write (and at most one fsync) no
	// matter how many records it carries.
	groupCommits uint64
	records      uint64
	syncs        uint64

	// syncErr, when non-nil, replaces the fsync call — the fault-injection
	// seam the group-commit failure-mode tests use to make the fsync of a
	// full batch fail without touching the filesystem.
	syncErr func() error
}

func openWAL(path string, sync bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f, sync: sync}, nil
}

// appendRecord marshals one WAL line into buf.
func appendRecord(buf []byte, seq uint64, spec *JobSpec) ([]byte, error) {
	job, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	rec := walRecord{Seq: seq, CRC: crc32.ChecksumIEEE(job), Job: job}
	line, err := json.Marshal(&rec)
	if err != nil {
		return nil, err
	}
	buf = append(buf, line...)
	return append(buf, '\n'), nil
}

// Append journals one effective job record under seq. The decision is only
// released to the client after Append returns, so "acknowledged" implies
// "journaled".
func (w *walWriter) Append(seq uint64, spec *JobSpec) error {
	return w.appendBuffered(seq, spec, nil, 1)
}

// AppendBatch group-commits a batch: every record is marshalled into one
// buffer, written with a single Write, and covered by a single fsync when
// the journal is synchronous. Records land in the same one-line-per-record
// format Append produces, so replay is oblivious to batching; a torn tail
// of the group (the crash cut the write short) replays its intact prefix,
// and none of those decisions were acknowledged — replies are only sent
// after AppendBatch returns, batch-wide.
func (w *walWriter) AppendBatch(firstSeq uint64, specs []JobSpec) error {
	if len(specs) == 0 {
		return nil
	}
	return w.appendBuffered(firstSeq, &specs[0], specs[1:], len(specs))
}

func (w *walWriter) appendBuffered(firstSeq uint64, first *JobSpec, rest []JobSpec, n int) error {
	buf, err := appendRecord(w.buf[:0], firstSeq, first)
	if err != nil {
		return err
	}
	for i := range rest {
		if buf, err = appendRecord(buf, firstSeq+1+uint64(i), &rest[i]); err != nil {
			return err
		}
	}
	w.buf = buf
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	w.groupCommits++
	w.records += uint64(n)
	if w.sync {
		w.syncs++
		if w.syncErr != nil {
			return w.syncErr()
		}
		return w.f.Sync()
	}
	return nil
}

// Truncate discards the journal after a snapshot committed (snapshot rename
// happens first; see the recovery-ordering note above).
func (w *walWriter) Truncate() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	_, err := w.f.Seek(0, 0)
	return err
}

func (w *walWriter) Close() error { return w.f.Close() }

// replayWAL streams every intact record with seq > afterSeq to fn, in file
// order. A torn final record — the crash interrupted the append, so no
// client ever saw its decision — is tolerated and reported; any damage
// before the tail is ErrWALCorrupt. Sequence numbers must be contiguous
// above afterSeq: a gap means a lost record, corruption rather than tearing.
func replayWAL(path string, afterSeq uint64, fn func(seq uint64, spec *JobSpec) error) (replayed int, torn bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	lineNo := 0
	lastSeq := afterSeq
	// tail reports whether the damaged line just read is the file's last;
	// only then is the damage a torn append rather than corruption.
	tail := func() bool { return !sc.Scan() }
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			if tail() {
				return replayed, true, nil
			}
			return replayed, false, fmt.Errorf("%w: line %d: %v", ErrWALCorrupt, lineNo, err)
		}
		if crc32.ChecksumIEEE(rec.Job) != rec.CRC {
			if tail() {
				return replayed, true, nil
			}
			return replayed, false, fmt.Errorf("%w: line %d: crc mismatch", ErrWALCorrupt, lineNo)
		}
		if rec.Seq <= afterSeq {
			continue // compacted into the snapshot already
		}
		if rec.Seq != lastSeq+1 {
			return replayed, false, fmt.Errorf("%w: line %d: seq %d after %d (lost record)",
				ErrWALCorrupt, lineNo, rec.Seq, lastSeq)
		}
		var spec JobSpec
		if err := json.Unmarshal(rec.Job, &spec); err != nil || spec.Arrival == nil {
			if err == nil {
				err = errors.New("record has no resolved arrival")
			}
			return replayed, false, fmt.Errorf("%w: line %d: job: %v", ErrWALCorrupt, lineNo, err)
		}
		lastSeq = rec.Seq
		if err := fn(rec.Seq, &spec); err != nil {
			return replayed, false, err
		}
		replayed++
	}
	if err := sc.Err(); err != nil {
		return replayed, false, fmt.Errorf("%w: %v", ErrWALCorrupt, err)
	}
	return replayed, false, nil
}
