package service

// FuzzSnapshotRestore pins the robustness half of the crash-safety contract:
// whatever bytes a crash, a bad disk or an attacker leaves in the state
// directory, the restore path reports a typed error — it never panics, and a
// snapshot that decodes must re-encode to an image that decodes to the same
// state.

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func FuzzSnapshotRestore(f *testing.F) {
	// Seed corpus: one valid image plus every damage class the unit tests
	// cover, so the fuzzer starts at the interesting boundaries.
	a := 0.5
	valid, err := EncodeSnapshot(&Snapshot{
		Shard: 0, Nodes: 2, Seq: 1, Clock: 0.5, Digest: 42,
		Engine: EngineConfig{CoOptimize: true},
		Jobs:   []JobSpec{{Name: "j", Arrival: &a, Chunks: [][]int64{{1, 2}, {3, 4}}}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:7])
	f.Add(valid[:17])
	f.Add(append(append([]byte(nil), valid...), 0x00))
	wrongMagic := append([]byte(nil), valid...)
	wrongMagic[0] = 'Z'
	f.Add(wrongMagic)
	wrongVersion := append([]byte(nil), valid...)
	wrongVersion[7] = 0xFF
	f.Add(wrongVersion)
	flipped := append([]byte(nil), valid...)
	flipped[20] ^= 0x01
	f.Add(flipped)
	huge := append([]byte(nil), valid...)
	binary.BigEndian.PutUint64(huge[8:16], 1<<62)
	f.Add(huge)
	f.Add([]byte(snapMagic))
	f.Add([]byte(`{"seq":1,"crc":0,"job":{}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			if s != nil {
				t.Fatalf("error %v returned alongside a snapshot", err)
			}
			if !errors.Is(err, ErrSnapshotFormat) && !errors.Is(err, ErrSnapshotVersion) &&
				!errors.Is(err, ErrSnapshotChecksum) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Anything that decodes must round-trip to the same image state.
		re, err := EncodeSnapshot(s)
		if err != nil {
			t.Fatalf("re-encode of decoded snapshot: %v", err)
		}
		s2, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if s2.Shard != s.Shard || s2.Seq != s.Seq || s2.Digest != s.Digest || len(s2.Jobs) != len(s.Jobs) {
			t.Fatalf("round-trip drift: %+v vs %+v", s, s2)
		}

		// The same bytes interpreted as a WAL must also fail closed: replay
		// returns records, a torn-tail report, or a typed error — no panic.
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, werr := replayWAL(path, 0, func(seq uint64, spec *JobSpec) error { return nil })
		if werr != nil && !errors.Is(werr, ErrWALCorrupt) {
			t.Fatalf("untyped wal error: %v", werr)
		}
	})
}
